(* Workload generators for the experiment harness: the paper's own kernels
   plus synthetic suites exercising the constructs its evaluation
   discusses (BLAS-like kernels, graphics transforms, pointer-walking
   loops, call-heavy loops). *)

let nl = String.concat "\n"

(* float array initializer list, deterministic *)
let float_init n f =
  String.concat ", " (List.init n (fun i -> Printf.sprintf "%ff" (f i)))

(* §6 backsolve.  Initialized through global initializers so `main` is the
   kernel plus nothing else. *)
let backsolve n =
  nl
    [
      Printf.sprintf "float x[%d];" (n + 1);
      Printf.sprintf "float y[%d] = { %s };" n (float_init (min n 64) (fun i -> float_of_int i *. 0.25));
      Printf.sprintf "float z[%d] = { %s };" n (float_init (min n 64) (fun _ -> 0.5));
      "void backsolve(int n)";
      "{";
      "  float *p, *q;";
      "  int i;";
      "  p = &x[1];";
      "  q = &x[0];";
      "  for (i = 0; i < n - 2; i++)";
      "    p[i] = z[i] * (y[i] - q[i]);";
      "}";
      Printf.sprintf "int main() { backsolve(%d); return 0; }" n;
    ]

(* §9 daxpy, callable form; main runs only the call *)
let daxpy n =
  nl
    [
      "void daxpy(float *x, float *y, float *z, float alpha, int n)";
      "{";
      "  if (n <= 0) return;";
      "  if (alpha == 0) return;";
      "  for (; n; n--)";
      "    *x++ = *y++ + alpha * *z++;";
      "}";
      Printf.sprintf "float a[%d], b[%d], c[%d];" n n n;
      Printf.sprintf "int main() { daxpy(a, b, c, 1.0, %d); return 0; }" n;
    ]

(* vector add, the parallel-scaling workload *)
let vector_add n =
  nl
    [
      Printf.sprintf "float a[%d], b[%d], c[%d];" n n n;
      "int main()";
      "{";
      "  int i;";
      Printf.sprintf "  for (i = 0; i < %d; i++) a[i] = b[i] + c[i];" n;
      "  return 0;";
      "}";
    ]

(* saxpy through a function call, with and without inlining (E7) *)
let call_in_loop_suite =
  nl
    [
      "float a[256], b[256], c[256], d[256];";
      "float fma1(float x, float y) { return x * 2.0f + y; }";
      "float sq(float x) { return x * x; }";
      "float mix(float x, float y, float t) { return x + (y - x) * t; }";
      "int main()";
      "{";
      "  int i;";
      "  for (i = 0; i < 256; i++) a[i] = fma1(b[i], c[i]);";
      "  for (i = 0; i < 256; i++) d[i] = sq(a[i]);";
      "  for (i = 0; i < 256; i++) c[i] = mix(a[i], d[i], 0.5f);";
      "  for (i = 0; i < 256; i++) b[i] = a[i] + d[i];   /* no call */";
      "  return 0;";
      "}";
    ]

(* §8: the daxpy(alpha = 0) specialization *)
let dead_daxpy =
  nl
    [
      "float gx[64], gy[64], gz[64];";
      "void daxpy(float *x, float *y, float alpha, float *z, int n)";
      "{";
      "  int i;";
      "  if (alpha == 0.0) return;";
      "  for (i = 0; i < n; i++) x[i] = y[i] + alpha * z[i];";
      "}";
      "int main() { daxpy(gx, gy, 0.0, gz, 64); return 0; }";
    ]

(* k-deep temp chains for the §5.3 backtracking measurement (E5) *)
let chain_program depth =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "float a[64];\nvoid kernel(int n)\n{\n  float *p;\n";
  for i = 0 to depth do
    Buffer.add_string buf (Printf.sprintf "  float *t%d;\n" i)
  done;
  Buffer.add_string buf "  p = a;\n  while (n) {\n";
  Buffer.add_string buf "    t0 = p;\n";
  for i = 1 to depth do
    Buffer.add_string buf (Printf.sprintf "    t%d = t%d;\n" i (i - 1))
  done;
  Buffer.add_string buf
    (Printf.sprintf "    *t%d = 1.0;\n    p = t%d + 4;\n    n--;\n  }\n}\n"
       depth depth);
  Buffer.add_string buf "int main() { kernel(64); return 0; }\n";
  Buffer.contents buf

(* Interleaved induction-variable chains for the §5.3 blocking
   measurement: recognizing p_j requires p_(j-1) to be recognized first,
   because p_(j-1)'s update interposes between t_j's definition and its
   use — the exact situation the paper's "blocking" bookkeeping defers
   and re-examines.  Worst case, one variable resolves per pass. *)
let blocking_chain_program depth =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "float out[256];\nvoid kernel(int n)\n{\n";
  for j = 0 to depth do
    Buffer.add_string buf (Printf.sprintf "  int p%d;\n" j)
  done;
  for j = 1 to depth do
    Buffer.add_string buf (Printf.sprintf "  int t%d;\n" j)
  done;
  for j = 0 to depth do
    Buffer.add_string buf (Printf.sprintf "  p%d = %d;\n" j j)
  done;
  Buffer.add_string buf "  while (n) {\n";
  for j = 1 to depth do
    Buffer.add_string buf
      (Printf.sprintf "    t%d = p%d + p%d;\n" j j (j - 1))
  done;
  Buffer.add_string buf "    p0 = p0 + 4;\n";
  for j = 1 to depth do
    Buffer.add_string buf
      (Printf.sprintf "    p%d = t%d + 8 - p%d;\n" j j (j - 1))
  done;
  Buffer.add_string buf
    (Printf.sprintf "    out[p%d & 255] += 1.0f;\n" depth);
  Buffer.add_string buf "    n--;\n  }\n}\n";
  Buffer.add_string buf
    "int main() { int k; float s; kernel(64); s = 0;\n\
    \  for (k = 0; k < 256; k++) s += out[k];\n\
    \  printf(\"%g\\n\", s); return 0; }\n";
  Buffer.contents buf

(* while→DO conversion matrix (E4): (name, source, expect_converted) *)
let conversion_cases =
  [
    ("for (i=0; i<n; i++)",
     "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 1.0f; }",
     true);
    ("for (i=n; i>0; i--)",
     "void f(float *a, int n) { int i; for (i = n; i > 0; i--) a[i] = 1.0f; }",
     true);
    ("while (n) { ... n--; }",
     "void f(float *a, int n) { while (n) { a[n] = 1.0f; n--; } }",
     true);
    ("for (; n; n--) *p++ = ...",
     "void f(float *p, int n) { for (; n; n--) *p++ = 0.0f; }",
     true);
    ("i != n, i++",
     "void f(float *a, int n) { int i; for (i = 0; i != n; i++) a[i] = 1.0f; }",
     true);
    ("i = temp - s (symbolic, §5.2)",
     "void f(float *a, int s) { int i, temp; i = 400; while (i) { a[i] = 1.0f; temp = i; i = temp - s; } }",
     true);
    ("stride 4",
     "void f(float *a, int n) { int i; for (i = 0; i < n; i += 4) a[i] = 1.0f; }",
     true);
    ("break in body",
     "void f(float *a, int n) { int i; for (i = 0; i < n; i++) { if (a[i] < 0.0f) break; a[i] = 1.0f; } }",
     false);
    ("bound varies",
     "void f(float *a, int n) { int i; for (i = 0; i < n; i++) { a[i] = 1.0f; if (i > 3) n--; } }",
     false);
    ("conditional step",
     "void f(float *a, int n) { int i; i = 0; while (i < n) { a[i] = 1.0f; if (a[i] > 0.0f) i++; } }",
     false);
    ("volatile bound",
     "volatile int lim; void f(float *a) { int i; i = 0; while (i < lim) { a[i] = 1.0f; i++; } }",
     false);
    ("goto into loop",
     "void f(float *a, int n) { int i; i = 0; if (n > 99) goto mid; while (i < n) { mid: a[i] = 1.0f; i++; } }",
     false);
  ]

(* arrays embedded in structures (E10, the Doré deficiency §10) *)
let struct_arrays =
  nl
    [
      "struct vertex { float pos[4]; float color[4]; };";
      "struct vertex vs[128];";
      "float mtx[4][4];";
      "int main()";
      "{";
      "  int i, j;";
      "  for (i = 0; i < 128; i++)";
      "    for (j = 0; j < 4; j++)";
      "      vs[i].pos[j] = vs[i].pos[j] * mtx[j][j] + vs[i].color[j];";
      "  return 0;";
      "}";
    ]

(* pointer-chasing loop (§10's future work, implemented here as a
   doacross): the pragma supplies the paper's independent-storage
   assumption; the advance serializes, the body spreads over processors *)
let list_walk ~pragma =
  nl
    [
      "struct node { float val; int next; };  /* index-linked list */";
      "struct node pool[1024];";
      "float out[1024];";
      "void init() {";
      "  int k;";
      "  for (k = 0; k < 1024; k++) {";
      "    pool[k].val = k * 0.5f;";
      "    pool[k].next = (k < 1023) ? k + 1 : -1;";
      "  }";
      "}";
      "int main()";
      "{";
      "  int p, k;";
      "  init();";
      "  k = 0;";
      "  p = 0;";
      (if pragma then "  #pragma vpc independent" else "");
      "  while (p != -1) {";
      "    out[k] = pool[p].val * 2.0f + pool[p].val * pool[p].val;";
      "    p = pool[p].next;";
      "    k++;";
      "  }";
      "  return k;";
      "}";
    ]

(* PGO workloads: cases where the static cost guess is wrong and only a
   measured profile can correct it. *)

(* A kernel whose trip count is a run-time parameter: statically the
   vectorizer strip-mines (and parallelizes) it; the profile reports the
   measured trips per entry and the cost model picks whichever actually
   wins on the Titan. *)
let param_trip_kernel ~trips ~calls =
  nl
    [
      "float a[256], b[256], c[256];";
      "void step(float *x, float *y, float *z, int n)";
      "{";
      "  int i;";
      "  for (i = 0; i < n; i++) x[i] = y[i] + 2.0f * z[i];";
      "}";
      "int main()";
      "{";
      "  int k;";
      Printf.sprintf "  for (k = 0; k < %d; k++) step(a, b, c, %d);" calls
        trips;
      "  return 0;";
      "}";
    ]

(* §6 backsolve plus an error path that never fires: static inlining
   expands [panic] anyway; the profile proves the site cold and keeps the
   call, at identical run time. *)
let backsolve_cold n =
  nl
    [
      Printf.sprintf "float x[%d];" (n + 1);
      Printf.sprintf "float y[%d] = { %s };" n
        (float_init (min n 64) (fun i -> float_of_int i *. 0.25));
      Printf.sprintf "float z[%d] = { %s };" n
        (float_init (min n 64) (fun _ -> 0.5));
      "int errors;";
      "void panic(int code)";
      "{";
      "  errors = errors + code;";
      "  printf(\"panic %d\\n\", code);";
      "}";
      "void backsolve(int n)";
      "{";
      "  float *p, *q;";
      "  int i;";
      "  p = &x[1];";
      "  q = &x[0];";
      "  for (i = 0; i < n - 2; i++)";
      "    p[i] = z[i] * (y[i] - q[i]);";
      "  if (x[1] > 1000000000.0f) panic(1);";
      "}";
      Printf.sprintf "int main() { backsolve(%d); return 0; }" n;
    ]

(* ---- loop-nest workloads (interchange + fusion, §7) ----

   Inner trips must exceed the strip length (32) or the short-vector path
   wins and nothing parallelizes; sizes are chosen so the O0 profiling
   pass still simulates in seconds. *)

(* matrix multiply with a selectable loop order.  [`Ijk] leaves the
   recurrence on c[i][j] innermost (scalar, stride-M accesses to b);
   [`Ikj] makes the innermost loop vectorizable with unit stride.  The
   interchange pass should rewrite whichever order the cost model
   disfavors on the target machine. *)
let matmul ~order ~n ~k ~m =
  let loops =
    match order with
    | `Ijk -> [ ("i", n); ("j", m); ("k", k) ]
    | `Ikj -> [ ("i", n); ("k", k); ("j", m) ]
  in
  nl
    ([
       Printf.sprintf "double a[%d][%d];" n k;
       Printf.sprintf "double b[%d][%d];" k m;
       Printf.sprintf "double c[%d][%d];" n m;
       "int main()";
       "{";
       "  int i, j, k;";
       Printf.sprintf "  for (i = 0; i < %d; i = i + 1)" n;
       Printf.sprintf "    for (k = 0; k < %d; k = k + 1)" k;
       "      a[i][k] = (double)(i + 2 * k) * 0.5;";
       Printf.sprintf "  for (k = 0; k < %d; k = k + 1)" k;
       Printf.sprintf "    for (j = 0; j < %d; j = j + 1)" m;
       "      b[k][j] = (double)(k + 3 * j) * 0.25;";
     ]
    @ List.map
        (fun (v, hi) ->
          Printf.sprintf "  for (%s = 0; %s < %d; %s = %s + 1)" v v hi v v)
        loops
    @ [
        "        c[i][j] = c[i][j] + a[i][k] * b[k][j];";
        Printf.sprintf "  printf(\"%%g\\n\", c[%d][%d]);" (n / 2) (m / 2);
        "  return 0;";
        "}";
      ])

(* five-point stencil followed by a residual pass over the same arrays:
   the two conformable nests fuse, and the fused body vectorizes as one
   shared strip loop (one length computation, one barrier). *)
let stencil5 ~n ~m =
  nl
    [
      Printf.sprintf "double in[%d][%d];" n m;
      Printf.sprintf "double out[%d][%d];" n m;
      Printf.sprintf "double diff[%d][%d];" n m;
      "int main()";
      "{";
      "  int i, j;";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1)" n;
      Printf.sprintf "    for (j = 0; j < %d; j = j + 1)" m;
      "      in[i][j] = (double)(i * i + 3 * j) * 0.5;";
      Printf.sprintf "  for (i = 1; i < %d; i = i + 1)" (n - 1);
      Printf.sprintf "    for (j = 1; j < %d; j = j + 1)" (m - 1);
      "      out[i][j] = 0.2 * (in[i][j] + in[i-1][j] + in[i+1][j] + \
       in[i][j-1] + in[i][j+1]);";
      Printf.sprintf "  for (i = 1; i < %d; i = i + 1)" (n - 1);
      Printf.sprintf "    for (j = 1; j < %d; j = j + 1)" (m - 1);
      "      diff[i][j] = out[i][j] - in[i][j];";
      Printf.sprintf "  printf(\"%%g\\n\", out[%d][%d]);" (n / 2) (m / 2);
      Printf.sprintf "  printf(\"%%g\\n\", diff[%d][%d]);" (n / 3) (m / 3);
      "  return 0;";
      "}";
    ]

(* a chain of saxpy-like passes over conformable vectors: the four loops
   fuse into one nest sharing a single strip loop, and the reuse pass
   forwards each pass's Vstore to the Vloads of the passes downstream,
   so the intermediates stay in vector registers within a strip. *)
let saxpy_chain ~n =
  nl
    [
      Printf.sprintf "double x[%d];" n;
      Printf.sprintf "double y[%d];" n;
      Printf.sprintf "double z[%d];" n;
      Printf.sprintf "double w[%d];" n;
      "int main()";
      "{";
      "  int i;";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1)" n;
      "    x[i] = (double)(3 * i) * 0.125;";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1)" n;
      "    y[i] = 2.0 * x[i] + 1.0;";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1)" n;
      "    z[i] = 3.0 * x[i] + y[i];";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1)" n;
      "    w[i] = z[i] - x[i];";
      Printf.sprintf "  printf(\"%%g\\n\", y[%d]);" (n / 3);
      Printf.sprintf "  printf(\"%%g\\n\", w[%d]);" (n - 1);
      "  return 0;";
      "}";
    ]

(* transpose: legal to interchange either way, but each order has one
   unit-stride and one long-stride reference, so the cost model should
   find no profitable reordering and leave the nest alone. *)
let transpose ~n ~m =
  nl
    [
      Printf.sprintf "double a[%d][%d];" n m;
      Printf.sprintf "double b[%d][%d];" m n;
      "int main()";
      "{";
      "  int i, j;";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1)" n;
      Printf.sprintf "    for (j = 0; j < %d; j = j + 1)" m;
      "      a[i][j] = (double)(i + 2 * j) * 0.5;";
      Printf.sprintf "  for (i = 0; i < %d; i = i + 1)" n;
      Printf.sprintf "    for (j = 0; j < %d; j = j + 1)" m;
      "      b[j][i] = a[i][j];";
      Printf.sprintf "  printf(\"%%g\\n\", b[%d][%d]);" (m / 2) (n / 2);
      "  return 0;";
      "}";
    ]

(* pointer-parameter kernels with no pragmas: every call site binds d to
   a different array than s, so only the whole-program points-to
   analysis can license vectorizing the saxpy loop (examples/ptrkernels.c
   is the standalone copy) *)
let ptrkernels ~n =
  nl
    [
      "void saxpy(float *d, float *s, float alpha, int m)";
      "{";
      "  int i;";
      "  for (i = 0; i < m; i++)";
      "    d[i] = d[i] + alpha * s[i];";
      "}";
      "float dot(float *x, float *y, int m)";
      "{";
      "  int i;";
      "  float acc;";
      "  acc = 0.0f;";
      "  for (i = 0; i < m; i++)";
      "    acc = acc + x[i] * y[i];";
      "  return acc;";
      "}";
      Printf.sprintf "float a[%d], b[%d], c[%d];" n n n;
      "int main()";
      "{";
      "  int i;";
      "  float s;";
      Printf.sprintf "  for (i = 0; i < %d; i++) {" n;
      "    a[i] = i * 0.5f;";
      Printf.sprintf "    b[i] = (%d - i) * 0.25f;" n;
      "    c[i] = 1.0f;";
      "  }";
      Printf.sprintf "  saxpy(a, b, 0.125f, %d);" n;
      Printf.sprintf "  saxpy(c, b, 2.0f, %d);" n;
      Printf.sprintf "  s = dot(a, c, %d);" n;
      "  printf(\"%g %g %g\\n\", a[0], c[1], s);";
      "  return 0;";
      "}";
    ]

(* kernels whose bounds and offsets are parameters: only the symbolic
   range analysis (joining the visible call sites) can prove the shifted
   reads disjoint from the writes, or the 32*m trip counts full-strip
   (examples/symbolic.c is the standalone copy).  [n] is the length of
   the smaller array; every call-site constant scales with it. *)
let symbolic ~n =
  nl
    [
      "void shift(float *a, int n, int k)";
      "{";
      "  int i;";
      "  for (i = 0; i < n; i++)";
      "    a[i] = a[i + k];";
      "}";
      "void smooth(float *a, int n, int k)";
      "{";
      "  int i;";
      "  for (i = 0; i < n; i++)";
      "    a[i] = 0.5f * (a[i + k] + a[i + k + 1]);";
      "}";
      "void scale2(float *d, int m)";
      "{";
      "  int i;";
      "  for (i = 0; i < 32 * m; i++)";
      "    d[i] = d[i] * 2.0f;";
      "}";
      Printf.sprintf "float buf[%d];" n;
      Printf.sprintf "float img[%d];" (2 * n);
      "int main()";
      "{";
      "  int i, r;";
      "  float sb;";
      Printf.sprintf "  for (i = 0; i < %d; i++)" n;
      "    buf[i] = 0.5f + (float)i * 0.01f;";
      Printf.sprintf "  for (i = 0; i < %d; i++)" (2 * n);
      Printf.sprintf "    img[i] = (float)(%d - i) * 0.125f;" (2 * n);
      "  for (r = 0; r < 4; r++) {";
      Printf.sprintf "    shift(buf, %d, %d);" (n / 4) (5 * n / 8);
      Printf.sprintf "    shift(buf, %d, %d);" (n / 8) (3 * n / 4);
      Printf.sprintf "    smooth(img, %d, %d);" ((n / 2) - 12) n;
      Printf.sprintf "    smooth(img, %d, %d);" (2 * n / 5) n;
      Printf.sprintf "    scale2(buf, %d);" (n / 128);
      Printf.sprintf "    scale2(buf, %d);" (n / 256);
      "  }";
      "  sb = 0.0f;";
      Printf.sprintf "  for (i = 0; i < %d; i++)" n;
      "    sb = sb + buf[i];";
      "  printf(\"%g %g %g\\n\", sb, buf[0], img[0]);";
      "  return 0;";
      "}";
    ]

(* a general compile-time workload for the bechamel timings *)
let compile_time_workload = daxpy 100

(* ----------------------------------------------------------------- *)
(* Monorepo for the compile service (MONOREPO)                       *)
(* ----------------------------------------------------------------- *)

(* One synthetic translation unit of a generated monorepo.  [variant]
   picks the kernel family — units sharing a variant are textually
   identical, so a content-addressed cache dedups them across the repo.
   [leaf_edit] and [kern_edit] are per-unit edit counters simulating an
   editing session: bumping one changes exactly one function body.

   The unit splits into two invalidation components: a three-level call
   chain (top -> mid -> leaf, sharing the [src]/[acc] globals) and an
   independent kernel on its own globals.  A leaf edit must invalidate
   the whole chain but leave the kernel's cache entry live. *)
let monorepo_tu ~variant ~leaf_edit ~kern_edit =
  nl
    [
      "/* synthetic monorepo unit */";
      "static float acc[64];";
      "static float src[64];";
      "static float kacc[128];";
      "static float ksrc[128];";
      Printf.sprintf "float leaf(float x) { return x * %d.0f + %d.0f; }"
        (variant + 2) (leaf_edit + 1);
      "float mid(float x) { return leaf(x) + leaf(x + 1.0f); }";
      "float top(int n)";
      "{";
      "  int i;";
      "  float s;";
      "  s = 0.0f;";
      "  for (i = 0; i < n; i++) {";
      "    acc[i] = mid(src[i]);";
      "    s = s + acc[i];";
      "  }";
      "  return s;";
      "}";
      (* a 2-deep nest in the chain component so the optimizer earns its
         keep per unit: interchange/fusion/vectorization all engage *)
      "float sweep(int n)";
      "{";
      "  int i, j;";
      "  float s;";
      "  s = 0.0f;";
      "  for (j = 0; j < 8; j++)";
      "    for (i = 0; i < n; i++)";
      "      acc[i] = acc[i] + src[i] * leaf((float)j);";
      "  for (i = 0; i < n; i++)";
      "    s = s + acc[i];";
      "  return s;";
      "}";
      "int kernel(int n)";
      "{";
      "  int i, j;";
      Printf.sprintf "  for (i = 0; i < n; i++) kacc[i] = ksrc[i] * %d.0f;"
        (kern_edit + variant + 1);
      "  for (j = 0; j < 4; j++)";
      "    for (i = 0; i < n; i++)";
      "      kacc[i] = kacc[i] + ksrc[i] * (float)j;";
      "  return n;";
      "}";
    ]

(* ---- doacross pipelining workloads (post/wait synchronization) ----

   Counted loops whose every carried dependence has a known constant
   distance: the post/wait path spreads iterations round-robin while
   sync counters order the crossing edges.  The heavy polynomial bodies
   sit inside the dependence cycle on purpose — work outside it would be
   distributed into a vector loop instead of pipelined. *)

(* linear recurrence at carried distance 8: one sync channel *)
let doacross_recurrence =
  nl
    [
      "double a[4200];";
      "int main() {";
      "  int i;";
      "  double t, p;";
      "  for (i = 0; i < 8; i = i + 1)";
      "    a[i] = 0.25 + (double)i * 0.0625;";
      "  for (i = 0; i < 4096; i++) {";
      "    t = a[i];";
      "    p = (t * 0.5 + 1.0) * (t - 0.25) + (t * t) * 0.125;";
      "    p = p * (t * 0.0625 - 2.0) + (t + 3.0) * 0.75;";
      "    a[i + 8] = p * 0.125 + t * 0.875;";
      "  }";
      "  printf(\"a[2048]=%g a[4103]=%g\\n\", a[2048], a[4103]);";
      "  return 0;";
      "}";
    ]

(* wavefront update with two carried distances (63 and 64): redundant
   synchronization elimination keeps the chain minimal *)
let doacross_wavefront =
  nl
    [
      "double u[8400];";
      "int main() {";
      "  int k;";
      "  double s, q, r, w;";
      "  for (k = 0; k < 64; k = k + 1)";
      "    u[k] = 0.25 + (double)k * 0.015625;";
      "  for (k = 0; k < 8192; k++) {";
      "    s = u[k] * 0.3 + u[k + 1] * 0.3;";
      "    q = u[k] * u[k + 1];";
      "    r = q * (1.0 - q * 0.5) * 0.02 + s;";
      "    w = q * (0.5 + q * 0.25) * 0.015625;";
      "    u[k + 64] = u[k + 64] * 0.35 + r + w + 0.05;";
      "  }";
      "  printf(\"u[4096]=%.15g u[8255]=%.15g\\n\", u[4096], u[8255]);";
      "  return 0;";
      "}";
    ]
