(* The experiment harness: regenerates every quantitative claim and worked
   example in the paper's evaluation (the paper has no numbered tables or
   figures; EXPERIMENTS.md indexes the claims as E1-E10).

     dune exec bench/main.exe             -- all experiment tables
     dune exec bench/main.exe E2 E8       -- selected experiments
     dune exec bench/main.exe bechamel    -- compile-time measurements

   Absolute cycle counts come from the Titan simulator's timing model; the
   *shapes* (who wins, by what factor) are the reproduction targets. *)

let section id title paper_claim =
  Printf.printf "\n==== %s: %s\n" id title;
  Printf.printf "     paper: %s\n\n" paper_claim

let compile options src = fst (Vpc.compile ~options src)

let machine ?(procs = 1) ?(sched = Vpc.Titan.Machine.Overlap_full) () =
  { Vpc.Titan.Machine.default_config with procs; sched }

let run ?procs ?sched ?entry ?args prog =
  Vpc.run_titan ~config:(machine ?procs ?sched ()) ?entry ?args prog

let row fmt = Printf.printf fmt

(* --json OUT support: every [record]ed run lands in a machine-readable
   table keyed by experiment id. *)
let json_results : (string * string) list ref = ref []

let record id ?(procs = 1) ?(sched = Vpc.Titan.Machine.Overlap_full)
    (r : Vpc.Titan.Machine.run_result) =
  json_results :=
    ( id,
      Printf.sprintf
        "{\"cycles\": %d, \"mflops\": %.3f, \"procs\": %d, \"sched\": \"%s\", \
         \"mem_ops\": %d, \"vector_mem_elems_avoided\": %d, \"busy_iu\": %d, \
         \"busy_fpu\": %d, \"busy_mem\": %d, \"posts\": %d, \"waits\": %d, \
         \"post_wait_stalls\": %d}"
        r.metrics.cycles r.mflops_rate procs
        (Vpc.Titan.Machine.sched_name sched)
        r.metrics.mem_ops r.metrics.vector_mem_elems_avoided r.metrics.busy_iu
        r.metrics.busy_fpu r.metrics.busy_mem r.metrics.posts r.metrics.waits
        r.metrics.post_wait_stalls )
    :: !json_results

let write_json path =
  let oc = open_out path in
  output_string oc "{\n  \"pr\": 9,\n  \"results\": {\n";
  let entries = List.rev !json_results in
  let last = List.length entries - 1 in
  List.iteri
    (fun i (id, item) ->
      Printf.fprintf oc "    \"%s\": %s%s\n" id item (if i = last then "" else ","))
    entries;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "\njson results written to %s\n" path

(* ----------------------------------------------------------------- *)
(* E1: §6 backsolve — dependence-driven scalar optimization          *)
(* ----------------------------------------------------------------- *)

let e1 () =
  section "E1" "backsolve loop (§6)"
    "0.5 MFLOPS scalar -> 1.9 MFLOPS with dependence-driven optimization \
     (3.8x, within 5% of best possible)";
  let src = Workloads.backsolve 2000 in
  let bench name options sched =
    let prog = compile options src in
    let r =
      run ~sched ~entry:"backsolve" ~args:[ Vpc.Titan.Machine.Vi 2000 ] prog
    in
    record ("E1/" ^ name) ~sched r;
    row "  %-34s %9d cycles  %5.2f MFLOPS\n" name r.metrics.cycles
      r.mflops_rate;
    r
  in
  let naive =
    bench "scalar only (sequential issue)" Vpc.o0 Vpc.Titan.Machine.Sequential
  in
  ignore
    (bench "scalar + unit overlap, no dep info" Vpc.o0
       Vpc.Titan.Machine.Overlap_conservative);
  ignore
    (bench "classic scalar opt (O1)" Vpc.o1
       Vpc.Titan.Machine.Overlap_conservative);
  let opt =
    bench "dependence-driven (O3 + full)" Vpc.o3 Vpc.Titan.Machine.Overlap_full
  in
  row "  -> measured speedup %.2fx (paper 3.8x)\n"
    (float_of_int naive.metrics.cycles /. float_of_int opt.metrics.cycles)

(* ----------------------------------------------------------------- *)
(* E2: §9 daxpy — inline + vectorize + parallelize                   *)
(* ----------------------------------------------------------------- *)

let e2 () =
  section "E2" "inlined daxpy (§9)"
    "the vectorized, two-processor compilation runs 12x faster than the \
     scalar version of the same routine";
  let src = Workloads.daxpy 1024 in
  let scalar = compile Vpc.o0 src in
  let opt = compile Vpc.o3 src in
  let r_scalar = run ~sched:Vpc.Titan.Machine.Sequential scalar in
  record "E2/scalar O0 sequential" ~sched:Vpc.Titan.Machine.Sequential r_scalar;
  row "  %-34s %9d cycles  %5.2f MFLOPS\n" "scalar (O0, sequential)"
    r_scalar.metrics.cycles r_scalar.mflops_rate;
  List.iter
    (fun procs ->
      let r = run ~procs opt in
      record (Printf.sprintf "E2/inlined+vector procs=%d" procs) ~procs r;
      row "  %-34s %9d cycles  %5.2f MFLOPS  speedup %5.1fx\n"
        (Printf.sprintf "inlined+vector, %d processor(s)" procs)
        r.metrics.cycles r.mflops_rate
        (float_of_int r_scalar.metrics.cycles /. float_of_int r.metrics.cycles))
    [ 1; 2; 4 ]

(* ----------------------------------------------------------------- *)
(* E3: §9 pipeline stages                                            *)
(* ----------------------------------------------------------------- *)

let e3 () =
  section "E3" "daxpy intermediate forms (§9)"
    "inlined IL -> IV substitution + while->DO -> constant propagation + \
     dead code -> do-parallel vector loop";
  let stages = ref [] in
  let dump stage text = stages := (stage, text) :: !stages in
  let options = { Vpc.o3 with Vpc.dump = Some dump } in
  ignore (Vpc.compile ~options (Workloads.daxpy 100));
  List.iter
    (fun (stage, text) ->
      if stage = "inline" || stage = "final" then begin
        Printf.printf "  --- after %s ---\n" stage;
        let lines = String.split_on_char '\n' text in
        let in_main = ref false in
        List.iter
          (fun l ->
            if l = "int main()" then in_main := true;
            if !in_main then Printf.printf "  %s\n" l;
            if !in_main && l = "}" then in_main := false)
          lines
      end)
    (List.rev !stages)

(* ----------------------------------------------------------------- *)
(* E4: §5.2 while→DO conversion matrix                               *)
(* ----------------------------------------------------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let e4 () =
  section "E4" "while->DO conversion (§5.2)"
    "conversion succeeds exactly when bounds/strides are invariant and no \
     branch enters or leaves the loop";
  let ok = ref true in
  List.iter
    (fun (name, src, expect) ->
      let prog = compile { Vpc.o1 with Vpc.strength_reduction = false } src in
      let il = Vpc.Il.Pp.prog_to_string prog in
      let converted = contains ~needle:"do fortran" il in
      if converted <> expect then ok := false;
      row "  %-28s expected %-9s got %-9s %s\n" name
        (if expect then "convert" else "reject")
        (if converted then "convert" else "reject")
        (if converted = expect then "ok" else "MISMATCH"))
    Workloads.conversion_cases;
  row "  -> %s\n" (if !ok then "all cases as predicted" else "MISMATCHES above")

(* ----------------------------------------------------------------- *)
(* E5: §5.3 induction-variable substitution backtracking             *)
(* ----------------------------------------------------------------- *)

let e5 () =
  section "E5" "IV substitution backtracking (§5.3)"
    "worst case n passes over a loop; in practice the average case is the \
     same single pass as the straightforward algorithm";
  row "  %-12s %-8s %-8s %-14s\n" "chain depth" "IVs" "passes" "blocked events";
  List.iter
    (fun depth ->
      let prog = Vpc.parse (Workloads.chain_program depth) in
      List.iter
        (fun f -> ignore (Vpc.Transform.While_to_do.run prog f))
        prog.Vpc.Il.Prog.funcs;
      let stats = Vpc.Transform.Indvar.new_stats () in
      List.iter
        (fun f -> ignore (Vpc.Transform.Indvar.run ~stats prog f))
        prog.Vpc.Il.Prog.funcs;
      row "  %-12d %-8d %-8d %-14d\n" depth stats.ivs_found
        stats.max_passes_one_loop stats.blocked_events)
    [ 0; 1; 2; 4; 8; 16 ];
  row "\n  interleaved chains (recognition of p_j blocks on p_j-1):\n";
  row "  %-12s %-8s %-8s %-14s\n" "chain depth" "IVs" "passes" "blocked events";
  List.iter
    (fun depth ->
      let prog = Vpc.parse (Workloads.blocking_chain_program depth) in
      List.iter
        (fun f -> ignore (Vpc.Transform.While_to_do.run prog f))
        prog.Vpc.Il.Prog.funcs;
      let stats = Vpc.Transform.Indvar.new_stats () in
      List.iter
        (fun f -> ignore (Vpc.Transform.Indvar.run ~stats prog f))
        prog.Vpc.Il.Prog.funcs;
      row "  %-12d %-8d %-8d %-14d\n" depth stats.ivs_found
        stats.max_passes_one_loop stats.blocked_events)
    [ 1; 2; 4; 8; 16 ]

(* ----------------------------------------------------------------- *)
(* E6: §8 unreachable code after inlining                            *)
(* ----------------------------------------------------------------- *)

let e6 () =
  section "E6" "constant propagation + unreachable code (§8)"
    "daxpy(alpha = 0): constant propagation must reveal the inlined body \
     as unreachable and remove it";
  let count_stmts prog name =
    List.length (Vpc.Il.Func.all_stmts (Vpc.Il.Prog.func_exn prog name))
  in
  let no_opt =
    compile { Vpc.o3 with Vpc.scalar_opt = false } Workloads.dead_daxpy
  in
  let opt_prog, stats = Vpc.compile ~options:Vpc.o3 Workloads.dead_daxpy in
  row "  main after inlining, before cleanup: %3d statements\n"
    (count_stmts no_opt "main");
  row "  main after constant propagation:     %3d statements\n"
    (count_stmts opt_prog "main");
  row "  branches folded: %d, statements removed as unreachable: %d\n"
    stats.const_prop.branches_folded
    (stats.const_prop.stmts_removed + stats.unreachable.removed)

(* ----------------------------------------------------------------- *)
(* E7: §1/§7 inlining enables vectorization                          *)
(* ----------------------------------------------------------------- *)

let e7 () =
  section "E7" "inlining x vectorization (§1, §7)"
    "function calls generally inhibit vectorization of any loop containing \
     them; inlining removes the barrier and the call overhead";
  let bench name options =
    let prog, stats = Vpc.compile ~options Workloads.call_in_loop_suite in
    let r = run prog in
    row "  %-22s loops vectorized %d/4   %8d cycles   calls at runtime %d\n"
      name stats.vectorize.loops_vectorized r.metrics.cycles r.metrics.calls;
    r
  in
  let without = bench "without inlining" Vpc.o2 in
  let with_ = bench "with inlining" Vpc.o3 in
  row "  -> inlining speedup %.1fx\n"
    (float_of_int without.metrics.cycles /. float_of_int with_.metrics.cycles)

(* ----------------------------------------------------------------- *)
(* E8: §2/§9 parallel scaling                                        *)
(* ----------------------------------------------------------------- *)

let e8 () =
  section "E8" "multiprocessor scaling (§2, §9)"
    "spreading loop iterations among multiple processors can provide \
     significant speedups; the Titan has up to four processors";
  row "  %-8s %22s %22s %22s\n" "n" "procs=1" "procs=2" "procs=4";
  List.iter
    (fun n ->
      let src = Workloads.vector_add n in
      let prog = compile Vpc.o2 src in
      let base = ref 0 in
      row "  %-8d" n;
      List.iter
        (fun procs ->
          let r = run ~procs prog in
          if procs = 1 then base := r.metrics.cycles;
          row " %14d (%4.2fx)" r.metrics.cycles
            (float_of_int !base /. float_of_int r.metrics.cycles))
        [ 1; 2; 4 ];
      row "\n")
    [ 128; 512; 2048; 8192 ]

(* ----------------------------------------------------------------- *)
(* E9: §6 dependence-driven instruction scheduling                   *)
(* ----------------------------------------------------------------- *)

let e9 () =
  section "E9" "overlap scheduling (§6)"
    "dependence information passed to code generation allows overlap of \
     integer/floating/memory work — speedups without any vector hardware";
  row "  %-20s %-12s %-14s %-10s\n" "kernel" "sequential" "conservative" "full";
  List.iter
    (fun (name, src, entry, args) ->
      (* dependence-driven scalar optimization without vectorization: the
         compiler's analysis is what licenses the full-overlap schedule *)
      let prog =
        compile { Vpc.o2 with Vpc.vectorize = false; parallelize = false } src
      in
      let cycles sched = (run ~sched ?entry ?args prog).metrics.cycles in
      let s = cycles Vpc.Titan.Machine.Sequential in
      let c = cycles Vpc.Titan.Machine.Overlap_conservative in
      let f = cycles Vpc.Titan.Machine.Overlap_full in
      row "  %-20s %-12d %-14d %-10d (%.2fx)\n" name s c f
        (float_of_int s /. float_of_int f))
    [
      ( "backsolve n=2000",
        Workloads.backsolve 2000,
        Some "backsolve",
        Some [ Vpc.Titan.Machine.Vi 2000 ] );
      ("daxpy n=1024", Workloads.daxpy 1024, None, None);
    ]

(* ----------------------------------------------------------------- *)
(* E10: §10 extensions                                               *)
(* ----------------------------------------------------------------- *)

let e10 () =
  section "E10" "extensions (§10)"
    "arrays embedded within structures must vectorize (the Dore \
     deficiency); pointer-chasing loops are the future-work case";
  let prog, stats = Vpc.compile ~options:Vpc.o3 Workloads.struct_arrays in
  let r = run prog in
  row "  struct-embedded arrays: %d loop(s) vectorized, %d cycles\n"
    stats.vectorize.loops_vectorized r.metrics.cycles;
  let scalar = compile Vpc.o0 Workloads.struct_arrays in
  let rs = run ~sched:Vpc.Titan.Machine.Sequential scalar in
  row "  scalar baseline:        %d cycles (speedup %.1fx)\n" rs.metrics.cycles
    (float_of_int rs.metrics.cycles /. float_of_int r.metrics.cycles);
  let lprog, lstats =
    Vpc.compile ~options:Vpc.o3 (Workloads.list_walk ~pragma:true)
  in
  row "  list walk (doacross, §10's future work): %d loop(s) transformed\n"
    lstats.doacross.loops_transformed;
  let lbase =
    compile Vpc.o3 (Workloads.list_walk ~pragma:false)
  in
  let base_cycles = (run lbase).metrics.cycles in
  row "    %-22s %8d cycles\n" "sequential" base_cycles;
  List.iter
    (fun procs ->
      let lr = run ~procs lprog in
      row "    %-22s %8d cycles (%.2fx)\n"
        (Printf.sprintf "doacross, %d procs" procs)
        lr.metrics.cycles
        (float_of_int base_cycles /. float_of_int lr.metrics.cycles))
    [ 1; 2; 4 ]

(* ----------------------------------------------------------------- *)
(* Ablations: the design choices DESIGN.md calls out                 *)
(* ----------------------------------------------------------------- *)

(* A1: the vector strip length (the paper uses 32). *)
let a1 () =
  section "A1" "strip length ablation"
    "the Titan's vector registers can be viewed as four vectors of length \
     2048 or 8196 scalars; the compiler strips at 32";
  let src = Workloads.vector_add 4096 in
  row "  %-8s %-26s %-10s\n" "vlen" "cycles (1 proc)" "(2 procs)";
  List.iter
    (fun vlen ->
      let prog = compile { Vpc.o2 with Vpc.vlen } src in
      let c1 = (run ~procs:1 prog).metrics.cycles in
      let c2 = (run ~procs:2 prog).metrics.cycles in
      row "  %-8d %-26d %-10d\n" vlen c1 c2)
    [ 8; 16; 32; 64; 128; 512 ]

(* A2: the aliasing escape hatches on pointer-parameter loops. *)
let a2 () =
  section "A2" "aliasing ablation"
    "C imposes no constraints on argument aliasing; vectorization of \
     pointer loops needs inlining, the pragma, or the Fortran-semantics \
     option";
  let src =
    "void f(float *x, float *y, int n) {\n\
    \  int i;\n\
    \  for (i = 0; i < n; i++) x[i] = y[i] * 2.0f + 1.0f;\n\
     }\n\
     float a[2048], b[2048];\n\
     int main() { f(a, b, 2048); return 0; }"
  in
  List.iter
    (fun (name, options) ->
      let prog, stats = Vpc.compile ~options src in
      let r = run ~procs:2 prog in
      row "  %-34s vectorized=%d  %8d cycles\n" name
        stats.vectorize.loops_vectorized r.metrics.cycles)
    [
      ("conservative (may-alias)",
       { Vpc.o2 with Vpc.inline = `None; pointsto = false });
      ("--noalias option",
       { Vpc.o2 with Vpc.inline = `None; pointsto = false;
         assume_noalias = true });
      ("points-to proves disjointness",
       { Vpc.o2 with Vpc.inline = `None });
      ("inlining exposes the arrays", Vpc.o3);
    ]

(* A3: the automatic-inlining size threshold. *)
let a3 () =
  section "A3" "inline size threshold ablation"
    "automatic inlining needs a size cutoff; the §2 goal is cheap calls \
     to small library routines";
  let src = Workloads.call_in_loop_suite in
  List.iter
    (fun max_stmts ->
      let stats = Vpc.new_stats () in
      let prog = Vpc.parse src in
      Vpc.Inline.Inline.expand
        ~options:{ Vpc.Inline.Inline.default_options with
                   max_callee_stmts = max_stmts }
        ~stats:stats.inline prog;
      ignore (Vpc.optimize ~options:{ Vpc.o2 with Vpc.inline = `None } ~stats prog);
      let r = run prog in
      row "  max callee stmts %-6d inlined=%d  vectorized=%d/4  %8d cycles\n"
        max_stmts stats.inline.calls_inlined stats.vectorize.loops_vectorized
        r.metrics.cycles)
    [ 0; 2; 10; 200 ]

(* A4: the parallel-loop barrier cost determines the crossover size. *)
let a4 () =
  section "A4" "parallel crossover"
    "spreading iterations pays only past the synchronization cost: small \
     loops should not slow down with more processors by much";
  row "  %-8s %-22s %-22s\n" "n" "1 proc" "4 procs";
  List.iter
    (fun n ->
      let prog = compile Vpc.o2 (Workloads.vector_add n) in
      let c1 = (run ~procs:1 prog).metrics.cycles in
      let c4 = (run ~procs:4 prog).metrics.cycles in
      row "  %-8d %-22d %-22d %s\n" n c1 c4
        (if c4 <= c1 then "(parallel wins)" else "(barrier dominates)"))
    [ 8; 32; 64; 128; 1024 ]

(* ----------------------------------------------------------------- *)
(* PGO: profile-guided optimization (lib/profile)                    *)
(* ----------------------------------------------------------------- *)

let pgo_exp () =
  section "PGO" "profile-guided optimization (lib/profile)"
    "a measured profile corrects the static cost guesses: loops the run \
     proved short stay scalar, calls the run proved cold stay calls, and \
     PGO never loses to the static compilation";
  row "  %-22s %-30s %-40s\n" "" "static" "profile-guided";
  let case name ~procs ~options src =
    let cfg = machine ~procs () in
    let sprog, ss = Vpc.compile ~options src in
    let sr = Vpc.run_titan ~config:cfg sprog in
    let data, _ = Vpc.profile_gen ~config:cfg src in
    let pprog, ps =
      Vpc.compile ~options:{ options with Vpc.profile = Some data } src
    in
    let pr = Vpc.run_titan ~config:cfg pprog in
    record (Printf.sprintf "PGO/%s/static" name) ~procs sr;
    record (Printf.sprintf "PGO/%s/pgo" name) ~procs pr;
    row
      "  %-22s vec=%d par=%d inl=%d %8d cyc | vec=%d par=%d inl=%d cold=%d \
       %8d cyc  %s\n"
      name ss.Vpc.vectorize.loops_vectorized ss.vectorize.loops_parallelized
      ss.inline.calls_inlined sr.metrics.cycles
      ps.Vpc.vectorize.loops_vectorized ps.vectorize.loops_parallelized
      ps.inline.calls_inlined ps.inline.calls_skipped_cold pr.metrics.cycles
      (if pr.metrics.cycles < sr.metrics.cycles then "(pgo wins)"
       else if pr.metrics.cycles = sr.metrics.cycles then "(tie)"
       else "(PGO LOSES)")
  in
  case "short-trip n=4" ~procs:2
    ~options:{ Vpc.o2 with Vpc.assume_noalias = true }
    (Workloads.param_trip_kernel ~trips:4 ~calls:50);
  case "mid-trip n=128" ~procs:2
    ~options:{ Vpc.o2 with Vpc.assume_noalias = true }
    (Workloads.param_trip_kernel ~trips:128 ~calls:50);
  case "backsolve+cold call" ~procs:1 ~options:Vpc.o3
    (Workloads.backsolve_cold 2000)

(* ----------------------------------------------------------------- *)
(* NEST: loop-nest restructuring (interchange + fusion, §7)          *)
(* ----------------------------------------------------------------- *)

let nest_exp () =
  section "NEST" "loop-nest restructuring (§7)"
    "direction-vector dependence licenses interchange and fusion; the \
     cost model applies them only where the Titan wins (matmul reordered, \
     stencil passes fused into one strip loop, transpose's nest order \
     kept because either order has one long-stride reference)";
  row "  %-14s %-6s %-28s %-28s\n" "kernel" "procs" "passes off" "passes on";
  let case name src ~procs =
    (* both sides get the same two-pass PGO treatment at this machine
       configuration, and every stage is verified (--verify-il) *)
    let cfg = machine ~procs () in
    let data, _ = Vpc.profile_gen ~config:cfg src in
    let opts on =
      {
        Vpc.o3 with
        Vpc.interchange = on;
        fuse = on;
        profile = Some data;
        verify = `Each_stage;
      }
    in
    let build on =
      let prog, stats = Vpc.compile ~options:(opts on) src in
      (Vpc.run_titan ~config:cfg ~vreuse:(opts on).Vpc.vreuse prog, stats)
    in
    let r_off, _ = build false in
    let r_on, s_on = build true in
    if r_on.stdout_text <> r_off.stdout_text then
      failwith (Printf.sprintf "NEST/%s: output mismatch passes on vs off" name);
    record (Printf.sprintf "NEST/%s/procs=%d/off" name procs) ~procs r_off;
    record (Printf.sprintf "NEST/%s/procs=%d/on" name procs) ~procs r_on;
    row "  %-14s %-6d %12d cycles %12d cycles  ic=%d fu=%d sh=%d  %s\n" name
      procs r_off.metrics.cycles r_on.metrics.cycles
      s_on.Vpc.interchange.nests_interchanged s_on.fuse.loops_fused
      s_on.vectorize.strip_loops_shared
      (if r_on.metrics.cycles < r_off.metrics.cycles then "(restructured wins)"
       else if r_on.metrics.cycles = r_off.metrics.cycles then "(tie)"
       else "(LOSES)")
  in
  let kernels =
    [
      ("matmul-ijk", Workloads.matmul ~order:`Ijk ~n:48 ~k:96 ~m:96);
      ("matmul-ikj", Workloads.matmul ~order:`Ikj ~n:48 ~k:96 ~m:96);
      ("stencil5", Workloads.stencil5 ~n:66 ~m:128);
      ("transpose", Workloads.transpose ~n:64 ~m:128);
    ]
  in
  List.iter
    (fun (name, src) ->
      List.iter (fun procs -> case name src ~procs) [ 1; 2; 4 ])
    kernels

(* ----------------------------------------------------------------- *)
(* REUSE: vector-register reuse across strips                        *)
(* ----------------------------------------------------------------- *)

let reuse_exp () =
  section "REUSE" "vector-register reuse"
    "with the memory port the bottleneck, keeping sections resident in \
     vector registers (accumulators across strips, store->load \
     forwarding within fused strip bodies) removes the redundant Vload \
     and Vstore traffic; both sides get the same two-pass PGO treatment \
     and the outputs are cross-checked";
  row "  %-14s %-6s %-14s %-14s %-12s\n" "kernel" "procs" "reuse off"
    "reuse on" "elems avoided";
  let case name src ~procs =
    let cfg = machine ~procs () in
    let data, _ = Vpc.profile_gen ~config:cfg src in
    let build vreuse =
      let opts =
        {
          Vpc.o3 with
          Vpc.vreuse;
          profile = Some data;
          verify = `Each_stage;
        }
      in
      let prog, stats = Vpc.compile ~options:opts src in
      (Vpc.run_titan ~config:cfg ~vreuse prog, stats)
    in
    let r_off, _ = build false in
    let r_on, s_on = build true in
    if r_on.stdout_text <> r_off.stdout_text then
      failwith (Printf.sprintf "REUSE/%s: output mismatch reuse on vs off" name);
    record (Printf.sprintf "REUSE/%s/procs=%d/off" name procs) ~procs r_off;
    record (Printf.sprintf "REUSE/%s/procs=%d/on" name procs) ~procs r_on;
    row "  %-14s %-6d %8d cyc   %8d cyc   %10d  acc=%d fwd=%d  %s\n" name procs
      r_off.metrics.cycles r_on.metrics.cycles
      r_on.metrics.vector_mem_elems_avoided
      s_on.Vpc.vreuse.accumulators_localized s_on.vreuse.stores_forwarded
      (if r_on.metrics.cycles < r_off.metrics.cycles then "(reuse wins)"
       else if r_on.metrics.cycles = r_off.metrics.cycles then "(tie)"
       else "(LOSES)")
  in
  let kernels =
    [
      ("matmul-ijk", Workloads.matmul ~order:`Ijk ~n:48 ~k:96 ~m:96);
      ("matmul-ikj", Workloads.matmul ~order:`Ikj ~n:48 ~k:96 ~m:96);
      ("saxpy-chain", Workloads.saxpy_chain ~n:2048);
    ]
  in
  List.iter
    (fun (name, src) ->
      List.iter (fun procs -> case name src ~procs) [ 1; 2; 4 ])
    kernels

(* ----------------------------------------------------------------- *)
(* PTR: interprocedural points-to and mod/ref (lib/pointsto)         *)
(* ----------------------------------------------------------------- *)

let ptr_exp () =
  section "PTR" "interprocedural points-to (lib/pointsto)"
    "pointer-parameter kernels vectorize with no pragma, no --noalias, \
     and no inlining once the whole-program analysis proves every call \
     site's arguments disjoint; both sides verify the IL between every \
     stage and the outputs are cross-checked";
  row "  %-14s %-6s %-16s %-16s %-10s\n" "kernel" "procs" "pointsto off"
    "pointsto on" "vec off/on";
  let case name src ~procs =
    let cfg = machine ~procs () in
    let build pointsto =
      let opts = { Vpc.o2 with Vpc.pointsto; verify = `Each_stage } in
      let prog, stats = Vpc.compile ~options:opts src in
      (Vpc.run_titan ~config:cfg prog, stats)
    in
    let r_off, s_off = build false in
    let r_on, s_on = build true in
    if r_on.stdout_text <> r_off.stdout_text then
      failwith
        (Printf.sprintf "PTR/%s: output mismatch pointsto on vs off" name);
    record (Printf.sprintf "PTR/%s/procs=%d/off" name procs) ~procs r_off;
    record (Printf.sprintf "PTR/%s/procs=%d/on" name procs) ~procs r_on;
    row "  %-14s %-6d %10d cyc   %10d cyc   %d/%d  %s\n" name procs
      r_off.metrics.cycles r_on.metrics.cycles
      s_off.Vpc.vectorize.loops_vectorized s_on.Vpc.vectorize.loops_vectorized
      (if r_on.metrics.cycles < r_off.metrics.cycles then "(pointsto wins)"
       else if r_on.metrics.cycles = r_off.metrics.cycles then "(tie)"
       else "(LOSES)")
  in
  List.iter
    (fun (name, src) ->
      List.iter (fun procs -> case name src ~procs) [ 1; 2; 4 ])
    [
      ("ptrkernels", Workloads.ptrkernels ~n:1024);
      ("ptrkernels-4k", Workloads.ptrkernels ~n:4096);
    ]

(* ----------------------------------------------------------------- *)
(* RANGE: symbolic value ranges and scalar evolutions (lib/range)    *)
(* ----------------------------------------------------------------- *)

let range_exp () =
  section "RANGE" "symbolic range analysis (lib/range)"
    "kernels whose bounds and offsets are parameters vectorize once the \
     seeded intervals push the symbolic byte distances past the Banerjee \
     span, and 32*m trip counts drop the strip-loop remainder guards; \
     both sides verify the IL between every stage and the outputs are \
     cross-checked";
  row "  %-14s %-6s %-16s %-16s %-10s\n" "kernel" "procs" "range off"
    "range on" "vec off/on";
  let case name src ~procs =
    let cfg = machine ~procs () in
    let build range =
      let opts = { Vpc.o2 with Vpc.range; verify = `Each_stage } in
      let prog, stats = Vpc.compile ~options:opts src in
      (Vpc.run_titan ~config:cfg prog, stats)
    in
    let r_off, s_off = build false in
    let r_on, s_on = build true in
    if r_on.stdout_text <> r_off.stdout_text then
      failwith
        (Printf.sprintf "RANGE/%s: output mismatch range on vs off" name);
    record (Printf.sprintf "RANGE/%s/procs=%d/off" name procs) ~procs r_off;
    record (Printf.sprintf "RANGE/%s/procs=%d/on" name procs) ~procs r_on;
    row "  %-14s %-6d %10d cyc   %10d cyc   %d/%d  %s\n" name procs
      r_off.metrics.cycles r_on.metrics.cycles
      s_off.Vpc.vectorize.loops_vectorized s_on.Vpc.vectorize.loops_vectorized
      (if r_on.metrics.cycles < r_off.metrics.cycles then "(range wins)"
       else if r_on.metrics.cycles = r_off.metrics.cycles then "(tie)"
       else "(LOSES)")
  in
  List.iter
    (fun (name, src) ->
      List.iter (fun procs -> case name src ~procs) [ 1; 2; 4 ])
    [
      ("symbolic", Workloads.symbolic ~n:1024);
      ("symbolic-4k", Workloads.symbolic ~n:4096);
    ]

(* ----------------------------------------------------------------- *)
(* DOACROSS: post/wait pipelining of carried-dependence loops         *)
(* ----------------------------------------------------------------- *)

let doacross_exp () =
  section "DOACROSS" "post/wait pipelining (carried-dependence DO loops)"
    "loops whose carried dependences have constant distance pipeline \
     across processors with post/wait counters; the win at 4 processors \
     must be at least 1.5x with identical output, and turning the pass \
     off must leave a plain serial loop";
  row "  %-14s %-6s %12s %12s %8s %8s\n" "workload" "procs" "serial cyc"
    "pipelined" "ratio" "stalls";
  let case name src ~procs =
    let build sync =
      Vpc.compile ~options:{ Vpc.o2 with Vpc.doacross_sync = sync } src
    in
    let prog_off, _ = build false in
    let prog_on, s_on = build true in
    let r_off = run ~procs prog_off in
    let r_on = run ~procs prog_on in
    if r_on.stdout_text <> r_off.stdout_text then
      failwith
        (Printf.sprintf "DOACROSS/%s: output mismatch sync on vs off" name);
    if s_on.Vpc.doacross.do_pipelined < 1 then
      failwith (Printf.sprintf "DOACROSS/%s: loop did not pipeline" name);
    record (Printf.sprintf "DOACROSS/%s/procs=%d/off" name procs) ~procs r_off;
    record (Printf.sprintf "DOACROSS/%s/procs=%d/on" name procs) ~procs r_on;
    let ratio =
      float_of_int r_off.metrics.cycles /. float_of_int r_on.metrics.cycles
    in
    row "  %-14s %-6d %12d %12d %7.2fx %8d\n" name procs r_off.metrics.cycles
      r_on.metrics.cycles ratio r_on.metrics.post_wait_stalls;
    if procs = 4 && ratio < 1.5 then
      failwith
        (Printf.sprintf "DOACROSS/%s: %.2fx at 4 procs, floor is 1.5x" name
           ratio)
  in
  List.iter
    (fun (name, src) ->
      List.iter (fun procs -> case name src ~procs) [ 1; 2; 4 ])
    [
      ("recurrence", Workloads.doacross_recurrence);
      ("wavefront", Workloads.doacross_wavefront);
    ]

(* ----------------------------------------------------------------- *)
(* TUNE: simulator-in-the-loop autotuning (titancc --tune)           *)
(* ----------------------------------------------------------------- *)

let tune_exp () =
  section "TUNE" "simulator-in-the-loop autotuning (--tune / --tune-use)"
    "searching the joint per-nest space with the simulator as the oracle \
     must never lose to the static pipeline, must win at least 5% of \
     cycles on at least two workloads, and replaying the stored winners \
     must reproduce the searched cycle count exactly";
  row "  %-14s %12s %12s %8s  %s\n" "workload" "static cyc" "tuned" "gain"
    "evals";
  let procs = 4 in
  let config = machine ~procs () in
  let wins = ref 0 in
  let case name src =
    let options = Vpc.o3 in
    let tr = Vpc.tune ~options ~config ~budget:4 ~stamp:1 src in
    (* replay through the store exactly as --tune-use would: the search
       result must be reproducible from the persisted winners alone *)
    let tuned_prog =
      compile { options with Vpc.tune = `Use tr.Vpc.tuned } src
    in
    let static_prog = compile options src in
    let r_static = run ~procs static_prog in
    let r_tuned = run ~procs tuned_prog in
    if r_tuned.stdout_text <> r_static.stdout_text then
      failwith (Printf.sprintf "TUNE/%s: output mismatch tuned vs static" name);
    if r_tuned.metrics.cycles > r_static.metrics.cycles then
      failwith
        (Printf.sprintf "TUNE/%s: tuned %d cycles > static %d" name
           r_tuned.metrics.cycles r_static.metrics.cycles);
    if r_tuned.metrics.cycles <> tr.Vpc.tuned_cycles then
      failwith
        (Printf.sprintf "TUNE/%s: replay gave %d cycles, search found %d"
           name r_tuned.metrics.cycles tr.Vpc.tuned_cycles);
    record (Printf.sprintf "TUNE/%s/static" name) ~procs r_static;
    record (Printf.sprintf "TUNE/%s/tuned" name) ~procs r_tuned;
    let gain =
      100.0
      *. float_of_int (r_static.metrics.cycles - r_tuned.metrics.cycles)
      /. float_of_int (max 1 r_static.metrics.cycles)
    in
    if gain >= 5.0 then incr wins;
    row "  %-14s %12d %12d %7.1f%%  %d\n" name r_static.metrics.cycles
      r_tuned.metrics.cycles gain tr.Vpc.tune_stats.Vpc.Tune.Search.evaluated
  in
  case "saxpy_chain" (Workloads.saxpy_chain ~n:512);
  case "stencil5" (Workloads.stencil5 ~n:24 ~m:24);
  case "transpose" (Workloads.transpose ~n:32 ~m:32);
  case "backsolve" (Workloads.backsolve 600);
  if !wins < 2 then
    failwith
      (Printf.sprintf "TUNE: only %d workload(s) won >= 5%%, floor is 2" !wins)

(* ----------------------------------------------------------------- *)
(* MONOREPO: the compile service and its procedure cache (lib/server)*)
(* ----------------------------------------------------------------- *)

(* Unlike the cycle-count experiments, the gated metrics here are cache
   miss counts — fully deterministic, so the --compare tolerance never
   bites.  Wall-clock figures (requests/sec, warm-vs-cold speedup) are
   printed for the log and asserted only against the coarse acceptance
   floors. *)
let record_count id n =
  json_results :=
    (id, Printf.sprintf "{\"cycles\": %d, \"unit\": \"count\"}" n)
    :: !json_results

let monorepo_exp () =
  let module S = Vpc_server.Service in
  let module C = Vpc_server.Cache in
  section "MONOREPO"
    "compile service: content-addressed cache + parallel pipelines \
     (lib/server)"
    "compilation as a service over a generated monorepo: an edit-replay \
     session must hit the cache on every untouched component, serve \
     byte-identical artifacts, and beat a cold build by 5x on a one-edit \
     rebuild";
  let n_tus = 120 in
  let edits = Array.make n_tus (0, 0) in
  let req i =
    let leaf_edit, kern_edit = edits.(i) in
    {
      S.req_file = Printf.sprintf "tu%03d.c" i;
      req_src = Workloads.monorepo_tu ~variant:i ~leaf_edit ~kern_edit;
      req_opts = S.default_copts;
    }
  in
  let all_reqs () = List.init n_tus req in
  let elapsed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* cold build: every unit compiles, but identical units dedup *)
  let cache = C.create () in
  let cold, t_cold = elapsed (fun () -> S.compile_batch ~jobs:1 cache (all_reqs ())) in
  let s = C.stats cache in
  let cold_misses = s.C.s_misses in
  row "  cold build:   %d units, %d component probes, %d misses, %.2fs (%.0f req/s)\n"
    n_tus (s.C.s_hits + s.C.s_misses) cold_misses t_cold
    (float_of_int n_tus /. t_cold);
  record_count "MONOREPO/cold/misses" cold_misses;
  (* content addressing dedups identical units under different names *)
  C.reset_counters cache;
  let dups =
    List.init 20 (fun i ->
        { (req i) with S.req_file = Printf.sprintf "copy-of-tu%03d.c" i })
  in
  ignore (S.compile_batch ~jobs:1 cache dups);
  let s = C.stats cache in
  row "  dedup:        %d renamed copies, %d misses\n" (List.length dups)
    s.C.s_misses;
  if s.C.s_misses > 0 then
    failwith "MONOREPO: renamed identical units missed the cache";
  record_count "MONOREPO/dedup/misses" s.C.s_misses;
  (* one-edit rebuild: bump one leaf, recompile the whole repo *)
  edits.(7) <- (1, 0);
  C.reset_counters cache;
  let warm, t_warm = elapsed (fun () -> S.compile_batch ~jobs:1 cache (all_reqs ())) in
  let s = C.stats cache in
  row "  1-edit build: %d units, %d misses, %.2fs (%.1fx vs cold)\n" n_tus
    s.C.s_misses t_warm (t_cold /. t_warm);
  record_count "MONOREPO/one-edit/misses" s.C.s_misses;
  if t_cold < 5.0 *. t_warm then
    failwith
      (Printf.sprintf
         "MONOREPO: one-edit rebuild only %.1fx faster than cold (need 5x)"
         (t_cold /. t_warm));
  (* byte-identity: warm responses must equal a fresh compiler's output *)
  List.iteri
    (fun i (w : S.response) ->
      if i mod 17 = 0 then begin
        let fresh = C.create () in
        let f = S.compile fresh (req i) in
        if f.S.res_il <> w.S.res_il || f.S.res_asm <> w.S.res_asm then
          failwith
            (Printf.sprintf "MONOREPO: served output of tu%03d differs from a \
                             fresh compile" i)
      end)
    warm;
  row "  byte-identity: served IL and asm match fresh compiles\n";
  (* edit replay: thousands of requests, one small edit per round *)
  C.reset_counters cache;
  let rounds = 300 and window = 9 in
  let n_requests = ref 0 in
  let _, t_replay =
    elapsed (fun () ->
        for r = 0 to rounds - 1 do
          let tu = r mod n_tus in
          let leaf_edit, kern_edit = edits.(tu) in
          (* alternate which function the edit lands in *)
          edits.(tu) <-
            (if r mod 2 = 0 then (leaf_edit + 1, kern_edit)
             else (leaf_edit, kern_edit + 1));
          let batch =
            req tu :: List.init window (fun k -> req ((tu + 1 + k) mod n_tus))
          in
          n_requests := !n_requests + List.length batch;
          ignore (S.compile_batch ~jobs:4 cache batch)
        done)
  in
  let s = C.stats cache in
  let probes = s.C.s_hits + s.C.s_misses in
  let hit_rate = float_of_int s.C.s_hits /. float_of_int probes in
  let misses_per_1000 = s.C.s_misses * 1000 / !n_requests in
  row
    "  edit replay:  %d requests in %d rounds, %d/%d component probes hit \
     (%.1f%%), %.2fs (%.0f req/s)\n"
    !n_requests rounds s.C.s_hits probes (100.0 *. hit_rate) t_replay
    (float_of_int !n_requests /. t_replay);
  record_count "MONOREPO/replay/misses-per-1000-requests" misses_per_1000;
  if hit_rate < 0.90 then
    failwith
      (Printf.sprintf "MONOREPO: replay hit rate %.1f%% below the 90%% floor"
         (100.0 *. hit_rate));
  (* concurrency: a 4-domain batch must equal the sequential responses *)
  let par = S.compile_batch ~jobs:4 cache (all_reqs ()) in
  let seq = S.compile_batch ~jobs:1 cache (all_reqs ()) in
  List.iter2
    (fun (a : S.response) (b : S.response) ->
      if a.S.res_il <> b.S.res_il || a.S.res_asm <> b.S.res_asm then
        failwith "MONOREPO: concurrent batch diverged from sequential")
    par seq;
  row "  concurrency:  4-domain batch outputs equal the sequential batch\n";
  ignore cold

(* ----------------------------------------------------------------- *)
(* Bechamel: compile-time costs                                      *)
(* ----------------------------------------------------------------- *)

let bechamel_bench () =
  let open Bechamel in
  let open Toolkit in
  let src = Workloads.compile_time_workload in
  let t name options =
    Test.make ~name (Staged.stage (fun () -> ignore (Vpc.compile ~options src)))
  in
  let tests =
    [
      Test.make ~name:"parse only"
        (Staged.stage (fun () -> ignore (Vpc.parse src)));
      t "compile -O0" Vpc.o0;
      t "compile -O1" Vpc.o1;
      t "compile -O2" Vpc.o2;
      t "compile -O3" Vpc.o3;
      Test.make ~name:"simulate daxpy O3"
        (Staged.stage
           (let prog = compile Vpc.o3 src in
            fun () -> ignore (run prog)));
    ]
  in
  let test = Test.make_grouped ~name:"vpc" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure by_test ->
      if measure = "monotonic-clock" then
        Hashtbl.iter
          (fun name olsr ->
            match Analyze.OLS.estimates olsr with
            | Some [ est ] ->
                Printf.printf "  %-28s %12.1f ns/run\n" name est
            | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
          by_test)
    results

(* ----------------------------------------------------------------- *)
(* Driver                                                            *)
(* ----------------------------------------------------------------- *)

(* --compare FILE: regression gate against a committed baseline (the
   BENCH_pr*.json written by --json).  Reads the baseline with a minimal
   line-based parse of our own fixed output format, then fails if any
   experiment this run also measured got more than [tolerance] slower. *)
let compare_baseline path =
  let tolerance = 0.02 in
  let baseline = ref [] in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       (* lines look like:  "ID": {"cycles": N, ...},  *)
       match String.index_opt line '"' with
       | Some q1 -> (
           match String.index_from_opt line (q1 + 1) '"' with
           | Some q2 -> (
               let id = String.sub line (q1 + 1) (q2 - q1 - 1) in
               let tag = "\"cycles\": " in
               let tl = String.length tag in
               let rec find i =
                 if i + tl > String.length line then None
                 else if String.sub line i tl = tag then Some (i + tl)
                 else find (i + 1)
               in
               match find q2 with
               | Some start ->
                   let stop = ref start in
                   while
                     !stop < String.length line
                     && line.[!stop] >= '0'
                     && line.[!stop] <= '9'
                   do
                     incr stop
                   done;
                   if !stop > start then
                     baseline :=
                       (id, int_of_string (String.sub line start (!stop - start)))
                       :: !baseline
               | None -> ())
           | None -> ())
       | None -> ()
     done
   with End_of_file -> close_in ic);
  let failures = ref 0 and checked = ref 0 in
  List.iter
    (fun (id, item) ->
      match List.assoc_opt id !baseline with
      | None -> ()
      | Some old_cycles ->
          incr checked;
          let tag = "{\"cycles\": " in
          let now =
            int_of_string
              (String.sub item (String.length tag)
                 (String.index item ',' - String.length tag))
          in
          let limit =
            int_of_float (float_of_int old_cycles *. (1.0 +. tolerance))
          in
          if now > limit then begin
            incr failures;
            Printf.printf "REGRESSION %-40s %d -> %d cycles (+%.1f%%)\n" id
              old_cycles now
              (100.0 *. (float_of_int now /. float_of_int old_cycles -. 1.0))
          end)
    (List.rev !json_results);
  Printf.printf "\ncompare vs %s: %d measured, %d regressed beyond %.0f%%\n"
    path !checked !failures (100.0 *. tolerance);
  if !failures > 0 then exit 1

let all =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10);
    ("A1", a1); ("A2", a2); ("A3", a3); ("A4", a4);
    ("PGO", pgo_exp); ("NEST", nest_exp); ("REUSE", reuse_exp);
    ("PTR", ptr_exp); ("RANGE", range_exp); ("DOACROSS", doacross_exp);
    ("TUNE", tune_exp); ("MONOREPO", monorepo_exp);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json_path, args =
    let rec go acc = function
      | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let compare_path, args =
    let rec go acc = function
      | "--compare" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let wanted = List.filter (fun a -> a <> "--") args in
  print_endline
    "Reproduction harness: Allen & Johnson, \"Compiling C for Vectorization,";
  print_endline
    "Parallelization, and Inline Expansion\" (PLDI 1988) on the Titan simulator";
  if wanted = [] then begin
    List.iter (fun (_, f) -> f ()) all;
    print_endline "\n==== compile-time (bechamel) ====";
    bechamel_bench ()
  end
  else
    List.iter
      (fun name ->
        if name = "bechamel" then bechamel_bench ()
        else
          match List.assoc_opt name all with
          | Some f -> f ()
          | None -> Printf.eprintf "unknown experiment %s\n" name)
      wanted;
  (match compare_path with Some path -> compare_baseline path | None -> ());
  match json_path with Some path -> write_json path | None -> ()
