(* titancc: the command-line compiler.

     titancc [OPTIONS] FILE.c

   Compiles a C source file through the vectorizing/parallelizing
   pipeline, optionally dumping the IL after each stage, then runs the
   program on the Titan simulator (and, with --check, also on the IL
   interpreter, comparing outputs). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_compiler file opt_level inline_only no_parallel no_vectorize
    no_interchange no_fuse no_vreuse no_doacross_sync no_pointsto no_range
    lint why_scalar
    assume_noalias vlen
    procs sched_name
    dump_stages
    dump_asm check catalogs
    save_catalog quiet verify_il no_run inject_fault profile_gen profile_use
    report serve cache_dir client timings tune_out tune_use no_tune tune_budget =
  try
    (* the cacheable option subset, shared by daemon keys and client
       requests; callbacks (dump, report, ...) stay local *)
    let copts =
      {
        Vpc_server.Service.opt_level;
        inline_only;
        no_parallel;
        no_vectorize;
        no_interchange;
        no_fuse;
        no_vreuse;
        no_doacross_sync;
        no_pointsto;
        no_range;
        assume_noalias;
        vlen;
        catalogs;
        profile_use;
        tune_use = (if no_tune then None else tune_use);
      }
    in
    (match serve with
    | Some socket_path ->
        let cache = Vpc_server.Cache.create ?dir:cache_dir () in
        Vpc_server.Daemon.serve
          { Vpc_server.Daemon.socket_path; verbose = not quiet }
          cache;
        exit 0
    | None -> ());
    let file =
      match file with
      | Some f -> f
      | None ->
          Printf.eprintf "titancc: FILE.c required unless --serve\n";
          exit 1
    in
    let src = read_file file in
    (match client with
    | Some socket -> (
        let req =
          { Vpc_server.Service.req_file = file; req_src = src; req_opts = copts }
        in
        match Vpc_server.Protocol.request ~socket (Vpc_server.Protocol.Compile req) with
        | Vpc_server.Protocol.Compiled r ->
            (* print the artifact a local --no-run compile would print:
               the asm listing under --dump-asm, the optimized IL
               otherwise *)
            if dump_asm then print_string r.Vpc_server.Service.res_asm
            else print_string r.Vpc_server.Service.res_il;
            if not quiet then
              Printf.eprintf "[client] %d funcs, %d/%d components cached\n"
                r.Vpc_server.Service.res_funcs r.Vpc_server.Service.res_cached
                r.Vpc_server.Service.res_components;
            exit 0
        | Vpc_server.Protocol.Error m ->
            Printf.eprintf "server error: %s\n" m;
            exit 1
        | _ ->
            Printf.eprintf "unexpected server reply\n";
            exit 1)
    | None -> ());
    if lint then begin
      (* lint mode: front end only, then the provable-bug checks over
         the unoptimized IL (where source locations are intact) *)
      let prog = Vpc.parse ~file src in
      let findings = Vpc.Check.Lint.run prog in
      List.iter
        (fun v -> Printf.printf "%s\n" (Vpc.Check.Report.to_string v))
        findings;
      match findings with
      | [] ->
          if not quiet then Printf.eprintf "lint: no findings\n";
          exit 0
      | fs ->
          if not quiet then Printf.eprintf "lint: %d finding(s)\n" (List.length fs);
          exit 4
    end;
    let sched =
      match sched_name with
      | "seq" -> Vpc.Titan.Machine.Sequential
      | "conservative" -> Vpc.Titan.Machine.Overlap_conservative
      | _ -> Vpc.Titan.Machine.Overlap_full
    in
    let config = { Vpc.Titan.Machine.default_config with procs; sched } in
    (match profile_gen with
    | Some prof_path ->
        (* pass one of the two-pass PGO flow: -O0 + instrumentation,
           run on the simulator, write the measured profile *)
        let data, result = Vpc.profile_gen ~config ~file src in
        Vpc.Profile.Data.save data prof_path;
        print_string result.Vpc.Titan.Machine.stdout_text;
        if not quiet then
          Printf.eprintf
            "[profile] %d loops, %d call sites measured -> %s (procs=%d \
             sched=%s)\n"
            (Vpc.Profile.Key.Map.cardinal data.Vpc.Profile.Data.loops)
            (Vpc.Profile.Key.Map.cardinal data.Vpc.Profile.Data.calls)
            prof_path procs sched_name;
        (match result.return_value with
        | Vpc.Titan.Machine.Vi n -> exit (n land 0xFF)
        | Vpc.Titan.Machine.Vf _ -> exit 0)
    | None -> ());
    let base =
      match opt_level with
      | 0 -> Vpc.o0
      | 1 -> Vpc.o1
      | 2 -> Vpc.o2
      | _ -> Vpc.o3
    in
    let options =
      {
        base with
        Vpc.inline =
          (match inline_only with
          | [] -> base.Vpc.inline
          | names -> `Only names);
        parallelize = base.Vpc.parallelize && not no_parallel;
        vectorize = base.Vpc.vectorize && not no_vectorize;
        interchange = base.Vpc.interchange && not no_interchange;
        fuse = base.Vpc.fuse && not no_fuse;
        vreuse = base.Vpc.vreuse && not no_vreuse;
        doacross_sync = base.Vpc.doacross_sync && not no_doacross_sync;
        pointsto = base.Vpc.pointsto && not no_pointsto;
        range = base.Vpc.range && not no_range;
        assume_noalias;
        vlen;
        catalogs;
        dump =
          (if dump_stages then
             Some
               (fun stage text ->
                 Printf.printf "=== after %s ===\n%s\n" stage text)
           else None);
        verify = (if verify_il then `Each_stage else `Off);
        profile = Option.map Vpc.Profile.Data.load profile_use;
        report =
          (if report then Some (fun line -> Printf.eprintf "[pgo] %s\n" line)
           else None);
        why_scalar =
          (if why_scalar then
             Some (fun line -> Printf.eprintf "[why-scalar] %s\n" line)
           else None);
      }
    in
    let timer =
      if timings then Some (Vpc.Support.Timing.create ()) else None
    in
    (* simulator-in-the-loop autotuning: --tune searches (and persists
       winners), --tune-use replays a store, --no-tune forces both off;
       the compile below replays through [`Use], so a --tune run's
       artifact is exactly what a later --tune-use run reproduces *)
    let tuned_store =
      if no_tune then None
      else
        match (tune_out, tune_use) with
        | Some path, _ ->
            let existing = Vpc.Profile.Tuned.load_or_empty path in
            let stamp =
              1
              + List.fold_left
                  (fun m (r : Vpc.Profile.Tuned.record) ->
                    max m r.Vpc.Profile.Tuned.stamp)
                  0 existing.Vpc.Profile.Tuned.records
            in
            let tr =
              Vpc.tune ~options ~config ~budget:tune_budget ~stamp
                ?report:
                  (if quiet then None
                   else Some (fun l -> Printf.eprintf "%s\n" l))
                ?timer ~file src
            in
            let merged = Vpc.Profile.Tuned.merge existing tr.Vpc.tuned in
            Vpc.Profile.Tuned.save merged path;
            if not quiet then begin
              let st = tr.Vpc.tune_stats in
              Printf.eprintf
                "[tune] %d nests considered, %d improved; %d candidates \
                 evaluated, %d pruned by cost, %d rejected; %.2fs \
                 simulating -> %s\n"
                tr.Vpc.nests_considered tr.Vpc.nests_improved
                st.Vpc.Tune.Search.evaluated st.Vpc.Tune.Search.pruned
                st.Vpc.Tune.Search.rejected st.Vpc.Tune.Search.sim_seconds
                path;
              Printf.eprintf "[tune] static=%d tuned=%d cycles (%.1f%%)\n"
                tr.Vpc.static_cycles tr.Vpc.tuned_cycles
                (if tr.Vpc.static_cycles > 0 then
                   100.0
                   *. float_of_int (tr.Vpc.static_cycles - tr.Vpc.tuned_cycles)
                   /. float_of_int tr.Vpc.static_cycles
                 else 0.0)
            end;
            Some merged
        | None, Some path -> Some (Vpc.Profile.Tuned.load_or_empty path)
        | None, None -> None
    in
    let options =
      match tuned_store with
      | None -> options
      | Some s -> { options with Vpc.tune = `Use s }
    in
    let prog, stats = Vpc.compile ~options ?timer ~file src in
    Option.iter
      (fun t ->
        Vpc.Support.Timing.report t stderr;
        let hits, lookups = Vpc.Dependence.Test.cache_stats () in
        Printf.eprintf "[timings] dependence memo: %d/%d hits (%.1f%%)\n"
          hits lookups
          (if lookups > 0 then
             100.0 *. float_of_int hits /. float_of_int lookups
           else 0.0))
      timer;
    (match inject_fault with
    | None -> ()
    | Some kind_name -> (
        match Vpc.Check.Fault.of_string kind_name with
        | None ->
            Printf.eprintf "unknown fault kind %s (one of: %s)\n" kind_name
              (String.concat ", " (List.map fst Vpc.Check.Fault.kinds));
            exit 1
        | Some kind ->
            if not (Vpc.Check.Fault.inject kind prog) then begin
              Printf.eprintf "inject-fault: no %s site in this program\n"
                kind_name;
              exit 1
            end;
            (* the injected corruption plays the role of a buggy late
               pass: re-verify so --verify-il can catch it *)
            if verify_il then
              Vpc.Check.Verify.run ~assume_noalias ~pass:"fault-injection" prog));
    (match save_catalog with
    | Some path ->
        Vpc.Inline.Catalog.save prog path;
        if not quiet then Printf.printf "catalog saved to %s\n" path
    | None -> ());
    if dump_asm then begin
      let layout = Vpc.Titan.Machine.layout_globals prog in
      let tprog =
        Vpc.Titan.Codegen.gen_program prog ~global_addr:(fun id ->
            Hashtbl.find layout.Vpc.Titan.Machine.addr_of id)
      in
      (* name-sorted so the listing is deterministic and matches the
         assembly served from the compile daemon's cache *)
      Hashtbl.fold (fun name f acc -> (name, f) :: acc)
        tprog.Vpc.Titan.Isa.funcs []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (_, f) ->
             Format.printf "%a@." Vpc.Titan.Isa.pp_func f)
    end;
    if no_run then exit 0;
    let result = Vpc.run_titan ~config ~vreuse:options.Vpc.vreuse prog in
    print_string result.Vpc.Titan.Machine.stdout_text;
    if check then begin
      (* differential check against an independently compiled -O0
         reference: catches miscompiles that hit the interpreter and the
         simulator identically (both run the same optimized IL) *)
      let ref_prog, _ = Vpc.compile ~options:Vpc.o0 ~file src in
      let ref_out = (Vpc.run_interp ref_prog).Vpc.Il.Interp.stdout_text in
      let opt_out = (Vpc.run_interp prog).Vpc.Il.Interp.stdout_text in
      if opt_out <> ref_out then begin
        Printf.eprintf
          "CHECK FAILED: optimized IL diverges from the -O0 reference\n\
           --- reference (-O0 interp) ---\n%s--- optimized (interp) ---\n%s"
          ref_out opt_out;
        exit 2
      end
      else if result.stdout_text <> ref_out then begin
        Printf.eprintf
          "CHECK FAILED: simulator output diverges from the -O0 reference\n\
           --- reference (-O0 interp) ---\n%s--- simulator ---\n%s"
          ref_out result.stdout_text;
        exit 2
      end
      else if not quiet then
        Printf.eprintf
          "check: outputs agree (reference interp, optimized interp, simulator)\n"
    end;
    if not quiet then begin
      let m = result.metrics in
      Printf.eprintf
        "[titan] cycles=%d insts=%d fp_ops=%d vector_insts=%d \
         parallel_regions=%d mflops=%.3f (procs=%d sched=%s)\n"
        m.Vpc.Titan.Machine.cycles m.insts m.fp_ops m.vector_insts
        m.parallel_regions result.mflops_rate procs sched_name;
      Printf.eprintf
        "[titan] mem_ops=%d vector_mem_elems_avoided=%d busy iu=%d fpu=%d \
         mem=%d\n"
        m.mem_ops m.vector_mem_elems_avoided m.busy_iu m.busy_fpu m.busy_mem;
      Printf.eprintf
        "[opt] loops converted=%d ivs=%d vectorized=%d parallelized=%d \
         inlined=%d interchanged=%d fused=%d strips_shared=%d\n"
        stats.Vpc.while_to_do.converted stats.indvar.ivs_found
        stats.vectorize.loops_vectorized stats.vectorize.loops_parallelized
        stats.inline.calls_inlined stats.interchange.nests_interchanged
        stats.fuse.loops_fused stats.vectorize.strip_loops_shared;
      let v = stats.Vpc.vreuse in
      Printf.eprintf
        "[vreuse] strips_interchanged=%d accumulators=%d loads_hoisted=%d \
         stores_forwarded=%d loads_shared=%d\n"
        v.Vpc.Transform.Vreuse.strips_interchanged v.accumulators_localized
        v.invariant_loads_hoisted v.stores_forwarded v.loads_shared;
      let da = stats.Vpc.doacross in
      Printf.eprintf
        "[doacross] pipelined=%d syncs=%d eliminated=%d posts=%d waits=%d \
         post_wait_stalls=%d\n"
        da.Vpc.Transform.Doacross.do_pipelined da.syncs_placed
        da.syncs_eliminated m.posts m.waits m.post_wait_stalls
    end;
    (match result.return_value with
    | Vpc.Titan.Machine.Vi n -> exit (n land 0xFF)
    | Vpc.Titan.Machine.Vf _ -> exit 0)
  with
  | Vpc.Check.Verify.Failed diags ->
      List.iter
        (fun d -> Printf.eprintf "%s\n" (Vpc.Support.Diag.to_string d))
        diags;
      exit 3
  | Vpc.Support.Diag.Error_exn d ->
      Printf.eprintf "%s\n" (Vpc.Support.Diag.to_string d);
      exit 1
  | Vpc.Titan.Machine.Runtime_error m | Vpc.Il.Interp.Runtime_error m ->
      Printf.eprintf "runtime error: %s\n" m;
      exit 1
  | Vpc.Support.Sexp.Parse_error m ->
      Printf.eprintf "profile/catalog parse error: %s\n" m;
      exit 1
  | Sys_error m ->
      Printf.eprintf "%s\n" m;
      exit 1

let file_arg =
  Arg.(value & pos 0 (some string) None
       & info [] ~docv:"FILE.c" ~doc:"C source file (optional with --serve)")

let opt_arg =
  Arg.(value & opt int 3 & info [ "O" ] ~docv:"N" ~doc:"Optimization level 0-3")

let inline_only_arg =
  Arg.(value & opt_all string [] & info [ "inline" ] ~docv:"NAME"
         ~doc:"Inline only the named functions")

let no_parallel_arg =
  Arg.(value & flag & info [ "no-parallel" ] ~doc:"Disable parallelization")

let no_vectorize_arg =
  Arg.(value & flag & info [ "no-vectorize" ] ~doc:"Disable vectorization")

let no_interchange_arg =
  Arg.(value & flag & info [ "no-interchange" ]
         ~doc:"Disable loop interchange (nest reordering)")

let no_fuse_arg =
  Arg.(value & flag & info [ "no-fuse" ]
         ~doc:"Disable loop fusion and strip sharing")

let no_vreuse_arg =
  Arg.(value & flag & info [ "no-vreuse" ]
         ~doc:"Disable vector-register reuse (invariant Vload hoisting, \
               Vstore-to-Vload forwarding, strip-resident accumulators)")

let no_doacross_sync_arg =
  Arg.(value & flag & info [ "no-doacross-sync" ]
         ~doc:"Disable doacross pipelining of carried-dependence DO loops \
               with post/wait synchronization (on by default at -O2 and \
               above); such loops stay serial")

let no_pointsto_arg =
  Arg.(value & flag & info [ "no-pointsto" ]
         ~doc:"Disable the interprocedural points-to and mod/ref analysis \
               (on by default at -O2 and above); dependence testing, the \
               race checker, and inline ranking fall back to worst-case \
               aliasing")

let no_range_arg =
  Arg.(value & flag & info [ "no-range" ]
         ~doc:"Disable the interprocedural symbolic range and \
               scalar-evolution analysis (on by default at -O2 and above); \
               dependence testing falls back to unknown symbolic distances \
               and strip loops keep their runtime length guards")

let lint_arg =
  Arg.(value & flag & info [ "lint" ]
         ~doc:"Front end only: report statically-provable bugs (out-of-bounds \
               subscripts, overflow-prone induction updates, always-false \
               loop guards, degenerate DO loops) and exit; exit code 4 when \
               there are findings, 0 when clean")

let why_scalar_arg =
  Arg.(value & flag & info [ "why-scalar" ]
         ~doc:"Explain each loop left scalar on stderr (one [why-scalar] \
               line naming the unresolved alias pair with source locations, \
               the rejecting statement, or the carried dependence cycle)")

let noalias_arg =
  Arg.(value & flag & info [ "noalias" ]
         ~doc:"Assume pointer parameters have Fortran (no-alias) semantics")

let vlen_arg =
  Arg.(value & opt int 32 & info [ "vlen" ] ~docv:"N" ~doc:"Vector strip length")

let procs_arg =
  Arg.(value & opt int 1 & info [ "procs"; "p" ] ~docv:"N"
         ~doc:"Number of Titan processors (1-4)")

let sched_arg =
  Arg.(value & opt string "full" & info [ "sched" ] ~docv:"MODE"
         ~doc:"Scheduling model: seq, conservative, full")

let dump_arg =
  Arg.(value & flag & info [ "dump-il" ] ~doc:"Dump IL after each stage")

let dump_asm_arg =
  Arg.(value & flag & info [ "dump-asm" ] ~doc:"Dump Titan instructions")

let check_arg =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Also run the IL interpreter and compare outputs")

let catalog_arg =
  Arg.(value & opt_all string [] & info [ "catalog" ] ~docv:"FILE"
         ~doc:"Import a procedure catalog before inlining")

let save_catalog_arg =
  Arg.(value & opt (some string) None & info [ "save-catalog" ] ~docv:"FILE"
         ~doc:"Save the compiled program as a procedure catalog")

let quiet_arg = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No statistics")

let verify_il_arg =
  Arg.(value & flag & info [ "verify-il" ]
         ~doc:"Run the IL verifier and parallel/vector translation \
               validator after every pipeline stage (exit 3 on violation)")

let no_run_arg =
  Arg.(value & flag & info [ "no-run" ]
         ~doc:"Compile (and verify) only; do not execute the program")

let inject_fault_arg =
  Arg.(value & opt (some string) None & info [ "inject-fault" ] ~docv:"KIND"
         ~doc:"Deterministically corrupt the compiled IL (testing aid); \
               KIND is one of dup-stmt-id, unbound-var, impure-bound, \
               dangling-goto, vector-type, vector-overlap, false-parallel, \
               wrong-const")

let profile_gen_arg =
  Arg.(value & opt (some string) None & info [ "profile-gen" ] ~docv:"FILE"
         ~doc:"Compile at -O0 with instrumentation, run on the simulator, \
               and write the measured profile to FILE (loop trip counts, \
               call counts, attributed cycles)")

let profile_use_arg =
  Arg.(value & opt (some string) None & info [ "profile-use" ] ~docv:"FILE"
         ~doc:"Read a profile written by --profile-gen and let its measured \
               trip/call counts guide inlining, vectorization, and \
               parallelization")

let report_arg =
  Arg.(value & flag & info [ "report" ]
         ~doc:"Explain each profile-guided decision on stderr (one [pgo] \
               line per loop or call site, with the cost-model estimates)")

let serve_arg =
  Arg.(value & opt (some string) None & info [ "serve" ] ~docv:"SOCKET"
         ~doc:"Run as a compile daemon on a Unix-domain socket, serving \
               requests from a content-addressed procedure cache; no FILE \
               argument is needed")

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist cache entries to DIR (one file per component key) \
               so a restarted daemon starts warm")

let client_arg =
  Arg.(value & opt (some string) None & info [ "client" ] ~docv:"SOCKET"
         ~doc:"Send FILE.c and the current option set to a daemon started \
               with --serve, and print the served artifact (optimized IL, \
               or the Titan listing under --dump-asm)")

let timings_arg =
  Arg.(value & flag & info [ "timings" ]
         ~doc:"Print a per-phase wall-clock profile of the compilation \
               pipeline to stderr")

let tune_arg =
  Arg.(value & opt (some string) None & info [ "tune" ] ~docv:"FILE"
         ~doc:"Search the joint per-nest optimization space (mode, strip \
               length, interchange, fusion, register reuse, doacross, \
               per-site inlining) with the Titan simulator as the oracle, \
               merge the cycle-minimal winners into FILE (keyed by a \
               location-free loop fingerprint), and compile with them; \
               every candidate is differential-checked against the \
               unoptimized program")

let tune_use_arg =
  Arg.(value & opt (some string) None & info [ "tune-use" ] ~docv:"FILE"
         ~doc:"Replay tuned configurations written by --tune without \
               searching: nests whose fingerprint matches a stored winner \
               compile under it, everything else follows the static \
               policy (a missing or empty FILE compiles identically to \
               no tuning)")

let no_tune_arg =
  Arg.(value & flag & info [ "no-tune" ]
         ~doc:"Ignore --tune and --tune-use: compile with the static \
               policy only")

let tune_budget_arg =
  Arg.(value & opt int 4 & info [ "tune-budget" ] ~docv:"N"
         ~doc:"Tune at most the N hottest loop nests (profile-ranked \
               under --profile-use, else by static cost estimate)")

let cmd =
  let doc = "vectorizing, parallelizing, inlining C compiler for the Titan" in
  Cmd.v
    (Cmd.info "titancc" ~doc)
    Term.(
      const run_compiler $ file_arg $ opt_arg $ inline_only_arg
      $ no_parallel_arg $ no_vectorize_arg $ no_interchange_arg $ no_fuse_arg
      $ no_vreuse_arg $ no_doacross_sync_arg $ no_pointsto_arg $ no_range_arg
      $ lint_arg
      $ why_scalar_arg $ noalias_arg
      $ vlen_arg $ procs_arg
      $ sched_arg $ dump_arg $ dump_asm_arg $ check_arg $ catalog_arg
      $ save_catalog_arg $ quiet_arg $ verify_il_arg $ no_run_arg
      $ inject_fault_arg $ profile_gen_arg $ profile_use_arg $ report_arg
      $ serve_arg $ cache_dir_arg $ client_arg $ timings_arg
      $ tune_arg $ tune_use_arg $ no_tune_arg $ tune_budget_arg)

let () = exit (Cmd.eval cmd)
