(* The IL verifier and translation validator (lib/check).

   Positive direction: every example program and a batch of random
   programs must verify clean after EVERY pipeline stage at every
   optimization level — the verifier re-derives the dependence facts the
   vectorizer/parallelizer relied on (translation validation) and checks
   the structural well-formedness invariants of the IL.

   Negative direction: hand-built ill-formed programs and deterministic
   fault injections must each be rejected with a diagnostic naming the
   offending rule. *)

open Helpers

module Check = Vpc.Check
module Il = Vpc.Il
module Stmt = Il.Stmt
module Expr = Il.Expr
module Ty = Il.Ty
module Var = Il.Var
module Func = Il.Func
module Prog = Il.Prog
module Builder = Il.Builder

let verified_levels =
  [
    ("O0", { Vpc.o0 with Vpc.verify = `Each_stage });
    ("O1", { Vpc.o1 with Vpc.verify = `Each_stage });
    ("O2", { Vpc.o2 with Vpc.verify = `Each_stage });
    ("O3", { Vpc.o3 with Vpc.verify = `Each_stage });
  ]

let verify_all_levels name src =
  List.iter
    (fun (lname, options) ->
      try ignore (Vpc.compile ~options src)
      with Check.Verify.Failed diags ->
        Alcotest.failf "%s at %s: verifier rejected the pipeline output:\n%s"
          name lname
          (String.concat "\n"
             (List.map Vpc.Support.Diag.to_string diags)))
    verified_levels

(* ----------------------------------------------------------------- *)
(* every example program, every level, every stage                    *)
(* ----------------------------------------------------------------- *)

let example_files =
  [
    "quickstart.c";
    "backsolve.c";
    "daxpy_inline.c";
    "graphics.c";
    "device_poll.c";
    "math_library.c";
    "ptrkernels.c";
  ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let examples_verify () =
  List.iter
    (fun f ->
      let path = Filename.concat "../examples" f in
      if Sys.file_exists path then verify_all_levels f (read_file path)
      else Alcotest.failf "example %s not found from %s" f (Sys.getcwd ()))
    example_files

let random_programs_verify () =
  for seed = 1 to 25 do
    let src = Gen_c.program seed in
    verify_all_levels (Printf.sprintf "random #%d" seed) src
  done

(* the paper kernels exercised elsewhere in the suite, distilled *)
let kernels_verify () =
  List.iter
    (fun (name, src) -> verify_all_levels name src)
    [
      ( "reduction",
        {|
float a[256];
int main()
{
  int i; float s;
  for (i = 0; i < 256; i++) a[i] = i * 0.5f;
  s = 0;
  for (i = 0; i < 256; i++) s += a[i];
  printf("%g\n", s);
  return 0;
}
|} );
      ( "recurrence",
        {|
float a[256];
int main()
{
  int i;
  a[0] = 1.0f;
  for (i = 0; i < 255; i++) a[i+1] = a[i] * 0.5f + 1.0f;
  printf("%g\n", a[255]);
  return 0;
}
|} );
      ( "invariant-store",
        {|
int flag; int a[64];
int main()
{
  int i;
  for (i = 0; i < 64; i++) { a[i] = i; flag = i; }
  printf("%d %d\n", flag, a[63]);
  return 0;
}
|} );
      ( "doacross-pointer-chase",
        {|
float x[129], y[128], z[128];
int main()
{
  int i; float *p, *q;
  for (i = 0; i < 128; i++) { y[i] = i * 0.25f; z[i] = 0.5f; }
  x[0] = 2.0f;
  p = &x[1]; q = &x[0];
  for (i = 0; i < 126; i++)
    p[i] = z[i] * (y[i] - q[i]);
  printf("%g %g\n", x[1], x[100]);
  return 0;
}
|} );
    ]

(* ----------------------------------------------------------------- *)
(* negative fixtures: hand-built ill-formed IL                        *)
(* ----------------------------------------------------------------- *)

(* A minimal host program: int main() with locals [n : int] and a float
   array global [a]; returns (prog, main, builder ctx, vars). *)
let host () =
  let prog = Prog.create () in
  let main = Func.create ~name:"main" ~ret_ty:Ty.Int () in
  Prog.add_func prog main;
  let fresh name ty =
    let v = Var.make ~id:(Prog.fresh_var_id prog) ~name ~ty () in
    Func.add_var main v;
    v
  in
  let a =
    Var.make ~id:(Prog.fresh_var_id prog) ~name:"a"
      ~ty:(Ty.Array (Ty.Float, Some 64))
      ~storage:Var.Global ()
  in
  Prog.add_global prog a;
  let b = Builder.ctx prog main in
  (prog, main, b, fresh, a)

let rules_of violations = List.map (fun v -> v.Check.Report.rule) violations

let expect_rule name rule (prog : Prog.t) =
  let violations = Check.Verify.check_prog prog in
  if not (List.mem rule (rules_of violations)) then
    Alcotest.failf "%s: expected rule %s, got [%s]" name rule
      (String.concat "; " (rules_of violations));
  (* every diagnostic must name the function it is about *)
  List.iter
    (fun v ->
      if v.Check.Report.func = "" then
        Alcotest.failf "%s: violation without a function name" name)
    violations

let expect_clean name (prog : Prog.t) =
  match Check.Verify.check_prog prog with
  | [] -> ()
  | violations ->
      Alcotest.failf "%s: expected clean, got [%s]" name
        (String.concat "; " (rules_of violations))

let fixture_dup_stmt_id () =
  let prog, main, _b, _fresh, _a = host () in
  main.Func.body <-
    [
      Stmt.mk ~id:1 Stmt.Nop;
      Stmt.mk ~id:1 Stmt.Nop;
      Func.fresh_stmt main (Stmt.Return (Some (Expr.int_const 0)));
    ];
  expect_rule "dup-stmt-id" "dup-stmt-id" prog

let fixture_unbound_var () =
  let prog, main, b, _fresh, _a = host () in
  main.Func.body <-
    [
      Builder.stmt b (Stmt.Assign (Stmt.Lvar 99999, Expr.int_const 1));
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "unbound-var" "unbound-var" prog

let fixture_impure_bound () =
  let prog, main, b, fresh, _a = host () in
  let i = fresh "i" Ty.Int in
  let n = fresh "n" Ty.Int in
  main.Func.body <-
    [
      Builder.assign b n (Expr.int_const 10);
      (* hi reads n, and the body reassigns n: bound not loop-entry
         invariant *)
      Builder.do_loop b ~index:i.Var.id ~lo:(Expr.int_const 0)
        ~hi:(Expr.var n) ~step:(Expr.int_const 1)
        [ Builder.assign b n (Expr.binop Expr.Add (Expr.var n) (Expr.int_const 1) Ty.Int) ];
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "impure-bound" "do-bound-variant" prog

let fixture_goto_and_labels () =
  let prog, main, b, _fresh, _a = host () in
  main.Func.body <-
    [ Builder.goto b "nowhere"; Builder.return b (Some (Expr.int_const 0)) ];
  expect_rule "dangling-goto" "goto-target" prog;
  let prog2, main2, b2, _fresh2, _a2 = host () in
  main2.Func.body <-
    [
      Builder.label b2 "here";
      Builder.label b2 "here";
      Builder.return b2 (Some (Expr.int_const 0));
    ];
  expect_rule "dup-label" "dup-label" prog2

let section base count stride =
  { Stmt.base; count = Expr.int_const count; stride = Expr.int_const stride }

let fixture_vector_type () =
  let prog, main, b, _fresh, a = host () in
  (* destination points at float elements but the statement claims int *)
  let base = Expr.addr_of a in
  main.Func.body <-
    [
      Builder.stmt b
        (Stmt.Vector
           {
             Stmt.vdst = section base 8 4;
             vsrc = Stmt.Vscalar (Expr.int_const 1);
             velt = Ty.Int;
           });
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "vector-type" "vector-type" prog

let fixture_vector_overlap () =
  let prog, main, b, _fresh, a = host () in
  let base = Expr.addr_of a in
  let base1 =
    Expr.binop Expr.Add base (Expr.int_const 4) base.Expr.ty
  in
  (* dst = &a[1], src = &a[0], stride 4: element i reads a[i] which
     element i-1 just wrote — the §6 recurrence, illegal as one vector op *)
  main.Func.body <-
    [
      Builder.stmt b
        (Stmt.Vector
           {
             Stmt.vdst = section base1 8 4;
             vsrc = Stmt.Vsec (section base 8 4);
             velt = Ty.Float;
           });
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "vector-overlap" "vector-overlap" prog;
  (* the reverse direction (dst behind src) is the legal backsolve
     pattern: anti dependence, full-evaluate semantics match *)
  let prog2, main2, b2, _fresh2, a2 = host () in
  let base' = Expr.addr_of a2 in
  let base1' = Expr.binop Expr.Add base' (Expr.int_const 4) base'.Expr.ty in
  main2.Func.body <-
    [
      Builder.stmt b2
        (Stmt.Vector
           {
             Stmt.vdst = section base' 8 4;
             vsrc = Stmt.Vsec (section base1' 8 4);
             velt = Ty.Float;
           });
      Builder.return b2 (Some (Expr.int_const 0));
    ];
  expect_clean "vector-anti-direction" prog2

let fixture_false_parallel () =
  let prog, main, b, fresh, a = host () in
  let i = fresh "i" Ty.Int in
  let base = Expr.addr_of a in
  let addr off =
    Expr.binop Expr.Add base
      (Expr.binop Expr.Add
         (Expr.binop Expr.Mul (Expr.var i) (Expr.int_const 4) Ty.Int)
         (Expr.int_const off) Ty.Int)
      base.Expr.ty
  in
  (* a[i+1] = a[i] + 1.0: carried flow distance 1 — not parallel *)
  main.Func.body <-
    [
      Builder.do_loop b ~parallel:true ~index:i.Var.id ~lo:(Expr.int_const 0)
        ~hi:(Expr.int_const 63) ~step:(Expr.int_const 1)
        [
          Builder.store b (addr 4)
            (Expr.binop Expr.Add (Expr.load (addr 0)) (Expr.float_const 1.0)
               Ty.Float);
        ];
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "false-parallel" "parallel-carried-dep" prog

let fixture_parallel_invariant_store () =
  let prog, main, b, fresh, _a = host () in
  let i = fresh "i" Ty.Int in
  let g =
    Var.make ~id:(Prog.fresh_var_id prog) ~name:"flag" ~ty:Ty.Int
      ~storage:Var.Global ()
  in
  Prog.add_global prog g;
  (* every iteration writes the same global address: write order matters *)
  main.Func.body <-
    [
      Builder.do_loop b ~parallel:true ~index:i.Var.id ~lo:(Expr.int_const 0)
        ~hi:(Expr.int_const 63) ~step:(Expr.int_const 1)
        [ Builder.store b (Expr.addr_of g) (Expr.var i) ];
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "parallel-invariant-store" "parallel-carried-dep" prog

let fixture_doacross_cond () =
  let prog, main, b, fresh, _a = host () in
  let n = fresh "n" Ty.Int in
  let info =
    { Stmt.no_info with Stmt.doacross = true; Stmt.serial_prefix = 0 }
  in
  (* the parallel part reassigns the variable the continuation condition
     reads: iterations cannot be dispatched independently *)
  main.Func.body <-
    [
      Builder.assign b n (Expr.int_const 10);
      Builder.while_ b ~info
        (Expr.binop Expr.Gt (Expr.var n) (Expr.int_const 0) Ty.Int)
        [
          Builder.assign b n
            (Expr.binop Expr.Sub (Expr.var n) (Expr.int_const 1) Ty.Int);
        ];
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "doacross-cond" "doacross-cond" prog

let fixture_volatile_parallel () =
  let prog, main, b, fresh, _a = host () in
  let i = fresh "i" Ty.Int in
  let s = fresh "s" Ty.Int in
  let dev =
    Var.make ~id:(Prog.fresh_var_id prog) ~name:"dev" ~ty:Ty.Int ~volatile:true
      ~storage:Var.Global ()
  in
  Prog.add_global prog dev;
  main.Func.body <-
    [
      Builder.do_loop b ~parallel:true ~index:i.Var.id ~lo:(Expr.int_const 0)
        ~hi:(Expr.int_const 8) ~step:(Expr.int_const 1)
        [ Builder.assign b s (Expr.var dev) ];
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "volatile-parallel" "volatile-parallel" prog

let fixture_assign_type () =
  let prog, main, b, fresh, a = host () in
  let p = fresh "p" (Ty.Ptr Ty.Float) in
  ignore a;
  main.Func.body <-
    [
      (* a float constant flowing into a pointer variable *)
      Builder.stmt b
        (Stmt.Assign (Stmt.Lvar p.Var.id, Expr.float_const 1.0));
      Builder.return b (Some (Expr.int_const 0));
    ];
  expect_rule "assign-type" "assign-type" prog

(* ----------------------------------------------------------------- *)
(* fault injection through the library                                *)
(* ----------------------------------------------------------------- *)

let fault_src =
  {|
float a[128], b[128];
int main()
{
  int i, x;
  float s;
  x = 41;
  for (i = 0; i < 128; i++) b[i] = i * 0.5f;
  for (i = 0; i < 128; i++) a[i] = b[i] + 1.0f;
  s = 0;
  for (i = 0; i < 127; i++) a[i+1] = a[i] + 1.0f;
  for (i = 0; i < 128; i++) s += a[i];
  printf("%d %g\n", x, s);
  return 0;
}
|}

let injection_rejected () =
  List.iter
    (fun (kname, kind) ->
      (* wrong-const is structurally well-formed by design: only the
         differential check can see it *)
      if kind <> Check.Fault.Wrong_const then begin
        let prog = compile ~options:Vpc.o2 fault_src in
        expect_clean (kname ^ " (before injection)") prog;
        if not (Check.Fault.inject kind prog) then
          Alcotest.failf "%s: no injection site at O2" kname;
        match Check.Verify.check_prog prog with
        | [] -> Alcotest.failf "%s: verifier accepted the corrupted IL" kname
        | _ -> ()
      end)
    Check.Fault.kinds

let wrong_const_invisible_to_verifier () =
  let prog = compile ~options:Vpc.o0 fault_src in
  let reference = interp_output prog in
  let prog2 = compile ~options:Vpc.o0 fault_src in
  Alcotest.(check bool)
    "wrong-const has a site" true
    (Check.Fault.inject Check.Fault.Wrong_const prog2);
  expect_clean "wrong-const is well-formed" prog2;
  let corrupted = interp_output prog2 in
  Alcotest.(check bool)
    "wrong-const changes behavior" true (reference <> corrupted)

(* ----------------------------------------------------------------- *)
(* the CLI: exit codes                                                *)
(* ----------------------------------------------------------------- *)

let titancc = "../bin/titancc.exe"

let run_cli args =
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  let cmd =
    Printf.sprintf "%s %s >%s 2>%s" titancc
      (String.concat " " args)
      null null
  in
  match Unix.system cmd with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255

let with_temp_c src f =
  let path = Filename.temp_file "verify_cli" ".c" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let cli_exit_codes () =
  if not (Sys.file_exists titancc) then
    Alcotest.failf "titancc binary not found from %s" (Sys.getcwd ());
  with_temp_c fault_src (fun path ->
      Alcotest.(check int) "clean program verifies (exit 0)" 0
        (run_cli [ path; "-O"; "2"; "--verify-il"; "--no-run"; "-q" ]);
      Alcotest.(check int) "clean program checks (exit 0)" 0
        (run_cli [ path; "-O"; "3"; "--check"; "-q" ]);
      List.iter
        (fun (kname, kind) ->
          if kind <> Check.Fault.Wrong_const then
            Alcotest.(check int)
              (Printf.sprintf "--inject-fault %s exits 3" kname)
              3
              (run_cli
                 [
                   path; "-O"; "2"; "--verify-il"; "--no-run"; "-q";
                   "--inject-fault"; kname;
                 ]))
        Check.Fault.kinds;
      Alcotest.(check int) "--inject-fault wrong-const fails --check (exit 2)" 2
        (run_cli
           [ path; "-O"; "0"; "--check"; "-q"; "--inject-fault"; "wrong-const" ]);
      Alcotest.(check int) "unknown fault kind exits 1" 1
        (run_cli
           [ path; "-O"; "0"; "--no-run"; "-q"; "--inject-fault"; "bogus" ]))

let tests =
  [
    Alcotest.test_case "examples verify at every stage" `Slow examples_verify;
    Alcotest.test_case "random programs verify" `Slow random_programs_verify;
    Alcotest.test_case "paper kernels verify" `Quick kernels_verify;
    Alcotest.test_case "dup stmt id rejected" `Quick fixture_dup_stmt_id;
    Alcotest.test_case "unbound var rejected" `Quick fixture_unbound_var;
    Alcotest.test_case "impure DO bound rejected" `Quick fixture_impure_bound;
    Alcotest.test_case "goto/label misuse rejected" `Quick fixture_goto_and_labels;
    Alcotest.test_case "vector type mismatch rejected" `Quick fixture_vector_type;
    Alcotest.test_case "vector overlap direction" `Quick fixture_vector_overlap;
    Alcotest.test_case "false parallel loop rejected" `Quick fixture_false_parallel;
    Alcotest.test_case "parallel invariant store rejected" `Quick
      fixture_parallel_invariant_store;
    Alcotest.test_case "doacross condition hazard rejected" `Quick
      fixture_doacross_cond;
    Alcotest.test_case "volatile in parallel loop rejected" `Quick
      fixture_volatile_parallel;
    Alcotest.test_case "assign type mismatch rejected" `Quick fixture_assign_type;
    Alcotest.test_case "injected faults all rejected" `Quick injection_rejected;
    Alcotest.test_case "wrong-const passes verifier, changes output" `Quick
      wrong_const_invisible_to_verifier;
    Alcotest.test_case "titancc exit codes" `Slow cli_exit_codes;
  ]
