(* The symbolic range analysis (lib/range) and its consumers.

   Unit direction: the interval lattice (join/meet/widen), canonical
   affine forms, and scalar evolutions behave algebraically.  Widening
   must lose precision monotonically — it may only unbound endpoints,
   never invent tighter ones.

   Integration direction: interprocedural parameter seeding joins the
   visible call sites and falls to top behind indirect calls; the
   dataflow's loop environments stay sound after widening; the
   constant-propagation consumer folds branches the ranges decide; the
   lint pass reports exactly the seeded provable bugs and nothing on
   clean code; degenerate-DO advisories and the interpreter's zero-step
   rejection close the loop-shaped holes. *)

open Helpers
module Il = Vpc.Il
module Expr = Il.Expr
module Stmt = Il.Stmt
module Var = Il.Var
module Func = Il.Func
module Prog = Il.Prog
module Ty = Il.Ty
module Builder = Il.Builder
module R = Vpc.Range.Range
module I = R.Interval
module A = R.Affine

let itv lo hi = I.of_bounds lo hi

let check_itv name expected got =
  if not (I.equal expected got) then
    Alcotest.failf "%s: expected %s, got %s" name (I.to_string expected)
      (I.to_string got)

(* ----------------------------------------------------------------- *)
(* interval lattice                                                   *)
(* ----------------------------------------------------------------- *)

let interval_lattice () =
  check_itv "join disjoint" (itv (Some 0) (Some 20))
    (I.join (itv (Some 0) (Some 5)) (itv (Some 10) (Some 20)));
  check_itv "join with bot" (itv (Some 3) (Some 4))
    (I.join I.bot (itv (Some 3) (Some 4)));
  check_itv "meet overlap" (itv (Some 3) (Some 5))
    (I.meet (itv (Some 0) (Some 5)) (itv (Some 3) (Some 9)));
  Alcotest.(check bool)
    "meet disjoint is bot" true
    (I.is_bot (I.meet (itv (Some 0) (Some 2)) (itv (Some 5) (Some 9))));
  Alcotest.(check bool) "point contains" true (I.contains (I.point 7) 7);
  Alcotest.(check bool)
    "subset" true
    (I.subset (itv (Some 1) (Some 2)) (itv (Some 0) (Some 5)));
  Alcotest.(check (option int)) "to_point" (Some 7) (I.to_point (I.point 7));
  Alcotest.(check (option int))
    "to_point of range" None
    (I.to_point (itv (Some 1) (Some 2)))

let interval_widen () =
  (* a stable bound survives; a moving one is dropped to infinity *)
  check_itv "widen hi moves" (itv (Some 0) None)
    (I.widen (itv (Some 0) (Some 5)) (itv (Some 0) (Some 6)));
  check_itv "widen lo moves" (itv None (Some 5))
    (I.widen (itv (Some 0) (Some 5)) (itv (Some (-1)) (Some 5)));
  check_itv "widen stable" (itv (Some 0) (Some 5))
    (I.widen (itv (Some 0) (Some 5)) (itv (Some 1) (Some 4)));
  (* soundness: the widened interval covers both inputs — widening may
     only unbound endpoints, never claim precision *)
  let samples =
    [
      (itv (Some 0) (Some 5), itv (Some 2) (Some 9));
      (itv None (Some 5), itv (Some 0) (Some 7));
      (itv (Some (-3)) None, itv (Some (-8)) (Some 1));
      (I.bot, itv (Some 1) (Some 1));
    ]
  in
  List.iter
    (fun (old, next) ->
      let w = I.widen old next in
      if not (I.subset old w && I.subset next w) then
        Alcotest.failf "widen %s %s = %s does not cover its inputs"
          (I.to_string old) (I.to_string next) (I.to_string w))
    samples

let interval_arith_truth () =
  check_itv "add" (itv (Some 3) (Some 12))
    (I.add (itv (Some 1) (Some 2)) (itv (Some 2) (Some 10)));
  check_itv "add unbounded" (itv (Some 3) None)
    (I.add (itv (Some 1) (Some 2)) (itv (Some 2) None));
  check_itv "sub" (itv (Some (-9)) (Some 0))
    (I.sub (itv (Some 1) (Some 2)) (itv (Some 2) (Some 10)));
  check_itv "mul signs" (itv (Some (-20)) (Some 10))
    (I.mul (itv (Some (-2)) (Some 1)) (itv (Some 0) (Some 10)));
  check_itv "neg" (itv (Some (-2)) (Some 3)) (I.neg (itv (Some (-3)) (Some 2)));
  let t = Alcotest.(check (option bool)) in
  t "lt decided" (Some true)
    (I.truth Expr.Lt (itv (Some 0) (Some 5)) (itv (Some 6) (Some 9)));
  t "lt refuted" (Some false)
    (I.truth Expr.Lt (itv (Some 6) (Some 9)) (itv (Some 0) (Some 5)));
  t "lt ambiguous" None
    (I.truth Expr.Lt (itv (Some 0) (Some 5)) (itv (Some 5) (Some 9)));
  t "le on touch" (Some true)
    (I.truth Expr.Le (itv (Some 0) (Some 5)) (itv (Some 5) (Some 9)));
  t "eq points" (Some true) (I.truth Expr.Eq (I.point 4) (I.point 4));
  t "ne disjoint" (Some true)
    (I.truth Expr.Ne (itv (Some 0) (Some 1)) (itv (Some 2) (Some 3)))

(* ----------------------------------------------------------------- *)
(* affine forms and evolutions                                        *)
(* ----------------------------------------------------------------- *)

let affine_canon () =
  let x = A.sym (A.Svar 1) and y = A.sym (A.Svar 2) in
  Alcotest.(check bool)
    "x+y = y+x" true
    (A.equal (A.add x y) (A.add y x));
  Alcotest.(check (option int)) "x-x is 0" (Some 0) (A.to_const (A.sub x x));
  Alcotest.(check bool)
    "x+x = 2x" true
    (A.equal (A.add x x) (A.scale 2 x));
  Alcotest.(check bool)
    "scale 0 drops the term" true
    (A.equal (A.scale 0 x) (A.const 0));
  let a = A.add (A.scale 4 x) (A.const 8) in
  Alcotest.(check bool) "4x+8 divisible by 4" true (A.divisible_by a 4);
  Alcotest.(check bool) "4x+8 not divisible by 3" false (A.divisible_by a 3);
  Alcotest.(check bool) "mentions its var" true (A.mentions x 1);
  Alcotest.(check bool)
    "address symbols are not value mentions" false
    (A.mentions (A.sym (A.Saddr 1)) 1)

let evolutions () =
  let base = A.add (A.sym (A.Svar 7)) (A.const 2) in
  let e = { R.Evo.base; step = 4 } in
  Alcotest.(check bool)
    "advance 3 = base + 12" true
    (A.equal (R.Evo.advance e 3) (A.add base (A.const 12)));
  Alcotest.(check bool)
    "advance 0 = base" true
    (A.equal (R.Evo.advance e 0) base);
  (* inner evolution during outer iteration k: base shifted k outer steps *)
  let inner = { R.Evo.base = A.const 0; step = 1 } in
  let shifted = R.Evo.compose ~outer:e 5 ~inner in
  Alcotest.(check bool)
    "composed base" true
    (A.equal shifted.R.Evo.base (A.const 20));
  Alcotest.(check int) "composed step" 1 shifted.R.Evo.step

(* ----------------------------------------------------------------- *)
(* interprocedural seeding and the loop dataflow                      *)
(* ----------------------------------------------------------------- *)

let var_id (f : Func.t) name =
  let found = ref None in
  Hashtbl.iter
    (fun id (v : Var.t) -> if v.Var.name = name then found := Some id)
    f.Func.vars;
  match !found with
  | Some id -> id
  | None -> Alcotest.failf "no variable %s in %s" name f.Func.name

let param_seeding () =
  let prog =
    Vpc.parse
      {|
int g_sink;
void f(int n) { g_sink = n; }
void h(int m) { g_sink = m; }
int main()
{
  f(3);
  f(10);
  return 0;
}
|}
  in
  let t = R.analyze prog in
  let f = Prog.func_exn prog "f" in
  check_itv "f's n joins the call sites" (itv (Some 3) (Some 10))
    (R.param_interval t "f" (var_id f "n"));
  (* h has no visible direct call: its callers are unknown, so its
     parameter must stay top — seeding from nothing would be unsound *)
  let h = Prog.func_exn prog "h" in
  Alcotest.(check bool)
    "h's m is top with no visible caller" true
    (I.is_top (R.param_interval t "h" (var_id h "m")))

(* the environment inside a widened loop still covers every attained
   value and re-narrows through the guard *)
let loop_envs () =
  let prog =
    Vpc.parse
      {|
int g_sink;
void f(int n)
{
  int i;
  for (i = 0; i < n; i++)
    g_sink = i;
}
int main() { f(5); f(100); return 0; }
|}
  in
  let t = R.analyze prog in
  let f = Prog.func_exn prog "f" in
  let fe = R.analyze_func t prog f in
  let i = var_id f "i" in
  let body_env = ref None in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.While (_, _, body) -> (
          match body with
          | first :: _ -> body_env := R.env_before fe first.Stmt.id
          | [] -> ())
      | _ -> ())
    f.Func.body;
  match !body_env with
  | None -> Alcotest.fail "no loop body environment recorded"
  | Some env ->
      let iv = (R.eval env (Expr.var (Func.var_exn f i))).R.itv in
      (* sound: every attained value 0..99 is covered *)
      List.iter
        (fun k ->
          if not (I.contains iv k) then
            Alcotest.failf "i's interval %s misses attained value %d"
              (I.to_string iv) k)
        [ 0; 50; 99 ];
      (* and the guard re-narrows the widened interval: i < n <= 100 *)
      (match iv.I.lo with
      | Some l when l >= 0 -> ()
      | _ -> Alcotest.failf "i's lower bound lost: %s" (I.to_string iv));
      match iv.I.hi with
      | Some h when h <= 99 -> ()
      | _ ->
          Alcotest.failf "guard did not re-narrow the widened hi: %s"
            (I.to_string iv)

(* ----------------------------------------------------------------- *)
(* consumers: const-prop folds, lint, advisories, interpreter         *)
(* ----------------------------------------------------------------- *)

let const_prop_range_fold () =
  let src =
    {|
int g_big, g_small;
void big() { g_big = 1; }
void small() { g_small = 1; }
void f(int n)
{
  if (n > 3)
    big();
  else
    small();
}
int main() { f(5); f(9); return 0; }
|}
  in
  let il_on = func_il ~options:Vpc.o2 src "f" in
  check_contains "range keeps the taken branch" ~needle:"big" il_on;
  check_not_contains "range folds the dead branch" ~needle:"small" il_on;
  let il_off =
    func_il ~options:{ Vpc.o2 with Vpc.range = false } src "f"
  in
  check_contains "without ranges both branches stay" ~needle:"small" il_off

let rules_of vs = List.map (fun v -> v.Vpc.Check.Report.rule) vs

let lint_seeded_bugs () =
  let prog =
    Vpc.parse
      {|
int a[10];
int sum;
int main()
{
  int i, s;
  a[12] = 5;
  s = 0;
  for (i = 0; i <= 10; i++)
    s = s + a[i];
  for (i = 5; i < 3; i++)
    s = s + 1;
  for (i = 0; i <= 2147483600; i = i + 1000)
    s = s + 1;
  sum = s;
  return 0;
}
|}
  in
  let rules = rules_of (Vpc.Check.Lint.run prog) in
  List.iter
    (fun r ->
      if not (List.mem r rules) then
        Alcotest.failf "expected lint rule %s, got [%s]" r
          (String.concat "; " rules))
    [ "oob-subscript"; "oob-loop"; "loop-guard-false"; "induction-overflow" ]

let lint_clean_on_correct_code () =
  let prog =
    Vpc.parse
      {|
float a[64], b[64];
int main()
{
  int i;
  for (i = 0; i < 64; i++)
    a[i] = b[i] * 2.0f;
  for (i = 63; i >= 0; i = i - 1)
    b[i] = a[i];
  printf("%g\n", a[0]);
  return 0;
}
|}
  in
  match Vpc.Check.Lint.run prog with
  | [] -> ()
  | vs ->
      Alcotest.failf "expected no findings, got [%s]"
        (String.concat "; " (rules_of vs))

(* A minimal hand-built host for DO-loop shapes the front end never
   emits directly. *)
let host () =
  let prog = Prog.create () in
  let main = Func.create ~name:"main" ~ret_ty:Ty.Int () in
  Prog.add_func prog main;
  let i = Var.make ~id:(Prog.fresh_var_id prog) ~name:"i" ~ty:Ty.Int () in
  Func.add_var main i;
  let b = Builder.ctx prog main in
  (prog, main, b, i)

let degenerate_do_advisory () =
  let prog, main, b, i = host () in
  main.Func.body <-
    [
      Builder.do_loop b ~index:i.Var.id ~lo:(Expr.int_const 0)
        ~hi:(Expr.int_const (-1))
        ~step:(Expr.int_const 1)
        [ Builder.nop b ];
      Builder.return b (Some (Expr.int_const 0));
    ];
  let rules = rules_of (Vpc.Check.Wf.advise_prog prog) in
  if not (List.mem "do-degenerate" rules) then
    Alcotest.failf "expected do-degenerate, got [%s]" (String.concat "; " rules);
  (* advisory only: the verifier itself must stay clean (while-to-do
     legitimately emits constant zero-trip loops) *)
  (match Vpc.Check.Verify.check_prog prog with
  | [] -> ()
  | vs ->
      Alcotest.failf "advisory leaked into the verifier: [%s]"
        (String.concat "; " (rules_of vs)));
  let prog2, main2, b2, i2 = host () in
  main2.Func.body <-
    [
      Builder.do_loop b2 ~index:i2.Var.id ~lo:(Expr.int_const 0)
        ~hi:(Expr.int_const 5) ~step:(Expr.int_const 1)
        [ Builder.nop b2 ];
      Builder.return b2 (Some (Expr.int_const 0));
    ];
  match rules_of (Vpc.Check.Wf.advise_prog prog2) with
  | [] -> ()
  | rules ->
      Alcotest.failf "clean DO loop advised: [%s]" (String.concat "; " rules)

let interp_rejects_zero_step () =
  let prog, main, b, i = host () in
  main.Func.body <-
    [
      Builder.do_loop b ~index:i.Var.id ~lo:(Expr.int_const 0)
        ~hi:(Expr.int_const 5) ~step:(Expr.int_const 0)
        [ Builder.nop b ];
      Builder.return b (Some (Expr.int_const 0));
    ];
  match Il.Interp.run prog with
  | exception Il.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a runtime error for a zero-step DO loop"

let tests =
  [
    Alcotest.test_case "interval lattice" `Quick interval_lattice;
    Alcotest.test_case "interval widening" `Quick interval_widen;
    Alcotest.test_case "interval arithmetic and truth" `Quick
      interval_arith_truth;
    Alcotest.test_case "affine canonicalization" `Quick affine_canon;
    Alcotest.test_case "scalar evolutions" `Quick evolutions;
    Alcotest.test_case "parameter seeding" `Quick param_seeding;
    Alcotest.test_case "loop environments" `Quick loop_envs;
    Alcotest.test_case "const-prop range folds" `Quick const_prop_range_fold;
    Alcotest.test_case "lint: seeded bugs" `Quick lint_seeded_bugs;
    Alcotest.test_case "lint: clean code" `Quick lint_clean_on_correct_code;
    Alcotest.test_case "degenerate DO advisory" `Quick degenerate_do_advisory;
    Alcotest.test_case "interp rejects zero step" `Quick
      interp_rejects_zero_step;
  ]
