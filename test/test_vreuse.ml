(* Vector-register reuse (Transform.Vreuse).

   Negative direction: hand-built runs of vector statements where
   forwarding a Vstore to a later Vload would be unsound — may-aliasing
   bases, overlapping sections at a nonzero offset, mismatched strides,
   volatile storage — must each leave the code alone; one positive
   control confirms the same shape forwards when it is legal.

   Positive direction: every example program must print the same thing
   with the pass on and off, on the interpreter and on the simulator,
   with the verifier running after every stage. *)

open Helpers

module Il = Vpc.Il
module Stmt = Il.Stmt
module Expr = Il.Expr
module Ty = Il.Ty
module Var = Il.Var
module Func = Il.Func
module Prog = Il.Prog
module Builder = Il.Builder
module Vreuse = Vpc.Transform.Vreuse

(* ----------------------------------------------------------------- *)
(* hand-built forwarding fixtures                                    *)
(* ----------------------------------------------------------------- *)

(* int main() with three 64-float global arrays to write vector runs
   over; [global] mints more (e.g. a volatile one). *)
let host () =
  let prog = Prog.create () in
  let main = Func.create ~name:"main" ~ret_ty:Ty.Int () in
  Prog.add_func prog main;
  let global ?volatile ?(storage = Var.Global) name ty =
    let v =
      Var.make ~id:(Prog.fresh_var_id prog) ~name ~ty ?volatile ~storage ()
    in
    Prog.add_global prog v;
    v
  in
  let arr name = global name (Ty.Array (Ty.Float, Some 64)) in
  let a = arr "a" and c = arr "b" and d = arr "c" in
  (prog, main, Builder.ctx prog main, global, a, c, d)

let sec ?(count = 8) ?(stride = 4) base =
  { Stmt.base; count = Expr.int_const count; stride = Expr.int_const stride }

let store b s ve = Builder.stmt b (Stmt.Vector { Stmt.vdst = s; vsrc = ve; velt = Ty.Float })

let run_vreuse ?options prog main =
  let stats = Vreuse.new_stats () in
  let changed = Vreuse.run ?options ~stats prog main in
  (changed, stats)

let check_counts name ~forwarded ~shared (stats : Vreuse.stats) =
  Alcotest.(check int)
    (name ^ ": stores_forwarded") forwarded stats.Vreuse.stores_forwarded;
  Alcotest.(check int) (name ^ ": loads_shared") shared stats.Vreuse.loads_shared

let check_verifies name prog =
  match Vpc.Check.Verify.check_prog prog with
  | [] -> ()
  | vs ->
      Alcotest.failf "%s: rewritten IL fails to verify: %s" name
        (String.concat "; "
           (List.map (fun v -> v.Vpc.Check.Report.rule) vs))

(* positive control: store a, read the identical section later — the
   value forwards through a register *)
let forwards_identical_section () =
  let prog, main, b, _global, a, c, _d = host () in
  let sa = sec (Expr.addr_of a) in
  main.Func.body <-
    [
      store b sa (Stmt.Vscalar (Expr.float_const 1.0));
      store b (sec (Expr.addr_of c))
        (Stmt.Vbin (Expr.Add, Stmt.Vsec sa, Stmt.Vscalar (Expr.float_const 2.0)));
      Builder.return b (Some (Expr.int_const 0));
    ];
  let changed, stats = run_vreuse prog main in
  Alcotest.(check bool) "control: changed" true changed;
  check_counts "control" ~forwarded:1 ~shared:0 stats;
  check_verifies "control" prog

(* a may-aliasing store between the Vstore and the Vload kills the
   forward: the intervening write through an unknown pointer may have
   replaced the section in memory *)
let may_alias_blocks_forward () =
  let prog, main, b, global, a, c, _d = host () in
  let p = global ~storage:Var.Param "p" (Ty.Ptr Ty.Float) in
  let sa = sec (Expr.addr_of a) in
  main.Func.body <-
    [
      store b sa (Stmt.Vscalar (Expr.float_const 1.0));
      store b (sec (Expr.var p)) (Stmt.Vscalar (Expr.float_const 2.0));
      store b (sec (Expr.addr_of c)) (Stmt.Vsec sa);
      Builder.return b (Some (Expr.int_const 0));
    ];
  let _, stats = run_vreuse prog main in
  check_counts "may-alias" ~forwarded:0 ~shared:0 stats

(* the same three statements with a provably distinct array in the
   middle do forward — the may-alias case above fails for aliasing
   reasons, not shape reasons *)
let no_alias_control () =
  let prog, main, b, _global, a, c, d = host () in
  let sa = sec (Expr.addr_of a) in
  main.Func.body <-
    [
      store b sa (Stmt.Vscalar (Expr.float_const 1.0));
      store b (sec (Expr.addr_of d)) (Stmt.Vscalar (Expr.float_const 2.0));
      store b (sec (Expr.addr_of c)) (Stmt.Vsec sa);
      Builder.return b (Some (Expr.int_const 0));
    ];
  let _, stats = run_vreuse prog main in
  check_counts "no-alias control" ~forwarded:1 ~shared:0 stats;
  check_verifies "no-alias control" prog

(* store a[1:9], read a[0:8]: same base, nonzero provable distance —
   the element sequences overlap but are not identical *)
let offset_overlap_no_forward () =
  let prog, main, b, _global, a, c, _d = host () in
  let base = Expr.addr_of a in
  let base1 = Expr.binop Expr.Add base (Expr.int_const 4) base.Expr.ty in
  main.Func.body <-
    [
      store b (sec base1) (Stmt.Vscalar (Expr.float_const 1.0));
      store b (sec (Expr.addr_of c)) (Stmt.Vsec (sec base));
      Builder.return b (Some (Expr.int_const 0));
    ];
  let changed, stats = run_vreuse prog main in
  Alcotest.(check bool) "offset: unchanged" false changed;
  check_counts "offset" ~forwarded:0 ~shared:0 stats

(* store with stride 8, read with stride 4: same base distance zero but
   the two sections interleave different elements *)
let stride_mismatch_no_forward () =
  let prog, main, b, _global, a, c, _d = host () in
  let base = Expr.addr_of a in
  main.Func.body <-
    [
      store b (sec ~stride:8 base) (Stmt.Vscalar (Expr.float_const 1.0));
      store b (sec (Expr.addr_of c)) (Stmt.Vsec (sec ~stride:4 base));
      Builder.return b (Some (Expr.int_const 0));
    ];
  let changed, stats = run_vreuse prog main in
  Alcotest.(check bool) "stride: unchanged" false changed;
  check_counts "stride" ~forwarded:0 ~shared:0 stats

(* volatile storage never lives in a register: each Vload must reread
   the device memory, each Vstore must land *)
let volatile_no_forward () =
  let prog, main, b, global, _a, c, _d = host () in
  let v = global ~volatile:true "port" (Ty.Array (Ty.Float, Some 64)) in
  let sv = sec (Expr.addr_of v) in
  main.Func.body <-
    [
      store b sv (Stmt.Vscalar (Expr.float_const 1.0));
      store b (sec (Expr.addr_of c)) (Stmt.Vsec sv);
      store b (sec ~count:4 (Expr.addr_of c)) (Stmt.Vsec sv);
      Builder.return b (Some (Expr.int_const 0));
    ];
  let changed, stats = run_vreuse prog main in
  Alcotest.(check bool) "volatile: unchanged" false changed;
  check_counts "volatile" ~forwarded:0 ~shared:0 stats

(* ----------------------------------------------------------------- *)
(* every example, reuse on vs off                                    *)
(* ----------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* device_poll.c busy-waits on a volatile register and only terminates
   under the device harness, so it is compile-only here. *)
let example_files ~runnable =
  List.filter
    (fun f ->
      Filename.check_suffix f ".c" && ((not runnable) || f <> "device_poll.c"))
    (Array.to_list (Sys.readdir "../examples"))

let compile_both src =
  let build vreuse =
    Vpc.compile
      ~options:{ Vpc.o3 with Vpc.vreuse; verify = `Each_stage }
      src
  in
  (build false, build true)

let examples_equivalent () =
  List.iter
    (fun f ->
      let src = read_file (Filename.concat "../examples" f) in
      let (p_off, _), (p_on, _) = compile_both src in
      let i_off = interp_output p_off and i_on = interp_output p_on in
      Alcotest.(check string) (f ^ ": interp on=off") i_off i_on;
      List.iter
        (fun procs ->
          let config = { Vpc.Titan.Machine.default_config with procs } in
          let t_off =
            (Vpc.run_titan ~config ~vreuse:false p_off)
              .Vpc.Titan.Machine.stdout_text
          in
          let t_on =
            (Vpc.run_titan ~config ~vreuse:true p_on)
              .Vpc.Titan.Machine.stdout_text
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: titan procs=%d off" f procs)
            i_off t_off;
          Alcotest.(check string)
            (Printf.sprintf "%s: titan procs=%d on" f procs)
            i_off t_on)
        [ 1; 4 ])
    (example_files ~runnable:true)

(* the sweep is not vacuous: the kernel built to exercise forwarding
   really does forward *)
let saxpy_chain_forwards () =
  let src = read_file "../examples/saxpy_chain.c" in
  let _, (_, stats) = compile_both src in
  Alcotest.(check bool) "saxpy_chain forwards stores" true
    (stats.Vpc.vreuse.stores_forwarded >= 3)

(* --no-vreuse must be byte-identical to the pass never having existed:
   compiling with vreuse off yields IL with no vector temporaries *)
let off_leaves_no_vtmp () =
  List.iter
    (fun f ->
      let src = read_file (Filename.concat "../examples" f) in
      let (p_off, _), _ = compile_both src in
      let il = Il.Pp.prog_to_string p_off in
      check_not_contains (f ^ ": no Vdef with reuse off") ~needle:"vt" il)
    (example_files ~runnable:false)

let tests =
  [
    Alcotest.test_case "forwards identical section" `Quick
      forwards_identical_section;
    Alcotest.test_case "may-alias blocks forward" `Quick may_alias_blocks_forward;
    Alcotest.test_case "no-alias control forwards" `Quick no_alias_control;
    Alcotest.test_case "offset overlap no forward" `Quick
      offset_overlap_no_forward;
    Alcotest.test_case "stride mismatch no forward" `Quick
      stride_mismatch_no_forward;
    Alcotest.test_case "volatile no forward" `Quick volatile_no_forward;
    Alcotest.test_case "examples reuse on=off" `Slow examples_equivalent;
    Alcotest.test_case "saxpy_chain forwards" `Quick saxpy_chain_forwards;
    Alcotest.test_case "reuse off leaves no vtmp" `Quick off_leaves_no_vtmp;
  ]
