(* Lexer tests: token recognition, the miniature preprocessor (#define,
   #pragma), comments, literals. *)

open Vpc.Cfront

let toks src = Lexer.tokenize src

let check_tokens name src expected =
  let got = toks src in
  let strs = List.map Token.to_string got in
  Alcotest.(check (list string)) name expected strs

let punctuation () =
  check_tokens "operators"
    "a += b ->c ... x <<= y >>= z && || ++ -- == != <= >="
    [ "a"; "+="; "b"; "->"; "c"; "..."; "x"; "<<="; "y"; ">>="; "z"; "&&";
      "||"; "++"; "--"; "=="; "!="; "<="; ">="; "<eof>" ]

let keywords_idents () =
  check_tokens "keywords" "while whilex int interior volatile"
    [ "while"; "whilex"; "int"; "interior"; "volatile"; "<eof>" ]

let numbers () =
  let got = toks "42 0x1F 3.5 1e3 2.5f 10L 7u .5" in
  let expected =
    [
      Token.Int_lit 42; Token.Int_lit 31;
      Token.Float_lit (3.5, true); Token.Float_lit (1000.0, true);
      Token.Float_lit (2.5, false); Token.Int_lit 10; Token.Int_lit 7;
      Token.Float_lit (0.5, true); Token.Eof;
    ]
  in
  Alcotest.(check bool) "numbers" true (got = expected)

let strings_chars () =
  let got = toks {|"hello\nworld" 'a' '\n' '\\'|} in
  let expected =
    [
      Token.String_lit "hello\nworld"; Token.Char_lit 'a'; Token.Char_lit '\n';
      Token.Char_lit '\\'; Token.Eof;
    ]
  in
  Alcotest.(check bool) "strings" true (got = expected)

let comments () =
  check_tokens "comments" "a /* multi\nline */ b // to eol\nc"
    [ "a"; "b"; "c"; "<eof>" ]

let define_expansion () =
  check_tokens "define" "#define N 100\nint a[N];"
    [ "int"; "a"; "["; "100"; "]"; ";"; "<eof>" ]

let define_multi_token () =
  check_tokens "define multi" "#define SZ (4 * 25)\nSZ"
    [ "("; "4"; "*"; "25"; ")"; "<eof>" ]

let pragma_token () =
  let got = toks "#pragma vpc independent\nfor" in
  match got with
  | [ Token.Pragma [ "vpc"; "independent" ]; Token.Kw_for; Token.Eof ] -> ()
  | _ -> Alcotest.fail "pragma not lexed as a token"

let unknown_directive_skipped () =
  Vpc.Support.Diag.reset_warnings ();
  check_tokens "include skipped" "#include <stdio.h>\nint x;"
    [ "int"; "x"; ";"; "<eof>" ];
  Alcotest.(check bool) "warned" true (Vpc.Support.Diag.warnings () <> [])

let hash_mid_line_is_error () =
  match toks "a # b" with
  | exception Vpc.Support.Diag.Error_exn _ -> ()
  | _ -> Alcotest.fail "expected error for stray #"

let function_like_macro_rejected () =
  match toks "#define F(x) x\n" with
  | exception Vpc.Support.Diag.Error_exn _ -> ()
  | _ -> Alcotest.fail "expected error for function-like macro"

let tests =
  [
    Alcotest.test_case "punctuation" `Quick punctuation;
    Alcotest.test_case "keywords vs idents" `Quick keywords_idents;
    Alcotest.test_case "numbers" `Quick numbers;
    Alcotest.test_case "strings and chars" `Quick strings_chars;
    Alcotest.test_case "comments" `Quick comments;
    Alcotest.test_case "#define" `Quick define_expansion;
    Alcotest.test_case "#define multi-token" `Quick define_multi_token;
    Alcotest.test_case "#pragma" `Quick pragma_token;
    Alcotest.test_case "unknown directive" `Quick unknown_directive_skipped;
    Alcotest.test_case "stray #" `Quick hash_mid_line_is_error;
    Alcotest.test_case "function-like macro" `Quick function_like_macro_rejected;
  ]
