(* Simulator-in-the-loop autotuning: the location-free nest fingerprint,
   the configuration codec, the tuned store's merge, and the replay
   path's determinism and byte-identity guarantees. *)

module Tune = Vpc.Tune
module Tuned = Vpc.Profile.Tuned

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The nests the scout compile fingerprints, at [options]'s pipeline. *)
let nests_of ?(options = Vpc.o3) src =
  let prog = Vpc.parse src in
  ignore (Vpc.optimize ~options:(Vpc.scout_options options) prog);
  Tune.Fingerprint.nests prog

(* Deterministic name-sorted Titan listing, as --dump-asm prints it. *)
let asm_text prog =
  let layout = Vpc.Titan.Machine.layout_globals prog in
  let tprog =
    Vpc.Titan.Codegen.gen_program prog ~global_addr:(fun id ->
        Hashtbl.find layout.Vpc.Titan.Machine.addr_of id)
  in
  Hashtbl.fold (fun name f acc -> (name, f) :: acc) tprog.Vpc.Titan.Isa.funcs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (_, f) -> Format.asprintf "%a@." Vpc.Titan.Isa.pp_func f)
  |> String.concat ""

let compile_text ~options src =
  let prog, _ = Vpc.compile ~options src in
  (Vpc.Il.Pp.prog_to_string prog, asm_text prog)

(* ---- configuration codec ---- *)

let codec_round_trip () =
  let configs =
    [
      Tune.Config.default;
      { Tune.Config.default with Tune.Config.mode = Some Tune.Config.Scalar };
      {
        Tune.Config.mode = Some Tune.Config.Parallel;
        strip = Some 16;
        interchange = Some true;
        fuse = Some false;
        vreuse = Some true;
        doacross = Some false;
        inline_calls = [ ("f", true); ("g", false) ];
      };
      { Tune.Config.default with Tune.Config.strip = Some 64 };
    ]
  in
  List.iter
    (fun c ->
      let fields = Tune.Config.to_fields c in
      let c' = Tune.Config.of_fields fields in
      if not (Tune.Config.equal c c') then
        Alcotest.failf "codec: %s round-tripped to %s"
          (Tune.Config.to_string c) (Tune.Config.to_string c'))
    configs;
  Alcotest.(check (list (pair string string)))
    "default encodes to no fields" []
    (Tune.Config.to_fields Tune.Config.default);
  (match Tune.Config.of_fields [ ("frobnicate", "yes") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "codec: unknown key accepted");
  match Tune.Config.of_fields [ ("strip", "many") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "codec: malformed strip accepted"

(* ---- fingerprint stability ---- *)

(* The same nest under alpha-renaming of every variable: fingerprints
   must agree (they key the store across edits that rename). *)
let fp_alpha_rename () =
  let src_a =
    {|
      double a[300]; double b[300];
      int main() {
        int i;
        for (i = 0; i < 200; i++)
          a[i] = b[i] * 2.0 + 1.0;
        return 0;
      }
    |}
  in
  let src_b =
    {|
      double xs[300]; double ys[300];
      int main() {
        int k;
        for (k = 0; k < 200; k++)
          xs[k] = ys[k] * 2.0 + 1.0;
        return 0;
      }
    |}
  in
  match (nests_of src_a, nests_of src_b) with
  | [ na ], [ nb ] ->
      Alcotest.(check string)
        "alpha-renamed nest keeps its fingerprint" na.Tune.Fingerprint.fp
        nb.Tune.Fingerprint.fp
  | a, b ->
      Alcotest.failf "expected one nest each, got %d and %d" (List.length a)
        (List.length b)

(* Statements added and shifted *outside* the nest (so every location in
   the file moves) must not disturb the fingerprint; a genuine change of
   the nest's shape must. *)
let fp_outside_reorder () =
  let src_a =
    {|
      double a[300]; double b[300];
      int main() {
        int i;
        for (i = 0; i < 200; i++)
          a[i] = b[i] * 2.0 + 1.0;
        return 0;
      }
    |}
  in
  let src_shifted =
    {|
      double a[300]; double b[300];
      int pad1;
      int pad2;

      int main() {
        int i;
        pad1 = 7;
        pad2 = pad1 + 1;

        for (i = 0; i < 200; i++)
          a[i] = b[i] * 2.0 + 1.0;
        return 0;
      }
    |}
  in
  let src_changed =
    {|
      double a[300]; double b[300];
      int main() {
        int i;
        for (i = 0; i < 200; i++)
          a[i] = b[i] * b[i] + 1.0;
        return 0;
      }
    |}
  in
  let fp_of src =
    match nests_of src with
    | [ n ] -> n.Tune.Fingerprint.fp
    | ns -> Alcotest.failf "expected one nest, got %d" (List.length ns)
  in
  let fa = fp_of src_a in
  Alcotest.(check string)
    "outside-nest edits keep the fingerprint" fa (fp_of src_shifted);
  if fa = fp_of src_changed then
    Alcotest.fail "a changed body kept the same fingerprint"

(* ---- tuned store ---- *)

let record fp ~stamp ~cycles ?(static = 1000) fields =
  { Tuned.fp; stamp; cycles; static_cycles = static; fields }

let store_round_trip () =
  let t =
    Tuned.add
      (Tuned.add Tuned.empty
         (record "aa" ~stamp:2 ~cycles:500 [ ("mode", "vector") ]))
      (record "bb" ~stamp:1 ~cycles:700 [ ("strip", "16") ])
  in
  let t' = Tuned.of_string (Tuned.to_string t) in
  if not (Tuned.equal t t') then Alcotest.fail "store did not round-trip";
  Alcotest.(check string)
    "canonical printing is stable" (Tuned.to_string t) (Tuned.to_string t');
  match Tuned.of_string "(vpc-tuned (version 99) (records))" with
  | exception Vpc.Support.Sexp.Parse_error _ -> ()
  | _ -> Alcotest.fail "future version accepted"

let store_merge_newer_wins () =
  let old_store =
    Tuned.add Tuned.empty
      (record "aa" ~stamp:1 ~cycles:400 [ ("mode", "vector") ])
  in
  let new_store =
    Tuned.add Tuned.empty
      (record "aa" ~stamp:2 ~cycles:600 [ ("mode", "scalar") ])
  in
  let merged = Tuned.merge old_store new_store in
  (match Tuned.find merged "aa" with
  | Some r ->
      Alcotest.(check int) "newer stamp wins even when slower" 2
        r.Tuned.stamp;
      Alcotest.(check int) "winner's cycles kept" 600 r.Tuned.cycles
  | None -> Alcotest.fail "record lost in merge");
  (* symmetric direction: merging old into new keeps the same winner *)
  let merged' = Tuned.merge new_store old_store in
  if not (Tuned.equal merged merged') then
    Alcotest.fail "merge is not symmetric on stamps";
  (* equal stamps: the lower cycle count wins *)
  let a = Tuned.add Tuned.empty (record "cc" ~stamp:3 ~cycles:100 []) in
  let b =
    Tuned.add Tuned.empty (record "cc" ~stamp:3 ~cycles:90 [ ("fuse", "off") ])
  in
  match Tuned.find (Tuned.merge a b) "cc" with
  | Some r -> Alcotest.(check int) "stamp tie: fewer cycles win" 90 r.Tuned.cycles
  | None -> Alcotest.fail "record lost in tie merge"

(* ---- replay guarantees ---- *)

(* An empty (or missing) store must compile byte-identically to no
   tuning at every optimization level: IL text and Titan listing. *)
let empty_store_byte_identity () =
  let src = read_file "../examples/saxpy_chain.c" in
  List.iter
    (fun (lname, base) ->
      let plain = compile_text ~options:base src in
      let replay =
        compile_text ~options:{ base with Vpc.tune = `Use Tuned.empty } src
      in
      Alcotest.(check string)
        (Printf.sprintf "IL identical under empty store at %s" lname)
        (fst plain) (fst replay);
      Alcotest.(check string)
        (Printf.sprintf "asm identical under empty store at %s" lname)
        (snd plain) (snd replay))
    Helpers.all_levels

(* Search a small program, then replay the winners: the tuned compile
   must be deterministic (byte-identical asm across replays), no slower
   than static, and output-equal to the unoptimized reference. *)
let search_and_replay () =
  let src = read_file "../examples/saxpy_chain.c" in
  let tr = Vpc.tune ~options:Vpc.o3 ~budget:2 ~stamp:1 src in
  if tr.Vpc.tuned_cycles > tr.Vpc.static_cycles then
    Alcotest.failf "tuning made the program slower: %d > %d"
      tr.Vpc.tuned_cycles tr.Vpc.static_cycles;
  let options = { Vpc.o3 with Vpc.tune = `Use tr.Vpc.tuned } in
  let il1, asm1 = compile_text ~options src in
  let il2, asm2 = compile_text ~options src in
  Alcotest.(check string) "replayed IL is deterministic" il1 il2;
  Alcotest.(check string) "replayed asm is deterministic" asm1 asm2;
  let reference = Helpers.interp_output (Helpers.compile ~options:Vpc.o0 src) in
  let tuned_prog, _ = Vpc.compile ~options src in
  Alcotest.(check string)
    "tuned program agrees with the unoptimized reference" reference
    (Helpers.titan_output
       ~config:{ Vpc.Titan.Machine.default_config with procs = 4 }
       tuned_prog);
  (* the store's fingerprints resolve on a fresh parse of the same
     source: replay does not depend on any state from the search *)
  if not (Tuned.is_empty tr.Vpc.tuned) then begin
    let plain = compile_text ~options:Vpc.o3 src in
    if (il1, asm1) = plain then
      Alcotest.fail "winners found but replay equals the static compile"
  end

let tests =
  [
    Alcotest.test_case "config: codec round-trip" `Quick codec_round_trip;
    Alcotest.test_case "fingerprint: stable under alpha-renaming" `Quick
      fp_alpha_rename;
    Alcotest.test_case "fingerprint: stable under outside-nest edits" `Quick
      fp_outside_reorder;
    Alcotest.test_case "store: canonical sexp round-trip" `Quick
      store_round_trip;
    Alcotest.test_case "store: merge keeps the newer record" `Quick
      store_merge_newer_wins;
    Alcotest.test_case "replay: empty store is byte-identical O0-O3" `Quick
      empty_store_byte_identity;
    Alcotest.test_case "tune: search, replay determinism, differential"
      `Quick search_and_replay;
  ]
