(* The interprocedural points-to and mod/ref analysis (lib/pointsto).

   Positive direction: constraint generation binds arguments to
   parameters at known call sites, the inclusion solver reaches a
   fixpoint through copy chains and cycles, and mod/ref summaries
   propagate effects up the call graph.

   Negative direction (legality): an escaping pointer, an address taken
   at a symbolic offset into an array, and a pointer minted by an
   unknown callee must each defeat the disjointness proof — the oracle
   answers "cannot decide", never a wrong "no alias". *)

open Helpers
module Il = Vpc.Il
module Expr = Il.Expr
module Stmt = Il.Stmt
module Var = Il.Var
module Func = Il.Func
module Prog = Il.Prog
module P = Vpc.Pointsto.Pointsto

let var_id (f : Func.t) name =
  let found = ref None in
  Hashtbl.iter
    (fun id (v : Var.t) -> if v.Var.name = name then found := Some id)
    f.Func.vars;
  match !found with
  | Some id -> id
  | None -> Alcotest.failf "no variable %s in %s" name f.Func.name

let global_id (prog : Prog.t) name =
  let found = ref None in
  Hashtbl.iter
    (fun id (g : Prog.global) ->
      if g.Prog.gvar.Var.name = name then found := Some id)
    prog.Prog.globals;
  match !found with
  | Some id -> id
  | None -> Alcotest.failf "no global %s" name

(* the value of pointer variable [v] used as an address *)
let pval (f : Func.t) name =
  let id = var_id f name in
  Expr.var (Func.var_exn f id)

let names pt resolved =
  List.sort_uniq compare (List.map (fun (o, _) -> P.obj_name pt o) resolved)

(* ----------------------------------------------------------------- *)
(* constraint generation: call-site argument/parameter binding        *)
(* ----------------------------------------------------------------- *)

let param_binding () =
  let prog =
    compile
      {|float a[64], b[64];
        void k(float *p, float *q, int n) {
          int i;
          for (i = 0; i < n; i++) p[i] = q[i];
        }
        int main() { k(a, b, 64); return 0; }|}
  in
  let pt = P.analyze prog in
  let k = Prog.func_exn prog "k" in
  Alcotest.(check (list string))
    "p points only at a" [ "a" ]
    (names pt (P.points_to pt (var_id k "p")));
  Alcotest.(check (list string))
    "q points only at b" [ "b" ]
    (names pt (P.points_to pt (var_id k "q")));
  (match P.verdict pt (pval k "p") (pval k "q") with
  | Some `No_alias -> ()
  | Some (`Must_alias _) | None ->
      Alcotest.fail "p and q bound to disjoint arrays must get No_alias");
  Alcotest.(check bool)
    "disjoint agrees" true
    (P.disjoint pt (pval k "p") (pval k "q"))

let multi_site_union () =
  (* two call sites: d in {a, c}, s in {b} — still disjoint, while d
     from the two sites unioned with itself must not confuse the solver *)
  let prog =
    compile
      {|float a[64], b[64], c[64];
        void k(float *d, float *s, int n) {
          int i;
          for (i = 0; i < n; i++) d[i] = s[i];
        }
        int main() { k(a, b, 64); k(c, b, 64); return 0; }|}
  in
  let pt = P.analyze prog in
  let k = Prog.func_exn prog "k" in
  Alcotest.(check (list string))
    "d points at both destinations" [ "a"; "c" ]
    (names pt (P.points_to pt (var_id k "d")));
  match P.verdict pt (pval k "d") (pval k "s") with
  | Some `No_alias -> ()
  | Some (`Must_alias _) | None ->
      Alcotest.fail "{a,c} vs {b} must still be disjoint"

let aliased_site_defeats () =
  (* one call site passes the same array for both parameters: the proof
     must collapse to "cannot decide" *)
  let prog =
    compile
      {|float a[64], b[64];
        void k(float *d, float *s, int n) {
          int i;
          for (i = 0; i < n; i++) d[i] = s[i];
        }
        int main() { k(a, b, 64); k(b, b, 64); return 0; }|}
  in
  let pt = P.analyze prog in
  let k = Prog.func_exn prog "k" in
  Alcotest.(check bool)
    "overlapping argument sets are not disjoint" false
    (P.disjoint pt (pval k "d") (pval k "s"))

(* ----------------------------------------------------------------- *)
(* solver: copy chains, cycles, offset joins                          *)
(* ----------------------------------------------------------------- *)

let copy_chain_fixpoint () =
  let prog =
    compile
      {|float a[64];
        int main() {
          float *p, *q, *r;
          p = a;
          q = p;
          r = q;
          q = r;       /* cycle q <-> r */
          *r = 1.0f;
          return 0;
        }|}
  in
  let pt = P.analyze prog in
  let m = Prog.func_exn prog "main" in
  List.iter
    (fun v ->
      Alcotest.(check (list string))
        (v ^ " reaches a through the chain")
        [ "a" ]
        (names pt (P.points_to pt (var_id m v))))
    [ "p"; "q"; "r" ];
  (* r and the array base must-alias at distance 0 *)
  let base = Expr.addr_of (Il.Prog.var_exn prog None (global_id prog "a")) in
  match P.verdict pt (pval m "r") base with
  | Some (`Must_alias 0) -> ()
  | Some (`Must_alias d) ->
      Alcotest.failf "expected distance 0, got %d" d
  | Some `No_alias | None ->
      Alcotest.fail "r = a copy chain must give Must_alias 0"

let offset_join_to_any () =
  (* p = a and p = p + 8: flow-insensitively p holds both offsets, so
     the offset lattice must join to Any and Must_alias must vanish *)
  let prog =
    compile
      {|float a[64];
        int main() {
          float *p;
          p = a;
          p = p + 2;
          *p = 1.0f;
          return 0;
        }|}
  in
  let pt = P.analyze prog in
  let m = Prog.func_exn prog "main" in
  Alcotest.(check (list string))
    "p still points only at a" [ "a" ]
    (names pt (P.points_to pt (var_id m "p")));
  let base = Expr.addr_of (Il.Prog.var_exn prog None (global_id prog "a")) in
  (match P.verdict pt (pval m "p") base with
  | None -> ()
  | Some (`Must_alias _) ->
      Alcotest.fail "joined offsets must not claim a constant distance"
  | Some `No_alias -> Alcotest.fail "same object can never be No_alias")

(* ----------------------------------------------------------------- *)
(* mod/ref summaries                                                  *)
(* ----------------------------------------------------------------- *)

let get_summary pt name =
  match P.summary pt name with
  | Some s -> s
  | None -> Alcotest.failf "no summary for %s" name

let summary_names pt set =
  List.sort_uniq compare
    (List.map (P.obj_name pt) (P.Objset.elements set))

let modref_summaries () =
  let prog =
    compile
      {|float a[64], b[64];
        void writer(float *p) { p[0] = 1.0f; }
        float reader(float *p) { return p[0]; }
        float outer() { writer(a); return reader(b); }
        int main() { printf("%g\n", outer()); return 0; }|}
  in
  let pt = P.analyze prog in
  let w = get_summary pt "writer" in
  Alcotest.(check (list string)) "writer mods a" [ "a" ] (summary_names pt w.P.mods);
  Alcotest.(check bool) "writer has no io" false w.P.io;
  let r = get_summary pt "reader" in
  Alcotest.(check (list string)) "reader refs b" [ "b" ] (summary_names pt r.P.refs);
  Alcotest.(check (list string)) "reader mods nothing" [] (summary_names pt r.P.mods);
  (* callee effects fold into the caller *)
  let o = get_summary pt "outer" in
  Alcotest.(check (list string)) "outer mods a" [ "a" ] (summary_names pt o.P.mods);
  Alcotest.(check (list string)) "outer refs b" [ "b" ] (summary_names pt o.P.refs);
  Alcotest.(check bool) "outer has no io" false o.P.io;
  (* printf marks main as io *)
  let m = get_summary pt "main" in
  Alcotest.(check bool) "main does io" true m.P.io

let private_locals_pruned () =
  (* a callee hammering its own locals must export an empty mod set *)
  let prog =
    compile
      {|float scratchpad(int n) {
          float t[8];
          int i;
          for (i = 0; i < 8; i++) t[i] = i * 1.0f;
          return t[n];
        }
        float g;
        int main() { g = scratchpad(3); return 0; }|}
  in
  let pt = P.analyze prog in
  let s = get_summary pt "scratchpad" in
  Alcotest.(check (list string))
    "activation-local array pruned from mods" []
    (summary_names pt s.P.mods);
  Alcotest.(check bool) "not blocking vectorization" false
    (P.blocks_vectorization pt "scratchpad")

(* ----------------------------------------------------------------- *)
(* legality negatives                                                 *)
(* ----------------------------------------------------------------- *)

let negative_escaping_pointer () =
  (* storing a to a global pointer publishes it; the unknown callee may
     then write through it, so a is not provably disjoint from storage
     the callee touches *)
  let prog =
    compile
      {|float a[64];
        float *published;
        void mystery();
        int main() {
          float *p;
          published = a;
          mystery();
          p = published;
          *p = 1.0f;
          return 0;
        }|}
  in
  let pt = P.analyze prog in
  let m = Prog.func_exn prog "main" in
  let base = Expr.addr_of (Il.Prog.var_exn prog None (global_id prog "a")) in
  Alcotest.(check bool)
    "escaped object stays reachable through the global" false
    (P.disjoint pt (pval m "p") base);
  (* the unknown callee's summary must admit arbitrary effects *)
  let s = get_summary pt "main" in
  Alcotest.(check bool) "unknown callee forces io" true s.P.io;
  Alcotest.(check bool) "unknown callee may write the escaped array" true
    (P.Objset.mem P.Unknown s.P.mods || P.Objset.exists (fun o -> P.obj_name pt o = "a") s.P.mods)

let negative_address_taken_overlap () =
  (* p = &a[4*k]: symbolic offset into a — p overlaps a but at no
     provable constant distance, so neither No_alias nor Must_alias *)
  let prog =
    compile
      {|float a[64];
        int main(int k) {
          float *p;
          p = &a[4 * k];
          *p = 2.0f;
          return 0;
        }|}
  in
  let pt = P.analyze prog in
  let m = Prog.func_exn prog "main" in
  let base = Expr.addr_of (Il.Prog.var_exn prog None (global_id prog "a")) in
  Alcotest.(check bool) "not disjoint from its own array" false
    (P.disjoint pt (pval m "p") base);
  match P.verdict pt (pval m "p") base with
  | None -> ()
  | Some `No_alias -> Alcotest.fail "symbolic offset claimed No_alias"
  | Some (`Must_alias _) -> Alcotest.fail "symbolic offset claimed Must_alias"

let negative_unknown_callee_result () =
  (* a pointer minted by a bodyless callee may point anywhere, even at a
     global array it was never told about *)
  let prog =
    compile
      {|float a[64];
        float *mint();
        int main() {
          float *p, *q;
          p = a;
          q = mint();
          *q = 3.0f;
          return 0;
        }|}
  in
  let pt = P.analyze prog in
  let m = Prog.func_exn prog "main" in
  Alcotest.(check bool) "minted pointer may alias anything" false
    (P.disjoint pt (pval m "p") (pval m "q"));
  match P.verdict pt (pval m "p") (pval m "q") with
  | None -> ()
  | Some v ->
      Alcotest.failf "unknown-provenance pointer got a verdict %s"
        (match v with `No_alias -> "No_alias" | `Must_alias _ -> "Must_alias")

(* ----------------------------------------------------------------- *)
(* the race checker accepts calls the summaries bound                 *)
(* ----------------------------------------------------------------- *)

let mark_loops_parallel (f : Func.t) =
  f.Func.body <-
    Stmt.map_list
      (fun s ->
        match s.Stmt.desc with
        | Stmt.Do_loop d ->
            [ { s with Stmt.desc = Stmt.Do_loop { d with Stmt.parallel = true } } ]
        | _ -> [ s ])
      f.Func.body

let races_bounded_call () =
  let src =
    {|float a[256], b[256];
      float getb(int i) { return b[i]; }
      int main() {
        int i;
        for (i = 0; i < 256; i++)
          a[i] = getb(i);
        return 0;
      }|}
  in
  let check with_pointsto =
    (* compile scalar, then assert the loop parallel by hand: the
       validator must prove the call safe from the summaries alone *)
    let prog = compile ~options:Vpc.o1 src in
    let main = Prog.func_exn prog "main" in
    mark_loops_parallel main;
    let pointsto = if with_pointsto then Some (P.analyze prog) else None in
    Vpc.Check.Races.check_func ?pointsto prog main
  in
  (match check false with
  | [] ->
      Alcotest.fail
        "without summaries a call in a parallel body must be flagged"
  | v :: _ ->
      Alcotest.(check string) "flagged as shape" "parallel-shape"
        v.Vpc.Check.Report.rule);
  match check true with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf
        "read-only callee disjoint from the body's writes still flagged: %s"
        (Vpc.Check.Report.to_string v)

let races_mutating_call_still_flagged () =
  (* same shape, but the callee writes the array the loop also writes:
     the summary must NOT unlock this one *)
  let src =
    {|float a[256];
      void seta(int i) { a[i] = 0.0f; }
      int main() {
        int i;
        for (i = 0; i < 256; i++) {
          a[i] = 1.0f;
          seta(i);
        }
        return 0;
      }|}
  in
  let prog = compile ~options:Vpc.o1 src in
  let main = Prog.func_exn prog "main" in
  mark_loops_parallel main;
  let pointsto = Some (P.analyze prog) in
  match Vpc.Check.Races.check_func ?pointsto prog main with
  | [] -> Alcotest.fail "callee that writes shared memory must stay flagged"
  | _ -> ()

(* ----------------------------------------------------------------- *)
(* --why-scalar                                                       *)
(* ----------------------------------------------------------------- *)

let why_scalar_reports_alias_pair () =
  (* k has no call site, so its parameters stay unknown and the loop
     must stay scalar — and the report must name the unresolved pair *)
  let src =
    {|void k(float *p, float *q, int n) {
        int i;
        for (i = 0; i < n; i++) p[i] = q[i];
      }|}
  in
  let lines = ref [] in
  let options =
    { Vpc.o2 with Vpc.why_scalar = Some (fun l -> lines := l :: !lines) }
  in
  ignore (Vpc.compile ~options src);
  match List.filter (fun l -> contains ~needle:"k:" l) !lines with
  | [] -> Alcotest.fail "expected a why-scalar line for k's loop"
  | l :: _ ->
      check_contains "names the loop" ~needle:"stays scalar" l;
      check_contains "names the unresolved pair" ~needle:"cannot prove" l

let why_scalar_silent_when_vectorized () =
  let src =
    {|float a[64], b[64];
      int main() {
        int i;
        for (i = 0; i < 64; i++) a[i] = b[i] + 1.0f;
        return 0;
      }|}
  in
  let lines = ref [] in
  let options =
    { Vpc.o2 with Vpc.why_scalar = Some (fun l -> lines := l :: !lines) }
  in
  ignore (Vpc.compile ~options src);
  Alcotest.(check (list string)) "no why-scalar lines" [] !lines

(* ----------------------------------------------------------------- *)
(* end to end: the analysis licenses vectorization, identical output  *)
(* ----------------------------------------------------------------- *)

let ptrkernels_src =
  {|void saxpy(float *d, float *s, float alpha, int n) {
      int i;
      for (i = 0; i < n; i++) d[i] = d[i] + alpha * s[i];
    }
    float a[512], b[512], c[512];
    int main() {
      int i;
      for (i = 0; i < 512; i++) { a[i] = i * 0.5f; b[i] = 512 - i; c[i] = 1.0f; }
      saxpy(a, b, 0.25f, 512);
      saxpy(c, b, 2.0f, 512);
      printf("%g %g %g\n", a[0], a[511], c[256]);
      return 0;
    }|}

let end_to_end_vectorizes () =
  let build pointsto =
    compile_stats ~options:{ Vpc.o2 with Vpc.pointsto; verify = `Each_stage }
      ptrkernels_src
  in
  let prog_off, s_off = build false in
  let prog_on, s_on = build true in
  Alcotest.(check bool) "analysis unlocks the saxpy loop" true
    (s_on.Vpc.vectorize.loops_vectorized > s_off.Vpc.vectorize.loops_vectorized);
  Alcotest.(check string) "identical interpreter output"
    (interp_output prog_off) (interp_output prog_on);
  Alcotest.(check string) "identical simulator output"
    (titan_output prog_off) (titan_output prog_on)

let all_levels_agree () =
  assert_all_configs_agree "ptrkernels" ptrkernels_src

let tests =
  [
    Alcotest.test_case "call-site parameter binding" `Quick param_binding;
    Alcotest.test_case "multi-site argument union" `Quick multi_site_union;
    Alcotest.test_case "overlapping site defeats the proof" `Quick
      aliased_site_defeats;
    Alcotest.test_case "copy chain and cycle fixpoint" `Quick
      copy_chain_fixpoint;
    Alcotest.test_case "offset join to Any" `Quick offset_join_to_any;
    Alcotest.test_case "mod/ref summaries up the call graph" `Quick
      modref_summaries;
    Alcotest.test_case "activation-local effects pruned" `Quick
      private_locals_pruned;
    Alcotest.test_case "negative: escaping pointer" `Quick
      negative_escaping_pointer;
    Alcotest.test_case "negative: symbolic address-taken overlap" `Quick
      negative_address_taken_overlap;
    Alcotest.test_case "negative: unknown callee result" `Quick
      negative_unknown_callee_result;
    Alcotest.test_case "race checker accepts bounded call" `Quick
      races_bounded_call;
    Alcotest.test_case "race checker keeps mutating call flagged" `Quick
      races_mutating_call_still_flagged;
    Alcotest.test_case "why-scalar names the alias pair" `Quick
      why_scalar_reports_alias_pair;
    Alcotest.test_case "why-scalar silent on vector loops" `Quick
      why_scalar_silent_when_vectorized;
    Alcotest.test_case "end to end: vectorizes with identical output" `Quick
      end_to_end_vectorizes;
    Alcotest.test_case "ptrkernels agrees at every level/config" `Quick
      all_levels_agree;
  ]
