(* The compilation service (lib/server): content-addressed procedure
   cache, invalidation components, the worklist points-to solver, and
   the daemon protocol.

   The load-bearing properties:
   - fingerprints see through representation accidents (comments,
     whitespace, variable-id shifts) but never through meaning;
   - a cache hit reproduces the fresh compiler's output byte for byte;
   - an edit invalidates exactly its component's cone, not the rest of
     the unit;
   - concurrent pipelines produce the sequential results. *)

module S = Vpc_server.Service
module C = Vpc_server.Cache
module F = Vpc_server.Fingerprint
module Cm = Vpc_server.Components
module Il = Vpc.Il
module P = Vpc.Pointsto.Pointsto

let check = Alcotest.check
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let read_example name =
  let ic = open_in_bin (Filename.concat "../examples" name) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* A unit with a three-level call chain (top -> mid -> leaf over shared
   globals) and an unrelated kernel on its own globals: two
   invalidation components. *)
let chain_src ?(leaf_const = 1) ?(kern_const = 2) ?(comment = "") () =
  Printf.sprintf
    {|%s
static float a[32];
static float b[32];
static float ka[32];
static float kb[32];
float leaf(float x) { return x * %d.0f; }
float mid(float x) { return leaf(x) + 1.0f; }
float top(int n)
{
  int i;
  float s;
  s = 0.0f;
  for (i = 0; i < n; i++) {
    a[i] = mid(b[i]);
    s = s + a[i];
  }
  return s;
}
int kernel(int n)
{
  int i;
  for (i = 0; i < n; i++) ka[i] = kb[i] * %d.0f;
  return n;
}
|}
    comment leaf_const kern_const

let req ?(name = "t.c") ?(opts = S.default_copts) src =
  { S.req_file = name; req_src = src; req_opts = opts }

let keys_of ?(opts = S.default_copts) src =
  let prog = Vpc.parse src in
  S.component_keys prog opts

let key_of_member (k : S.keyed) name =
  let i = Hashtbl.find k.S.k_comps.Cm.comp_of name in
  k.S.k_keys.(i)

(* Fingerprints ----------------------------------------------------------- *)

let test_fp_comment_whitespace () =
  let k1 = keys_of (chain_src ()) in
  let k2 =
    keys_of (chain_src ~comment:"/* a comment */   " ())
  in
  checks "comment/whitespace edit keeps every key" (key_of_member k1 "top")
    (key_of_member k2 "top");
  checks "kernel key too" (key_of_member k1 "kernel")
    (key_of_member k2 "kernel")

(* Editing an early function shifts every later function's raw variable
   ids; fingerprints must not move with them. *)
let test_fp_id_shift () =
  let src extra =
    Printf.sprintf
      {|static float d[16];
float first(float x) { %s return x + 1.0f; }
static float e[16];
float second(int n)
{
  int i;
  for (i = 0; i < n; i++) e[i] = e[i] * 2.0f;
  return e[0];
}
|}
      extra
  in
  let fp_of src name =
    let prog = Vpc.parse src in
    let f = Option.get (Il.Prog.find_func prog name) in
    F.func prog f
  in
  check Alcotest.(neg string) "the edited function's fingerprint moves"
    (fp_of (src "") "first")
    (fp_of (src "float t; t = x; x = t;") "first");
  checks "the shifted-but-unedited function's fingerprint does not"
    (fp_of (src "") "second")
    (fp_of (src "float t; t = x; x = t;") "second")

(* Keys ------------------------------------------------------------------- *)

let test_key_option_flip () =
  let base = keys_of (chain_src ()) in
  let flipped =
    keys_of ~opts:{ S.default_copts with S.vlen = 16 } (chain_src ())
  in
  check Alcotest.(neg string) "vlen flip changes the key"
    (key_of_member base "top") (key_of_member flipped "top");
  let o2 = keys_of ~opts:{ S.default_copts with S.opt_level = 2 } (chain_src ()) in
  check Alcotest.(neg string) "opt level changes the key"
    (key_of_member base "top") (key_of_member o2 "top")

let test_key_invalidation_cone () =
  let base = keys_of (chain_src ()) in
  let edited = keys_of (chain_src ~leaf_const:7 ()) in
  (* the chain is one component: leaf, mid, top share it *)
  let i_top = Hashtbl.find base.S.k_comps.Cm.comp_of "top" in
  let i_leaf = Hashtbl.find base.S.k_comps.Cm.comp_of "leaf" in
  let i_kern = Hashtbl.find base.S.k_comps.Cm.comp_of "kernel" in
  Alcotest.(check int) "leaf and top share a component" i_top i_leaf;
  checkb "kernel is its own component" true (i_kern <> i_top);
  check Alcotest.(neg string) "a leaf edit invalidates the whole chain"
    (key_of_member base "top") (key_of_member edited "top");
  checks "the unrelated kernel survives a leaf edit"
    (key_of_member base "kernel") (key_of_member edited "kernel");
  (* and symmetrically for a kernel edit *)
  let kedit = keys_of (chain_src ~kern_const:9 ()) in
  checks "the chain survives a kernel edit" (key_of_member base "top")
    (key_of_member kedit "top");
  check Alcotest.(neg string) "the kernel edit invalidates the kernel"
    (key_of_member base "kernel") (key_of_member kedit "kernel")

(* A profile keys decisions by source location, so with a profile in
   play even a pure whitespace shift must miss; without one it hits. *)
let test_key_profile () =
  let runnable =
    {|float v[64];
int main()
{
  int i;
  for (i = 0; i < 64; i++) v[i] = v[i] + 1.0f;
  return 0;
}
|}
  in
  let prof_path = Filename.temp_file "titancc" ".prof" in
  let data, _ = Vpc.profile_gen runnable in
  Vpc.Profile.Data.save data prof_path;
  Fun.protect
    ~finally:(fun () -> Sys.remove prof_path)
    (fun () ->
      let opts = { S.default_copts with S.profile_use = Some prof_path } in
      let shifted = "/* shifted */\n" ^ runnable in
      let k1 = keys_of ~opts runnable and k2 = keys_of ~opts shifted in
      check Alcotest.(neg string)
        "a line shift misses when a profile is in play"
        (key_of_member k1 "main") (key_of_member k2 "main");
      let n1 = keys_of runnable and n2 = keys_of shifted in
      checks "and hits without one" (key_of_member n1 "main")
        (key_of_member n2 "main");
      (* a different profile is a different key *)
      let data2, _ =
        Vpc.profile_gen
          ~config:{ Vpc.Titan.Machine.default_config with procs = 2 }
          runnable
      in
      let prof2 = Filename.temp_file "titancc" ".prof" in
      Vpc.Profile.Data.save data2 prof2;
      Fun.protect
        ~finally:(fun () -> Sys.remove prof2)
        (fun () ->
          let k3 =
            keys_of ~opts:{ opts with S.profile_use = Some prof2 } runnable
          in
          check Alcotest.(neg string) "an edited profile misses"
            (key_of_member k1 "main") (key_of_member k3 "main")))

(* Cache ------------------------------------------------------------------ *)

let test_cache_roundtrip () =
  let e =
    {
      C.key = "abc123";
      funcs =
        [
          {
            C.fe_name = "f";
            fe_il = "(func \"f\" with\nnewlines \"quotes\" \\ and tabs\t)";
            fe_dump = "float f()\n{\n  return 1.0;\n}\n";
            fe_asm = "f:  ; 2 regs\n  ret\n";
          };
        ];
      summaries = [ ("f", "f: reads {a}, writes {}\n") ];
    }
  in
  let e' =
    C.entry_of_sexp
      (Vpc.Support.Sexp.of_string (Vpc.Support.Sexp.to_string (C.entry_to_sexp e)))
  in
  checkb "entry round-trips through its sexp" true (e = e')

let test_cache_persistence () =
  let dir = Filename.temp_file "titancc" ".cache" in
  Sys.remove dir;
  let c1 = C.create ~dir () in
  let r = req (chain_src ()) in
  let cold = S.compile c1 r in
  Alcotest.(check int) "cold compile caches nothing yet" 0 cold.S.res_cached;
  (* a fresh cache instance over the same directory starts warm *)
  let c2 = C.create ~dir () in
  let warm = S.compile c2 r in
  Alcotest.(check int) "warm compile serves every component"
    warm.S.res_components warm.S.res_cached;
  checks "and the bytes match" cold.S.res_il warm.S.res_il;
  checks "asm too" cold.S.res_asm warm.S.res_asm

(* Service ---------------------------------------------------------------- *)

let test_served_bytes_identical () =
  let cache = C.create () in
  List.iter
    (fun (name, src) ->
      let r = req ~name src in
      let cold = S.compile cache r in
      let warm = S.compile cache r in
      Alcotest.(check int)
        (name ^ ": warm pass is a full hit")
        warm.S.res_components warm.S.res_cached;
      checks (name ^ ": IL text") cold.S.res_il warm.S.res_il;
      checks (name ^ ": asm text") cold.S.res_asm warm.S.res_asm;
      (* the cold response itself is the fresh compiler's rendering *)
      let prog, _ =
        Vpc.compile ~options:(S.to_options r.S.req_opts) ~file:name src
      in
      checks (name ^ ": IL equals prog_to_string")
        (Il.Pp.prog_to_string prog) cold.S.res_il)
    [
      ("chain.c", chain_src ());
      ("comment.c", chain_src ~comment:"/* note */" ());
      ("backsolve.c", read_example "backsolve.c");
      ("graphics.c", read_example "graphics.c");
    ]

let test_comment_edit_hits () =
  let cache = C.create () in
  ignore (S.compile cache (req (chain_src ())));
  let r2 = S.compile cache (req (chain_src ~comment:"// tweak\n" ())) in
  Alcotest.(check int) "a comment edit is a full hit" r2.S.res_components
    r2.S.res_cached

let test_batch_matches_sequential () =
  let reqs =
    List.init 12 (fun i ->
        req
          ~name:(Printf.sprintf "u%d.c" i)
          (chain_src ~leaf_const:(i + 1) ~kern_const:(i mod 4) ()))
  in
  let c_par = C.create () and c_seq = C.create () in
  let par = S.compile_batch ~jobs:4 c_par reqs in
  let seq = S.compile_batch ~jobs:1 c_seq reqs in
  List.iteri
    (fun i ((a : S.response), (b : S.response)) ->
      checks (Printf.sprintf "u%d IL" i) b.S.res_il a.S.res_il;
      checks (Printf.sprintf "u%d asm" i) b.S.res_asm a.S.res_asm)
    (List.combine par seq)

(* Worklist solver -------------------------------------------------------- *)

(* The subscription worklist solver must reach the same least fixpoint
   as the naive round-robin solver on every shape we can throw at it. *)
let test_worklist_equals_naive () =
  let summaries solver src =
    let prog = Vpc.parse src in
    let t = P.analyze ~solver prog in
    List.map
      (fun (f : Il.Func.t) ->
        Fmt.str "%a" (P.pp_summary t) f.Il.Func.name)
      prog.Il.Prog.funcs
    |> String.concat "\n"
  in
  List.iter
    (fun (name, src) ->
      checks name (summaries `Naive src) (summaries `Worklist src))
    [
      ("chain", chain_src ());
      ("backsolve", read_example "backsolve.c");
      ("daxpy-inline", read_example "daxpy_inline.c");
      ("ptrkernels", read_example "ptrkernels.c");
      ("math-library", read_example "math_library.c");
      ("graphics", read_example "graphics.c");
    ]

(* Daemon ----------------------------------------------------------------- *)

let test_daemon_roundtrip () =
  let socket_path = Filename.temp_file "titancc" ".sock" in
  Sys.remove socket_path;
  let cache = C.create () in
  let server =
    Domain.spawn (fun () ->
        Vpc_server.Daemon.serve
          { Vpc_server.Daemon.socket_path; verbose = false }
          cache)
  in
  (* wait for the socket to appear *)
  let rec wait n =
    if n = 0 then Alcotest.fail "daemon socket never appeared";
    if not (Sys.file_exists socket_path) then begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  wait 100;
  Fun.protect
    ~finally:(fun () ->
      (try
         ignore
           (Vpc_server.Protocol.request ~socket:socket_path
              Vpc_server.Protocol.Shutdown)
       with _ -> ());
      Domain.join server)
    (fun () ->
      let ask () =
        match
          Vpc_server.Protocol.request ~socket:socket_path
            (Vpc_server.Protocol.Compile (req (chain_src ())))
        with
        | Vpc_server.Protocol.Compiled r -> r
        | _ -> Alcotest.fail "expected a Compiled reply"
      in
      let r1 = ask () in
      let r2 = ask () in
      Alcotest.(check int) "second request is fully cached"
        r2.S.res_components r2.S.res_cached;
      checks "served bytes stable across the wire" r1.S.res_il r2.S.res_il;
      match
        Vpc_server.Protocol.request ~socket:socket_path Vpc_server.Protocol.Stats
      with
      | Vpc_server.Protocol.Stats_reply s ->
          checkb "daemon counted hits" true (s.C.s_hits > 0)
      | _ -> Alcotest.fail "expected a Stats reply")

let tests =
  [
    Alcotest.test_case "fingerprint: comments and whitespace" `Quick
      test_fp_comment_whitespace;
    Alcotest.test_case "fingerprint: id shift" `Quick test_fp_id_shift;
    Alcotest.test_case "key: option flip" `Quick test_key_option_flip;
    Alcotest.test_case "key: invalidation cone" `Quick
      test_key_invalidation_cone;
    Alcotest.test_case "key: profile sensitivity" `Quick test_key_profile;
    Alcotest.test_case "cache: entry round-trip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache: disk persistence" `Quick test_cache_persistence;
    Alcotest.test_case "service: served bytes identical" `Quick
      test_served_bytes_identical;
    Alcotest.test_case "service: comment edit hits" `Quick
      test_comment_edit_hits;
    Alcotest.test_case "service: batch matches sequential" `Quick
      test_batch_matches_sequential;
    Alcotest.test_case "pointsto: worklist equals naive" `Quick
      test_worklist_equals_naive;
    Alcotest.test_case "daemon: protocol round-trip" `Quick
      test_daemon_roundtrip;
  ]
