let () =
  Alcotest.run "vpc"
    [
      ("support", Test_support.tests);
      ("ty", Test_ty.tests);
      ("simplify", Test_simplify.tests);
      ("lexer", Test_lexer.tests);
      ("parser", Test_parser.tests);
      ("lower", Test_lower.tests);
      ("interp", Test_interp.tests);
      ("analysis", Test_analysis.tests);
      ("while-to-do", Test_while_to_do.tests);
      ("indvar", Test_indvar.tests);
      ("dependence", Test_dependence.tests);
      ("vectorize", Test_vectorize.tests);
      ("inline", Test_inline.tests);
      ("transforms", Test_transforms.tests);
      ("doacross", Test_doacross.tests);
      ("serialize", Test_serialize.tests);
      ("titan", Test_titan.tests);
      ("codegen", Test_codegen.tests);
      ("pipeline", Test_pipeline.tests);
      ("vreuse", Test_vreuse.tests);
      ("verify", Test_verify.tests);
      ("pointsto", Test_pointsto.tests);
      ("range", Test_range.tests);
      ("profile", Test_profile.tests);
      ("tune", Test_tune.tests);
      ("server", Test_server.tests);
    ]
