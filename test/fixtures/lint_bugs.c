/* Seeded bugs for the --lint CI gate: every finding below is provable
 * from the ranges alone, so titancc --lint must report each rule and
 * exit 4.  Kept out of examples/ -- the examples must stay clean. */

int a[10];
int sum;

int main()
{
    int i, s;

    a[12] = 5;                 /* oob-subscript: byte offset 48 of a */

    s = 0;
    for (i = 0; i <= 10; i++)  /* oob-loop: attains a[10], one past */
        s = s + a[i];

    for (i = 5; i < 3; i++)    /* loop-guard-false: 5 < 3 never */
        s = s + 1;

    for (i = 0; i <= 2147483600; i = i + 1000)  /* induction-overflow */
        s = s + 1;

    sum = s;
    return 0;
}
