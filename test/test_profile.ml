(* lib/profile tests: exact serialization round-trips, merge algebra
   (QCheck), measured trip counts, the feedback into the vectorizer and
   inliner, and the determinism guarantee that an *empty* profile
   compiles byte-identically to no profile at all. *)

open Helpers
module Profile = Vpc.Profile

(* ----------------------------------------------------------------- *)
(* generators                                                         *)
(* ----------------------------------------------------------------- *)

let gen_key =
  let module G = QCheck.Gen in
  G.map3
    (fun f l c -> { Profile.Key.file = Printf.sprintf "f%d.c" f; line = l; col = c })
    (G.int_range 0 2) (G.int_range 1 20) (G.int_range 0 8)

(* histograms are kept canonical (sorted, duplicate trips summed), the
   same normal form [Data.merge] produces *)
let gen_hist =
  let module G = QCheck.Gen in
  G.map
    (fun pairs ->
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (t, n) ->
          Hashtbl.replace tbl t
            ((try Hashtbl.find tbl t with Not_found -> 0) + n))
        pairs;
      List.sort compare (Hashtbl.fold (fun t n acc -> (t, n) :: acc) tbl []))
    (G.small_list (G.pair (G.int_range 0 100) (G.int_range 1 50)))

let gen_loop =
  let module G = QCheck.Gen in
  G.map2
    (fun (entries, iters) (cycles, hist) ->
      { Profile.Data.entries; iters; cycles; hist })
    (G.pair G.small_nat G.small_nat)
    (G.pair G.small_nat gen_hist)

let gen_call =
  let module G = QCheck.Gen in
  G.map3
    (fun callee count cycles -> { Profile.Data.callee; count; cycles })
    (G.oneofl [ "f"; "g"; "h" ])
    G.small_nat G.small_nat

let gen_data =
  let module G = QCheck.Gen in
  let map_of alist add empty =
    List.fold_left (fun m (k, v) -> add k v m) empty alist
  in
  G.map3
    (fun (procs, sched) loops calls ->
      {
        Profile.Data.procs;
        sched;
        loops = map_of loops Profile.Key.Map.add Profile.Key.Map.empty;
        calls = map_of calls Profile.Key.Map.add Profile.Key.Map.empty;
      })
    (G.pair (G.int_range 1 4) (G.oneofl [ "seq"; "conservative"; "full" ]))
    (G.small_list (G.pair gen_key gen_loop))
    (G.small_list (G.pair gen_key gen_call))

let arb_data = QCheck.make ~print:Profile.Data.to_string gen_data

(* ----------------------------------------------------------------- *)
(* serialization round-trips                                          *)
(* ----------------------------------------------------------------- *)

let roundtrip_prop =
  QCheck.Test.make ~count:300 ~name:"profile text roundtrip (parse . print = id)"
    arb_data
    (fun d ->
      let text = Profile.Data.to_string d in
      let back = Profile.Data.of_string text in
      Profile.Data.equal d back
      (* and the form is canonical: a second print is byte-identical *)
      && String.equal text (Profile.Data.to_string back))

let roundtrip_measured () =
  (* a profile measured by an actual simulator run round-trips exactly *)
  let src =
    "float a[64], b[64];\n\
     int main() {\n\
    \  int i;\n\
    \  for (i = 0; i < 10; i++) a[i] = b[i] + 1.0f;\n\
    \  return 0;\n\
     }"
  in
  let data, _ = Vpc.profile_gen ~file:"t.c" src in
  let text = Profile.Data.to_string data in
  let back = Profile.Data.of_string text in
  Alcotest.(check bool) "measured profile round-trips" true
    (Profile.Data.equal data back);
  Alcotest.(check string) "stable serialization" text
    (Profile.Data.to_string back)

let version_checked () =
  let bad = "(vpc-profile (version 99) (procs 1) (sched full) (loops) (calls))" in
  match Profile.Data.of_string bad with
  | exception _ -> ()
  | _ -> Alcotest.fail "future version must be rejected"

(* ----------------------------------------------------------------- *)
(* merge algebra                                                      *)
(* ----------------------------------------------------------------- *)

let merge_commutative =
  QCheck.Test.make ~count:300 ~name:"merge is commutative"
    (QCheck.pair arb_data arb_data)
    (fun (a, b) ->
      Profile.Data.equal (Profile.Data.merge a b) (Profile.Data.merge b a))

let merge_associative =
  QCheck.Test.make ~count:300 ~name:"merge is associative"
    (QCheck.triple arb_data arb_data arb_data)
    (fun (a, b, c) ->
      Profile.Data.equal
        (Profile.Data.merge (Profile.Data.merge a b) c)
        (Profile.Data.merge a (Profile.Data.merge b c)))

let merge_sums () =
  let src =
    "float a[32];\n\
     int main() { int i; for (i = 0; i < 7; i++) a[i] = 1.0f; return 0; }"
  in
  let data, _ = Vpc.profile_gen ~file:"m.c" src in
  let doubled = Profile.Data.merge data data in
  Profile.Key.Map.iter
    (fun k (l : Profile.Data.loop) ->
      let d = Profile.Key.Map.find k doubled.Profile.Data.loops in
      Alcotest.(check int) "entries doubled" (2 * l.entries) d.entries;
      Alcotest.(check int) "iters doubled" (2 * l.iters) d.iters)
    data.Profile.Data.loops

(* ----------------------------------------------------------------- *)
(* measurement accuracy                                               *)
(* ----------------------------------------------------------------- *)

let measured_trips () =
  let src =
    "float a[64], b[64];\n\
     void kernel(int n) { int i; for (i = 0; i < n; i++) a[i] = b[i]; }\n\
     int main() { int k; for (k = 0; k < 5; k++) kernel(12); return 0; }"
  in
  let data, _ = Vpc.profile_gen ~file:"trips.c" src in
  (* the kernel loop is on line 2: 5 entries, 12 iterations each *)
  let kernel_loop =
    Profile.Key.Map.fold
      (fun k l acc -> if k.Profile.Key.line = 2 then Some l else acc)
      data.Profile.Data.loops None
  in
  (match kernel_loop with
  | None -> Alcotest.fail "kernel loop not measured"
  | Some l ->
      Alcotest.(check int) "entries" 5 l.Profile.Data.entries;
      Alcotest.(check int) "iters" 60 l.Profile.Data.iters;
      Alcotest.(check (list (pair int int))) "histogram" [ (12, 5) ]
        l.Profile.Data.hist;
      Alcotest.(check (option int)) "mean trips" (Some 12)
        (Profile.Data.mean_trips l));
  (* the call site on line 3 was entered 5 times *)
  let kernel_call =
    Profile.Key.Map.fold
      (fun _ (c : Profile.Data.call) acc ->
        if c.callee = "kernel" then Some c else acc)
      data.Profile.Data.calls None
  in
  match kernel_call with
  | None -> Alcotest.fail "kernel call site not measured"
  | Some c -> Alcotest.(check int) "call count" 5 c.Profile.Data.count

let cold_sites_declared () =
  (* a call behind a never-taken branch must appear with count = 0:
     measured-cold is distinct from never-measured *)
  let src =
    "int g;\n\
     void rare(int x) { g = g + x; }\n\
     int main() { if (g > 1000) rare(1); return 0; }"
  in
  let data, _ = Vpc.profile_gen ~file:"cold.c" src in
  let rare_site =
    Profile.Key.Map.fold
      (fun _ (c : Profile.Data.call) acc ->
        if c.callee = "rare" then Some c else acc)
      data.Profile.Data.calls None
  in
  match rare_site with
  | None -> Alcotest.fail "cold call site must still be declared"
  | Some c -> Alcotest.(check int) "cold count" 0 c.Profile.Data.count

(* ----------------------------------------------------------------- *)
(* feedback: the decisions actually flip                              *)
(* ----------------------------------------------------------------- *)

let short_trip_src =
  "float a[256], b[256], c[256];\n\
   void step(float *x, float *y, float *z, int n)\n\
   {\n\
  \  int i;\n\
  \  for (i = 0; i < n; i++) x[i] = y[i] + 2.0f * z[i];\n\
   }\n\
   int main()\n\
   {\n\
  \  int k;\n\
  \  for (k = 0; k < 50; k++) step(a, b, c, 4);\n\
  \  return 0;\n\
   }"

let pgo_keeps_short_loops_scalar () =
  let options = { Vpc.o2 with Vpc.assume_noalias = true } in
  let config = { Vpc.Titan.Machine.default_config with procs = 2 } in
  let _, static_stats = Vpc.compile ~options ~file:"s.c" short_trip_src in
  Alcotest.(check bool) "static vectorizes" true
    (static_stats.Vpc.vectorize.loops_vectorized >= 1);
  let data, _ = Vpc.profile_gen ~config ~file:"s.c" short_trip_src in
  let pgo_prog, pgo_stats =
    Vpc.compile
      ~options:{ options with Vpc.profile = Some data }
      ~file:"s.c" short_trip_src
  in
  Alcotest.(check int) "pgo keeps the short loop scalar" 0
    pgo_stats.Vpc.vectorize.loops_vectorized;
  Alcotest.(check bool) "pgo-scalar decision recorded" true
    (pgo_stats.Vpc.vectorize.pgo_scalar_loops >= 1);
  (* semantics are unchanged *)
  let reference = interp_output (compile ~options:Vpc.o0 short_trip_src) in
  Alcotest.(check string) "pgo output agrees" reference
    (interp_output pgo_prog)

let pgo_skips_cold_calls () =
  let src =
    "int g;\n\
     float a[64], b[64];\n\
     void rare(int x) { g = g + x; }\n\
     int main() {\n\
    \  int i;\n\
    \  for (i = 0; i < 64; i++) a[i] = b[i] * 2.0f;\n\
    \  if (g > 1000) rare(1);\n\
    \  return 0;\n\
     }"
  in
  let _, static_stats = Vpc.compile ~options:Vpc.o3 ~file:"c.c" src in
  let data, _ = Vpc.profile_gen ~file:"c.c" src in
  let pgo_prog, pgo_stats =
    Vpc.compile ~options:{ Vpc.o3 with Vpc.profile = Some data } ~file:"c.c" src
  in
  Alcotest.(check int) "one cold call kept"
    1 pgo_stats.Vpc.inline.calls_skipped_cold;
  Alcotest.(check int) "one fewer site inlined"
    (static_stats.Vpc.inline.calls_inlined - 1)
    pgo_stats.Vpc.inline.calls_inlined;
  let reference = interp_output (compile ~options:Vpc.o0 src) in
  Alcotest.(check string) "pgo output agrees" reference
    (interp_output pgo_prog)

let pgo_never_slower () =
  (* acceptance: on the short-trip workload the profile-guided program is
     strictly faster than the static one on the measured machine *)
  let options = { Vpc.o2 with Vpc.assume_noalias = true } in
  let config = { Vpc.Titan.Machine.default_config with procs = 2 } in
  let static_prog, _ = Vpc.compile ~options ~file:"s.c" short_trip_src in
  let static_cycles =
    (Vpc.run_titan ~config static_prog).Vpc.Titan.Machine.metrics.cycles
  in
  let data, _ = Vpc.profile_gen ~config ~file:"s.c" short_trip_src in
  let pgo_prog, _ =
    Vpc.compile
      ~options:{ options with Vpc.profile = Some data }
      ~file:"s.c" short_trip_src
  in
  let pgo_cycles =
    (Vpc.run_titan ~config pgo_prog).Vpc.Titan.Machine.metrics.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "pgo %d < static %d cycles" pgo_cycles static_cycles)
    true (pgo_cycles < static_cycles)

(* ----------------------------------------------------------------- *)
(* determinism: empty profile = no profile, byte for byte             *)
(* ----------------------------------------------------------------- *)

let empty_profile_deterministic () =
  List.iter
    (fun (lname, options) ->
      List.iter
        (fun src ->
          let plain = compile ~options src in
          let with_empty =
            compile
              ~options:{ options with Vpc.profile = Some Profile.Data.empty }
              src
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: empty profile is byte-identical" lname)
            (Vpc.Il.Pp.prog_to_string plain)
            (Vpc.Il.Pp.prog_to_string with_empty))
        [
          short_trip_src;
          "float x[128], y[128];\n\
           float twice(float v) { return v * 2.0f; }\n\
           int main() {\n\
          \  int i;\n\
          \  for (i = 0; i < 128; i++) x[i] = twice(y[i]) + 1.0f;\n\
          \  return 0;\n\
           }";
        ])
    [ ("O2", Vpc.o2); ("O3", Vpc.o3) ]

(* ----------------------------------------------------------------- *)
(* the CLI two-pass flow                                              *)
(* ----------------------------------------------------------------- *)

let titancc = "../bin/titancc.exe"

let run_cli args =
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  let cmd =
    Printf.sprintf "%s %s >%s 2>%s" titancc (String.concat " " args) null null
  in
  match Unix.system cmd with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255

let cli_two_pass () =
  if not (Sys.file_exists titancc) then
    Alcotest.failf "titancc binary not found from %s" (Sys.getcwd ());
  let c_path = Filename.temp_file "pgo_cli" ".c" in
  let oc = open_out c_path in
  output_string oc short_trip_src;
  close_out oc;
  let prof = Filename.temp_file "pgo_cli" ".vprof" in
  Fun.protect
    ~finally:(fun () -> Sys.remove c_path; Sys.remove prof)
    (fun () ->
      Alcotest.(check int) "--profile-gen exits 0" 0
        (run_cli [ c_path; "--profile-gen"; prof; "-p"; "2"; "-q" ]);
      Alcotest.(check bool) "profile written" true (Sys.file_exists prof);
      let data = Profile.Data.load prof in
      Alcotest.(check bool) "profile non-empty" false
        (Profile.Data.is_empty data);
      Alcotest.(check int) "--profile-use --verify-il exits 0" 0
        (run_cli
           [ c_path; "--profile-use"; prof; "--report"; "--verify-il";
             "-p"; "2"; "-q" ]))

let tests =
  [
    Alcotest.test_case "measured roundtrip" `Quick roundtrip_measured;
    Alcotest.test_case "version check" `Quick version_checked;
    QCheck_alcotest.to_alcotest roundtrip_prop;
    QCheck_alcotest.to_alcotest merge_commutative;
    QCheck_alcotest.to_alcotest merge_associative;
    Alcotest.test_case "merge sums" `Quick merge_sums;
    Alcotest.test_case "measured trips" `Quick measured_trips;
    Alcotest.test_case "cold sites declared" `Quick cold_sites_declared;
    Alcotest.test_case "short loops stay scalar" `Quick
      pgo_keeps_short_loops_scalar;
    Alcotest.test_case "cold calls stay calls" `Quick pgo_skips_cold_calls;
    Alcotest.test_case "pgo beats static on short trips" `Quick
      pgo_never_slower;
    Alcotest.test_case "empty profile is deterministic" `Quick
      empty_profile_deterministic;
    Alcotest.test_case "CLI two-pass flow" `Slow cli_two_pass;
  ]
