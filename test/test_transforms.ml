(* Scalar replacement and strength reduction tests (paper §6). *)

open Helpers

let backsolve_src =
  {|float x[501], y[500], z[500];
    void backsolve(int n) {
      float *p, *q;
      int i;
      p = &x[1];
      q = &x[0];
      for (i = 0; i < n - 2; i++)
        p[i] = z[i] * (y[i] - q[i]);
    }
    int main() {
      int i;
      for (i = 0; i < 500; i++) { y[i] = i * 0.25f; z[i] = 0.5f; }
      x[0] = 2.0f;
      backsolve(500);
      printf("%g %g %g\n", x[1], x[10], x[498]);
      return 0;
    }|}

let backsolve_scalar_replaced () =
  (* the §6 listing: f_reg carries the recurrence, one load removed *)
  let prog, stats = compile_stats ~options:Vpc.o3 backsolve_src in
  Alcotest.(check bool) "scalar replacement fired" true
    (stats.scalar_replace.loops_transformed >= 1);
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_contains "f_reg register" ~needle:"f_reg" il

let backsolve_strength_reduced () =
  let prog, stats = compile_stats ~options:Vpc.o3 backsolve_src in
  Alcotest.(check bool) "strength reduction fired" true
    (stats.strength_reduction.loops_reduced >= 1);
  Alcotest.(check bool) "multiplies removed" true
    (stats.strength_reduction.multiplies_removed >= 3);
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_contains "pointer temps" ~needle:"sr_ptr" il;
  (* inside the reduced loop there is no multiplication by the index *)
  check_not_contains "no index multiply in body" ~needle:"4 * dummy" il

let backsolve_semantics () = assert_all_configs_agree "backsolve" backsolve_src

let scalar_replace_requires_distance_one () =
  (* distance 2 recurrence: scalar replacement must not fire *)
  let src =
    {|float x[502];
      void f(int n) {
        float *p, *q;
        int i;
        p = &x[2];
        q = &x[0];
        for (i = 0; i < n; i++)
          p[i] = q[i] + 1.0f;
      }|}
  in
  let prog, stats =
    compile_stats ~options:{ Vpc.o3 with Vpc.strength_reduction = false } src
  in
  ignore prog;
  Alcotest.(check int) "not transformed" 0 stats.scalar_replace.loops_transformed

let scalar_replace_semantics_distance2 () =
  assert_all_configs_agree "distance 2 recurrence"
    {|float x[502];
      int main() {
        float *p, *q;
        int i;
        x[0] = 1.0f; x[1] = 2.0f;
        p = &x[2];
        q = &x[0];
        for (i = 0; i < 500; i++) p[i] = q[i] + 1.0f;
        printf("%g %g %g\n", x[2], x[3], x[501]);
        return 0;
      }|}

let strength_reduction_shares_pointers () =
  (* two references with the same base and stride share one pointer (the
     CSE part of §6) *)
  let src =
    {|float a[100], b[100];
      void f(int n) {
        int i;
        for (i = 0; i < n - 1; i++)
          a[i] = b[i] * b[i] + 1.0f;   /* b[i] appears twice */
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o1 src in
  ignore prog;
  Alcotest.(check bool) "pointer shared" true
    (stats.strength_reduction.pointers_shared >= 1)

let invariant_hoisting () =
  let src =
    {|float a[100];
      void f(int n, float s, float t) {
        int i;
        for (i = 0; i < n; i++)
          a[i] = a[i] * (s * t + 1.0f);   /* s*t+1 is invariant *)
      }|}
  in
  (* note: * inside the comment above closes it; use a clean source *)
  ignore src;
  let src =
    {|float a[100];
      void f(int n, float s, float t) {
        int i;
        for (i = 0; i < n; i++)
          a[i] = a[i] * (s * t + 1.0f);
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o1 src in
  ignore prog;
  Alcotest.(check bool) "invariant hoisted" true
    (stats.strength_reduction.invariants_hoisted >= 1)

let strength_reduction_not_on_vector_loops () =
  (* vectorized loops must not be de-optimized back to pointers *)
  let src =
    {|float a[100], b[100];
      void f() {
        int i;
        for (i = 0; i < 100; i++) a[i] = b[i] + 1.0f;
      }|}
  in
  let il = func_il ~options:Vpc.o2 src "f" in
  check_contains "still vector" ~needle:"[0 : " il;
  check_not_contains "no sr pointers in vector loop" ~needle:"sr_ptr" il

let reduction_loop_strength_reduced () =
  (* the classic sum loop keeps its reduction but the subscript multiply
     goes away *)
  let src =
    {|float a[200];
      float sum(int n) {
        float s;
        int i;
        s = 0.0;
        for (i = 0; i < n; i++) s += a[i];
        return s;
      }|}
  in
  let il = func_il ~options:Vpc.o2 src "sum" in
  check_contains "reduced to pointer walk" ~needle:"sr_ptr" il;
  assert_all_configs_agree "sum semantics"
    {|float a[200];
      int main() {
        int i;
        float s;
        for (i = 0; i < 200; i++) a[i] = i * 0.5f;
        s = 0;
        for (i = 0; i < 200; i++) s += a[i];
        printf("%g\n", s);
        return 0;
      }|}

(* ---- loop-nest restructuring: interchange and fusion (§7) ---- *)

(* A 128x4 nest: the inner trip (4) is far below the strip length, so
   vectorizing along the 128-trip outer level is worth the stride-32
   access and the cost model interchanges.  Legal: the only dependence
   is loop-independent (=,=). *)
let interchange_src =
  {|double m[128][4];
    int main() {
      int i, j;
      for (i = 0; i < 128; i = i + 1)
        for (j = 0; j < 4; j = j + 1)
          m[i][j] = m[i][j] * 2.0 + 1.0;
      printf("%g\n", m[100][2]);
      return 0;
    }|}

let interchange_fires () =
  let _, stats =
    compile_stats ~options:{ Vpc.o3 with Vpc.verify = `Each_stage }
      interchange_src
  in
  Alcotest.(check int) "nest interchanged" 1
    stats.Vpc.interchange.nests_interchanged;
  Alcotest.(check bool) "inner level vectorized" true
    (stats.Vpc.vectorize.loops_vectorized >= 1)

let interchange_semantics () =
  assert_all_configs_agree "interchange 128x4" interchange_src

(* Same profitable shape, but the body reads a[i-1][j+1]: the (<,>)
   direction vector makes the swap lexicographically negative, so the
   pass must refuse it. *)
let interchange_blocked_src =
  {|double s[129][6];
    int main() {
      int i, j;
      for (i = 1; i < 128; i = i + 1)
        for (j = 0; j < 5; j = j + 1)
          s[i][j] = s[i-1][j+1] + 1.0;
      printf("%g\n", s[100][2]);
      return 0;
    }|}

let interchange_refused_on_blocker () =
  let _, stats =
    compile_stats ~options:{ Vpc.o3 with Vpc.verify = `Each_stage }
      interchange_blocked_src
  in
  Alcotest.(check int) "kept original order" 0
    stats.Vpc.interchange.nests_interchanged;
  Alcotest.(check bool) "swap rejected as illegal" true
    (stats.Vpc.interchange.orders_rejected_legality >= 1)

let interchange_blocked_semantics () =
  assert_all_configs_agree "interchange blocker" interchange_blocked_src

(* Two conformable loops over the same range with only an (=) dependence
   between them: fusable, and the fused statements share one strip loop. *)
let fuse_src =
  {|double x[256], y[256], z[256];
    int main() {
      int i;
      for (i = 0; i < 256; i = i + 1)
        y[i] = x[i] * 2.0 + 1.0;
      for (i = 0; i < 256; i = i + 1)
        z[i] = y[i] + x[i];
      printf("%g\n", z[100]);
      return 0;
    }|}

let fuse_fires () =
  let _, stats =
    compile_stats ~options:{ Vpc.o3 with Vpc.verify = `Each_stage } fuse_src
  in
  Alcotest.(check bool) "loops fused" true (stats.Vpc.fuse.loops_fused >= 1)

let fuse_semantics () = assert_all_configs_agree "fusion pair" fuse_src

(* The second loop reads x[i+1], written by the first loop one iteration
   later: fused, iteration i of the second body would run before the
   write it depends on (a lexicographically negative cross-nest
   dependence), so fusion must refuse. *)
let fuse_blocked_src =
  {|double x[64], z[64];
    int main() {
      int i;
      for (i = 0; i < 63; i = i + 1)
        x[i] = (double)i * 0.5;
      for (i = 0; i < 63; i = i + 1)
        z[i] = x[i+1] + 1.0;
      printf("%g\n", z[40]);
      return 0;
    }|}

let fuse_refused_on_blocker () =
  let _, stats =
    compile_stats ~options:{ Vpc.o3 with Vpc.verify = `Each_stage }
      fuse_blocked_src
  in
  Alcotest.(check int) "fusion refused" 0 stats.Vpc.fuse.loops_fused;
  Alcotest.(check bool) "refusal was the dependence" true
    (stats.Vpc.fuse.rejected_dependence >= 1)

let fuse_blocked_semantics () =
  assert_all_configs_agree "fusion blocker" fuse_blocked_src

(* Off-switches: with both passes disabled the stats stay zero. *)
let nest_passes_off () =
  let _, stats =
    compile_stats
      ~options:{ Vpc.o3 with Vpc.interchange = false; Vpc.fuse = false }
      interchange_src
  in
  Alcotest.(check int) "no interchange" 0
    stats.Vpc.interchange.nests_interchanged;
  let _, fstats =
    compile_stats
      ~options:{ Vpc.o3 with Vpc.interchange = false; Vpc.fuse = false }
      fuse_src
  in
  Alcotest.(check int) "no fusion" 0 fstats.Vpc.fuse.loops_fused;
  Alcotest.(check int) "no strip sharing" 0
    fstats.Vpc.vectorize.strip_loops_shared

let tests =
  [
    Alcotest.test_case "backsolve scalar replaced (§6)" `Quick backsolve_scalar_replaced;
    Alcotest.test_case "backsolve strength reduced (§6)" `Quick backsolve_strength_reduced;
    Alcotest.test_case "backsolve semantics" `Quick backsolve_semantics;
    Alcotest.test_case "distance-1 requirement" `Quick scalar_replace_requires_distance_one;
    Alcotest.test_case "distance-2 semantics" `Quick scalar_replace_semantics_distance2;
    Alcotest.test_case "pointer sharing (CSE)" `Quick strength_reduction_shares_pointers;
    Alcotest.test_case "invariant hoisting" `Quick invariant_hoisting;
    Alcotest.test_case "vector loops untouched" `Quick strength_reduction_not_on_vector_loops;
    Alcotest.test_case "reduction loop" `Quick reduction_loop_strength_reduced;
    Alcotest.test_case "interchange fires (§7)" `Quick interchange_fires;
    Alcotest.test_case "interchange semantics" `Quick interchange_semantics;
    Alcotest.test_case "interchange refused on (<,>)" `Quick
      interchange_refused_on_blocker;
    Alcotest.test_case "interchange blocker semantics" `Quick
      interchange_blocked_semantics;
    Alcotest.test_case "fusion fires (§7)" `Quick fuse_fires;
    Alcotest.test_case "fusion semantics" `Quick fuse_semantics;
    Alcotest.test_case "fusion refused on x[i+1]" `Quick
      fuse_refused_on_blocker;
    Alcotest.test_case "fusion blocker semantics" `Quick
      fuse_blocked_semantics;
    Alcotest.test_case "nest passes off" `Quick nest_passes_off;
  ]
