(* Doacross (§10) tests: pointer-chasing loops split into a serialized
   advance and a parallel body, gated on the independence pragma. *)

open Helpers

let list_walk_src =
  {|struct node { float val; int next; };
    struct node pool[128];
    float out[128];
    int main()
    {
      int p, k;
      float s;
      for (k = 0; k < 128; k++) {
        pool[k].val = k * 0.5f;
        pool[k].next = (k < 127) ? k + 1 : -1;
      }
      k = 0;
      p = 0;
      #pragma vpc independent
      while (p != -1) {
        out[k] = pool[p].val * 2.0f + 1.0f;
        p = pool[p].next;
        k++;
      }
      s = 0;
      for (k = 0; k < 128; k++) s += out[k];
      printf("%g %d\n", s, k);
      return 0;
    }|}

let transforms_with_pragma () =
  let prog, stats = compile_stats ~options:Vpc.o2 list_walk_src in
  Alcotest.(check int) "one loop transformed" 1
    stats.doacross.loops_transformed;
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_contains "marked doacross" ~needle:"doacross" il;
  (* the copies capture the pre-advance values *)
  check_contains "pointer copy" ~needle:"p_cur" il

let not_without_pragma () =
  (* the same program with the pragma line stripped *)
  let src =
    String.concat ""
      (String.split_on_char '#' list_walk_src |> function
       | before :: after :: rest ->
           let after =
             match String.index_opt after '\n' with
             | Some i -> String.sub after i (String.length after - i)
             | None -> after
           in
           before :: after :: rest
       | l -> l)
  in
  let prog, stats = compile_stats ~options:Vpc.o2 src in
  ignore prog;
  Alcotest.(check int) "no pragma, no transform" 0
    stats.doacross.loops_transformed

let semantics_preserved () = assert_all_configs_agree "list walk" list_walk_src

let semantics_with_branches () =
  assert_all_configs_agree "list walk with conditional body"
    {|struct node { float val; int next; };
      struct node pool[64];
      float pos[64], neg[64];
      int main()
      {
        int p, k;
        float sp, sn;
        for (k = 0; k < 64; k++) {
          pool[k].val = (k & 1) ? (0.0f - k) : (float)k;
          pool[k].next = (k < 63) ? k + 1 : -1;
        }
        k = 0;
        p = 0;
        #pragma vpc independent
        while (p != -1) {
          if (pool[p].val < 0.0f) neg[k] = pool[p].val;
          else pos[k] = pool[p].val;
          p = pool[p].next;
          k++;
        }
        sp = 0; sn = 0;
        for (k = 0; k < 64; k++) { sp += pos[k]; sn += neg[k]; }
        printf("%g %g\n", sp, sn);
        return 0;
      }|}

let processors_reduce_cycles () =
  let prog = compile ~options:Vpc.o2 list_walk_src in
  let cyc procs =
    (Vpc.run_titan
       ~config:{ Vpc.Titan.Machine.default_config with procs }
       prog)
      .metrics
      .cycles
  in
  let c1 = cyc 1 and c4 = cyc 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 procs reduce cycles (%d -> %d)" c1 c4)
    true (c4 < c1)

let rejects_body_feeding_advance () =
  (* the advance reads a value the parallel body computes: must reject *)
  let src =
    {|int pool[64];
      float out[64];
      int main()
      {
        int p, k, t;
        p = 0; k = 0;
        #pragma vpc independent
        while (p != -1 && k < 64) {
          t = pool[p] & 63;
          out[k] = (float)t;
          p = (t > 32) ? -1 : k;   /* p depends on t from the body */
          k++;
        }
        printf("%d\n", k);
        return 0;
      }|}
  in
  (* whether or not the shape is recognized, results must be preserved *)
  assert_all_configs_agree "body feeds advance" src

(* ---- DO-loop post/wait pipelining ---- *)

(* Carried distance 8 through a[], heavy polynomial body: one sync
   channel, clear pipeline win at 4 processors. *)
let recurrence_src =
  {|double a[4200];
    int main() {
      int i;
      double t, p;
      for (i = 0; i < 8; i = i + 1)
        a[i] = 0.25 + (double)i * 0.0625;
      for (i = 0; i < 4096; i++) {
        t = a[i];
        p = (t * 0.5 + 1.0) * (t - 0.25) + (t * t) * 0.125;
        p = p * (t * 0.0625 - 2.0) + (t + 3.0) * 0.75;
        a[i + 8] = p * 0.125 + t * 0.875;
      }
      printf("a[2048]=%g a[4103]=%g\n", a[2048], a[4103]);
      return 0;
    }|}

(* Two carried distances (63 and 64): sync elimination must keep the
   chain minimal while the exact-sum rule still covers every edge. *)
let wavefront_src =
  {|double u[8400];
    int main() {
      int k;
      double s, q, r, w;
      for (k = 0; k < 64; k = k + 1)
        u[k] = 0.25 + (double)k * 0.015625;
      for (k = 0; k < 8192; k++) {
        s = u[k] * 0.3 + u[k + 1] * 0.3;
        q = u[k] * u[k + 1];
        r = q * (1.0 - q * 0.5) * 0.02 + s;
        w = q * (0.5 + q * 0.25) * 0.015625;
        u[k + 64] = u[k + 64] * 0.35 + r + w + 0.05;
      }
      printf("u[4096]=%.15g u[8255]=%.15g\n", u[4096], u[8255]);
      return 0;
    }|}

let titan_metrics ?(procs = 4) prog =
  (Vpc.run_titan
     ~config:{ Vpc.Titan.Machine.default_config with procs }
     prog)
    .Vpc.Titan.Machine.metrics

let do_sync_pipelines_recurrence () =
  let prog, stats = compile_stats ~options:Vpc.o2 recurrence_src in
  Alcotest.(check int) "one loop pipelined" 1 stats.doacross.do_pipelined;
  Alcotest.(check int) "one sync channel" 1 stats.doacross.syncs_placed;
  let m = titan_metrics prog in
  Alcotest.(check int) "one post per iteration" 4096 m.posts;
  Alcotest.(check int) "one wait per iteration" 4096 m.waits;
  let off =
    compile ~options:{ Vpc.o2 with Vpc.doacross_sync = false } recurrence_src
  in
  let m_off = titan_metrics off in
  Alcotest.(check bool)
    (Printf.sprintf "pipelining wins at 4 procs (%d -> %d)" m_off.cycles
       m.cycles)
    true
    (m.cycles * 3 < m_off.cycles * 2)

let do_sync_eliminates_redundant () =
  let prog, stats = compile_stats ~options:Vpc.o2 wavefront_src in
  Alcotest.(check int) "one loop pipelined" 1 stats.doacross.do_pipelined;
  Alcotest.(check int) "two sync channels kept" 2 stats.doacross.syncs_placed;
  Alcotest.(check bool) "some syncs eliminated" true
    (stats.doacross.syncs_eliminated > 0);
  let m = titan_metrics prog in
  Alcotest.(check int) "two posts per iteration" (2 * 8192) m.posts

let do_sync_off_by_option () =
  let prog, stats =
    compile_stats
      ~options:{ Vpc.o2 with Vpc.doacross_sync = false }
      recurrence_src
  in
  Alcotest.(check int) "nothing pipelined" 0 stats.doacross.do_pipelined;
  let m = titan_metrics prog in
  Alcotest.(check int) "no posts" 0 m.posts;
  Alcotest.(check int) "no stalls" 0 m.post_wait_stalls

let do_sync_differential () =
  assert_all_configs_agree "recurrence" recurrence_src;
  assert_all_configs_agree "wavefront" wavefront_src

(* The machine must terminate and agree for processor counts that do not
   divide the trip count or the carried distance. *)
let do_sync_any_proc_count () =
  let prog = compile ~options:Vpc.o2 recurrence_src in
  let reference = interp_output prog in
  List.iter
    (fun procs ->
      let out =
        titan_output
          ~config:{ Vpc.Titan.Machine.default_config with procs }
          prog
      in
      Alcotest.(check string)
        (Printf.sprintf "titan at %d procs" procs)
        reference out)
    [ 1; 2; 3; 5; 8 ]

(* Distance 3 with a heavy body: the producing iteration is still
   running when the consumer reaches its wait, so the stall counter must
   move — and the result must still be right. *)
let do_sync_counts_stalls () =
  let src =
    {|double a[4200];
      int main() {
        int i;
        double t, p;
        a[0] = 0.5;
        a[1] = 0.625;
        a[2] = 0.75;
        for (i = 0; i < 1024; i++) {
          t = a[i];
          p = (t * 0.5 + 1.0) * (t - 0.25) + (t * t) * 0.125;
          p = p * (t * 0.0625 - 2.0) + (t + 3.0) * 0.75;
          a[i + 3] = p * 0.125 + t * 0.875;
        }
        printf("a[1000]=%g\n", a[1000]);
        return 0;
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o2 src in
  Alcotest.(check int) "pipelined" 1 stats.doacross.do_pipelined;
  let m = titan_metrics prog in
  Alcotest.(check bool) "waits stall" true (m.post_wait_stalls > 0);
  Alcotest.(check string) "output right" (interp_output prog)
    (titan_output
       ~config:{ Vpc.Titan.Machine.default_config with procs = 4 }
       prog)

let do_sync_rejects_call () =
  let src =
    {|double a[300];
      double f(double x) { return x * 0.5 + 1.0; }
      int main() {
        int i;
        for (i = 0; i < 128; i++)
          a[i + 8] = f(a[i]);
        printf("%g %g\n", a[100], a[200]);
        return 0;
      }|}
  in
  let prog, stats =
    compile_stats ~options:{ Vpc.o2 with Vpc.inline = `None } src
  in
  Alcotest.(check int) "not pipelined" 0 stats.doacross.do_pipelined;
  Alcotest.(check int) "no posts" 0 (titan_metrics prog).posts;
  assert_all_configs_agree "call in body" src

let asm_text prog =
  let layout = Vpc.Titan.Machine.layout_globals prog in
  let tprog =
    Vpc.Titan.Codegen.gen_program prog ~global_addr:(fun id ->
        Hashtbl.find layout.Vpc.Titan.Machine.addr_of id)
  in
  Hashtbl.fold (fun name f acc -> (name, f) :: acc)
    tprog.Vpc.Titan.Isa.funcs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (_, f) -> Fmt.str "%a" Vpc.Titan.Isa.pp_func f)
  |> String.concat "\n"

let do_sync_pipelines_bounded_distance () =
  (* n is only known to lie in [7, 9]: no constant carried distance, but
     the range bound proves every carried distance >= 7, so the loop
     pipelines behind a cumulative wait (block until every iteration
     <= i - 7 has posted) — sound for n = 7, 8, or 9 alike.  Exact-sum
     chains alone left this loop serial. *)
  let src =
    {|double a[1100];
      int n;
      int main() {
        int i;
        if (a[0] < 0.5) n = 7; else n = 9;
        for (i = 0; i < 1024; i++)
          a[i + n] = (a[i] * 0.5 + 1.0) * (a[i] * 0.25 + 2.0)
                   + (a[i] * 0.125 + 3.0) * (a[i] * 0.0625 + 4.0);
        printf("%g %g\n", a[100], a[1000]);
        return 0;
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o2 src in
  Alcotest.(check int) "pipelined" 1 stats.doacross.do_pipelined;
  Alcotest.(check int) "posts once per iteration" 1024
    (titan_metrics prog).posts;
  check_contains "cumulative wait emitted" ~needle:"cwait"
    (asm_text prog);
  assert_all_configs_agree "bounded symbolic distance" src

let do_sync_rejects_unbounded_distance () =
  (* n may be 7 or -9: the carried distance has no usable lower bound
     (it is not even directionally consistent), so the loop must stay
     serial with no sync instructions emitted *)
  let src =
    {|double a[300];
      int n;
      int main() {
        int i;
        if (a[0] < 0.5) n = 7; else n = -9;
        for (i = 9; i < 128; i++)
          a[i + n] = a[i] * 0.5 + 1.0;
        printf("%g %g\n", a[100], a[20]);
        return 0;
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o2 src in
  Alcotest.(check int) "not pipelined" 0 stats.doacross.do_pipelined;
  Alcotest.(check bool) "rejected for distance" true
    (stats.doacross.do_rejected_distance > 0);
  Alcotest.(check int) "no posts" 0 (titan_metrics prog).posts;
  assert_all_configs_agree "unbounded distance" src

let do_sync_rejects_scalar_recurrence () =
  (* s carries a register recurrence: post/wait order memory, not
     registers, so the loop must stay serial *)
  let src =
    {|double a[300];
      int main() {
        int i;
        double s;
        s = 1.0;
        for (i = 0; i < 128; i++) {
          s = s * 0.5 + a[i];
          a[i + 4] = s;
        }
        printf("%g %g\n", a[100], s);
        return 0;
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o2 src in
  Alcotest.(check int) "not pipelined" 0 stats.doacross.do_pipelined;
  Alcotest.(check bool) "rejected for scalar state" true
    (stats.doacross.do_rejected_scalar > 0);
  Alcotest.(check int) "no posts" 0 (titan_metrics prog).posts;
  assert_all_configs_agree "scalar recurrence" src

(* ---- the exact-sum coverage rule, directly ---- *)

let sync ?(cum = false) chan distance post_after wait_before :
    Vpc.Il.Stmt.dsync =
  { Vpc.Il.Stmt.chan; distance; post_after; wait_before; cum }

let covers syncs ~src ~dst ~dist =
  Vpc.Transform.Doacross.covers syncs ~src ~dst ~dist ~cum:false

let covers_exact_sum () =
  let s1 = sync 0 1 2 0 in
  (* post after stmt 2, wait before stmt 0, distance 1 *)
  Alcotest.(check bool) "direct edge covered" true
    (covers [ s1 ] ~src:1 ~dst:3 ~dist:1);
  Alcotest.(check bool) "source after the post" false
    (covers [ s1 ] ~src:3 ~dst:3 ~dist:1);
  Alcotest.(check bool) "sink before the wait" true
    (covers [ s1 ] ~src:0 ~dst:0 ~dist:1);
  Alcotest.(check bool) "self-chain sums to 2"
    (* wait at 0 precedes the post at 2, so the d=1 channel composes
       with itself through the intermediate iteration *)
    true
    (covers [ s1 ] ~src:1 ~dst:3 ~dist:2);
  let far = sync 1 2 3 1 in
  Alcotest.(check bool) "longer sync overshoots a shorter edge" false
    (covers [ far ] ~src:0 ~dst:3 ~dist:1);
  Alcotest.(check bool) "self-chain multiples miss odd distances" false
    (* far self-chains to 2, 4, 6, ... — never exactly 3 *)
    (covers [ far ] ~src:1 ~dst:1 ~dist:3);
  Alcotest.(check bool) "mixed chain sums 1+2" true
    (covers [ s1; far ] ~src:1 ~dst:3 ~dist:3);
  Alcotest.(check bool) "empty chain covers nothing" false
    (covers [] ~src:0 ~dst:3 ~dist:1)

let covers_respects_order () =
  (* wait lands after the next post: the chain cannot compose *)
  let early = sync 0 1 0 3 in
  Alcotest.(check bool) "broken chain rejected" false
    (covers [ early; early ] ~src:0 ~dst:3 ~dist:2);
  Alcotest.(check bool) "single link still fine" true
    (covers [ early ] ~src:0 ~dst:3 ~dist:1)

let dsync_sexp_roundtrip () =
  let d = sync 2 63 4 1 in
  let d' = Vpc.Il.Stmt.dsync_of_sexp (Vpc.Il.Stmt.dsync_to_sexp d) in
  Alcotest.(check bool) "dsync round-trips" true (d = d');
  (* a pipelined function round-trips through the catalog serialization
     with its sync chain intact *)
  let prog = compile ~options:Vpc.o2 wavefront_src in
  let f = Vpc.Il.Prog.func_exn prog "main" in
  let f' = Vpc.Il.Func.of_sexp (Vpc.Il.Func.to_sexp f) in
  Alcotest.(check string) "function round-trips"
    (Vpc.Il.Pp.func_to_string prog f)
    (Vpc.Il.Pp.func_to_string prog f')

let tests =
  [
    Alcotest.test_case "transforms with pragma" `Quick transforms_with_pragma;
    Alcotest.test_case "needs the pragma" `Quick not_without_pragma;
    Alcotest.test_case "semantics" `Quick semantics_preserved;
    Alcotest.test_case "conditional bodies" `Quick semantics_with_branches;
    Alcotest.test_case "processors help" `Quick processors_reduce_cycles;
    Alcotest.test_case "rejects dependent advance" `Quick rejects_body_feeding_advance;
    Alcotest.test_case "sync: pipelines recurrence" `Quick do_sync_pipelines_recurrence;
    Alcotest.test_case "sync: eliminates redundant" `Quick do_sync_eliminates_redundant;
    Alcotest.test_case "sync: off by option" `Quick do_sync_off_by_option;
    Alcotest.test_case "sync: differential" `Quick do_sync_differential;
    Alcotest.test_case "sync: any proc count" `Quick do_sync_any_proc_count;
    Alcotest.test_case "sync: counts stalls" `Quick do_sync_counts_stalls;
    Alcotest.test_case "sync: rejects call" `Quick do_sync_rejects_call;
    Alcotest.test_case "sync: pipelines bounded symbolic distance" `Quick
      do_sync_pipelines_bounded_distance;
    Alcotest.test_case "sync: rejects unbounded distance" `Quick
      do_sync_rejects_unbounded_distance;
    Alcotest.test_case "sync: rejects scalar recurrence" `Quick do_sync_rejects_scalar_recurrence;
    Alcotest.test_case "sync: exact-sum coverage" `Quick covers_exact_sum;
    Alcotest.test_case "sync: chain order" `Quick covers_respects_order;
    Alcotest.test_case "sync: sexp round-trip" `Quick dsync_sexp_roundtrip;
  ]
