(* Dependence analysis tests: ZIV/SIV/GCD/Banerjee units, alias rules,
   and a qcheck soundness property against brute-force conflict checking. *)

open Vpc.Dependence

let check_verdict name expected got =
  let show = function
    | Test.Independent -> "independent"
    | Test.Dependent { distance = Some d; _ } -> Printf.sprintf "dep(%d)" d
    | Test.Dependent { distance = None; _ } -> "dep(?)"
  in
  Alcotest.(check string) name (show expected) (show got)

let ziv_tests () =
  check_verdict "same location" (Test.dep (Some 0))
    (Test.affine ~c1:0 ~c2:0 ~delta:0 ~trip:(Some 100));
  check_verdict "different locations" Test.Independent
    (Test.affine ~c1:0 ~c2:0 ~delta:8 ~trip:(Some 100))

let strong_siv () =
  (* backsolve: write base+4, read base+0, both stride 4: distance 1 *)
  check_verdict "distance 1" (Test.dep (Some 1))
    (Test.affine ~c1:4 ~c2:4 ~delta:(-4) ~trip:(Some 100));
  check_verdict "distance -2" (Test.dep (Some (-2)))
    (Test.affine ~c1:4 ~c2:4 ~delta:8 ~trip:(Some 100));
  check_verdict "not divisible" Test.Independent
    (Test.affine ~c1:4 ~c2:4 ~delta:2 ~trip:(Some 100));
  check_verdict "beyond trip count" Test.Independent
    (Test.affine ~c1:4 ~c2:4 ~delta:(-400) ~trip:(Some 100));
  check_verdict "unknown trip keeps dep" (Test.dep (Some 100))
    (Test.affine ~c1:4 ~c2:4 ~delta:(-400) ~trip:None)

let weak_zero_siv_cases () =
  (* write a[i], read a[5]: conflict only when 5 < trip *)
  check_verdict "invariant read hit" (Test.dep None)
    (Test.affine ~c1:4 ~c2:0 ~delta:20 ~trip:(Some 100));
  check_verdict "invariant read beyond trip" Test.Independent
    (Test.affine ~c1:4 ~c2:0 ~delta:20 ~trip:(Some 5));
  check_verdict "invariant read unaligned" Test.Independent
    (Test.affine ~c1:4 ~c2:0 ~delta:18 ~trip:(Some 100));
  check_verdict "invariant read before array" Test.Independent
    (Test.affine ~c1:4 ~c2:0 ~delta:(-8) ~trip:(Some 100));
  check_verdict "symmetric case" (Test.dep None)
    (Test.affine ~c1:0 ~c2:4 ~delta:(-20) ~trip:(Some 100))

let gcd_test_cases () =
  (* 2i vs 2j+1 never meet: gcd 2 does not divide 1 *)
  check_verdict "odd/even" Test.Independent
    (Test.affine ~c1:2 ~c2:2 ~delta:1 ~trip:(Some 100));
  (* 4i vs 6j, delta 2: gcd 2 divides 2: may depend *)
  check_verdict "gcd passes" (Test.dep None)
    (Test.affine ~c1:4 ~c2:6 ~delta:2 ~trip:(Some 100))

let banerjee_bounds () =
  (* 4i vs 4j+delta with tiny trip: delta outside reachable range *)
  check_verdict "out of range" Test.Independent
    (Test.affine ~c1:4 ~c2:8 ~delta:1000 ~trip:(Some 4));
  check_verdict "in range" (Test.dep None)
    (Test.affine ~c1:4 ~c2:8 ~delta:12 ~trip:(Some 10))

(* brute force: does c1*i = delta + c2*j have a solution with
   0 <= i, j < trip? *)
let brute_force ~c1 ~c2 ~delta ~trip =
  let found = ref false in
  for i = 0 to trip - 1 do
    for j = 0 to trip - 1 do
      if (c1 * i) - (c2 * j) = delta then found := true
    done
  done;
  !found

let soundness_prop =
  let gen =
    QCheck.Gen.(
      map
        (fun (c1, c2, delta, trip) -> (c1, c2, delta, trip))
        (quad (int_range (-8) 8) (int_range (-8) 8) (int_range (-40) 40)
           (int_range 1 12)))
  in
  QCheck.Test.make ~count:500
    ~name:"dependence test is sound vs brute force"
    (QCheck.make gen ~print:(fun (c1, c2, d, t) ->
         Printf.sprintf "c1=%d c2=%d delta=%d trip=%d" c1 c2 d t))
    (fun (c1, c2, delta, trip) ->
      let verdict = Test.affine ~c1 ~c2 ~delta ~trip:(Some trip) in
      let actual = brute_force ~c1 ~c2 ~delta ~trip in
      match verdict with
      | Test.Independent -> not actual  (* must never miss a conflict *)
      | Test.Dependent _ -> true)

let strong_siv_exact_prop =
  (* for equal strides the reported distance must be exactly right *)
  let gen =
    QCheck.Gen.(
      map
        (fun (c, d, trip) -> (c, d, trip))
        (triple (int_range 1 8) (int_range (-30) 30) (int_range 2 12)))
  in
  QCheck.Test.make ~count:300 ~name:"strong SIV distance is exact"
    (QCheck.make gen ~print:(fun (c, d, t) ->
         Printf.sprintf "c=%d delta=%d trip=%d" c d t))
    (fun (c, delta, trip) ->
      match Test.affine ~c1:c ~c2:c ~delta ~trip:(Some trip) with
      | Test.Dependent { distance = Some d; _ } ->
          delta mod c = 0 && d = -(delta / c) && abs d < trip
      | Test.Dependent { distance = None; _ } -> false
      | Test.Independent -> delta mod c <> 0 || abs (delta / c) >= trip)

let alias_rules () =
  let open Vpc.Il in
  let arr v ty = Var.make ~id:v ~name:(Printf.sprintf "a%d" v) ~ty () in
  let a = arr 1 (Ty.Array (Ty.Float, Some 10)) in
  let b = arr 2 (Ty.Array (Ty.Float, Some 10)) in
  let p = Var.make ~id:3 ~name:"p" ~ty:(Ty.Ptr Ty.Float) () in
  let q = Var.make ~id:4 ~name:"q" ~ty:(Ty.Ptr Ty.Float) () in
  let addr v = Expr.addr_of v in
  let plus e n = Expr.binop Expr.Add e (Expr.int_const n) e.Expr.ty in
  Alcotest.(check bool) "distinct arrays" true
    (Alias.bases (addr a) (addr b) = Alias.No_alias);
  Alcotest.(check bool) "same array offset" true
    (Alias.bases (addr a) (plus (addr a) 4) = Alias.Must_alias 4);
  Alcotest.(check bool) "two pointers may alias" true
    (Alias.bases (Expr.var p) (Expr.var q) = Alias.May_alias);
  Alcotest.(check bool) "noalias option separates them" true
    (Alias.bases ~assume_noalias:true (Expr.var p) (Expr.var q)
     = Alias.No_alias);
  Alcotest.(check bool) "same pointer must-aliases" true
    (Alias.bases (Expr.var p) (plus (Expr.var p) 8) = Alias.Must_alias 8);
  Alcotest.(check bool) "pointer vs array may alias" true
    (Alias.bases (Expr.var p) (addr a) = Alias.May_alias)

let alias_variant_pointer () =
  (* a pointer redefined inside the analyzed loop has no single value:
     [p] vs [p + 8] must-alias at distance 8 only while p is invariant;
     with p marked variant the canonical root is gone and the verdict
     must fall back to may-alias (a bumped pointer's two occurrences can
     be any distance apart across iterations) *)
  let open Vpc.Il in
  let p = Var.make ~id:3 ~name:"p" ~ty:(Ty.Ptr Ty.Float) () in
  let plus e n = Expr.binop Expr.Add e (Expr.int_const n) e.Expr.ty in
  let variant v = v = 3 in
  Alcotest.(check bool) "invariant pointer must-aliases" true
    (Alias.bases (Expr.var p) (plus (Expr.var p) 8) = Alias.Must_alias 8);
  Alcotest.(check bool) "bumped pointer falls to may-alias" true
    (Alias.bases ~variant (Expr.var p) (plus (Expr.var p) 8)
     = Alias.May_alias);
  Alcotest.(check bool) "variant root does not canonicalize" true
    (Alias.canonicalize ~variant (Expr.var p) = None);
  (* even the assume_noalias escape hatch must not claim a distance *)
  Alcotest.(check bool) "noalias does not resurrect the distance" true
    (Alias.bases ~assume_noalias:true ~variant (Expr.var p)
       (plus (Expr.var p) 8)
    <> Alias.Must_alias 8)

let alias_canonical_edges () =
  let open Vpc.Il in
  let a = Var.make ~id:1 ~name:"a" ~ty:(Ty.Array (Ty.Float, Some 10)) () in
  let k = Var.make ~id:5 ~name:"k" ~ty:Ty.Int () in
  let j = Var.make ~id:6 ~name:"j" ~ty:Ty.Int () in
  let addr v = Expr.addr_of v in
  let plus e n = Expr.binop Expr.Add e (Expr.int_const n) e.Expr.ty in
  let add e1 e2 = Expr.binop Expr.Add e1 e2 e1.Expr.ty in
  let scaled v n =
    Expr.binop Expr.Mul (Expr.int_const n) (Expr.var v) Ty.Int
  in
  (* negative constant offsets: &a - 8 sits 8 bytes before &a *)
  Alcotest.(check bool) "negative offset distance" true
    (Alias.bases (plus (addr a) (-8)) (addr a) = Alias.Must_alias 8);
  Alcotest.(check bool) "negative vs positive offset" true
    (Alias.bases (plus (addr a) (-4)) (plus (addr a) 4) = Alias.Must_alias 8);
  (* nested field chains fold: (&a + 8) + 4 is &a + 12 *)
  Alcotest.(check bool) "nested constant chain folds" true
    (Alias.bases (plus (plus (addr a) 8) 4) (plus (addr a) 12)
     = Alias.Must_alias 0);
  Alcotest.(check bool) "nested chain distance" true
    (Alias.bases (plus (plus (addr a) 8) 4) (plus (addr a) 20)
     = Alias.Must_alias 8);
  (* symbolic addends differing only by commutativity canonicalize
     equal: &a + 4k + 8j vs &a + 8j + 4k *)
  let e1 = add (add (addr a) (scaled k 4)) (scaled j 8) in
  let e2 = add (add (addr a) (scaled j 8)) (scaled k 4) in
  Alcotest.(check bool) "commuted symbolic addends" true
    (Alias.bases e1 e2 = Alias.Must_alias 0);
  let e3 = add (add (plus (addr a) 16) (scaled k 4)) (scaled j 8) in
  let e4 = add (add (addr a) (scaled j 8)) (scaled k 4) in
  Alcotest.(check bool) "commuted symbolic addends with offset" true
    (Alias.bases e3 e4 = Alias.Must_alias (-16));
  (* different symbolic addends stay may-alias *)
  let e5 = add (addr a) (scaled k 4) in
  let e6 = add (addr a) (scaled j 4) in
  Alcotest.(check bool) "different symbols undecided" true
    (Alias.bases e5 e6 = Alias.May_alias)

let subscript_extraction () =
  (* *(base + 4*i) and explicit a[i] decompose identically *)
  let src =
    {|float a[100];
      void f(float *p, int n) {
        int i;
        for (i = 0; i < n; i++)
          a[i + 2] = p[2 * i];
      }|}
  in
  let prog =
    Helpers.compile ~options:{ Vpc.o1 with Vpc.strength_reduction = false } src
  in
  let f = Vpc.Il.Prog.func_exn prog "f" in
  let found = ref [] in
  Vpc.Il.Stmt.iter_list
    (fun s ->
      match s.Vpc.Il.Stmt.desc with
      | Vpc.Il.Stmt.Do_loop d ->
          let invariant e =
            Vpc.Il.Expr.read_vars e = []
            || List.for_all (fun v -> v <> d.index) (Vpc.Il.Expr.read_vars e)
          in
          (match Subscript.references ~index:d.index ~invariant d.body with
          | Some refs ->
              found :=
                List.filter_map (fun r -> r.Subscript.affine) refs @ !found
          | None -> ())
      | _ -> ())
    f.Vpc.Il.Func.body;
  let coeffs = List.sort compare (List.map (fun a -> a.Subscript.coeff) !found) in
  Alcotest.(check (list int)) "byte strides" [ 4; 8 ] coeffs

let graph_backsolve_carried () =
  (* the §6 loop has a carried flow dependence of distance 1 *)
  let src =
    {|float x[101], y[100], z[100];
      void backsolve(int n) {
        float *p, *q;
        int i;
        p = &x[1];
        q = &x[0];
        for (i = 0; i < n - 2; i++)
          p[i] = z[i] * (y[i] - q[i]);
      }|}
  in
  let prog =
    Helpers.compile
      ~options:{ Vpc.o1 with Vpc.strength_reduction = false }
      src
  in
  let f = Vpc.Il.Prog.func_exn prog "backsolve" in
  let carried = ref [] in
  Vpc.Il.Stmt.iter_list
    (fun s ->
      match s.Vpc.Il.Stmt.desc with
      | Vpc.Il.Stmt.Do_loop d ->
          let defined, mem_written =
            Vpc.Analysis.Reaching.vars_defined_in d.body
          in
          let invariant e =
            ((not (Vpc.Il.Expr.contains_load e)) || not mem_written)
            && List.for_all
                 (fun v -> v <> d.index && not (Hashtbl.mem defined v))
                 (Vpc.Il.Expr.read_vars e)
          in
          let g = Graph.build ~trip:None d.body ~index:d.index ~invariant in
          carried := Graph.carried_edges g @ !carried
      | _ -> ())
    f.Vpc.Il.Func.body;
  Alcotest.(check bool) "has a carried distance-1 flow" true
    (List.exists
       (fun (e : Graph.edge) ->
         e.kind = Graph.Flow && e.distance = Some 1)
       !carried)

(* ---- direction vectors (nest-level dependence, §7) ---- *)

let show_dirs vectors =
  String.concat ","
    (List.map
       (fun v ->
         "("
         ^ String.concat ""
             (List.map
                (function Test.Lt -> "<" | Test.Eq -> "=" | Test.Gt -> ">")
                v)
         ^ ")")
       vectors)

let check_dirs name expected vectors =
  Alcotest.(check string) name expected (show_dirs vectors)

(* A 16x16 nest over an array with 1024-byte rows and 8-byte elements:
   the row stride dwarfs any in-row distance (8 * 15 = 120 bytes), so
   each case below has exactly the vectors listed. *)
let direction_vector_cases () =
  let dv = Test.direction_vectors ~c1:[| 1024; 8 |] ~c2:[| 1024; 8 |] in
  let t16 = [| Some 16; Some 16 |] in
  (* a[i][j] = a[i-1][j]: flow carried by the outer level.  The
     per-level interval sum cannot see that the outer contribution must
     be a whole row, so the sound over-approximation also keeps (<,>) —
     what matters for legality is that no spurious leading-> appears and
     the true (<,=) is never dropped *)
  check_dirs "outer-carried flow" "(<=),(<>)" (dv ~delta:(-1024) ~trips:t16);
  (* a[i][j] = a[i+1][j]: the same pair read top-down; the raw > leader
     means the edge runs the other way *)
  check_dirs "reversed edge" "(><),(>=)" (dv ~delta:1024 ~trips:t16);
  (* a[i][j] = a[i][j]: loop-independent *)
  check_dirs "loop-independent" "(==)" (dv ~delta:0 ~trips:t16);
  (* a[i][j] = a[i][j-1]: inner-carried only *)
  check_dirs "inner-carried" "(=<)" (dv ~delta:(-8) ~trips:t16);
  (* a[i][j] = a[i-1][j+1]: exactly the (<,>) vector that forbids
     interchange, and nothing else *)
  check_dirs "interchange blocker" "(<>)" (dv ~delta:(-1016) ~trips:t16);
  (* even coefficients cannot bridge an odd distance (GCD) *)
  check_dirs "gcd filters all" "" (dv ~delta:3 ~trips:t16);
  (* single level: a distance of 32 elements needs 32 iterations; with
     16 the trip bound leaves nothing *)
  check_dirs "trip bound kills"
    ""
    (Test.direction_vectors ~c1:[| 8 |] ~c2:[| 8 |] ~delta:(-256)
       ~trips:[| Some 16 |]);
  (* unknown outer trip: the outer-carried solution survives *)
  check_dirs "unknown outer trip" "(<=),(<>)"
    (dv ~delta:(-1024) ~trips:[| None; Some 16 |])

let direction_vector_depth3 () =
  (* a[i][j][k] = a[i][j-1][k+1] in an 8x8x8 nest: carried at the middle
     level with an opposing inner direction *)
  check_dirs "3-level (=,<,>)" "(=<>)"
    (Test.direction_vectors
       ~c1:[| 65536; 1024; 8 |]
       ~c2:[| 65536; 1024; 8 |]
       ~delta:(-1016)
       ~trips:[| Some 8; Some 8; Some 8 |]);
  (* all-= at depth 3 *)
  check_dirs "3-level independent" "(===)"
    (Test.direction_vectors
       ~c1:[| 65536; 1024; 8 |]
       ~c2:[| 65536; 1024; 8 |]
       ~delta:0
       ~trips:[| Some 8; Some 8; Some 8 |])

(* Nest.analyze on real IL: the interchange blocker's edge carries the
   normalized (<,>) vector. *)
let nest_edge_extraction () =
  let src =
    {|double s[129][6];
      int main() {
        int i, j;
        for (i = 1; i < 128; i = i + 1)
          for (j = 0; j < 5; j = j + 1)
            s[i][j] = s[i-1][j+1] + 1.0;
        return 0;
      }|}
  in
  let prog =
    Helpers.compile
      ~options:{ Vpc.o1 with Vpc.strength_reduction = false }
      src
  in
  let f = Vpc.Il.Prog.func_exn prog "main" in
  let nests = ref [] in
  Vpc.Il.Stmt.iter_list
    (fun s ->
      match s.Vpc.Il.Stmt.desc with
      | Vpc.Il.Stmt.Do_loop _ -> (
          match Nest.analyze ~prog ~func:f s with
          | Some n -> nests := n :: !nests
          | None -> ())
      | _ -> ())
    f.Vpc.Il.Func.body;
  match !nests with
  | [ n ] ->
      Alcotest.(check int) "depth" 2 (Nest.depth n);
      Alcotest.(check bool) "has (<,>) edge" true
        (List.exists
           (fun (e : Nest.edge) -> e.dirs = [ Test.Lt; Test.Gt ])
           n.Nest.edges);
      Alcotest.(check bool) "identity legal" true
        (Nest.legal_permutation [| 0; 1 |] n);
      Alcotest.(check bool) "swap illegal" false
        (Nest.legal_permutation [| 1; 0 |] n)
  | l -> Alcotest.failf "expected exactly one analyzable nest, got %d"
           (List.length l)

let tests =
  [
    Alcotest.test_case "ZIV" `Quick ziv_tests;
    Alcotest.test_case "strong SIV" `Quick strong_siv;
    Alcotest.test_case "weak-zero SIV" `Quick weak_zero_siv_cases;
    Alcotest.test_case "GCD test" `Quick gcd_test_cases;
    Alcotest.test_case "Banerjee bounds" `Quick banerjee_bounds;
    QCheck_alcotest.to_alcotest soundness_prop;
    QCheck_alcotest.to_alcotest strong_siv_exact_prop;
    Alcotest.test_case "alias rules" `Quick alias_rules;
    Alcotest.test_case "alias: pointer bumped in loop" `Quick
      alias_variant_pointer;
    Alcotest.test_case "alias: canonicalize edge cases" `Quick
      alias_canonical_edges;
    Alcotest.test_case "subscript extraction" `Quick subscript_extraction;
    Alcotest.test_case "backsolve carried dep (§6)" `Quick graph_backsolve_carried;
    Alcotest.test_case "direction vectors" `Quick direction_vector_cases;
    Alcotest.test_case "direction vectors depth 3" `Quick direction_vector_depth3;
    Alcotest.test_case "nest edge extraction" `Quick nest_edge_extraction;
  ]
