(** Lint: statically-provable bugs in the source program, reported over
    the front-end IL ([titancc --lint]).  Every rule is conservative in
    the reporting direction — a finding fires only when the symbolic
    range analysis or exact iteration arithmetic proves the bad state is
    reached — so clean programs produce no findings.

    Rules: [oob-subscript] (the whole offset range misses the accessed
    object), [oob-loop] (a counted loop attains a subscript past the
    end — the off-by-one the point rule cannot see), [induction-overflow]
    (the induction update overflows the int range before the guard can
    fail), [loop-guard-false] (a loop guard the ranges prove always
    false), and {!Wf.advise_func}'s [do-degenerate]. *)

open Vpc_il

val run : Prog.t -> Report.violation list
