open Vpc_support
open Vpc_il

exception Failed of Diag.t list

type level = [ `Off | `Final | `Each_stage ]

let check_func ?assume_noalias ?pointsto ?range prog func =
  (* stage the layers: the race validator assumes a well-formed function
     (its liveness pass needs a buildable CFG), so report well-formedness
     violations alone when there are any.  Findings are sorted by source
     location so emitted reports are deterministic and diffable. *)
  Report.sort
    (match Wf.check_func prog func with
    | [] -> Races.check_func ?assume_noalias ?pointsto ?range prog func
    | violations -> violations)

let check_prog ?assume_noalias ?pointsto ?range prog =
  Report.sort
    (List.concat_map
       (check_func ?assume_noalias ?pointsto ?range prog)
       prog.Prog.funcs)

let diag_of ~pass (v : Report.violation) =
  {
    Diag.severity = Diag.Error;
    loc = v.Report.loc;
    message =
      Printf.sprintf "IL verifier (after %s): %s" pass (Report.to_string v);
  }

let fail ~pass = function
  | [] -> ()
  | violations -> raise (Failed (List.map (diag_of ~pass) violations))

let run_func ?assume_noalias ?pointsto ?range ~pass prog func =
  fail ~pass (check_func ?assume_noalias ?pointsto ?range prog func)

let run ?assume_noalias ?pointsto ?range ~pass prog =
  fail ~pass (check_prog ?assume_noalias ?pointsto ?range prog)
