(* Translation validation of parallelism claims.  The passes prove
   independence *before* transforming; this module re-derives the proof
   from the transformed IL alone, using the same dependence machinery
   (Subscript/Alias/Test/Graph), and reports what cannot be re-proved.

   Conventions mirror lib/dependence: [Subscript.affine] coefficients are
   bytes per *index unit*, so a loop of step [s] advances [coeff * s]
   bytes per iteration; [Test.affine] distances are iterations, positive
   when reference 2 touches the common location after reference 1. *)

open Vpc_il
open Vpc_dependence

type ctx = {
  prog : Prog.t;
  func : Func.t;
  live : Vpc_analysis.Liveness.t;
  unsafe : (int, unit) Hashtbl.t;  (* address-taken variables *)
  noalias : bool;                  (* compiler-wide option *)
  pointsto : Vpc_pointsto.Pointsto.t option;
      (* whole-program mod/ref summaries: calls in parallel bodies stop
         being worst-case when the summary bounds their footprint *)
  range_env : Stmt.t -> Expr.t -> int option * int option;
      (* sound interval for an integer expression on entry to a
         statement, from the symbolic range analysis; [(None, None)]
         when the analysis is off or knows nothing.  Needed to re-prove
         loops the vectorizer parallelized through the range oracle:
         symbolic base distances and symbolic trip counts. *)
  mutable acc : Report.violation list;
}

let report ctx ~rule ~(stmt : Stmt.t) fmt =
  Format.kasprintf
    (fun message ->
      ctx.acc <-
        Report.v ~rule ~func:ctx.func.Func.name ~stmt:stmt.Stmt.id
          ~loc:stmt.Stmt.loc message
        :: ctx.acc)
    fmt

let find_var ctx id = Prog.find_var ctx.prog (Some ctx.func) id

let var_name ctx id =
  match find_var ctx id with
  | Some v -> v.Var.name
  | None -> Printf.sprintf "var%d" id

(* The vectorizer's loop-invariance predicate, reconstructed over the
   output loop. *)
let invariant_pred ctx ~index ~defined_in_body ~mem_written (e : Expr.t) =
  ((not (Expr.contains_load e)) || not mem_written)
  && List.for_all
       (fun v ->
         v <> index
         && (not (Hashtbl.mem defined_in_body v))
         && ((not mem_written) || not (Hashtbl.mem ctx.unsafe v))
         &&
         match find_var ctx v with
         | Some vm -> not vm.Var.volatile
         | None -> false)
       (Expr.read_vars e)

let kind_name = function
  | Graph.Flow -> "flow"
  | Graph.Anti -> "anti"
  | Graph.Output -> "output"

(* ------------------------------------------------------------------ *)
(* parallel DO loops                                                  *)
(* ------------------------------------------------------------------ *)

(* Memory footprint of one access: [affine] in index units plus an
   element sweep of [elts] elements [estride] bytes apart ([elts = 1],
   [estride = 0] for scalar accesses).  [bounded] says [elts] is a sound
   bound. *)
type mref = {
  m_stmt : Stmt.t;
  m_kind : Subscript.access_kind;
  m_addr : Expr.t;  (* the raw address expression (element 0) *)
  m_affine : Subscript.affine option;
  m_elts : int;
  m_estride : int;
  m_bounded : bool;
}

(* Recognize the strip-mine guard [if (v > k) v = k] as a bound for a
   section count held in variable [v]. *)
let count_bound body (count : Expr.t) =
  match Expr.const_int_val count with
  | Some n -> Some n
  | None -> (
      match count.Expr.desc with
      | Expr.Var v ->
          let bound = ref None in
          Stmt.iter_list
            (fun s ->
              match s.Stmt.desc with
              | Stmt.If
                  ( {
                      Expr.desc =
                        Expr.Binop
                          ( Expr.Gt,
                            { Expr.desc = Expr.Var v'; _ },
                            { Expr.desc = Expr.Const_int k; _ } );
                      _;
                    },
                    [
                      {
                        Stmt.desc =
                          Stmt.Assign
                            ( Stmt.Lvar v'',
                              { Expr.desc = Expr.Const_int k'; _ } );
                        _;
                      };
                    ],
                    [] )
                when v' = v && v'' = v && k' <= k ->
                  bound := Some (max k k')
              | _ -> ())
            body;
          !bound
      | _ -> None)

let collect_refs ~affine ~bound (body : Stmt.t list) : mref list =
  let refs = ref [] in
  let scalar st kind addr =
    refs :=
      {
        m_stmt = st;
        m_kind = kind;
        m_addr = addr;
        m_affine = affine addr;
        m_elts = 1;
        m_estride = 0;
        m_bounded = true;
      }
      :: !refs
  in
  let loads_in st e =
    List.iter
      (fun ((addr : Expr.t), _elt) -> scalar st Subscript.Read addr)
      (Subscript.loads_of e [])
  in
  let section st kind (sec : Stmt.section) =
    loads_in st sec.Stmt.base;
    loads_in st sec.Stmt.count;
    loads_in st sec.Stmt.stride;
    let elts, bounded =
      match bound sec.Stmt.count with
      | Some n when n >= 0 && n <= 4096 -> (n, true)
      | _ -> (1, false)
    in
    let estride, bounded =
      match Expr.const_int_val sec.Stmt.stride with
      | Some s -> (s, bounded)
      | None -> (0, false)
    in
    refs :=
      {
        m_stmt = st;
        m_kind = kind;
        m_addr = sec.Stmt.base;
        m_affine = affine sec.Stmt.base;
        m_elts = elts;
        m_estride = estride;
        m_bounded = bounded;
      }
      :: !refs
  in
  let rec vexpr st = function
    | Stmt.Vsec sec -> section st Subscript.Read sec
    | Stmt.Vscalar e -> loads_in st e
    | Stmt.Viota (a, b) ->
        loads_in st a;
        loads_in st b
    | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> vexpr st a
    | Stmt.Vbin (_, a, b) ->
        vexpr st a;
        vexpr st b
    | Stmt.Vtmp _ -> ()  (* register value: no memory footprint *)
  in
  let rec walk (st : Stmt.t) =
    match st.Stmt.desc with
    | Stmt.Assign (Stmt.Lvar _, rhs) -> loads_in st rhs
    | Stmt.Assign (Stmt.Lmem addr, rhs) ->
        scalar st Subscript.Write addr;
        loads_in st addr;
        loads_in st rhs
    | Stmt.If (c, t, e) ->
        loads_in st c;
        List.iter walk t;
        List.iter walk e
    | Stmt.Vector v ->
        section st Subscript.Write v.Stmt.vdst;
        vexpr st v.Stmt.vsrc
    | Stmt.Vdef vd ->
        loads_in st vd.Stmt.vcount;
        vexpr st vd.Stmt.vval
    | _ -> ()  (* other shapes were reported before we got here *)
  in
  List.iter walk body;
  List.rev !refs

(* Cross-iteration conflict test for one footprint pair.  [step_c] and
   [lo_c] translate index-unit coefficients into per-iteration strides
   and rebase both references to iteration 0.  [variant] marks variables
   the body redefines: a pointer bumped inside the loop has no single
   value, so its raw address must not decompose to a Pointer root. *)
(* May_alias resolution through the range analysis, mirroring the
   dependence tester's oracle path: the bases differ by a symbolic byte
   distance whose interval, per element of each footprint, must clear
   the interval GCD/Banerjee battery.  [trip_hi] is an upper bound on
   the iteration count (possibly from the ranges, when the loop bound
   itself is symbolic); an over-estimate only weakens the test. *)
let may_alias_independent ctx loop ~trip_hi ~step_c ~lo_c (r1 : mref)
    (r2 : mref) (a1 : Subscript.affine) (a2 : Subscript.affine) =
  match step_c with
  | None -> false
  | Some step ->
      r1.m_bounded && r2.m_bounded
      && (a1.Subscript.coeff = a2.Subscript.coeff || lo_c <> None)
      &&
      let delta_e =
        Vpc_analysis.Simplify.expr
          (Expr.binop Expr.Sub a2.Subscript.base a1.Subscript.base Ty.Int)
      in
      let dlo, dhi = ctx.range_env loop delta_e in
      let rebase =
        match lo_c with
        | Some lo -> lo * (a2.Subscript.coeff - a1.Subscript.coeff)
        | None -> 0 (* equal coefficients: the difference cancels *)
      in
      let c1 = a1.Subscript.coeff * step and c2 = a2.Subscript.coeff * step in
      let indep = ref true in
      for e1 = 0 to r1.m_elts - 1 do
        for e2 = 0 to r2.m_elts - 1 do
          let off = rebase + (r2.m_estride * e2) - (r1.m_estride * e1) in
          match
            Test.interval_affine ~c1 ~c2
              ~dlo:(Option.map (fun l -> l + off) dlo)
              ~dhi:(Option.map (fun h -> h + off) dhi)
              ~trip:trip_hi
          with
          | Test.Independent -> ()
          | Test.Dependent _ -> indep := false
        done
      done;
      !indep

let check_pair ctx loop ~noalias ~variant ~trip ~trip_hi ~step_c ~lo_c
    (r1 : mref) (r2 : mref) =
  let describe (r : mref) =
    Printf.sprintf "%s in stmt %d"
      (match r.m_kind with
      | Subscript.Write -> "write"
      | Subscript.Read -> "read")
      r.m_stmt.Stmt.id
  in
  let flag rule fmt =
    Format.kasprintf
      (fun detail ->
        report ctx ~rule ~stmt:loop "parallel loop: %s vs %s: %s"
          (describe r1) (describe r2) detail)
      fmt
  in
  match r1.m_affine, r2.m_affine with
  | Some a1, Some a2 -> (
      match
        Alias.bases ~assume_noalias:noalias a1.Subscript.base a2.Subscript.base
      with
      | Alias.No_alias -> ()
      | Alias.May_alias ->
          if
            not
              (may_alias_independent ctx loop ~trip_hi ~step_c ~lo_c r1 r2 a1
                 a2)
          then
            flag "parallel-may-alias" "bases may alias, independence unproved"
      | Alias.Must_alias delta -> (
          match step_c with
          | None -> flag "parallel-carried-dep" "non-constant loop step"
          | Some step ->
              let c1 = a1.Subscript.coeff * step
              and c2 = a2.Subscript.coeff * step in
              let delta =
                if a1.Subscript.coeff = a2.Subscript.coeff then Some delta
                else
                  Option.map
                    (fun lo ->
                      delta + (lo * (a2.Subscript.coeff - a1.Subscript.coeff)))
                    lo_c
              in
              (match delta with
              | None ->
                  flag "parallel-carried-dep"
                    "non-constant lower bound with unequal strides"
              | Some delta ->
                  if not (r1.m_bounded && r2.m_bounded) then
                    flag "parallel-carried-dep"
                      "aliasing bases and an unbounded vector section"
                  else
                    for e1 = 0 to r1.m_elts - 1 do
                      for e2 = 0 to r2.m_elts - 1 do
                        let delta' =
                          delta + (r2.m_estride * e2) - (r1.m_estride * e1)
                        in
                        match Test.affine ~c1 ~c2 ~delta:delta' ~trip with
                        | Test.Independent -> ()
                        | Test.Dependent { distance = Some 0; _ }
                          when not (c1 = 0 && c2 = 0) ->
                            ()  (* same iteration: ordered on one processor *)
                        | Test.Dependent { distance; _ } ->
                            flag "parallel-carried-dep"
                              "loop-carried dependence (distance %s)"
                              (match distance with
                              | Some 0 -> "every iteration"
                              | Some d -> string_of_int d
                              | None -> "unknown")
                      done
                    done)))
  | _ ->
      (* a non-affine address: only disjoint roots can exclude it *)
      if
        Alias.bases ~assume_noalias:noalias ~variant r1.m_addr r2.m_addr
        <> Alias.No_alias
      then
        flag "parallel-may-alias"
          "non-affine address cannot be proved independent"

(* Scalars in a parallel body: every variable an iteration defines must be
   defined before it is read (no value flows in from another iteration)
   and must be dead after the loop (no iteration's value is "last"). *)
let check_scalar_discipline ctx (loop : Stmt.t) ~index body =
  let defined_in_body, _ = Vpc_analysis.Reaching.vars_defined_in body in
  Hashtbl.iter
    (fun v () ->
      if
        v <> index
        && Vpc_analysis.Liveness.live_out_of ctx.live ~stmt_id:loop.Stmt.id
             ~var:v
      then
        report ctx ~rule:"parallel-liveout" ~stmt:loop
          "parallel loop defines %s, which is live after the loop"
          (var_name ctx v))
    defined_in_body;
  let defined = Hashtbl.create 8 in
  let rec walk (s : Stmt.t) =
    List.iter
      (fun v ->
        if
          v <> index
          && Hashtbl.mem defined_in_body v
          && not (Hashtbl.mem defined v)
        then
          report ctx ~rule:"parallel-carried-scalar" ~stmt:s
            "%s is read before the iteration defines it" (var_name ctx v))
      (Stmt.shallow_uses s);
    (match s.Stmt.desc with
    | Stmt.If (_, t, e) ->
        List.iter walk t;
        List.iter walk e
    | _ -> ());
    match Stmt.defined_var s with
    | Some v -> Hashtbl.replace defined v ()
    | None -> ()
  in
  List.iter walk body

(* Vector temporaries in a parallel body: every [Vtmp] read must follow a
   [Vdef] of the same id earlier in the same iteration — otherwise a
   register value would flow in from another iteration, i.e. another
   processor's register file.  Definitions under an If are not trusted to
   reach the join. *)
let check_vtmp_discipline ctx (loop : Stmt.t) body =
  let defined = Hashtbl.create 4 in
  let rec vexpr (s : Stmt.t) = function
    | Stmt.Vsec _ | Stmt.Vscalar _ | Stmt.Viota _ -> ()
    | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> vexpr s a
    | Stmt.Vbin (_, a, b) ->
        vexpr s a;
        vexpr s b
    | Stmt.Vtmp (t, _) ->
        if not (Hashtbl.mem defined t) then
          report ctx ~rule:"parallel-carried-vtmp" ~stmt:s
            "parallel loop (stmt %d) reads vt%d before the iteration \
             defines it"
            loop.Stmt.id t
  in
  let rec walk (s : Stmt.t) =
    match s.Stmt.desc with
    | Stmt.Vector v -> vexpr s v.Stmt.vsrc
    | Stmt.Vdef vd ->
        vexpr s vd.Stmt.vval;
        Hashtbl.replace defined vd.Stmt.vt ()
    | Stmt.If (_, t, e) ->
        let saved = Hashtbl.copy defined in
        List.iter walk t;
        Hashtbl.reset defined;
        Hashtbl.iter (Hashtbl.replace defined) saved;
        List.iter walk e;
        Hashtbl.reset defined;
        Hashtbl.iter (Hashtbl.replace defined) saved
    | _ -> ()
  in
  List.iter walk body

(* ------------------------------------------------------------------ *)
(* calls in parallel bodies, bounded by mod/ref summaries             *)
(* ------------------------------------------------------------------ *)

(* Everything the body's own statements may write, as abstract objects:
   memory stores plus directly assigned global scalars. *)
let body_written_objs ctx pt (body : Stmt.t list) =
  let module P = Vpc_pointsto.Pointsto in
  let objs = ref P.Objset.empty in
  let add_addr a =
    List.iter (fun (o, _) -> objs := P.Objset.add o !objs) (P.objects_of pt a)
  in
  Stmt.iter_list
    (fun st ->
      match st.Stmt.desc with
      | Stmt.Assign (Stmt.Lmem a, _) -> add_addr a
      | Stmt.Vector v -> add_addr v.Stmt.vdst.Stmt.base
      | Stmt.Call (Some (Stmt.Lmem a), _, _) -> add_addr a
      | Stmt.Assign (Stmt.Lvar v, _) | Stmt.Call (Some (Stmt.Lvar v), _, _)
        -> (
          match find_var ctx v with
          | Some var when Var.is_global var ->
              objs := P.Objset.add (P.Obj v) !objs
          | _ -> ())
      | _ -> ())
    body;
  !objs

(* A call statement inside a parallel DO body.  Without points-to facts
   every call is worst-case; with them, a callee whose summary writes
   nothing, performs no io, and reads only storage the loop never writes
   is as harmless as a scalar assignment. *)
let call_bounded ctx ~(written : Vpc_pointsto.Pointsto.Objset.t option) dst
    target args : (unit, string) result =
  let module P = Vpc_pointsto.Pointsto in
  let generic =
    "body contains a statement the validator cannot prove independent"
  in
  match ctx.pointsto, written with
  | None, _ | _, None -> Error generic
  | Some pt, Some written -> (
      match target with
      | Stmt.Indirect _ -> Error generic
      | Stmt.Direct name -> (
          match P.summary pt name with
          | None ->
              Error
                (Printf.sprintf "body calls %s, whose effects are unknown" name)
          | Some sum ->
              if sum.P.io then
                Error
                  (Printf.sprintf
                     "body calls %s, which performs io (iteration order would \
                      be observable)"
                     name)
              else if not (P.Objset.is_empty sum.P.mods) then
                Error
                  (Printf.sprintf
                     "body calls %s, whose mod/ref summary writes memory" name)
              else if
                match dst with Some (Stmt.Lmem _) -> true | _ -> false
              then Error generic
              else if List.exists Expr.contains_load args then Error generic
              else
                (* read-only callee; fold in the global scalars the
                   argument expressions themselves read *)
                let reads =
                  List.fold_left
                    (fun acc arg ->
                      List.fold_left
                        (fun acc v ->
                          match Prog.find_var ctx.prog (Some ctx.func) v with
                          | Some var when Var.is_global var ->
                              P.Objset.add (P.Obj v) acc
                          | _ -> acc)
                        acc (Expr.read_vars arg))
                    sum.P.refs args
                in
                if P.Objset.is_empty reads then Ok ()
                else if P.Objset.mem P.Unknown written then
                  Error
                    (Printf.sprintf
                       "body calls %s but writes storage the validator cannot \
                        bound"
                       name)
                else if P.Objset.mem P.Unknown reads then
                  if P.Objset.is_empty written then Ok ()
                  else
                    Error
                      (Printf.sprintf
                         "body calls %s, whose read set is unbounded" name)
                else if P.Objset.is_empty (P.Objset.inter reads written) then
                  Ok ()
                else
                  Error
                    (Printf.sprintf
                       "body calls %s, which reads storage the loop writes"
                       name)))

let check_parallel_do ctx (s : Stmt.t) (d : Stmt.do_loop) =
  let noalias = ctx.noalias || d.Stmt.independent in
  let body = d.Stmt.body in
  let defined_in_body, mem_written =
    Vpc_analysis.Reaching.vars_defined_in body
  in
  let invariant =
    invariant_pred ctx ~index:d.Stmt.index ~defined_in_body ~mem_written
  in
  let lo_c = Expr.const_int_val d.Stmt.lo
  and hi_c = Expr.const_int_val d.Stmt.hi
  and step_c = Expr.const_int_val d.Stmt.step in
  let trip =
    match lo_c, hi_c, step_c with
    | Some lo, Some hi, Some st when st <> 0 ->
        let n = if st > 0 then ((hi - lo) / st) + 1 else ((lo - hi) / -st) + 1 in
        Some (max n 0)
    | _ -> None
  in
  (* With a symbolic upper bound the exact trip is unknown, but the
     ranges may still bound it — enough for the interval Banerjee span
     when a may-alias pair's byte distance is large. *)
  let trip_hi =
    match trip with
    | Some _ -> trip
    | None -> (
        match lo_c, step_c with
        | Some lo, Some st when st > 0 -> (
            match snd (ctx.range_env s d.Stmt.hi) with
            | Some h -> Some (max 0 (((h - lo) / st) + 1))
            | None -> None)
        | _ -> None)
  in
  if trip = Some 0 || trip = Some 1 then ()  (* no second iteration to race *)
  else begin
    let flat_assignments =
      List.for_all
        (fun (st : Stmt.t) ->
          match st.Stmt.desc with Stmt.Assign _ -> true | _ -> false)
        body
    in
    if flat_assignments && lo_c = Some 0 && step_c = Some 1 then begin
      (* the vectorizer's own representation: re-run the full graph *)
      let g =
        Graph.build ~assume_noalias:noalias ~trip body ~index:d.Stmt.index
          ~invariant
      in
      List.iter
        (fun (e : Graph.edge) ->
          report ctx ~rule:"parallel-carried-dep" ~stmt:s
            "parallel loop carries a %s dependence (stmt %d -> stmt %d, \
             distance %s)"
            (kind_name e.Graph.kind) e.Graph.src e.Graph.dst
            (match e.Graph.distance with
            | Some d -> string_of_int d
            | None -> "unknown"))
        (Graph.carried_edges g);
      check_scalar_discipline ctx s ~index:d.Stmt.index body
    end
    else begin
      (* composite body (strip loops): shape, scalars, and footprints *)
      let written =
        Option.map (fun pt -> body_written_objs ctx pt body) ctx.pointsto
      in
      let shape_ok = ref true in
      Stmt.iter_list
        (fun inner ->
          match inner.Stmt.desc with
          | Stmt.Call (dst, target, args) -> (
              match call_bounded ctx ~written dst target args with
              | Ok () -> ()
              | Error reason ->
                  shape_ok := false;
                  report ctx ~rule:"parallel-shape" ~stmt:inner
                    "parallel loop (stmt %d) %s" s.Stmt.id reason)
          | Stmt.Goto _ | Stmt.Label _ | Stmt.Return _ | Stmt.While _
          | Stmt.Do_loop _ ->
              shape_ok := false;
              report ctx ~rule:"parallel-shape" ~stmt:inner
                "parallel loop (stmt %d) body contains a statement the \
                 validator cannot prove independent"
                s.Stmt.id
          | _ -> ())
        body;
      if !shape_ok then begin
        check_scalar_discipline ctx s ~index:d.Stmt.index body;
        check_vtmp_discipline ctx s body;
        let affine e =
          match Subscript.affine_of ~index:d.Stmt.index ~invariant e with
          | Some a when invariant a.Subscript.base -> Some a
          | Some _ | None -> None
        in
        let refs = collect_refs ~affine ~bound:(count_bound body) body in
        let variant v = Hashtbl.mem defined_in_body v in
        let arr = Array.of_list refs in
        let n = Array.length arr in
        for i = 0 to n - 1 do
          for j = i to n - 1 do
            let r1 = arr.(i) and r2 = arr.(j) in
            if r1.m_kind = Subscript.Write || r2.m_kind = Subscript.Write then
              check_pair ctx s ~noalias ~variant ~trip ~trip_hi ~step_c ~lo_c
                r1 r2
          done
        done
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* doacross while loops (§10)                                         *)
(* ------------------------------------------------------------------ *)

(* A call acceptable inside a doacross body: pure scalar computation
   only.  Doacross runs iterations concurrently with only the serial
   prefix ordered, so even a read of shared memory is unprovable here —
   the summary must show no memory effects at all. *)
let pure_scalar_call ctx dst target args =
  match ctx.pointsto, target with
  | Some pt, Stmt.Direct name -> (
      match Vpc_pointsto.Pointsto.summary pt name with
      | Some sum ->
          let module P = Vpc_pointsto.Pointsto in
          (not sum.P.io)
          && P.Objset.is_empty sum.P.mods
          && P.Objset.is_empty sum.P.refs
          && (match dst with Some (Stmt.Lmem _) -> false | _ -> true)
          && not (List.exists Expr.contains_load args)
      | None -> false)
  | _ -> false

let check_doacross ctx (s : Stmt.t) (li : Stmt.loop_info) cond body =
  let arr = Array.of_list body in
  let n = Array.length arr in
  let sp = max 0 (min n li.Stmt.serial_prefix) in
  Stmt.iter_list
    (fun inner ->
      match inner.Stmt.desc with
      | Stmt.Call (dst, target, args) ->
          if not (pure_scalar_call ctx dst target args) then
            report ctx ~rule:"doacross-shape" ~stmt:inner
              "doacross loop (stmt %d) body contains control flow or calls"
              s.Stmt.id
      | Stmt.Goto _ | Stmt.Label _ | Stmt.Return _ | Stmt.While _
      | Stmt.Do_loop _ ->
          report ctx ~rule:"doacross-shape" ~stmt:inner
            "doacross loop (stmt %d) body contains control flow or calls"
            s.Stmt.id
      | _ -> ())
    body;
  let deep_defs pos =
    let acc = ref [] in
    Stmt.iter
      (fun inner ->
        match Stmt.defined_var inner with
        | Some v -> acc := v :: !acc
        | None -> ())
      arr.(pos);
    !acc
  in
  let deep_reads pos =
    let acc = ref [] in
    Stmt.iter (fun inner -> acc := Stmt.shallow_uses inner @ !acc) arr.(pos);
    !acc
  in
  let cond_reads = Expr.read_vars cond in
  for pos = sp to n - 1 do
    List.iter
      (fun v ->
        if List.mem v cond_reads then
          report ctx ~rule:"doacross-cond" ~stmt:arr.(pos)
            "parallel part defines %s, which the loop condition reads"
            (var_name ctx v);
        for q = 0 to pos - 1 do
          if List.mem v (deep_reads q) then
            if q < sp then
              report ctx ~rule:"doacross-carried" ~stmt:arr.(pos)
                "parallel part defines %s, which the serial prefix reads"
                (var_name ctx v)
            else
              report ctx ~rule:"doacross-carried" ~stmt:arr.(pos)
                "parallel part defines %s, which an earlier parallel \
                 statement reads (previous iteration's value)"
                (var_name ctx v)
        done;
        if List.mem v (deep_reads pos) then
          report ctx ~rule:"doacross-carried" ~stmt:arr.(pos)
            "parallel part updates %s from its own previous value"
            (var_name ctx v);
        if Vpc_analysis.Liveness.live_out_of ctx.live ~stmt_id:s.Stmt.id ~var:v
        then
          report ctx ~rule:"doacross-carried" ~stmt:arr.(pos)
            "parallel part defines %s, which is live after the loop"
            (var_name ctx v))
      (deep_defs pos)
  done

(* ------------------------------------------------------------------ *)
(* doacross DO loops (post/wait pipelining)                           *)
(* ------------------------------------------------------------------ *)

(* Independent re-derivation of the transform's coverage rule: a carried
   edge (src, dst, dist) is ordered by a chain of sync edges e1..em when
   src <= post(e1), wait(e_j) <= post(e_(j+1)), wait(em) <= dst — each
   <= supplied by same-iteration program order — and the chain's
   distances sum to exactly [dist].  A partial sum proves nothing:
   iterations at the two ends run on different processors with no
   per-statement ordering between them.  A cumulative sync (wait until
   EVERY iteration <= i - d has posted) may terminate a chain early:
   once the partial sum so far is <= the remaining distance it orders
   against all iterations at least that far back, including the source.
   An edge with only a symbolic distance bounded below by [dist] is
   coverable by a cumulative sync alone — exact chains prove a single
   distance, not a half-line. *)
let sync_covers (syncs : Stmt.dsync list) ~src ~dst ~dist ~(exact : bool) =
  let seen = Hashtbl.create 16 in
  let budget = ref 4096 in
  let rec from_pos pos remaining =
    decr budget;
    !budget > 0
    && (not (Hashtbl.mem seen (pos, remaining)))
    && begin
         Hashtbl.replace seen (pos, remaining) ();
         List.exists
           (fun (y : Stmt.dsync) ->
             y.Stmt.post_after >= pos
             && y.Stmt.distance <= remaining
             &&
             if y.Stmt.cum then
               (* covers every distance >= y.distance at once *)
               y.Stmt.wait_before <= dst
             else
               (y.Stmt.distance = remaining && y.Stmt.wait_before <= dst)
               || from_pos y.Stmt.wait_before (remaining - y.Stmt.distance))
           syncs
       end
  in
  if exact then from_pos src dist
  else
    List.exists
      (fun (y : Stmt.dsync) ->
        y.Stmt.cum && y.Stmt.post_after >= src && y.Stmt.wait_before <= dst
        && y.Stmt.distance <= dist)
      syncs

(* A doacross-synchronized DO loop spreads iterations round-robin with
   only the post/wait edges ordering them, so every carried dependence
   must be covered by the sync chain.  The body must be flat normalized
   assignments: each iteration then executes every post unconditionally,
   which (with wf's position bounds) is the deadlock-freedom argument —
   a wait's producer iteration always reaches its post. *)
let check_do_sync ctx (s : Stmt.t) (d : Stmt.do_loop) =
  let body = d.Stmt.body in
  let flat =
    List.for_all
      (fun (st : Stmt.t) ->
        match st.Stmt.desc with Stmt.Assign _ | Stmt.Nop -> true | _ -> false)
      body
  in
  if
    (not flat)
    || (not (Expr.is_zero d.Stmt.lo))
    || Expr.const_int_val d.Stmt.step <> Some 1
  then
    report ctx ~rule:"doacross-sync-shape" ~stmt:s
      "doacross-synchronized loop is not a flat normalized assignment loop"
  else begin
    let defined_in_body, mem_written =
      Vpc_analysis.Reaching.vars_defined_in body
    in
    let invariant =
      invariant_pred ctx ~index:d.Stmt.index ~defined_in_body ~mem_written
    in
    let trip =
      match Expr.const_int_val d.Stmt.hi with
      | Some h -> Some (max 0 (h + 1))
      | None -> (
          match snd (ctx.range_env s d.Stmt.hi) with
          | Some h -> Some (max 0 (h + 1))
          | None -> None)
    in
    let oracle =
      { Test.interval = (fun e -> ctx.range_env s e);
        Test.note = (fun _ _ -> ()) }
    in
    let g =
      Test.with_oracle oracle (fun () ->
          Graph.build ~assume_noalias:ctx.noalias ~trip body
            ~index:d.Stmt.index ~invariant)
    in
    if not g.Graph.analyzable then
      report ctx ~rule:"doacross-sync-shape" ~stmt:s
        "doacross-synchronized loop body has unanalyzable references"
    else
      (* carried scalar edges are left to [check_scalar_discipline]: the
         graph's are conservative (a temp updated after a same-iteration
         def gets a self edge), while the discipline walk reports exactly
         the genuine use-before-def recurrences on this straight-line
         body *)
      List.iter
        (fun (e : Graph.edge) ->
          if e.Graph.through_memory then
            match (e.Graph.distance, e.Graph.dist_lo) with
            | Some dist, _ when dist >= 1 ->
                if
                  not
                    (sync_covers d.Stmt.sync ~src:e.Graph.src ~dst:e.Graph.dst
                       ~dist ~exact:true)
                then
                  report ctx ~rule:"doacross-unsync-dep" ~stmt:s
                    "carried %s dependence (stmt %d -> stmt %d, distance %d) \
                     is not covered by the loop's post/wait chain"
                    (kind_name e.Graph.kind) e.Graph.src e.Graph.dst dist
            | None, Some lo when lo >= 1 ->
                if
                  not
                    (sync_covers d.Stmt.sync ~src:e.Graph.src ~dst:e.Graph.dst
                       ~dist:lo ~exact:false)
                then
                  report ctx ~rule:"doacross-unsync-dep" ~stmt:s
                    "carried %s dependence (stmt %d -> stmt %d, distance >= \
                     %d) is not covered by a cumulative post/wait"
                    (kind_name e.Graph.kind) e.Graph.src e.Graph.dst lo
            | _ ->
                report ctx ~rule:"doacross-unsync-dep" ~stmt:s
                  "carried %s dependence (stmt %d -> stmt %d) has no \
                   constant distance to synchronize"
                  (kind_name e.Graph.kind) e.Graph.src e.Graph.dst)
        (Graph.carried_edges g);
    check_scalar_discipline ctx s ~index:d.Stmt.index body
  end

(* ------------------------------------------------------------------ *)
(* vector statements                                                  *)
(* ------------------------------------------------------------------ *)

(* Both engines evaluate the whole source before storing.  The source
   loop stored element-by-element, so a source element that the
   statement overwrites *earlier* in element order (positive distance)
   read the new value sequentially but reads the old value here. *)
let check_vector_stmt ctx (s : Stmt.t) (v : Stmt.vstmt) =
  let dst = v.Stmt.vdst in
  match Expr.const_int_val dst.Stmt.stride with
  | None -> ()  (* nothing provable about a symbolic stride *)
  | Some s1 ->
      let trip = Expr.const_int_val dst.Stmt.count in
      let check_against ~what ~c2 (src_base : Expr.t) =
        match Alias.bases ~assume_noalias:ctx.noalias dst.Stmt.base src_base with
        | Alias.No_alias | Alias.May_alias -> ()
        | Alias.Must_alias delta -> (
            match Test.affine ~c1:s1 ~c2 ~delta ~trip with
            | Test.Independent -> ()
            | Test.Dependent { distance = Some d; _ } when d <= 0 && c2 <> 0 -> ()
            | Test.Dependent { distance; _ } ->
                report ctx ~rule:"vector-overlap" ~stmt:s
                  "%s overlaps destination elements already overwritten in \
                   element order (distance %s)"
                  what
                  (match distance with
                  | Some d -> string_of_int d
                  | None -> "unknown"))
      in
      let scalar_loads what e =
        List.iter
          (fun ((addr : Expr.t), _) -> check_against ~what ~c2:0 addr)
          (Subscript.loads_of e [])
      in
      let rec walk = function
        | Stmt.Vsec src -> (
            scalar_loads "source section base" src.Stmt.base;
            match Expr.const_int_val src.Stmt.stride with
            | Some s2 when s2 <> 0 ->
                check_against ~what:"source section" ~c2:s2 src.Stmt.base
            | _ -> ())
        | Stmt.Vscalar e -> scalar_loads "broadcast scalar operand" e
        | Stmt.Viota (a, b) ->
            scalar_loads "iota offset" a;
            scalar_loads "iota scale" b
        | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> walk a
        | Stmt.Vbin (_, a, b) ->
            walk a;
            walk b
        | Stmt.Vtmp _ -> ()  (* register value: reads no memory *)
      in
      walk v.Stmt.vsrc

(* ------------------------------------------------------------------ *)
(* driver                                                             *)
(* ------------------------------------------------------------------ *)

let check_func ?(assume_noalias = false) ?pointsto ?range prog func =
  let range_env =
    match range with
    | None -> fun _ _ -> (None, None)
    | Some t ->
        let fe = lazy (Vpc_range.Range.analyze_func t prog func) in
        fun (s : Stmt.t) e -> (
          match Vpc_range.Range.env_before (Lazy.force fe) s.Stmt.id with
          | None -> (None, None)
          | Some env ->
              let itv = Vpc_range.Range.interval_of_expr env e in
              (itv.Vpc_range.Range.Interval.lo, itv.Vpc_range.Range.Interval.hi))
  in
  let ctx =
    {
      prog;
      func;
      live = Vpc_analysis.Liveness.build func;
      unsafe = Func.addressed_vars func;
      noalias = assume_noalias;
      pointsto;
      range_env;
      acc = [];
    }
  in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Do_loop d when d.Stmt.parallel -> check_parallel_do ctx s d
      | Stmt.Do_loop d when d.Stmt.sync <> [] -> check_do_sync ctx s d
      | Stmt.While (li, cond, body) when li.Stmt.doacross ->
          check_doacross ctx s li cond body
      | Stmt.Vector v -> check_vector_stmt ctx s v
      | _ -> ())
    func.Func.body;
  List.rev ctx.acc

let check_prog ?assume_noalias ?pointsto ?range prog =
  List.concat_map
    (check_func ?assume_noalias ?pointsto ?range prog)
    prog.Prog.funcs
