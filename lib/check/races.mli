(** Parallelism validator: independently re-runs the {!Vpc_dependence}
    machinery over the *output* IL and reports every loop-carried
    dependence a transform claimed away — translation validation for the
    vectorizer, parallelizer, and doacross phases rather than trust in
    their internal reasoning.

    Checked constructs:
    - [Do_loop {parallel = true}]: the body is re-analyzed with
      {!Vpc_dependence.Graph} when it is a flat assignment body, or with
      a footprint analysis of its memory accesses (including [Vector]
      sections, with the strip-mine [len] guard recognized as a count
      bound) otherwise.  Any loop-carried dependence, may-alias access
      pair, scalar defined in one iteration and read in another, or
      scalar definition that is live after the loop is reported
      ([parallel-carried-dep], [parallel-may-alias],
      [parallel-carried-scalar], [parallel-liveout], [parallel-shape]).
    - [While] loops marked [doacross] (§10): statements after the
      serialized prefix must not define variables the condition, the
      prefix, an earlier position, or code after the loop reads
      ([doacross-cond], [doacross-carried], [doacross-shape]).
    - Every [Vector] statement: both execution engines evaluate the whole
      right-hand side before storing, so a source section that provably
      overlaps destination elements *earlier* in element order (positive
      dependence distance) diverges from the source loop's sequential
      semantics and is reported ([vector-overlap]).  Anti-direction
      overlap (distance <= 0) is the §6 backsolve pattern and is legal.
      May-alias source sections are not reported here: a short vector
      emitted under the independence pragma carries no provenance, so
      only provable overlap is a violation.

    [assume_noalias] mirrors the compiler option; loops carrying the
    independence pragma get it per-loop, as the vectorizer did.

    [pointsto] supplies whole-program mod/ref summaries.  With them, a
    call in a parallel DO body is no longer worst-case: a callee that
    writes nothing, performs no io, and reads only storage the loop
    never writes is accepted like a scalar assignment; doacross bodies
    accept only pure scalar callees (no memory effects at all).

    [range] supplies the whole-program symbolic range analysis.  With
    it, a may-alias access pair whose symbolic byte distance (per the
    ranges, at the loop header) clears the interval GCD/Banerjee tests
    is accepted — re-proving what the vectorizer established through the
    {!Vpc_dependence.Test} oracle — and a symbolic loop bound still
    yields a trip-count bound for the Banerjee span. *)

open Vpc_il

val check_func :
  ?assume_noalias:bool ->
  ?pointsto:Vpc_pointsto.Pointsto.t ->
  ?range:Vpc_range.Range.t ->
  Prog.t ->
  Func.t ->
  Report.violation list

val check_prog :
  ?assume_noalias:bool ->
  ?pointsto:Vpc_pointsto.Pointsto.t ->
  ?range:Vpc_range.Range.t ->
  Prog.t ->
  Report.violation list
