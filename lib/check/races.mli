(** Parallelism validator: independently re-runs the {!Vpc_dependence}
    machinery over the *output* IL and reports every loop-carried
    dependence a transform claimed away — translation validation for the
    vectorizer, parallelizer, and doacross phases rather than trust in
    their internal reasoning.

    Checked constructs:
    - [Do_loop {parallel = true}]: the body is re-analyzed with
      {!Vpc_dependence.Graph} when it is a flat assignment body, or with
      a footprint analysis of its memory accesses (including [Vector]
      sections, with the strip-mine [len] guard recognized as a count
      bound) otherwise.  Any loop-carried dependence, may-alias access
      pair, scalar defined in one iteration and read in another, or
      scalar definition that is live after the loop is reported
      ([parallel-carried-dep], [parallel-may-alias],
      [parallel-carried-scalar], [parallel-liveout], [parallel-shape]).
    - [While] loops marked [doacross] (§10): statements after the
      serialized prefix must not define variables the condition, the
      prefix, an earlier position, or code after the loop reads
      ([doacross-cond], [doacross-carried], [doacross-shape]).
    - Every [Vector] statement: both execution engines evaluate the whole
      right-hand side before storing, so a source section that provably
      overlaps destination elements *earlier* in element order (positive
      dependence distance) diverges from the source loop's sequential
      semantics and is reported ([vector-overlap]).  Anti-direction
      overlap (distance <= 0) is the §6 backsolve pattern and is legal.
      May-alias source sections are not reported here: a short vector
      emitted under the independence pragma carries no provenance, so
      only provable overlap is a violation.

    [assume_noalias] mirrors the compiler option; loops carrying the
    independence pragma get it per-loop, as the vectorizer did.

    [pointsto] supplies whole-program mod/ref summaries.  With them, a
    call in a parallel DO body is no longer worst-case: a callee that
    writes nothing, performs no io, and reads only storage the loop
    never writes is accepted like a scalar assignment; doacross bodies
    accept only pure scalar callees (no memory effects at all). *)

open Vpc_il

val check_func :
  ?assume_noalias:bool ->
  ?pointsto:Vpc_pointsto.Pointsto.t ->
  Prog.t ->
  Func.t ->
  Report.violation list

val check_prog :
  ?assume_noalias:bool ->
  ?pointsto:Vpc_pointsto.Pointsto.t ->
  Prog.t ->
  Report.violation list
