(** Verification driver: runs {!Wf} and {!Races} over a program or a
    single function and turns violations into diagnostics naming the
    offending pass.

    [run]/[run_func] raise {!Failed} with one {!Vpc_support.Diag.t} per
    violation (source location preserved, message prefixed with the pass
    name) when anything is wrong, and return unit otherwise. *)

open Vpc_il

exception Failed of Vpc_support.Diag.t list

(** How often the pipeline should verify: never, once after the last
    pass, or after every pass of every function. *)
type level = [ `Off | `Final | `Each_stage ]

val check_func :
  ?assume_noalias:bool ->
  ?pointsto:Vpc_pointsto.Pointsto.t ->
  ?range:Vpc_range.Range.t ->
  Prog.t ->
  Func.t ->
  Report.violation list

val check_prog :
  ?assume_noalias:bool ->
  ?pointsto:Vpc_pointsto.Pointsto.t ->
  ?range:Vpc_range.Range.t ->
  Prog.t ->
  Report.violation list

val diag_of : pass:string -> Report.violation -> Vpc_support.Diag.t

val run_func :
  ?assume_noalias:bool ->
  ?pointsto:Vpc_pointsto.Pointsto.t ->
  ?range:Vpc_range.Range.t ->
  pass:string ->
  Prog.t ->
  Func.t ->
  unit

val run :
  ?assume_noalias:bool ->
  ?pointsto:Vpc_pointsto.Pointsto.t ->
  ?range:Vpc_range.Range.t ->
  pass:string ->
  Prog.t ->
  unit
