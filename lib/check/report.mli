(** Findings of the static checkers: one record per broken invariant,
    carrying enough context (rule name, function, statement id, source
    location) to turn into a {!Vpc_support.Diag.t} naming the offending
    pass. *)

open Vpc_support

type violation = {
  rule : string;     (** stable rule identifier, e.g. ["dup-stmt-id"] *)
  func : string;     (** enclosing function name *)
  stmt : int option; (** offending statement id, when one exists *)
  loc : Loc.t;       (** source location (dummy for synthesized IL) *)
  message : string;
}

val v :
  rule:string -> func:string -> ?stmt:int -> ?loc:Loc.t -> string -> violation

(** Order by source location (dummy locations last), then by the
    remaining fields, so reports are deterministic across runs. *)
val compare_by_loc : violation -> violation -> int

(** Stable sort by {!compare_by_loc}: apply before emission. *)
val sort : violation list -> violation list

val pp : Format.formatter -> violation -> unit
val to_string : violation -> string
