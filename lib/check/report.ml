open Vpc_support

type violation = {
  rule : string;
  func : string;
  stmt : int option;
  loc : Loc.t;
  message : string;
}

let v ~rule ~func ?stmt ?(loc = Loc.dummy) message =
  { rule; func; stmt; loc; message }

(* Source-location order (file, then span, then the remaining fields as
   tie-breakers) so emitted findings are deterministic and diffable
   whatever order the checkers discovered them in.  Dummy locations sort
   last: real source positions lead the report. *)
let compare_by_loc a b =
  let pos_key (p : Loc.pos) = (p.Loc.line, p.Loc.col) in
  let loc_key (l : Loc.t) =
    if Loc.is_dummy l then (1, "", (0, 0), (0, 0))
    else (0, l.Loc.file, pos_key l.Loc.start_pos, pos_key l.Loc.end_pos)
  in
  let c = compare (loc_key a.loc) (loc_key b.loc) in
  if c <> 0 then c
  else compare (a.func, a.rule, a.stmt, a.message) (b.func, b.rule, b.stmt, b.message)

let sort = List.sort compare_by_loc

let pp ppf t =
  Format.fprintf ppf "[%s] %s (function %s%t)" t.rule t.message t.func
    (fun ppf ->
      match t.stmt with
      | Some id -> Format.fprintf ppf ", stmt %d" id
      | None -> ());
  if not (Loc.is_dummy t.loc) then Format.fprintf ppf " at %a" Loc.pp t.loc

let to_string t = Format.asprintf "%a" pp t
