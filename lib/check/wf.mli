(** Well-formedness verifier: the structural and semantic invariants every
    pass must preserve over {!Vpc_il.Prog.t} (paper §4/§5.2).

    Checked per function:
    - statement ids are unique ([dup-stmt-id]);
    - every variable id named by an lvalue or expression resolves through
      the function's table, the globals, or (post-inlining) some other
      function's table ([unbound-var]);
    - expression nodes are consistently typed: variable reads carry the
      declared (or decayed) type, [Load] operands are pointers
      ([var-type], [load-non-pointer]);
    - assignments, calls and returns are type-compatible with their
      targets ([assign-type], [call-arity], [call-type], [call-dst],
      [return-type]);
    - [Goto] targets resolve to exactly one [Label] in the function
      ([goto-target], [dup-label]);
    - [Do_loop] indices are sane and bounds are loop-entry-invariant pure
      expressions, as [stmt.mli] promises: the re-evaluated [hi]/[step]
      may not read the index, variables the body defines, volatile
      storage, or memory the body writes ([do-index], [do-bound-variant],
      [do-step-zero]);
    - [Vector] statements are consistently typed and never touch volatile
      storage ([vector-type], [volatile-vector]); parallel loop bodies
      never touch volatile storage either ([volatile-parallel]);
    - [While] serialized-prefix bookkeeping is in range ([serial-prefix]).

    Structural expression purity (no calls or assignments inside
    [Expr.t]) is enforced by the type itself; the semantic residue —
    positions the optimizer assumes re-evaluable must not read volatile
    or body-variant state — is what the checks above verify. *)

open Vpc_il

val check_func : Prog.t -> Func.t -> Report.violation list
val check_prog : Prog.t -> Report.violation list

(** Advisory checks: likely-bug patterns that are nevertheless legal IL,
    so they must not fail the verifier — degenerate DO loops whose
    constant bounds and step mean the body never runs ([do-degenerate];
    while→DO conversion emits exactly this form for loops it proves
    never run, which is why the verifier cannot reject it).  Consumed by
    the lint driver over the front-end IL. *)
val advise_func : Prog.t -> Func.t -> Report.violation list
val advise_prog : Prog.t -> Report.violation list
