open Vpc_il

type kind =
  | Dup_stmt_id
  | Unbound_var
  | Impure_bound
  | Dangling_goto
  | Vector_type
  | Vector_overlap
  | False_parallel
  | Wrong_const

let kinds =
  [
    ("dup-stmt-id", Dup_stmt_id);
    ("unbound-var", Unbound_var);
    ("impure-bound", Impure_bound);
    ("dangling-goto", Dangling_goto);
    ("vector-type", Vector_type);
    ("vector-overlap", Vector_overlap);
    ("false-parallel", False_parallel);
    ("wrong-const", Wrong_const);
  ]

let of_string s = List.assoc_opt s kinds

let to_string k =
  fst (List.find (fun (_, k') -> k' = k) kinds)

(* Rewrite the first statement [pick] accepts, in any function. *)
let rewrite_first (prog : Prog.t) (pick : Stmt.t -> Stmt.t option) : bool =
  let done_ = ref false in
  List.iter
    (fun (f : Func.t) ->
      if not !done_ then
        f.Func.body <-
          Stmt.map_list
            (fun s ->
              if !done_ then [ s ]
              else
                match pick s with
                | Some s' ->
                    done_ := true;
                    [ s' ]
                | None -> [ s ])
            f.Func.body)
    prog.Prog.funcs;
  !done_

let inject kind (prog : Prog.t) : bool =
  match kind with
  | Dup_stmt_id ->
      (* give the second statement of some function the id of the first *)
      List.exists
        (fun (f : Func.t) ->
          match Func.all_stmts f with
          | first :: _ :: _ ->
              let hit = ref false in
              f.Func.body <-
                Stmt.map_list
                  (fun s ->
                    if (not !hit) && s.Stmt.id <> first.Stmt.id then begin
                      hit := true;
                      [ { s with Stmt.id = first.Stmt.id } ]
                    end
                    else [ s ])
                  f.Func.body;
              !hit
          | _ -> false)
        prog.Prog.funcs
  | Unbound_var ->
      rewrite_first prog (fun s ->
          match s.Stmt.desc with
          | Stmt.Assign (Stmt.Lvar _, rhs) ->
              Some { s with Stmt.desc = Stmt.Assign (Stmt.Lvar 987654321, rhs) }
          | _ -> None)
  | Impure_bound ->
      rewrite_first prog (fun s ->
          match s.Stmt.desc with
          | Stmt.Do_loop d ->
              Some
                {
                  s with
                  Stmt.desc =
                    Stmt.Do_loop
                      { d with Stmt.hi = Expr.var_id d.Stmt.index Ty.Int };
                }
          | _ -> None)
  | Dangling_goto -> (
      match prog.Prog.funcs with
      | f :: _ ->
          f.Func.body <-
            f.Func.body @ [ Func.fresh_stmt f (Stmt.Goto "__nowhere") ];
          true
      | [] -> false)
  | Vector_type ->
      rewrite_first prog (fun s ->
          match s.Stmt.desc with
          | Stmt.Vector v ->
              let velt =
                match v.Stmt.velt with Ty.Float -> Ty.Int | _ -> Ty.Float
              in
              Some { s with Stmt.desc = Stmt.Vector { v with Stmt.velt } }
          | _ -> None)
  | Vector_overlap ->
      (* retarget the destination one element above a source section, so
         the source reads elements the sequential loop had already
         written (distance +1 flow) *)
      let rec first_vsec = function
        | Stmt.Vsec sec -> Some sec
        | Stmt.Vscalar _ | Stmt.Viota _ | Stmt.Vtmp _ -> None
        | Stmt.Vcast (_, v) | Stmt.Vun (_, v) -> first_vsec v
        | Stmt.Vbin (_, v1, v2) -> (
            match first_vsec v1 with Some s -> Some s | None -> first_vsec v2)
      in
      rewrite_first prog (fun s ->
          match s.Stmt.desc with
          | Stmt.Vector v -> (
              match first_vsec v.Stmt.vsrc with
              | None -> None
              | Some src ->
                  let dst = v.Stmt.vdst in
                  let base =
                    Expr.binop Expr.Add src.Stmt.base dst.Stmt.stride
                      src.Stmt.base.Expr.ty
                  in
                  Some
                    {
                      s with
                      Stmt.desc =
                        Stmt.Vector { v with Stmt.vdst = { dst with Stmt.base } };
                    })
          | _ -> None)
  | False_parallel ->
      rewrite_first prog (fun s ->
          match s.Stmt.desc with
          | Stmt.Do_loop d when not d.Stmt.parallel ->
              Some
                { s with Stmt.desc = Stmt.Do_loop { d with Stmt.parallel = true } }
          | _ -> None)
  | Wrong_const ->
      rewrite_first prog (fun s ->
          match s.Stmt.desc with
          | Stmt.Assign
              ((Stmt.Lvar _ as lv), { Expr.desc = Expr.Const_int k; Expr.ty })
            ->
              Some
                {
                  s with
                  Stmt.desc =
                    Stmt.Assign (lv, Expr.mk (Expr.Const_int (k + 1)) ty);
                }
          | _ -> None)
