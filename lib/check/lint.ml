(* Lint: statically-provable bugs in the source program, reported over
   the front-end IL (where statements still carry source locations and
   the lowerer's shapes are predictable).  Everything here must be
   provable — a finding fires only when the symbolic range analysis or
   exact iteration arithmetic shows the bad state is reached — because
   the CI gate requires zero findings on clean programs.

   Rules:
   - [oob-subscript]: the byte offset of a memory access lies entirely
     outside the accessed object, whenever the access executes;
   - [oob-loop]: a counted loop attains a subscript past the end of the
     object (the off-by-one the point rule cannot see, because part of
     the offset range is in bounds);
   - [induction-overflow]: a counted loop's induction update overflows
     the int range before the guard can fail;
   - [loop-guard-false]: a loop guard the ranges prove always false;
   - [do-degenerate]: {!Wf.advise_func}'s constant zero-trip DO loops. *)

open Vpc_il
module Range = Vpc_range.Range

let int32_max = 0x7fffffff

type ctx = {
  prog : Prog.t;
  func : Func.t;
  mutable acc : Report.violation list;
}

let report ctx ~rule ~(stmt : Stmt.t) fmt =
  Format.kasprintf
    (fun message ->
      ctx.acc <-
        Report.v ~rule ~func:ctx.func.Func.name ~stmt:stmt.Stmt.id
          ~loc:stmt.Stmt.loc message
        :: ctx.acc)
    fmt

let find_var ctx id = Prog.find_var ctx.prog (Some ctx.func) id

let var_name ctx id =
  match find_var ctx id with
  | Some v -> v.Var.name
  | None -> Printf.sprintf "var %d" id

(* Addresses a statement dereferences the moment it starts executing,
   with the element type accessed: loads anywhere in its shallow
   expressions (those evaluate unconditionally) plus a store's target. *)
let accesses (s : Stmt.t) =
  let acc = ref [] in
  let add (p : Expr.t) =
    match p.Expr.ty with Ty.Ptr elt -> acc := (p, elt) :: !acc | _ -> ()
  in
  List.iter
    (fun e ->
      Expr.iter
        (fun e -> match e.Expr.desc with Expr.Load p -> add p | _ -> ())
        e)
    (Stmt.shallow_exprs s);
  (match s.Stmt.desc with
  | Stmt.Assign (Stmt.Lmem p, _) | Stmt.Call (Some (Stmt.Lmem p), _, _) ->
      add p
  | _ -> ());
  List.rev !acc

(* Decompose an address value into a known object plus a symbolic byte
   offset: the affine form must mention exactly one address symbol, with
   coefficient one.  [None] for pointers whose object is unknown (a
   parameter, a load) — no size to check against. *)
let base_and_offset env (p : Expr.t) =
  match (Range.eval env p).Range.aff with
  | None -> None
  | Some a -> (
      let addrs =
        List.filter
          (fun (s, _) ->
            match s with Range.Affine.Saddr _ -> true | Range.Affine.Svar _ -> false)
          a.Range.Affine.terms
      in
      match addrs with
      | [ (Range.Affine.Saddr g, 1) ] ->
          Some (g, Range.Affine.sub a (Range.Affine.sym (Range.Affine.Saddr g)))
      | _ -> None)

(* The object's total size and the access width, in bytes; [None] when
   the object is unknown or the sizes make no sense to check. *)
let object_bytes ctx g (elt : Ty.t) =
  match find_var ctx g with
  | None -> None
  | Some v ->
      let size = Ty.sizeof ctx.prog.Prog.structs v.Var.ty in
      let width = Ty.sizeof ctx.prog.Prog.structs elt in
      if size > 0 && width > 0 && size >= width then Some (v, size - width)
      else None

(* Point rule: the whole offset interval misses the object. *)
let check_access ctx env stmt (p, elt) =
  match base_and_offset env p with
  | None -> ()
  | Some (g, off_aff) -> (
      match object_bytes ctx g elt with
      | None -> ()
      | Some (v, valid_hi) ->
          let off = Range.interval_of_affine env off_aff in
          if not (Range.Interval.is_bot off) then begin
            let below =
              match off.Range.Interval.hi with Some h -> h < 0 | None -> false
            in
            let above =
              match off.Range.Interval.lo with
              | Some l -> l > valid_hi
              | None -> false
            in
            if below || above then
              report ctx ~rule:"oob-subscript" ~stmt
                "access at byte offset %s of %s is out of bounds (valid \
                 offsets 0..%d)"
                (Range.Interval.to_string off)
                v.Var.name valid_hi
          end)

(* ------------------------------------------------------------------ *)
(* Counted loops: exact iteration arithmetic                          *)
(* ------------------------------------------------------------------ *)

let top_level_assigns body id =
  List.filter_map
    (fun (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lvar v, rhs) when v = id -> Some (s, rhs)
      | _ -> None)
    body

let assigned_count body id =
  let n = ref 0 in
  Stmt.iter_list
    (fun s ->
      match Stmt.defined_var s with Some v when v = id -> incr n | _ -> ())
    body;
  !n

(* The unique top-level constant-step update of [i]: [i = i + c], or the
   lowerer's temp chain [temp = i; i = temp + c] with [temp] assigned
   nowhere else.  Returns the update statement and the signed step. *)
let const_step body i =
  match top_level_assigns body i with
  | [ (upd, rhs) ] when assigned_count body i = 1 ->
      let resolves_to_i (e : Expr.t) =
        match e.Expr.desc with
        | Expr.Var j when j = i -> true
        | Expr.Var j -> (
            assigned_count body j = 1
            &&
            match top_level_assigns body j with
            | [ (_, { Expr.desc = Expr.Var k; _ }) ] -> k = i
            | _ -> false)
        | _ -> false
      in
      (match rhs.Expr.desc with
      | Expr.Binop (Expr.Add, a, b) -> (
          match Expr.const_int_val b with
          | Some c when resolves_to_i a -> Some (upd, c)
          | Some _ -> None
          | None -> (
              match Expr.const_int_val a with
              | Some c when resolves_to_i b -> Some (upd, c)
              | _ -> None))
      | Expr.Binop (Expr.Sub, a, b) -> (
          match Expr.const_int_val b with
          | Some c when resolves_to_i a -> Some (upd, -c)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* The exact arithmetic only holds when every iteration runs the whole
   body in order. *)
let straight_line body =
  let ok = ref true in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Goto _ | Stmt.Label _ | Stmt.Return _ -> ok := false
      | _ -> ())
    body;
  !ok

(* A store through a pointer could change an addressed index behind the
   dataflow's back. *)
let addressed ctx id =
  let found = ref false in
  Stmt.iter_list
    (fun s ->
      List.iter
        (fun e ->
          Expr.iter
            (fun e ->
              match e.Expr.desc with
              | Expr.Addr_of v when v = id -> found := true
              | _ -> ())
            e)
        (Stmt.shallow_exprs s))
    ctx.func.Func.body;
  !found

(* Accesses indexed by [i] in the top-level prefix of the body before
   [i] is reassigned: each executes once per iteration with [i] in
   {i0, i0+step, ..., max_i}, every value attained.  Reports only the
   cases the point rule cannot: offsets partly in bounds. *)
let check_attained ctx env_at body i ~i0 ~max_i =
  let live = ref true in
  List.iter
    (fun (s : Stmt.t) ->
      if !live then begin
        (match env_at s with
        | None -> ()
        | Some env ->
            List.iter
              (fun (p, elt) ->
                match base_and_offset env p with
                | None -> ()
                | Some (g, off) -> (
                    match (object_bytes ctx g elt, off.Range.Affine.terms) with
                    | Some (v, valid_hi), [ (Range.Affine.Svar j, ci) ]
                      when j = i ->
                        let k = off.Range.Affine.const in
                        let omin =
                          k + (ci * if ci > 0 then i0 else max_i)
                        in
                        let omax =
                          k + (ci * if ci > 0 then max_i else i0)
                        in
                        let all_out = omin > valid_hi || omax < 0 in
                        if (omin < 0 || omax > valid_hi) && not all_out then
                          report ctx ~rule:"oob-loop" ~stmt:s
                            "loop attains byte offset %d..%d of %s (valid \
                             offsets 0..%d)"
                            omin omax v.Var.name valid_hi
                    | _ -> ()))
              (accesses s));
        match Stmt.defined_var s with
        | Some j when j = i -> live := false
        | _ -> ()
      end)
    body

let check_counted_loop ctx env_at (s : Stmt.t) =
  match s.Stmt.desc with
  | Stmt.While (_, cond, body) -> (
      match cond.Expr.desc with
      | Expr.Binop
          (((Expr.Lt | Expr.Le) as op), ({ Expr.desc = Expr.Var i; _ } as ie), bexpr)
        when Ty.is_integer ie.Expr.ty -> (
          match Expr.const_int_val bexpr with
          | None -> ()
          | Some bound -> (
              match const_step body i with
              | Some (upd, step)
                when step > 0 && straight_line body && not (addressed ctx i)
                -> (
                  let i0 =
                    match env_at s with
                    | None -> None
                    | Some env ->
                        Range.Interval.to_point
                          (Range.interval_of_expr env ie)
                  in
                  match i0 with
                  | None -> ()
                  | Some i0 ->
                      let last =
                        match op with Expr.Lt -> bound - 1 | _ -> bound
                      in
                      if i0 <= last then begin
                        let max_i = last - ((last - i0) mod step) in
                        if max_i + step > int32_max then
                          report ctx ~rule:"induction-overflow" ~stmt:upd
                            "induction update overflows: %s reaches %d and \
                             the next increment by %d exceeds the int range"
                            (var_name ctx i) max_i step;
                        check_attained ctx env_at body i ~i0 ~max_i
                      end)
              | _ -> ()))
      | _ -> ())
  | _ -> ()

let check_func t prog (func : Func.t) =
  let fe = Range.analyze_func t prog func in
  let env_at (s : Stmt.t) = Range.env_before fe s.Stmt.id in
  let ctx = { prog; func; acc = [] } in
  Stmt.iter_list
    (fun s ->
      (match env_at s with
      | None -> ()
      | Some env -> (
          List.iter (check_access ctx env s) (accesses s);
          match s.Stmt.desc with
          | Stmt.While (_, c, _) -> (
              match Range.truth env c with
              | Some false ->
                  report ctx ~rule:"loop-guard-false" ~stmt:s
                    "loop guard is always false: the body never runs"
              | _ -> ())
          | _ -> ()));
      check_counted_loop ctx env_at s)
    func.Func.body;
  Wf.advise_func prog func @ List.rev ctx.acc

let run (prog : Prog.t) : Report.violation list =
  let t = Range.analyze prog in
  Report.sort (List.concat_map (check_func t prog) prog.Prog.funcs)
