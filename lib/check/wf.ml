(* Well-formedness checks over the IL.  Everything here is read-only and
   conservative in the other direction from an optimizer: a violation is
   only reported when the IL is definitely outside the invariants the
   passes and both back ends (interpreter, Titan codegen) rely on. *)

open Vpc_il

type ctx = {
  prog : Prog.t;
  func : Func.t;
  mutable acc : Report.violation list;
}

let report ctx ~rule ~(stmt : Stmt.t) fmt =
  Format.kasprintf
    (fun message ->
      ctx.acc <-
        Report.v ~rule ~func:ctx.func.Func.name ~stmt:stmt.Stmt.id
          ~loc:stmt.Stmt.loc message
        :: ctx.acc)
    fmt

let find_var ctx id = Prog.find_var ctx.prog (Some ctx.func) id

(* The innermost element type [Expr.addr_of] decays an array to. *)
let rec innermost = function Ty.Array (elt, _) -> innermost elt | t -> t

(* Loose value compatibility for assignments/arguments/returns: the
   interpreter converts scalars on assignment and the lowering mixes Int
   with pointer arithmetic, so only reject combinations no conversion can
   fix. *)
let value_compatible (a : Ty.t) (b : Ty.t) =
  let bad = function
    | Ty.Void | Ty.Struct _ | Ty.Func _ -> true
    | _ -> false
  in
  let a = Ty.decay a and b = Ty.decay b in
  if bad a || bad b then false
  else
    match a, b with
    | (Ty.Float | Ty.Double), Ty.Ptr _ | Ty.Ptr _, (Ty.Float | Ty.Double) ->
        false
    | _ -> true

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec check_expr ctx stmt (e : Expr.t) =
  (match e.Expr.desc with
  | Expr.Const_int _ | Expr.Const_float _ -> ()
  | Expr.Var id -> (
      match find_var ctx id with
      | None -> report ctx ~rule:"unbound-var" ~stmt "read of unbound variable id %d" id
      | Some v ->
          if
            not
              (Ty.equal e.Expr.ty v.Var.ty
              || Ty.equal e.Expr.ty (Ty.decay v.Var.ty))
          then
            report ctx ~rule:"var-type" ~stmt
              "read of %s typed %s but declared %s" v.Var.name
              (Ty.to_string e.Expr.ty)
              (Ty.to_string v.Var.ty))
  | Expr.Addr_of id -> (
      match find_var ctx id with
      | None ->
          report ctx ~rule:"unbound-var" ~stmt
            "address of unbound variable id %d" id
      | Some v ->
          let expect = Ty.Ptr (innermost v.Var.ty) in
          if not (Ty.equal e.Expr.ty expect) then
            report ctx ~rule:"var-type" ~stmt
              "&%s typed %s but should be %s" v.Var.name
              (Ty.to_string e.Expr.ty) (Ty.to_string expect))
  | Expr.Load p ->
      (match p.Expr.ty with
      | Ty.Ptr elt ->
          if not (Ty.equal e.Expr.ty elt) then
            report ctx ~rule:"load-non-pointer" ~stmt
              "load through %s typed %s" (Ty.to_string p.Expr.ty)
              (Ty.to_string e.Expr.ty)
      | t ->
          report ctx ~rule:"load-non-pointer" ~stmt
            "load through non-pointer operand of type %s" (Ty.to_string t))
  | Expr.Binop _ | Expr.Unop _ | Expr.Cast _ -> ());
  (* recurse *)
  match e.Expr.desc with
  | Expr.Const_int _ | Expr.Const_float _ | Expr.Var _ | Expr.Addr_of _ -> ()
  | Expr.Load a | Expr.Unop (_, a) | Expr.Cast (_, a) -> check_expr ctx stmt a
  | Expr.Binop (_, a, b) ->
      check_expr ctx stmt a;
      check_expr ctx stmt b

let reads_volatile ctx e =
  List.exists
    (fun id ->
      match find_var ctx id with Some v -> v.Var.volatile | None -> false)
    (Expr.read_vars e)

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let check_assign ctx stmt (lv : Stmt.lvalue) (rhs : Expr.t) =
  match lv with
  | Stmt.Lvar id -> (
      match find_var ctx id with
      | None ->
          report ctx ~rule:"unbound-var" ~stmt
            "assignment to unbound variable id %d" id
      | Some v ->
          if Var.is_memory_object v then
            report ctx ~rule:"assign-type" ~stmt
              "scalar assignment to memory object %s : %s" v.Var.name
              (Ty.to_string v.Var.ty)
          else if not (value_compatible v.Var.ty rhs.Expr.ty) then
            report ctx ~rule:"assign-type" ~stmt
              "%s : %s assigned incompatible value of type %s" v.Var.name
              (Ty.to_string v.Var.ty)
              (Ty.to_string rhs.Expr.ty))
  | Stmt.Lmem addr -> (
      match addr.Expr.ty with
      | Ty.Ptr elt when Ty.is_scalar elt ->
          if not (value_compatible elt rhs.Expr.ty) then
            report ctx ~rule:"assign-type" ~stmt
              "store of %s through pointer to %s" (Ty.to_string rhs.Expr.ty)
              (Ty.to_string elt)
      | t ->
          report ctx ~rule:"assign-type" ~stmt
            "store through address of type %s (want pointer to scalar)"
            (Ty.to_string t))

let check_call ctx stmt dst target (args : Expr.t list) =
  (match dst with
  | Some (Stmt.Lvar id) when find_var ctx id = None ->
      report ctx ~rule:"unbound-var" ~stmt
        "call result bound to unbound variable id %d" id
  | _ -> ());
  match target with
  | Stmt.Indirect _ -> ()  (* nothing static to say about the callee *)
  | Stmt.Direct name -> (
      match Prog.find_func ctx.prog name with
      | None -> ()  (* extern or builtin (printf, sqrt, ...): unchecked *)
      | Some callee ->
          let nparams = List.length callee.Func.params in
          if List.length args <> nparams then
            report ctx ~rule:"call-arity" ~stmt
              "call to %s passes %d argument(s), signature has %d" name
              (List.length args) nparams
          else
            List.iteri
              (fun i (pid, (arg : Expr.t)) ->
                match Func.find_var callee pid with
                | None -> ()
                | Some p ->
                    if not (value_compatible p.Var.ty arg.Expr.ty) then
                      report ctx ~rule:"call-type" ~stmt
                        "call to %s: argument %d has type %s, parameter %s \
                         wants %s"
                        name (i + 1)
                        (Ty.to_string arg.Expr.ty)
                        p.Var.name
                        (Ty.to_string p.Var.ty))
              (List.combine callee.Func.params args);
          match dst with
          | Some lv ->
              if Ty.equal callee.Func.ret_ty Ty.Void then
                report ctx ~rule:"call-dst" ~stmt
                  "result of void function %s is used" name
              else (
                match lv with
                | Stmt.Lvar id -> (
                    match find_var ctx id with
                    | Some v
                      when not (value_compatible v.Var.ty callee.Func.ret_ty)
                      ->
                        report ctx ~rule:"call-dst" ~stmt
                          "%s returns %s, bound to %s : %s" name
                          (Ty.to_string callee.Func.ret_ty)
                          v.Var.name
                          (Ty.to_string v.Var.ty)
                    | _ -> ())
                | Stmt.Lmem _ -> ())
          | None -> ())

(* [hi] and [step] of a DO loop are re-evaluated at every iteration test,
   so the "bounds are loop-entry values" promise of stmt.mli means they
   must actually be invariant: no reads of the index, of variables the
   body (deeply) defines, of volatile storage, and no loads when the body
   writes memory. *)
let check_do_bounds ctx stmt (d : Stmt.do_loop) =
  let defined_in_body, mem_written =
    Vpc_analysis.Reaching.vars_defined_in d.Stmt.body
  in
  let check_bound which (e : Expr.t) =
    List.iter
      (fun id ->
        if id = d.Stmt.index then
          report ctx ~rule:"do-bound-variant" ~stmt
            "loop %s reads the loop index" which
        else if Hashtbl.mem defined_in_body id then
          report ctx ~rule:"do-bound-variant" ~stmt
            "loop %s reads %s, which the body assigns" which
            (match find_var ctx id with
            | Some v -> v.Var.name
            | None -> Printf.sprintf "var %d" id))
      (Expr.read_vars e);
    if reads_volatile ctx e then
      report ctx ~rule:"do-bound-variant" ~stmt
        "loop %s reads volatile storage" which;
    if mem_written && Expr.contains_load e then
      report ctx ~rule:"do-bound-variant" ~stmt
        "loop %s loads from memory the body writes" which
  in
  check_bound "hi bound" d.Stmt.hi;
  check_bound "step" d.Stmt.step;
  (match Expr.const_int_val d.Stmt.step with
  | Some 0 -> report ctx ~rule:"do-step-zero" ~stmt "loop step is 0"
  | _ -> ());
  match find_var ctx d.Stmt.index with
  | None ->
      report ctx ~rule:"unbound-var" ~stmt "loop index id %d is unbound"
        d.Stmt.index
  | Some v ->
      if not (Ty.is_integer v.Var.ty) then
        report ctx ~rule:"do-index" ~stmt "loop index %s has type %s"
          v.Var.name (Ty.to_string v.Var.ty)
      else if v.Var.volatile then
        report ctx ~rule:"do-index" ~stmt "loop index %s is volatile"
          v.Var.name

(* Element type a vexpr produces, following the codegen conventions;
   [None] when a subtree is malformed in a way already reported. *)
let rec vexpr_ty (v : Stmt.vexpr) : Ty.t option =
  match v with
  | Stmt.Vsec sec -> (
      match sec.Stmt.base.Expr.ty with Ty.Ptr t -> Some t | _ -> None)
  | Stmt.Vscalar e -> Some e.Expr.ty
  | Stmt.Viota _ -> Some Ty.Int
  | Stmt.Vcast (ty, _) -> Some ty
  | Stmt.Vbin (_, a, b) -> (
      match vexpr_ty a with Some _ as t -> t | None -> vexpr_ty b)
  | Stmt.Vun (_, a) -> vexpr_ty a
  | Stmt.Vtmp (_, ty) -> Some ty

let check_section ctx stmt which (sec : Stmt.section) expect_elt =
  (match sec.Stmt.base.Expr.ty with
  | Ty.Ptr elt -> (
      match expect_elt with
      | Some want when not (Ty.equal elt want) ->
          report ctx ~rule:"vector-type" ~stmt
            "%s section base points to %s, element type is %s" which
            (Ty.to_string elt) (Ty.to_string want)
      | _ -> ())
  | t ->
      report ctx ~rule:"vector-type" ~stmt
        "%s section base has non-pointer type %s" which (Ty.to_string t));
  if not (Ty.is_integer sec.Stmt.count.Expr.ty) then
    report ctx ~rule:"vector-type" ~stmt "%s section count has type %s" which
      (Ty.to_string sec.Stmt.count.Expr.ty);
  if not (Ty.is_integer sec.Stmt.stride.Expr.ty) then
    report ctx ~rule:"vector-type" ~stmt "%s section stride has type %s" which
      (Ty.to_string sec.Stmt.stride.Expr.ty)

let rec check_src_sections ctx stmt = function
  | Stmt.Vsec sec -> check_section ctx stmt "source" sec None
  | Stmt.Vscalar _ | Stmt.Viota _ | Stmt.Vtmp _ -> ()
  | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> check_src_sections ctx stmt a
  | Stmt.Vbin (_, a, b) ->
      check_src_sections ctx stmt a;
      check_src_sections ctx stmt b

(* vector statements hoist and batch their operand reads: volatile
   accesses must never end up inside one *)
let check_no_volatile_vector ctx stmt =
  List.iter
    (fun e ->
      if reads_volatile ctx e then
        report ctx ~rule:"volatile-vector" ~stmt
          "vector statement reads volatile storage")
    (Stmt.shallow_exprs stmt)

let check_vector ctx stmt (v : Stmt.vstmt) =
  if not (Ty.is_scalar v.Stmt.velt) then
    report ctx ~rule:"vector-type" ~stmt "vector element type is %s"
      (Ty.to_string v.Stmt.velt);
  check_section ctx stmt "destination" v.Stmt.vdst (Some v.Stmt.velt);
  check_src_sections ctx stmt v.Stmt.vsrc;
  (match vexpr_ty v.Stmt.vsrc with
  | Some src_ty when not (value_compatible v.Stmt.velt src_ty) ->
      report ctx ~rule:"vector-type" ~stmt
        "vector source produces %s, destination elements are %s"
        (Ty.to_string src_ty)
        (Ty.to_string v.Stmt.velt)
  | _ -> ());
  check_no_volatile_vector ctx stmt

let check_vdef ctx stmt (vd : Stmt.vdef) =
  if not (Ty.is_scalar vd.Stmt.vty) then
    report ctx ~rule:"vector-type" ~stmt "vector temporary element type is %s"
      (Ty.to_string vd.Stmt.vty);
  if not (Ty.is_integer vd.Stmt.vcount.Expr.ty) then
    report ctx ~rule:"vector-type" ~stmt
      "vector temporary count has type %s"
      (Ty.to_string vd.Stmt.vcount.Expr.ty);
  check_src_sections ctx stmt vd.Stmt.vval;
  (match vexpr_ty vd.Stmt.vval with
  | Some src_ty when not (value_compatible vd.Stmt.vty src_ty) ->
      report ctx ~rule:"vector-type" ~stmt
        "vector temporary source produces %s, elements are %s"
        (Ty.to_string src_ty)
        (Ty.to_string vd.Stmt.vty)
  | _ -> ());
  check_no_volatile_vector ctx stmt

(* No volatile access may be hoisted into a parallel loop body: spreading
   iterations over processors reorders the accesses. *)
let check_no_volatile_parallel ctx (outer : Stmt.t) body =
  Stmt.iter_list
    (fun s ->
      List.iter
        (fun e ->
          if reads_volatile ctx e then
            report ctx ~rule:"volatile-parallel" ~stmt:s
              "parallel loop (stmt %d) body reads volatile storage"
              outer.Stmt.id)
        (Stmt.shallow_exprs s);
      match Stmt.defined_var s with
      | Some id -> (
          match find_var ctx id with
          | Some v when v.Var.volatile ->
              report ctx ~rule:"volatile-parallel" ~stmt:s
                "parallel loop (stmt %d) body writes volatile %s"
                outer.Stmt.id v.Var.name
          | _ -> ())
      | None -> ())
    body

let check_stmt ctx (s : Stmt.t) =
  List.iter (check_expr ctx s) (Stmt.shallow_exprs s);
  match s.Stmt.desc with
  | Stmt.Assign (lv, rhs) -> check_assign ctx s lv rhs
  | Stmt.Call (dst, target, args) -> check_call ctx s dst target args
  | Stmt.Return (Some e) ->
      if Ty.equal ctx.func.Func.ret_ty Ty.Void then
        report ctx ~rule:"return-type" ~stmt:s
          "void function returns a value"
      else if not (value_compatible ctx.func.Func.ret_ty e.Expr.ty) then
        report ctx ~rule:"return-type" ~stmt:s
          "return of %s from function returning %s"
          (Ty.to_string e.Expr.ty)
          (Ty.to_string ctx.func.Func.ret_ty)
  | Stmt.Return None -> ()
  | Stmt.Do_loop d ->
      check_do_bounds ctx s d;
      if d.Stmt.parallel then check_no_volatile_parallel ctx s d.Stmt.body;
      if d.Stmt.sync <> [] then begin
        let n = List.length d.Stmt.body in
        List.iter
          (fun (y : Stmt.dsync) ->
            if
              y.Stmt.post_after < 0 || y.Stmt.post_after >= n
              || y.Stmt.wait_before < 0
              || y.Stmt.wait_before >= n
            then
              report ctx ~rule:"doacross-sync" ~stmt:s
                "sync c%d positions (post %d, wait %d) out of range for \
                 %d-statement body"
                y.Stmt.chan y.Stmt.post_after y.Stmt.wait_before n;
            if y.Stmt.distance < 1 then
              report ctx ~rule:"doacross-sync" ~stmt:s
                "sync c%d has non-positive distance %d" y.Stmt.chan
                y.Stmt.distance)
          d.Stmt.sync;
        if d.Stmt.parallel then
          report ctx ~rule:"doacross-sync" ~stmt:s
            "loop is both parallel and doacross-synchronized";
        check_no_volatile_parallel ctx s d.Stmt.body
      end
  | Stmt.While (li, _, body) ->
      let n = List.length body in
      if li.Stmt.serial_prefix < 0 || li.Stmt.serial_prefix > n then
        report ctx ~rule:"serial-prefix" ~stmt:s
          "serial prefix %d out of range for %d-statement body"
          li.Stmt.serial_prefix n;
      if li.Stmt.doacross then
        check_no_volatile_parallel ctx s
          (List.filteri (fun i _ -> i >= li.Stmt.serial_prefix) body)
  | Stmt.Vector v -> check_vector ctx s v
  | Stmt.Vdef vd -> check_vdef ctx s vd
  | Stmt.If _ | Stmt.Goto _ | Stmt.Label _ | Stmt.Nop -> ()

(* ------------------------------------------------------------------ *)
(* Function-level structure                                           *)
(* ------------------------------------------------------------------ *)

let check_ids ctx =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s : Stmt.t) ->
      if Hashtbl.mem seen s.Stmt.id then
        report ctx ~rule:"dup-stmt-id" ~stmt:s
          "statement id %d appears more than once" s.Stmt.id
      else Hashtbl.add seen s.Stmt.id ())
    (Func.all_stmts ctx.func)

let check_labels ctx =
  let labels = Hashtbl.create 8 in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Label name ->
          if Hashtbl.mem labels name then
            report ctx ~rule:"dup-label" ~stmt:s
              "label %s defined more than once" name
          else Hashtbl.add labels name ()
      | _ -> ())
    ctx.func.Func.body;
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Goto target ->
          if not (Hashtbl.mem labels target) then
            report ctx ~rule:"goto-target" ~stmt:s
              "goto %s has no matching label" target
      | _ -> ())
    ctx.func.Func.body

(* Every [Vtmp] read must follow a [Vdef] of the same id and element type.
   Structural approximation of dominance: walk in textual order; both arms
   of an If start from the entry set and the join keeps the intersection;
   a loop body starts from the loop-entry set (in-body definitions are
   visible later in the body but not assumed after the loop, which may run
   zero times). *)
let check_vtmps ctx =
  let module IS = Set.Make (Int) in
  let tys : (int, Ty.t) Hashtbl.t = Hashtbl.create 4 in
  let rec vexpr defined stmt = function
    | Stmt.Vsec _ | Stmt.Vscalar _ | Stmt.Viota _ -> ()
    | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> vexpr defined stmt a
    | Stmt.Vbin (_, a, b) ->
        vexpr defined stmt a;
        vexpr defined stmt b
    | Stmt.Vtmp (t, ty) -> (
        if not (IS.mem t defined) then
          report ctx ~rule:"vtmp-def" ~stmt
            "vector temporary vt%d read before any definition" t;
        match Hashtbl.find_opt tys t with
        | Some want when not (Ty.equal want ty) ->
            report ctx ~rule:"vtmp-type" ~stmt
              "vector temporary vt%d read as %s, defined as %s" t
              (Ty.to_string ty) (Ty.to_string want)
        | _ -> ())
  in
  let rec stmts defined ss = List.fold_left stmt defined ss
  and stmt defined (s : Stmt.t) =
    match s.Stmt.desc with
    | Stmt.Vector v ->
        vexpr defined s v.Stmt.vsrc;
        defined
    | Stmt.Vdef vd ->
        vexpr defined s vd.Stmt.vval;
        (match Hashtbl.find_opt tys vd.Stmt.vt with
        | Some want when not (Ty.equal want vd.Stmt.vty) ->
            report ctx ~rule:"vtmp-type" ~stmt:s
              "vector temporary vt%d redefined as %s, was %s" vd.Stmt.vt
              (Ty.to_string vd.Stmt.vty) (Ty.to_string want)
        | _ -> Hashtbl.replace tys vd.Stmt.vt vd.Stmt.vty);
        IS.add vd.Stmt.vt defined
    | Stmt.If (_, t, e) -> IS.inter (stmts defined t) (stmts defined e)
    | Stmt.While (_, _, body) ->
        ignore (stmts defined body);
        defined
    | Stmt.Do_loop d ->
        ignore (stmts defined d.Stmt.body);
        defined
    | Stmt.Assign _ | Stmt.Call _ | Stmt.Goto _ | Stmt.Label _
    | Stmt.Return _ | Stmt.Nop ->
        defined
  in
  ignore (stmts IS.empty ctx.func.Func.body)

let check_func prog func =
  let ctx = { prog; func; acc = [] } in
  check_ids ctx;
  check_labels ctx;
  check_vtmps ctx;
  Stmt.iter_list (check_stmt ctx) func.Func.body;
  List.rev ctx.acc

let check_prog prog =
  List.concat_map (check_func prog) prog.Prog.funcs

(* ------------------------------------------------------------------ *)
(* Advisories                                                         *)
(* ------------------------------------------------------------------ *)

(* Likely-bug patterns that are nevertheless legal IL.  Kept out of
   {!check_func} because the verifier treats any violation as a broken
   invariant: while→DO conversion legitimately emits [do dummy = 0, -1]
   for a loop it proves never runs, and constant propagation deletes it
   a pass later.  The lint driver reports these on the front-end IL,
   where a degenerate DO can only have come from the source program. *)
let advise_func prog func =
  let ctx = { prog; func; acc = [] } in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Do_loop d -> (
          match
            ( Expr.const_int_val d.Stmt.lo,
              Expr.const_int_val d.Stmt.hi,
              Expr.const_int_val d.Stmt.step )
          with
          | Some lo, Some hi, Some step
            when (step >= 0 && lo > hi) || (step < 0 && lo < hi) ->
              report ctx ~rule:"do-degenerate" ~stmt:s
                "loop never runs: lo %d, hi %d, step %d" lo hi step
          | _ -> ())
      | _ -> ())
    func.Func.body;
  List.rev ctx.acc

let advise_prog prog =
  List.concat_map (advise_func prog) prog.Prog.funcs
