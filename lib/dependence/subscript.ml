(* Affine memory-reference extraction from DO-loop bodies.

   After induction-variable substitution every interesting address has the
   form  base + coeff * k  with [base] loop-invariant and [coeff] a byte
   stride ("the implicit representation of subscripts as star operations
   ... did require some special tuning in the vectorizer", §9).  This
   module recognizes that form directly on the IL's pointer arithmetic —
   both explicit subscripts and the *(p + 4*i) pointer style decompose the
   same way. *)

open Vpc_il

type affine = {
  base : Expr.t;  (* loop-invariant byte address of the k = 0 element *)
  coeff : int;    (* byte stride per iteration *)
}

type access_kind = Read | Write

type reference = {
  ref_stmt : int;          (* stmt id containing the access *)
  ref_pos : int;           (* top-level position within the body *)
  kind : access_kind;
  addr : Expr.t;           (* the raw address expression *)
  affine : affine option;  (* decomposition when the address is affine *)
  elt : Ty.t;              (* element type accessed *)
}

(* Decompose [e] as an affine function of variable [index].  [invariant]
   decides loop-invariance of subexpressions. *)
let affine_of ~index ~invariant (e : Expr.t) : affine option =
  (* returns (coeff, base-term list) *)
  let exception Not_affine in
  let rec go (e : Expr.t) : int * Expr.t option =
    if invariant e then (0, Some e)
    else
      match e.Expr.desc with
      | Expr.Var v when v = index -> (1, None)
      | Expr.Binop (Expr.Add, a, b) ->
          let ca, ba = go a and cb, bb = go b in
          (ca + cb, combine Expr.Add ba bb)
      | Expr.Binop (Expr.Sub, a, b) ->
          let ca, ba = go a and cb, bb = go b in
          let bb = Option.map (fun e -> Expr.unop Expr.Neg e e.Expr.ty) bb in
          (ca - cb, combine Expr.Add ba bb)
      | Expr.Binop (Expr.Mul, { desc = Expr.Const_int c; _ }, b) ->
          let cb, bb = go b in
          (c * cb, Option.map (scale c) bb)
      | Expr.Binop (Expr.Mul, a, { desc = Expr.Const_int c; _ }) ->
          let ca, ba = go a in
          (c * ca, Option.map (scale c) ba)
      | Expr.Cast (ty, a) when Ty.is_integer ty || Ty.is_pointer ty -> go a
      | _ -> raise Not_affine
  and combine op a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Expr.binop op a b a.Expr.ty)
  and scale c e = Expr.binop Expr.Mul (Expr.int_const c) e e.Expr.ty
  in
  match go e with
  | coeff, base ->
      let base =
        match base with
        | Some b -> b
        | None -> Expr.int_const 0
      in
      Some { base; coeff }
  | exception Not_affine -> None

(* ---- multi-index decomposition, for loop nests ---- *)

type multi_affine = {
  mbase : Expr.t;      (* nest-invariant byte address of the origin element *)
  mcoeffs : int array; (* byte stride per nest level, outermost first *)
}

(* Decompose [e] as affine in all of [indices] (outermost first):
   e = mbase + Σ mcoeffs.(k) * indices.(k), with [mbase] invariant over
   the whole nest.  [invariant] must treat every nest index as variant. *)
let affine_multi ~(indices : int list) ~invariant (e : Expr.t) :
    multi_affine option =
  let n = List.length indices in
  let pos_of v =
    let rec go i = function
      | [] -> None
      | x :: _ when x = v -> Some i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 indices
  in
  let exception Not_affine in
  let rec go (e : Expr.t) : int array * Expr.t option =
    if invariant e then (Array.make n 0, Some e)
    else
      match e.Expr.desc with
      | Expr.Var v when pos_of v <> None ->
          let c = Array.make n 0 in
          c.(Option.get (pos_of v)) <- 1;
          (c, None)
      | Expr.Binop (Expr.Add, a, b) ->
          let ca, ba = go a and cb, bb = go b in
          (Array.init n (fun k -> ca.(k) + cb.(k)), combine Expr.Add ba bb)
      | Expr.Binop (Expr.Sub, a, b) ->
          let ca, ba = go a and cb, bb = go b in
          let bb = Option.map (fun e -> Expr.unop Expr.Neg e e.Expr.ty) bb in
          (Array.init n (fun k -> ca.(k) - cb.(k)), combine Expr.Add ba bb)
      | Expr.Binop (Expr.Mul, { desc = Expr.Const_int c; _ }, b) ->
          let cb, bb = go b in
          (Array.map (fun x -> c * x) cb, Option.map (scale c) bb)
      | Expr.Binop (Expr.Mul, a, { desc = Expr.Const_int c; _ }) ->
          let ca, ba = go a in
          (Array.map (fun x -> c * x) ca, Option.map (scale c) ba)
      | Expr.Cast (ty, a) when Ty.is_integer ty || Ty.is_pointer ty -> go a
      | _ -> raise Not_affine
  and combine op a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Expr.binop op a b a.Expr.ty)
  and scale c e = Expr.binop Expr.Mul (Expr.int_const c) e e.Expr.ty
  in
  match go e with
  | mcoeffs, base ->
      let mbase =
        match base with
        | Some b -> b
        | None -> Expr.int_const 0
      in
      Some { mbase; mcoeffs }
  | exception Not_affine -> None

(* All memory references in an expression (loads), with their element
   types. *)
let rec loads_of (e : Expr.t) acc =
  match e.Expr.desc with
  | Expr.Load p -> (p, e.Expr.ty) :: loads_of p acc
  | Expr.Const_int _ | Expr.Const_float _ | Expr.Var _ | Expr.Addr_of _ -> acc
  | Expr.Binop (_, a, b) -> loads_of a (loads_of b acc)
  | Expr.Unop (_, a) | Expr.Cast (_, a) -> loads_of a acc

(* Collect references of a loop body's top-level statements.  Statements
   other than assignments (or with calls) yield [None]: the loop cannot be
   analyzed. *)
let references ~index ~invariant (body : Stmt.t list) : reference list option
    =
  let refs = ref [] in
  let ok = ref true in
  let add pos stmt_id kind (addr : Expr.t) elt =
    refs :=
      {
        ref_stmt = stmt_id;
        ref_pos = pos;
        kind;
        addr;
        affine = affine_of ~index ~invariant addr;
        elt;
      }
      :: !refs
  in
  List.iteri
    (fun pos (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Assign (lv, rhs) ->
          (match lv with
          | Stmt.Lmem addr ->
              let elt =
                match addr.Expr.ty with Ty.Ptr t -> t | t -> t
              in
              add pos s.Stmt.id Write addr elt;
              List.iter
                (fun (p, ty) -> add pos s.Stmt.id Read p ty)
                (loads_of addr [])
          | Stmt.Lvar _ -> ());
          List.iter (fun (p, ty) -> add pos s.Stmt.id Read p ty) (loads_of rhs [])
      | Stmt.Nop | Stmt.Label _ -> ()
      | Stmt.Call _ | Stmt.If _ | Stmt.While _ | Stmt.Do_loop _ | Stmt.Goto _
      | Stmt.Return _ | Stmt.Vector _ | Stmt.Vdef _ ->
          ok := false)
    body;
  if !ok then Some (List.rev !refs) else None
