(* Dependence tests on affine single-index subscripts: ZIV, strong SIV,
   and the GCD and Banerjee tests for the general case [Bane 76, Wolf 78,
   Alle 83].

   Both references run over iterations 0..U (U = trip-1, possibly
   unknown).  Reference 1 touches  D1 + c1*i,  reference 2 touches
   D2 + c2*j  with the byte distance  delta = D2 - D1  known from alias
   analysis; a dependence exists iff  c1*i - c2*j = delta  has a solution
   in range. *)

type verdict =
  | Independent
  | Dependent of { distance : int option; dist_lo : int option }
      (* [distance]: iterations when both strides are equal and the
         solution is unique; [None] = unknown/varying.  distance > 0:
         reference 2's access happens that many iterations after
         reference 1 touches the same location.  [dist_lo]: meaningful
         only when [distance = None] — [Some l] with l >= 1 asserts
         every solution has distance >= l (the dependence is strictly
         forward, at least [l] iterations apart), proven from the range
         oracle's interval on the symbolic byte distance.  [None] = no
         bound known. *)

let dep ?dist_lo distance = Dependent { distance; dist_lo }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Conservative iteration-count bound; [None] = unknown (unbounded). *)
type bound = int option

let ziv ~delta = if delta = 0 then dep (Some 0) else Independent

(* strong SIV: equal strides c: c*i - c*j = delta  ⇒  i - j = delta/c *)
let strong_siv ~c ~delta ~(trip : bound) =
  if delta mod c <> 0 then Independent
  else
    let d = -(delta / c) in
    (* location touched by ref1 at iteration i equals ref2 at j = i - delta/c;
       distance (j - i after normalization) = -delta/c in our convention *)
    let in_range =
      match trip with None -> true | Some u -> abs d < u
    in
    if in_range then dep (Some d) else Independent

(* weak-zero SIV: one reference is loop-invariant (stride 0); the other
   hits it in at most one iteration. *)
let weak_zero_siv ~c ~delta ~(trip : bound) =
  (* c*i = delta *)
  if c = 0 then if delta = 0 then dep None else Independent
  else if delta mod c <> 0 then Independent
  else
    let i = delta / c in
    let in_range =
      i >= 0 && match trip with None -> true | Some u -> i < u
    in
    if in_range then dep None else Independent

(* GCD test for c1*i - c2*j = delta. *)
let gcd_test ~c1 ~c2 ~delta =
  let g = gcd c1 c2 in
  if g = 0 then delta = 0
  else delta mod g = 0

(* Banerjee bounds: is delta within [min, max] of c1*i - c2*j for
   0 <= i, j <= U-1? *)
let banerjee ~c1 ~c2 ~delta ~(trip : bound) =
  match trip with
  | None -> true  (* unbounded: cannot exclude *)
  | Some u ->
      let m = u - 1 in
      if m < 0 then false
      else
        let pos x = max x 0 and neg x = min x 0 in
        let lo = (neg c1 * m) - (pos c2 * m) in
        let hi = (pos c1 * m) - (neg c2 * m) in
        delta >= lo && delta <= hi

(* Main entry: dependence between two affine references with byte strides
   [c1], [c2], and byte distance [delta] between their bases (base2 -
   base1), over [trip] iterations.  Accesses conflict on byte-address
   equality: the lowering keeps all scalar accesses width-aligned, so
   same-width references at unequal addresses never partially overlap. *)
let affine ~c1 ~c2 ~delta ~trip =
  if c1 = 0 && c2 = 0 then ziv ~delta
  else if c1 = c2 then strong_siv ~c:c1 ~delta ~trip
  else if c1 = 0 then weak_zero_siv ~c:c2 ~delta:(-delta) ~trip
  else if c2 = 0 then weak_zero_siv ~c:c1 ~delta ~trip
  else if not (gcd_test ~c1 ~c2 ~delta) then Independent
  else if not (banerjee ~c1 ~c2 ~delta ~trip) then Independent
  else dep None

(* ---- direction vectors over loop nests [Wolf 78, Alle 83] ---- *)

type direction = Lt | Eq | Gt

(* Feasible direction vectors for a dependence between two references in
   a nest of depth d: reference 1 touches  D1 + Σ c1.(k)*i_k,  reference
   2 touches  D2 + Σ c2.(k)*j_k,  each index over 0..trips.(k)-1,
   delta = D2 - D1.  A vector (d_0,...,d_{depth-1}) with d_k ∈ {<,=,>}
   is feasible when  Σ_k (c1.(k)*i_k - c2.(k)*j_k) = delta  has a
   solution with each (i_k, j_k) satisfying i_k d_k j_k.

   Per-level the term  f_k = c1.(k)*i - c2.(k)*j  ranges over an interval
   whose endpoints are attained at the corner points of the
   direction-constrained triangle (f_k is linear, so extrema sit on hull
   vertices); the whole-vector test sums the intervals and applies the
   GCD test across all levels.  Sound: intervals only over-approximate. *)
let direction_vectors ~(c1 : int array) ~(c2 : int array) ~delta
    ~(trips : bound array) : direction list list =
  let depth = Array.length c1 in
  let g = ref 0 in
  Array.iter (fun c -> g := gcd !g c) c1;
  Array.iter (fun c -> g := gcd !g c) c2;
  let gcd_ok = if !g = 0 then delta = 0 else delta mod !g = 0 in
  if not gcd_ok then []
  else begin
    (* extended interval: None = unbounded on that side *)
    let minl = List.fold_left min max_int and maxl = List.fold_left max min_int in
    let level_range k (dir : direction) : (int option * int option) option =
      let a = c1.(k) and b = c2.(k) in
      match trips.(k), dir with
      | Some t, _ when t <= 0 -> None (* the level never iterates *)
      | Some t, Eq ->
          let v = (a - b) * (t - 1) in
          Some (Some (min 0 v), Some (max 0 v))
      | Some t, Lt ->
          if t < 2 then None
          else
            let u = t - 1 in
            (* region 0 <= i < j <= u; hull corners (0,1),(0,u),(u-1,u) *)
            let vs = [ -b; -b * u; (a * (u - 1)) - (b * u) ] in
            Some (Some (minl vs), Some (maxl vs))
      | Some t, Gt ->
          if t < 2 then None
          else
            let u = t - 1 in
            (* region 0 <= j < i <= u; hull corners (1,0),(u,0),(u,u-1) *)
            let vs = [ a; a * u; (a * u) - (b * (u - 1)) ] in
            Some (Some (minl vs), Some (maxl vs))
      | None, Eq ->
          let d = a - b in
          if d = 0 then Some (Some 0, Some 0)
          else if d > 0 then Some (Some 0, None)
          else Some (None, Some 0)
      | None, Lt ->
          (* cone from vertex (0,1) along generators (0,1) and (1,1) *)
          let lo = if a - b < 0 || b > 0 then None else Some (-b) in
          let hi = if a - b > 0 || b < 0 then None else Some (-b) in
          Some (lo, hi)
      | None, Gt ->
          (* cone from vertex (1,0) along generators (1,0) and (1,1) *)
          let lo = if a - b < 0 || a < 0 then None else Some a in
          let hi = if a - b > 0 || a > 0 then None else Some a in
          Some (lo, hi)
    in
    let add_ext a b =
      match a, b with None, _ | _, None -> None | Some x, Some y -> Some (x + y)
    in
    let results = ref [] in
    let rec enum k dirs (lo, hi) =
      if k = depth then begin
        let ok_lo = match lo with None -> true | Some l -> delta >= l in
        let ok_hi = match hi with None -> true | Some h -> delta <= h in
        if ok_lo && ok_hi then results := List.rev dirs :: !results
      end
      else
        List.iter
          (fun dir ->
            match level_range k dir with
            | None -> ()
            | Some (l, h) ->
                enum (k + 1) (dir :: dirs) (add_ext lo l, add_ext hi h))
          [ Lt; Eq; Gt ]
    in
    enum 0 [] (Some 0, Some 0);
    List.rev !results
  end

(* ---- symbolic range oracle [§5: symbolic dependence testing] ----

   When alias analysis answers May_alias the bases differ by a symbolic
   byte distance.  A scoped oracle (installed by the vectorizer from the
   range analysis) can evaluate that distance: a point value re-enters
   the exact test battery above; an interval feeds interval forms of the
   GCD and Banerjee tests.  [note] reports the distance expression whose
   range was too weak, for [--why-scalar]. *)
type oracle = {
  interval : Vpc_il.Expr.t -> int option * int option;
      (* sound bounds on an integer expression at the tested loop;
         [(None, None)] when nothing is known *)
  note : Vpc_il.Expr.t -> string -> unit;
}

(* Domain-local for the same reason as {!Alias.oracle}: concurrent
   server pipelines each install their own range oracle. *)
let oracle_ref : oracle option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Memoized verdicts depend on the installed range oracle, so each
   install/restore bumps a generation embedded in the cache key. *)
let generation_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let with_oracle (o : oracle) f =
  let saved = Domain.DLS.get oracle_ref in
  let gen = Domain.DLS.get generation_key in
  incr gen;
  Domain.DLS.set oracle_ref (Some o);
  Fun.protect
    ~finally:(fun () ->
      incr gen;
      Domain.DLS.set oracle_ref saved)
    f

(* Interval counterpart of [affine]: delta is only known to lie in
   [dlo, dhi] (either side possibly unbounded).  Independence holds when
   no value in the interval admits a solution: either no multiple of
   gcd(c1,c2) lies inside, or the whole interval sits outside the
   Banerjee span of c1*i - c2*j over the trip range. *)
let interval_affine ~c1 ~c2 ~(dlo : int option) ~(dhi : int option)
    ~(trip : bound) : verdict =
  let g = gcd c1 c2 in
  let no_multiple =
    match dlo, dhi with
    | Some l, Some h when g > 1 ->
        let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
        let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b) in
        fdiv h g < cdiv l g
    | Some l, _ when g = 0 -> l > 0
    | _, Some h when g = 0 -> h < 0
    | _ -> false
  in
  if no_multiple then Independent
  else
    let outside_banerjee =
      match trip with
      | None -> false
      | Some u ->
          let m = u - 1 in
          m < 0
          ||
          let pos x = max x 0 and neg x = min x 0 in
          let blo = (neg c1 * m) - (pos c2 * m) in
          let bhi = (pos c1 * m) - (neg c2 * m) in
          (match dlo with Some l -> l > bhi | None -> false)
          || (match dhi with Some h -> h < blo | None -> false)
    in
    if outside_banerjee then Independent
    else
      (* Equal strides c: every surviving solution has iteration distance
         d = -delta/c.  The interval endpoint on the side that minimizes
         d then bounds it below; a bound >= 1 proves the dependence
         strictly forward, which is what a doacross loop can order with a
         cumulative sync even though the exact distance stays symbolic. *)
      let dist_lo =
        if c1 = c2 && c1 <> 0 then begin
          let c = c1 in
          let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
          let lo =
            if c > 0 then
              (* d = -delta/c decreases in delta: min at delta = dhi *)
              Option.map (fun h -> -fdiv h c) dhi
            else
              (* c < 0: d = delta/|c| increases in delta: min at dlo *)
              Option.map (fun l -> -fdiv (-l) (-c)) dlo
          in
          match lo with Some l when l >= 1 -> Some l | _ -> None
        end
        else None
      in
      dep ?dist_lo None

(* May_alias with both subscripts affine: ask the oracle for the byte
   distance between the bases. *)
let may_alias_affine (a1 : Subscript.affine) (a2 : Subscript.affine) ~trip :
    verdict =
  match Domain.DLS.get oracle_ref with
  | None -> dep None
  | Some o -> (
      let delta_e =
        Vpc_analysis.Simplify.expr
          (Vpc_il.Expr.binop Vpc_il.Expr.Sub a2.Subscript.base
             a1.Subscript.base Vpc_il.Ty.Int)
      in
      let c1 = a1.Subscript.coeff and c2 = a2.Subscript.coeff in
      match o.interval delta_e with
      | Some l, Some h when l = h -> affine ~c1 ~c2 ~delta:l ~trip
      | (dlo, dhi) as itv -> (
          match interval_affine ~c1 ~c2 ~dlo ~dhi ~trip with
          | Independent -> Independent
          | Dependent _ as dep ->
              let side = function None -> "*" | Some n -> string_of_int n in
              o.note delta_e
                (if itv = (None, None) then "unknown"
                 else
                   Printf.sprintf "only known to lie in [%s,%s]" (side dlo)
                     (side dhi));
              dep))

(* Test two references given their subscript decompositions and an alias
   verdict on their bases. *)
let references_uncached ?(assume_noalias = false) ~trip
    (r1 : Subscript.reference) (r2 : Subscript.reference) structs : verdict =
  ignore structs;
  match r1.Subscript.affine, r2.Subscript.affine with
  | Some a1, Some a2 -> (
      match Alias.bases ~assume_noalias a1.Subscript.base a2.Subscript.base with
      | Alias.No_alias -> Independent
      | Alias.Must_alias delta ->
          affine ~c1:a1.Subscript.coeff ~c2:a2.Subscript.coeff ~delta ~trip
      | Alias.May_alias -> may_alias_affine a1 a2 ~trip)
  | _ ->
      (* a non-affine reference may touch anything its base can reach *)
      (match
         ( Option.map (fun (a : Subscript.affine) -> a.Subscript.base) r1.affine,
           Option.map (fun (a : Subscript.affine) -> a.Subscript.base) r2.affine )
       with
      | Some b1, Some b2 when Alias.bases ~assume_noalias b1 b2 = Alias.No_alias ->
          Independent
      | _ -> dep None)

(* ---- memoization ----

   Loop nests are retested after nearly every transform (distribution,
   fusion, strip mining, doacross all rebuild the dependence graph), and
   the same subscript pairs recur across rebuilds.  The verdict of
   [references] is a pure function of the two affine decompositions, the
   trip bound, [assume_noalias], and the two installed oracles — so it
   memoizes on exactly that key.  Oracle identity enters as generation
   counters ({!generation_key} here, {!Alias.generation} for points-to):
   any install or restore invalidates the whole cache by shifting every
   future key.

   One observable difference on a hit: the range oracle's [note]
   callback does not fire again.  Notes feed [--why-scalar], which
   reports each surviving dependence once per loop, and a generation
   spans a single optimization run of one function — the first miss has
   already reported the pair. *)

type cache_stats = { mutable hits : int; mutable lookups : int }

let cache_key : (string, verdict) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let cache_stats_key : cache_stats Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { hits = 0; lookups = 0 })

let cache_stats () =
  let s = Domain.DLS.get cache_stats_key in
  (s.hits, s.lookups)

(* The verdict reads only the [affine] field of each reference (the
   non-affine fallback consults the bases of whatever decomposed), so
   the key renders just that, order-sensitively: distance signs flip
   with argument order. *)
let side (r : Subscript.reference) =
  match r.Subscript.affine with
  | Some a ->
      Printf.sprintf "%d:%s" a.Subscript.coeff
        (Vpc_support.Sexp.to_string (Vpc_il.Expr.to_sexp a.Subscript.base))
  | None -> "~"

let references ?(assume_noalias = false) ~trip (r1 : Subscript.reference)
    (r2 : Subscript.reference) structs : verdict =
  let key =
    Printf.sprintf "%d.%d/%b/%s|%s|%s"
      !(Domain.DLS.get generation_key)
      (Alias.generation ()) assume_noalias
      (match trip with None -> "*" | Some u -> string_of_int u)
      (side r1) (side r2)
  in
  let cache = Domain.DLS.get cache_key in
  let stats = Domain.DLS.get cache_stats_key in
  stats.lookups <- stats.lookups + 1;
  match Hashtbl.find_opt cache key with
  | Some v ->
      stats.hits <- stats.hits + 1;
      v
  | None ->
      let v = references_uncached ~assume_noalias ~trip r1 r2 structs in
      (* long-lived server domains retest unboundedly many programs; a
         stale generation's entries can never hit again, so dropping
         everything at a size cap loses at most one warm window *)
      if Hashtbl.length cache > 65536 then Hashtbl.reset cache;
      Hashtbl.replace cache key v;
      v
