(** The statement dependence graph of a DO loop (paper §6): data
    dependences through memory and through scalars, classified as
    loop-carried or loop-independent.  This graph drives vectorization,
    parallelization, scalar replacement, strength reduction, and
    instruction scheduling — "the dependence graph used in vectorization
    has a dual nature". *)

open Vpc_il

type dep_kind = Flow | Anti | Output

type edge = {
  src : int;  (** top-level position in the loop body *)
  dst : int;
  kind : dep_kind;
  carried : bool;
  distance : int option;  (** iterations, when exact *)
  dist_lo : int option;
      (** when [distance = None]: proven lower bound (>= 1) on the
          carried distance — strictly forward, symbolic distance *)
  through_memory : bool;  (** false: a scalar (register) dependence *)
}

type t = {
  nstmts : int;
  edges : edge list;
  refs : Subscript.reference list;
  analyzable : bool;  (** all statements are assignments, no calls *)
}

val kind_of :
  Subscript.access_kind -> Subscript.access_kind -> dep_kind option

val build :
  ?assume_noalias:bool ->
  trip:int option ->
  Stmt.t list ->
  index:int ->
  invariant:(Expr.t -> bool) ->
  t

(** Strongly connected components (Tarjan), in topological order of the
    condensation — the Allen–Kennedy codegen order. *)
val sccs : t -> int list list

(** Does the component carry a dependence around itself? *)
val has_carried_cycle : t -> int list -> bool

val self_carried : t -> int -> bool
val carried_edges : t -> edge list
