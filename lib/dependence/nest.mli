(** Loop-nest dependence analysis with direction vectors (paper §5–§7).
    Dependences of a perfect (or near-perfect) nest of normalized DO
    loops, depth 2–3, labeled with one <, =, > entry per nest level —
    the representation loop interchange and fusion legality need. *)

open Vpc_il

val max_depth : int

type level = {
  index : int;           (** the level's loop variable *)
  loop_stmt : Stmt.t;    (** original Do_loop statement (ids, locs) *)
  header : Stmt.do_loop;
  prefix : Stmt.t list;  (** nest-invariant scalar defs (limit temps)
                             textually before this loop; hoistable ahead
                             of the whole nest; [] for the outermost *)
  trip : Test.bound;
}

type edge = {
  src : int;  (** position of the source statement in the innermost body *)
  dst : int;
  kind : Graph.dep_kind;
  dirs : Test.direction list;
      (** per level, outermost first; normalized so the leading non-=
          entry is < (the source iteration precedes the sink) *)
}

type t = {
  levels : level list;  (** outermost first; length 2..max_depth *)
  body : Stmt.t list;   (** innermost body: memory stores only *)
  edges : edge list;
  refs : (Subscript.reference * Subscript.multi_affine) list;
}

val depth : t -> int
val indices : t -> int list

(** Structure only: the chain of normalized DO loops (each level a
    prefix of scalar assignments plus one inner loop) and the innermost
    body.  [None] below [min_depth] (default 2; fusion passes 1 to
    treat a flat loop as a unit). *)
val extract : ?min_depth:int -> Stmt.t -> (level list * Stmt.t list) option

(** Full analysis: [None] unless the nest is rectangular with hoistable
    prefixes, a stores-only innermost body, every reference affine in
    the nest indices, and all base aliasing exactly resolved. *)
val analyze :
  ?assume_noalias:bool ->
  ?min_depth:int ->
  prog:Prog.t ->
  func:Func.t ->
  Stmt.t ->
  t option

(** Lexicographic sign of a direction vector: 1 when the leading non-=
    entry is <, -1 when it is >, 0 when all =. *)
val lex_sign : Test.direction list -> int

(** Entry [k] of the result is entry [perm.(k)] of the input. *)
val permute : int array -> 'a list -> 'a list

(** Every permuted direction vector stays lexicographically
    non-negative. *)
val legal_permutation : int array -> t -> bool

(** Position (under [perm]) of the level carrying the edge: its leading
    non-= entry; [None] for a loop-independent dependence. *)
val carrier_level : int array -> edge -> int option

(** Would the innermost loop under [perm] carry any dependence? *)
val inner_carries : int array -> t -> bool
