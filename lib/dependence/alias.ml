(* Base-address alias analysis.

   C imposes no constraints on argument aliasing (§1 problem 5), so two
   distinct pointer variables may address the same storage; only named
   objects (&a vs &b) are certainly distinct.  The paper's escape hatches
   are reproduced: a loop pragma and a compiler option "that states that
   pointer parameters have Fortran semantics".

   A base decomposes into  root + constant + symbolic terms  where the
   symbolic terms are loop-invariant expressions (typically outer-loop
   subscript parts like 32*i).  Two bases with the same root and equal
   symbolic parts differ by a known byte distance; distinct named objects
   never alias whatever their offsets.

   Beyond the syntactic decomposition, an oracle installed by the driver
   (whole-program points-to analysis, lib/pointsto) may refine the
   May_alias fallbacks: when the oracle proves two addresses always land
   in disjoint objects the verdict becomes No_alias without any user
   assertion. *)

open Vpc_support
open Vpc_il

type root =
  | Object of int   (* &v: distinct variables are distinct storage *)
  | Pointer of int  (* the (invariant) value of pointer variable p *)

type canon = {
  root : root option;
  offset : int;           (* constant byte offset *)
  syms : Expr.t list;     (* symbolic addends, sorted canonically *)
}

type result =
  | No_alias
  | Must_alias of int  (* byte distance: base2 - base1 *)
  | May_alias

(* Interprocedural refinement: consulted wherever the syntactic analysis
   would answer May_alias.  Installed by the pipeline driver for the
   duration of one optimization run (Vpc.optimize), cleared afterwards so
   stale program facts never leak into a later compilation. *)
let oracle : (Expr.t -> Expr.t -> result option) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> fun _ _ -> None)
(* Domain-local: the compile server runs independent pipelines on
   separate domains, and each must see only its own program's graph. *)

(* Oracle installs invalidate memoized dependence verdicts downstream
   (Test's cache keys embed this), so every change bumps a counter. *)
let generation_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let generation () = !(Domain.DLS.get generation_key)

let set_oracle f =
  incr (Domain.DLS.get generation_key);
  Domain.DLS.set oracle f

let clear_oracle () =
  incr (Domain.DLS.get generation_key);
  Domain.DLS.set oracle (fun _ _ -> None)

let refine b1 b2 =
  match (Domain.DLS.get oracle) b1 b2 with Some r -> r | None -> May_alias

exception Not_canonical

(* [variant v] says variable [v] is redefined inside the region being
   analyzed.  A [Pointer p] root stands for "the value of p", which is
   only a usable base when that value is a single one — a pointer bumped
   in the loop body has no canonical form. *)
let rec decompose ~variant (e : Expr.t) : canon =
  match e.Expr.desc with
  | Expr.Addr_of v -> { root = Some (Object v); offset = 0; syms = [] }
  | Expr.Var p when Ty.is_pointer e.Expr.ty ->
      if variant p then raise Not_canonical
      else { root = Some (Pointer p); offset = 0; syms = [] }
  | Expr.Const_int c -> { root = None; offset = c; syms = [] }
  | Expr.Binop (Expr.Add, a, b) ->
      let ca = decompose ~variant a and cb = decompose ~variant b in
      let root =
        match ca.root, cb.root with
        | Some r, None | None, Some r -> Some r
        | None, None -> None
        | Some _, Some _ -> raise Not_canonical
      in
      { root; offset = ca.offset + cb.offset; syms = ca.syms @ cb.syms }
  | Expr.Binop (Expr.Sub, a, { desc = Expr.Const_int c; _ }) ->
      let ca = decompose ~variant a in
      { ca with offset = ca.offset - c }
  | Expr.Cast (ty, a) when Ty.is_pointer ty || Ty.is_integer ty ->
      decompose ~variant a
  | _ -> { root = None; offset = 0; syms = [ e ] }

let canonicalize ?(variant = fun _ -> false) (e : Expr.t) : canon option =
  (* fold constants first so structurally different spellings of the same
     address (&a + 8 + 8*i vs &a + 8*(1+i)) decompose identically; the
     spellings diverge when subscripts reach here through different chains
     of forward substitution (fused loop bodies especially) *)
  let e = Vpc_analysis.Simplify.expr e in
  match decompose ~variant e with
  | c ->
      let key x = Sexp.to_string (Expr.to_sexp x) in
      Some { c with syms = List.sort (fun a b -> compare (key a) (key b)) c.syms }
  | exception Not_canonical -> None

let syms_equal a b =
  List.length a = List.length b && List.for_all2 Expr.equal a b

(* [assume_noalias] is the Fortran-parameter-semantics option. *)
let bases ?(assume_noalias = false) ?variant (b1 : Expr.t) (b2 : Expr.t) :
    result =
  match canonicalize ?variant b1, canonicalize ?variant b2 with
  | Some c1, Some c2 -> (
      match c1.root, c2.root with
      | Some (Object v1), Some (Object v2) when v1 <> v2 ->
          (* distinct named objects never overlap, whatever the offsets *)
          No_alias
      | Some (Object v1), Some (Object v2) ->
          assert (v1 = v2);
          if syms_equal c1.syms c2.syms then Must_alias (c2.offset - c1.offset)
          else May_alias
      | Some (Pointer p1), Some (Pointer p2) ->
          if p1 = p2 && syms_equal c1.syms c2.syms then
            Must_alias (c2.offset - c1.offset)
          else if p1 = p2 then May_alias
          else if assume_noalias then No_alias
          else refine b1 b2
      | Some (Object _), Some (Pointer _) | Some (Pointer _), Some (Object _)
        ->
          (* a pointer parameter may point into any named object unless
             the option — or the points-to oracle — says otherwise *)
          if assume_noalias then No_alias else refine b1 b2
      | None, _ | _, None ->
          if c1.root = c2.root && syms_equal c1.syms c2.syms then
            Must_alias (c2.offset - c1.offset)
          else refine b1 b2)
  | _ -> refine b1 b2
