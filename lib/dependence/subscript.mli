(** Affine memory-reference extraction from DO-loop bodies.  After
    induction-variable substitution, interesting addresses have the form
    [base + coeff * k] with [base] loop-invariant and [coeff] a byte
    stride — both explicit subscripts and the [*(p + 4*i)] pointer form
    decompose identically ("the implicit representation of subscripts as
    star operations ... did require some special tuning", §9). *)

open Vpc_il

type affine = {
  base : Expr.t;  (** invariant byte address of the k = 0 element *)
  coeff : int;    (** byte stride per iteration *)
}

type access_kind = Read | Write

type reference = {
  ref_stmt : int;           (** id of the statement containing the access *)
  ref_pos : int;            (** top-level position within the body *)
  kind : access_kind;
  addr : Expr.t;
  affine : affine option;   (** when the address is affine in the index *)
  elt : Ty.t;
}

(** Decompose [e] as affine in [index]; [invariant] decides
    loop-invariance of subexpressions. *)
val affine_of :
  index:int -> invariant:(Expr.t -> bool) -> Expr.t -> affine option

type multi_affine = {
  mbase : Expr.t;       (** nest-invariant byte address of the origin *)
  mcoeffs : int array;  (** byte stride per nest level, outermost first *)
}

(** Decompose [e] as affine in all of [indices] (outermost first):
    [e = mbase + Σ mcoeffs.(k) * indices.(k)].  [invariant] must treat
    every nest index as variant. *)
val affine_multi :
  indices:int list ->
  invariant:(Expr.t -> bool) ->
  Expr.t ->
  multi_affine option

(** All loads within an expression, with their element types. *)
val loads_of : Expr.t -> (Expr.t * Ty.t) list -> (Expr.t * Ty.t) list

(** References of the body's top-level statements; [None] when the body
    contains anything other than assignments (calls, control flow) and so
    cannot be analyzed. *)
val references :
  index:int ->
  invariant:(Expr.t -> bool) ->
  Stmt.t list ->
  reference list option
