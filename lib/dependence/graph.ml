(* The statement dependence graph of a DO loop (paper §6): data
   dependences through memory (tested with §5's machinery) and through
   scalars, classified as loop-carried or loop-independent.  This graph
   drives vectorization, parallelization, scalar replacement, strength
   reduction, and instruction scheduling — "the dependence graph used in
   vectorization has a dual nature". *)

open Vpc_il

type dep_kind = Flow | Anti | Output

type edge = {
  src : int;  (* top-level position in the loop body *)
  dst : int;
  kind : dep_kind;
  carried : bool;
  distance : int option;  (* iterations, when exact *)
  dist_lo : int option;
      (* when [distance = None]: proven lower bound (>= 1) on the
         carried distance — the dependence is strictly forward but its
         exact distance is symbolic *)
  through_memory : bool;
}

type t = {
  nstmts : int;
  edges : edge list;
  refs : Subscript.reference list;  (* empty when unanalyzable *)
  analyzable : bool;  (* all statements are assignments, no calls *)
}

let kind_of (k1 : Subscript.access_kind) (k2 : Subscript.access_kind) =
  match k1, k2 with
  | Subscript.Write, Subscript.Read -> Some Flow
  | Subscript.Read, Subscript.Write -> Some Anti
  | Subscript.Write, Subscript.Write -> Some Output
  | Subscript.Read, Subscript.Read -> None

(* Scalar definitions and uses per top-level position. *)
let scalar_defs_uses (body : Stmt.t list) =
  List.mapi
    (fun pos (s : Stmt.t) ->
      let def =
        match s.Stmt.desc with
        | Stmt.Assign (Stmt.Lvar v, _) -> Some v
        | Stmt.Call (Some (Stmt.Lvar v), _, _) -> Some v
        | _ -> None
      in
      (pos, def, Stmt.shallow_uses s))
    body

let build ?(assume_noalias = false) ~trip (body : Stmt.t list) ~index
    ~invariant : t =
  let nstmts = List.length body in
  let edges = ref [] in
  let add_edge e = edges := e :: !edges in
  let refs, analyzable =
    match Subscript.references ~index ~invariant body with
    | Some refs -> (refs, true)
    | None -> ([], false)
  in
  (* --- memory dependences --- *)
  let arr = Array.of_list refs in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let r1 = arr.(i) and r2 = arr.(j) in
        (* consider each unordered pair once, with r1 the earlier
           statement (or same statement, i < j) *)
        let ordered =
          r1.Subscript.ref_pos < r2.Subscript.ref_pos
          || (r1.Subscript.ref_pos = r2.Subscript.ref_pos && i < j)
        in
        if ordered then
          match kind_of r1.Subscript.kind r2.Subscript.kind with
          | None -> ()
          | Some kind -> (
              match
                Test.references ~assume_noalias ~trip r1 r2 (Hashtbl.create 0)
              with
              | Test.Independent -> ()
              | Test.Dependent { distance; dist_lo } -> (
                  (* distance d: r2 touches the common location d
                     iterations after r1 (d < 0: before). *)
                  let ziv =
                    (* both addresses loop-invariant: the same location is
                       touched on EVERY iteration, so the dependence is
                       carried (every distance), not just same-iteration *)
                    match r1.Subscript.affine, r2.Subscript.affine with
                    | Some a1, Some a2 ->
                        a1.Subscript.coeff = 0 && a2.Subscript.coeff = 0
                    | _ -> false
                  in
                  match distance with
                  | Some 0 when ziv ->
                      add_edge
                        {
                          src = r1.Subscript.ref_pos;
                          dst = r2.Subscript.ref_pos;
                          kind;
                          carried = true;
                          distance = None;
                          dist_lo = None;
                          through_memory = true;
                        };
                      if r1.Subscript.ref_pos <> r2.Subscript.ref_pos then
                        add_edge
                          {
                            src = r2.Subscript.ref_pos;
                            dst = r1.Subscript.ref_pos;
                            kind =
                              (match kind with
                              | Flow -> Anti
                              | Anti -> Flow
                              | Output -> Output);
                            carried = true;
                            distance = None;
                            dist_lo = None;
                            through_memory = true;
                          }
                  | Some 0 ->
                      add_edge
                        {
                          src = r1.Subscript.ref_pos;
                          dst = r2.Subscript.ref_pos;
                          kind;
                          carried = false;
                          distance = Some 0;
                          dist_lo = None;
                          through_memory = true;
                        }
                  | Some d when d > 0 ->
                      add_edge
                        {
                          src = r1.Subscript.ref_pos;
                          dst = r2.Subscript.ref_pos;
                          kind;
                          carried = true;
                          distance = Some d;
                          dist_lo = None;
                          through_memory = true;
                        }
                  | Some d ->
                      (* r2's access precedes r1's by |d| iterations: the
                         dependence runs r2 → r1 with the dual kind *)
                      let dual =
                        match kind with
                        | Flow -> Anti
                        | Anti -> Flow
                        | Output -> Output
                      in
                      add_edge
                        {
                          src = r2.Subscript.ref_pos;
                          dst = r1.Subscript.ref_pos;
                          kind = dual;
                          carried = true;
                          distance = Some (-d);
                          dist_lo = None;
                          through_memory = true;
                        }
                  | None when (match dist_lo with Some l -> l >= 1 | None -> false)
                    ->
                      (* symbolic distance with proven lower bound >= 1:
                         strictly forward, so no dual reverse edge *)
                      add_edge
                        {
                          src = r1.Subscript.ref_pos;
                          dst = r2.Subscript.ref_pos;
                          kind;
                          carried = true;
                          distance = None;
                          dist_lo;
                          through_memory = true;
                        }
                  | None ->
                      (* unknown direction: edges both ways, carried *)
                      add_edge
                        {
                          src = r1.Subscript.ref_pos;
                          dst = r2.Subscript.ref_pos;
                          kind;
                          carried = true;
                          distance = None;
                          dist_lo = None;
                          through_memory = true;
                        };
                      if r1.Subscript.ref_pos <> r2.Subscript.ref_pos then
                        add_edge
                          {
                            src = r2.Subscript.ref_pos;
                            dst = r1.Subscript.ref_pos;
                            kind =
                              (match kind with
                              | Flow -> Anti
                              | Anti -> Flow
                              | Output -> Output);
                            carried = true;
                            distance = None;
                            dist_lo = None;
                            through_memory = true;
                          }))
      end
    done
  done;
  (* A store whose address does not advance with the index (ZIV) — or is
     not affine at all — hits the same (or an unknown) location on every
     iteration: the write order matters, a carried self output
     dependence.  The pair loop above only sees distinct references, so a
     lone such store would otherwise look dependence-free. *)
  Array.iter
    (fun (r : Subscript.reference) ->
      let invariant_or_opaque =
        match r.Subscript.affine with
        | Some a -> a.Subscript.coeff = 0
        | None -> true
      in
      if r.Subscript.kind = Subscript.Write && invariant_or_opaque then
        add_edge
          {
            src = r.Subscript.ref_pos;
            dst = r.Subscript.ref_pos;
            kind = Output;
            carried = true;
            distance = None;
            dist_lo = None;
            through_memory = true;
          })
    arr;
  (* --- scalar dependences --- *)
  let du = scalar_defs_uses body in
  let defs_of_var = Hashtbl.create 8 in
  List.iter
    (fun (pos, def, _) ->
      match def with
      | Some v ->
          Hashtbl.replace defs_of_var v
            (Option.value (Hashtbl.find_opt defs_of_var v) ~default:[] @ [ pos ])
      | None -> ())
    du;
  List.iter
    (fun (use_pos, _, uses) ->
      List.iter
        (fun v ->
          if v <> index then
            match Hashtbl.find_opt defs_of_var v with
            | None -> ()  (* defined outside: invariant read *)
            | Some def_positions ->
                List.iter
                  (fun def_pos ->
                    if def_pos < use_pos then
                      (* same-iteration flow *)
                      add_edge
                        {
                          src = def_pos;
                          dst = use_pos;
                          kind = Flow;
                          carried = false;
                          distance = Some 0;
                          dist_lo = None;
                          through_memory = false;
                        }
                    else begin
                      (* the use reads the previous iteration's def *)
                      add_edge
                        {
                          src = def_pos;
                          dst = use_pos;
                          kind = Flow;
                          carried = true;
                          distance = Some 1;
                          dist_lo = None;
                          through_memory = false;
                        };
                      (* and the def kills the value the use read: anti *)
                      add_edge
                        {
                          src = use_pos;
                          dst = def_pos;
                          kind = Anti;
                          carried = false;
                          distance = Some 0;
                          dist_lo = None;
                          through_memory = false;
                        }
                    end)
                  def_positions)
        uses)
    du;
  (* output dependences between multiple defs of the same scalar, and the
     carried self output-dependence of any scalar def (the last iteration
     must win) *)
  Hashtbl.iter
    (fun _ positions ->
      match positions with
      | [] -> ()
      | first :: _ ->
          let rec pairs = function
            | a :: (b :: _ as rest) ->
                add_edge
                  {
                    src = a;
                    dst = b;
                    kind = Output;
                    carried = false;
                    distance = Some 0;
                    dist_lo = None;
                    through_memory = false;
                  };
                pairs rest
            | [ _ ] | [] -> ()
          in
          pairs positions;
          ignore first)
    defs_of_var;
  { nstmts; edges = !edges; refs; analyzable }

(* Strongly connected components of the dependence graph (Tarjan),
   returned in topological order of the condensation — the Allen-Kennedy
   codegen ordering. *)
let rec sccs (t : t) : int list list =
  let succs = Array.make t.nstmts [] in
  List.iter
    (fun e ->
      if e.src <> e.dst && not (List.mem e.dst succs.(e.src)) then
        succs.(e.src) <- e.dst :: succs.(e.src))
    t.edges;
  let index = Array.make t.nstmts (-1) in
  let lowlink = Array.make t.nstmts 0 in
  let on_stack = Array.make t.nstmts false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to t.nstmts - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order. *)
  let comps = !components in
  (* Order components topologically and, among independent ones, by
     original statement position so codegen is stable. *)
  List.sort
    (fun c1 c2 -> compare (List.fold_left min max_int c1) (List.fold_left min max_int c2))
    comps
  |> topo_sort t

and topo_sort t comps =
  (* comps listed by min position; produce a topological order of the
     condensation respecting dependence edges. *)
  let comp_of = Hashtbl.create 16 in
  List.iteri
    (fun ci members -> List.iter (fun m -> Hashtbl.replace comp_of m ci) members)
    comps;
  let n = List.length comps in
  let comps_arr = Array.of_list comps in
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt comp_of e.src, Hashtbl.find_opt comp_of e.dst with
      | Some a, Some b when a <> b ->
          if not (List.mem b succs.(a)) then begin
            succs.(a) <- b :: succs.(a);
            indeg.(b) <- indeg.(b) + 1
          end
      | _ -> ())
    t.edges;
  (* Kahn with a position-ordered ready list *)
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if indeg.(i) = 0 then ready := i :: !ready
  done;
  let result = ref [] in
  let rec go () =
    match !ready with
    | [] -> ()
    | i :: rest ->
        ready := rest;
        result := comps_arr.(i) :: !result;
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then
              ready := List.sort compare (j :: !ready))
          succs.(i);
        go ()
  in
  go ();
  List.rev !result

(* Does component [members] carry a dependence around itself? *)
let has_carried_cycle t members =
  List.exists
    (fun e ->
      e.carried && List.mem e.src members && List.mem e.dst members)
    t.edges

(* Any carried dependence whose endpoints are this single statement. *)
let self_carried t pos =
  List.exists (fun e -> e.carried && e.src = pos && e.dst = pos) t.edges

let carried_edges t = List.filter (fun e -> e.carried) t.edges
