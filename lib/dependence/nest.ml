(* Loop-nest dependence analysis with direction vectors (paper §5–§7).

   Where [Graph] classifies edges of a single loop as carried or
   independent, this module analyzes a perfect (or near-perfect) nest of
   normalized DO loops, depth 2–3, and labels every dependence with a
   direction vector — one of <, =, > per nest level, outermost first.
   Direction vectors are what loop restructuring needs: interchange is
   legal exactly when every permuted vector stays lexicographically
   non-negative, and the level that carries a dependence is the first
   non-= entry.

   The nest is deliberately restricted to shapes the rest of the pipeline
   produces and the restructurers can handle exactly:
     - every level a normalized DO loop (lo 0, step 1), possibly preceded
       by nest-invariant scalar assignments (the while→DO limit temps);
     - rectangular bounds (each hi invariant over the whole nest);
     - an innermost body of memory stores only, every address affine in
       the nest indices with exactly-analyzed base aliasing.
   Anything else yields [None] and the nest is left alone. *)

open Vpc_il

let max_depth = 3

type level = {
  index : int;            (* the level's loop variable *)
  loop_stmt : Stmt.t;     (* original Do_loop statement (ids, locs) *)
  header : Stmt.do_loop;
  prefix : Stmt.t list;   (* nest-invariant scalar defs textually before
                             this loop inside the enclosing level; [] for
                             the outermost level *)
  trip : Test.bound;
}

type edge = {
  src : int;  (* position of the source statement in the innermost body *)
  dst : int;
  kind : Graph.dep_kind;
  dirs : Test.direction list;  (* per level, outermost first; normalized:
                                  the leading non-= entry is < *)
}

type t = {
  levels : level list;  (* outermost first; length 2..max_depth *)
  body : Stmt.t list;   (* innermost body: memory stores only *)
  edges : edge list;
  refs : (Subscript.reference * Subscript.multi_affine) list;
}

let depth t = List.length t.levels
let indices t = List.map (fun l -> l.index) t.levels

(* ---- structural extraction ---- *)

let normalized (d : Stmt.do_loop) =
  Expr.const_int_val d.lo = Some 0 && Expr.const_int_val d.step = Some 1

(* A level body is a prefix of scalar assignments followed by exactly one
   inner DO loop — or the innermost body. *)
let split_body (body : Stmt.t list) =
  let rec go acc = function
    | [ ({ Stmt.desc = Stmt.Do_loop _; _ } as s) ] -> Some (List.rev acc, s)
    | ({ Stmt.desc = Stmt.Assign (Stmt.Lvar _, _); _ } as a) :: rest ->
        go (a :: acc) rest
    | _ -> None
  in
  go [] body

let extract ?(min_depth = 2) (s : Stmt.t) : (level list * Stmt.t list) option =
  let rec go depth prefix (s : Stmt.t) =
    match s.Stmt.desc with
    | Stmt.Do_loop d when normalized d && depth < max_depth -> (
        let lvl =
          {
            index = d.index;
            loop_stmt = s;
            header = d;
            prefix;
            trip = Option.map (fun h -> h + 1) (Expr.const_int_val d.hi);
          }
        in
        match split_body d.body with
        | Some (pfx, inner) -> (
            match go (depth + 1) pfx inner with
            | Some (levels, body) -> Some (lvl :: levels, body)
            | None -> Some ([ lvl ], d.body))
        | None -> Some ([ lvl ], d.body))
    | _ -> None
  in
  match go 0 [] s with
  | Some (levels, body) when List.length levels >= min_depth ->
      Some (levels, body)
  | _ -> None

(* ---- dependence analysis ---- *)

let dual (k : Graph.dep_kind) : Graph.dep_kind =
  match k with Graph.Flow -> Graph.Anti | Graph.Anti -> Graph.Flow
  | Graph.Output -> Graph.Output

let reverse_dirs dirs =
  List.map
    (function Test.Lt -> Test.Gt | Test.Gt -> Test.Lt | Test.Eq -> Test.Eq)
    dirs

(* Lexicographic sign of a vector: -1 when the leading non-= is >. *)
let lex_sign dirs =
  let rec go = function
    | [] -> 0
    | Test.Eq :: rest -> go rest
    | Test.Lt :: _ -> 1
    | Test.Gt :: _ -> -1
  in
  go dirs

let analyze ?(assume_noalias = false) ?(min_depth = 2) ~prog
    ~(func : Func.t) (s : Stmt.t) : t option =
  match extract ~min_depth s with
  | None -> None
  | Some (levels, body) ->
      let idxs = List.map (fun l -> l.index) levels in
      let defined_in, mem_written =
        Vpc_analysis.Reaching.vars_defined_in [ s ]
      in
      let unsafe_vars = Func.addressed_vars func in
      (* scalar def counts across the whole nest: a prefix temp may be
         treated as invariant only if its one def is that prefix assign *)
      let def_count = Hashtbl.create 8 in
      Stmt.iter
        (fun st ->
          match Stmt.defined_var st with
          | Some v ->
              Hashtbl.replace def_count v
                (1 + Option.value (Hashtbl.find_opt def_count v) ~default:0)
          | None -> ())
        s;
      let hoisted = Hashtbl.create 4 in
      let invariant_var v =
        (not (List.mem v idxs))
        && ((not (Hashtbl.mem defined_in v)) || Hashtbl.mem hoisted v)
        && ((not mem_written) || not (Hashtbl.mem unsafe_vars v))
        &&
        match Prog.find_var prog (Some func) v with
        | Some vm -> not vm.Var.volatile
        | None -> false
      in
      let invariant (e : Expr.t) =
        ((not (Expr.contains_load e)) || not mem_written)
        && List.for_all invariant_var (Expr.read_vars e)
      in
      (* the limit temps of inner levels: single-assignment, invariant
         rhs — safe to hoist ahead of the whole nest *)
      let prefix_ok =
        List.for_all
          (fun (lvl : level) ->
            List.for_all
              (fun (p : Stmt.t) ->
                match p.Stmt.desc with
                | Stmt.Assign (Stmt.Lvar v, rhs)
                  when invariant rhs
                       && Hashtbl.find_opt def_count v = Some 1
                       && not (Hashtbl.mem unsafe_vars v) ->
                    Hashtbl.replace hoisted v ();
                    true
                | _ -> false)
              lvl.prefix)
          levels
      in
      let rectangular =
        List.for_all (fun l -> invariant l.header.Stmt.hi) levels
      in
      let stores_only =
        body <> []
        && List.for_all
             (fun (st : Stmt.t) ->
               match st.Stmt.desc with
               | Stmt.Assign (Stmt.Lmem _, _) -> true
               | _ -> false)
             body
      in
      (* every scalar an rhs reads must be an index or nest-invariant:
         stores cannot then change any value a later iteration reads
         except through the tracked memory references *)
      let clean_reads =
        List.for_all
          (fun st ->
            List.for_all
              (fun v -> List.mem v idxs || invariant_var v)
              (Stmt.shallow_uses st))
          body
      in
      if not (prefix_ok && rectangular && stores_only && clean_reads) then
        None
      else
        let inner_index = List.nth idxs (List.length idxs - 1) in
        match Subscript.references ~index:inner_index ~invariant body with
        | None -> None
        | Some refs -> (
            let multis =
              List.map
                (fun (r : Subscript.reference) ->
                  ( r,
                    Subscript.affine_multi ~indices:idxs ~invariant
                      r.Subscript.addr ))
                refs
            in
            if List.exists (fun (_, m) -> m = None) multis then None
            else
              let pairs =
                List.map (fun (r, m) -> (r, Option.get m)) multis
              in
              let trips =
                Array.of_list (List.map (fun l -> l.trip) levels)
              in
              let arr = Array.of_list pairs in
              let n = Array.length arr in
              let edges = ref [] in
              let exception Unanalyzable in
              try
                for i = 0 to n - 1 do
                  for j = i to n - 1 do
                    let r1, m1 = arr.(i) and r2, m2 = arr.(j) in
                    let kind =
                      if i = j then
                        if r1.Subscript.kind = Subscript.Write then
                          Some Graph.Output
                        else None
                      else Graph.kind_of r1.Subscript.kind r2.Subscript.kind
                    in
                    match kind with
                    | None -> ()
                    | Some kind -> (
                        match
                          Alias.bases ~assume_noalias m1.Subscript.mbase
                            m2.Subscript.mbase
                        with
                        | Alias.No_alias -> ()
                        | Alias.May_alias -> raise Unanalyzable
                        | Alias.Must_alias delta ->
                            let vectors =
                              Test.direction_vectors
                                ~c1:m1.Subscript.mcoeffs
                                ~c2:m2.Subscript.mcoeffs ~delta ~trips
                            in
                            List.iter
                              (fun dirs ->
                                match lex_sign dirs with
                                | 0 ->
                                    (* same iteration: a dependence only
                                       between distinct references, in
                                       textual order *)
                                    if i <> j then
                                      edges :=
                                        {
                                          src = r1.Subscript.ref_pos;
                                          dst = r2.Subscript.ref_pos;
                                          kind;
                                          dirs;
                                        }
                                        :: !edges
                                | 1 ->
                                    edges :=
                                      {
                                        src = r1.Subscript.ref_pos;
                                        dst = r2.Subscript.ref_pos;
                                        kind;
                                        dirs;
                                      }
                                      :: !edges
                                | _ ->
                                    (* source iteration after sink: the
                                       dependence really runs r2 → r1
                                       with the dual kind and reversed
                                       vector.  For a self pair the
                                       mirrored < vector already covers
                                       it. *)
                                    if i <> j then
                                      edges :=
                                        {
                                          src = r2.Subscript.ref_pos;
                                          dst = r1.Subscript.ref_pos;
                                          kind = dual kind;
                                          dirs = reverse_dirs dirs;
                                        }
                                        :: !edges)
                              vectors)
                  done
                done;
                Some { levels; body; edges = List.rev !edges; refs = pairs }
              with Unanalyzable -> None)

(* ---- direction-vector utilities for restructuring ---- *)

(* Apply permutation [perm] to a per-level list: entry k of the result is
   the original entry perm.(k). *)
let permute (perm : int array) (xs : 'a list) : 'a list =
  let a = Array.of_list xs in
  Array.to_list (Array.map (fun k -> a.(k)) perm)

(* Interchange legality: every permuted direction vector must stay
   lexicographically non-negative (its leading non-= entry <), else the
   permutation would run some dependence sink before its source. *)
let legal_permutation (perm : int array) (t : t) : bool =
  List.for_all (fun e -> lex_sign (permute perm e.dirs) >= 0) t.edges

(* The nest level (position under [perm]) that carries edge [e]:
   position of the leading non-= entry, or [None] for a loop-independent
   dependence. *)
let carrier_level (perm : int array) (e : edge) : int option =
  let rec go k = function
    | [] -> None
    | Test.Eq :: rest -> go (k + 1) rest
    | _ -> Some k
  in
  go 0 (permute perm e.dirs)

(* Would the innermost loop under [perm] carry any dependence?  If not,
   the inner loop's iterations are independent — vectorizable. *)
let inner_carries (perm : int array) (t : t) : bool =
  let inner = Array.length perm - 1 in
  List.exists (fun e -> carrier_level perm e = Some inner) t.edges
