(** Dependence tests on affine single-index subscripts: ZIV, strong SIV,
    GCD, and Banerjee bounds [Bane 76, Wolf 78, Alle 83].

    Reference 1 touches [D1 + c1*i], reference 2 [D2 + c2*j], for
    iterations in [0, trip); [delta = D2 - D1] comes from alias analysis.
    A dependence exists iff [c1*i - c2*j = delta] has a solution in
    range. *)

type verdict =
  | Independent
  | Dependent of { distance : int option; dist_lo : int option }
      (** [distance d]: reference 2 touches the common location [d]
          iterations after reference 1 ([d] < 0: before); [None]:
          unknown or varying.  [dist_lo] (meaningful only when
          [distance = None]): [Some l], l >= 1, asserts every solution
          is at distance >= l — the dependence is strictly forward but
          its exact distance is symbolic (proven from the range oracle's
          interval). *)

(** [dep ?dist_lo distance] builds a [Dependent] verdict ([dist_lo]
    defaults to [None]). *)
val dep : ?dist_lo:int -> int option -> verdict

val gcd : int -> int -> int

type bound = int option  (** iteration count; [None] = unknown *)

val ziv : delta:int -> verdict
val strong_siv : c:int -> delta:int -> trip:bound -> verdict

(** One reference invariant (stride 0): at most one conflicting
    iteration. *)
val weak_zero_siv : c:int -> delta:int -> trip:bound -> verdict
val gcd_test : c1:int -> c2:int -> delta:int -> bool
val banerjee : c1:int -> c2:int -> delta:int -> trip:bound -> bool

(** The dispatcher: picks the strongest applicable test.  Sound: never
    reports [Independent] when a conflict exists (property-tested against
    brute force). *)
val affine : c1:int -> c2:int -> delta:int -> trip:bound -> verdict

type direction = Lt | Eq | Gt
(** Per-level iteration-order relation of a nest dependence: the source
    iteration is before ([Lt]), equal to ([Eq]), or after ([Gt]) the sink
    iteration at that level. *)

(** Feasible direction vectors for the dependence equation
    [Σ c1.(k)*i_k - Σ c2.(k)*j_k = delta] over [0 <= i_k, j_k <
    trips.(k)], one entry per nest level, outermost first.  Sound
    (GCD + per-level interval bounds): never omits a feasible vector. *)
val direction_vectors :
  c1:int array ->
  c2:int array ->
  delta:int ->
  trips:bound array ->
  direction list list

(** {1 Symbolic range oracle}

    When alias analysis answers May_alias, the byte distance between the
    bases is symbolic.  A scoped oracle — installed by the vectorizer
    from the range analysis — evaluates it: a point distance re-enters
    {!affine}; an interval feeds {!interval_affine}.  Without an
    installed oracle May_alias stays [Dependent]. *)

type oracle = {
  interval : Vpc_il.Expr.t -> int option * int option;
      (** sound bounds on an integer expression at the tested loop;
          [(None, None)] when nothing is known *)
  note : Vpc_il.Expr.t -> string -> unit;
      (** called when a dependence survives only because the range was
          too weak: the distance expression and what is known of it
          (feeds [--why-scalar]) *)
}

val with_oracle : oracle -> (unit -> 'a) -> 'a

(** Interval form of {!affine}: [delta] only known in [dlo, dhi] (either
    side possibly unbounded).  Sound: [Independent] only when no value
    in the interval admits a solution (no multiple of gcd(c1,c2) inside,
    or the interval clears the Banerjee span). *)
val interval_affine :
  c1:int -> c2:int -> dlo:int option -> dhi:int option -> trip:bound -> verdict

(** Test two extracted references (affine decomposition + alias
    analysis); conservative when either is non-affine.  Verdicts are
    memoized per domain, keyed on the canonicalized subscript pair, the
    trip bound, [assume_noalias], and the generations of both installed
    oracles (range and points-to) — see {!cache_stats}. *)
val references :
  ?assume_noalias:bool ->
  trip:bound ->
  Subscript.reference ->
  Subscript.reference ->
  (string, Vpc_il.Ty.struct_def) Hashtbl.t ->
  verdict

(** [(hits, lookups)] of the domain's memoized {!references} cache since
    the domain started; [--timings] prints the hit rate. *)
val cache_stats : unit -> int * int
