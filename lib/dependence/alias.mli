(** Base-address alias analysis.  C imposes no constraints on argument
    aliasing (§1), so distinct pointer variables may address the same
    storage; only named objects are certainly distinct.  The paper's
    escape hatches are reproduced: the per-loop pragma and the compiler
    option giving pointer parameters Fortran semantics.  A third,
    sound source of disjointness is the whole-program points-to oracle
    installed by the driver (see {!set_oracle}). *)

open Vpc_il

type root =
  | Object of int   (** [&v]: distinct variables are distinct storage *)
  | Pointer of int  (** the (invariant) value of pointer variable [p] *)

(** [root + offset + syms]: constant byte offset plus symbolic invariant
    addends (e.g. an outer loop's [32*i]). *)
type canon = { root : root option; offset : int; syms : Expr.t list }

type result =
  | No_alias
  | Must_alias of int  (** byte distance: base2 - base1 *)
  | May_alias

(** [canonicalize ?variant e] decomposes a base address.  [variant v]
    marks variables redefined inside the analyzed region: a pointer root
    whose variable is variant has no single value and the decomposition
    fails (returns [None]) rather than pretending invariance. *)
val canonicalize : ?variant:(int -> bool) -> Expr.t -> canon option

(** Alias verdict for two base addresses.  Same root and equal symbolic
    parts give an exact distance; distinct named objects never alias;
    [assume_noalias] separates unrelated pointers; otherwise the
    points-to oracle, when installed, may still prove the pair disjoint
    before the [May_alias] fallback. *)
val bases :
  ?assume_noalias:bool -> ?variant:(int -> bool) -> Expr.t -> Expr.t -> result

(** Install the interprocedural refinement consulted at [May_alias]
    fallbacks.  The function must be sound for any two address
    expressions of the current program: [Some No_alias] only if the
    addresses can never overlap, [Some (Must_alias d)] only if they are
    always exactly [d] bytes apart. *)
val set_oracle : (Expr.t -> Expr.t -> result option) -> unit

(** Remove the installed oracle (restores pure syntactic behavior). *)
val clear_oracle : unit -> unit

(** Domain-local counter bumped by {!set_oracle}/{!clear_oracle}; cache
    keys that embed alias verdicts include it so an oracle change never
    revives a stale entry. *)
val generation : unit -> int
