(** Diagnostics: errors and warnings carrying source locations. *)

type severity = Error | Warning

type t = { severity : severity; loc : Loc.t; message : string }

(** Raised by [error]: a user-facing front-end or semantic error. *)
exception Error_exn of t

(** Raised by [internal]: an invariant the compiler itself broke. *)
exception Internal of string

(** [error ~loc fmt ...] raises {!Error_exn}; never returns. *)
val error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [internal fmt ...] raises {!Internal}; never returns. *)
val internal : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Warnings accumulated by the current domain, oldest first; they are
    collected rather than printed so tests can assert on them.  Each
    domain has its own buffer. *)
val warnings : unit -> t list

val reset_warnings : unit -> unit
val warn : ?loc:Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val pp : Format.formatter -> t -> unit
val to_string : t -> string
