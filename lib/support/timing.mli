(** Per-phase wall-clock self-profile ([titancc --timings]).

    A [t] accumulates elapsed seconds into named buckets in first-use
    order.  Phases may nest; each bucket records its full span, so
    nested buckets overlap and the printed total is the sum of buckets,
    not end-to-end wall time. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t phase f] runs [f], charging its wall time to [phase]
    (accumulating across calls).  Exceptions still charge the bucket. *)

val add : t -> string -> float -> unit
(** Charge [seconds] measured externally to a bucket. *)

val phases : t -> (string * float) list
(** Buckets in first-use order. *)

val total : t -> float

val to_string : t -> string
(** The [--timings] table: one [[timings] phase seconds percent] line
    per bucket plus a total line. *)

val report : t -> out_channel -> unit
