(* Diagnostics: errors and warnings carrying source locations.  Front-end
   and semantic errors raise [Error]; passes that detect internal
   inconsistencies raise [Internal]. *)

type severity = Error | Warning

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
}

exception Error_exn of t
exception Internal of string

let error ?(loc = Loc.dummy) fmt =
  Format.kasprintf
    (fun message -> raise (Error_exn { severity = Error; loc; message }))
    fmt

let internal fmt = Format.kasprintf (fun m -> raise (Internal m)) fmt

(* Warnings are collected rather than printed so tests can assert on
   them.  The buffer is domain-local so concurrent server compiles do
   not interleave their diagnostics. *)
let warning_buf : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let warnings () = List.rev !(Domain.DLS.get warning_buf)

let reset_warnings () = Domain.DLS.get warning_buf := []

let warn ?(loc = Loc.dummy) fmt =
  Format.kasprintf
    (fun message ->
      let buf = Domain.DLS.get warning_buf in
      buf := { severity = Warning; loc; message } :: !buf)
    fmt

let pp ppf t =
  let tag = match t.severity with Error -> "error" | Warning -> "warning" in
  Fmt.pf ppf "%a: %s: %s" Loc.pp t.loc tag t.message

let to_string t = Fmt.str "%a" pp t
