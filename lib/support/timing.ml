(* Per-phase wall-clock self-profile.  A [t] accumulates seconds into
   named buckets in first-use order; the compiler driver wraps each
   pipeline phase in [time], and [--timings] prints the table so cache
   hits in server mode are attributable to the phases they skip. *)

type t = {
  mutable phases : (string * float ref) list;  (* reversed first-use order *)
}

let create () = { phases = [] }

let bucket t name =
  match List.assoc_opt name t.phases with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      t.phases <- (name, r) :: t.phases;
      r

let add t name seconds =
  let r = bucket t name in
  r := !r +. seconds

let time t name f =
  let r = bucket t name in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> r := !r +. (Unix.gettimeofday () -. t0)) f

let phases t = List.rev_map (fun (name, r) -> (name, !r)) t.phases

let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (phases t)

(* One line per phase, widest bucket first-use order preserved:
     [timings] parse         0.004s  12.3%
   Milliseconds would overflow on big monorepo batches; seconds with
   three decimals reads fine at both scales. *)
let to_string t =
  let ph = phases t in
  let tot = total t in
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 5 ph
  in
  let line (name, s) =
    Printf.sprintf "[timings] %-*s %8.3fs %5.1f%%" width name s
      (if tot > 0.0 then 100.0 *. s /. tot else 0.0)
  in
  String.concat "\n" (List.map line ph @ [ line ("total", tot) ])

let report t oc = output_string oc (to_string t ^ "\n")
