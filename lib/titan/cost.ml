(* The Titan timing model.  Parameters are calibrated so the machine's
   published character holds: a 16 MHz multi-processor whose pipelined
   floating-point unit needs vector instructions to stay full (§2), where
   a well-scheduled scalar loop runs a few times faster than a naive one
   (§6's 0.5 → 1.9 MFLOPS) and a vectorized, two-processor loop runs an
   order of magnitude faster than scalar code (§9's 12×). *)

type unit_ = IU | FPU | MEM | CTRL

(* issue interval (pipelined units accept one op per cycle), result
   latency *)
type op_cost = { unit_ : unit_; issue : int; latency : int }

let imov = { unit_ = IU; issue = 1; latency = 1 }
let ialu = { unit_ = IU; issue = 1; latency = 1 }
let imul = { unit_ = IU; issue = 2; latency = 5 }
let idiv = { unit_ = IU; issue = 12; latency = 18 }
let falu = { unit_ = FPU; issue = 1; latency = 8 }
let fmul = { unit_ = FPU; issue = 1; latency = 8 }
let fdiv = { unit_ = FPU; issue = 12; latency = 22 }
let fcvt = { unit_ = FPU; issue = 1; latency = 4 }
let load = { unit_ = MEM; issue = 1; latency = 6 }
let store = { unit_ = MEM; issue = 1; latency = 1 }
let branch = { unit_ = CTRL; issue = 1; latency = 2 }
let jump = { unit_ = CTRL; issue = 1; latency = 1 }

(* vector operations: startup + one element per cycle *)
let vector_startup_mem = 14
let vector_startup_fpu = 8
let viota_startup = 4

(* call/return overhead beyond the callee's own cycles *)
let call_overhead = 16
let ret_overhead = 4

(* synchronization barrier closing a parallel loop *)
let barrier_cycles = 120

let clock_mhz = 16.0

(* ----------------------------------------------------------------- *)
(* Loop-cost estimates for profile-guided decisions                   *)
(* ----------------------------------------------------------------- *)

(* The vectorizer's static heuristics cannot see trip counts; when a
   profile supplies them, these estimates — calibrated against the
   simulator's scheduling models above — let it choose serial vs vector
   vs do-parallel and pick strip lengths.  A [shape] summarizes one loop
   iteration by its operation mix. *)

type sched = Seq | Conservative | Full

let sched_of_name = function
  | "seq" -> Seq
  | "conservative" -> Conservative
  | _ -> Full

type shape = {
  mem_refs : int;  (* loads + stores per iteration *)
  flops : int;     (* floating-point ALU ops per iteration *)
  iops : int;      (* integer ALU ops per iteration *)
}

(* Operation mix of a statement list treated as one loop iteration. *)
let shape_of_stmts (stmts : Vpc_il.Stmt.t list) : shape =
  let open Vpc_il in
  let mem = ref 0 and flops = ref 0 and iops = ref 0 in
  let count_expr e =
    Expr.iter
      (fun (e : Expr.t) ->
        match e.Expr.desc with
        | Expr.Load _ -> incr mem
        | Expr.Binop _ | Expr.Unop _ ->
            if Ty.is_float e.Expr.ty then incr flops else incr iops
        | _ -> ())
      e
  in
  List.iter
    (fun s ->
      Stmt.iter
        (fun (s : Stmt.t) ->
          List.iter count_expr (Stmt.shallow_exprs s);
          match s.Stmt.desc with
          | Stmt.Assign (Stmt.Lmem _, _) -> incr mem (* the store itself *)
          | _ -> ())
        s)
    stmts;
  { mem_refs = !mem; flops = !flops; iops = !iops }

let add_shape a b =
  {
    mem_refs = a.mem_refs + b.mem_refs;
    flops = a.flops + b.flops;
    iops = a.iops + b.iops;
  }

(* Steady-state cycles of one serial scalar iteration, including the
   index increment and loop-closing branch (+2 ops). *)
let scalar_iter_cycles ~sched (s : shape) =
  match sched with
  | Full ->
      (* dataflow-limited: bounded by the single memory port, the FPU,
         and the machine's 4-wide issue floor *)
      let total = s.mem_refs + s.flops + s.iops + 2 in
      max 1 (max s.mem_refs (max s.flops ((total + 3) / 4)))
  | Conservative ->
      (* in-order issue; every load waits on earlier stores *)
      (s.mem_refs * (load.issue + 2)) + s.flops + s.iops + branch.latency
  | Seq ->
      (s.mem_refs * load.latency) + (s.flops * falu.latency) + s.iops
      + branch.latency

let scalar_loop_cycles ~sched (s : shape) ~trips =
  trips * scalar_iter_cycles ~sched s

(* A do-parallel serial-bodied loop: round-robin buckets + barrier. *)
let parallel_scalar_cycles ~sched (s : shape) ~trips ~procs =
  if procs <= 1 then scalar_loop_cycles ~sched s ~trips
  else
    (((trips + procs - 1) / procs) * scalar_iter_cycles ~sched s)
    + barrier_cycles

(* One vector strip of [len] elements.  The vector instructions of a
   strip form a dependence chain through the single memory port and the
   FPU, so their busy times add. *)
let vector_strip_cycles (s : shape) ~len =
  (s.mem_refs * (vector_startup_mem + len))
  + (s.flops * (vector_startup_fpu + len))

(* A whole vectorized loop: short vector (no strip loop) when the trip
   count fits in one strip, otherwise strip-mined, optionally spread
   over processors with a closing barrier. *)
let vector_loop_cycles (s : shape) ~trips ~vlen ~procs ~parallel =
  if trips <= 0 then 0
  else if trips <= vlen then vector_strip_cycles s ~len:trips
  else begin
    let full = trips / vlen and rem = trips mod vlen in
    let strip = vector_strip_cycles s ~len:vlen in
    if (not parallel) || procs <= 1 then
      (full * strip)
      + (if rem > 0 then vector_strip_cycles s ~len:rem else 0)
    else
      let strips = full + if rem > 0 then 1 else 0 in
      (((strips + procs - 1) / procs) * strip) + barrier_cycles
  end

(* Best vector-side cost at a given trip count (serial strips vs spread
   over processors), for the break-even search and reports. *)
let best_vector_cycles (s : shape) ~trips ~vlen ~procs ~parallelize =
  let serial = vector_loop_cycles s ~trips ~vlen ~procs:1 ~parallel:false in
  if parallelize && procs > 1 then
    min serial (vector_loop_cycles s ~trips ~vlen ~procs ~parallel:true)
  else serial

(* ----------------------------------------------------------------- *)
(* Memory-port traffic under vector-register reuse                    *)
(* ----------------------------------------------------------------- *)

(* One vector strip of [len] elements when [resident] of the strip's
   [mem_refs] references stay in vector registers (an accumulator held
   across the enclosing loop counts its load AND its store).  With the
   memory traffic thinned out, the port and the FPU genuinely overlap —
   the strip costs whichever unit is busier, not the sum of both. *)
let strip_port_cycles (s : shape) ~len ~resident =
  let mem = max 0 (s.mem_refs - resident) in
  let mem_busy = mem * (vector_startup_mem + len) in
  let fpu_busy = s.flops * (vector_startup_fpu + len) in
  max 1 (max mem_busy fpu_busy)

(* A vectorized loop of [trips] elements repeated [reps] times (once per
   iteration of an enclosing serial loop) with [resident] references kept
   in registers across all repetitions: each repetition pays only the
   thinned-out port traffic, and the one-time load-before/store-after of
   the resident values is amortized over the repetitions. *)
let reuse_vector_loop_cycles (s : shape) ~trips ~vlen ~resident ~reps =
  if trips <= 0 then 0
  else begin
    let strip len = strip_port_cycles s ~len ~resident in
    let body =
      if trips <= vlen then strip trips
      else
        let full = trips / vlen and rem = trips mod vlen in
        (full * strip vlen) + if rem > 0 then strip rem else 0
    in
    let reps = max 1 reps in
    let edge = resident * 2 * (vector_startup_mem + min trips vlen) in
    body + ((edge + reps - 1) / reps)
  end

(* ----------------------------------------------------------------- *)
(* Doacross pipelining                                                *)
(* ----------------------------------------------------------------- *)

(* The post/wait counter primitives: a post stamps a per-loop iteration
   counter, a wait spins until the producer iteration's stamp appears.
   Both are cheap scalar operations on the shared synchronization RAM. *)
let post_cycles = 4
let wait_cycles = 6

(* One synchronized carried edge of a doacross candidate, summarized for
   the pipeline model: cycle offsets of the post (completion of the source
   statement) and the wait (start of the destination statement) within a
   single iteration, plus the carried distance in iterations. *)
type dedge = { post_offset : int; wait_offset : int; ddist : int }

(* Per-iteration pipeline delay.  Edge (p, w, d) forces iteration i to
   hold its wait point until iteration i-d clears its post point, so the
   iteration-start spacing is at least (p - w + sync cost) / d; the
   round-robin assignment bounds it below by iter/procs (P iterations in
   flight share a processor).  The per-iteration delay of the loop is the
   max over its edges and the processor bound. *)
let doacross_iter_delay ~iter_cycles ~procs (edges : dedge list) =
  let edge_delay (e : dedge) =
    let lag = e.post_offset - e.wait_offset + post_cycles + wait_cycles in
    let d = max 1 e.ddist in
    if lag <= 0 then 0 else (lag + d - 1) / d
  in
  List.fold_left
    (fun acc e -> max acc (edge_delay e))
    ((iter_cycles + max 1 procs - 1) / max 1 procs)
    edges

(* Whole doacross loop: pipeline fill (the first iteration runs in full)
   plus one delay per remaining iteration plus the closing barrier.  Each
   iteration also pays its own post/wait instructions, folded into
   [iter_cycles] here. *)
let doacross_loop_cycles ~sched (s : shape) ~trips ~procs
    (edges : dedge list) =
  if trips <= 0 then 0
  else begin
    let sync = List.length edges * (post_cycles + wait_cycles) in
    let iter = scalar_iter_cycles ~sched s + sync in
    if procs <= 1 then (trips * iter) + barrier_cycles
    else
      let delay = doacross_iter_delay ~iter_cycles:iter ~procs edges in
      iter + ((trips - 1) * delay) + barrier_cycles
  end

(* ----------------------------------------------------------------- *)
(* Nest-traversal estimates for loop restructuring                    *)
(* ----------------------------------------------------------------- *)

(* Trip count assumed when neither the bounds nor a profile reveal one:
   restructuring decisions then favor the moderately-long loops the
   Titan was built for. *)
let default_trip = 64

(* Control overhead of entering a counted loop once: index and limit
   setup plus the initial test — paid again on every iteration of the
   enclosing loop, which is what makes deep nests with tiny inner trips
   expensive and fusion profitable. *)
let loop_overhead_cycles = 4

(* The Titan's interleaved memory banks reward small strides; the
   simulator's port model does not time this, so the penalty is kept at
   one cycle per wide-strided reference — enough to break ties between
   otherwise equal loop orders toward stride-1 innermost access, never
   enough to override a vectorizability difference. *)
let strided_mem_penalty ~bytes = if bytes >= -8 && bytes <= 8 then 0 else 1

(* Whole-nest cycles under one loop order: the innermost loop (vector or
   scalar, [vectorizable] says which) runs once per combination of outer
   iterations, each level's entry overhead is paid per enclosing
   iteration, and each inner iteration pays the stride penalty of its
   memory references ([inner_strides], bytes per innermost iteration). *)
let nest_order_cycles ~sched ?(pgo_gates = false) (s : shape)
    ~(trips : int array) ~vlen ~procs ~parallelize ~vectorizable
    ~(inner_strides : int list) =
  let depth = Array.length trips in
  let outer = ref 1 in
  for k = 0 to depth - 2 do
    outer := !outer * max 0 trips.(k)
  done;
  let outer = !outer in
  let inner = max 0 trips.(depth - 1) in
  let inner_cost =
    if vectorizable then begin
      let vc = best_vector_cycles s ~trips:inner ~vlen ~procs ~parallelize in
      (* Under profile-guided compilation a vectorizable innermost loop
         is an option, not an obligation: the vectorizer's PGO gate keeps
         it scalar when that is cheaper, so price the order at the better
         of the two.  Without the [min], an order whose vector form loses
         to scalar code is charged the vector cost and a better-strided
         order can lose the comparison outright — the matmul ijk/ikj tie
         then never reaches the stride tie-break at low processor
         counts.  Without a profile the static vectorizer vectorizes
         unconditionally, so the vector price stands. *)
      if pgo_gates then min vc (scalar_loop_cycles ~sched s ~trips:inner)
      else vc
    end
    else scalar_loop_cycles ~sched s ~trips:inner
  in
  let rec overhead k enclosing =
    if k >= depth then 0
    else
      (enclosing * loop_overhead_cycles)
      + overhead (k + 1) (enclosing * max 0 trips.(k))
  in
  let stride_pen =
    List.fold_left (fun acc st -> acc + strided_mem_penalty ~bytes:st) 0
      inner_strides
  in
  (outer * inner_cost) + overhead 0 1 + (outer * inner * stride_pen)

(* Smallest trip count at which the vector form beats scalar code, or
   [None] if it never does (within a generous horizon).  Under the full
   scheduling model a single processor's scalar loop is memory-port
   bound just like the vector unit, so vectorization only pays once
   barrier and startup costs amortize across processors. *)
let vector_break_even ~sched (s : shape) ~vlen ~procs ~parallelize =
  let beats t =
    best_vector_cycles s ~trips:t ~vlen ~procs ~parallelize
    < scalar_loop_cycles ~sched s ~trips:t
  in
  let rec scan t = if t > 65536 then None else if beats t then Some t else scan (t + 1) in
  scan 1
