(** Code generation from optimized IL to Titan instructions.  Scalars
    live in virtual registers unless address-taken or volatile (volatile
    accesses are marked memory operations the simulator never reorders or
    caches, §1); vector statements map onto vector loads/ALU ops/stores;
    a parallel DO loop is bracketed with Par_enter/Par_iter/Par_exit
    markers the simulator uses to spread iterations over processors. *)

open Vpc_il

exception Codegen_error of string

(** [gen_func prog ~global_addr f]: compile one function; [global_addr]
    resolves a global variable id to its absolute address (from
    {!Machine.layout_globals}).  With [instrument], loops and call sites
    that carry a source position are bracketed with zero-cost profiling
    markers ({!Isa.inst.Prof}) for the profile collector.  With [vreuse],
    a redundant-Vload cleanup pass runs over the generated code: a vector
    load recomputing a value already live in a register (same base,
    stride, length and type within a straight-line segment, no
    intervening store) is replaced by a {!Isa.inst.Vsaved} marker and its
    uses are redirected to the earlier register. *)
val gen_func :
  ?instrument:bool ->
  ?vreuse:bool ->
  Prog.t ->
  global_addr:(int -> int) ->
  Func.t ->
  Isa.func

val gen_program :
  ?instrument:bool ->
  ?vreuse:bool ->
  Prog.t ->
  global_addr:(int -> int) ->
  Isa.program
