(** Code generation from optimized IL to Titan instructions.  Scalars
    live in virtual registers unless address-taken or volatile (volatile
    accesses are marked memory operations the simulator never reorders or
    caches, §1); vector statements map onto vector loads/ALU ops/stores;
    a parallel DO loop is bracketed with Par_enter/Par_iter/Par_exit
    markers the simulator uses to spread iterations over processors. *)

open Vpc_il

exception Codegen_error of string

(** [gen_func prog ~global_addr f]: compile one function; [global_addr]
    resolves a global variable id to its absolute address (from
    {!Machine.layout_globals}).  With [instrument], loops and call sites
    that carry a source position are bracketed with zero-cost profiling
    markers ({!Isa.inst.Prof}) for the profile collector. *)
val gen_func :
  ?instrument:bool -> Prog.t -> global_addr:(int -> int) -> Func.t -> Isa.func

val gen_program :
  ?instrument:bool -> Prog.t -> global_addr:(int -> int) -> Isa.program
