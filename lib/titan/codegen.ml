(* Code generation from optimized IL to Titan instructions.

   Scalar variables live in (virtual) registers unless their address is
   taken or they are volatile — volatile variables get "special treatment
   at almost every phase" (§1): every access is a marked memory operation
   that the simulator will not reorder or cache.

   DO-loop bounds are evaluated once at entry (the while→DO conversion
   binds variant bounds to temps), vector statements map one-to-one onto
   vector loads/ALU ops/stores, and a parallel DO loop is bracketed with
   Par_enter/Par_iter/Par_exit markers that the simulator uses to spread
   iterations over processors. *)

open Vpc_support
open Vpc_il
open Isa

exception Codegen_error of string

let err fmt = Format.kasprintf (fun m -> raise (Codegen_error m)) fmt

type env = {
  prog : Prog.t;
  func : Func.t;
  reg_of_var : (int, reg) Hashtbl.t;
  frame_offset : (int, int) Hashtbl.t;
  mutable nregs : int;
  mutable nvregs : int;
  mutable frame_size : int;
  mutable code : inst list;  (* reversed *)
  label_counter : Gensym.t;
  global_addr : int -> int;  (* var id -> absolute address *)
  instrument : bool;  (* emit Prof markers for the profile collector *)
  (* IL vector temporary id -> its fixed vector register.  Fixed, not
     fresh per definition: an accumulator redefined inside a loop must
     land in the same register on every iteration so the value stays
     resident across the back edge. *)
  vtmp_reg : (int, vreg) Hashtbl.t;
}

(* Profile key of a statement: its source position, if it has one.
   Compiler-generated statements are not profiled. *)
let prof_key (s : Stmt.t) =
  Vpc_profile.Key.of_loc s.Stmt.loc

let emit_prof env (s : Stmt.t) (mk : Vpc_profile.Key.t -> prof_event) =
  if env.instrument then
    match prof_key s with
    | Some k -> env.code <- Prof (mk k) :: env.code
    | None -> ()

let emit env i = env.code <- i :: env.code

let fresh_reg env =
  let r = env.nregs in
  env.nregs <- r + 1;
  r

let fresh_vreg env =
  let v = env.nvregs in
  env.nvregs <- v + 1;
  v

let fresh_label env prefix =
  Printf.sprintf ".%s_%s_%d" env.func.Func.name prefix
    (Gensym.fresh env.label_counter)

let var_meta env id =
  match Prog.find_var env.prog (Some env.func) id with
  | Some v -> v
  | None -> err "unknown variable id %d" id

(* The env plus the set of address-taken locals of the function. *)
type classified_env = { e : env; addressed : (int, unit) Hashtbl.t }

let reg_for env (v : Var.t) =
  match Hashtbl.find_opt env.reg_of_var v.Var.id with
  | Some r -> r
  | None ->
      let r = fresh_reg env in
      Hashtbl.replace env.reg_of_var v.Var.id r;
      r

(* The frame base is conveyed in register 0 (set up by the machine at
   call time); a frame address is base + offset. *)
let frame_reg ce off =
  let r = fresh_reg ce.e in
  emit ce.e (Ialu (Iadd, r, Reg 0, Imm_int off));
  r

(* Address operand for a memory-resident variable. *)
let var_address ce (v : Var.t) : operand =
  if Var.is_global v then Imm_int (ce.e.global_addr v.Var.id)
  else
    match Hashtbl.find_opt ce.e.frame_offset v.Var.id with
    | Some off -> Reg (frame_reg ce off)
    | None -> err "variable %s has no frame slot" v.Var.name

let is_float_ty = Ty.is_float

let binop_float_op : Expr.binop -> falu_op = function
  | Expr.Add -> Fadd
  | Expr.Sub -> Fsub
  | Expr.Mul -> Fmul
  | Expr.Div -> Fdiv
  | Expr.Eq -> Fcmp_eq
  | Expr.Ne -> Fcmp_ne
  | Expr.Lt -> Fcmp_lt
  | Expr.Le -> Fcmp_le
  | Expr.Gt -> Fcmp_gt
  | Expr.Ge -> Fcmp_ge
  | Expr.Rem | Expr.Shl | Expr.Shr | Expr.Band | Expr.Bor | Expr.Bxor ->
      err "float bit operation"

let binop_int_op : Expr.binop -> ialu_op = function
  | Expr.Add -> Iadd
  | Expr.Sub -> Isub
  | Expr.Mul -> Imul
  | Expr.Div -> Idiv
  | Expr.Rem -> Irem
  | Expr.Shl -> Ishl
  | Expr.Shr -> Ishr
  | Expr.Band -> Iand
  | Expr.Bor -> Ior
  | Expr.Bxor -> Ixor
  | Expr.Eq -> Icmp_eq
  | Expr.Ne -> Icmp_ne
  | Expr.Lt -> Icmp_lt
  | Expr.Le -> Icmp_le
  | Expr.Gt -> Icmp_gt
  | Expr.Ge -> Icmp_ge

let is_comparison : Expr.binop -> bool = function
  | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> true
  | _ -> false

(* ----------------------------------------------------------------- *)
(* Expressions                                                       *)
(* ----------------------------------------------------------------- *)

let rec gen_expr ce (e : Expr.t) : operand =
  match e.Expr.desc with
  | Expr.Const_int n -> Imm_int n
  | Expr.Const_float f -> Imm_float f
  | Expr.Var id ->
      let v = var_meta ce.e id in
      if Hashtbl.mem ce.addressed id || Var.is_memory_object v || v.volatile
         || Var.is_global v
      then begin
        let addr = var_address ce v in
        let dst = fresh_reg ce.e in
        emit ce.e (Load { dst; addr; ty = v.ty; volatile = v.volatile });
        Reg dst
      end
      else Reg (reg_for ce.e v)
  | Expr.Addr_of id ->
      let v = var_meta ce.e id in
      var_address ce v
  | Expr.Load p ->
      let addr = gen_expr ce p in
      let elt = match p.Expr.ty with Ty.Ptr t -> t | _ -> err "load via non-pointer" in
      let dst = fresh_reg ce.e in
      emit ce.e (Load { dst; addr; ty = elt; volatile = false });
      Reg dst
  | Expr.Binop (op, a, b) ->
      let oa = gen_expr ce a and ob = gen_expr ce b in
      let dst = fresh_reg ce.e in
      let operand_float = is_float_ty a.Expr.ty || is_float_ty b.Expr.ty in
      if is_comparison op then
        if operand_float then
          emit ce.e
            (Falu
               ( binop_float_op op, dst, oa, ob,
                 if a.Expr.ty = Ty.Float && b.Expr.ty = Ty.Float then Ty.Float
                 else Ty.Double ))
        else emit ce.e (Ialu (binop_int_op op, dst, oa, ob))
      else if is_float_ty e.Expr.ty then
        emit ce.e (Falu (binop_float_op op, dst, oa, ob, e.Expr.ty))
      else emit ce.e (Ialu (binop_int_op op, dst, oa, ob));
      Reg dst
  | Expr.Unop (Expr.Neg, a) ->
      let oa = gen_expr ce a in
      let dst = fresh_reg ce.e in
      if is_float_ty e.Expr.ty then emit ce.e (Fneg (dst, oa, e.Expr.ty))
      else emit ce.e (Ialu (Isub, dst, Imm_int 0, oa));
      Reg dst
  | Expr.Unop (Expr.Lognot, a) ->
      let oa = gen_expr ce a in
      let dst = fresh_reg ce.e in
      if is_float_ty a.Expr.ty then
        emit ce.e (Falu (Fcmp_eq, dst, oa, Imm_float 0.0, a.Expr.ty))
      else emit ce.e (Ialu (Icmp_eq, dst, oa, Imm_int 0));
      Reg dst
  | Expr.Unop (Expr.Bitnot, a) ->
      let oa = gen_expr ce a in
      let dst = fresh_reg ce.e in
      emit ce.e (Ialu (Inot, dst, oa, Imm_int 0));
      Reg dst
  | Expr.Cast (ty, a) -> gen_cast ce ty a

and gen_cast ce ty (a : Expr.t) : operand =
  let oa = gen_expr ce a in
  let from = a.Expr.ty in
  match from, ty with
  | (Ty.Float | Ty.Double), (Ty.Int | Ty.Char | Ty.Ptr _) ->
      let dst = fresh_reg ce.e in
      emit ce.e (Cvt_fi (dst, oa));
      if ty = Ty.Char then truncate_char ce (Reg dst) else Reg dst
  | (Ty.Int | Ty.Char | Ty.Ptr _ | Ty.Func _), (Ty.Float | Ty.Double) ->
      let dst = fresh_reg ce.e in
      emit ce.e (Cvt_if (dst, oa));
      if ty = Ty.Float then begin
        let dst2 = fresh_reg ce.e in
        emit ce.e (Cvt_ff (dst2, Reg dst, Ty.Float));
        Reg dst2
      end
      else Reg dst
  | Ty.Double, Ty.Float | Ty.Float, Ty.Double ->
      let dst = fresh_reg ce.e in
      emit ce.e (Cvt_ff (dst, oa, ty));
      Reg dst
  | _, Ty.Char -> truncate_char ce oa
  | _ -> oa  (* int/pointer casts are free *)

and truncate_char ce o =
  let t1 = fresh_reg ce.e and t2 = fresh_reg ce.e in
  emit ce.e (Ialu (Ishl, t1, o, Imm_int 24));
  emit ce.e (Ialu (Ishr, t2, Reg t1, Imm_int 24));
  Reg t2

(* ----------------------------------------------------------------- *)
(* Vector expressions                                                *)
(* ----------------------------------------------------------------- *)

(* Element type of a vexpr, needed to pick int vs float vector ALU ops. *)
let rec vexpr_ty (ve : Stmt.vexpr) : Ty.t =
  match ve with
  | Stmt.Vsec sec -> (
      match sec.Stmt.base.Expr.ty with Ty.Ptr t -> t | t -> t)
  | Stmt.Vscalar e -> e.Expr.ty
  | Stmt.Viota _ -> Ty.Int
  | Stmt.Vcast (ty, _) -> ty
  | Stmt.Vbin (op, a, b) ->
      if is_comparison op then Ty.Int
      else
        let ta = vexpr_ty a and tb = vexpr_ty b in
        if Ty.is_float ta then ta else if Ty.is_float tb then tb else ta
  | Stmt.Vun (_, a) -> vexpr_ty a
  | Stmt.Vtmp (_, ty) -> ty

(* [into]: the vector register the top-level result must land in (used by
   [gen_vdef] to target a temporary's fixed register); sub-expressions
   always get fresh registers.  Cases that produce no new vector value
   ([Vscalar], [Vtmp]) ignore it — the caller copes. *)
let rec gen_vexpr ce ~len ?into (ve : Stmt.vexpr) : vsrc =
  let result_vreg () =
    match into with Some r -> r | None -> fresh_vreg ce.e
  in
  match ve with
  | Stmt.Vscalar e -> Vscal (gen_expr ce e)
  | Stmt.Vtmp (t, _) -> (
      match Hashtbl.find_opt ce.e.vtmp_reg t with
      | Some r ->
          (* a register read replacing what used to be a vector load *)
          emit ce.e (Vsaved { len });
          Vr r
      | None -> err "vector temporary vt%d read before definition" t)
  | Stmt.Vsec sec ->
      let base = gen_expr ce sec.Stmt.base in
      let stride = gen_expr ce sec.Stmt.stride in
      let elt = match sec.Stmt.base.Expr.ty with Ty.Ptr t -> t | t -> t in
      let dst = result_vreg () in
      emit ce.e (Vload { dst; base; stride; len; ty = elt });
      Vr dst
  | Stmt.Viota (off, scale) ->
      let offset = gen_expr ce off in
      let scale = gen_expr ce scale in
      let dst = result_vreg () in
      emit ce.e (Viota { dst; offset; scale; len });
      Vr dst
  | Stmt.Vcast (ty, a) -> (
      match gen_vexpr ce ~len a with
      | Vr v ->
          let dst = result_vreg () in
          emit ce.e (Vcvt { dst; a = v; len; to_ = ty });
          Vr dst
      | Vscal o ->
          (* scalar broadcast: convert the scalar *)
          let src_ty = vexpr_ty a in
          let conv =
            gen_cast ce ty
              { Expr.desc = Expr.Const_int 0; ty = src_ty }
          in
          ignore conv;
          (* we cannot re-wrap an operand through gen_cast without the
             original expression; emit the conversion directly *)
          let dst = fresh_reg ce.e in
          (match src_ty, ty with
          | (Ty.Int | Ty.Char | Ty.Ptr _), (Ty.Float | Ty.Double) ->
              emit ce.e (Cvt_if (dst, o))
          | (Ty.Float | Ty.Double), (Ty.Int | Ty.Char) ->
              emit ce.e (Cvt_fi (dst, o))
          | _ -> emit ce.e (Imov (dst, o)));
          Vscal (Reg dst))
  | Stmt.Vbin (op, a, b) ->
      let ta = vexpr_ty ve in
      let sa = gen_vexpr ce ~len a and sb = gen_vexpr ce ~len b in
      let dst = result_vreg () in
      let op' =
        if Ty.is_float ta || Ty.is_float (vexpr_ty a) then Fop (binop_float_op op)
        else Iop (binop_int_op op)
      in
      emit ce.e (Vop { op = op'; dst; a = sa; b = sb; len; ty = ta });
      Vr dst
  | Stmt.Vun (Expr.Neg, a) ->
      let ta = vexpr_ty ve in
      let sa = gen_vexpr ce ~len a in
      let dst = result_vreg () in
      emit ce.e (Vneg { dst; a = sa; len; ty = ta });
      Vr dst
  | Stmt.Vun (Expr.Lognot, a) ->
      (* !x is x == 0 elementwise *)
      let sa = gen_vexpr ce ~len a in
      let dst = result_vreg () in
      let op =
        if Ty.is_float (vexpr_ty a) then Fop Fcmp_eq else Iop Icmp_eq
      in
      let zero : vsrc =
        if Ty.is_float (vexpr_ty a) then Vscal (Imm_float 0.0)
        else Vscal (Imm_int 0)
      in
      emit ce.e (Vop { op; dst; a = sa; b = zero; len; ty = Ty.Int });
      Vr dst
  | Stmt.Vun (Expr.Bitnot, a) ->
      (* ~x is x xor -1 elementwise *)
      let sa = gen_vexpr ce ~len a in
      let dst = result_vreg () in
      emit ce.e
        (Vop { op = Iop Ixor; dst; a = sa; b = Vscal (Imm_int (-1)); len; ty = Ty.Int });
      Vr dst

(* ----------------------------------------------------------------- *)
(* Statements                                                        *)
(* ----------------------------------------------------------------- *)

(* [par_depth]: > 0 when inside a parallel loop (nested parallel loops
   run serially on their processor). *)
let rec gen_stmt ce ~par_depth (s : Stmt.t) =
  match s.Stmt.desc with
  | Stmt.Nop -> ()
  | Stmt.Assign (Stmt.Lvar id, rhs) ->
      let v = var_meta ce.e id in
      let o = gen_expr ce (Expr.cast v.ty rhs) in
      if Hashtbl.mem ce.addressed id || v.volatile || Var.is_global v then begin
        let addr = var_address ce v in
        emit ce.e (Store { src = o; addr; ty = v.ty; volatile = v.volatile })
      end
      else begin
        let r = reg_for ce.e v in
        match o with
        | Reg r2 when r2 = r -> ()
        | _ -> emit ce.e (Imov (r, o))
      end
  | Stmt.Assign (Stmt.Lmem addr, rhs) ->
      let elt = match addr.Expr.ty with Ty.Ptr t -> t | t -> t in
      let oaddr = gen_expr ce addr in
      let orhs = gen_expr ce (Expr.cast elt rhs) in
      emit ce.e (Store { src = orhs; addr = oaddr; ty = elt; volatile = false })
  | Stmt.Call (dst, Stmt.Direct name, args) ->
      let oargs = List.map (gen_expr ce) args in
      let dreg =
        match dst with
        | None -> None
        | Some (Stmt.Lvar id) ->
            let v = var_meta ce.e id in
            if Hashtbl.mem ce.addressed id || v.volatile || Var.is_global v then
              Some (fresh_reg ce.e)  (* stored below *)
            else Some (reg_for ce.e v)
        | Some (Stmt.Lmem _) -> Some (fresh_reg ce.e)
      in
      emit_prof ce.e s (fun k -> Pcall_begin (k, name));
      emit ce.e (Call { dst = dreg; name; args = oargs });
      emit_prof ce.e s (fun k -> Pcall_end k);
      (match dst, dreg with
      | Some (Stmt.Lvar id), Some r ->
          let v = var_meta ce.e id in
          if Hashtbl.mem ce.addressed id || v.volatile || Var.is_global v then
            let addr = var_address ce v in
            emit ce.e (Store { src = Reg r; addr; ty = v.ty; volatile = v.volatile })
      | Some (Stmt.Lmem addr), Some r ->
          let elt = match addr.Expr.ty with Ty.Ptr t -> t | t -> t in
          let oaddr = gen_expr ce addr in
          emit ce.e (Store { src = Reg r; addr = oaddr; ty = elt; volatile = false })
      | _ -> ())
  | Stmt.Call (_, Stmt.Indirect _, _) -> err "indirect calls not supported"
  | Stmt.Return e ->
      let o = Option.map (gen_expr ce) e in
      emit ce.e (Ret o)
  | Stmt.Goto l -> emit ce.e (Jump ("u." ^ l))
  | Stmt.Label l -> emit ce.e (Label_def ("u." ^ l))
  | Stmt.If (c, then_, else_) ->
      let oc = gen_expr ce c in
      let l_else = fresh_label ce.e "else" in
      let l_end = fresh_label ce.e "endif" in
      emit ce.e (Branch_zero (oc, l_else));
      List.iter (gen_stmt ce ~par_depth) then_;
      if else_ = [] then emit ce.e (Label_def l_else)
      else begin
        emit ce.e (Jump l_end);
        emit ce.e (Label_def l_else);
        List.iter (gen_stmt ce ~par_depth) else_;
        emit ce.e (Label_def l_end)
      end
  | Stmt.While (li, c, body) ->
      let l_head = fresh_label ce.e "while" in
      let l_end = fresh_label ce.e "wend" in
      let doacross = li.Stmt.doacross && par_depth = 0 in
      emit_prof ce.e s (fun k -> Ploop_enter k);
      if doacross then emit ce.e Par_enter;
      emit ce.e (Label_def l_head);
      if doacross then emit ce.e Par_iter;
      let oc = gen_expr ce c in
      emit ce.e (Branch_zero (oc, l_end));
      emit_prof ce.e s (fun k -> Ploop_iter k);
      if doacross then begin
        (* serialized prefix (the pointer advance, §10), then the
           spreadable rest *)
        let rec split i = function
          | [] -> ([], [])
          | x :: rest when i > 0 ->
              let a, b = split (i - 1) rest in
              (x :: a, b)
          | rest -> ([], rest)
        in
        let serial, rest = split li.Stmt.serial_prefix body in
        List.iter (gen_stmt ce ~par_depth:(par_depth + 1)) serial;
        emit ce.e Par_serial_end;
        List.iter (gen_stmt ce ~par_depth:(par_depth + 1)) rest
      end
      else List.iter (gen_stmt ce ~par_depth) body;
      emit ce.e (Jump l_head);
      emit ce.e (Label_def l_end);
      if doacross then emit ce.e Par_exit;
      emit_prof ce.e s (fun k -> Ploop_exit k)
  | Stmt.Do_loop d -> gen_do_loop ce ~par_depth ~stmt:s d
  | Stmt.Vector v -> gen_vector ce v
  | Stmt.Vdef vd -> gen_vdef ce vd

and gen_do_loop ce ~par_depth ~stmt (d : Stmt.do_loop) =
  let v = var_meta ce.e d.index in
  let idx = reg_for ce.e v in
  let o_lo = gen_expr ce d.lo in
  emit ce.e (Imov (idx, o_lo));
  (* bounds are loop-entry values: materialize into registers *)
  let o_hi = gen_expr ce d.hi in
  let hi = fresh_reg ce.e in
  emit ce.e (Imov (hi, o_hi));
  let step_const = match d.step.Expr.desc with Expr.Const_int c -> Some c | _ -> None in
  let o_step = gen_expr ce d.step in
  let step = fresh_reg ce.e in
  emit ce.e (Imov (step, o_step));
  let l_head = fresh_label ce.e "do" in
  let l_end = fresh_label ce.e "done" in
  let parallel = d.parallel && par_depth = 0 in
  let doacross = d.sync <> [] && (not parallel) && par_depth = 0 in
  emit_prof ce.e stmt (fun k -> Ploop_enter k);
  if parallel then emit ce.e Par_enter;
  if doacross then emit ce.e Da_enter;
  emit ce.e (Label_def l_head);
  (* continue while (step >= 0 ? idx <= hi : idx >= hi) *)
  let cond = fresh_reg ce.e in
  (match step_const with
  | Some c when c >= 0 -> emit ce.e (Ialu (Icmp_le, cond, Reg idx, Reg hi))
  | Some _ -> emit ce.e (Ialu (Icmp_ge, cond, Reg idx, Reg hi))
  | None ->
      (* sign-dependent test, computed arithmetically:
         (step>=0) ? idx<=hi : idx>=hi *)
      let pos = fresh_reg ce.e in
      emit ce.e (Ialu (Icmp_ge, pos, Reg step, Imm_int 0));
      let le = fresh_reg ce.e and ge = fresh_reg ce.e in
      emit ce.e (Ialu (Icmp_le, le, Reg idx, Reg hi));
      emit ce.e (Ialu (Icmp_ge, ge, Reg idx, Reg hi));
      let t1 = fresh_reg ce.e and t2 = fresh_reg ce.e and np = fresh_reg ce.e in
      emit ce.e (Ialu (Iand, t1, Reg pos, Reg le));
      emit ce.e (Ialu (Icmp_eq, np, Reg pos, Imm_int 0));
      emit ce.e (Ialu (Iand, t2, Reg np, Reg ge));
      emit ce.e (Ialu (Ior, cond, Reg t1, Reg t2)));
  emit ce.e (Branch_zero (Reg cond, l_end));
  if parallel || doacross then emit ce.e Par_iter;
  emit_prof ce.e stmt (fun k -> Ploop_iter k);
  let inner_depth = par_depth + if parallel || doacross then 1 else 0 in
  if doacross then
    (* interleave the recorded post/wait pairs: wait before the first
       read of each crossing edge, post after its last write *)
    List.iteri
      (fun i s ->
        List.iter
          (fun (y : Stmt.dsync) ->
            if y.Stmt.wait_before = i then
              emit ce.e
                (Wait
                   { chan = y.Stmt.chan; dist = y.Stmt.distance;
                     cum = y.Stmt.cum }))
          d.sync;
        gen_stmt ce ~par_depth:inner_depth s;
        List.iter
          (fun (y : Stmt.dsync) ->
            if y.Stmt.post_after = i then
              emit ce.e (Post { chan = y.Stmt.chan }))
          d.sync)
      d.body
  else List.iter (gen_stmt ce ~par_depth:inner_depth) d.body;
  emit ce.e (Ialu (Iadd, idx, Reg idx, Reg step));
  emit ce.e (Jump l_head);
  emit ce.e (Label_def l_end);
  if parallel || doacross then emit ce.e Par_exit;
  emit_prof ce.e stmt (fun k -> Ploop_exit k)

and gen_vector ce (v : Stmt.vstmt) =
  let len_o = gen_expr ce v.Stmt.vdst.Stmt.count in
  let len = fresh_reg ce.e in
  emit ce.e (Imov (len, len_o));
  let len = Reg len in
  let src =
    match v.Stmt.vsrc with
    | Stmt.Vtmp (t, _) -> (
        (* storing a temporary back to memory is reuse plumbing, not an
           avoided memory operation: don't emit a [Vsaved] marker *)
        match Hashtbl.find_opt ce.e.vtmp_reg t with
        | Some r -> Vr r
        | None -> err "vector temporary vt%d read before definition" t)
    | ve -> gen_vexpr ce ~len ve
  in
  let base = gen_expr ce v.Stmt.vdst.Stmt.base in
  let stride = gen_expr ce v.Stmt.vdst.Stmt.stride in
  let src_vr =
    match src with
    | Vr r -> r
    | Vscal o ->
        (* broadcast: iota with scale 0 *)
        let dst = fresh_vreg ce.e in
        (match o with
        | Imm_float _ | Reg _ | Imm_int _ ->
            emit ce.e (Viota { dst; offset = o; scale = Imm_int 0; len }));
        dst
  in
  (* convert to the destination element type if needed *)
  let src_ty = vexpr_ty v.Stmt.vsrc in
  let src_vr =
    if Ty.is_float v.Stmt.velt <> Ty.is_float src_ty then begin
      let dst = fresh_vreg ce.e in
      emit ce.e (Vcvt { dst; a = src_vr; len; to_ = v.Stmt.velt });
      dst
    end
    else src_vr
  in
  emit ce.e
    (Vstore { src = src_vr; base; stride; len; ty = v.Stmt.velt })

and gen_vdef ce (vd : Stmt.vdef) =
  let len_o = gen_expr ce vd.Stmt.vcount in
  let len = fresh_reg ce.e in
  emit ce.e (Imov (len, len_o));
  let len = Reg len in
  let target =
    match Hashtbl.find_opt ce.e.vtmp_reg vd.Stmt.vt with
    | Some r -> r
    | None ->
        let r = fresh_vreg ce.e in
        Hashtbl.replace ce.e.vtmp_reg vd.Stmt.vt r;
        r
  in
  let self_ref = ref false in
  let rec scan = function
    | Stmt.Vtmp (t, _) when t = vd.Stmt.vt -> self_ref := true
    | Stmt.Vtmp _ | Stmt.Vscalar _ | Stmt.Vsec _ | Stmt.Viota _ -> ()
    | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> scan a
    | Stmt.Vbin (_, a, b) ->
        scan a;
        scan b
  in
  scan vd.Stmt.vval;
  let src_ty = vexpr_ty vd.Stmt.vval in
  let need_cvt = Ty.is_float vd.Stmt.vty <> Ty.is_float src_ty in
  let src =
    if need_cvt then gen_vexpr ce ~len vd.Stmt.vval
    else gen_vexpr ce ~len ~into:target vd.Stmt.vval
  in
  (match src with
  | Vr r when r = target && not need_cvt -> ()
  | Vr r ->
      (* materialize in the fixed register, converting to the bound type
         (a [Vdef] converts its value to [vty] on bind) *)
      emit ce.e (Vcvt { dst = target; a = r; len; to_ = vd.Stmt.vty })
  | Vscal o ->
      (* broadcast a scalar into the register *)
      let o =
        if need_cvt then begin
          let dst = fresh_reg ce.e in
          (if Ty.is_float src_ty then emit ce.e (Cvt_fi (dst, o))
           else emit ce.e (Cvt_if (dst, o)));
          Reg dst
        end
        else o
      in
      emit ce.e (Viota { dst = target; offset = o; scale = Imm_int 0; len }));
  (* a self-referencing definition is the accumulator idiom: the value
     stays resident instead of being stored back every iteration *)
  if !self_ref then emit ce.e (Vsaved { len })

(* ----------------------------------------------------------------- *)
(* Redundant-Vload cleanup                                           *)
(* ----------------------------------------------------------------- *)

(* Local value numbering over straight-line segments of the final
   instruction stream: a [Vload] computing the same (base, stride, len,
   type) value as an earlier one in the segment — by scalar value, not by
   register name — is deleted, a [Vsaved] marker takes its slot (so label
   pcs are undisturbed), and later reads of its register are redirected
   to the earlier load's register.

   Conservative by construction: segments end at labels, branches, calls
   and parallel markers; any store (scalar or vector) kills all available
   loads; a register substitution is only installed when both the
   original and the duplicate destination are defined exactly once in
   the segment, so the redirect is valid for the segment's remainder. *)
module Vload_cleanup = struct
  type term =
    | Opaque of int  (* unknown input: initial register value, load, call *)
    | Cint of int
    | Cfloat of float
    | Alu of ialu_op * int * int
    | Fop2 of falu_op * int * int * Ty.t
    | Neg of int * Ty.t
    | Conv of string * int * Ty.t

  let segment_end = function
    | Label_def _ | Jump _ | Branch_zero _ | Branch_nonzero _ | Call _
    | Ret _ | Par_enter | Par_iter | Par_serial_end | Par_exit | Da_enter
    | Post _ | Wait _ ->
        true
    | _ -> false

  (* scalar destination of an instruction, if any *)
  let scalar_def = function
    | Imov (d, _) | Ialu (_, d, _, _) | Falu (_, d, _, _, _) | Fneg (d, _, _)
    | Cvt_if (d, _) | Cvt_fi (d, _) | Cvt_ff (d, _, _) ->
        Some d
    | Load { dst; _ } -> Some dst
    | Call { dst; _ } -> dst
    | _ -> None

  let vector_def = function
    | Vload { dst; _ } | Vop { dst; _ } | Vneg { dst; _ } | Viota { dst; _ }
    | Vcvt { dst; _ } ->
        Some dst
    | _ -> None

  let run (code : inst array) : inst array =
    let code = Array.copy code in
    let n = Array.length code in
    let saved = ref 0 in
    let seg_start = ref 0 in
    while !seg_start < n do
      (* find segment [lo, hi) *)
      let lo = !seg_start in
      let hi = ref lo in
      while !hi < n && not (segment_end code.(!hi)) do incr hi done;
      let hi = if !hi < n then !hi + 1 else !hi in
      seg_start := hi;
      (* vector registers defined exactly once in the segment are safe to
         redirect to / from *)
      let vdefs = Hashtbl.create 16 in
      for i = lo to hi - 1 do
        match vector_def code.(i) with
        | Some v ->
            Hashtbl.replace vdefs v (1 + Option.value ~default:0 (Hashtbl.find_opt vdefs v))
        | None -> ()
      done;
      let once v = Hashtbl.find_opt vdefs v = Some 1 in
      (* value numbering state *)
      let terms : (term, int) Hashtbl.t = Hashtbl.create 64 in
      let next_vn = ref 0 in
      let vn_of_term t =
        match Hashtbl.find_opt terms t with
        | Some v -> v
        | None ->
            let v = !next_vn in
            incr next_vn;
            Hashtbl.replace terms t v;
            v
      in
      let opaque () =
        let v = !next_vn in
        incr next_vn;
        Hashtbl.replace terms (Opaque v) v;
        v
      in
      let reg_vn : (reg, int) Hashtbl.t = Hashtbl.create 32 in
      let vn_of_reg r =
        match Hashtbl.find_opt reg_vn r with
        | Some v -> v
        | None ->
            let v = opaque () in
            Hashtbl.replace reg_vn r v;
            v
      in
      let vn_of_operand = function
        | Reg r -> vn_of_reg r
        | Imm_int k -> vn_of_term (Cint k)
        | Imm_float f -> vn_of_term (Cfloat f)
      in
      (* (base vn, stride vn, len vn, ty) -> earlier Vload's register *)
      let avail : (int * int * int * Ty.t, vreg) Hashtbl.t =
        Hashtbl.create 16
      in
      (* duplicate register -> earlier register *)
      let subst : (vreg, vreg) Hashtbl.t = Hashtbl.create 8 in
      let sub v = Option.value ~default:v (Hashtbl.find_opt subst v) in
      let sub_vsrc = function Vr v -> Vr (sub v) | Vscal o -> Vscal o in
      for i = lo to hi - 1 do
        (* rewrite vector-register uses through the substitution *)
        (match code.(i) with
        | Vstore s -> code.(i) <- Vstore { s with src = sub s.src }
        | Vop o -> code.(i) <- Vop { o with a = sub_vsrc o.a; b = sub_vsrc o.b }
        | Vneg o -> code.(i) <- Vneg { o with a = sub_vsrc o.a }
        | Vcvt o -> code.(i) <- Vcvt { o with a = sub o.a }
        | _ -> ());
        (match code.(i) with
        | Vload { dst; base; stride; len; ty } -> (
            let key = (vn_of_operand base, vn_of_operand stride, vn_of_operand len, ty) in
            match Hashtbl.find_opt avail key with
            | Some prev when once dst && prev <> dst ->
                code.(i) <- Vsaved { len };
                Hashtbl.replace subst dst prev;
                incr saved
            | _ -> if once dst then Hashtbl.replace avail key dst)
        | Store _ | Vstore _ ->
            (* memory may have changed under an available load *)
            Hashtbl.reset avail
        | _ -> ());
        (* update scalar value numbers *)
        (match code.(i) with
        | Imov (d, o) -> Hashtbl.replace reg_vn d (vn_of_operand o)
        | Ialu (op, d, a, b) ->
            Hashtbl.replace reg_vn d
              (vn_of_term (Alu (op, vn_of_operand a, vn_of_operand b)))
        | Falu (op, d, a, b, ty) ->
            Hashtbl.replace reg_vn d
              (vn_of_term (Fop2 (op, vn_of_operand a, vn_of_operand b, ty)))
        | Fneg (d, a, ty) ->
            Hashtbl.replace reg_vn d (vn_of_term (Neg (vn_of_operand a, ty)))
        | Cvt_if (d, a) ->
            Hashtbl.replace reg_vn d (vn_of_term (Conv ("if", vn_of_operand a, Ty.Int)))
        | Cvt_fi (d, a) ->
            Hashtbl.replace reg_vn d (vn_of_term (Conv ("fi", vn_of_operand a, Ty.Int)))
        | Cvt_ff (d, a, ty) ->
            Hashtbl.replace reg_vn d (vn_of_term (Conv ("ff", vn_of_operand a, ty)))
        | Load { dst; _ } -> Hashtbl.replace reg_vn dst (opaque ())
        | _ -> (
            match scalar_def code.(i) with
            | Some d -> Hashtbl.replace reg_vn d (opaque ())
            | None -> ()))
      done
    done;
    ignore !saved;
    code
end

(* ----------------------------------------------------------------- *)
(* Function and program                                              *)
(* ----------------------------------------------------------------- *)

let gen_func ?(instrument = false) ?(vreuse = false) (prog : Prog.t)
    ~global_addr (f : Func.t) : Isa.func =
  let env =
    {
      prog;
      func = f;
      reg_of_var = Hashtbl.create 32;
      frame_offset = Hashtbl.create 8;
      nregs = 1;  (* register 0 is the frame base *)
      nvregs = 0;
      frame_size = 0;
      code = [];
      label_counter = Gensym.create ();
      global_addr;
      instrument;
      vtmp_reg = Hashtbl.create 8;
    }
  in
  let addressed = Func.addressed_vars f in
  let ce = { e = env; addressed } in
  (* frame slots for addressed / memory-object locals, in ascending
     variable-id order so the layout is a function of the IL alone, not
     of hash-table insertion history *)
  List.iter
    (fun (v : Var.t) ->
      let id = v.id in
      if
        (not (Var.is_global v))
        && (Hashtbl.mem addressed id || Var.is_memory_object v || v.volatile)
      then begin
        let size = Ty.sizeof prog.Prog.structs v.ty in
        let align = Ty.alignof prog.Prog.structs v.ty in
        let off = (env.frame_size + align - 1) / align * align in
        Hashtbl.replace env.frame_offset id off;
        env.frame_size <- off + size
      end)
    (Func.locals f);
  (* parameters arrive in their registers (or frame slots: the machine
     stores them on entry) *)
  List.iter
    (fun id ->
      let v = Func.var_exn f id in
      if not (Hashtbl.mem env.frame_offset id) then ignore (reg_for env v))
    f.Func.params;
  List.iter (gen_stmt ce ~par_depth:0) f.Func.body;
  emit env (Ret None);
  let code = Array.of_list (List.rev env.code) in
  let code = if vreuse then Vload_cleanup.run code else code in
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun pc inst ->
      match inst with
      | Label_def l -> Hashtbl.replace labels l pc
      | _ -> ())
    code;
  {
    fn_name = f.Func.name;
    code;
    reg_of_var = env.reg_of_var;
    frame_offset = env.frame_offset;
    frame_size = env.frame_size;
    param_ids = f.Func.params;
    labels;
    nregs = env.nregs;
    nvregs = env.nvregs;
  }

let gen_program ?(instrument = false) ?(vreuse = false) (prog : Prog.t)
    ~global_addr : Isa.program =
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace funcs f.Func.name
        (gen_func ~instrument ~vreuse prog ~global_addr f))
    prog.Prog.funcs;
  { Isa.funcs; prog }
