(* The Titan simulator: executes Titan instructions for real values while
   accounting cycles under a configurable scheduling model.

   Scheduling models (§6's "dependence-driven" scheduling):
     - [Sequential]: each instruction starts when the previous one
       completes — the naive scalar code the paper measures at 0.5 MFLOPS
       on the backsolve loop;
     - [Overlap_conservative]: integer/FP/memory units overlap, but every
       load waits for every earlier store (no dependence information);
     - [Overlap_full]: loads bypass stores — legal when the compiler's
       dependence graph proved the references independent, which is the
       information "passed back to the code generation to allow better
       overlap" (§6).

   A parallel DO loop's iterations are distributed round-robin over the
   configured processors; the region costs the maximum per-processor time
   plus a barrier. *)

open Vpc_il
open Isa

exception Runtime_error of string

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

type sched_mode = Sequential | Overlap_conservative | Overlap_full

type config = {
  procs : int;
  sched : sched_mode;
  clock_mhz : float;
  max_insts : int;
}

let default_config =
  { procs = 1; sched = Overlap_full; clock_mhz = Cost.clock_mhz; max_insts = 200_000_000 }

type value = Vi of int | Vf of float

let as_int = function Vi n -> n | Vf _ -> error "expected integer"
let as_float = function Vf f -> f | Vi n -> float_of_int n

let wrap32 n =
  (n land 0xFFFFFFFF) - (if n land 0x80000000 <> 0 then 1 lsl 32 else 0)

(* ----------------------------------------------------------------- *)
(* Global layout                                                     *)
(* ----------------------------------------------------------------- *)

type layout = {
  addr_of : (int, int) Hashtbl.t;  (* global var id -> address *)
  globals_top : int;
  lprog : Prog.t;
}

let mem_size = 1 lsl 22

let layout_globals (prog : Prog.t) : layout =
  let addr_of = Hashtbl.create 16 in
  let top = ref 16 in
  List.iter
    (fun (g : Prog.global) ->
      let size = Ty.sizeof prog.Prog.structs g.gvar.Var.ty in
      let align = Ty.alignof prog.Prog.structs g.gvar.Var.ty in
      let addr = (!top + align - 1) / align * align in
      Hashtbl.replace addr_of g.gvar.Var.id addr;
      top := addr + size)
    (Prog.globals_list prog);
  { addr_of; globals_top = !top; lprog = prog }

(* ----------------------------------------------------------------- *)
(* Machine state                                                     *)
(* ----------------------------------------------------------------- *)

type metrics = {
  mutable cycles : int;          (* wall-clock cycles, parallel-adjusted *)
  mutable insts : int;
  mutable fp_ops : int;
  mutable mem_ops : int;
  mutable vector_insts : int;
  mutable vector_elems : int;
  mutable parallel_regions : int;
  mutable calls : int;
  (* cycles doacross iterations spent blocked in [Wait] for a producer
     iteration's post (in pipeline virtual time, summed over iterations) *)
  mutable post_wait_stalls : int;
  mutable posts : int;  (* post instructions executed *)
  mutable waits : int;  (* wait instructions executed *)
  (* vector memory traffic (in elements) avoided by register reuse:
     accumulated from Vsaved markers *)
  mutable vector_mem_elems_avoided : int;
  (* per-unit occupancy in cycles, summed over all issued operations
     (not parallel-adjusted): how long each port was busy *)
  mutable busy_iu : int;
  mutable busy_fpu : int;
  mutable busy_mem : int;
}

let new_metrics () =
  {
    cycles = 0;
    insts = 0;
    fp_ops = 0;
    mem_ops = 0;
    vector_insts = 0;
    vector_elems = 0;
    parallel_regions = 0;
    calls = 0;
    post_wait_stalls = 0;
    posts = 0;
    waits = 0;
    vector_mem_elems_avoided = 0;
    busy_iu = 0;
    busy_fpu = 0;
    busy_mem = 0;
  }

let mflops m ~clock_mhz =
  if m.cycles = 0 then 0.0
  else float_of_int m.fp_ops /. (float_of_int m.cycles /. (clock_mhz *. 1e6)) /. 1e6

type state = {
  program : Isa.program;
  config : config;
  mem : Bytes.t;
  layout : layout;
  mutable stack_top : int;
  output : Buffer.t;
  metrics : metrics;
  (* timing *)
  mutable clock : int;           (* current in-order issue front *)
  mutable saved : int;           (* cycles recovered by parallel regions *)
  unit_free : (Cost.unit_, int) Hashtbl.t;
  mutable last_store_done : int;
  mutable last_mem_done : int;   (* for volatile ordering *)
  (* parallel region bookkeeping *)
  mutable par_buckets : int array;
  mutable par_iter : int;
  mutable par_iter_start : int;
  mutable par_enter_clock : int;
  mutable par_active : bool;
  mutable par_serial_total : int;  (* doacross: serialized prefix time *)
  (* doacross (post/wait) region bookkeeping.  The simulator executes the
     loop serially; the pipeline schedule is reconstructed in *virtual*
     time relative to region entry: iteration i starts at the max of its
     processor's previous completion and is pushed later by wait stalls,
     with per-iteration progress measured by real-clock deltas. *)
  mutable da_active : bool;
  mutable da_proc_done : int array;  (* virtual completion per processor *)
  mutable da_iter : int;             (* current iteration, -1 before first *)
  mutable da_iter_vstart : int;      (* virtual start of current iteration *)
  mutable da_iter_base : int;        (* real clock at its first instruction *)
  mutable da_stall : int;            (* virtual wait stalls, this iteration *)
  da_posts : (int * int, int) Hashtbl.t;  (* (chan, iter) -> virtual time *)
  da_post_pre : (int * int, int) Hashtbl.t;
      (* (chan, iter) -> max virtual post time over iterations <= iter:
         iterations run in order here, so each post extends a running
         prefix max — what a cumulative wait needs in O(1) *)
  mutable insts_executed : int;
  mutable issued : int;  (* instructions issued, for the issue-width floor *)
  collect : Vpc_profile.Collect.t option;  (* profile collector, if any *)
}

type frame = {
  func : Isa.func;
  regs : value array;
  ready : int array;             (* per-register ready time *)
  vregs : value array array;
  vready : int array;
  frame_base : int;
}

(* memory access *)

let check st addr size =
  if addr < 16 || addr + size > Bytes.length st.mem then
    error "memory access out of bounds at %d" addr

let load_mem st ty addr : value =
  match ty with
  | Ty.Char ->
      check st addr 1;
      let b = Char.code (Bytes.get st.mem addr) in
      Vi (if b > 127 then b - 256 else b)
  | Ty.Int | Ty.Ptr _ | Ty.Func _ ->
      check st addr 4;
      Vi (Int32.to_int (Bytes.get_int32_le st.mem addr))
  | Ty.Float ->
      check st addr 4;
      Vf (Int32.float_of_bits (Bytes.get_int32_le st.mem addr))
  | Ty.Double ->
      check st addr 8;
      Vf (Int64.float_of_bits (Bytes.get_int64_le st.mem addr))
  | Ty.Void | Ty.Array _ | Ty.Struct _ -> error "bad load type"

let store_mem st ty addr (v : value) =
  match ty with
  | Ty.Char ->
      check st addr 1;
      Bytes.set st.mem addr (Char.chr (as_int v land 0xFF))
  | Ty.Int | Ty.Ptr _ | Ty.Func _ ->
      check st addr 4;
      Bytes.set_int32_le st.mem addr (Int32.of_int (as_int v))
  | Ty.Float ->
      check st addr 4;
      Bytes.set_int32_le st.mem addr (Int32.bits_of_float (as_float v))
  | Ty.Double ->
      check st addr 8;
      Bytes.set_int64_le st.mem addr (Int64.bits_of_float (as_float v))
  | Ty.Void | Ty.Array _ | Ty.Struct _ -> error "bad store type"

let convert ty (v : value) : value =
  match ty with
  | Ty.Char ->
      let b = as_int v land 0xFF in
      Vi (if b > 127 then b - 256 else b)
  | Ty.Int -> Vi (wrap32 (match v with Vi n -> n | Vf f -> int_of_float f))
  | Ty.Ptr _ | Ty.Func _ -> Vi (as_int v)
  | Ty.Float -> Vf (Int32.float_of_bits (Int32.bits_of_float (as_float v)))
  | Ty.Double -> Vf (as_float v)
  | Ty.Void -> v
  | Ty.Array _ | Ty.Struct _ -> error "bad conversion"

(* ----------------------------------------------------------------- *)
(* Timing                                                            *)
(* ----------------------------------------------------------------- *)

let unit_free st u =
  Option.value (Hashtbl.find_opt st.unit_free u) ~default:0

let add_busy st (u : Cost.unit_) n =
  match u with
  | Cost.IU -> st.metrics.busy_iu <- st.metrics.busy_iu + n
  | Cost.FPU -> st.metrics.busy_fpu <- st.metrics.busy_fpu + n
  | Cost.MEM -> st.metrics.busy_mem <- st.metrics.busy_mem + n
  | Cost.CTRL -> ()

(* Issue an operation: [ops_ready] is when its inputs are available.
   Returns the completion time (when its result is ready).

   [Sequential] starts each operation when the previous completes.
   [Overlap_conservative] issues in order: an operation whose inputs are
   not ready stalls everything behind it.  [Overlap_full] is
   dataflow-limited: the compiler's dependence graph licensed the
   scheduler to reorder freely, so an operation waits only for its inputs
   and its unit — the model of a perfectly list-scheduled loop (§6). *)
let issue st (cost : Cost.op_cost) ~ops_ready : int =
  add_busy st cost.Cost.unit_ cost.Cost.issue;
  match st.config.sched with
  | Sequential ->
      let start = max st.clock ops_ready in
      let done_ = start + cost.Cost.latency in
      st.clock <- done_;
      done_
  | Overlap_conservative ->
      let start = max (max st.clock (unit_free st cost.Cost.unit_)) ops_ready in
      Hashtbl.replace st.unit_free cost.Cost.unit_ (start + cost.Cost.issue);
      st.clock <- start;  (* in-order issue: next op cannot start earlier *)
      start + cost.Cost.latency
  | Overlap_full ->
      (* dataflow-limited: the list scheduler reorders compute ops freely;
         the single memory port keeps its occupancy, and a machine-wide
         issue width of 4 (one per unit) floors everything *)
      let slot = st.issued / 4 in
      st.issued <- st.issued + 1;
      let start =
        match cost.Cost.unit_ with
        | Cost.MEM -> max (max (unit_free st Cost.MEM) ops_ready) slot
        | Cost.IU | Cost.FPU | Cost.CTRL -> max ops_ready slot
      in
      if cost.Cost.unit_ = Cost.MEM then
        Hashtbl.replace st.unit_free Cost.MEM (start + cost.Cost.issue);
      st.clock <- max st.clock (start + cost.Cost.latency);
      start + cost.Cost.latency

(* A vector operation occupies its unit for startup + len cycles. *)
let issue_vector st ~unit_ ~startup ~len ~ops_ready : int =
  let busy = startup + len in
  add_busy st unit_ busy;
  match st.config.sched with
  | Sequential ->
      let start = max st.clock ops_ready in
      let done_ = start + busy in
      st.clock <- done_;
      done_
  | Overlap_conservative ->
      let start = max (max st.clock (unit_free st unit_)) ops_ready in
      Hashtbl.replace st.unit_free unit_ (start + busy);
      st.clock <- start;
      start + busy
  | Overlap_full ->
      let start = max (unit_free st unit_) ops_ready in
      Hashtbl.replace st.unit_free unit_ (start + busy);
      st.clock <- max st.clock (start + busy);
      start + busy

(* A control transfer serializes issue, except under full
   dependence-driven scheduling where the compiler has already proven the
   loop's operations independent and the scheduler overlaps across the
   loop-closing branch (§6: "completely overlap the integer and floating
   point instructions in the loop"). *)
let issue_branch st ~ops_ready =
  match st.config.sched with
  | Overlap_full ->
      let slot = st.issued / 4 in
      st.issued <- st.issued + 1;
      let start = max ops_ready slot in
      st.clock <- max st.clock (start + Cost.branch.Cost.latency);
      start + Cost.branch.Cost.latency
  | Sequential | Overlap_conservative ->
      let start = max st.clock ops_ready in
      let done_ = start + Cost.branch.Cost.latency in
      st.clock <- done_;
      done_

(* ----------------------------------------------------------------- *)
(* Builtins                                                          *)
(* ----------------------------------------------------------------- *)

let read_cstring st addr =
  let buf = Buffer.create 16 in
  let rec go a =
    check st a 1;
    let c = Bytes.get st.mem a in
    if c <> '\000' then begin
      Buffer.add_char buf c;
      go (a + 1)
    end
  in
  go addr;
  Buffer.contents buf

let do_printf st fmt args =
  let out = st.output in
  let args = ref args in
  let next () =
    match !args with
    | [] -> error "printf: missing argument"
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '%' && !i + 1 < n then begin
      (* collect flags / width / precision *)
      let spec = Buffer.create 8 in
      Buffer.add_char spec '%';
      incr i;
      while
        !i < n
        && (match fmt.[!i] with
           | '0' .. '9' | '-' | '+' | ' ' | '.' | '#' -> true
           | _ -> false)
      do
        Buffer.add_char spec fmt.[!i];
        incr i
      done;
      if !i >= n then error "printf: truncated conversion";
      let conv = fmt.[!i] in
      let spec_with c = Buffer.contents spec ^ String.make 1 c in
      (match conv with
      | 'd' | 'i' ->
          Buffer.add_string out
            (Printf.sprintf
               (Scanf.format_from_string (spec_with 'd') "%d")
               (as_int (next ())))
      | 'f' | 'g' | 'e' ->
          Buffer.add_string out
            (Printf.sprintf
               (Scanf.format_from_string (spec_with conv) "%f")
               (as_float (next ())))
      | 'c' -> Buffer.add_char out (Char.chr (as_int (next ()) land 0xFF))
      | 's' ->
          Buffer.add_string out
            (Printf.sprintf
               (Scanf.format_from_string (spec_with 's') "%s")
               (read_cstring st (as_int (next ()))))
      | '%' -> Buffer.add_char out '%'
      | other -> error "printf: unsupported conversion %%%c" other);
      incr i
    end
    else begin
      Buffer.add_char out c;
      incr i
    end
  done

let builtin st name (args : value list) : value option =
  match name, args with
  | "printf", fmt :: rest ->
      do_printf st (read_cstring st (as_int fmt)) rest;
      Some (Vi 0)
  | "putchar", [ c ] ->
      Buffer.add_char st.output (Char.chr (as_int c land 0xFF));
      Some (Vi (as_int c))
  | "puts", [ s ] ->
      Buffer.add_string st.output (read_cstring st (as_int s));
      Buffer.add_char st.output '\n';
      Some (Vi 0)
  | ("sqrt" | "sqrtf"), [ x ] ->
      st.metrics.fp_ops <- st.metrics.fp_ops + 1;
      Some (Vf (sqrt (as_float x)))
  | ("fabs" | "fabsf"), [ x ] -> Some (Vf (Float.abs (as_float x)))
  | "abs", [ x ] -> Some (Vi (abs (as_int x)))
  | ("exp" | "sin" | "cos"), [ x ] ->
      st.metrics.fp_ops <- st.metrics.fp_ops + 1;
      Some
        (Vf
           ((match name with
            | "exp" -> exp
            | "sin" -> sin
            | _ -> cos)
              (as_float x)))
  | _ -> None

(* ----------------------------------------------------------------- *)
(* Execution                                                         *)
(* ----------------------------------------------------------------- *)

let eval_ialu op x y =
  let bool_ b = if b then 1 else 0 in
  match op with
  | Iadd -> wrap32 (x + y)
  | Isub -> wrap32 (x - y)
  | Imul -> wrap32 (x * y)
  | Idiv ->
      if y = 0 then error "division by zero"
      else
        let q = abs x / abs y in
        if (x < 0) <> (y < 0) then -q else q
  | Irem ->
      if y = 0 then error "modulo by zero"
      else
        let r = abs x mod abs y in
        if x < 0 then -r else r
  | Ishl -> wrap32 (x lsl (y land 31))
  | Ishr -> x asr (y land 31)
  | Iand -> x land y
  | Ior -> x lor y
  | Ixor -> x lxor y
  | Icmp_eq -> bool_ (x = y)
  | Icmp_ne -> bool_ (x <> y)
  | Icmp_lt -> bool_ (x < y)
  | Icmp_le -> bool_ (x <= y)
  | Icmp_gt -> bool_ (x > y)
  | Icmp_ge -> bool_ (x >= y)
  | Inot -> wrap32 (lnot x)

let round_sp (v : value) =
  match v with
  | Vf f -> Vf (Int32.float_of_bits (Int32.bits_of_float f))
  | Vi _ -> v

let eval_falu op x y =
  match op with
  | Fadd -> Vf (x +. y)
  | Fsub -> Vf (x -. y)
  | Fmul -> Vf (x *. y)
  | Fdiv -> Vf (x /. y)
  | Fcmp_eq -> Vi (if x = y then 1 else 0)
  | Fcmp_ne -> Vi (if x <> y then 1 else 0)
  | Fcmp_lt -> Vi (if x < y then 1 else 0)
  | Fcmp_le -> Vi (if x <= y then 1 else 0)
  | Fcmp_gt -> Vi (if x > y then 1 else 0)
  | Fcmp_ge -> Vi (if x >= y then 1 else 0)

let rec run_function st (fname : string) (args : value list) : value * int =
  match Hashtbl.find_opt st.program.Isa.funcs fname with
  | Some f -> run_func st f args
  | None -> (
      match builtin st fname args with
      | Some v -> (v, st.clock)
      | None -> error "undefined function %s" fname)

and run_func st (f : Isa.func) (args : value list) : value * int =
  let saved_stack = st.stack_top in
  let frame_base = (st.stack_top + 7) / 8 * 8 in
  st.stack_top <- frame_base + f.frame_size;
  if st.stack_top > Bytes.length st.mem then error "stack overflow";
  let fr =
    {
      func = f;
      regs = Array.make (max f.nregs 1) (Vi 0);
      ready = Array.make (max f.nregs 1) 0;
      vregs = Array.make (max f.nvregs 1) [||];
      vready = Array.make (max f.nvregs 1) 0;
      frame_base;
    }
  in
  fr.regs.(0) <- Vi frame_base;
  (* bind parameters *)
  (try
     List.iter2
       (fun id arg ->
         match Hashtbl.find_opt f.frame_offset id with
         | Some off ->
             let v = param_ty st f id in
             store_mem st v (frame_base + off) (convert v arg)
         | None -> (
             match Hashtbl.find_opt f.reg_of_var id with
             | Some r -> fr.regs.(r) <- arg
             | None -> ()  (* unused parameter *)))
       f.param_ids args
   with Invalid_argument _ -> error "arity mismatch calling %s" f.fn_name);
  let result = exec st fr in
  st.stack_top <- saved_stack;
  result

and param_ty st (f : Isa.func) id =
  match Prog.find_var st.program.Isa.prog None id with
  | Some v -> v.Var.ty
  | None -> (
      match
        List.find_map
          (fun (fn : Func.t) ->
            if fn.Func.name = f.fn_name then Func.find_var fn id else None)
          st.program.Isa.prog.Prog.funcs
      with
      | Some v -> v.Var.ty
      | None -> Ty.Int)

and operand st fr (o : operand) : value * int =
  ignore st;
  match o with
  | Reg r -> (fr.regs.(r), fr.ready.(r))
  | Imm_int n -> (Vi n, 0)
  | Imm_float f -> (Vf f, 0)

(* Virtual (pipeline) time of the current doacross iteration: its virtual
   start, plus the real cycles it has executed, plus the wait stalls that
   pushed it later in the pipeline schedule. *)
and da_now st =
  st.da_iter_vstart + (st.clock - st.da_iter_base) + st.da_stall

and da_finish_iter st =
  if st.da_iter >= 0 then begin
    let p = st.da_iter mod Array.length st.da_proc_done in
    st.da_proc_done.(p) <- da_now st
  end

and exec st fr : value * int =
  let f = fr.func in
  let pc = ref 0 in
  let result = ref (Vi 0) in
  let running = ref true in
  let code = f.code in
  let ncode = Array.length code in
  let set_reg r v ~ready =
    fr.regs.(r) <- v;
    fr.ready.(r) <- ready
  in
  let goto_label l =
    match Hashtbl.find_opt f.labels l with
    | Some target -> pc := target
    | None -> error "unknown label %s in %s" l f.fn_name
  in
  while !running && !pc < ncode do
    st.insts_executed <- st.insts_executed + 1;
    if st.insts_executed > st.config.max_insts then
      error "instruction budget exceeded (infinite loop?)";
    (* profiling and accounting markers are free: they must not perturb
       the metrics they are meant to describe *)
    (match code.(!pc) with
    | Prof _ | Vsaved _ -> ()
    | _ -> st.metrics.insts <- st.metrics.insts + 1);
    let next = !pc + 1 in
    (match code.(!pc) with
    | Label_def _ -> pc := next
    | Vsaved { len } ->
        (* zero-cost accounting marker: one vector memory operation of
           [len] elements avoided by register reuse *)
        let vl, _ = operand st fr len in
        st.metrics.vector_mem_elems_avoided <-
          st.metrics.vector_mem_elems_avoided + as_int vl;
        pc := next
    | Prof ev ->
        (match st.collect with
        | Some c -> (
            match ev with
            | Ploop_enter k ->
                Vpc_profile.Collect.loop_enter c k ~clock:st.clock
            | Ploop_iter k -> Vpc_profile.Collect.loop_iter c k
            | Ploop_exit k ->
                Vpc_profile.Collect.loop_exit c k ~clock:st.clock
            | Pcall_begin (k, callee) ->
                Vpc_profile.Collect.call_begin c k ~callee ~clock:st.clock
            | Pcall_end k -> Vpc_profile.Collect.call_end c k ~clock:st.clock)
        | None -> ());
        pc := next
    | Imov (d, s) ->
        let v, r = operand st fr s in
        let done_ = issue st Cost.imov ~ops_ready:r in
        set_reg d v ~ready:done_;
        pc := next
    | Ialu (op, d, a, b) ->
        let va, ra = operand st fr a in
        let vb, rb = operand st fr b in
        let cost =
          match op with
          | Imul -> Cost.imul
          | Idiv | Irem -> Cost.idiv
          | _ -> Cost.ialu
        in
        let done_ = issue st cost ~ops_ready:(max ra rb) in
        set_reg d (Vi (eval_ialu op (as_int va) (as_int vb))) ~ready:done_;
        pc := next
    | Falu (op, d, a, b, ty) ->
        let va, ra = operand st fr a in
        let vb, rb = operand st fr b in

        let cost = match op with Fdiv -> Cost.fdiv | Fmul -> Cost.fmul | _ -> Cost.falu in
        let done_ = issue st cost ~ops_ready:(max ra rb) in
        st.metrics.fp_ops <- st.metrics.fp_ops + 1;
        let v = eval_falu op (as_float va) (as_float vb) in
        let v = if ty = Ty.Float then round_sp v else v in
        set_reg d v ~ready:done_;
        pc := next
    | Fneg (d, a, ty) ->
        let va, ra = operand st fr a in
        let done_ = issue st Cost.falu ~ops_ready:ra in
        st.metrics.fp_ops <- st.metrics.fp_ops + 1;
        let v = Vf (-.as_float va) in
        let v = if ty = Ty.Float then round_sp v else v in
        set_reg d v ~ready:done_;
        pc := next
    | Cvt_if (d, a) ->
        let va, ra = operand st fr a in
        let done_ = issue st Cost.fcvt ~ops_ready:ra in
        set_reg d (Vf (float_of_int (as_int va))) ~ready:done_;
        pc := next
    | Cvt_fi (d, a) ->
        let va, ra = operand st fr a in
        let done_ = issue st Cost.fcvt ~ops_ready:ra in
        set_reg d (Vi (wrap32 (int_of_float (as_float va)))) ~ready:done_;
        pc := next
    | Cvt_ff (d, a, ty) ->
        let va, ra = operand st fr a in
        let done_ = issue st Cost.fcvt ~ops_ready:ra in
        let v =
          if ty = Ty.Float then
            Vf (Int32.float_of_bits (Int32.bits_of_float (as_float va)))
          else Vf (as_float va)
        in
        set_reg d v ~ready:done_;
        pc := next
    | Load { dst; addr; ty; volatile } ->
        let va, ra = operand st fr addr in
        let ops_ready =
          match st.config.sched, volatile with
          | _, true -> max ra st.last_mem_done
          | Overlap_conservative, false -> max ra st.last_store_done
          | (Overlap_full | Sequential), false -> ra
        in
        let done_ = issue st Cost.load ~ops_ready in
        st.metrics.mem_ops <- st.metrics.mem_ops + 1;
        if volatile then st.last_mem_done <- done_;
        set_reg dst (load_mem st ty (as_int va)) ~ready:done_;
        pc := next
    | Store { src; addr; ty; volatile } ->
        let vs, rs = operand st fr src in
        let va, ra = operand st fr addr in
        let ops_ready =
          (* under full scheduling a store enters the store buffer as soon
             as its address is known; the data is forwarded when ready *)
          let data_wait =
            match st.config.sched with Overlap_full -> ra | _ -> max rs ra
          in
          if volatile then max (max rs ra) st.last_mem_done else data_wait
        in
        let done_ = issue st Cost.store ~ops_ready in
        st.metrics.mem_ops <- st.metrics.mem_ops + 1;
        st.last_store_done <- max st.last_store_done done_;
        if volatile then st.last_mem_done <- done_;
        store_mem st ty (as_int va) (convert ty vs);
        pc := next
    | Jump l ->
        ignore (issue_branch st ~ops_ready:0);
        goto_label l
    | Branch_zero (o, l) ->
        let v, r = operand st fr o in
        ignore (issue_branch st ~ops_ready:r);
        if as_int (convert Ty.Int v) = 0 then goto_label l else pc := next
    | Branch_nonzero (o, l) ->
        let v, r = operand st fr o in
        ignore (issue_branch st ~ops_ready:r);
        if as_int (convert Ty.Int v) <> 0 then goto_label l else pc := next
    | Call { dst; name; args } ->
        let vals_readies = List.map (operand st fr) args in
        let ops_ready =
          List.fold_left (fun acc (_, r) -> max acc r) 0 vals_readies
        in
        st.clock <- max st.clock ops_ready;
        st.clock <- st.clock + Cost.call_overhead;
        st.metrics.calls <- st.metrics.calls + 1;
        let v, _ = run_function st name (List.map fst vals_readies) in
        st.clock <- st.clock + Cost.ret_overhead;
        (match dst with
        | Some d -> set_reg d v ~ready:st.clock
        | None -> ());
        pc := next
    | Ret o ->
        (match o with
        | Some o ->
            let v, r = operand st fr o in
            st.clock <- max st.clock r;
            result := v
        | None -> ());
        running := false
    | Vload { dst; base; stride; len; ty } ->
        let vb, rb = operand st fr base in
        let vs, rs = operand st fr stride in
        let vl, rl = operand st fr len in
        let n = as_int vl in
        let ops_ready =
          let r = max (max rb rs) rl in
          match st.config.sched with
          | Overlap_conservative -> max r st.last_store_done
          | Overlap_full | Sequential -> r
        in
        let done_ =
          issue_vector st ~unit_:Cost.MEM ~startup:Cost.vector_startup_mem
            ~len:n ~ops_ready
        in
        st.metrics.vector_insts <- st.metrics.vector_insts + 1;
        st.metrics.vector_elems <- st.metrics.vector_elems + n;
        st.metrics.mem_ops <- st.metrics.mem_ops + n;
        let b = as_int vb and s = as_int vs in
        fr.vregs.(dst) <- Array.init n (fun i -> load_mem st ty (b + (i * s)));
        fr.vready.(dst) <- done_;
        pc := next
    | Vstore { src; base; stride; len; ty } ->
        let vb, rb = operand st fr base in
        let vs, rs = operand st fr stride in
        let vl, rl = operand st fr len in
        let n = as_int vl in
        let ops_ready = max (max (max rb rs) rl) fr.vready.(src) in
        let done_ =
          issue_vector st ~unit_:Cost.MEM ~startup:Cost.vector_startup_mem
            ~len:n ~ops_ready
        in
        st.metrics.vector_insts <- st.metrics.vector_insts + 1;
        st.metrics.vector_elems <- st.metrics.vector_elems + n;
        st.metrics.mem_ops <- st.metrics.mem_ops + n;
        st.last_store_done <- max st.last_store_done done_;
        let b = as_int vb and s = as_int vs in
        let data = fr.vregs.(src) in
        if Array.length data < n then error "vector register shorter than store";
        for i = 0 to n - 1 do
          store_mem st ty (b + (i * s)) (convert ty data.(i))
        done;
        pc := next
    | Vop { op; dst; a; b; len; ty } ->
        let n, rl =
          let v, r = operand st fr len in
          (as_int v, r)
        in
        let get_src = function
          | Vr vr -> (Array.map (fun x -> x) fr.vregs.(vr), fr.vready.(vr))
          | Vscal o ->
              let v, r = operand st fr o in
              (Array.make (max n 1) v, r)
        in
        let da, ra = get_src a in
        let db, rb = get_src b in
        let ops_ready = max (max ra rb) rl in
        let done_ =
          issue_vector st ~unit_:Cost.FPU ~startup:Cost.vector_startup_fpu
            ~len:n ~ops_ready
        in
        st.metrics.vector_insts <- st.metrics.vector_insts + 1;
        st.metrics.vector_elems <- st.metrics.vector_elems + n;
        if Ty.is_float ty then st.metrics.fp_ops <- st.metrics.fp_ops + n;
        let elt i =
          let x = if i < Array.length da then da.(i) else Vi 0 in
          let y = if i < Array.length db then db.(i) else Vi 0 in
          match op with
          | Fop fop ->
              let v = eval_falu fop (as_float x) (as_float y) in
              if ty = Ty.Float then round_sp v else v
          | Iop iop -> Vi (eval_ialu iop (as_int x) (as_int y))
        in
        fr.vregs.(dst) <- Array.init n elt;
        fr.vready.(dst) <- done_;
        pc := next
    | Vneg { dst; a; len; ty } ->
        let n, rl =
          let v, r = operand st fr len in
          (as_int v, r)
        in
        let da, ra =
          match a with
          | Vr vr -> (fr.vregs.(vr), fr.vready.(vr))
          | Vscal o ->
              let v, r = operand st fr o in
              (Array.make (max n 1) v, r)
        in
        let done_ =
          issue_vector st ~unit_:Cost.FPU ~startup:Cost.vector_startup_fpu
            ~len:n ~ops_ready:(max ra rl)
        in
        st.metrics.vector_insts <- st.metrics.vector_insts + 1;
        st.metrics.vector_elems <- st.metrics.vector_elems + n;
        if Ty.is_float ty then st.metrics.fp_ops <- st.metrics.fp_ops + n;
        fr.vregs.(dst) <-
          Array.init n (fun i ->
              match da.(i) with
              | Vi x -> Vi (wrap32 (-x))
              | Vf x -> if ty = Ty.Float then round_sp (Vf (-.x)) else Vf (-.x));
        fr.vready.(dst) <- done_;
        pc := next
    | Viota { dst; offset; scale; len } ->
        let vo, ro = operand st fr offset in
        let vs, rs = operand st fr scale in
        let vl, rl = operand st fr len in
        let n = as_int vl in
        let done_ =
          issue_vector st ~unit_:Cost.FPU ~startup:Cost.viota_startup ~len:n
            ~ops_ready:(max (max ro rs) rl)
        in
        st.metrics.vector_insts <- st.metrics.vector_insts + 1;
        st.metrics.vector_elems <- st.metrics.vector_elems + n;
        (* iota broadcasts scalars too: scale 0 replicates a float *)
        fr.vregs.(dst) <-
          (match vo, as_int vs with
          | Vf f, 0 -> Array.make n (Vf f)
          | _, s -> Array.init n (fun i -> Vi (wrap32 (as_int vo + (s * i)))));
        fr.vready.(dst) <- done_;
        pc := next
    | Vcvt { dst; a; len; to_ } ->
        let vl, rl = operand st fr len in
        let n = as_int vl in
        let done_ =
          issue_vector st ~unit_:Cost.FPU ~startup:Cost.vector_startup_fpu
            ~len:n ~ops_ready:(max fr.vready.(a) rl)
        in
        st.metrics.vector_insts <- st.metrics.vector_insts + 1;
        st.metrics.vector_elems <- st.metrics.vector_elems + n;
        let src = fr.vregs.(a) in
        fr.vregs.(dst) <-
          Array.init n (fun i ->
              convert to_ (if i < Array.length src then src.(i) else Vi 0));
        fr.vready.(dst) <- done_;
        pc := next
    | Par_enter ->
        if st.par_active then ()  (* nested: account serially *)
        else begin
          st.par_active <- true;
          st.par_enter_clock <- st.clock;
          st.par_buckets <- Array.make (max st.config.procs 1) 0;
          st.par_iter <- -1;
          st.par_iter_start <- st.clock;
          st.par_serial_total <- 0;
          st.metrics.parallel_regions <- st.metrics.parallel_regions + 1
        end;
        pc := next
    | Par_serial_end ->
        (* doacross (§10): the time since this iteration began is the
           serialized pointer-advance part; it accumulates globally *)
        if st.par_active then begin
          st.par_serial_total <-
            st.par_serial_total + (st.clock - st.par_iter_start);
          st.par_iter_start <- st.clock
        end;
        pc := next
    | Par_iter ->
        if st.da_active then begin
          da_finish_iter st;
          st.da_iter <- st.da_iter + 1;
          let p = st.da_iter mod Array.length st.da_proc_done in
          st.da_iter_vstart <- st.da_proc_done.(p);
          st.da_iter_base <- st.clock;
          st.da_stall <- 0
        end
        else if st.par_active then begin
          if st.par_iter >= 0 then begin
            let dt = st.clock - st.par_iter_start in
            let p = st.par_iter mod Array.length st.par_buckets in
            st.par_buckets.(p) <- st.par_buckets.(p) + dt
          end;
          st.par_iter <- st.par_iter + 1;
          st.par_iter_start <- st.clock
        end;
        pc := next
    | Da_enter ->
        if st.par_active then ()  (* nested: account serially *)
        else begin
          st.par_active <- true;
          st.da_active <- true;
          st.par_enter_clock <- st.clock;
          st.da_proc_done <- Array.make (max st.config.procs 1) 0;
          st.da_iter <- -1;
          st.da_iter_vstart <- 0;
          st.da_iter_base <- st.clock;
          st.da_stall <- 0;
          Hashtbl.reset st.da_posts;
          Hashtbl.reset st.da_post_pre;
          st.metrics.parallel_regions <- st.metrics.parallel_regions + 1
        end;
        pc := next
    | Post { chan } ->
        st.metrics.posts <- st.metrics.posts + 1;
        st.clock <- st.clock + Cost.post_cycles;
        if st.da_active then begin
          let now = da_now st in
          Hashtbl.replace st.da_posts (chan, st.da_iter) now;
          let prev =
            Option.value
              (Hashtbl.find_opt st.da_post_pre (chan, st.da_iter - 1))
              ~default:min_int
          in
          Hashtbl.replace st.da_post_pre (chan, st.da_iter) (max now prev)
        end;
        pc := next
    | Wait { chan; dist; cum } ->
        st.metrics.waits <- st.metrics.waits + 1;
        st.clock <- st.clock + Cost.wait_cycles;
        (if st.da_active && st.da_iter >= 0 then begin
           let target = st.da_iter - dist in
           (* iterations below the loop's lower bound count as posted *)
           if target >= 0 then
             let table = if cum then st.da_post_pre else st.da_posts in
             match Hashtbl.find_opt table (chan, target) with
             | Some post_v ->
                 let stall = post_v - da_now st in
                 if stall > 0 then begin
                   st.da_stall <- st.da_stall + stall;
                   st.metrics.post_wait_stalls <-
                     st.metrics.post_wait_stalls + stall
                 end
             | None ->
                 error
                   "doacross %swait on c%d in iteration %d: iteration %d \
                    never posted (deadlock)"
                   (if cum then "cumulative " else "")
                   chan st.da_iter target
         end);
        pc := next
    | Par_exit ->
        if st.da_active then begin
          da_finish_iter st;
          let serial_time = st.clock - st.par_enter_clock in
          let par_time =
            Array.fold_left max 0 st.da_proc_done + Cost.barrier_cycles
          in
          if par_time < serial_time then
            st.saved <- st.saved + (serial_time - par_time);
          st.da_active <- false;
          st.par_active <- false;
          Hashtbl.reset st.da_posts;
          Hashtbl.reset st.da_post_pre
        end
        else if st.par_active then begin
          (if st.par_iter >= 0 then begin
             let dt = st.clock - st.par_iter_start in
             let p = st.par_iter mod Array.length st.par_buckets in
             st.par_buckets.(p) <- st.par_buckets.(p) + dt
           end);
          let serial_time = st.clock - st.par_enter_clock in
          let par_time =
            st.par_serial_total
            + Array.fold_left max 0 st.par_buckets
            + Cost.barrier_cycles
          in
          if par_time < serial_time then
            st.saved <- st.saved + (serial_time - par_time);
          st.par_active <- false
        end;
        pc := next);
    ()
  done;
  (!result, st.clock)

(* ----------------------------------------------------------------- *)
(* Entry points                                                      *)
(* ----------------------------------------------------------------- *)

type run_result = {
  return_value : value;
  stdout_text : string;
  metrics : metrics;
  mflops_rate : float;
  final_state : state;
}

let rec const_value (e : Expr.t) : value =
  match e.Expr.desc with
  | Expr.Const_int n -> Vi n
  | Expr.Const_float f -> Vf f
  | Expr.Cast (ty, a) -> convert ty (const_value a)
  | Expr.Unop (Expr.Neg, a) -> (
      match const_value a with Vi n -> Vi (-n) | Vf f -> Vf (-.f))
  | _ -> error "non-constant global initializer"

let init_globals st =
  List.iter
    (fun (g : Prog.global) ->
      let addr = Hashtbl.find st.layout.addr_of g.gvar.Var.id in
      let ty = g.gvar.Var.ty in
      match g.Prog.ginit with
      | Prog.Init_none -> ()
      | Prog.Init_scalar e ->
          store_mem st ty addr (convert ty (const_value e))
      | Prog.Init_array es ->
          let elt = match ty with Ty.Array (e, _) -> e | t -> t in
          let esize = Ty.sizeof st.layout.lprog.Prog.structs elt in
          List.iteri
            (fun i e ->
              store_mem st elt (addr + (i * esize)) (convert elt (const_value e)))
            es
      | Prog.Init_string s ->
          String.iteri (fun i c -> Bytes.set st.mem (addr + i) c) s;
          Bytes.set st.mem (addr + String.length s) '\000')
    (Prog.globals_list st.layout.lprog)

let create_state ?(config = default_config) ?collect (program : Isa.program)
    (layout : layout) : state =
  let st =
    {
      collect;
      program;
      config;
      mem = Bytes.make mem_size '\000';
      layout;
      stack_top = layout.globals_top + 64;
      output = Buffer.create 256;
      metrics = new_metrics ();
      clock = 0;
      saved = 0;
      unit_free = Hashtbl.create 4;
      last_store_done = 0;
      last_mem_done = 0;
      par_buckets = [||];
      par_iter = -1;
      par_iter_start = 0;
      par_enter_clock = 0;
      par_active = false;
      par_serial_total = 0;
      da_active = false;
      da_proc_done = [||];
      da_iter = -1;
      da_iter_vstart = 0;
      da_iter_base = 0;
      da_stall = 0;
      da_posts = Hashtbl.create 64;
      da_post_pre = Hashtbl.create 64;
      insts_executed = 0;
      issued = 0;
    }
  in
  init_globals st;
  st

(* Declare every instrumented site to the collector before execution, so
   a site the run never reaches is recorded as measured-cold (zero
   counts) rather than absent. *)
let declare_sites (c : Vpc_profile.Collect.t) (program : Isa.program) =
  Hashtbl.iter
    (fun _ (f : Isa.func) ->
      Array.iter
        (function
          | Prof (Ploop_enter k) -> Vpc_profile.Collect.declare_loop c k
          | Prof (Pcall_begin (k, callee)) ->
              Vpc_profile.Collect.declare_call c k ~callee
          | _ -> ())
        f.code)
    program.Isa.funcs

let sched_name = function
  | Sequential -> "seq"
  | Overlap_conservative -> "conservative"
  | Overlap_full -> "full"

let run ?config ?(entry = "main") ?(args = []) ?collect ?(vreuse = false)
    (prog : Prog.t) : run_result =
  let layout = layout_globals prog in
  let program =
    Codegen.gen_program prog ~vreuse
      ~instrument:(Option.is_some collect)
      ~global_addr:(fun id ->
        match Hashtbl.find_opt layout.addr_of id with
        | Some a -> a
        | None -> error "no address for global %d" id)
  in
  (match collect with Some c -> declare_sites c program | None -> ());
  let st = create_state ?config ?collect program layout in
  let return_value, _ = run_function st entry args in
  st.metrics.cycles <- st.clock - st.saved;
  {
    return_value;
    stdout_text = Buffer.contents st.output;
    metrics = st.metrics;
    mflops_rate = mflops st.metrics ~clock_mhz:st.config.clock_mhz;
    final_state = st;
  }

(* Read back a named global array, for tests comparing against the IL
   interpreter. *)
let global_array st prog name n =
  let g =
    List.find_opt
      (fun (g : Prog.global) -> g.gvar.Var.name = name)
      (Prog.globals_list prog)
  in
  match g with
  | None -> error "no global %s" name
  | Some g ->
      let elt = match g.gvar.Var.ty with Ty.Array (e, _) -> e | t -> t in
      let size = Ty.sizeof prog.Prog.structs elt in
      let addr = Hashtbl.find st.layout.addr_of g.gvar.Var.id in
      List.init n (fun i -> load_mem st elt (addr + (i * size)))
