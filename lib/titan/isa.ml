(* The Titan instruction set, as this reproduction models it (paper §2):
   a RISC integer unit, a pipelined floating-point unit that also executes
   all vector instructions, and a large vector register file addressable
   at any base and length.

   Registers are virtual (unbounded): the real machine's register file is
   so large (8192 words) that spilling is not the phenomenon of interest,
   and the paper itself leans on "global register allocation ... generate
   temporary variables with a fair amount of impunity". *)

open Vpc_il

type reg = int   (* scalar register (integer or float by use) *)
type vreg = int  (* vector register *)

type operand =
  | Reg of reg
  | Imm_int of int
  | Imm_float of float

type ialu_op =
  | Iadd | Isub | Imul | Idiv | Irem
  | Ishl | Ishr | Iand | Ior | Ixor
  | Icmp_eq | Icmp_ne | Icmp_lt | Icmp_le | Icmp_gt | Icmp_ge
  | Inot  (* bitwise complement, second operand ignored *)

type falu_op =
  | Fadd | Fsub | Fmul | Fdiv
  | Fcmp_eq | Fcmp_ne | Fcmp_lt | Fcmp_le | Fcmp_gt | Fcmp_ge

type vsrc =
  | Vr of vreg
  | Vscal of operand  (* scalar operand broadcast *)

type label = string

type inst =
  | Imov of reg * operand
  | Ialu of ialu_op * reg * operand * operand
  | Falu of falu_op * reg * operand * operand * Ty.t
  | Fneg of reg * operand * Ty.t
  | Cvt_if of reg * operand  (* int -> float *)
  | Cvt_fi of reg * operand  (* float -> int (truncate) *)
  | Cvt_ff of reg * operand * Ty.t  (* float width change *)
  | Load of { dst : reg; addr : operand; ty : Ty.t; volatile : bool }
  | Store of { src : operand; addr : operand; ty : Ty.t; volatile : bool }
  | Jump of label
  | Branch_zero of operand * label     (* jump when operand = 0 *)
  | Branch_nonzero of operand * label
  | Label_def of label
  | Call of { dst : reg option; name : string; args : operand list }
  | Ret of operand option
  (* vector unit *)
  | Vload of { dst : vreg; base : operand; stride : operand; len : operand; ty : Ty.t }
  | Vstore of { src : vreg; base : operand; stride : operand; len : operand; ty : Ty.t }
  | Vop of { op : falu_op_or_int; dst : vreg; a : vsrc; b : vsrc; len : operand; ty : Ty.t }
  | Vneg of { dst : vreg; a : vsrc; len : operand; ty : Ty.t }
  | Viota of { dst : vreg; offset : operand; scale : operand; len : operand }
  | Vcvt of { dst : vreg; a : vreg; len : operand; to_ : Ty.t }
  (* parallel-region markers: the simulator spreads the iterations of the
     bracketed loop over the machine's processors *)
  | Par_enter
  | Par_iter   (* marks the start of each parallel iteration *)
  | Par_serial_end
      (* end of a doacross iteration's serialized prefix (§10) *)
  | Par_exit
  (* doacross region: like [Par_enter] but iterations are pipelined
     round-robin with point-to-point post/wait ordering rather than
     proven independent.  The region is closed by [Par_exit] and each
     iteration begins with [Par_iter]. *)
  | Da_enter
  | Post of { chan : int }
      (* iteration i records counter [chan] as posted at the current cycle *)
  | Wait of { chan : int; dist : int; cum : bool }
      (* block until iteration i-dist has posted [chan]; iterations below
         the loop's lower bound count as already posted.  [cum] = wait
         until EVERY iteration <= i-dist has posted — used when the
         carried distance is symbolic with proven lower bound [dist] *)
  (* profiling markers (zero cost, zero semantics): emitted only by
     instrumented codegen; the simulator feeds them to a collector *)
  | Prof of prof_event
  (* accounting marker (zero cost, zero semantics): one vector memory
     operation of [len] elements avoided by register reuse; the simulator
     adds len to [Machine.metrics.vector_mem_elems_avoided] *)
  | Vsaved of { len : operand }

and falu_op_or_int = Fop of falu_op | Iop of ialu_op

and prof_event =
  | Ploop_enter of Vpc_profile.Key.t
  | Ploop_iter of Vpc_profile.Key.t
  | Ploop_exit of Vpc_profile.Key.t
  | Pcall_begin of Vpc_profile.Key.t * string  (* site, callee name *)
  | Pcall_end of Vpc_profile.Key.t

type func = {
  fn_name : string;
  code : inst array;
  (* var id -> scalar register *)
  reg_of_var : (int, reg) Hashtbl.t;
  (* var id -> frame offset (memory-resident locals) *)
  frame_offset : (int, int) Hashtbl.t;
  frame_size : int;
  param_ids : int list;
  labels : (string, int) Hashtbl.t;  (* label -> pc *)
  nregs : int;
  nvregs : int;
}

type program = {
  funcs : (string, func) Hashtbl.t;
  prog : Prog.t;  (* for global layout and metadata *)
}

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "r%d" r
  | Imm_int n -> Fmt.pf ppf "#%d" n
  | Imm_float f -> Fmt.pf ppf "#%g" f

let ialu_name = function
  | Iadd -> "add" | Isub -> "sub" | Imul -> "mul" | Idiv -> "div"
  | Irem -> "rem" | Ishl -> "shl" | Ishr -> "shr" | Iand -> "and"
  | Ior -> "or" | Ixor -> "xor" | Icmp_eq -> "cmpeq" | Icmp_ne -> "cmpne"
  | Icmp_lt -> "cmplt" | Icmp_le -> "cmple" | Icmp_gt -> "cmpgt"
  | Icmp_ge -> "cmpge" | Inot -> "not"

let falu_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fcmp_eq -> "fcmpeq" | Fcmp_ne -> "fcmpne" | Fcmp_lt -> "fcmplt"
  | Fcmp_le -> "fcmple" | Fcmp_gt -> "fcmpgt" | Fcmp_ge -> "fcmpge"

let pp_vsrc ppf = function
  | Vr v -> Fmt.pf ppf "v%d" v
  | Vscal o -> pp_operand ppf o

let pp_inst ppf = function
  | Imov (d, s) -> Fmt.pf ppf "mov r%d, %a" d pp_operand s
  | Ialu (op, d, a, b) ->
      Fmt.pf ppf "%s r%d, %a, %a" (ialu_name op) d pp_operand a pp_operand b
  | Falu (op, d, a, b, ty) ->
      Fmt.pf ppf "%s.%s r%d, %a, %a" (falu_name op)
        (if ty = Ty.Float then "s" else "d")
        d pp_operand a pp_operand b
  | Fneg (d, a, ty) ->
      Fmt.pf ppf "fneg.%s r%d, %a"
        (if ty = Ty.Float then "s" else "d")
        d pp_operand a
  | Cvt_if (d, a) -> Fmt.pf ppf "cvtif r%d, %a" d pp_operand a
  | Cvt_fi (d, a) -> Fmt.pf ppf "cvtfi r%d, %a" d pp_operand a
  | Cvt_ff (d, a, ty) -> Fmt.pf ppf "cvtff[%a] r%d, %a" Ty.pp ty d pp_operand a
  | Load { dst; addr; ty; volatile } ->
      Fmt.pf ppf "load%s[%a] r%d, (%a)" (if volatile then ".v" else "") Ty.pp ty
        dst pp_operand addr
  | Store { src; addr; ty; volatile } ->
      Fmt.pf ppf "store%s[%a] %a, (%a)" (if volatile then ".v" else "") Ty.pp
        ty pp_operand src pp_operand addr
  | Jump l -> Fmt.pf ppf "jmp %s" l
  | Branch_zero (o, l) -> Fmt.pf ppf "bz %a, %s" pp_operand o l
  | Branch_nonzero (o, l) -> Fmt.pf ppf "bnz %a, %s" pp_operand o l
  | Label_def l -> Fmt.pf ppf "%s:" l
  | Call { dst; name; args } ->
      Fmt.pf ppf "call %a%s(%a)"
        Fmt.(option (fmt "r%d = "))
        dst name
        Fmt.(list ~sep:comma pp_operand)
        args
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some o) -> Fmt.pf ppf "ret %a" pp_operand o
  | Vload { dst; base; stride; len; ty } ->
      Fmt.pf ppf "vload[%a] v%d, (%a):%a:%a" Ty.pp ty dst pp_operand base
        pp_operand stride pp_operand len
  | Vstore { src; base; stride; len; ty } ->
      Fmt.pf ppf "vstore[%a] v%d, (%a):%a:%a" Ty.pp ty src pp_operand base
        pp_operand stride pp_operand len
  | Vop { op; dst; a; b; len; _ } ->
      let name = match op with Fop f -> falu_name f | Iop i -> ialu_name i in
      Fmt.pf ppf "v%s v%d, %a, %a, len=%a" name dst pp_vsrc a pp_vsrc b
        pp_operand len
  | Vneg { dst; a; len; _ } ->
      Fmt.pf ppf "vneg v%d, %a, len=%a" dst pp_vsrc a pp_operand len
  | Viota { dst; offset; scale; len } ->
      Fmt.pf ppf "viota v%d, %a, %a, len=%a" dst pp_operand offset pp_operand
        scale pp_operand len
  | Vcvt { dst; a; len; to_ } ->
      Fmt.pf ppf "vcvt[%a] v%d, v%d, len=%a" Ty.pp to_ dst a pp_operand len
  | Par_enter -> Fmt.string ppf "par.enter"
  | Par_iter -> Fmt.string ppf "par.iter"
  | Par_serial_end -> Fmt.string ppf "par.serial_end"
  | Par_exit -> Fmt.string ppf "par.exit"
  | Da_enter -> Fmt.string ppf "da.enter"
  | Post { chan } -> Fmt.pf ppf "post c%d" chan
  | Wait { chan; dist; cum } ->
      Fmt.pf ppf "%s c%d, dist=%d" (if cum then "cwait" else "wait") chan dist
  | Prof (Ploop_enter k) ->
      Fmt.pf ppf "prof.loop_enter %a" Vpc_profile.Key.pp k
  | Prof (Ploop_iter k) -> Fmt.pf ppf "prof.loop_iter %a" Vpc_profile.Key.pp k
  | Prof (Ploop_exit k) -> Fmt.pf ppf "prof.loop_exit %a" Vpc_profile.Key.pp k
  | Prof (Pcall_begin (k, callee)) ->
      Fmt.pf ppf "prof.call_begin %a %s" Vpc_profile.Key.pp k callee
  | Prof (Pcall_end k) -> Fmt.pf ppf "prof.call_end %a" Vpc_profile.Key.pp k
  | Vsaved { len } -> Fmt.pf ppf "vsaved len=%a" pp_operand len

let pp_func ppf (f : func) =
  Fmt.pf ppf "%s:  ; %d regs, %d vregs, frame %d@." f.fn_name f.nregs f.nvregs
    f.frame_size;
  Array.iter (fun i -> Fmt.pf ppf "  %a@." pp_inst i) f.code
