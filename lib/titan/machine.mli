(** The Titan simulator: executes Titan instructions for real values
    while accounting cycles under a configurable scheduling model.

    Scheduling models (§6's dependence-driven scheduling):
    - [Sequential]: each instruction starts when the previous completes —
      the naive baseline;
    - [Overlap_conservative]: units overlap but issue is in-order and
      every load waits for every earlier store (no dependence
      information);
    - [Overlap_full]: dataflow-limited — operations wait only for inputs,
      the memory port, and a 4-wide issue floor; stores enter a store
      buffer at address-ready.  This models a loop list-scheduled with
      the compiler's dependence graph; pair it with compilations whose
      analysis actually ran.

    A parallel DO loop's iterations are distributed round-robin over the
    configured processors; the region costs the slowest processor plus a
    barrier. *)

open Vpc_il

exception Runtime_error of string

type sched_mode = Sequential | Overlap_conservative | Overlap_full

type config = {
  procs : int;          (** 1-4 on the Titan *)
  sched : sched_mode;
  clock_mhz : float;
  max_insts : int;      (** runaway guard *)
}

(** 1 processor, [Overlap_full], 16 MHz. *)
val default_config : config

type value = Vi of int | Vf of float

val as_int : value -> int
val as_float : value -> float

type layout = {
  addr_of : (int, int) Hashtbl.t;  (** global var id → address *)
  globals_top : int;
  lprog : Prog.t;
}

val layout_globals : Prog.t -> layout

type metrics = {
  mutable cycles : int;  (** wall-clock cycles, parallel-adjusted *)
  mutable insts : int;
  mutable fp_ops : int;
  mutable mem_ops : int;
  mutable vector_insts : int;
  mutable vector_elems : int;
  mutable parallel_regions : int;
  mutable calls : int;
  mutable post_wait_stalls : int;
      (** cycles doacross iterations spent blocked in a wait for a
          producer iteration's post (pipeline virtual time) *)
  mutable posts : int;  (** post instructions executed *)
  mutable waits : int;  (** wait instructions executed *)
  mutable vector_mem_elems_avoided : int;
      (** vector memory traffic (elements) avoided by register reuse *)
  mutable busy_iu : int;  (** integer-unit occupancy, cycles *)
  mutable busy_fpu : int;  (** FPU/vector-unit occupancy, cycles *)
  mutable busy_mem : int;  (** memory-port occupancy, cycles *)
}

val mflops : metrics -> clock_mhz:float -> float

type state

type run_result = {
  return_value : value;
  stdout_text : string;
  metrics : metrics;
  mflops_rate : float;
  final_state : state;
}

(** CLI-facing name of a scheduling model ("seq", "conservative",
    "full"), also recorded in profile headers. *)
val sched_name : sched_mode -> string

(** Compile (to Titan code) and execute [entry] (default ["main"]).
    With [collect], codegen is instrumented with profiling markers and
    the run feeds the collector; markers cost zero cycles, so the
    metrics are those of the uninstrumented program.  With [vreuse],
    codegen runs its redundant-Vload cleanup (see {!Codegen.gen_func}). *)
val run :
  ?config:config ->
  ?entry:string ->
  ?args:value list ->
  ?collect:Vpc_profile.Collect.t ->
  ?vreuse:bool ->
  Prog.t ->
  run_result

(** Read back a named global array from a finished run, for differential
    tests against the interpreter. *)
val global_array : state -> Prog.t -> string -> int -> value list
