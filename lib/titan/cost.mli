(** The Titan timing model.  Parameters were calibrated once against the
    paper's two published backsolve rates (§6: 0.5 and 1.9 MFLOPS) and
    then left alone; every experiment uses this single model. *)

type unit_ = IU | FPU | MEM | CTRL

(** Per-operation cost: the execution unit, the issue interval (pipelined
    units accept one per cycle), and the result latency. *)
type op_cost = { unit_ : unit_; issue : int; latency : int }

val imov : op_cost
val ialu : op_cost
val imul : op_cost
val idiv : op_cost
val falu : op_cost
val fmul : op_cost
val fdiv : op_cost
val fcvt : op_cost
val load : op_cost
val store : op_cost
val branch : op_cost
val jump : op_cost

(** Vector operations cost startup + one element per cycle. *)
val vector_startup_mem : int

val vector_startup_fpu : int
val viota_startup : int

(** Call/return overhead beyond the callee's own cycles. *)
val call_overhead : int

val ret_overhead : int

(** Synchronization closing a parallel loop. *)
val barrier_cycles : int

(** The Titan clock: 16 MHz. *)
val clock_mhz : float

(** {2 Loop-cost estimates for profile-guided decisions}

    Calibrated against the simulator's scheduling models: the vectorizer
    consults these with measured trip counts to choose serial vs vector
    vs do-parallel code and to pick strip lengths. *)

type sched = Seq | Conservative | Full

(** Of a {!Machine.sched_name}-style name; unknown names mean [Full]. *)
val sched_of_name : string -> sched

(** One loop iteration summarized by its operation mix. *)
type shape = { mem_refs : int; flops : int; iops : int }

(** Operation mix of a statement list treated as one loop iteration. *)
val shape_of_stmts : Vpc_il.Stmt.t list -> shape

val add_shape : shape -> shape -> shape

(** Steady-state cycles of one serial scalar iteration (index increment
    and loop branch included). *)
val scalar_iter_cycles : sched:sched -> shape -> int

val scalar_loop_cycles : sched:sched -> shape -> trips:int -> int

(** A do-parallel loop with a serial body: round-robin buckets plus the
    closing barrier. *)
val parallel_scalar_cycles :
  sched:sched -> shape -> trips:int -> procs:int -> int

(** One vector strip of [len] elements (startup + element chain). *)
val vector_strip_cycles : shape -> len:int -> int

(** A whole vectorized loop: short vector when [trips <= vlen],
    otherwise strip-mined, optionally spread over processors. *)
val vector_loop_cycles :
  shape -> trips:int -> vlen:int -> procs:int -> parallel:bool -> int

(** Cheaper of serial-strip and parallel-strip vector code. *)
val best_vector_cycles :
  shape -> trips:int -> vlen:int -> procs:int -> parallelize:bool -> int

(** Smallest trip count at which vector code beats scalar code, [None]
    if it never does within a generous horizon. *)
val vector_break_even :
  sched:sched -> shape -> vlen:int -> procs:int -> parallelize:bool -> int option

(** {2 Memory-port traffic under vector-register reuse} *)

(** One vector strip of [len] elements when [resident] of its [mem_refs]
    references stay in vector registers: the remaining port traffic
    overlaps with FPU work, so the strip costs the busier unit, not the
    sum. *)
val strip_port_cycles : shape -> len:int -> resident:int -> int

(** A vectorized loop of [trips] elements repeated [reps] times with
    [resident] references held in registers across all repetitions; the
    one-time load/store of the resident values is amortized over
    [reps]. *)
val reuse_vector_loop_cycles :
  shape -> trips:int -> vlen:int -> resident:int -> reps:int -> int

(** {2 Doacross pipelining} *)

(** Cycles a post / a wait instruction charges the issuing iteration. *)
val post_cycles : int

val wait_cycles : int

(** One synchronized carried edge, summarized for the pipeline model:
    cycle offsets of the post (source-statement completion) and the wait
    (destination-statement start) within a single iteration, plus the
    carried distance in iterations. *)
type dedge = { post_offset : int; wait_offset : int; ddist : int }

(** Minimum spacing between successive iteration starts: the max over
    the edges' distance-normalized stage latencies
    [(post_offset - wait_offset + sync cost) / ddist] and the
    round-robin processor bound [iter_cycles / procs]. *)
val doacross_iter_delay : iter_cycles:int -> procs:int -> dedge list -> int

(** Whole doacross loop: pipeline fill + one delay per remaining
    iteration + the closing barrier; each iteration also pays its
    post/wait instructions. *)
val doacross_loop_cycles :
  sched:sched -> shape -> trips:int -> procs:int -> dedge list -> int

(** {2 Nest-traversal estimates for loop restructuring} *)

(** Trip count assumed when neither bounds nor a profile reveal one. *)
val default_trip : int

(** Control overhead of entering a counted loop once — paid per
    enclosing iteration inside a nest. *)
val loop_overhead_cycles : int

(** Tie-break penalty per memory reference with a byte stride wider
    than one element: favors stride-1 innermost access between
    otherwise equal loop orders. *)
val strided_mem_penalty : bytes:int -> int

(** Whole-nest cycles under one loop order: the innermost loop (vector
    when [vectorizable], else scalar) runs once per combination of
    outer iterations ([trips], outermost first), plus per-level entry
    overhead and the stride penalties of [inner_strides].  With
    [pgo_gates] (a measured profile gates vectorization), a
    vectorizable inner level is priced at the cheaper of its vector and
    scalar forms, letting stride penalties break otherwise-equal
    orders. *)
val nest_order_cycles :
  sched:sched ->
  ?pgo_gates:bool ->
  shape ->
  trips:int array ->
  vlen:int ->
  procs:int ->
  parallelize:bool ->
  vectorizable:bool ->
  inner_strides:int list ->
  int
