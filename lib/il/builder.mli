(** Convenience constructors used by the front end and the passes:
    fresh temporaries (allocated program-wide, registered in the current
    function) and fresh statements. *)

type ctx = { prog : Prog.t; func : Func.t }

val ctx : Prog.t -> Func.t -> ctx

(** A fresh compiler temporary of the given type, registered in the
    function's variable table. *)
val fresh_temp : ctx -> ?name:string -> Ty.t -> Var.t

val stmt : ctx -> ?loc:Vpc_support.Loc.t -> Stmt.desc -> Stmt.t

(** [assign ctx v e]: [v = e], casting [e] to [v]'s type. *)
val assign : ctx -> ?loc:Vpc_support.Loc.t -> Var.t -> Expr.t -> Stmt.t

val assign_id : ctx -> ?loc:Vpc_support.Loc.t -> int -> Expr.t -> Stmt.t

(** [store ctx addr e]: [*addr = e]. *)
val store : ctx -> ?loc:Vpc_support.Loc.t -> Expr.t -> Expr.t -> Stmt.t

val goto : ctx -> ?loc:Vpc_support.Loc.t -> string -> Stmt.t
val label : ctx -> ?loc:Vpc_support.Loc.t -> string -> Stmt.t
val nop : ctx -> Stmt.t

val if_ :
  ctx -> ?loc:Vpc_support.Loc.t -> Expr.t -> Stmt.t list -> Stmt.t list -> Stmt.t

val while_ :
  ctx ->
  ?loc:Vpc_support.Loc.t ->
  ?info:Stmt.loop_info ->
  Expr.t ->
  Stmt.t list ->
  Stmt.t

val do_loop :
  ctx ->
  ?loc:Vpc_support.Loc.t ->
  ?parallel:bool ->
  ?independent:bool ->
  ?sync:Stmt.dsync list ->
  index:int ->
  lo:Expr.t ->
  hi:Expr.t ->
  step:Expr.t ->
  Stmt.t list ->
  Stmt.t

val return : ctx -> ?loc:Vpc_support.Loc.t -> Expr.t option -> Stmt.t

(** Bind [e] to a fresh temporary: [(t = e, read of t)] — the pervasive
    (SL, E) building block of the §4 lowering. *)
val bind :
  ctx -> ?loc:Vpc_support.Loc.t -> ?name:string -> Expr.t -> Stmt.t * Expr.t
