(** A whole program: struct layouts, global variables with initializers,
    and functions.  Variable ids come from a single program-wide counter
    so expressions can name any variable unambiguously. *)

type ginit =
  | Init_none
  | Init_scalar of Expr.t      (** constant expression *)
  | Init_array of Expr.t list  (** element constants, in order *)
  | Init_string of string      (** char-array contents; NUL appended *)

type global = { gvar : Var.t; ginit : ginit }

type t = {
  structs : Ty.struct_env;
  globals : (int, global) Hashtbl.t;
  mutable funcs : Func.t list;  (** in source order *)
  var_gen : Vpc_support.Gensym.t;
}

val create : unit -> t
val fresh_var_id : t -> int

(** An independent copy sharing no mutable state (cloned functions,
    copied tables, frozen gensym), with source locations preserved. *)
val clone : t -> t
val add_global : t -> ?ginit:ginit -> Var.t -> unit
val add_func : t -> Func.t -> unit
val find_func : t -> string -> Func.t option
val func_exn : t -> string -> Func.t

(** Replace the function of the same name. *)
val replace_func : t -> Func.t -> unit

(** Resolve a variable id: the given function's table first, then the
    globals, then (inlining can leave foreign ids) any function's table. *)
val find_var : t -> Func.t option -> int -> Var.t option

val var_exn : t -> Func.t option -> int -> Var.t
val globals_list : t -> global list
val ginit_to_sexp : ginit -> Vpc_support.Sexp.t
val ginit_of_sexp : Vpc_support.Sexp.t -> ginit
val to_sexp : t -> Vpc_support.Sexp.t
val of_sexp : Vpc_support.Sexp.t -> t
