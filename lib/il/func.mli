(** An IL function: parameters, a variable table keyed by id, and a
    statement-tree body.  Bodies are mutable so optimization passes can
    rewrite in place; everything else is data. *)

type t = {
  name : string;
  ret_ty : Ty.t;
  params : int list;  (** var ids, in declaration order *)
  vars : (int, Var.t) Hashtbl.t;
  mutable body : Stmt.t list;
  is_static : bool;
  stmt_gen : Vpc_support.Gensym.t;
  label_gen : Vpc_support.Gensym.t;
  loc : Vpc_support.Loc.t;
}

val create :
  name:string ->
  ret_ty:Ty.t ->
  ?is_static:bool ->
  ?loc:Vpc_support.Loc.t ->
  unit ->
  t

(** An independent copy sharing no mutable state with the original
    (fresh body cell, variable table, and gensym counters); statements —
    immutable — stay shared.  Unlike a sexp round-trip, source locations
    survive, which is what lets the tuner's scout compile map loop nests
    back to the locations the real pipeline will see. *)
val clone : t -> t

val add_var : t -> Var.t -> unit
val find_var : t -> int -> Var.t option
val var_exn : t -> int -> Var.t

(** A statement with a fresh id from this function's counter. *)
val fresh_stmt : t -> ?loc:Vpc_support.Loc.t -> Stmt.desc -> Stmt.t

(** A fresh label name, prefixed for readability. *)
val fresh_label : t -> string -> string

(** All variables of the function, id-ordered. *)
val locals : t -> Var.t list

(** All statements of the body, flattened preorder. *)
val all_stmts : t -> Stmt.t list

(** Variables whose address is taken anywhere in the body, plus memory
    objects — exactly the variables stores through pointers or calls may
    modify. *)
val addressed_vars : t -> (int, unit) Hashtbl.t

val to_sexp : t -> Vpc_support.Sexp.t
val of_sexp : Vpc_support.Sexp.t -> t
