(** IL statements.  All side effects are explicit: the IL "has an
    assignment statement but no assignment operator" (paper §4).  Loops
    appear in three strengths: [While] (what the front end emits for both
    `while` and `for`), [Do_loop] (the Fortran-style counted loop produced
    by while→DO conversion, §5.2), and [Vector] (the array-section
    assignment produced by the vectorizer, §9's colon notation). *)

type lvalue =
  | Lvar of int      (** scalar variable *)
  | Lmem of Expr.t   (** [*addr = ...] with [addr : Ptr elt] *)

type call_target = Direct of string | Indirect of Expr.t

type t = { id : int; desc : desc; loc : Vpc_support.Loc.t }

and desc =
  | Assign of lvalue * Expr.t
  | Call of lvalue option * call_target * Expr.t list
  | If of Expr.t * t list * t list
  | While of loop_info * Expr.t * t list
  | Do_loop of do_loop
  | Goto of string
  | Label of string
  | Return of Expr.t option
  | Vector of vstmt
  | Vdef of vdef
  | Nop

(** Counted loop: index runs [lo, lo+step, ...] while
    [step>0 ? index<=hi : index>=hi].  Bounds are loop-entry values (the
    producer binds variant bounds to temporaries).  [parallel] marks
    iterations proven independent and spread over processors
    ("do parallel"). *)
and do_loop = {
  index : int;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t;
  body : t list;
  parallel : bool;
  independent : bool;  (** user pragma: iterations independent *)
  sync : dsync list;
      (** non-empty marks a doacross loop: iterations are pipelined
          across processors, each carried dependence ordered by the
          post/wait pair recorded here *)
}

(** One synchronized carried dependence of a doacross loop: iteration [i]
    posts counter [chan] after body position [post_after]; before body
    position [wait_before] it waits for iteration [i - distance] to have
    posted (iterations below the lower bound count as posted).  With
    [cum] set the wait is cumulative — every iteration [<= i - distance]
    must have posted — which soundly orders carried dependences whose
    distance is symbolic with proven lower bound [distance]. *)
and dsync = {
  chan : int;
  distance : int;     (** carried distance (or its lower bound), >= 1 *)
  post_after : int;
  wait_before : int;
  cum : bool;
}

and loop_info = {
  pragma_independent : bool;  (** user pragma: iterations independent *)
  doacross : bool;
      (** §10: the body is spread over processors with a serialized
          prefix (the pointer advance) *)
  serial_prefix : int;  (** leading body statements that stay serial *)
}

(** Vector assignment [dst = src] over [count] elements of type [velt];
    bases and strides are bytes. *)
and vstmt = { vdst : section; vsrc : vexpr; velt : Ty.t }

and section = {
  base : Expr.t;    (** byte address of element 0, loop-invariant *)
  count : Expr.t;   (** element count *)
  stride : Expr.t;  (** byte stride *)
}

and vexpr =
  | Vsec of section
  | Vscalar of Expr.t          (** invariant scalar broadcast *)
  | Viota of Expr.t * Expr.t   (** element i = offset + scale*i *)
  | Vcast of Ty.t * vexpr      (** elementwise conversion *)
  | Vbin of Expr.binop * vexpr * vexpr
  | Vun of Expr.unop * vexpr
  | Vtmp of int * Ty.t
      (** vector temporary: value of the most recent [Vdef] of this id
          (element type recorded alongside) *)

(** Vector temporary definition [vt<n> = vval] over [vcount] elements of
    type [vty].  The value lives in a vector register and never touches
    memory; produced only by the vector-register reuse pass.  A [Vdef]
    reading its own [Vtmp] is the accumulator idiom — the right-hand side
    is evaluated in full before the temporary is rebound. *)
and vdef = { vt : int; vval : vexpr; vcount : Expr.t; vty : Ty.t }

val no_info : loop_info
val mk : id:int -> ?loc:Vpc_support.Loc.t -> desc -> t

(** {1 Traversal} *)

(** Preorder over a statement and everything nested in it. *)
val iter : (t -> unit) -> t -> unit

val iter_list : (t -> unit) -> t list -> unit

(** Rebuild a statement list, mapping each statement to zero or more
    replacements; children are processed first. *)
val map_list : (t -> t list) -> t list -> t list

(** Map the expressions of this statement only (conditions and bounds of
    structured statements, not their bodies). *)
val map_exprs_shallow : (Expr.t -> Expr.t) -> t -> t

(** The expressions this statement itself reads (shallow). *)
val shallow_exprs : t -> Expr.t list

(** The scalar variable this statement defines, if any. *)
val defined_var : t -> int option

(** Variables read by this statement itself (shallow). *)
val shallow_uses : t -> int list

(** Conservative: does executing this statement write memory? *)
val writes_memory : t -> bool

(** {1 Serialization} *)

val lvalue_to_sexp : lvalue -> Vpc_support.Sexp.t
val lvalue_of_sexp : Vpc_support.Sexp.t -> lvalue
val section_to_sexp : section -> Vpc_support.Sexp.t
val section_of_sexp : Vpc_support.Sexp.t -> section
val vexpr_to_sexp : vexpr -> Vpc_support.Sexp.t
val vexpr_of_sexp : Vpc_support.Sexp.t -> vexpr
val dsync_to_sexp : dsync -> Vpc_support.Sexp.t
val dsync_of_sexp : Vpc_support.Sexp.t -> dsync
val to_sexp : t -> Vpc_support.Sexp.t
val of_sexp : Vpc_support.Sexp.t -> t
