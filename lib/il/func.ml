(* An IL function: parameters, a variable table keyed by id, and a
   statement-tree body.  Bodies are mutable so the optimization passes can
   rewrite in place; everything else is data. *)

open Vpc_support

type t = {
  name : string;
  ret_ty : Ty.t;
  params : int list;  (* var ids, in declaration order *)
  vars : (int, Var.t) Hashtbl.t;
  mutable body : Stmt.t list;
  is_static : bool;
  stmt_gen : Gensym.t;
  label_gen : Gensym.t;
  loc : Loc.t;
}

let create ~name ~ret_ty ?(is_static = false) ?(loc = Loc.dummy) () =
  {
    name;
    ret_ty;
    params = [];
    vars = Hashtbl.create 16;
    body = [];
    is_static;
    stmt_gen = Gensym.create ();
    label_gen = Gensym.create ();
    loc;
  }

(* An independent copy sharing no mutable state: statements are
   immutable and so stay shared, but the body cell, variable table, and
   gensyms are fresh — passes run on the clone cannot perturb the
   original's numbering (and vice versa).  Unlike the sexp round-trip,
   source locations survive. *)
let clone t =
  {
    t with
    vars = Hashtbl.copy t.vars;
    body = t.body;
    stmt_gen = Gensym.create ~start:(Gensym.peek t.stmt_gen) ();
    label_gen = Gensym.create ~start:(Gensym.peek t.label_gen) ();
  }

let add_var t (v : Var.t) = Hashtbl.replace t.vars v.id v

let find_var t id = Hashtbl.find_opt t.vars id

let var_exn t id =
  match find_var t id with
  | Some v -> v
  | None -> Diag.internal "function %s: unknown variable id %d" t.name id

let fresh_stmt t ?loc desc = Stmt.mk ~id:(Gensym.fresh t.stmt_gen) ?loc desc

let fresh_label t prefix = Gensym.fresh_name t.label_gen ("." ^ prefix ^ "_")

let locals t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.vars []
  |> List.sort (fun (a : Var.t) b -> compare a.id b.id)

(* All statements of the body, flattened preorder. *)
let all_stmts t =
  let acc = ref [] in
  Stmt.iter_list (fun s -> acc := s :: !acc) t.body;
  List.rev !acc

(* Variables whose address is taken anywhere in the body, plus memory
   objects (arrays/structs), whose accesses always go through memory.
   These are exactly the variables that stores through pointers or calls
   may modify. *)
let addressed_vars t =
  let set = Hashtbl.create 16 in
  let add id = Hashtbl.replace set id () in
  Hashtbl.iter (fun id v -> if Var.is_memory_object v then add id) t.vars;
  Stmt.iter_list
    (fun s ->
      List.iter
        (fun e -> List.iter add (Expr.vars_addressed [] e))
        (Stmt.shallow_exprs s))
    t.body;
  set

let to_sexp t =
  let open Sexp in
  list
    [
      atom "func";
      atom t.name;
      Ty.to_sexp t.ret_ty;
      bool t.is_static;
      list (List.map int t.params);
      list (List.map Var.to_sexp (locals t));
      list (List.map Stmt.to_sexp t.body);
      int (Gensym.peek t.stmt_gen);
      int (Gensym.peek t.label_gen);
    ]

let of_sexp s =
  let open Sexp in
  match as_list s with
  | [ Atom "func"; name; ret_ty; is_static; List params; List vars; List body;
      stmt_next; label_next ] ->
      let t =
        {
          name = as_atom name;
          ret_ty = Ty.of_sexp ret_ty;
          params = List.map as_int params;
          vars = Hashtbl.create 16;
          body = List.map Stmt.of_sexp body;
          is_static = as_bool is_static;
          stmt_gen = Gensym.create ~start:(as_int stmt_next) ();
          label_gen = Gensym.create ~start:(as_int label_next) ();
          loc = Loc.dummy;
        }
      in
      List.iter (fun v -> add_var t (Var.of_sexp v)) vars;
      t
  | _ -> raise (Parse_error "bad func sexp")
