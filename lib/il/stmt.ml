(* IL statements.  All side effects are explicit here: the IL "has an
   assignment statement but no assignment operator" (paper §4).  Loops
   appear in three strengths: [While] (what the front end emits for both
   `while` and `for`), [Do_loop] (Fortran-style counted loop produced by
   while→DO conversion, §5.2), and [Vector] (array-section assignment
   produced by the vectorizer, printed in the paper's colon notation). *)

open Vpc_support

type lvalue =
  | Lvar of int      (* scalar variable *)
  | Lmem of Expr.t   (* *addr = ...; addr : Ptr elt *)

type call_target =
  | Direct of string
  | Indirect of Expr.t

type t = { id : int; desc : desc; loc : Loc.t }

and desc =
  | Assign of lvalue * Expr.t
  | Call of lvalue option * call_target * Expr.t list
  | If of Expr.t * t list * t list
  | While of loop_info * Expr.t * t list
  | Do_loop of do_loop
  | Goto of string
  | Label of string
  | Return of Expr.t option
  | Vector of vstmt
  | Vdef of vdef
  | Nop

(* Counted loop: index runs lo, lo+step, ... while (step>0 ? index<=hi :
   index>=hi).  [parallel] marks iterations proven independent and spread
   over processors ("do parallel").  [sync] non-empty marks a *doacross*
   loop: iterations are pipelined across processors and each carried
   dependence is ordered by a post/wait pair recorded here. *)
and do_loop = {
  index : int;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t;
  body : t list;
  parallel : bool;
  independent : bool;  (* user pragma: iterations independent *)
  sync : dsync list;   (* doacross post/wait placement; [] = not doacross *)
}

(* One synchronized carried dependence of a doacross loop.  Iteration i
   posts counter [chan] after executing body position [post_after]; before
   executing body position [wait_before], iteration i waits for iteration
   i - [distance] to have posted [chan] (iterations below the lower bound
   count as already posted).  A *cumulative* sync ([cum] set) waits for
   EVERY iteration <= i - [distance] to have posted: that orders the sink
   after any source at distance >= [distance], which is what a carried
   dependence of symbolic distance with proven lower bound [distance]
   needs (an exact sync only orders multiples of its distance). *)
and dsync = {
  chan : int;         (* counter id, unique within the loop *)
  distance : int;     (* carried dependence distance, >= 1 *)
  post_after : int;   (* body position after which the post fires *)
  wait_before : int;  (* body position guarded by the wait *)
  cum : bool;         (* wait covers all iterations <= i - distance *)
}

and loop_info = {
  pragma_independent : bool;  (* #pragma vpc independent on the loop *)
  doacross : bool;            (* §10: body spread over processors with a
                                 serialized prefix (pointer advance) *)
  serial_prefix : int;        (* leading body stmts that stay serial *)
}

(* Vector assignment dst[0:count:stride] = src, element type [elt].
   Bases and strides are byte-valued, matching the IL's explicit pointer
   arithmetic. *)
and vstmt = { vdst : section; vsrc : vexpr; velt : Ty.t }

and section = {
  base : Expr.t;    (* byte address of element 0 *)
  count : Expr.t;   (* number of elements, loop-invariant *)
  stride : Expr.t;  (* byte stride between elements *)
}

and vexpr =
  | Vsec of section
  | Vscalar of Expr.t  (* loop-invariant scalar broadcast *)
  | Viota of Expr.t * Expr.t  (* element i = offset + scale * i (ints) *)
  | Vcast of Ty.t * vexpr     (* elementwise conversion *)
  | Vbin of Expr.binop * vexpr * vexpr
  | Vun of Expr.unop * vexpr
  | Vtmp of int * Ty.t  (* vector temporary: most recent [Vdef] of this id *)

(* Vector temporary definition vt<n> = src over [vcount] elements of type
   [vty].  The value lives in a vector register, never in memory — produced
   only by the vector-register reuse pass ([Transform.Vreuse]).  A [Vdef]
   whose [vval] reads its own [Vtmp] is the accumulator idiom: the whole
   right-hand side is evaluated before the temporary is rebound. *)
and vdef = { vt : int; vval : vexpr; vcount : Expr.t; vty : Ty.t }

let no_info = { pragma_independent = false; doacross = false; serial_prefix = 0 }

let mk ~id ?(loc = Loc.dummy) desc = { id; desc; loc }

(* Traversals ------------------------------------------------------------ *)

(* Iterate over a statement and all nested statements, preorder. *)
let rec iter f s =
  f s;
  match s.desc with
  | Assign _ | Call _ | Goto _ | Label _ | Return _ | Vector _ | Vdef _ | Nop ->
      ()
  | If (_, then_, else_) ->
      List.iter (iter f) then_;
      List.iter (iter f) else_
  | While (_, _, body) -> List.iter (iter f) body
  | Do_loop d -> List.iter (iter f) d.body

let iter_list f stmts = List.iter (iter f) stmts

(* Rebuild a statement list, mapping each statement to zero or more
   replacement statements; children are processed first. *)
let rec map_list (f : t -> t list) stmts =
  List.concat_map
    (fun s ->
      let s =
        match s.desc with
        | Assign _ | Call _ | Goto _ | Label _ | Return _ | Vector _ | Vdef _
        | Nop ->
            s
        | If (c, t_, e_) -> { s with desc = If (c, map_list f t_, map_list f e_) }
        | While (li, c, body) -> { s with desc = While (li, c, map_list f body) }
        | Do_loop d -> { s with desc = Do_loop { d with body = map_list f d.body } }
      in
      f s)
    stmts

(* Map every expression appearing in a statement (not recursing into nested
   statements — combine with [map_list] for deep rewrites). *)
let map_exprs_shallow (f : Expr.t -> Expr.t) s =
  let lvalue = function Lvar id -> Lvar id | Lmem e -> Lmem (f e) in
  let rec vexpr = function
    | Vsec sec -> Vsec (section sec)
    | Vscalar e -> Vscalar (f e)
    | Viota (off, scale) -> Viota (f off, f scale)
    | Vcast (ty, a) -> Vcast (ty, vexpr a)
    | Vbin (op, a, b) -> Vbin (op, vexpr a, vexpr b)
    | Vun (op, a) -> Vun (op, vexpr a)
    | Vtmp (t, ty) -> Vtmp (t, ty)
  and section sec =
    { base = f sec.base; count = f sec.count; stride = f sec.stride }
  in
  let desc =
    match s.desc with
    | Assign (lv, e) -> Assign (lvalue lv, f e)
    | Call (dst, tgt, args) ->
        let tgt = match tgt with Direct _ -> tgt | Indirect e -> Indirect (f e) in
        Call (Option.map lvalue dst, tgt, List.map f args)
    | If (c, t_, e_) -> If (f c, t_, e_)
    | While (li, c, body) -> While (li, f c, body)
    | Do_loop d -> Do_loop { d with lo = f d.lo; hi = f d.hi; step = f d.step }
    | Goto _ | Label _ | Nop -> s.desc
    | Return e -> Return (Option.map f e)
    | Vector v -> Vector { v with vdst = section v.vdst; vsrc = vexpr v.vsrc }
    | Vdef vd -> Vdef { vd with vval = vexpr vd.vval; vcount = f vd.vcount }
  in
  { s with desc }

(* Expressions read by a statement itself (shallow). *)
let shallow_exprs s =
  let rec vexpr acc = function
    | Vsec sec -> sec.base :: sec.count :: sec.stride :: acc
    | Vscalar e -> e :: acc
    | Viota (off, scale) -> off :: scale :: acc
    | Vcast (_, a) -> vexpr acc a
    | Vbin (_, a, b) -> vexpr (vexpr acc a) b
    | Vun (_, a) -> vexpr acc a
    | Vtmp _ -> acc
  in
  match s.desc with
  | Assign (Lvar _, e) -> [ e ]
  | Assign (Lmem a, e) -> [ a; e ]
  | Call (dst, tgt, args) ->
      let acc = match tgt with Direct _ -> args | Indirect e -> e :: args in
      let acc = match dst with Some (Lmem a) -> a :: acc | Some (Lvar _) | None -> acc in
      acc
  | If (c, _, _) | While (_, c, _) -> [ c ]
  | Do_loop d -> [ d.lo; d.hi; d.step ]
  | Goto _ | Label _ | Nop -> []
  | Return (Some e) -> [ e ]
  | Return None -> []
  | Vector v -> vexpr (v.vdst.base :: v.vdst.count :: v.vdst.stride :: []) v.vsrc
  | Vdef vd -> vexpr [ vd.vcount ] vd.vval

(* The variable defined by this statement, if it defines a scalar var. *)
let defined_var s =
  match s.desc with
  | Assign (Lvar id, _) -> Some id
  | Call (Some (Lvar id), _, _) -> Some id
  | Do_loop d -> Some d.index
  | Assign (Lmem _, _) | Call _ | If _ | While _ | Goto _ | Label _ | Return _
  | Vector _ | Vdef _ | Nop ->
      None

(* Variables read by the statement itself (shallow: loop/if bodies are not
   entered, but their conditions/bounds are). *)
let shallow_uses s =
  List.concat_map Expr.read_vars (shallow_exprs s)

let writes_memory s =
  match s.desc with
  | Assign (Lmem _, _) | Vector _ -> true
  | Call _ -> true  (* conservative: callee may write anything reachable *)
  | Assign (Lvar _, _) | If _ | While _ | Do_loop _ | Goto _ | Label _
  | Return _ | Vdef _ | Nop ->
      false

(* Serialization --------------------------------------------------------- *)

let lvalue_to_sexp = function
  | Lvar id -> Sexp.list [ Sexp.atom "lv"; Sexp.int id ]
  | Lmem e -> Sexp.list [ Sexp.atom "lm"; Expr.to_sexp e ]

let lvalue_of_sexp s =
  match Sexp.as_list s with
  | [ Sexp.Atom "lv"; id ] -> Lvar (Sexp.as_int id)
  | [ Sexp.Atom "lm"; e ] -> Lmem (Expr.of_sexp e)
  | _ -> raise (Sexp.Parse_error "bad lvalue sexp")

let section_to_sexp sec =
  Sexp.list [ Expr.to_sexp sec.base; Expr.to_sexp sec.count; Expr.to_sexp sec.stride ]

let section_of_sexp s =
  match Sexp.as_list s with
  | [ b; c; st ] ->
      { base = Expr.of_sexp b; count = Expr.of_sexp c; stride = Expr.of_sexp st }
  | _ -> raise (Sexp.Parse_error "bad section sexp")

let rec vexpr_to_sexp = function
  | Vsec sec -> Sexp.list [ Sexp.atom "vsec"; section_to_sexp sec ]
  | Vscalar e -> Sexp.list [ Sexp.atom "vscalar"; Expr.to_sexp e ]
  | Viota (off, scale) ->
      Sexp.list [ Sexp.atom "viota"; Expr.to_sexp off; Expr.to_sexp scale ]
  | Vcast (ty, a) ->
      Sexp.list [ Sexp.atom "vcast"; Ty.to_sexp ty; vexpr_to_sexp a ]
  | Vbin (op, a, b) ->
      Sexp.list
        [ Sexp.atom "vbin"; Sexp.atom (Expr.binop_to_string op);
          vexpr_to_sexp a; vexpr_to_sexp b ]
  | Vun (op, a) ->
      Sexp.list
        [ Sexp.atom "vun"; Sexp.atom (Expr.unop_to_string op); vexpr_to_sexp a ]
  | Vtmp (t, ty) -> Sexp.list [ Sexp.atom "vtmp"; Sexp.int t; Ty.to_sexp ty ]

let rec vexpr_of_sexp s =
  match Sexp.as_list s with
  | [ Sexp.Atom "vsec"; sec ] -> Vsec (section_of_sexp sec)
  | [ Sexp.Atom "vscalar"; e ] -> Vscalar (Expr.of_sexp e)
  | [ Sexp.Atom "viota"; off; scale ] ->
      Viota (Expr.of_sexp off, Expr.of_sexp scale)
  | [ Sexp.Atom "vcast"; ty; a ] -> Vcast (Ty.of_sexp ty, vexpr_of_sexp a)
  | [ Sexp.Atom "vbin"; Sexp.Atom op; a; b ] ->
      Vbin (Expr.binop_of_string op, vexpr_of_sexp a, vexpr_of_sexp b)
  | [ Sexp.Atom "vun"; Sexp.Atom op; a ] ->
      Vun (Expr.unop_of_string op, vexpr_of_sexp a)
  | [ Sexp.Atom "vtmp"; t; ty ] -> Vtmp (Sexp.as_int t, Ty.of_sexp ty)
  | _ -> raise (Sexp.Parse_error "bad vexpr sexp")

let dsync_to_sexp (y : dsync) =
  (* the [cum] slot is trailing and omitted when false, so exact-sync
     dumps keep their pre-cumulative spelling *)
  Sexp.list
    ([ Sexp.int y.chan; Sexp.int y.distance; Sexp.int y.post_after;
       Sexp.int y.wait_before ]
    @ if y.cum then [ Sexp.atom "cum" ] else [])

let dsync_of_sexp s =
  match Sexp.as_list s with
  | c :: d :: p :: w :: cum_tl ->
      let cum =
        match cum_tl with
        | [] -> false
        | [ Sexp.Atom "cum" ] -> true
        | _ -> raise (Sexp.Parse_error "bad dsync sexp")
      in
      { chan = Sexp.as_int c; distance = Sexp.as_int d;
        post_after = Sexp.as_int p; wait_before = Sexp.as_int w; cum }
  | _ -> raise (Sexp.Parse_error "bad dsync sexp")

let rec to_sexp s =
  let open Sexp in
  let tail =
    match s.desc with
    | Assign (lv, e) -> [ atom "assign"; lvalue_to_sexp lv; Expr.to_sexp e ]
    | Call (dst, tgt, args) ->
        let dst_s = match dst with None -> atom "none" | Some lv -> lvalue_to_sexp lv in
        let tgt_s =
          match tgt with
          | Direct name -> list [ atom "direct"; atom name ]
          | Indirect e -> list [ atom "indirect"; Expr.to_sexp e ]
        in
        [ atom "call"; dst_s; tgt_s; list (List.map Expr.to_sexp args) ]
    | If (c, t_, e_) ->
        [ atom "if"; Expr.to_sexp c; list (List.map to_sexp t_);
          list (List.map to_sexp e_) ]
    | While (li, c, body) ->
        [ atom "while"; bool li.pragma_independent; bool li.doacross;
          int li.serial_prefix; Expr.to_sexp c; list (List.map to_sexp body) ]
    | Do_loop d ->
        let base =
          [ atom "do"; int d.index; Expr.to_sexp d.lo; Expr.to_sexp d.hi;
            Expr.to_sexp d.step; bool d.parallel; bool d.independent;
            list (List.map to_sexp d.body) ]
        in
        (* the sync slot is trailing and omitted when empty, so pre-doacross
           dumps keep parsing and byte-compare equal *)
        if d.sync = [] then base
        else base @ [ list (List.map dsync_to_sexp d.sync) ]
    | Goto l -> [ atom "goto"; atom l ]
    | Label l -> [ atom "label"; atom l ]
    | Return None -> [ atom "return" ]
    | Return (Some e) -> [ atom "return"; Expr.to_sexp e ]
    | Vector v ->
        [ atom "vector"; section_to_sexp v.vdst; vexpr_to_sexp v.vsrc;
          Ty.to_sexp v.velt ]
    | Vdef vd ->
        [ atom "vdef"; int vd.vt; vexpr_to_sexp vd.vval;
          Expr.to_sexp vd.vcount; Ty.to_sexp vd.vty ]
    | Nop -> [ atom "nop" ]
  in
  list (int s.id :: tail)

let rec of_sexp s =
  let open Sexp in
  match as_list s with
  | id :: rest ->
      let id = as_int id in
      let desc =
        match rest with
        | [ Atom "assign"; lv; e ] -> Assign (lvalue_of_sexp lv, Expr.of_sexp e)
        | [ Atom "call"; dst; tgt; List args ] ->
            let dst =
              match dst with Atom "none" -> None | lv -> Some (lvalue_of_sexp lv)
            in
            let tgt =
              match as_list tgt with
              | [ Atom "direct"; name ] -> Direct (as_atom name)
              | [ Atom "indirect"; e ] -> Indirect (Expr.of_sexp e)
              | _ -> raise (Parse_error "bad call target")
            in
            Call (dst, tgt, List.map Expr.of_sexp args)
        | [ Atom "if"; c; List t_; List e_ ] ->
            If (Expr.of_sexp c, List.map of_sexp t_, List.map of_sexp e_)
        | [ Atom "while"; pri; doa; sp; c; List body ] ->
            While
              ( { pragma_independent = as_bool pri;
                  doacross = as_bool doa;
                  serial_prefix = as_int sp },
                Expr.of_sexp c,
                List.map of_sexp body )
        | Atom "do" :: idx :: lo :: hi :: step :: par :: indep :: List body
          :: sync_tl ->
            let sync =
              match sync_tl with
              | [] -> []
              | [ List ys ] -> List.map dsync_of_sexp ys
              | _ -> raise (Parse_error "bad stmt sexp")
            in
            Do_loop
              {
                index = as_int idx;
                lo = Expr.of_sexp lo;
                hi = Expr.of_sexp hi;
                step = Expr.of_sexp step;
                parallel = as_bool par;
                independent = as_bool indep;
                body = List.map of_sexp body;
                sync;
              }
        | [ Atom "goto"; l ] -> Goto (as_atom l)
        | [ Atom "label"; l ] -> Label (as_atom l)
        | [ Atom "return" ] -> Return None
        | [ Atom "return"; e ] -> Return (Some (Expr.of_sexp e))
        | [ Atom "vector"; dst; src; elt ] ->
            Vector
              {
                vdst = section_of_sexp dst;
                vsrc = vexpr_of_sexp src;
                velt = Ty.of_sexp elt;
              }
        | [ Atom "vdef"; t; v; c; ty ] ->
            Vdef
              {
                vt = as_int t;
                vval = vexpr_of_sexp v;
                vcount = Expr.of_sexp c;
                vty = Ty.of_sexp ty;
              }
        | [ Atom "nop" ] -> Nop
        | _ -> raise (Parse_error "bad stmt sexp")
      in
      { id; desc; loc = Loc.dummy }
  | [] -> raise (Parse_error "bad stmt sexp")
