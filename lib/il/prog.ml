(* A whole program: struct layouts, global variables (with initializers),
   and functions.  Variable ids are allocated from a single program-wide
   counter so that expressions can name any variable unambiguously. *)

open Vpc_support

type ginit =
  | Init_none
  | Init_scalar of Expr.t            (* constant expression *)
  | Init_array of Expr.t list        (* element constants, in order *)
  | Init_string of string            (* char array contents, NUL added *)

type global = { gvar : Var.t; ginit : ginit }

type t = {
  structs : Ty.struct_env;
  globals : (int, global) Hashtbl.t;
  mutable funcs : Func.t list;  (* in source order *)
  var_gen : Gensym.t;
}

let create () =
  {
    structs = Hashtbl.create 8;
    globals = Hashtbl.create 16;
    funcs = [];
    var_gen = Gensym.create ();
  }

let fresh_var_id t = Gensym.fresh t.var_gen

(* An independent copy: cloned functions, copied tables, and a var
   counter frozen at the original's position, so passes run on the clone
   cannot perturb the original's numbering.  Locations survive. *)
let clone t =
  {
    structs = Hashtbl.copy t.structs;
    globals = Hashtbl.copy t.globals;
    funcs = List.map Func.clone t.funcs;
    var_gen = Gensym.create ~start:(Gensym.peek t.var_gen) ();
  }

let add_global t ?(ginit = Init_none) (gvar : Var.t) =
  Hashtbl.replace t.globals gvar.id { gvar; ginit }

let add_func t f = t.funcs <- t.funcs @ [ f ]

let find_func t name = List.find_opt (fun (f : Func.t) -> f.name = name) t.funcs

let func_exn t name =
  match find_func t name with
  | Some f -> f
  | None -> Diag.internal "unknown function %s" name

let replace_func t (f : Func.t) =
  t.funcs <-
    List.map (fun (g : Func.t) -> if g.name = f.name then f else g) t.funcs

(* Resolve a variable id: function locals shadow nothing (ids are unique
   program-wide), so we look in the function first, then globals. *)
let find_var t (f : Func.t option) id =
  let local = Option.bind f (fun f -> Func.find_var f id) in
  match local with
  | Some v -> Some v
  | None -> (
      match Hashtbl.find_opt t.globals id with
      | Some g -> Some g.gvar
      | None ->
          (* Inlining can leave a function holding ids owned by another
             function's table; search all functions as a fallback. *)
          List.find_map (fun (f : Func.t) -> Func.find_var f id) t.funcs)

let var_exn t f id =
  match find_var t f id with
  | Some v -> v
  | None -> Diag.internal "unknown variable id %d" id

let globals_list t =
  Hashtbl.fold (fun _ g acc -> g :: acc) t.globals []
  |> List.sort (fun a b -> compare a.gvar.Var.id b.gvar.Var.id)

let ginit_to_sexp = function
  | Init_none -> Sexp.atom "none"
  | Init_scalar e -> Sexp.list [ Sexp.atom "scalar"; Expr.to_sexp e ]
  | Init_array es ->
      Sexp.list (Sexp.atom "array" :: List.map Expr.to_sexp es)
  | Init_string s -> Sexp.list [ Sexp.atom "string"; Sexp.atom s ]

let ginit_of_sexp s =
  match s with
  | Sexp.Atom "none" -> Init_none
  | Sexp.List [ Sexp.Atom "scalar"; e ] -> Init_scalar (Expr.of_sexp e)
  | Sexp.List (Sexp.Atom "array" :: es) -> Init_array (List.map Expr.of_sexp es)
  | Sexp.List [ Sexp.Atom "string"; str ] -> Init_string (Sexp.as_atom str)
  | _ -> raise (Sexp.Parse_error "bad ginit sexp")

let to_sexp t =
  let open Sexp in
  let structs =
    Hashtbl.fold (fun _ (def : Ty.struct_def) acc -> def :: acc) t.structs []
    |> List.sort (fun (a : Ty.struct_def) b -> compare a.tag b.tag)
    |> List.map (fun (def : Ty.struct_def) ->
           list
             (atom def.tag
             :: List.map
                  (fun (name, ty) -> list [ atom name; Ty.to_sexp ty ])
                  def.fields))
  in
  let globals =
    List.map
      (fun g -> list [ Var.to_sexp g.gvar; ginit_to_sexp g.ginit ])
      (globals_list t)
  in
  list
    [
      atom "program";
      list structs;
      list globals;
      list (List.map Func.to_sexp t.funcs);
      int (Gensym.peek t.var_gen);
    ]

let of_sexp s =
  let open Sexp in
  match as_list s with
  | [ Atom "program"; List structs; List globals; List funcs; var_next ] ->
      let t =
        {
          structs = Hashtbl.create 8;
          globals = Hashtbl.create 16;
          funcs = [];
          var_gen = Gensym.create ~start:(as_int var_next) ();
        }
      in
      List.iter
        (fun sd ->
          match as_list sd with
          | tag :: fields ->
              let tag = as_atom tag in
              let fields =
                List.map
                  (fun f ->
                    match as_list f with
                    | [ name; ty ] -> (as_atom name, Ty.of_sexp ty)
                    | _ -> raise (Parse_error "bad field sexp"))
                  fields
              in
              Hashtbl.replace t.structs tag { Ty.tag; fields }
          | [] -> raise (Parse_error "bad struct sexp"))
        structs;
      List.iter
        (fun g ->
          match as_list g with
          | [ v; init ] ->
              add_global t ~ginit:(ginit_of_sexp init) (Var.of_sexp v)
          | _ -> raise (Parse_error "bad global sexp"))
        globals;
      List.iter (fun f -> add_func t (Func.of_sexp f)) funcs;
      t
  | _ -> raise (Parse_error "bad program sexp")
