(* Pretty-printing of the IL in a C-like notation.  Counted loops print in
   the paper's `do fortran` / `do parallel` style and vector statements in
   its colon notation, so golden tests can be compared against the paper's
   listings directly. *)

type env = { prog : Prog.t; func : Func.t option }

let var_name env id =
  match Prog.find_var env.prog env.func id with
  | Some v -> v.Var.name
  | None -> Printf.sprintf "?v%d" id

(* Precedence levels, loosely C's. *)
let binop_prec : Expr.binop -> int = function
  | Mul | Div | Rem -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3

let rec pp_expr env ?(prec = 0) ppf (e : Expr.t) =
  match e.desc with
  | Const_int n -> Fmt.int ppf n
  | Const_float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%g" f
  | Var id -> Fmt.string ppf (var_name env id)
  | Addr_of id -> Fmt.pf ppf "&%s" (var_name env id)
  | Load p -> Fmt.pf ppf "*%a" (pp_expr env ~prec:11) p
  | Binop (op, a, b) ->
      let p = binop_prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_expr env ~prec:p) a (Expr.binop_to_string op)
          (pp_expr env ~prec:(p + 1))
          b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Unop (op, a) ->
      Fmt.pf ppf "%s%a" (Expr.unop_to_string op) (pp_expr env ~prec:11) a
  | Cast (t, a) -> Fmt.pf ppf "(%a)%a" Ty.pp t (pp_expr env ~prec:11) a

(* Same as [pp_expr] with the default precedence, in the exact shape %a
   expects. *)
let pp_expr0 env ppf e = pp_expr env ppf e

let pp_lvalue env ppf = function
  | Stmt.Lvar id -> Fmt.string ppf (var_name env id)
  | Stmt.Lmem e -> Fmt.pf ppf "*%a" (pp_expr env ~prec:11) e

let pp_section env ppf (sec : Stmt.section) =
  Fmt.pf ppf "(%a)[0 : %a : %a]" (pp_expr0 env) sec.base (pp_expr0 env) sec.count
    (pp_expr0 env) sec.stride

let rec pp_vexpr env ?(prec = 0) ppf = function
  | Stmt.Vsec sec -> pp_section env ppf sec
  | Stmt.Vscalar e -> pp_expr env ~prec ppf e
  | Stmt.Viota (off, scale) ->
      Fmt.pf ppf "iota(%a, %a)" (pp_expr0 env) off (pp_expr0 env) scale
  | Stmt.Vcast (ty, a) ->
      Fmt.pf ppf "(%a)%a" Ty.pp ty (pp_vexpr env ~prec:11) a
  | Stmt.Vbin (op, a, b) ->
      let p = binop_prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_vexpr env ~prec:p) a
          (Expr.binop_to_string op)
          (pp_vexpr env ~prec:(p + 1))
          b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Stmt.Vun (op, a) ->
      Fmt.pf ppf "%s%a" (Expr.unop_to_string op) (pp_vexpr env ~prec:11) a
  | Stmt.Vtmp (t, _) -> Fmt.pf ppf "vt%d" t

let pp_vexpr0 env ppf v = pp_vexpr env ppf v

let rec pp_stmt env ~indent ppf (s : Stmt.t) =
  let ind = String.make indent ' ' in
  match s.desc with
  | Assign (lv, e) ->
      Fmt.pf ppf "%s%a = %a;@." ind (pp_lvalue env) lv (pp_expr0 env) e
  | Call (dst, tgt, args) ->
      let pp_target ppf = function
        | Stmt.Direct name -> Fmt.string ppf name
        | Stmt.Indirect e -> Fmt.pf ppf "(*%a)" (pp_expr0 env) e
      in
      (match dst with
      | Some lv -> Fmt.pf ppf "%s%a = " ind (pp_lvalue env) lv
      | None -> Fmt.string ppf ind);
      Fmt.pf ppf "%a(%a);@." pp_target tgt
        Fmt.(list ~sep:(any ", ") (pp_expr0 env))
        args
  | If (c, then_, []) ->
      Fmt.pf ppf "%sif (%a) {@.%a%s}@." ind (pp_expr0 env) c
        (pp_stmts env ~indent:(indent + 2))
        then_ ind
  | If (c, then_, else_) ->
      Fmt.pf ppf "%sif (%a) {@.%a%s} else {@.%a%s}@." ind (pp_expr0 env) c
        (pp_stmts env ~indent:(indent + 2))
        then_ ind
        (pp_stmts env ~indent:(indent + 2))
        else_ ind
  | While (li, c, body) ->
      let pragma =
        (if li.pragma_independent then " /* independent */" else "")
        ^ (if li.doacross then
             Printf.sprintf " /* doacross, serial prefix %d */" li.serial_prefix
           else "")
      in
      Fmt.pf ppf "%swhile (%a)%s {@.%a%s}@." ind (pp_expr0 env) c pragma
        (pp_stmts env ~indent:(indent + 2))
        body ind
  | Do_loop d ->
      let kind = if d.parallel then "do parallel" else "do fortran" in
      Fmt.pf ppf "%s%s %s = %a, %a, %a {@.%a%s}@." ind kind
        (var_name env d.index) (pp_expr0 env) d.lo (pp_expr0 env) d.hi
        (pp_expr0 env) d.step
        (pp_stmts env ~indent:(indent + 2))
        d.body ind
  | Goto l -> Fmt.pf ppf "%sgoto %s;@." ind l
  | Label l -> Fmt.pf ppf "%s:;@." l
  | Return None -> Fmt.pf ppf "%sreturn;@." ind
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;@." ind (pp_expr0 env) e
  | Vector v ->
      Fmt.pf ppf "%s%a = %a;@." ind (pp_section env) v.vdst (pp_vexpr0 env)
        v.vsrc
  | Vdef vd ->
      Fmt.pf ppf "%svt%d[0 : %a] = %a;@." ind vd.vt (pp_expr0 env) vd.vcount
        (pp_vexpr0 env) vd.vval
  | Nop -> Fmt.pf ppf "%s/* nop */@." ind

and pp_stmts env ~indent ppf stmts =
  List.iter (pp_stmt env ~indent ppf) stmts

let pp_func prog ppf (f : Func.t) =
  let env = { prog; func = Some f } in
  let pp_param ppf id =
    match Func.find_var f id with
    | Some v -> Fmt.pf ppf "%a %s" Ty.pp v.ty v.name
    | None -> Fmt.pf ppf "?%d" id
  in
  Fmt.pf ppf "%a %s(%a)@.{@." Ty.pp f.ret_ty f.name
    Fmt.(list ~sep:(any ", ") pp_param)
    f.params;
  (* Declare non-parameter named locals, then temps, for readability. *)
  let locals =
    List.filter
      (fun (v : Var.t) -> not (List.mem v.id f.params))
      (Func.locals f)
  in
  List.iter
    (fun (v : Var.t) ->
      if not v.is_temp then Fmt.pf ppf "  %a %s;@." Ty.pp v.ty v.name)
    locals;
  pp_stmts env ~indent:2 ppf f.body;
  Fmt.pf ppf "}@."

let func_to_string prog f = Fmt.str "%a" (pp_func prog) f

let stmts_to_string prog func stmts =
  Fmt.str "%a" (pp_stmts { prog; func = Some func } ~indent:2) stmts

let pp_prog ppf (p : Prog.t) =
  List.iter
    (fun (g : Prog.global) ->
      Fmt.pf ppf "%a %s;@." Ty.pp g.gvar.ty g.gvar.name)
    (Prog.globals_list p);
  List.iter
    (fun f ->
      Fmt.pf ppf "@.";
      pp_func p ppf f)
    p.funcs

let prog_to_string p = Fmt.str "%a" pp_prog p
