(* An executing interpreter for the IL.  It is the reference semantics of
   the compiler: every optimization pass is differential-tested by running
   the program before and after the pass and comparing results, and the
   Titan simulator is checked against it.

   Memory is byte-addressed.  Scalars whose address is never taken live in
   per-frame registers; address-taken scalars and memory objects (arrays,
   structs) get stack slots.  Pointers are plain integer addresses. *)


type value = V_int of int | V_float of float

exception Runtime_error of string
exception Timeout

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

let as_int = function
  | V_int n -> n
  | V_float _ -> error "expected integer value"

let as_float = function V_float f -> f | V_int n -> float_of_int n

let pp_value ppf = function
  | V_int n -> Fmt.int ppf n
  | V_float f -> Fmt.pf ppf "%g" f

(* 32-bit wrap-around semantics for int arithmetic, matching the target. *)
let wrap32 n = (n land 0xFFFFFFFF) - (if n land 0x80000000 <> 0 then 1 lsl 32 else 0)

(* ----------------------------------------------------------------- *)
(* Machine state                                                     *)
(* ----------------------------------------------------------------- *)

type state = {
  prog : Prog.t;
  mem : Bytes.t;
  mutable stack_ptr : int;  (* grows upward from after globals *)
  global_addrs : (int, int) Hashtbl.t;  (* var id -> address *)
  output : Buffer.t;
  mutable steps : int;
  max_steps : int;
  on_volatile_read : (Var.t -> value option) option;
  mutable float_ops : int;  (* statistic: FP operations executed *)
}

let mem_size = 1 lsl 22 (* 4 MiB *)

(* Typed memory access *)

let check_addr st addr size =
  if addr < 16 || addr + size > Bytes.length st.mem then
    error "memory access out of bounds at %d" addr

let load_scalar st ty addr =
  match ty with
  | Ty.Char ->
      check_addr st addr 1;
      let b = Char.code (Bytes.get st.mem addr) in
      V_int (if b > 127 then b - 256 else b)
  | Ty.Int | Ty.Ptr _ | Ty.Func _ ->
      check_addr st addr 4;
      V_int (Int32.to_int (Bytes.get_int32_le st.mem addr))
  | Ty.Float ->
      check_addr st addr 4;
      V_float (Int32.float_of_bits (Bytes.get_int32_le st.mem addr))
  | Ty.Double ->
      check_addr st addr 8;
      V_float (Int64.float_of_bits (Bytes.get_int64_le st.mem addr))
  | Ty.Void | Ty.Array _ | Ty.Struct _ -> error "load of non-scalar type"

let store_scalar st ty addr v =
  match ty with
  | Ty.Char ->
      check_addr st addr 1;
      Bytes.set st.mem addr (Char.chr (as_int v land 0xFF))
  | Ty.Int | Ty.Ptr _ | Ty.Func _ ->
      check_addr st addr 4;
      Bytes.set_int32_le st.mem addr (Int32.of_int (as_int v))
  | Ty.Float ->
      check_addr st addr 4;
      Bytes.set_int32_le st.mem addr (Int32.bits_of_float (as_float v))
  | Ty.Double ->
      check_addr st addr 8;
      Bytes.set_int64_le st.mem addr (Int64.bits_of_float (as_float v))
  | Ty.Void | Ty.Array _ | Ty.Struct _ -> error "store of non-scalar type"

(* Convert a value to the representation of type [ty] (assignment
   conversion). *)
let convert ty v =
  match ty with
  | Ty.Char -> V_int ((as_int v land 0xFF) |> fun b -> if b > 127 then b - 256 else b)
  | Ty.Int -> V_int (wrap32 (match v with V_int n -> n | V_float f -> int_of_float f))
  | Ty.Ptr _ | Ty.Func _ -> V_int (as_int v)
  | Ty.Float -> V_float (Int32.float_of_bits (Int32.bits_of_float (as_float v)))
  | Ty.Double -> V_float (as_float v)
  | Ty.Void -> v
  | Ty.Array _ | Ty.Struct _ -> error "conversion to non-scalar type"

(* ----------------------------------------------------------------- *)
(* Layout                                                            *)
(* ----------------------------------------------------------------- *)

let align_up n a = (n + a - 1) / a * a

let alloc st size align =
  let addr = align_up st.stack_ptr align in
  st.stack_ptr <- addr + size;
  if st.stack_ptr > Bytes.length st.mem then error "out of memory";
  addr

let eval_const_expr (e : Expr.t) =
  let rec go (e : Expr.t) =
    match e.desc with
    | Const_int n -> V_int n
    | Const_float f -> V_float f
    | Unop (Neg, a) -> (
        match go a with V_int n -> V_int (-n) | V_float f -> V_float (-.f))
    | Cast (t, a) -> convert t (go a)
    | Var _ | Addr_of _ | Load _ | Binop _ | Unop _ ->
        error "initializer is not a constant"
  in
  go e

let layout_global st (g : Prog.global) =
  let ty = g.gvar.ty in
  let size = Ty.sizeof st.prog.structs ty in
  let align = Ty.alignof st.prog.structs ty in
  let addr = alloc st size align in
  Hashtbl.replace st.global_addrs g.gvar.Var.id addr;
  (match g.ginit with
  | Init_none -> ()
  | Init_scalar e -> store_scalar st ty addr (convert ty (eval_const_expr e))
  | Init_array es ->
      let elt = match ty with Ty.Array (e, _) -> e | t -> t in
      let esize = Ty.sizeof st.prog.structs elt in
      List.iteri
        (fun i e ->
          store_scalar st elt (addr + (i * esize)) (convert elt (eval_const_expr e)))
        es
  | Init_string s ->
      String.iteri (fun i c -> Bytes.set st.mem (addr + i) c) s;
      Bytes.set st.mem (addr + String.length s) '\000')

(* ----------------------------------------------------------------- *)
(* Flattening statement trees into a linear code array                *)
(* ----------------------------------------------------------------- *)

type op =
  | Oassign of Stmt.lvalue * Expr.t
  | Ocall of Stmt.lvalue option * Stmt.call_target * Expr.t list
  | Obranch_false of Expr.t * int ref  (* jump when condition is zero *)
  | Ojump of int ref
  | Odo_test of { index : int; hi : Expr.t; step : Expr.t; exit_pc : int ref }
  | Oreturn of Expr.t option
  | Ovector of Stmt.vstmt
  | Ovdef of Stmt.vdef
  | Onop

let flatten (f : Func.t) =
  let code = ref [] in
  let n = ref 0 in
  let labels = Hashtbl.create 8 in
  let fixups : (string * int ref) list ref = ref [] in
  let emit op =
    code := op :: !code;
    incr n;
    !n - 1
  in
  let rec stmt (s : Stmt.t) =
    match s.desc with
    | Assign (lv, e) -> ignore (emit (Oassign (lv, e)))
    | Call (dst, tgt, args) -> ignore (emit (Ocall (dst, tgt, args)))
    | Goto l ->
        let r = ref (-1) in
        fixups := (l, r) :: !fixups;
        ignore (emit (Ojump r))
    | Label l -> Hashtbl.replace labels l (emit Onop)
    | Return e -> ignore (emit (Oreturn e))
    | Vector v -> ignore (emit (Ovector v))
    | Vdef vd -> ignore (emit (Ovdef vd))
    | Nop -> ignore (emit Onop)
    | If (c, then_, else_) ->
        let else_ref = ref (-1) in
        ignore (emit (Obranch_false (c, else_ref)));
        List.iter stmt then_;
        if else_ = [] then else_ref := !n
        else begin
          let end_ref = ref (-1) in
          ignore (emit (Ojump end_ref));
          else_ref := !n;
          List.iter stmt else_;
          end_ref := !n
        end
    | While (_, c, body) ->
        let head = !n in
        let exit_ref = ref (-1) in
        ignore (emit (Obranch_false (c, exit_ref)));
        List.iter stmt body;
        ignore (emit (Ojump (ref head)));
        exit_ref := !n
    | Do_loop d ->
        (* index = lo; head: if out of range goto exit; body; index += step;
           goto head.  A parallel DO executes sequentially here — the
           interpreter defines the values, the Titan simulator the time. *)
        let index_lv = Stmt.Lvar d.index in
        let index_ty =
          match Func.find_var f d.index with
          | Some v -> v.ty
          | None -> Ty.Int
        in
        let index_e = Expr.var_id d.index index_ty in
        ignore (emit (Oassign (index_lv, d.lo)));
        let head = !n in
        let exit_ref = ref (-1) in
        ignore (emit (Odo_test { index = d.index; hi = d.hi; step = d.step; exit_pc = exit_ref }));
        List.iter stmt d.body;
        ignore
          (emit (Oassign (index_lv, Expr.binop Expr.Add index_e d.step index_ty)));
        ignore (emit (Ojump (ref head)));
        exit_ref := !n
  in
  List.iter stmt f.body;
  ignore (emit (Oreturn None));
  List.iter
    (fun (l, r) ->
      match Hashtbl.find_opt labels l with
      | Some pc -> r := pc
      | None -> error "goto to undefined label %s in %s" l f.name)
    !fixups;
  Array.of_list (List.rev !code)

(* ----------------------------------------------------------------- *)
(* Frames and evaluation                                             *)
(* ----------------------------------------------------------------- *)

type frame = {
  func : Func.t;
  regs : (int, value ref) Hashtbl.t;       (* register-allocated scalars *)
  local_addrs : (int, int) Hashtbl.t;      (* stack-allocated vars *)
  vtmps : (int, value array) Hashtbl.t;    (* vector temporaries ([Vdef]) *)
}

let var_of st (fr : frame) id =
  match Func.find_var fr.func id with
  | Some v -> v
  | None -> Prog.var_exn st.prog (Some fr.func) id

let addr_of_var st fr id =
  match Hashtbl.find_opt fr.local_addrs id with
  | Some a -> a
  | None -> (
      match Hashtbl.find_opt st.global_addrs id with
      | Some a -> a
      | None -> error "address of register variable %s" (var_of st fr id).name)

let is_float_ty = Ty.is_float

let eval_binop op ty (a : value) (b : value) =
  let open Expr in
  if is_float_ty ty then
    let x = as_float a and y = as_float b in
    let r =
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
      | Rem | Shl | Shr | Band | Bor | Bxor -> error "float bitop"
      | Eq | Ne | Lt | Le | Gt | Ge -> error "comparison typed float"
    in
    V_float (if ty = Ty.Float then Int32.float_of_bits (Int32.bits_of_float r) else r)
  else
    match op with
    | Eq | Ne | Lt | Le | Gt | Ge -> error "comparison reached arithmetic path"
    | _ ->
        let x = as_int a and y = as_int b in
        let r =
          match op with
          | Add -> x + y
          | Sub -> x - y
          | Mul -> x * y
          | Div -> if y = 0 then error "division by zero" else (
              (* C truncating division *)
              let q = abs x / abs y in
              if (x < 0) <> (y < 0) then -q else q)
          | Rem -> if y = 0 then error "modulo by zero" else (
              let r = abs x mod abs y in
              if x < 0 then -r else r)
          | Shl -> x lsl (y land 31)
          | Shr -> x asr (y land 31)
          | Band -> x land y
          | Bor -> x lor y
          | Bxor -> x lxor y
          | Eq | Ne | Lt | Le | Gt | Ge -> assert false
        in
        V_int (wrap32 r)

let eval_compare op a b =
  let r =
    match a, b with
    | V_int x, V_int y -> compare x y
    | _ -> compare (as_float a) (as_float b)
  in
  let open Expr in
  let bool_of = function true -> 1 | false -> 0 in
  V_int
    (match op with
    | Eq -> bool_of (r = 0)
    | Ne -> bool_of (r <> 0)
    | Lt -> bool_of (r < 0)
    | Le -> bool_of (r <= 0)
    | Gt -> bool_of (r > 0)
    | Ge -> bool_of (r >= 0)
    | _ -> error "not a comparison")

let is_comparison : Expr.binop -> bool = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | _ -> false

let rec eval st fr (e : Expr.t) : value =
  match e.desc with
  | Const_int n -> V_int n
  | Const_float f ->
      if e.ty = Ty.Float then V_float (Int32.float_of_bits (Int32.bits_of_float f))
      else V_float f
  | Var id -> (
      let v = var_of st fr id in
      let stored =
        match Hashtbl.find_opt fr.regs id with
        | Some r -> !r
        | None -> load_scalar st v.ty (addr_of_var st fr id)
      in
      if v.volatile then
        match st.on_volatile_read with
        | Some hook -> ( match hook v with Some value -> value | None -> stored)
        | None -> stored
      else stored)
  | Addr_of id -> V_int (addr_of_var st fr id)
  | Load p ->
      let addr = as_int (eval st fr p) in
      let elt = match p.ty with Ty.Ptr t -> t | _ -> error "load through non-pointer" in
      load_scalar st elt addr
  | Binop (op, a, b) ->
      let va = eval st fr a and vb = eval st fr b in
      if is_comparison op then eval_compare op va vb
      else begin
        if is_float_ty e.ty then st.float_ops <- st.float_ops + 1;
        eval_binop op e.ty va vb
      end
  | Unop (Neg, a) -> (
      match eval st fr a with
      | V_int n -> V_int (wrap32 (-n))
      | V_float f ->
          st.float_ops <- st.float_ops + 1;
          V_float (-.f))
  | Unop (Lognot, a) ->
      let v = eval st fr a in
      V_int (match v with V_int 0 -> 1 | V_float 0.0 -> 1 | _ -> 0)
  | Unop (Bitnot, a) -> V_int (wrap32 (lnot (as_int (eval st fr a))))
  | Cast (t, a) -> convert t (eval st fr a)

let truthy = function V_int 0 -> false | V_float 0.0 -> false | _ -> true

(* ----------------------------------------------------------------- *)
(* Builtins                                                          *)
(* ----------------------------------------------------------------- *)

let read_cstring st addr =
  let buf = Buffer.create 16 in
  let rec go a =
    check_addr st a 1;
    let c = Bytes.get st.mem a in
    if c <> '\000' then begin
      Buffer.add_char buf c;
      go (a + 1)
    end
  in
  go addr;
  Buffer.contents buf

let do_printf st fmt args =
  let out = st.output in
  let args = ref args in
  let next () =
    match !args with
    | [] -> error "printf: missing argument"
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '%' && !i + 1 < n then begin
      (* collect flags / width / precision *)
      let spec = Buffer.create 8 in
      Buffer.add_char spec '%';
      incr i;
      while
        !i < n
        && (match fmt.[!i] with
           | '0' .. '9' | '-' | '+' | ' ' | '.' | '#' -> true
           | _ -> false)
      do
        Buffer.add_char spec fmt.[!i];
        incr i
      done;
      if !i >= n then error "printf: truncated conversion";
      let conv = fmt.[!i] in
      let spec_with c = Buffer.contents spec ^ String.make 1 c in
      (match conv with
      | 'd' | 'i' ->
          Buffer.add_string out
            (Printf.sprintf
               (Scanf.format_from_string (spec_with 'd') "%d")
               (as_int (next ())))
      | 'f' | 'g' | 'e' ->
          Buffer.add_string out
            (Printf.sprintf
               (Scanf.format_from_string (spec_with conv) "%f")
               (as_float (next ())))
      | 'c' -> Buffer.add_char out (Char.chr (as_int (next ()) land 0xFF))
      | 's' ->
          Buffer.add_string out
            (Printf.sprintf
               (Scanf.format_from_string (spec_with 's') "%s")
               (read_cstring st (as_int (next ()))))
      | '%' -> Buffer.add_char out '%'
      | other -> error "printf: unsupported conversion %%%c" other);
      incr i
    end
    else begin
      Buffer.add_char out c;
      incr i
    end
  done

let builtin st name args : value option =
  match name, args with
  | "printf", fmt :: rest ->
      do_printf st (read_cstring st (as_int fmt)) rest;
      Some (V_int 0)
  | "putchar", [ c ] ->
      Buffer.add_char st.output (Char.chr (as_int c land 0xFF));
      Some (V_int (as_int c))
  | "puts", [ s ] ->
      Buffer.add_string st.output (read_cstring st (as_int s));
      Buffer.add_char st.output '\n';
      Some (V_int 0)
  | ("sqrt" | "sqrtf"), [ x ] ->
      st.float_ops <- st.float_ops + 1;
      Some (V_float (sqrt (as_float x)))
  | ("fabs" | "fabsf"), [ x ] -> Some (V_float (Float.abs (as_float x)))
  | "abs", [ x ] -> Some (V_int (abs (as_int x)))
  | ("exp" | "expf"), [ x ] ->
      st.float_ops <- st.float_ops + 1;
      Some (V_float (exp (as_float x)))
  | ("sin" | "sinf"), [ x ] ->
      st.float_ops <- st.float_ops + 1;
      Some (V_float (sin (as_float x)))
  | ("cos" | "cosf"), [ x ] ->
      st.float_ops <- st.float_ops + 1;
      Some (V_float (cos (as_float x)))
  | _ -> None

(* ----------------------------------------------------------------- *)
(* Execution                                                         *)
(* ----------------------------------------------------------------- *)

let rec run_function st (f : Func.t) (args : value list) : value =
  let fr =
    {
      func = f;
      regs = Hashtbl.create 16;
      local_addrs = Hashtbl.create 8;
      vtmps = Hashtbl.create 4;
    }
  in
  let saved_sp = st.stack_ptr in
  let addressed = Func.addressed_vars f in
  (* Allocate slots / registers for every local. *)
  Hashtbl.iter
    (fun id (v : Var.t) ->
      if Var.is_global v then ()
      else if Hashtbl.mem addressed id || Var.is_memory_object v then begin
        let size = Ty.sizeof st.prog.structs v.ty in
        let align = Ty.alignof st.prog.structs v.ty in
        Hashtbl.replace fr.local_addrs id (alloc st size align)
      end
      else Hashtbl.replace fr.regs id (ref (V_int 0)))
    f.vars;
  (* Bind parameters. *)
  (try
     List.iter2
       (fun id arg ->
         let v = var_of st fr id in
         let arg = convert v.ty arg in
         match Hashtbl.find_opt fr.regs id with
         | Some r -> r := arg
         | None -> store_scalar st v.ty (addr_of_var st fr id) arg)
       f.params args
   with Invalid_argument _ ->
     error "call to %s with wrong argument count" f.name);
  let code = flatten f in
  let result = exec_code st fr code in
  st.stack_ptr <- saved_sp;
  result

and exec_code st fr code : value =
  let pc = ref 0 in
  let result = ref (V_int 0) in
  let running = ref true in
  while !running do
    if !pc >= Array.length code then running := false
    else begin
      st.steps <- st.steps + 1;
      if st.steps > st.max_steps then raise Timeout;
      let next = !pc + 1 in
      (match code.(!pc) with
      | Onop -> pc := next
      | Oassign (lv, e) ->
          let v = eval st fr e in
          assign_lvalue st fr lv v;
          pc := next
      | Ocall (dst, tgt, args) ->
          let argv = List.map (eval st fr) args in
          let value = do_call st tgt argv in
          (match dst with
          | Some lv -> assign_lvalue st fr lv value
          | None -> ());
          pc := next
      | Obranch_false (c, target) ->
          pc := if truthy (eval st fr c) then next else !target
      | Ojump target -> pc := !target
      | Odo_test { index; hi; step; exit_pc } ->
          let iv = as_int (eval st fr (Expr.var_id index Ty.Int)) in
          let hv = as_int (eval st fr hi) in
          let sv = as_int (eval st fr step) in
          (* a zero step never advances the index: the loop would spin
             until the instruction budget ran out — reject it instead *)
          if sv = 0 && iv <= hv then
            error "DO loop step evaluates to 0 (the index would never advance)";
          let continue_ = if sv >= 0 then iv <= hv else iv >= hv in
          pc := if continue_ then next else !exit_pc
      | Oreturn e ->
          (match e with
          | Some e -> result := eval st fr e
          | None -> ());
          running := false
      | Ovector v ->
          exec_vector st fr v;
          pc := next
      | Ovdef vd ->
          exec_vdef st fr vd;
          pc := next)
    end
  done;
  !result

and assign_lvalue st fr lv value =
  match lv with
  | Stmt.Lvar id -> (
      let v = var_of st fr id in
      let value = convert v.ty value in
      match Hashtbl.find_opt fr.regs id with
      | Some r -> r := value
      | None -> store_scalar st v.ty (addr_of_var st fr id) value)
  | Stmt.Lmem addr_e ->
      let addr = as_int (eval st fr addr_e) in
      let elt =
        match addr_e.ty with
        | Ty.Ptr t -> t
        | _ -> error "store through non-pointer"
      in
      store_scalar st elt addr value

and do_call st tgt argv =
  match tgt with
  | Stmt.Direct name -> (
      match Prog.find_func st.prog name with
      | Some f -> run_function st f argv
      | None -> (
          match builtin st name argv with
          | Some v -> v
          | None -> error "call to undefined function %s" name))
  | Stmt.Indirect _ -> error "indirect calls are not supported"

(* Evaluate a whole vector expression over [count] elements first: true
   vector-register semantics.  [elt] is the element type driving float
   rounding of vector arithmetic (the enclosing statement's velt/vty). *)
and eval_vexpr st fr ~count ~elt =
  let rec go = function
    | Stmt.Vscalar e ->
        let value = eval st fr e in
        Array.make count value
    | Stmt.Viota (off, scale) ->
        let off = as_int (eval st fr off) in
        let scale = as_int (eval st fr scale) in
        Array.init count (fun i -> V_int (wrap32 (off + (scale * i))))
    | Stmt.Vcast (ty, a) -> Array.map (convert ty) (go a)
    | Stmt.Vsec sec ->
        let base = as_int (eval st fr sec.base) in
        let stride = as_int (eval st fr sec.stride) in
        let selt =
          match sec.base.ty with Ty.Ptr t -> t | _ -> error "bad section base"
        in
        Array.init count (fun i -> load_scalar st selt (base + (i * stride)))
    | Stmt.Vbin (op, a, b) ->
        let va = go a and vb = go b in
        if Ty.is_float elt then st.float_ops <- st.float_ops + count;
        if is_comparison op then Array.map2 (eval_compare op) va vb
        else Array.map2 (eval_binop op elt) va vb
    | Stmt.Vun (op, a) ->
        let va = go a in
        Array.map
          (fun x ->
            match op, x with
            | Expr.Neg, V_int n -> V_int (wrap32 (-n))
            | Expr.Neg, V_float f -> V_float (-.f)
            | Expr.Lognot, x -> V_int (if truthy x then 0 else 1)
            | Expr.Bitnot, x -> V_int (wrap32 (lnot (as_int x))))
          va
    | Stmt.Vtmp (t, _) -> (
        match Hashtbl.find_opt fr.vtmps t with
        | Some a when Array.length a >= count -> Array.sub a 0 count
        | Some _ -> error "vector temporary vt%d shorter than use" t
        | None -> error "vector temporary vt%d read before definition" t)
  in
  go

and exec_vector st fr (v : Stmt.vstmt) =
  let dst_base = as_int (eval st fr v.vdst.base) in
  let count = as_int (eval st fr v.vdst.count) in
  let dst_stride = as_int (eval st fr v.vdst.stride) in
  if count < 0 then error "negative vector count";
  let rhs = eval_vexpr st fr ~count ~elt:v.velt v.vsrc in
  Array.iteri
    (fun i value ->
      store_scalar st v.velt (dst_base + (i * dst_stride)) (convert v.velt value))
    rhs

(* Bind a vector temporary: evaluate the full right-hand side, convert to
   the declared element type (matching what a [Vector] store would have
   kept), and rebind — self-referencing accumulators therefore read the
   previous binding. *)
and exec_vdef st fr (vd : Stmt.vdef) =
  let count = as_int (eval st fr vd.vcount) in
  if count < 0 then error "negative vector count";
  let rhs = eval_vexpr st fr ~count ~elt:vd.vty vd.vval in
  Hashtbl.replace fr.vtmps vd.vt (Array.map (convert vd.vty) rhs)

(* ----------------------------------------------------------------- *)
(* Entry points                                                      *)
(* ----------------------------------------------------------------- *)

type result = {
  return_value : value;
  stdout_text : string;
  fp_ops : int;
  steps_executed : int;
}

let create_state ?(max_steps = 50_000_000) ?on_volatile_read prog =
  let st =
    {
      prog;
      mem = Bytes.make mem_size '\000';
      stack_ptr = 16;  (* address 0 stays unmapped-ish: null *)
      global_addrs = Hashtbl.create 16;
      output = Buffer.create 256;
      steps = 0;
      max_steps;
      on_volatile_read;
      float_ops = 0;
    }
  in
  List.iter (layout_global st) (Prog.globals_list st.prog);
  st

let run ?max_steps ?on_volatile_read ?(entry = "main") ?(args = []) prog =
  let st = create_state ?max_steps ?on_volatile_read prog in
  let f = Prog.func_exn prog entry in
  let return_value = run_function st f args in
  {
    return_value;
    stdout_text = Buffer.contents st.output;
    fp_ops = st.float_ops;
    steps_executed = st.steps;
  }

(* Run and read back the final contents of a global array of [n] elements
   — how most tests observe results. *)
let global_array_values st prog name n =
  let g =
    List.find_opt (fun (g : Prog.global) -> g.gvar.name = name) (Prog.globals_list prog)
  in
  match g with
  | None -> error "no global named %s" name
  | Some g ->
      let elt = match g.gvar.ty with Ty.Array (e, _) -> e | t -> t in
      let size = Ty.sizeof prog.structs elt in
      let addr = Hashtbl.find st.global_addrs g.gvar.Var.id in
      List.init n (fun i -> load_scalar st elt (addr + (i * size)))

let run_with_state ?max_steps ?on_volatile_read ?(entry = "main") ?(args = [])
    prog =
  let st = create_state ?max_steps ?on_volatile_read prog in
  let f = Prog.func_exn prog entry in
  let return_value = run_function st f args in
  ( st,
    {
      return_value;
      stdout_text = Buffer.contents st.output;
      fp_ops = st.float_ops;
      steps_executed = st.steps;
    } )
