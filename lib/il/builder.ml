(* Convenience constructors used by the front end and the passes: fresh
   temporaries (allocated program-wide, registered in the current
   function) and fresh statements. *)

type ctx = { prog : Prog.t; func : Func.t }

let ctx prog func = { prog; func }

(* Temporaries are numbered per function, not by their program-wide
   variable id: a name that embedded the global id would change whenever
   an unrelated earlier function allocated a different number of
   variables, defeating content-addressed caching of printed IL. *)
let fresh_temp ctx ?(name = "temp") ty =
  let id = Prog.fresh_var_id ctx.prog in
  let k =
    Hashtbl.fold
      (fun _ (v : Var.t) n -> if v.is_temp then n + 1 else n)
      ctx.func.Func.vars 0
  in
  let v =
    Var.make ~id
      ~name:(Printf.sprintf "%s_%d" name k)
      ~ty ~storage:Var.Auto ~is_temp:true ()
  in
  Func.add_var ctx.func v;
  v

let stmt ctx ?loc desc = Func.fresh_stmt ctx.func ?loc desc

let assign ctx ?loc (v : Var.t) e =
  stmt ctx ?loc (Stmt.Assign (Stmt.Lvar v.id, Expr.cast v.ty e))

let assign_id ctx ?loc id e = stmt ctx ?loc (Stmt.Assign (Stmt.Lvar id, e))

let store ctx ?loc addr e = stmt ctx ?loc (Stmt.Assign (Stmt.Lmem addr, e))

let goto ctx ?loc l = stmt ctx ?loc (Stmt.Goto l)
let label ctx ?loc l = stmt ctx ?loc (Stmt.Label l)
let nop ctx = stmt ctx Stmt.Nop

let if_ ctx ?loc cond then_ else_ = stmt ctx ?loc (Stmt.If (cond, then_, else_))

let while_ ctx ?loc ?(info = Stmt.no_info) cond body =
  stmt ctx ?loc (Stmt.While (info, cond, body))

let do_loop ctx ?loc ?(parallel = false) ?(independent = false)
    ?(sync = []) ~index ~lo ~hi ~step body =
  stmt ctx ?loc
    (Stmt.Do_loop { index; lo; hi; step; body; parallel; independent; sync })

let return ctx ?loc e = stmt ctx ?loc (Stmt.Return e)

(* Bind expression [e] to a fresh temporary and return (stmt, read-expr).
   This is the pervasive (SL, E) building block of the front end (§4). *)
let bind ctx ?loc ?(name = "temp") e =
  let v = fresh_temp ctx ~name e.Expr.ty in
  (assign ctx ?loc v e, Expr.var v)
