(* The compilation service: one compile request = one translation unit
   under one option set; the response carries the printed optimized IL
   and the Titan assembly listing.

   The fast path never runs the optimizer.  A request is parsed (cheap,
   and unavoidable: fingerprints are computed over lowered IL, which is
   what makes them robust against comment/whitespace edits), catalogs
   are imported, the unit is partitioned into invalidation components
   ({!Components}), and each component's key is probed in the cache.
   When every component hits, the response is assembled from cached
   per-function text — the printers emit plain newline-terminated
   pieces, so concatenation reproduces [Pp.prog_to_string] and the
   [--dump-asm] listing byte for byte.  Any miss falls back to a full
   fresh compile of the whole unit (the optimizer is interprocedural;
   recompiling a component in isolation would change inlining and
   summary inputs), whose outputs seed the cache for next time.

   Thread-safety: requests may be served from concurrent domains — all
   compiler state is per-program or domain-local, and the cache handles
   its own locking — so {!compile_batch} runs a domain pool over a
   shared request queue. *)

open Vpc_support
open Vpc.Il

(* Cache-relevant options: the serializable mirror of titancc's flags.
   Callback options (dump, report, ...) are deliberately absent — they
   do not change the compiled artifact.  Catalog and profile inputs are
   carried as paths here but enter cache keys as content digests. *)
type copts = {
  opt_level : int;  (* 0..3 *)
  inline_only : string list;
  no_parallel : bool;
  no_vectorize : bool;
  no_interchange : bool;
  no_fuse : bool;
  no_vreuse : bool;
  no_doacross_sync : bool;
  no_pointsto : bool;
  no_range : bool;
  assume_noalias : bool;
  vlen : int;
  catalogs : string list;
  profile_use : string option;
  tune_use : string option;  (* tuned-configuration store (--tune-use) *)
}

let default_copts =
  {
    opt_level = 3;
    inline_only = [];
    no_parallel = false;
    no_vectorize = false;
    no_interchange = false;
    no_fuse = false;
    no_vreuse = false;
    no_doacross_sync = false;
    no_pointsto = false;
    no_range = false;
    assume_noalias = false;
    vlen = 32;
    catalogs = [];
    profile_use = None;
    tune_use = None;
  }

let copts_to_sexp (c : copts) =
  let open Sexp in
  list
    [
      int c.opt_level;
      list (List.map atom c.inline_only);
      bool c.no_parallel;
      bool c.no_vectorize;
      bool c.no_interchange;
      bool c.no_fuse;
      bool c.no_vreuse;
      bool c.no_doacross_sync;
      bool c.no_pointsto;
      bool c.no_range;
      bool c.assume_noalias;
      int c.vlen;
      list (List.map atom c.catalogs);
      list (List.map atom (Option.to_list c.profile_use));
      list (List.map atom (Option.to_list c.tune_use));
    ]

let copts_of_sexp s =
  let open Sexp in
  match s with
  | List
      [
        lvl; List only; np; nv; ni; nf; nvr; nds; npt; nr; na; vlen;
        List cats; List prof; List tune;
      ] ->
      {
        opt_level = as_int lvl;
        inline_only = List.map as_atom only;
        no_parallel = as_bool np;
        no_vectorize = as_bool nv;
        no_interchange = as_bool ni;
        no_fuse = as_bool nf;
        no_vreuse = as_bool nvr;
        no_doacross_sync = as_bool nds;
        no_pointsto = as_bool npt;
        no_range = as_bool nr;
        assume_noalias = as_bool na;
        vlen = as_int vlen;
        catalogs = List.map as_atom cats;
        profile_use =
          (match prof with [] -> None | [ p ] -> Some (as_atom p)
          | _ -> raise (Parse_error "copts: bad profile"));
        tune_use =
          (match tune with [] -> None | [ p ] -> Some (as_atom p)
          | _ -> raise (Parse_error "copts: bad tune store"));
      }
  | _ -> raise (Parse_error "copts: bad shape")

let to_options (c : copts) : Vpc.options =
  let base =
    match c.opt_level with
    | 0 -> Vpc.o0
    | 1 -> Vpc.o1
    | 2 -> Vpc.o2
    | _ -> Vpc.o3
  in
  {
    base with
    Vpc.inline =
      (match c.inline_only with [] -> base.Vpc.inline | ns -> `Only ns);
    parallelize = base.Vpc.parallelize && not c.no_parallel;
    vectorize = base.Vpc.vectorize && not c.no_vectorize;
    interchange = base.Vpc.interchange && not c.no_interchange;
    fuse = base.Vpc.fuse && not c.no_fuse;
    vreuse = base.Vpc.vreuse && not c.no_vreuse;
    doacross_sync = base.Vpc.doacross_sync && not c.no_doacross_sync;
    pointsto = base.Vpc.pointsto && not c.no_pointsto;
    range = base.Vpc.range && not c.no_range;
    assume_noalias = c.assume_noalias;
    vlen = c.vlen;
    catalogs = c.catalogs;
    profile = Option.map Vpc.Profile.Data.load c.profile_use;
    tune =
      (match c.tune_use with
      | None -> `Off
      | Some p -> `Use (Vpc.Profile.Tuned.load_or_empty p));
  }

type request = {
  req_file : string;  (* display name; locations flow into the IL *)
  req_src : string;
  req_opts : copts;
}

type response = {
  res_il : string;   (* == Pp.prog_to_string of the optimized unit *)
  res_asm : string;  (* name-sorted Titan listing, one pp_func each *)
  res_components : int;
  res_cached : int;  (* components served from cache (= components on a
                        full hit, else 0: misses recompile the unit) *)
  res_funcs : int;
}

(* Rendering -------------------------------------------------------------- *)

(* The globals header exactly as [Pp.pp_prog] prints it. *)
let header_text (prog : Prog.t) =
  let buf = Buffer.create 128 in
  List.iter
    (fun (g : Prog.global) ->
      Buffer.add_string buf
        (Fmt.str "%a %s;@." Ty.pp g.Prog.gvar.Var.ty g.Prog.gvar.Var.name))
    (Prog.globals_list prog);
  Buffer.contents buf

(* One function's slice of [Pp.pp_prog]: a blank separator line, then
   the function text. *)
let func_dump_text (prog : Prog.t) (f : Func.t) =
  "\n" ^ Pp.func_to_string prog f

let asm_texts (prog : Prog.t) : (string * string) list =
  let layout = Vpc.Titan.Machine.layout_globals prog in
  let tprog =
    Vpc.Titan.Codegen.gen_program prog ~global_addr:(fun id ->
        Hashtbl.find layout.Vpc.Titan.Machine.addr_of id)
  in
  Hashtbl.fold
    (fun name f acc ->
      (name, Format.asprintf "%a@." Vpc.Titan.Isa.pp_func f) :: acc)
    tprog.Vpc.Titan.Isa.funcs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Keys ------------------------------------------------------------------- *)

let schema_tag = "titancc-cache-2"

let options_fp (c : copts) =
  (* paths out, contents in: the same catalog reached via a different
     path must hit, an edited catalog at the same path must miss *)
  Fingerprint.digest_string
    (Sexp.to_string
       (copts_to_sexp
          { c with catalogs = []; profile_use = None; tune_use = None }))

type keyed = {
  k_comps : Components.t;
  k_keys : string array;        (* component index -> cache key *)
  k_fp_of : (string, string) Hashtbl.t;  (* func name -> fingerprint *)
}

let component_keys (prog : Prog.t) (c : copts) : keyed =
  let comps = Components.compute prog in
  let opts_fp = options_fp c in
  let structs_fp = Fingerprint.structs prog in
  let globals_fp = Fingerprint.globals prog in
  let catalog_fps = List.map Fingerprint.file c.catalogs in
  let profile_fp = Option.map Fingerprint.file c.profile_use in
  (* a missing store is the empty store (compiles untuned), so it keys
     like no store at all *)
  let tune_fp =
    match c.tune_use with
    | Some p when Sys.file_exists p -> Some (Fingerprint.file p)
    | _ -> None
  in
  let fp_of = Hashtbl.create 16 in
  let locs_of = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace fp_of f.Func.name (Fingerprint.func prog f);
      if profile_fp <> None then
        Hashtbl.replace locs_of f.Func.name (Fingerprint.func_locs f))
    prog.Prog.funcs;
  let key_of members =
    let buf = Buffer.create 512 in
    let add s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
    add schema_tag;
    add opts_fp;
    add structs_fp;
    add globals_fp;
    add (if comps.Components.whole_tu then "whole-tu" else "component");
    List.iter add catalog_fps;
    (match profile_fp with
    | None -> add "no-profile"
    | Some d -> add ("profile " ^ d));
    (match tune_fp with
    | None -> add "no-tune"
    | Some d -> add ("tune " ^ d));
    List.iter
      (fun name ->
        add name;
        add (Hashtbl.find fp_of name);
        if Hashtbl.mem comps.Components.tainted name then add "tainted";
        match Hashtbl.find_opt locs_of name with
        | Some d -> add ("locs " ^ d)
        | None -> ())
      members;
    Fingerprint.digest_string (Buffer.contents buf)
  in
  let keys = Array.map key_of comps.Components.members in
  { k_comps = comps; k_keys = keys; k_fp_of = fp_of }

(* Compilation ------------------------------------------------------------ *)

let compile ?timer (cache : Cache.t) (req : request) : response =
  let timed phase f =
    match timer with Some t -> Timing.time t phase f | None -> f ()
  in
  let options = to_options req.req_opts in
  let prog =
    timed "parse" (fun () -> Vpc.parse ~file:req.req_file req.req_src)
  in
  timed "catalog-import" (fun () ->
      List.iter
        (fun file ->
          Vpc.Inline.Catalog.import ~into:prog (Vpc.Inline.Catalog.load file))
        options.Vpc.catalogs);
  let keyed = timed "fingerprint" (fun () -> component_keys prog req.req_opts) in
  let n = Array.length keyed.k_keys in
  let entries = Array.map (Cache.find cache) keyed.k_keys in
  let all_hit = n > 0 && Array.for_all Option.is_some entries in
  if all_hit then begin
    (* assemble from cached text; the optimizer never runs *)
    timed "assemble" (fun () ->
        let dump_of = Hashtbl.create 16 in
        let asm = Buffer.create 1024 in
        let asm_pieces = ref [] in
        Array.iter
          (fun e ->
            let e = Option.get e in
            List.iter
              (fun (fe : Cache.func_entry) ->
                Hashtbl.replace dump_of fe.Cache.fe_name fe.Cache.fe_dump;
                asm_pieces := (fe.Cache.fe_name, fe.Cache.fe_asm) :: !asm_pieces)
              e.Cache.funcs)
          entries;
        let il = Buffer.create 1024 in
        Buffer.add_string il (header_text prog);
        List.iter
          (fun (f : Func.t) ->
            Buffer.add_string il (Hashtbl.find dump_of f.Func.name))
          prog.Prog.funcs;
        List.iter
          (fun (_, text) -> Buffer.add_string asm text)
          (List.sort (fun (a, _) (b, _) -> compare a b) !asm_pieces);
        {
          res_il = Buffer.contents il;
          res_asm = Buffer.contents asm;
          res_components = n;
          res_cached = n;
          res_funcs = List.length prog.Prog.funcs;
        })
  end
  else begin
    (* miss: compile the whole unit fresh.  [optimize] re-imports the
       catalogs, which is idempotent (present functions and globals
       win), so the result is bit-identical to a from-scratch compile
       of the same source. *)
    ignore (timed "optimize" (fun () -> Vpc.optimize ~options prog));
    let il = Pp.prog_to_string prog in
    let asms = timed "codegen" (fun () -> asm_texts prog) in
    let summaries =
      if options.Vpc.pointsto then
        timed "summaries" (fun () ->
            let pt = Vpc.Pointsto.Pointsto.analyze prog in
            List.map
              (fun (f : Func.t) ->
                ( f.Func.name,
                  Fmt.str "%a" (Vpc.Pointsto.Pointsto.pp_summary pt) f.Func.name
                ))
              prog.Prog.funcs)
      else []
    in
    timed "store" (fun () ->
        Array.iteri
          (fun i members_key ->
            let members = keyed.k_comps.Components.members.(i) in
            let funcs =
              List.map
                (fun name ->
                  let f = Option.get (Prog.find_func prog name) in
                  {
                    Cache.fe_name = name;
                    fe_il = Sexp.to_string (Func.to_sexp f);
                    fe_dump = func_dump_text prog f;
                    fe_asm =
                      (try List.assoc name asms
                       with Not_found -> "");
                  })
                members
            in
            let summaries =
              List.filter (fun (n, _) -> List.mem n members) summaries
            in
            Cache.store cache
              { Cache.key = members_key; funcs; summaries })
          keyed.k_keys);
    {
      res_il = il;
      res_asm =
        String.concat "" (List.map snd asms);
      res_components = n;
      res_cached = 0;
      res_funcs = List.length prog.Prog.funcs;
    }
  end

(* Parallel batches ------------------------------------------------------- *)

(* Compile a batch of independent requests on a pool of domains pulling
   from a shared index.  All compiler state is per-request or
   domain-local; the cache synchronizes itself. *)
let compile_batch ?(jobs = 4) (cache : Cache.t) (reqs : request list) :
    response list =
  let arr = Array.of_list reqs in
  let out = Array.make (Array.length arr) None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length arr then begin
        out.(i) <- Some (compile cache arr.(i));
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs (Array.length arr)) in
  if jobs = 1 then worker ()
  else begin
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.to_list out
  |> List.map (function
       | Some r -> r
       | None -> failwith "compile_batch: unreached request")
