(* Content fingerprints for the compilation cache.

   A procedure's fingerprint is an MD5 digest of a canonical rendering
   of its lowered IL.  The rendering deliberately differs from the
   catalog serialization ([Func.to_sexp]) in what it forgets:

   - Source locations never appear (they are not serialized anyway), so
     comment and whitespace edits leave the fingerprint unchanged.
   - Gensym counters are dropped: they encode allocation history, not
     meaning.
   - Program-wide variable ids are replaced by positional tokens —
     parameters by position, locals by rank in ascending-id order,
     globals by name.  Editing one procedure shifts every later
     procedure's raw ids; the normalization keeps those procedures'
     fingerprints (and hence their cache entries) valid.

   What the rendering keeps is everything the optimizer can observe:
   names (they appear in the printed IL), types, storage classes,
   statement structure, and pragma bits. *)

open Vpc_support
open Vpc_il

let digest_string s = Digest.to_hex (Digest.string s)

(* Canonical rendering of one function with normalized variable ids. *)
let func_sexp (prog : Prog.t) (f : Func.t) : Sexp.t =
  let open Sexp in
  let tok = Hashtbl.create 32 in
  List.iteri
    (fun i id -> Hashtbl.replace tok id (Printf.sprintf "p%d" i))
    f.Func.params;
  let k = ref 0 in
  List.iter
    (fun (v : Var.t) ->
      if not (Hashtbl.mem tok v.Var.id) then begin
        Hashtbl.replace tok v.Var.id (Printf.sprintf "l%d" !k);
        incr k
      end)
    (Func.locals f);
  let vtok id =
    match Hashtbl.find_opt tok id with
    | Some s -> s
    | None -> (
        match Hashtbl.find_opt prog.Prog.globals id with
        | Some g -> "g!" ^ g.Prog.gvar.Var.name
        | None -> "x!" ^ string_of_int id)
  in
  let rec expr (e : Expr.t) =
    match e.Expr.desc with
    | Expr.Const_int n -> list [ atom "ci"; int n; Ty.to_sexp e.Expr.ty ]
    | Expr.Const_float x -> list [ atom "cf"; float x; Ty.to_sexp e.Expr.ty ]
    | Expr.Var id -> list [ atom "v"; atom (vtok id); Ty.to_sexp e.Expr.ty ]
    | Expr.Addr_of id ->
        list [ atom "addr"; atom (vtok id); Ty.to_sexp e.Expr.ty ]
    | Expr.Load p -> list [ atom "load"; expr p; Ty.to_sexp e.Expr.ty ]
    | Expr.Binop (op, a, b) ->
        list
          [ atom "b"; atom (Expr.binop_to_string op); expr a; expr b;
            Ty.to_sexp e.Expr.ty ]
    | Expr.Unop (op, a) ->
        list
          [ atom "u"; atom (Expr.unop_to_string op); expr a;
            Ty.to_sexp e.Expr.ty ]
    | Expr.Cast (t, a) -> list [ atom "cast"; Ty.to_sexp t; expr a ]
  in
  let lvalue = function
    | Stmt.Lvar id -> list [ atom "lv"; atom (vtok id) ]
    | Stmt.Lmem e -> list [ atom "lm"; expr e ]
  in
  let section (sec : Stmt.section) =
    list [ expr sec.Stmt.base; expr sec.Stmt.count; expr sec.Stmt.stride ]
  in
  let rec vexpr = function
    | Stmt.Vsec sec -> list [ atom "vsec"; section sec ]
    | Stmt.Vscalar e -> list [ atom "vscalar"; expr e ]
    | Stmt.Viota (off, scale) -> list [ atom "viota"; expr off; expr scale ]
    | Stmt.Vcast (ty, a) -> list [ atom "vcast"; Ty.to_sexp ty; vexpr a ]
    | Stmt.Vbin (op, a, b) ->
        list
          [ atom "vbin"; atom (Expr.binop_to_string op); vexpr a; vexpr b ]
    | Stmt.Vun (op, a) ->
        list [ atom "vun"; atom (Expr.unop_to_string op); vexpr a ]
    | Stmt.Vtmp (t, ty) -> list [ atom "vtmp"; int t; Ty.to_sexp ty ]
  in
  let rec stmt (s : Stmt.t) =
    (* statement ids are omitted: per-function gensyms make them a
       deterministic function of the structure rendered here *)
    match s.Stmt.desc with
    | Stmt.Assign (lv, e) -> list [ atom "assign"; lvalue lv; expr e ]
    | Stmt.Call (dst, tgt, args) ->
        let dst_s =
          match dst with None -> atom "none" | Some lv -> lvalue lv
        in
        let tgt_s =
          match tgt with
          | Stmt.Direct name -> list [ atom "direct"; atom name ]
          | Stmt.Indirect e -> list [ atom "indirect"; expr e ]
        in
        [ atom "call"; dst_s; tgt_s; list (List.map expr args) ] |> list
    | Stmt.If (c, t_, e_) ->
        list
          [ atom "if"; expr c; list (List.map stmt t_);
            list (List.map stmt e_) ]
    | Stmt.While (li, c, body) ->
        list
          [ atom "while"; bool li.Stmt.pragma_independent;
            bool li.Stmt.doacross; int li.Stmt.serial_prefix; expr c;
            list (List.map stmt body) ]
    | Stmt.Do_loop d ->
        list
          [ atom "do"; atom (vtok d.Stmt.index); expr d.Stmt.lo;
            expr d.Stmt.hi; expr d.Stmt.step; bool d.Stmt.parallel;
            bool d.Stmt.independent;
            list (List.map Stmt.dsync_to_sexp d.Stmt.sync);
            list (List.map stmt d.Stmt.body) ]
    | Stmt.Goto l -> list [ atom "goto"; atom l ]
    | Stmt.Label l -> list [ atom "label"; atom l ]
    | Stmt.Return None -> list [ atom "return" ]
    | Stmt.Return (Some e) -> list [ atom "return"; expr e ]
    | Stmt.Vector v ->
        list
          [ atom "vector"; section v.Stmt.vdst; vexpr v.Stmt.vsrc;
            Ty.to_sexp v.Stmt.velt ]
    | Stmt.Vdef vd ->
        list
          [ atom "vdef"; int vd.Stmt.vt; vexpr vd.Stmt.vval;
            expr vd.Stmt.vcount; Ty.to_sexp vd.Stmt.vty ]
    | Stmt.Nop -> list [ atom "nop" ]
  in
  let var_descr (v : Var.t) =
    list
      [
        atom (vtok v.Var.id);
        atom v.Var.name;
        Ty.to_sexp v.Var.ty;
        atom (Var.storage_to_string v.Var.storage);
        bool v.Var.volatile;
        bool v.Var.is_temp;
      ]
  in
  list
    [
      atom "func";
      atom f.Func.name;
      Ty.to_sexp f.Func.ret_ty;
      bool f.Func.is_static;
      list (List.map (fun id -> atom (vtok id)) f.Func.params);
      list (List.map var_descr (Func.locals f));
      list (List.map stmt f.Func.body);
    ]

let func prog f = digest_string (Sexp.to_string (func_sexp prog f))

(* Source locations of a function's statements.  Mixed into the key only
   when a profile is in play: profile entries are keyed by location, so
   a pure whitespace edit — invisible to [func] — can legitimately
   change profile-guided decisions. *)
let func_locs (f : Func.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Vpc_support.Loc.to_string f.Func.loc);
  Stmt.iter_list
    (fun s ->
      Buffer.add_char buf ';';
      Buffer.add_string buf (Vpc_support.Loc.to_string s.Stmt.loc))
    f.Func.body;
  digest_string (Buffer.contents buf)

let structs (prog : Prog.t) =
  let defs =
    Hashtbl.fold (fun _ (d : Ty.struct_def) acc -> d :: acc)
      prog.Prog.structs []
    |> List.sort (fun (a : Ty.struct_def) b -> compare a.tag b.tag)
  in
  let one (d : Ty.struct_def) =
    Sexp.list
      (Sexp.atom d.Ty.tag
      :: List.map
           (fun (n, ty) -> Sexp.list [ Sexp.atom n; Ty.to_sexp ty ])
           d.Ty.fields)
  in
  digest_string (Sexp.to_string (Sexp.list (List.map one defs)))

(* All globals, in layout order, with initializers — global addresses
   are baked into generated code, so any change to the global section
   invalidates every procedure of the translation unit. *)
let globals (prog : Prog.t) =
  (* initializers are constant expressions but may take other globals'
     addresses — render those by name, not by raw id *)
  let gname id =
    match Hashtbl.find_opt prog.Prog.globals id with
    | Some g -> "g!" ^ g.Prog.gvar.Var.name
    | None -> "x!" ^ string_of_int id
  in
  let rec gexpr (e : Expr.t) =
    let open Sexp in
    match e.Expr.desc with
    | Expr.Const_int n -> list [ atom "ci"; int n; Ty.to_sexp e.Expr.ty ]
    | Expr.Const_float x -> list [ atom "cf"; float x; Ty.to_sexp e.Expr.ty ]
    | Expr.Var id -> list [ atom "v"; atom (gname id); Ty.to_sexp e.Expr.ty ]
    | Expr.Addr_of id ->
        list [ atom "addr"; atom (gname id); Ty.to_sexp e.Expr.ty ]
    | Expr.Load p -> list [ atom "load"; gexpr p; Ty.to_sexp e.Expr.ty ]
    | Expr.Binop (op, a, b) ->
        list
          [ atom "b"; atom (Expr.binop_to_string op); gexpr a; gexpr b;
            Ty.to_sexp e.Expr.ty ]
    | Expr.Unop (op, a) ->
        list
          [ atom "u"; atom (Expr.unop_to_string op); gexpr a;
            Ty.to_sexp e.Expr.ty ]
    | Expr.Cast (t, a) -> list [ atom "cast"; Ty.to_sexp t; gexpr a ]
  in
  let ginit = function
    | Prog.Init_none -> Sexp.atom "none"
    | Prog.Init_scalar e -> Sexp.list [ Sexp.atom "s"; gexpr e ]
    | Prog.Init_array es -> Sexp.list (Sexp.atom "a" :: List.map gexpr es)
    | Prog.Init_string s -> Sexp.list [ Sexp.atom "str"; Sexp.atom s ]
  in
  let one (g : Prog.global) =
    Sexp.list
      [
        Sexp.atom g.Prog.gvar.Var.name;
        Ty.to_sexp g.Prog.gvar.Var.ty;
        Sexp.atom (Var.storage_to_string g.Prog.gvar.Var.storage);
        Sexp.bool g.Prog.gvar.Var.volatile;
        ginit g.Prog.ginit;
      ]
  in
  digest_string
    (Sexp.to_string (Sexp.list (List.map one (Prog.globals_list prog))))

let file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      digest_string (really_input_string ic (in_channel_length ic)))
