(* Wire protocol for the compile daemon: length-prefixed sexp frames
   over a Unix-domain stream socket.

   A frame is a 4-byte big-endian payload length followed by the
   payload.  Framing is deliberately independent of the sexp syntax so
   arbitrary source bytes survive the trip without the reader having to
   re-lex partial input off the wire. *)

open Vpc_support

type client_msg =
  | Compile of Service.request
  | Stats
  | Shutdown

type server_msg =
  | Compiled of Service.response
  | Stats_reply of Cache.stats
  | Error of string
  | Bye

(* Frames ----------------------------------------------------------------- *)

let max_frame = 64 * 1024 * 1024

let write_frame oc (s : string) =
  if String.length s > max_frame then failwith "protocol: frame too large";
  output_binary_int oc (String.length s);
  output_string oc s;
  flush oc

let read_frame ic : string =
  let n = input_binary_int ic in
  if n < 0 || n > max_frame then failwith "protocol: bad frame length";
  really_input_string ic n

(* Encoding --------------------------------------------------------------- *)

let client_to_sexp = function
  | Compile r ->
      Sexp.list
        [
          Sexp.atom "compile";
          Sexp.atom r.Service.req_file;
          Sexp.atom r.Service.req_src;
          Service.copts_to_sexp r.Service.req_opts;
        ]
  | Stats -> Sexp.list [ Sexp.atom "stats" ]
  | Shutdown -> Sexp.list [ Sexp.atom "shutdown" ]

let client_of_sexp s =
  match s with
  | Sexp.List [ Sexp.Atom "compile"; Sexp.Atom file; Sexp.Atom src; opts ] ->
      Compile
        {
          Service.req_file = file;
          req_src = src;
          req_opts = Service.copts_of_sexp opts;
        }
  | Sexp.List [ Sexp.Atom "stats" ] -> Stats
  | Sexp.List [ Sexp.Atom "shutdown" ] -> Shutdown
  | _ -> raise (Sexp.Parse_error "protocol: bad client message")

let server_to_sexp = function
  | Compiled r ->
      Sexp.list
        [
          Sexp.atom "compiled";
          Sexp.atom r.Service.res_il;
          Sexp.atom r.Service.res_asm;
          Sexp.int r.Service.res_components;
          Sexp.int r.Service.res_cached;
          Sexp.int r.Service.res_funcs;
        ]
  | Stats_reply s ->
      Sexp.list
        [
          Sexp.atom "stats";
          Sexp.int s.Cache.s_hits;
          Sexp.int s.Cache.s_misses;
          Sexp.int s.Cache.s_stores;
          Sexp.int s.Cache.s_entries;
        ]
  | Error m -> Sexp.list [ Sexp.atom "error"; Sexp.atom m ]
  | Bye -> Sexp.list [ Sexp.atom "bye" ]

let server_of_sexp s =
  match s with
  | Sexp.List
      [
        Sexp.Atom "compiled"; Sexp.Atom il; Sexp.Atom asm; comps; cached; funcs;
      ] ->
      Compiled
        {
          Service.res_il = il;
          res_asm = asm;
          res_components = Sexp.as_int comps;
          res_cached = Sexp.as_int cached;
          res_funcs = Sexp.as_int funcs;
        }
  | Sexp.List [ Sexp.Atom "stats"; h; m; st; e ] ->
      Stats_reply
        {
          Cache.s_hits = Sexp.as_int h;
          s_misses = Sexp.as_int m;
          s_stores = Sexp.as_int st;
          s_entries = Sexp.as_int e;
        }
  | Sexp.List [ Sexp.Atom "error"; Sexp.Atom m ] -> Error m
  | Sexp.List [ Sexp.Atom "bye" ] -> Bye
  | _ -> raise (Sexp.Parse_error "protocol: bad server message")

(* Client side ------------------------------------------------------------ *)

(* One request per connection: connect, send, read the reply. *)
let request ~socket (msg : client_msg) : server_msg =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      write_frame oc (Sexp.to_string (client_to_sexp msg));
      server_of_sexp (Sexp.of_string (read_frame ic)))
