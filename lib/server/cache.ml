(* The content-addressed procedure cache.

   Entries are keyed by a hex digest computed in {!Service}: the key
   covers a component's member fingerprints plus every input the
   optimizer can observe (option set, struct and global sections,
   catalog and profile bytes).  Because the key is exhaustive, lookup
   needs no validation — a hit is correct by construction, and
   invalidation is free: an edit changes the key, the stale entry is
   simply never asked for again.

   The store is two-level: an in-memory table (shared by all pipeline
   domains, mutex-guarded) in front of an optional on-disk directory of
   one sexp file per entry.  Disk writes go through a temp file and
   [Sys.rename] so a crashed or concurrent writer can never leave a
   half-written entry behind; both sides of a racing double-store write
   the same bytes, so either rename order is fine. *)

open Vpc_support

type func_entry = {
  fe_name : string;
  fe_il : string;    (* optimized IL, catalog sexp form *)
  fe_dump : string;  (* printed IL text, byte-exact piece of prog_to_string *)
  fe_asm : string;   (* Titan assembly text, byte-exact pp_func output *)
}

type entry = {
  key : string;
  funcs : func_entry list;            (* component members, name-sorted *)
  summaries : (string * string) list; (* points-to summaries, name-sorted *)
}

type t = {
  dir : string option;
  mem : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
}

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  {
    dir;
    mem = Hashtbl.create 64;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
  }

(* Serialization ---------------------------------------------------------- *)

let entry_to_sexp (e : entry) =
  let open Sexp in
  let fe (f : func_entry) =
    list [ atom f.fe_name; atom f.fe_il; atom f.fe_dump; atom f.fe_asm ]
  in
  let sm (name, text) = list [ atom name; atom text ] in
  list
    [
      atom "entry";
      atom e.key;
      list (List.map fe e.funcs);
      list (List.map sm e.summaries);
    ]

let entry_of_sexp s =
  let open Sexp in
  match s with
  | List [ Atom "entry"; Atom key; List funcs; List summaries ] ->
      let fe = function
        | List [ Atom n; Atom il; Atom d; Atom a ] ->
            { fe_name = n; fe_il = il; fe_dump = d; fe_asm = a }
        | _ -> raise (Parse_error "cache entry: bad function record")
      in
      let sm = function
        | List [ Atom n; Atom t ] -> (n, t)
        | _ -> raise (Parse_error "cache entry: bad summary record")
      in
      { key; funcs = List.map fe funcs; summaries = List.map sm summaries }
  | _ -> raise (Parse_error "cache entry: bad shape")

(* Persistence ------------------------------------------------------------ *)

let path_of dir key = Filename.concat dir (key ^ ".ent")

let write_file dir (e : entry) =
  let final = path_of dir e.key in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.%d.tmp" e.key (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Sexp.to_string (entry_to_sexp e)));
  Sys.rename tmp final

let read_file dir key =
  let p = path_of dir key in
  if not (Sys.file_exists p) then None
  else
    let ic = open_in_bin p in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match entry_of_sexp (Sexp.of_string content) with
    | e when e.key = key -> Some e
    | _ -> None
    | exception Sexp.Parse_error _ -> None

(* Operations ------------------------------------------------------------- *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key : entry option =
  let in_mem = locked t (fun () -> Hashtbl.find_opt t.mem key) in
  match in_mem with
  | Some _ as r ->
      Atomic.incr t.hits;
      r
  | None -> (
      match Option.bind t.dir (fun d -> read_file d key) with
      | Some e ->
          locked t (fun () ->
              if not (Hashtbl.mem t.mem key) then Hashtbl.replace t.mem key e);
          Atomic.incr t.hits;
          Some e
      | None ->
          Atomic.incr t.misses;
          None)

let store t (e : entry) =
  locked t (fun () -> Hashtbl.replace t.mem e.key e);
  Atomic.incr t.stores;
  Option.iter (fun d -> write_file d e) t.dir

type stats = { s_hits : int; s_misses : int; s_stores : int; s_entries : int }

let stats t =
  {
    s_hits = Atomic.get t.hits;
    s_misses = Atomic.get t.misses;
    s_stores = Atomic.get t.stores;
    s_entries = locked t (fun () -> Hashtbl.length t.mem);
  }

let reset_counters t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.stores 0
