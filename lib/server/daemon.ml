(* The compile daemon: a Unix-domain socket accept loop in front of one
   shared {!Cache}.

   Connections are handled one request at a time — the daemon's job is
   to keep the cache warm across requests from short-lived clients;
   intra-batch parallelism lives in {!Service.compile_batch}, which
   in-process callers (the bench driver, tests) use directly.  Each
   served request logs one line to stderr with the per-phase wall-time
   profile, the same buckets [--timings] prints. *)

open Vpc_support

type config = {
  socket_path : string;
  verbose : bool;  (* per-request log lines on stderr *)
}

let handle_conn cache (config : config) fd : [ `Continue | `Stop ] =
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let reply msg = Protocol.write_frame oc (Sexp.to_string (Protocol.server_to_sexp msg)) in
  match Protocol.client_of_sexp (Sexp.of_string (Protocol.read_frame ic)) with
  | Protocol.Stats ->
      reply (Protocol.Stats_reply (Cache.stats cache));
      `Continue
  | Protocol.Shutdown ->
      reply Protocol.Bye;
      `Stop
  | Protocol.Compile req ->
      let timer = Timing.create () in
      let t0 = Unix.gettimeofday () in
      (try
         let res = Service.compile ~timer cache req in
         let ms = (Unix.gettimeofday () -. t0) *. 1000. in
         if config.verbose then begin
           let phases =
             Timing.phases timer
             |> List.map (fun (name, s) ->
                    Printf.sprintf "%s=%.1fms" name (s *. 1000.))
             |> String.concat " "
           in
           Printf.eprintf
             "[serve] %s: %d funcs, %d/%d components cached, %.1f ms (%s)\n%!"
             req.Service.req_file res.Service.res_funcs
             res.Service.res_cached res.Service.res_components ms phases
         end;
         reply (Protocol.Compiled res)
       with
      | Diag.Error_exn d -> reply (Protocol.Error (Diag.to_string d))
      | Sexp.Parse_error m -> reply (Protocol.Error ("parse error: " ^ m))
      | Sys_error m -> reply (Protocol.Error m));
      `Continue

let serve (config : config) (cache : Cache.t) =
  (* a client that disconnects mid-reply must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
  Unix.listen sock 16;
  if config.verbose then
    Printf.eprintf "[serve] listening on %s\n%!" config.socket_path;
  let rec loop () =
    let fd, _ = Unix.accept sock in
    let verdict =
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try handle_conn cache config fd with
          | End_of_file | Sexp.Parse_error _ | Failure _ -> `Continue
          | Unix.Unix_error _ -> `Continue)
    in
    match verdict with `Continue -> loop () | `Stop -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      if Sys.file_exists config.socket_path then Sys.remove config.socket_path)
    loop;
  if config.verbose then begin
    let s = Cache.stats cache in
    Printf.eprintf
      "[serve] shutdown: %d hits, %d misses, %d entries\n%!"
      s.Cache.s_hits s.Cache.s_misses s.Cache.s_entries
  end
