(* Invalidation components for the compilation cache.

   The optimizer is interprocedural: inlining follows call edges,
   points-to and range summaries flow along them, and two procedures
   that touch the same global can influence each other's dependence
   tests.  A cached result for one procedure is therefore only reusable
   when everything that could have fed its optimization is unchanged.

   Rather than tracking fine-grained dataflow we over-approximate with
   an undirected partition of the translation unit's procedures:

   - a direct call edge joins caller and callee;
   - two procedures mentioning the same global are joined;
   - procedures whose analysis couples through unknown memory — those
     calling undefined procedures, and those with pointer parameters
     (their parameters seed the points-to Unknown object when no caller
     is visible) — form one "tainted" group;
   - an indirect call or an extern global anywhere collapses the whole
     unit into a single component: the points-to solver then routes
     information through objects shared program-wide.

   A component is the unit of caching: its key covers the fingerprints
   of all members plus the option set and every analysis input, so a
   hit guarantees the optimizer would see bit-identical inputs. *)

open Vpc_il

type t = {
  comp_of : (string, int) Hashtbl.t;  (* function name -> component index *)
  members : string list array;        (* index -> sorted member names *)
  whole_tu : bool;                    (* single component, unit-wide *)
  tainted : (string, unit) Hashtbl.t; (* members of the unknown-memory group *)
}

(* Union-find over function names ---------------------------------------- *)

let find parent x =
  let rec go x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
        let r = go p in
        Hashtbl.replace parent x r;
        r
    | _ -> x
  in
  go x

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then Hashtbl.replace parent ra rb

(* Per-function facts ----------------------------------------------------- *)

type facts = {
  mutable callees : string list;
  mutable globals_used : int list;
  mutable has_indirect : bool;
}

let collect_facts (prog : Prog.t) (f : Func.t) : facts =
  let fa = { callees = []; globals_used = []; has_indirect = false } in
  let note_global id =
    if Hashtbl.mem prog.Prog.globals id then
      fa.globals_used <- id :: fa.globals_used
  in
  let rec expr (e : Expr.t) =
    match e.Expr.desc with
    | Expr.Var id | Expr.Addr_of id -> note_global id
    | Expr.Load p -> expr p
    | Expr.Binop (_, a, b) -> expr a; expr b
    | Expr.Unop (_, a) | Expr.Cast (_, a) -> expr a
    | Expr.Const_int _ | Expr.Const_float _ -> ()
  in
  let lvalue = function
    | Stmt.Lvar id -> note_global id
    | Stmt.Lmem e -> expr e
  in
  let section (s : Stmt.section) =
    expr s.Stmt.base; expr s.Stmt.count; expr s.Stmt.stride
  in
  let rec vexpr = function
    | Stmt.Vsec s -> section s
    | Stmt.Vscalar e -> expr e
    | Stmt.Viota (a, b) -> expr a; expr b
    | Stmt.Vcast (_, v) | Stmt.Vun (_, v) -> vexpr v
    | Stmt.Vbin (_, a, b) -> vexpr a; vexpr b
    | Stmt.Vtmp _ -> ()
  in
  Stmt.iter_list
    (fun (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Assign (lv, e) -> lvalue lv; expr e
      | Stmt.Call (dst, tgt, args) ->
          Option.iter lvalue dst;
          (match tgt with
          | Stmt.Direct name -> fa.callees <- name :: fa.callees
          | Stmt.Indirect e ->
              fa.has_indirect <- true;
              expr e);
          List.iter expr args
      | Stmt.If (c, _, _) -> expr c
      | Stmt.While (_, c, _) -> expr c
      | Stmt.Do_loop d -> expr d.Stmt.lo; expr d.Stmt.hi; expr d.Stmt.step
      | Stmt.Return (Some e) -> expr e
      | Stmt.Vector v -> section v.Stmt.vdst; vexpr v.Stmt.vsrc
      | Stmt.Vdef vd -> vexpr vd.Stmt.vval; expr vd.Stmt.vcount
      | Stmt.Goto _ | Stmt.Label _ | Stmt.Return None | Stmt.Nop -> ())
    f.Func.body;
  fa

let has_pointer_param (f : Func.t) =
  List.exists
    (fun id ->
      match Hashtbl.find_opt f.Func.vars id with
      | Some (v : Var.t) -> (
          match Ty.decay v.Var.ty with Ty.Ptr _ -> true | _ -> false)
      | None -> false)
    f.Func.params

let compute (prog : Prog.t) : t =
  let funcs = prog.Prog.funcs in
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Func.t) -> Hashtbl.replace defined f.Func.name ()) funcs;
  let parent = Hashtbl.create 16 in
  List.iter (fun (f : Func.t) -> Hashtbl.replace parent f.Func.name f.Func.name)
    funcs;
  let tainted = Hashtbl.create 8 in
  let any_indirect = ref false in
  let extern_global =
    List.exists
      (fun (g : Prog.global) -> g.Prog.gvar.Var.storage = Var.Extern)
      (Prog.globals_list prog)
  in
  let users_of_global : (int, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      let fa = collect_facts prog f in
      if fa.has_indirect then any_indirect := true;
      List.iter
        (fun callee ->
          if Hashtbl.mem defined callee then union parent f.Func.name callee
          else Hashtbl.replace tainted f.Func.name ())
        fa.callees;
      List.iter
        (fun gid ->
          (match Hashtbl.find_opt users_of_global gid with
          | Some other -> union parent f.Func.name other
          | None -> ());
          Hashtbl.replace users_of_global gid f.Func.name)
        fa.globals_used;
      if has_pointer_param f then Hashtbl.replace tainted f.Func.name ())
    funcs;
  (* all tainted procedures couple through unknown memory *)
  let taint_rep = ref None in
  Hashtbl.iter
    (fun name () ->
      match !taint_rep with
      | None -> taint_rep := Some name
      | Some rep -> union parent name rep)
    tainted;
  let whole_tu = !any_indirect || extern_global in
  if whole_tu then
    (match funcs with
    | first :: rest ->
        List.iter
          (fun (f : Func.t) -> union parent first.Func.name f.Func.name)
          rest
    | [] -> ());
  (* number components in order of first appearance in [prog.funcs] so
     indices are deterministic *)
  let comp_of = Hashtbl.create 16 in
  let idx_of_rep = Hashtbl.create 16 in
  let n = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      let rep = find parent f.Func.name in
      let idx =
        match Hashtbl.find_opt idx_of_rep rep with
        | Some i -> i
        | None ->
            let i = !n in
            incr n;
            Hashtbl.replace idx_of_rep rep i;
            i
      in
      Hashtbl.replace comp_of f.Func.name idx)
    funcs;
  let members = Array.make !n [] in
  List.iter
    (fun (f : Func.t) ->
      let i = Hashtbl.find comp_of f.Func.name in
      members.(i) <- f.Func.name :: members.(i))
    funcs;
  Array.iteri (fun i l -> members.(i) <- List.sort compare l) members;
  { comp_of; members; whole_tu; tainted }
