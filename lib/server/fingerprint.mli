(** Content fingerprints for the compilation cache.

    All functions return hex MD5 digests of canonical renderings.  The
    renderings normalize away representation accidents — source
    locations, gensym counters, and raw program-wide variable ids (which
    shift whenever an earlier procedure changes size) — while keeping
    everything the optimizer and the printers can observe: names, types,
    storage classes, statement structure, and pragma bits.  Two
    procedures get equal fingerprints exactly when the compiler must
    produce byte-identical output for them under equal option sets,
    analysis contexts, and global sections. *)

open Vpc_il

val func : Prog.t -> Func.t -> string
(** Fingerprint of one function's lowered IL, id-normalized and
    location-free. *)

val func_locs : Func.t -> string
(** Digest of the function's source-location stream.  Mixed into cache
    keys only when a profile is supplied: profile entries are keyed by
    location, so location moves then become semantically relevant. *)

val structs : Prog.t -> string
(** Struct environment, tag-sorted. *)

val globals : Prog.t -> string
(** All globals in layout order with types, storage, and initializers
    (address-of references rendered by name).  Generated code embeds
    global addresses, so this digest guards every key of the unit. *)

val file : string -> string
(** Digest of a file's raw bytes (catalogs, profiles). *)

val digest_string : string -> string
