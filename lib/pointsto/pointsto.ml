(* Whole-program points-to and mod/ref analysis.

   The paper's §1 names unconstrained pointer aliasing as the central
   obstacle to vectorizing C; the escape hatches it offers (the per-loop
   pragma, the Fortran-parameter-semantics option) make the *user*
   assert disjointness.  This module proves it instead: a
   flow-insensitive, field-offset-aware, Andersen-style inclusion-based
   analysis over the whole program (after catalog import, so paged-in
   procedures participate), producing

     (a) a points-to graph: which abstract objects each pointer-valued
         slot may address, with a constant-offset lattice on top;
     (b) per-procedure mod/ref summaries (callee effects folded in to a
         call-graph fixpoint), used by the race checker to bound calls
         that used to be worst-case;
     (c) a disjointness oracle over address expressions, installed into
         Dependence.Alias ahead of its May_alias fallback.

   Abstract objects are named program variables (one object per array /
   struct / addressed scalar), one shared object [Lit] for every
   integer-literal address (memory-mapped device registers), and
   [Unknown] for storage the program never names (whatever unknown
   callees or unknown callers hand us).

   Soundness rests on two documented assumptions:
     - strict provenance: the program does not forge a pointer to a
       named object out of thin air (integer arithmetic that carries a
       pointer value is tracked, including through casts; conjuring
       `(float* )0x1234` aliases only [Lit], never a named object);
     - compiler temporaries created by passes that run *after* the
       analysis (strip-mine counters, scalar-replacement value
       temporaries) carry addresses only if pointer-typed.  Every pass
       in the pipeline satisfies this; pointer-typed temporaries are
       treated as Unknown.

   Flow-insensitivity makes the result valid at every program point, so
   the oracle stays sound for loop-variant pointers: a bumped pointer's
   set covers every value it ever holds (its offset widens to [Any]),
   and two sweeps confined to disjoint object sets can never meet. *)

open Vpc_il

type obj =
  | Obj of int  (* the storage of variable v *)
  | Lit         (* all integer-literal addresses (device registers) *)
  | Unknown     (* storage the program never names *)

module Objset = Set.Make (struct
  type t = obj

  let compare = compare
end)

type off = Known of int | Any

type summary = {
  mods : Objset.t;  (* objects the call may write (callees folded in) *)
  refs : Objset.t;  (* objects the call may read *)
  io : bool;        (* externally visible effects: printf, unknown callees *)
}

(* Pointer-holding slots of the constraint graph. *)
type slot =
  | Svar of int   (* a scalar variable *)
  | Smem of obj   (* the summarized contents of an object *)
  | Sret of string  (* a function's returned value *)

(* Where a pointer value may come from (right-hand sides). *)
type src =
  | Sbase of int        (* &v *)
  | Slit of int         (* integer literal used as an address *)
  | Scopy of slot
  | Sload of src        (* contents of whatever [src] addresses *)
  | Sshift of src * off (* pointer arithmetic *)
  | Sunion of src list
  | Sunknown

type constr =
  | Into of slot * src  (* pts(slot) ⊇ eval(src) *)
  | Store of src * src  (* ∀ o ∈ eval(addr): contents(o) ⊇ eval(value) *)

(* Effects recorded during the walk, resolved after the solve. *)
type call_effect =
  | Known_call of string
  | Builtin_io of Expr.t list   (* printf: reads its arguments, does io *)
  | Unknown_call of Expr.t list

type fun_facts = {
  mutable constraints : constr list;
  mutable calls : call_effect list;
  (* address exprs written / read by the function's own statements *)
  mutable waddrs : Expr.t list;
  mutable raddrs : Expr.t list;
  mutable gmods : Objset.t;  (* global scalars assigned directly *)
  mutable grefs : Objset.t;  (* global scalars read directly *)
}

type t = {
  prog : Prog.t;
  vartab : (int, Var.t) Hashtbl.t;  (* vars known at analysis time *)
  pts : (slot, (obj, off) Hashtbl.t) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
}

let join_off a b =
  match a, b with Known x, Known y when x = y -> Known x | _ -> Any

(* ------------------------------------------------------------------ *)
(* Constraint generation                                               *)

(* [as_addr] marks positions where an integer literal denotes an address
   (dereference addresses, values bound to pointer-typed slots); in plain
   arithmetic a literal is just a number and contributes nothing. *)
let rec src_of ~as_addr (e : Expr.t) : src option =
  let shift_any = Option.map (fun s -> Sshift (s, Any)) in
  let union xs =
    match List.filter_map Fun.id xs with
    | [] -> None
    | [ s ] -> Some s
    | ss -> Some (Sunion ss)
  in
  (* a + k: the literal is an offset of the other operand — unless that
     operand is not pointer-typed, in which case the literal itself may
     be the base (0x4000 + i addressing a device block) *)
  let shifted_const x k =
    let base = Option.map (fun s -> Sshift (s, Known k)) (src_of ~as_addr x) in
    if as_addr && not (Ty.is_pointer x.Expr.ty) then
      union [ base; Some (Slit k) ]
    else base
  in
  match e.Expr.desc with
  | Expr.Addr_of v -> Some (Sbase v)
  | Expr.Const_int k -> if as_addr then Some (Slit k) else None
  | Expr.Const_float _ -> None
  | Expr.Var v -> Some (Scopy (Svar v))
  | Expr.Load p -> (
      match src_of ~as_addr:true p with
      | Some a -> Some (Sload a)
      | None -> Some (Sload Sunknown))
  | Expr.Binop (Expr.Add, a, b) -> (
      match Expr.const_int_val b, Expr.const_int_val a with
      | Some k, _ -> shifted_const a k
      | _, Some k -> shifted_const b k
      | None, None ->
          union [ shift_any (src_of ~as_addr a); shift_any (src_of ~as_addr b) ])
  | Expr.Binop (Expr.Sub, a, b) -> (
      match Expr.const_int_val b with
      | Some k -> Option.map (fun s -> Sshift (s, Known (-k))) (src_of ~as_addr a)
      | None ->
          union
            [
              shift_any (src_of ~as_addr a);
              shift_any (src_of ~as_addr:false b);
            ])
  | Expr.Binop (_, a, b) ->
      union
        [
          shift_any (src_of ~as_addr:false a);
          shift_any (src_of ~as_addr:false b);
        ]
  | Expr.Unop (_, a) -> shift_any (src_of ~as_addr:false a)
  | Expr.Cast (_, a) -> src_of ~as_addr a

(* Address position: something must be addressed; an expression with no
   pointer source dereferences unknowable storage. *)
let addr_src e = match src_of ~as_addr:true e with Some s -> s | None -> Sunknown

let facts_of_func (prog : Prog.t) (func : Func.t) : fun_facts =
  let fx =
    {
      constraints = [];
      calls = [];
      waddrs = [];
      raddrs = [];
      gmods = Objset.empty;
      grefs = Objset.empty;
    }
  in
  let add c = fx.constraints <- c :: fx.constraints in
  let var_ty v =
    match Prog.find_var prog (Some func) v with
    | Some var -> var.Var.ty
    | None -> Ty.Int
  in
  let is_global v =
    match Prog.find_var prog (Some func) v with
    | Some var -> Var.is_global var && not (Var.is_memory_object var)
    | None -> false
  in
  (* reads performed by evaluating [e]: loads and global-scalar reads *)
  let record_reads e =
    Expr.iter
      (fun x ->
        match x.Expr.desc with
        | Expr.Load p -> fx.raddrs <- p :: fx.raddrs
        | Expr.Var v when is_global v -> fx.grefs <- Objset.add (Obj v) fx.grefs
        | _ -> ())
      e
  in
  let bind_value slot ~ptr e =
    match src_of ~as_addr:ptr e with Some s -> add (Into (slot, s)) | None -> ()
  in
  let store_value addr e =
    let elt = if Ty.is_pointer addr.Expr.ty then Ty.pointee addr.Expr.ty else Ty.Int in
    match src_of ~as_addr:(Ty.is_pointer elt) e with
    | Some s -> add (Store (addr_src addr, s))
    | None -> ()
  in
  let do_call dst target args =
    (match dst with
    | Some (Stmt.Lvar v) ->
        if is_global v then fx.gmods <- Objset.add (Obj v) fx.gmods
    | Some (Stmt.Lmem a) ->
        record_reads a;
        fx.waddrs <- a :: fx.waddrs
    | None -> ());
    List.iter record_reads args;
    let ret_into s =
      match dst with
      | Some (Stmt.Lvar v) -> add (Into (Svar v, s))
      | Some (Stmt.Lmem a) -> add (Store (addr_src a, s))
      | None -> ()
    in
    let unknown () =
      (* arguments escape to code we cannot see; the result may be any
         escaped pointer or fresh unknown storage *)
      List.iter
        (fun arg ->
          match src_of ~as_addr:false arg with
          | Some s -> add (Into (Smem Unknown, s))
          | None -> ())
        args;
      ret_into (Sload Sunknown);
      fx.calls <- Unknown_call args :: fx.calls
    in
    match target with
    | Stmt.Indirect _ -> unknown ()
    | Stmt.Direct name -> (
        match Prog.find_func prog name with
        | Some callee when List.length callee.Func.params = List.length args ->
            List.iter2
              (fun pid arg ->
                let pty =
                  match Func.find_var callee pid with
                  | Some v -> v.Var.ty
                  | None -> Ty.Int
                in
                bind_value (Svar pid) ~ptr:(Ty.is_pointer pty) arg)
              callee.Func.params args;
            ret_into (Scopy (Sret name));
            fx.calls <- Known_call name :: fx.calls
        | Some _ -> unknown ()
        | None ->
            if name = "printf" then (
              (* interpreter/simulator builtin: reads its arguments
                 (through pointers for %s), writes nothing, does io *)
              fx.calls <- Builtin_io args :: fx.calls)
            else unknown ())
  in
  let rec walk stmts = List.iter walk_stmt stmts
  and walk_stmt (s : Stmt.t) =
    match s.Stmt.desc with
    | Stmt.Assign (Stmt.Lvar v, e) ->
        record_reads e;
        if is_global v then fx.gmods <- Objset.add (Obj v) fx.gmods;
        bind_value (Svar v) ~ptr:(Ty.is_pointer (var_ty v)) e
    | Stmt.Assign (Stmt.Lmem a, e) ->
        record_reads a;
        record_reads e;
        fx.waddrs <- a :: fx.waddrs;
        store_value a e
    | Stmt.Call (dst, target, args) -> do_call dst target args
    | Stmt.If (c, t, e) ->
        record_reads c;
        walk t;
        walk e
    | Stmt.While (_, c, b) ->
        record_reads c;
        walk b
    | Stmt.Do_loop d ->
        record_reads d.Stmt.lo;
        record_reads d.Stmt.hi;
        record_reads d.Stmt.step;
        (* the index walks from lo in steps; treat as lo shifted by Any *)
        (match src_of ~as_addr:false d.Stmt.lo with
        | Some s -> add (Into (Svar d.Stmt.index, Sshift (s, Any)))
        | None -> ());
        walk d.Stmt.body
    | Stmt.Return (Some e) ->
        record_reads e;
        bind_value (Sret func.Func.name) ~ptr:(Ty.is_pointer func.Func.ret_ty) e
    | Stmt.Return None | Stmt.Goto _ | Stmt.Label _ | Stmt.Nop -> ()
    | Stmt.Vector v ->
        record_reads v.Stmt.vdst.Stmt.base;
        fx.waddrs <- v.Stmt.vdst.Stmt.base :: fx.waddrs;
        let rec vexpr = function
          | Stmt.Vsec sec ->
              record_reads sec.Stmt.base;
              fx.raddrs <- sec.Stmt.base :: fx.raddrs
          | Stmt.Vscalar e | Stmt.Viota (e, _) -> record_reads e
          | Stmt.Vcast (_, v) | Stmt.Vun (_, v) -> vexpr v
          | Stmt.Vbin (_, a, b) ->
              vexpr a;
              vexpr b
          | Stmt.Vtmp _ -> ()
        in
        vexpr v.Stmt.vsrc;
        if Ty.is_pointer v.Stmt.velt then
          (* vectors of pointers never arise from our vectorizer; stay
             sound if they ever do *)
          add (Store (addr_src v.Stmt.vdst.Stmt.base, Sunknown))
    | Stmt.Vdef vd ->
        let rec vexpr = function
          | Stmt.Vsec sec ->
              record_reads sec.Stmt.base;
              fx.raddrs <- sec.Stmt.base :: fx.raddrs
          | Stmt.Vscalar e | Stmt.Viota (e, _) -> record_reads e
          | Stmt.Vcast (_, v) | Stmt.Vun (_, v) -> vexpr v
          | Stmt.Vbin (_, a, b) ->
              vexpr a;
              vexpr b
          | Stmt.Vtmp _ -> ()
        in
        vexpr vd.Stmt.vval
  in
  walk func.Func.body;
  fx

let global_constraints (prog : Prog.t) : constr list =
  let cs = ref [] in
  let add c = cs := c :: !cs in
  List.iter
    (fun (g : Prog.global) ->
      let v = g.Prog.gvar in
      (match v.Var.storage with
      | Var.Extern ->
          (* defined elsewhere: unknown code knows this object — its
             address escapes and its contents are arbitrary *)
          add (Into (Smem Unknown, Sbase v.Var.id));
          if Var.is_memory_object v then
            add (Store (Sbase v.Var.id, Sload Sunknown))
          else if Ty.is_pointer v.Var.ty then
            add (Into (Svar v.Var.id, Sload Sunknown))
      | _ -> ());
      match g.Prog.ginit with
      | Prog.Init_none | Prog.Init_string _ -> ()
      | Prog.Init_scalar e ->
          if Ty.is_pointer v.Var.ty then (
            match src_of ~as_addr:true e with
            | Some s -> add (Into (Svar v.Var.id, s))
            | None -> ())
      | Prog.Init_array es ->
          let elt =
            match v.Var.ty with Ty.Array (t, _) -> t | t -> t
          in
          if Ty.is_pointer elt then
            List.iter
              (fun e ->
                match src_of ~as_addr:true e with
                | Some s -> add (Store (Sbase v.Var.id, s))
                | None -> ())
              es)
    (Prog.globals_list prog);
  !cs

(* Pointer parameters of procedures with no visible caller are bound by
   an unknown caller; with any indirect call in the program, every
   procedure may be so bound. *)
let entry_constraints (prog : Prog.t) ~(has_indirect : bool) : constr list =
  let called = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun s ->
          match s.Stmt.desc with
          | Stmt.Call (_, Stmt.Direct name, _) -> Hashtbl.replace called name ()
          | _ -> ())
        (Func.all_stmts f))
    prog.Prog.funcs;
  List.concat_map
    (fun (f : Func.t) ->
      if has_indirect || not (Hashtbl.mem called f.Func.name) then
        List.filter_map
          (fun pid ->
            match Func.find_var f pid with
            | Some v when Ty.is_pointer v.Var.ty ->
                Some (Into (Svar pid, Sunknown))
            | _ -> None)
          f.Func.params
      else [])
    prog.Prog.funcs

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)

let scalar_slot vartab (o : obj) : slot =
  (* a scalar variable and its storage are the same cell; arrays and
     structs get a summarized contents cell *)
  match o with
  | Obj v -> (
      match Hashtbl.find_opt vartab v with
      | Some var when not (Var.is_memory_object var) -> Svar v
      | _ -> Smem o)
  | o -> Smem o

(* Naive reference solver: re-evaluate every constraint (plus the escape
   closure) until a full round changes nothing.  Kept as the oracle the
   worklist solver is differentially tested against. *)
let solve_naive vartab (constraints : constr list) =
  let pts : (slot, (obj, off) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let changed = ref true in
  let cell slot =
    match Hashtbl.find_opt pts slot with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add pts slot h;
        h
  in
  let add slot (o, f) =
    let h = cell slot in
    match Hashtbl.find_opt h o with
    | None ->
        Hashtbl.replace h o f;
        changed := true
    | Some f0 ->
        let j = join_off f0 f in
        if j <> f0 then (
          Hashtbl.replace h o j;
          changed := true)
  in
  let contents slot =
    match Hashtbl.find_opt pts slot with
    | None -> []
    | Some h -> Hashtbl.fold (fun o f acc -> (o, f) :: acc) h []
  in
  let rec eval = function
    | Sbase v -> [ (Obj v, Known 0) ]
    | Slit k -> [ (Lit, Known k) ]
    | Sunknown -> [ (Unknown, Any) ]
    | Scopy s -> contents s
    | Sshift (s, Known k) ->
        List.map
          (fun (o, f) ->
            (o, match f with Known x -> Known (x + k) | Any -> Any))
          (eval s)
    | Sshift (s, Any) -> List.map (fun (o, _) -> (o, Any)) (eval s)
    | Sunion xs -> List.concat_map eval xs
    | Sload a ->
        List.concat_map
          (fun (o, _) ->
            let back = if o = Unknown then [ (Unknown, Any) ] else [] in
            back @ contents (scalar_slot vartab o))
          (eval a)
  in
  while !changed do
    changed := false;
    List.iter
      (function
        | Into (slot, s) -> List.iter (add slot) (eval s)
        | Store (a, v) ->
            let vals = eval v in
            List.iter
              (fun (o, _) ->
                let tgt =
                  if o = Unknown then Smem Unknown else scalar_slot vartab o
                in
                List.iter (add tgt) vals)
              (eval a))
      constraints;
    (* escape closure: unknown code can overwrite any escaped object
       with any escaped pointer (or fresh unknown storage), and can read
       pointers back out of escaped objects *)
    let esc = contents (Smem Unknown) in
    List.iter
      (fun (o, _) ->
        if o <> Unknown then begin
          let slot = scalar_slot vartab o in
          add slot (Unknown, Any);
          List.iter (add slot) esc;
          List.iter (add (Smem Unknown)) (contents slot)
        end)
      esc
  done;
  pts

(* Worklist solver: same least fixpoint as {!solve_naive}, reached by
   re-evaluating only the constraints whose inputs changed.

   Every [contents] read during the evaluation of a constraint
   subscribes that constraint to the slot it read (the read set is
   dynamic — [Sload] chases the current points-to graph — so
   subscriptions accumulate across re-evaluations).  When a slot gains
   an object or widens an offset, its subscribers are re-queued.

   The escape closure is expressed as ordinary constraints materialized
   on demand: the first time object [o] appears in the escaped set
   (the contents of [Smem Unknown]) we append

     slot(o) ⊇ {Unknown}        — unknown code may store fresh storage
     slot(o) ⊇ contents(⊥)      — … or any other escaped pointer
     ⊥ ⊇ contents(slot(o))      — … and may read pointers back out

   which is exactly one unrolling of the naive loop's closure step, made
   permanent and incremental. *)
let solve_worklist vartab (constraints : constr list) =
  let pts : (slot, (obj, off) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let cons : (int, constr) Hashtbl.t = Hashtbl.create 256 in
  let ncons = ref 0 in
  let queue = Queue.create () in
  let queued : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let subs : (slot, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let sub_set : (slot * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let enqueue i =
    if not (Hashtbl.mem queued i) then begin
      Hashtbl.replace queued i ();
      Queue.add i queue
    end
  in
  let push_constr c =
    let i = !ncons in
    incr ncons;
    Hashtbl.replace cons i c;
    enqueue i
  in
  (* the constraint currently being evaluated, for read subscriptions *)
  let current = ref (-1) in
  let subscribe slot =
    let i = !current in
    if i >= 0 && not (Hashtbl.mem sub_set (slot, i)) then begin
      Hashtbl.replace sub_set (slot, i) ();
      let l =
        match Hashtbl.find_opt subs slot with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace subs slot l;
            l
      in
      l := i :: !l
    end
  in
  let notify slot =
    match Hashtbl.find_opt subs slot with
    | None -> ()
    | Some l -> List.iter enqueue !l
  in
  let cell slot =
    match Hashtbl.find_opt pts slot with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add pts slot h;
        h
  in
  let escaped_done : (obj, unit) Hashtbl.t = Hashtbl.create 16 in
  let escape_obj o =
    if o <> Unknown && not (Hashtbl.mem escaped_done o) then begin
      Hashtbl.replace escaped_done o ();
      let slot = scalar_slot vartab o in
      push_constr (Into (slot, Sunknown));
      push_constr (Into (slot, Scopy (Smem Unknown)));
      push_constr (Into (Smem Unknown, Scopy slot))
    end
  in
  let add slot (o, f) =
    let h = cell slot in
    let changed =
      match Hashtbl.find_opt h o with
      | None ->
          Hashtbl.replace h o f;
          true
      | Some f0 ->
          let j = join_off f0 f in
          if j <> f0 then (
            Hashtbl.replace h o j;
            true)
          else false
    in
    if changed then begin
      notify slot;
      if slot = Smem Unknown then escape_obj o
    end
  in
  let contents slot =
    subscribe slot;
    match Hashtbl.find_opt pts slot with
    | None -> []
    | Some h -> Hashtbl.fold (fun o f acc -> (o, f) :: acc) h []
  in
  let rec eval = function
    | Sbase v -> [ (Obj v, Known 0) ]
    | Slit k -> [ (Lit, Known k) ]
    | Sunknown -> [ (Unknown, Any) ]
    | Scopy s -> contents s
    | Sshift (s, Known k) ->
        List.map
          (fun (o, f) ->
            (o, match f with Known x -> Known (x + k) | Any -> Any))
          (eval s)
    | Sshift (s, Any) -> List.map (fun (o, _) -> (o, Any)) (eval s)
    | Sunion xs -> List.concat_map eval xs
    | Sload a ->
        List.concat_map
          (fun (o, _) ->
            let back = if o = Unknown then [ (Unknown, Any) ] else [] in
            back @ contents (scalar_slot vartab o))
          (eval a)
  in
  List.iter push_constr constraints;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    Hashtbl.remove queued i;
    current := i;
    (match Hashtbl.find cons i with
    | Into (slot, s) -> List.iter (add slot) (eval s)
    | Store (a, v) ->
        let vals = eval v in
        List.iter
          (fun (o, _) ->
            let tgt =
              if o = Unknown then Smem Unknown else scalar_slot vartab o
            in
            List.iter (add tgt) vals)
          (eval a));
    current := -1
  done;
  pts

type solver = [ `Worklist | `Naive ]

let solve ?(solver = `Worklist) vartab constraints =
  match solver with
  | `Worklist -> solve_worklist vartab constraints
  | `Naive -> solve_naive vartab constraints

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

(* Contents of a slot at query time.  Variables the analysis never saw
   are temporaries of later passes: scalars carry no addresses unless
   pointer-typed (see the header's provenance assumptions). *)
let query_contents t slot =
  match slot with
  | Svar v when not (Hashtbl.mem t.vartab v) -> (
      match Prog.find_var t.prog None v with
      | Some var
        when (not (Ty.is_pointer var.Var.ty)) && not (Var.is_memory_object var)
        ->
          []
      | _ -> [ (Unknown, Any) ])
  | slot -> (
      match Hashtbl.find_opt t.pts slot with
      | None -> []
      | Some h -> Hashtbl.fold (fun o f acc -> (o, f) :: acc) h [])

let rec query_eval t = function
  | Sbase v -> [ (Obj v, Known 0) ]
  | Slit k -> [ (Lit, Known k) ]
  | Sunknown -> [ (Unknown, Any) ]
  | Scopy s -> query_contents t s
  | Sshift (s, Known k) ->
      List.map
        (fun (o, f) -> (o, match f with Known x -> Known (x + k) | Any -> Any))
        (query_eval t s)
  | Sshift (s, Any) -> List.map (fun (o, _) -> (o, Any)) (query_eval t s)
  | Sunion xs -> List.concat_map (query_eval t) xs
  | Sload a ->
      List.concat_map
        (fun (o, _) ->
          let back = if o = Unknown then [ (Unknown, Any) ] else [] in
          back @ query_contents t (scalar_slot t.vartab o))
        (query_eval t a)

let collapse pairs =
  List.fold_left
    (fun acc (o, f) ->
      match List.assoc_opt o acc with
      | None -> (o, f) :: acc
      | Some f0 ->
          (o, join_off f0 f) :: List.remove_assoc o acc)
    [] pairs
  |> List.sort compare

(* Every (object, offset) an address expression may denote. *)
let objects_of t (e : Expr.t) : (obj * off) list =
  collapse (query_eval t (addr_src e))

let points_to t (v : int) : (obj * off) list =
  collapse (query_contents t (Svar v))

let objset pairs = Objset.of_list (List.map fst pairs)

let verdict t (e1 : Expr.t) (e2 : Expr.t) :
    [ `No_alias | `Must_alias of int ] option =
  let m1 = objects_of t e1 and m2 = objects_of t e2 in
  let s1 = objset m1 and s2 = objset m2 in
  let unknown s = Objset.mem Unknown s in
  (* an address with no provenance at all cannot legally be dereferenced
     against a live object *)
  if m1 = [] || m2 = [] then Some `No_alias
  else if
    (not (unknown s1)) && (not (unknown s2)) && Objset.disjoint s1 s2
  then Some `No_alias
  else
    match m1, m2 with
    | [ (o1, Known k1) ], [ (o2, Known k2) ] when o1 = o2 && o1 <> Unknown ->
        Some (`Must_alias (k2 - k1))
    | _ -> None

let disjoint t e1 e2 = verdict t e1 e2 = Some `No_alias

(* ------------------------------------------------------------------ *)
(* Mod/ref summaries                                                   *)

let reach t (s : Objset.t) : Objset.t =
  let rec go frontier acc =
    if Objset.is_empty frontier then acc
    else
      let next =
        Objset.fold
          (fun o acc ->
            List.fold_left
              (fun acc (o', _) -> Objset.add o' acc)
              acc
              (query_contents t (scalar_slot t.vartab o)))
          frontier Objset.empty
      in
      let fresh = Objset.diff next acc in
      go fresh (Objset.union acc fresh)
  in
  go s s

let escaped_set t = objset (query_contents t (Smem Unknown))

(* Objects private to one activation of [f]: its own non-static,
   non-escaping locals.  Writes to them can never race across calls, so
   they are pruned from the exported summary. *)
let private_of (f : Func.t) ~(escaped : Objset.t) (s : Objset.t) : Objset.t =
  Objset.filter
    (fun o ->
      match o with
      | Obj v -> (
          match Func.find_var f v with
          | Some var -> (
              (not (Objset.mem o escaped))
              &&
              match var.Var.storage with
              | Var.Auto | Var.Param -> true
              | _ -> false)
          | None -> false)
      | _ -> false)
    s

let compute_summaries t (facts : (string * Func.t * fun_facts) list) =
  let escaped = escaped_set t in
  let own = Hashtbl.create 16 in
  List.iter
    (fun (name, _f, fx) ->
      let addr_objs es =
        List.fold_left
          (fun acc e -> Objset.union acc (objset (objects_of t e)))
          Objset.empty es
      in
      let mods = Objset.union fx.gmods (addr_objs fx.waddrs) in
      let refs = Objset.union fx.grefs (addr_objs fx.raddrs) in
      let arg_reach args =
        List.fold_left
          (fun acc arg ->
            match src_of ~as_addr:false arg with
            | None -> acc
            | Some s -> Objset.union acc (reach t (objset (query_eval t s))))
          Objset.empty args
      in
      let mods, refs, io =
        List.fold_left
          (fun (m, r, io) call ->
            match call with
            | Known_call _ -> (m, r, io)
            | Builtin_io args -> (m, Objset.union r (arg_reach args), true)
            | Unknown_call args ->
                let touched = Objset.add Unknown (arg_reach args) in
                (Objset.union m touched, Objset.union r touched, true))
          (mods, refs, false) fx.calls
      in
      Hashtbl.replace own name (mods, refs, io))
    facts;
  (* fold callee effects to a call-graph fixpoint, pruning each
     procedure's activation-private objects as its summary is exported *)
  let current = Hashtbl.create 16 in
  List.iter
    (fun (name, _, _) ->
      Hashtbl.replace current name
        { mods = Objset.empty; refs = Objset.empty; io = false })
    facts;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (name, f, fx) ->
        let m0, r0, io0 = Hashtbl.find own name in
        let mods, refs, io =
          List.fold_left
            (fun (m, r, io) call ->
              match call with
              | Known_call g -> (
                  match Hashtbl.find_opt current g with
                  | Some sg ->
                      ( Objset.union m sg.mods,
                        Objset.union r sg.refs,
                        io || sg.io )
                  | None -> (m, r, io))
              | _ -> (m, r, io))
            (m0, r0, io0) fx.calls
        in
        let priv = private_of f ~escaped (Objset.union mods refs) in
        let next =
          { mods = Objset.diff mods priv; refs = Objset.diff refs priv; io }
        in
        let prev = Hashtbl.find current name in
        if
          (not (Objset.equal prev.mods next.mods))
          || (not (Objset.equal prev.refs next.refs))
          || prev.io <> next.io
        then (
          Hashtbl.replace current name next;
          changed := true))
      facts
  done;
  Hashtbl.iter (Hashtbl.replace t.summaries) current

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let analyze ?(solver = `Worklist) (prog : Prog.t) : t =
  let vartab = Hashtbl.create 64 in
  List.iter
    (fun (g : Prog.global) ->
      Hashtbl.replace vartab g.Prog.gvar.Var.id g.Prog.gvar)
    (Prog.globals_list prog);
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.iter (fun id v -> Hashtbl.replace vartab id v) f.Func.vars)
    prog.Prog.funcs;
  let has_indirect =
    List.exists
      (fun (f : Func.t) ->
        List.exists
          (fun s ->
            match s.Stmt.desc with
            | Stmt.Call (_, Stmt.Indirect _, _) -> true
            | _ -> false)
          (Func.all_stmts f))
      prog.Prog.funcs
  in
  let facts =
    List.map (fun f -> (f.Func.name, f, facts_of_func prog f)) prog.Prog.funcs
  in
  let constraints =
    global_constraints prog
    @ entry_constraints prog ~has_indirect
    @ List.concat_map (fun (_, _, fx) -> fx.constraints) facts
  in
  let pts = solve ~solver vartab constraints in
  let t = { prog; vartab; pts; summaries = Hashtbl.create 16 } in
  compute_summaries t facts;
  t

let summary t name = Hashtbl.find_opt t.summaries name

(* A call whose summary shows memory effects (or that we cannot bound)
   starves the dependence test of facts; inlining it first is the §7
   motivation for inline expansion. *)
let blocks_vectorization t name =
  match summary t name with
  | None -> true
  | Some s -> s.io || not (Objset.is_empty s.mods)

let obj_name t = function
  | Lit -> "<literal>"
  | Unknown -> "<unknown>"
  | Obj v -> (
      match Hashtbl.find_opt t.vartab v with
      | Some var -> var.Var.name
      | None -> Printf.sprintf "<var %d>" v)

let pp_objects t ppf (e : Expr.t) =
  let pairs = objects_of t e in
  if pairs = [] then Format.fprintf ppf "{}"
  else
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (o, f) ->
           match f with
           | Known k -> Format.fprintf ppf "%s+%d" (obj_name t o) k
           | Any -> Format.fprintf ppf "%s+?" (obj_name t o)))
      pairs

let pp_summary t ppf name =
  match summary t name with
  | None -> Format.fprintf ppf "<no summary>"
  | Some s ->
      let names set =
        Objset.elements set |> List.map (obj_name t) |> String.concat ", "
      in
      Format.fprintf ppf "mods={%s} refs={%s}%s" (names s.mods) (names s.refs)
        (if s.io then " io" else "")
