(** Whole-program points-to and mod/ref analysis (Andersen-style,
    flow-insensitive, field-offset-aware).  Proves the pointer
    disjointness the paper's escape hatches (§1: the per-loop pragma and
    the Fortran-parameter-semantics option) make the user assert, and
    bounds the memory effects of calls for the race checker and the
    inliner's site ranking (§7). *)

open Vpc_il

(** Abstract storage: one object per named program variable, one shared
    object for all integer-literal addresses (device registers), and
    [Unknown] for storage the program never names. *)
type obj = Obj of int | Lit | Unknown

module Objset : Set.S with type elt = obj

(** Constant-offset lattice over an object's base address. *)
type off = Known of int | Any

(** Per-procedure effects, callees folded in to a call-graph fixpoint.
    Objects private to one activation (non-escaping locals) are pruned.
    [io] marks externally visible effects — printf's output ordering,
    calls to code outside the program. *)
type summary = { mods : Objset.t; refs : Objset.t; io : bool }

type t

(** Constraint solver choice.  [`Worklist] (the default) re-evaluates
    only constraints whose inputs changed; [`Naive] re-runs every
    constraint each round.  Both compute the same least fixpoint — the
    naive solver survives as the differential-testing oracle. *)
type solver = [ `Worklist | `Naive ]

(** Analyze the whole program: constraint generation over every
    procedure (including catalog-imported ones already in [Prog.t]),
    inclusion solving to a fixpoint, then mod/ref summaries. *)
val analyze : ?solver:solver -> Prog.t -> t

(** Every (object, offset) an address expression may denote.  Total:
    unknown provenance shows up as [Unknown], never an exception. *)
val objects_of : t -> Expr.t -> (obj * off) list

(** What pointer variable [v] may point at. *)
val points_to : t -> int -> (obj * off) list

(** [disjoint t a1 a2]: the two addresses can never overlap storage. *)
val disjoint : t -> Expr.t -> Expr.t -> bool

(** Refinement for {!Vpc_dependence.Alias.bases}: [`No_alias] when the
    address expressions always land in disjoint objects, [`Must_alias d]
    when both always denote the same object at constant offsets [d]
    bytes apart, [None] when the graph cannot decide. *)
val verdict : t -> Expr.t -> Expr.t -> [ `No_alias | `Must_alias of int ] option

val summary : t -> string -> summary option

(** Heuristic for inliner site ranking: the callee's effects (or our
    inability to bound them) starve the dependence test of facts, so
    inlining the call may unlock vectorization of an enclosing loop. *)
val blocks_vectorization : t -> string -> bool

val obj_name : t -> obj -> string
val pp_objects : t -> Format.formatter -> Expr.t -> unit
val pp_summary : t -> Format.formatter -> string -> unit
