(** Inline expansion of procedure calls (paper §7).  Call sites are
    replaced by the callee body with fresh variables ([in_]-prefixed
    parameter copies, the §9 shape) and labels; returns become a store to
    a result temporary and a goto to a fresh exit label.  Functions are
    expanded callees-first ("order is very important"); recursion is cut
    by refusing cycles and bounding depth. *)

open Vpc_il

type options = {
  max_callee_stmts : int;      (** size threshold for automatic inlining *)
  max_depth : int;             (** expansion-chain bound *)
  only : string list option;   (** when set, inline only these callees *)
  profile : Vpc_profile.Data.t option;
      (** measured call counts and attributed cycles: sites are ranked
          hottest-first, sites the run proved cold are kept as calls,
          and growth stops at [max_total_growth].  Sites without data
          follow the static policy, so an empty profile expands exactly
          the static set. *)
  pointsto : Vpc_pointsto.Pointsto.t option;
      (** mod/ref summaries: an in-loop site whose callee summary blocks
          vectorization of the enclosing loop (unknown effects, writes
          through pointers, I/O) is the §7 motivation for inlining and is
          ranked ahead of every other site. *)
  max_total_growth : int;  (** per-caller budget, applies with a profile *)
  report : (string -> unit) option;  (** decision explanations *)
  site_tune : (Vpc_support.Loc.t -> bool option) option;
      (** autotuned per-call-site override, keyed by the call's location:
          [Some false] keeps the call, [Some true] inlines past the size
          threshold and the profile plan (the recursion cutoff still
          applies); [None] follows the static/profile policy *)
}

val default_options : options

type stats = {
  mutable calls_inlined : int;
  mutable calls_skipped_recursive : int;
  mutable calls_skipped_size : int;
  mutable calls_skipped_unknown : int;  (** library / no body available *)
  mutable calls_skipped_cold : int;     (** measured count = 0 *)
  mutable calls_skipped_budget : int;   (** growth budget exhausted *)
  mutable calls_ranked_blocking : int;
      (** in-loop sites whose mod/ref summary blocks vectorization *)
}

val new_stats : unit -> stats

(** Expand one call site (the callee should already be fully expanded). *)
val expand_call :
  Prog.t -> Func.t -> Func.t -> Stmt.lvalue option -> Expr.t list ->
  Stmt.t list

(** Expand calls across the whole program, callees before callers. *)
val expand : ?options:options -> ?stats:stats -> Prog.t -> unit
