(* Inline expansion of procedure calls (paper §7).

   Call sites are replaced by the callee body with fresh variables and
   labels; arguments bind to [in_]-prefixed parameter copies, exactly the
   §9 shape:

       in_x = &a; in_y = &b; ... if (in_n <= 0) goto lb_1; ... lb_1:;

   Returns become a store to a result temporary and a goto to a fresh exit
   label.  Statics were already promoted to globals by the front end, so
   their single storage survives inlining.  Functions are processed
   callees-first ("order is very important"), and recursion — which "can
   lead to infinite inlining if care is not taken" — is cut by refusing
   cycles and bounding depth. *)

open Vpc_il
module Profile = Vpc_profile
module Pointsto = Vpc_pointsto.Pointsto

type options = {
  max_callee_stmts : int;  (* size threshold for automatic inlining *)
  max_depth : int;
  only : string list option;  (* when set, inline only these callees *)
  profile : Profile.Data.t option;
      (* measured call counts/cycles: rank sites, skip cold ones *)
  pointsto : Pointsto.t option;
      (* mod/ref summaries: a call inside a loop whose summary starves
         the dependence test is the §7 motivation for inlining — rank
         such sites first *)
  max_total_growth : int;
      (* per-caller statement budget, enforced only with a profile *)
  report : (string -> unit) option;
  site_tune : (Vpc_support.Loc.t -> bool option) option;
      (* autotuned per-call-site override, keyed by the call's location:
         [Some false] keeps the call, [Some true] inlines past the size
         threshold and the profile plan (the recursion cutoff still
         applies); [None] follows the static/profile policy *)
}

let default_options =
  {
    max_callee_stmts = 200;
    max_depth = 8;
    only = None;
    profile = None;
    pointsto = None;
    max_total_growth = 4000;
    report = None;
    site_tune = None;
  }

type stats = {
  mutable calls_inlined : int;
  mutable calls_skipped_recursive : int;
  mutable calls_skipped_size : int;
  mutable calls_skipped_unknown : int;  (* no body available (library) *)
  mutable calls_skipped_cold : int;     (* measured count = 0 *)
  mutable calls_skipped_budget : int;   (* growth budget exhausted *)
  mutable calls_ranked_blocking : int;
      (* in-loop sites whose mod/ref summary blocks vectorization *)
}

let new_stats () =
  {
    calls_inlined = 0;
    calls_skipped_recursive = 0;
    calls_skipped_size = 0;
    calls_skipped_unknown = 0;
    calls_skipped_cold = 0;
    calls_skipped_budget = 0;
    calls_ranked_blocking = 0;
  }

let func_size (f : Func.t) = List.length (Func.all_stmts f)

(* Expand one call site within [caller]; returns the replacement
   statements. *)
let expand_call (prog : Prog.t) (caller : Func.t) (callee : Func.t)
    (dst : Stmt.lvalue option) (args : Expr.t list) : Stmt.t list =
  let b = Builder.ctx prog caller in
  let var_map = Hashtbl.create 16 in
  (* Fresh copies of every callee-local variable, cloned in ascending
     callee-id order and renamed with a caller-local index (the size of
     the caller's variable table, which grows by one per clone): both
     the clone order and the printed names are then functions of the
     two functions alone, never of how many variables the rest of the
     program happened to allocate first. *)
  List.iter
    (fun (v : Var.t) ->
      let old_id = v.Var.id in
      let id = Prog.fresh_var_id prog in
      let name =
        if List.mem old_id callee.Func.params then "in_" ^ v.Var.name
        else
          Printf.sprintf "%s_i%d" v.Var.name
            (Hashtbl.length caller.Func.vars)
      in
      Hashtbl.replace var_map old_id id;
      Func.add_var caller
        { v with Var.id; name; storage = Var.Auto; is_temp = true })
    (Func.locals callee);
  (* fresh labels *)
  let label_map = Hashtbl.create 4 in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Label l ->
          if not (Hashtbl.mem label_map l) then
            Hashtbl.replace label_map l (Func.fresh_label caller "in")
      | _ -> ())
    callee.Func.body;
  let exit_label = Func.fresh_label caller "lb" in
  let ret_var =
    if callee.Func.ret_ty = Ty.Void then None
    else Some (Builder.fresh_temp b ~name:"ret" callee.Func.ret_ty)
  in
  let renaming =
    { Clone.var_map; label_map; stmt_gen = caller.Func.stmt_gen }
  in
  (* parameter binding *)
  let bind_params =
    List.map2
      (fun param_id arg ->
        let v = Func.var_exn callee param_id in
        let new_id = Hashtbl.find var_map param_id in
        Builder.assign_id b new_id (Expr.cast v.Var.ty arg))
      callee.Func.params args
  in
  (* clone the body, rewriting returns *)
  let body = Clone.clone_stmts renaming callee.Func.body in
  let rewrite_return (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.Return (Some e) -> (
        match ret_var with
        | Some rv ->
            [
              Builder.assign b rv e;
              Builder.goto b exit_label;
            ]
        | None -> [ Builder.goto b exit_label ])
    | Stmt.Return None -> [ Builder.goto b exit_label ]
    | _ -> [ s ]
  in
  let body = Stmt.map_list rewrite_return body in
  let epilogue =
    Builder.label b exit_label
    ::
    (match dst, ret_var with
    | Some lv, Some rv ->
        [ Builder.stmt b (Stmt.Assign (lv, Expr.var rv)) ]
    | _ -> [])
  in
  bind_params @ body @ epilogue

(* Site selection for one caller.  The §7 policy inlines every eligible
   site leaf-first; with measured data we instead rank sites by
   attributed cycles (call count × mean callee time), skip sites the run
   proved cold, and stop when the growth budget is spent.  Sites the
   profile has no data for keep the static policy (rank 0, source
   order), so an empty profile selects exactly the static set.

   Mod/ref summaries add a second signal: a call inside a loop whose
   callee writes memory (or does io, or has no summary) starves the
   dependence test of facts, so vectorizing the enclosing loop needs the
   body spelled out — those sites are ranked ahead of everything else.
   Without a profile the ranking changes only reporting order (the
   budget is not enforced and expansion replaces calls in body order),
   keeping points-to-only compilation byte-identical to the §7 policy. *)
type site_verdict = Inline_site | Cold_site | Budget_site

let plan_sites (opts : options) stats (prog : Prog.t) (caller : Func.t)
    ~eligible : (int, site_verdict) Hashtbl.t =
  let sites = ref [] in
  let record ~in_loop (s : Stmt.t) name args =
    if eligible name then
      match Prog.find_func prog name with
      | Some callee
        when func_size callee <= opts.max_callee_stmts
             && List.length args = List.length callee.Func.params ->
          sites := (s, callee, in_loop) :: !sites
      | Some _ | None -> ()
  in
  let rec walk ~in_loop stmts =
    List.iter
      (fun (s : Stmt.t) ->
        match s.Stmt.desc with
        | Stmt.Call (_, Stmt.Direct name, args) -> record ~in_loop s name args
        | Stmt.If (_, t, e) ->
            walk ~in_loop t;
            walk ~in_loop e
        | Stmt.While (_, _, b) -> walk ~in_loop:true b
        | Stmt.Do_loop d -> walk ~in_loop:true d.Stmt.body
        | _ -> ())
      stmts
  in
  walk ~in_loop:false caller.Func.body;
  let sites = List.rev !sites in
  let measure (s : Stmt.t) =
    match opts.profile with
    | None -> None
    | Some profile -> (
        match Profile.Key.of_loc s.Stmt.loc with
        | None -> None
        | Some k ->
            Option.map (fun c -> (k, c)) (Profile.Data.find_call profile k))
  in
  let blocking (callee : Func.t) ~in_loop =
    in_loop
    &&
    match opts.pointsto with
    | Some pt -> Pointsto.blocks_vectorization pt callee.Func.name
    | None -> false
  in
  (* vectorization-blocking in-loop sites first, then hottest first; the
     sort is stable, so unranked sites keep their source order *)
  let ranked =
    List.stable_sort
      (fun (a, ca, la) (b, cb, lb) ->
        let block s = if s then 1 else 0 in
        let c =
          Int.compare (block (blocking cb ~in_loop:lb))
            (block (blocking ca ~in_loop:la))
        in
        if c <> 0 then c
        else
          let rank s =
            match measure s with
            | Some (_, c) -> c.Profile.Data.cycles
            | None -> 0
          in
          Int.compare (rank b) (rank a))
      sites
  in
  let verdicts = Hashtbl.create 16 in
  (* the growth budget is a profile-guided policy; without measurements
     the §7 policy has no budget and selects every site *)
  let budget =
    ref (if opts.profile = None then max_int else opts.max_total_growth)
  in
  let say fmt = Printf.ksprintf (fun m ->
      match opts.report with Some r -> r m | None -> ()) fmt
  in
  List.iter
    (fun ((s : Stmt.t), callee, in_loop) ->
      if blocking callee ~in_loop then begin
        stats.calls_ranked_blocking <- stats.calls_ranked_blocking + 1;
        say
          "call %s -> %s: mod/ref summary blocks vectorization of the \
           enclosing loop -> inline first"
          (Vpc_support.Loc.to_string s.Stmt.loc)
          callee.Func.name
      end;
      match measure s with
      | Some (k, c) when c.Profile.Data.count = 0 ->
          stats.calls_skipped_cold <- stats.calls_skipped_cold + 1;
          say "call %s -> %s: measured cold -> keep the call"
            (Profile.Key.to_string k) callee.Func.name;
          Hashtbl.replace verdicts s.Stmt.id Cold_site
      | m ->
          let size = func_size callee in
          if size <= !budget then begin
            (if !budget <> max_int then budget := !budget - size);
            Hashtbl.replace verdicts s.Stmt.id Inline_site;
            match m with
            | Some (k, c) ->
                say "call %s -> %s: count=%d cycles=%d -> inline (budget left %d)"
                  (Profile.Key.to_string k) callee.Func.name
                  c.Profile.Data.count c.Profile.Data.cycles !budget
            | None -> ()
          end
          else begin
            stats.calls_skipped_budget <- stats.calls_skipped_budget + 1;
            say "call %s -> %s: size %d over remaining budget %d -> keep the call"
              (Vpc_support.Loc.to_string s.Stmt.loc) callee.Func.name size !budget;
            Hashtbl.replace verdicts s.Stmt.id Budget_site
          end)
    ranked;
  verdicts

(* Inline eligible calls in [caller]'s body.  Each function is expanded
   exactly once ([done_set]), callees before callers; [stack] holds the
   expansion chain for the recursion cutoff.  A call that survives inside
   an expanded callee (because it was recursive or too large) is inlined
   as-is and never re-expanded — this is what bounds recursive inlining. *)
let rec expand_in_function (opts : options) stats (prog : Prog.t)
    (caller : Func.t) ~stack ~done_set =
  if Hashtbl.mem done_set caller.Func.name then ()
  else begin
    Hashtbl.replace done_set caller.Func.name ();
    let eligible name =
      match opts.only with Some names -> List.mem name names | None -> true
    in
    let plan =
      match opts.profile, opts.pointsto with
      | None, None -> None
      | _ -> Some (plan_sites opts stats prog caller ~eligible)
    in
    let site_tuned (s : Stmt.t) =
      match opts.site_tune with None -> None | Some f -> f s.Stmt.loc
    in
    let site_selected (s : Stmt.t) =
      match site_tuned s with
      | Some v -> v
      | None -> (
          match plan with
          | None -> true
          | Some verdicts -> (
              match Hashtbl.find_opt verdicts s.Stmt.id with
              | Some (Cold_site | Budget_site) -> false
              | Some Inline_site | None -> true))
    in
    let replace (s : Stmt.t) : Stmt.t list =
      match s.Stmt.desc with
      | Stmt.Call (dst, Stmt.Direct name, args)
        when eligible name && site_selected s -> (
          match Prog.find_func prog name with
          | None ->
              stats.calls_skipped_unknown <- stats.calls_skipped_unknown + 1;
              [ s ]
          | Some callee ->
              if List.mem name stack || List.length stack >= opts.max_depth
              then begin
                stats.calls_skipped_recursive <-
                  stats.calls_skipped_recursive + 1;
                [ s ]
              end
              else if
                site_tuned s <> Some true
                && func_size callee > opts.max_callee_stmts
              then begin
                stats.calls_skipped_size <- stats.calls_skipped_size + 1;
                [ s ]
              end
              else if List.length args <> List.length callee.Func.params then
                [ s ]  (* arity mismatch: leave the call alone *)
              else begin
                (* make sure the callee itself is fully expanded first *)
                expand_in_function opts stats prog callee
                  ~stack:(name :: stack) ~done_set;
                stats.calls_inlined <- stats.calls_inlined + 1;
                expand_call prog caller callee dst args
              end)
      | _ -> [ s ]
    in
    caller.Func.body <- Stmt.map_list replace caller.Func.body
  end

(* Expand calls across the whole program, callees before callers. *)
let expand ?(options = default_options) ?(stats = new_stats ())
    (prog : Prog.t) =
  let done_set = Hashtbl.create 8 in
  List.iter
    (fun f ->
      expand_in_function options stats prog f ~stack:[ f.Func.name ] ~done_set)
    prog.Prog.funcs
