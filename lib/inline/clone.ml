(* Statement-tree cloning with variable and label renaming — the engine
   under both inlining (§7) and catalog import.  The IL is pointer-free,
   so cloning is a pure id-remapping walk. *)

open Vpc_il

type renaming = {
  var_map : (int, int) Hashtbl.t;       (* old var id -> new var id *)
  label_map : (string, string) Hashtbl.t;
  stmt_gen : Vpc_support.Gensym.t;      (* target function's stmt ids *)
}

let map_var r id = Option.value (Hashtbl.find_opt r.var_map id) ~default:id

let map_label r l =
  Option.value (Hashtbl.find_opt r.label_map l) ~default:l

let rec clone_expr r (e : Expr.t) : Expr.t =
  match e.Expr.desc with
  | Expr.Const_int _ | Expr.Const_float _ -> e
  | Expr.Var id -> { e with desc = Expr.Var (map_var r id) }
  | Expr.Addr_of id -> { e with desc = Expr.Addr_of (map_var r id) }
  | Expr.Load p -> { e with desc = Expr.Load (clone_expr r p) }
  | Expr.Binop (op, a, b) ->
      { e with desc = Expr.Binop (op, clone_expr r a, clone_expr r b) }
  | Expr.Unop (op, a) -> { e with desc = Expr.Unop (op, clone_expr r a) }
  | Expr.Cast (ty, a) -> { e with desc = Expr.Cast (ty, clone_expr r a) }

let clone_lvalue r = function
  | Stmt.Lvar id -> Stmt.Lvar (map_var r id)
  | Stmt.Lmem e -> Stmt.Lmem (clone_expr r e)

let rec clone_vexpr r = function
  | Stmt.Vsec sec -> Stmt.Vsec (clone_section r sec)
  | Stmt.Vscalar e -> Stmt.Vscalar (clone_expr r e)
  | Stmt.Viota (off, scale) -> Stmt.Viota (clone_expr r off, clone_expr r scale)
  | Stmt.Vcast (ty, a) -> Stmt.Vcast (ty, clone_vexpr r a)
  | Stmt.Vbin (op, a, b) -> Stmt.Vbin (op, clone_vexpr r a, clone_vexpr r b)
  | Stmt.Vun (op, a) -> Stmt.Vun (op, clone_vexpr r a)
  | Stmt.Vtmp (t, ty) -> Stmt.Vtmp (t, ty)

and clone_section r (sec : Stmt.section) =
  {
    Stmt.base = clone_expr r sec.Stmt.base;
    count = clone_expr r sec.Stmt.count;
    stride = clone_expr r sec.Stmt.stride;
  }

let rec clone_stmt r (s : Stmt.t) : Stmt.t =
  let fresh_id = Vpc_support.Gensym.fresh r.stmt_gen in
  let desc =
    match s.Stmt.desc with
    | Stmt.Assign (lv, e) -> Stmt.Assign (clone_lvalue r lv, clone_expr r e)
    | Stmt.Call (dst, tgt, args) ->
        let tgt =
          match tgt with
          | Stmt.Direct _ -> tgt
          | Stmt.Indirect e -> Stmt.Indirect (clone_expr r e)
        in
        Stmt.Call
          (Option.map (clone_lvalue r) dst, tgt, List.map (clone_expr r) args)
    | Stmt.If (c, t, e) ->
        Stmt.If (clone_expr r c, clone_stmts r t, clone_stmts r e)
    | Stmt.While (li, c, body) -> Stmt.While (li, clone_expr r c, clone_stmts r body)
    | Stmt.Do_loop d ->
        Stmt.Do_loop
          {
            d with
            index = map_var r d.index;
            lo = clone_expr r d.lo;
            hi = clone_expr r d.hi;
            step = clone_expr r d.step;
            body = clone_stmts r d.body;
          }
    | Stmt.Goto l -> Stmt.Goto (map_label r l)
    | Stmt.Label l -> Stmt.Label (map_label r l)
    | Stmt.Return e -> Stmt.Return (Option.map (clone_expr r) e)
    | Stmt.Vector v ->
        Stmt.Vector
          {
            v with
            vdst = clone_section r v.Stmt.vdst;
            vsrc = clone_vexpr r v.Stmt.vsrc;
          }
    | Stmt.Vdef vd ->
        (* vector-temp ids are function-unique already; inlining runs before
           the reuse pass ever creates one, so keeping the id is safe *)
        Stmt.Vdef
          {
            vd with
            vval = clone_vexpr r vd.Stmt.vval;
            vcount = clone_expr r vd.Stmt.vcount;
          }
    | Stmt.Nop -> Stmt.Nop
  in
  { s with Stmt.id = fresh_id; desc }

and clone_stmts r stmts = List.map (clone_stmt r) stmts
