(* Procedure catalogs (paper §7): "math libraries can be 'compiled' into
   databases and used as a base for inlining, much as include directories
   are used as a source for header files."

   A catalog is a serialized program (structs, globals, functions) in the
   pointer-free sexp form.  Importing a catalog merges it into a target
   program, remapping variable ids; globals are unified by name so that a
   library's statics keep a single storage location however often it is
   imported. *)

open Vpc_support
open Vpc_il

let save (prog : Prog.t) file =
  let oc = open_out file in
  (try output_string oc (Sexp.to_string (Prog.to_sexp prog))
   with e ->
     close_out oc;
     raise e);
  close_out oc

let load file : Prog.t =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  Prog.of_sexp (Sexp.of_string content)

let of_string s : Prog.t = Prog.of_sexp (Sexp.of_string s)
let to_string (prog : Prog.t) = Sexp.to_string (Prog.to_sexp prog)

(* Merge [src] into [into].  Functions already present in [into] win;
   globals are unified by name. *)
let import ~(into : Prog.t) (src : Prog.t) =
  (* structs *)
  Hashtbl.iter
    (fun tag def ->
      if not (Hashtbl.mem into.Prog.structs tag) then
        Hashtbl.replace into.Prog.structs tag def)
    src.Prog.structs;
  (* globals: build the id remapping *)
  let var_map = Hashtbl.create 16 in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (g : Prog.global) -> Hashtbl.replace by_name g.gvar.Var.name g.gvar)
    (Prog.globals_list into);
  List.iter
    (fun (g : Prog.global) ->
      match Hashtbl.find_opt by_name g.gvar.Var.name with
      | Some existing -> Hashtbl.replace var_map g.gvar.Var.id existing.Var.id
      | None ->
          let id = Prog.fresh_var_id into in
          Hashtbl.replace var_map g.gvar.Var.id id;
          Prog.add_global into ~ginit:g.ginit { g.gvar with id })
    (Prog.globals_list src);
  (* functions *)
  List.iter
    (fun (f : Func.t) ->
      match Prog.find_func into f.Func.name with
      | Some _ -> ()  (* already defined locally: local definition wins *)
      | None ->
          let nf =
            Func.create ~name:f.Func.name ~ret_ty:f.Func.ret_ty
              ~is_static:f.Func.is_static ()
          in
          (* remap every local var to a fresh id in [into], in ascending
             source-id order so the new ids preserve the relative order
             (frame layout and printed names follow it) *)
          let local_map = Hashtbl.copy var_map in
          List.iter
            (fun (v : Var.t) ->
              let id = Prog.fresh_var_id into in
              Hashtbl.replace local_map v.Var.id id;
              Func.add_var nf { v with id })
            (Func.locals f);
          let renaming =
            {
              Clone.var_map = local_map;
              label_map = Hashtbl.create 1;  (* labels are function-local *)
              stmt_gen = nf.Func.stmt_gen;
            }
          in
          let params = List.map (Clone.map_var renaming) f.Func.params in
          let nf = { nf with params } in
          nf.Func.body <- Clone.clone_stmts renaming f.Func.body;
          Prog.add_func into nf)
    src.Prog.funcs
