(* The vectorizer and parallelizer.

   Allen–Kennedy codegen over the statement dependence graph: Tarjan
   SCCs of a DO-loop body, loop distribution in topological order, vector
   statement generation for dependence-free assignments, strip mining to
   the machine vector length, and "do parallel" spreading of independent
   strips over processors — producing exactly the §9 shape:

       do parallel vi = 0, 99, 32 {
         vr = min(99, vi+31);
         a[vi:vr:1] = b[vi:vr:1] + c[vi:vr:1];
       }

   Statement groups that carry a dependence cycle stay as sequential DO
   loops; groups connected by scalar flow are kept together (no scalar
   expansion). *)

open Vpc_il
open Vpc_dependence
module Profile = Vpc_profile
module Cost = Vpc_titan.Cost

(* Facts the symbolic range analysis can prove about an expression at a
   loop header, supplied as closures so this library does not depend on
   the analysis' representation. *)
type range_facts = {
  rf_interval : Stmt.t -> Expr.t -> int option * int option;
      (* sound bounds on an integer expression's value on entry to the
         given loop statement; (None, None) = unknown *)
  rf_divisible : Stmt.t -> Expr.t -> int -> bool;
      (* is the expression provably a multiple of the divisor? *)
}

(* What to do with one loop, resolved ahead of the static policy — the
   shape both the profile (PGO) and the autotuner speak. *)
type pgo_choice = {
  keep_scalar : bool;      (* below break-even: leave the DO loop alone *)
  strip_parallel : bool;   (* spread vector strips over processors *)
  scalar_parallel : bool;  (* spread sequential groups over processors *)
  chosen_vlen : int;
}

type options = {
  vectorize : bool;
  parallelize : bool;
  vlen : int;                (* vector strip length; the paper uses 32 *)
  assume_noalias : bool;     (* pointer params have Fortran semantics *)
  fuse_strips : bool;
      (* let singleton vector groups connected only by loop-independent
         dependences share one strip loop (one vi/len, one barrier) *)
  profile : Profile.Data.t option;
      (* measured trip counts: consult the Titan cost model per loop *)
  report : (string -> unit) option;  (* one line per profile-guided call *)
  vreuse : bool;
      (* vector-register reuse runs downstream: price accumulator loops
         with the port-traffic model's residency estimate *)
  why_scalar : (string -> unit) option;
      (* one line per loop left scalar, naming the unresolved alias pair
         (with source locations) or the rejecting shape/dependence *)
  range : range_facts option;
      (* symbolic ranges: dependence tests work on symbolic distances,
         and strips whose trip count is a proven multiple of the strip
         length drop their per-strip length guards *)
  tune : (Stmt.t -> pgo_choice option) option;
      (* autotuned per-nest override, consulted before the profile *)
}

let default_options =
  {
    vectorize = true;
    parallelize = true;
    vlen = 32;
    assume_noalias = false;
    fuse_strips = false;
    profile = None;
    report = None;
    vreuse = false;
    why_scalar = None;
    range = None;
    tune = None;
  }

type stats = {
  mutable loops_examined : int;
  mutable loops_vectorized : int;     (* at least one vector stmt emitted *)
  mutable loops_parallelized : int;   (* at least one do-parallel emitted *)
  mutable stmts_vectorized : int;
  mutable loops_rejected_shape : int;     (* calls/control flow in body *)
  mutable loops_rejected_dependence : int;(* carried cycles everywhere *)
  mutable short_vector_loops : int;       (* trip <= vlen: no strip loop *)
  mutable strip_loops_shared : int;       (* strip loops holding >1 vector stmt *)
  mutable pgo_scalar_loops : int;   (* profile said: stay scalar *)
  mutable pgo_serial_strips : int;  (* profile said: vector, drop parallel *)
  mutable pgo_strip_adjusted : int; (* profile picked a shorter strip *)
  mutable strip_guards_dropped : int;
      (* range analysis proved every strip full: no length clamp *)
}

let new_stats () =
  {
    loops_examined = 0;
    loops_vectorized = 0;
    loops_parallelized = 0;
    stmts_vectorized = 0;
    loops_rejected_shape = 0;
    loops_rejected_dependence = 0;
    short_vector_loops = 0;
    strip_loops_shared = 0;
    pgo_scalar_loops = 0;
    pgo_serial_strips = 0;
    pgo_strip_adjusted = 0;
    strip_guards_dropped = 0;
  }

(* ----------------------------------------------------------------- *)
(* Union-find over statement groups                                  *)
(* ----------------------------------------------------------------- *)

let rec uf_find parent i =
  if parent.(i) = i then i
  else begin
    parent.(i) <- uf_find parent parent.(i);
    parent.(i)
  end

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(ra) <- rb

(* ----------------------------------------------------------------- *)
(* Vector expression construction                                    *)
(* ----------------------------------------------------------------- *)

exception Not_vectorizable

(* Strip codegen decision derived from the range analysis (see
   [range_trip] in [process_loop]). *)
type trip_shape =
  | Trip_unknown
  | Trip_full                   (* trip is a multiple of the strip length *)
  | Trip_short                  (* symbolic trip proven within [1, vlen] *)

(* A section's element type is read off its base's pointee type (by the
   verifier, the interpreter, and codegen), but the affine decomposition
   can leave the invariant base typed as the enclosing aggregate — e.g.
   vs[i].pos[j] vectorized along i keeps a struct-typed base.  Retype the
   base to point at the accessed element; a no-op whenever the types
   already agree. *)
let retype_section elt (sec : Stmt.section) : Stmt.section =
  match sec.Stmt.base.Expr.ty with
  | Ty.Ptr t when Ty.equal t elt -> sec
  | _ -> { sec with Stmt.base = Expr.cast (Ty.Ptr elt) sec.Stmt.base }

(* Convert the RHS of a vector candidate into a vexpr.  [affine_of]
   decomposes addresses; [invariant] tests loop-invariance; [shift]
   rebases a section's start to the strip loop variable. *)
let rec to_vexpr ~invariant ~affine ~mk_section (e : Expr.t) : Stmt.vexpr =
  if invariant e then Stmt.Vscalar e
  else
    match e.Expr.desc with
    | Expr.Load p -> (
        match affine p with
        | Some (a : Subscript.affine) ->
            Stmt.Vsec (retype_section e.Expr.ty (mk_section a))
        | None -> raise Not_vectorizable)
    | Expr.Var _ when Ty.is_integer e.Expr.ty -> iota ~affine ~mk_section e
    | Expr.Binop (op, a, b) -> (
        try
          Stmt.Vbin
            ( op,
              to_vexpr ~invariant ~affine ~mk_section a,
              to_vexpr ~invariant ~affine ~mk_section b )
        with Not_vectorizable when Ty.is_integer e.Expr.ty ->
          iota ~affine ~mk_section e)
    | Expr.Unop (op, a) -> Stmt.Vun (op, to_vexpr ~invariant ~affine ~mk_section a)
    | Expr.Cast (ty, a) ->
        Stmt.Vcast (ty, to_vexpr ~invariant ~affine ~mk_section a)
    | _ -> raise Not_vectorizable

(* An affine integer expression of the loop index becomes an iota vector
   shifted like a section. *)
and iota ~affine ~mk_section (e : Expr.t) : Stmt.vexpr =
  match affine e with
  | Some (a : Subscript.affine) ->
      (* reuse the section shifting: a strip starting at [start] sees
         values base + coeff*start + coeff*i *)
      let sec = mk_section a in
      Stmt.Viota (sec.Stmt.base, Expr.int_const a.Subscript.coeff)
  | None -> raise Not_vectorizable

(* ----------------------------------------------------------------- *)
(* Per-loop driver                                                   *)
(* ----------------------------------------------------------------- *)

let simplify = Vpc_analysis.Simplify.expr

let is_normalized (d : Stmt.do_loop) =
  Expr.is_zero d.lo
  && (match d.step.Expr.desc with Expr.Const_int 1 -> true | _ -> false)

let contains_inner_loop (body : Stmt.t list) =
  List.exists
    (fun s ->
      let found = ref false in
      Stmt.iter
        (fun inner ->
          match inner.Stmt.desc with
          | Stmt.While _ | Stmt.Do_loop _ -> found := true
          | _ -> ())
        s;
      !found)
    body

(* Scalar variables assigned at top level of the body. *)
let scalar_defs body =
  List.filter_map
    (fun (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lvar v, _) -> Some v
      | _ -> None)
    body

(* ----------------------------------------------------------------- *)
(* Profile-guided decisions                                          *)
(* ----------------------------------------------------------------- *)

(* Operation mix of one iteration, for the Titan cost model. *)
let body_shape (body : Stmt.t list) : Cost.shape = Cost.shape_of_stmts body

(* Register-residency candidates of a scalar loop body: stores whose own
   right-hand side reads back the identical address — the accumulator
   idiom [a[i] = a[i] + ...].  Once the downstream reuse pass localizes
   such a section, its load AND its store stay in a vector register
   across the enclosing serial loop, thinning every strip's memory
   traffic by two references. *)
let residency_candidates ~noalias (body : Stmt.t list) : int =
  (* a pointer the body itself bumps has no single value, so a same-base
     load/store pair through it walks memory rather than revisiting one
     section: Must_alias through such a root would misprice the loop *)
  let defined_in_body, _ = Vpc_analysis.Reaching.vars_defined_in body in
  let variant v = Hashtbl.mem defined_in_body v in
  List.fold_left
    (fun acc (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lmem addr, rhs) ->
          let self = ref false in
          Expr.iter
            (fun (e : Expr.t) ->
              match e.Expr.desc with
              | Expr.Load p
                when (match
                        Alias.bases ~assume_noalias:noalias ~variant p addr
                      with
                     | Alias.Must_alias 0 -> true
                     | Alias.No_alias | Alias.Must_alias _ | Alias.May_alias ->
                         false) ->
                  self := true
              | _ -> ())
            rhs;
          if !self then acc + 2 else acc
      | _ -> acc)
    0 body

(* Consult the measured mean trip count against the Titan cost model.
   Absent data (no key, never measured) returns [None]: the static
   policy applies unchanged, which keeps compilation with an empty
   profile byte-identical to compilation without one.  A loop measured
   cold (entered zero times) also returns [None] — there is nothing to
   win there either way. *)
let pgo_decide (opts : options) (data : Profile.Data.t) (loop_stmt : Stmt.t)
    (body : Stmt.t list) : pgo_choice option =
  match Profile.Key.of_loc loop_stmt.Stmt.loc with
  | None -> None
  | Some key -> (
      match Profile.Data.find_loop data key with
      | None -> None
      | Some lp -> (
          match Profile.Data.mean_trips lp with
          | None | Some 0 -> None
          | Some trips ->
              let shape = body_shape body in
              let sched = Cost.sched_of_name data.Profile.Data.sched in
              let procs = data.Profile.Data.procs in
              let scalar = Cost.scalar_loop_cycles ~sched shape ~trips in
              (* candidate strip lengths: the machine length, plus a
                 balanced length that spreads the measured trips evenly
                 over the processors *)
              let balanced = max 1 ((trips + procs - 1) / procs) in
              let candidates =
                if balanced < opts.vlen then [ opts.vlen; balanced ]
                else [ opts.vlen ]
              in
              let consider (best_cost, best) vlen ~parallel =
                if parallel && (procs <= 1 || not opts.parallelize) then
                  (best_cost, best)
                else
                  let c =
                    Cost.vector_loop_cycles shape ~trips ~vlen ~procs ~parallel
                  in
                  if c < best_cost then (c, Some (vlen, parallel))
                  else (best_cost, best)
              in
              let vcost, vbest =
                List.fold_left
                  (fun acc vlen ->
                    consider (consider acc vlen ~parallel:false) vlen
                      ~parallel:true)
                  (max_int, None) candidates
              in
              (* with the reuse pass downstream, an accumulator loop's
                 vector form is priced with its resident sections out of
                 the memory traffic; residency needs serial strips *)
              let resident =
                if opts.vreuse then
                  min
                    (residency_candidates ~noalias:opts.assume_noalias body)
                    shape.Cost.mem_refs
                else 0
              in
              let rcost =
                if resident = 0 then max_int
                else
                  Cost.reuse_vector_loop_cycles shape ~trips ~vlen:opts.vlen
                    ~resident ~reps:Cost.default_trip
              in
              let keep_scalar = scalar <= min vcost rcost in
              let scalar_parallel =
                opts.parallelize
                && Cost.parallel_scalar_cycles ~sched shape ~trips ~procs
                   < scalar
              in
              let chosen_vlen, strip_parallel =
                if rcost < vcost then (opts.vlen, false)
                else
                  match vbest with
                  | Some (v, p) -> (v, p)
                  | None -> (opts.vlen, false)
              in
              (match opts.report with
              | Some report ->
                  let be =
                    Cost.vector_break_even ~sched shape ~vlen:opts.vlen ~procs
                      ~parallelize:opts.parallelize
                  in
                  report
                    (Printf.sprintf
                       "loop %s: measured trips≈%d (%d entries): est scalar=%d \
                        vector=%d%s (strip %d%s) break-even=%s -> %s"
                       (Profile.Key.to_string key)
                       trips lp.Profile.Data.entries scalar
                       (if vcost = max_int then -1 else vcost)
                       (if rcost = max_int then ""
                        else Printf.sprintf " reuse=%d" rcost)
                       chosen_vlen
                       (if strip_parallel then
                          Printf.sprintf " x%d procs" procs
                        else " serial")
                       (match be with
                       | Some b -> string_of_int b
                       | None -> "never")
                       (if keep_scalar then "scalar"
                        else if strip_parallel then "vector do-parallel"
                        else "vector serial"))
              | None -> ());
              Some { keep_scalar; strip_parallel; scalar_parallel; chosen_vlen }
          ))

let process_loop (opts : options) stats prog (func : Func.t)
    (live : Vpc_analysis.Liveness.t) (loop_stmt : Stmt.t) (d : Stmt.do_loop) :
    Stmt.t list option =
  stats.loops_examined <- stats.loops_examined + 1;
  let body = d.body in
  let defined_in_body, mem_written = Vpc_analysis.Reaching.vars_defined_in body in
  let unsafe_vars = Func.addressed_vars func in
  let invariant (e : Expr.t) =
    ((not (Expr.contains_load e)) || not mem_written)
    && List.for_all
         (fun v ->
           v <> d.index
           && (not (Hashtbl.mem defined_in_body v))
           && ((not mem_written) || not (Hashtbl.mem unsafe_vars v))
           &&
           match Prog.find_var prog (Some func) v with
           | Some vm -> not vm.Var.volatile
           | None -> false)
         (Expr.read_vars e)
  in
  let trip_expr = simplify (Expr.binop Expr.Add d.hi (Expr.int_const 1) Ty.Int) in
  let trip_const = Expr.const_int_val trip_expr in
  (* a tuned per-nest override pins the treatment outright; otherwise
     measured trip counts, when a profile has them for this loop *)
  let tuned =
    match opts.tune with None -> None | Some f -> f loop_stmt
  in
  let pgo =
    match tuned with
    | Some _ -> tuned
    | None -> (
        match opts.profile with
        | None -> None
        | Some data -> pgo_decide opts data loop_stmt d.body)
  in
  match pgo with
  | Some { keep_scalar = true; _ } ->
      stats.pgo_scalar_loops <- stats.pgo_scalar_loops + 1;
      (match opts.why_scalar with
      | Some say ->
          say
            (Printf.sprintf
               "%s: loop at %s stays scalar: %s puts it below the vector \
                break-even"
               func.Func.name
               (Vpc_support.Loc.to_string loop_stmt.Stmt.loc)
               (if tuned <> None then "the tuned configuration"
                else "profile"))
      | None -> ());
      None  (* below break-even: the serial DO loop is the fast version *)
  | _ ->
  let strip_vlen =
    match pgo with Some c -> c.chosen_vlen | None -> opts.vlen
  in
  let strip_par_ok =
    match pgo with Some c -> c.strip_parallel | None -> true
  in
  let scalar_par_ok =
    match pgo with Some c -> c.scalar_parallel | None -> true
  in
  let assume_noalias = opts.assume_noalias || d.independent in
  let pp_e0 ppf e = Pp.pp_expr { Pp.prog; Pp.func = Some func } ppf e in
  (* distances the range analysis could not bound, for --why-scalar *)
  let range_notes = ref [] in
  let graph =
    match opts.range with
    | None ->
        Graph.build ~assume_noalias ~trip:trip_const body ~index:d.index
          ~invariant
    | Some rf ->
        (* a symbolic trip count's upper bound is a sound stand-in for
           the exact trip everywhere the tests consume it: a larger trip
           only widens the solution range they must exclude *)
        let trip_bound =
          match trip_const with
          | Some _ as t -> t
          | None -> snd (rf.rf_interval loop_stmt trip_expr)
        in
        let oracle =
          {
            Test.interval = (fun e -> rf.rf_interval loop_stmt e);
            Test.note =
              (fun e what ->
                range_notes :=
                  Format.asprintf "the byte distance %a is %s" pp_e0 e what
                  :: !range_notes);
          }
        in
        Test.with_oracle oracle (fun () ->
            Graph.build ~assume_noalias ~trip:trip_bound body ~index:d.index
              ~invariant)
  in
  (* What the range analysis proves about the trip count, for strip
     codegen: a trip that is a known multiple of the strip length makes
     every strip full (the per-strip length computation and clamp
     disappear); a symbolic trip proven within [1, vlen] needs no strip
     loop at all.  A constant non-multiple trip keeps the runtime clamp:
     peeling the remainder out of a parallel strip loop would serialize
     it against the full strips, which costs more on a multiprocessor
     than the clamp saves. *)
  let range_trip =
    match opts.range with
    | None -> Trip_unknown
    | Some rf -> (
        match trip_const with
        | Some t when t > strip_vlen && t mod strip_vlen = 0 -> Trip_full
        | Some _ -> Trip_unknown
        | None ->
            if rf.rf_divisible loop_stmt trip_expr strip_vlen then Trip_full
            else (
              match rf.rf_interval loop_stmt trip_expr with
              | Some l, Some h when l >= 1 && h <= strip_vlen -> Trip_short
              | _ -> Trip_unknown))
  in
  (* --why-scalar: name what kept this loop out of vector form *)
  let why fmt =
    Format.kasprintf
      (fun msg ->
        match opts.why_scalar with
        | Some say ->
            say
              (Printf.sprintf "%s: loop at %s stays scalar: %s"
                 func.Func.name
                 (Vpc_support.Loc.to_string loop_stmt.Stmt.loc)
                 msg)
        | None -> ())
      fmt
  in
  let pp_e ppf e = Pp.pp_expr { Pp.prog; Pp.func = Some func } ppf e in
  let stmt_loc (s : Stmt.t) = Vpc_support.Loc.to_string s.Stmt.loc in
  (* the first write-involving reference pair the alias analysis could
     not separate, re-deriving each verdict the dependence graph used *)
  let unresolved_alias_pair () =
    let arr = Array.of_list body in
    let refs = Array.of_list graph.Graph.refs in
    let variant v = Hashtbl.mem defined_in_body v in
    let verdict (r1 : Subscript.reference) (r2 : Subscript.reference) =
      match r1.Subscript.affine, r2.Subscript.affine with
      | Some a1, Some a2 ->
          Alias.bases ~assume_noalias a1.Subscript.base a2.Subscript.base
      | _ ->
          Alias.bases ~assume_noalias ~variant r1.Subscript.addr
            r2.Subscript.addr
    in
    let found = ref None in
    (try
       for i = 0 to Array.length refs - 1 do
         for j = i to Array.length refs - 1 do
           let r1 = refs.(i) and r2 = refs.(j) in
           if
             (r1.Subscript.kind = Subscript.Write
             || r2.Subscript.kind = Subscript.Write)
             && verdict r1 r2 = Alias.May_alias
           then begin
             found := Some (r1, r2);
             raise Exit
           end
         done
       done
     with Exit -> ());
    Option.map
      (fun ((r1 : Subscript.reference), (r2 : Subscript.reference)) ->
        let describe (r : Subscript.reference) =
          let loc =
            if r.Subscript.ref_pos >= 0 && r.Subscript.ref_pos < Array.length arr
            then stmt_loc arr.(r.Subscript.ref_pos)
            else "?"
          in
          Format.asprintf "%s of %a (at %s)"
            (match r.Subscript.kind with
            | Subscript.Write -> "store"
            | Subscript.Read -> "load")
            pp_e r.Subscript.addr loc
        in
        (describe r1, describe r2))
      !found
  in
  if not graph.Graph.analyzable then begin
    stats.loops_rejected_shape <- stats.loops_rejected_shape + 1;
    (if opts.why_scalar <> None then
       let offender =
         List.find_opt
           (fun (s : Stmt.t) ->
             match s.Stmt.desc with Stmt.Assign _ -> false | _ -> true)
           body
       in
       match offender with
       | Some ({ Stmt.desc = Stmt.Call (_, Stmt.Direct name, _); _ } as s) ->
           why
             "body calls %s (at %s); dependence analysis needs the call \
              inlined or its effects bounded"
             name (stmt_loc s)
       | Some s ->
           why "body statement at %s is not an assignment" (stmt_loc s)
       | None -> why "body is not analyzable");
    None
  end
  else begin
    let sccs = Graph.sccs graph in
    (* merge SCCs connected by scalar (non-memory) dependences, then merge
       any cycles the contraction created, to fixpoint *)
    let n = graph.Graph.nstmts in
    let parent = Array.init n (fun i -> i) in
    List.iter
      (fun comp ->
        match comp with
        | first :: rest -> List.iter (fun m -> uf_union parent first m) rest
        | [] -> ())
      sccs;
    List.iter
      (fun (e : Graph.edge) ->
        if not e.through_memory then uf_union parent e.src e.dst)
      graph.Graph.edges;
    (* collapse cycles among groups until the group graph is a DAG *)
    let rec collapse () =
      let group_of i = uf_find parent i in
      (* build group graph *)
      let groups = Hashtbl.create 8 in
      for i = 0 to n - 1 do
        let g = group_of i in
        Hashtbl.replace groups g
          (i :: Option.value (Hashtbl.find_opt groups g) ~default:[])
      done;
      let gids = Hashtbl.fold (fun g _ acc -> g :: acc) groups [] in
      let idx_of = Hashtbl.create 8 in
      List.iteri (fun i g -> Hashtbl.replace idx_of g i) gids;
      let gn = List.length gids in
      let succs = Array.make gn [] in
      List.iter
        (fun (e : Graph.edge) ->
          let a = Hashtbl.find idx_of (group_of e.src) in
          let b = Hashtbl.find idx_of (group_of e.dst) in
          if a <> b && not (List.mem b succs.(a)) then succs.(a) <- b :: succs.(a))
        graph.Graph.edges;
      (* find a cycle via DFS; if found, merge its members and retry *)
      let color = Array.make gn 0 in
      let cycle = ref None in
      let stack = ref [] in
      let rec dfs u =
        if !cycle = None then begin
          color.(u) <- 1;
          stack := u :: !stack;
          List.iter
            (fun v ->
              if !cycle = None then
                if color.(v) = 1 then begin
                  (* extract cycle u..v from stack *)
                  let rec take acc = function
                    | x :: rest ->
                        if x = v then x :: acc else take (x :: acc) rest
                    | [] -> acc
                  in
                  cycle := Some (take [] !stack)
                end
                else if color.(v) = 0 then dfs v)
            succs.(u);
          color.(u) <- 2;
          stack := List.tl !stack
        end
      in
      for u = 0 to gn - 1 do
        if color.(u) = 0 then dfs u
      done;
      match !cycle with
      | Some (first :: rest) when rest <> [] ->
          let gids_arr = Array.of_list gids in
          List.iter
            (fun gi -> uf_union parent gids_arr.(first) gids_arr.(gi))
            rest;
          collapse ()
      | _ -> ()
    in
    if n > 0 then collapse ();
    (* final groups in topological order *)
    let group_of i = uf_find parent i in
    let groups = Hashtbl.create 8 in
    for i = n - 1 downto 0 do
      let g = group_of i in
      Hashtbl.replace groups g
        (i :: Option.value (Hashtbl.find_opt groups g) ~default:[])
    done;
    let group_list = Hashtbl.fold (fun _ members acc -> members :: acc) groups [] in
    (* topological order via Kahn on group DAG, position-stable *)
    let gmap = Hashtbl.create 8 in
    List.iteri (fun i members -> List.iter (fun m -> Hashtbl.replace gmap m i) members)
      group_list;
    let gn = List.length group_list in
    let garr = Array.of_list group_list in
    let succs = Array.make gn [] and indeg = Array.make gn 0 in
    List.iter
      (fun (e : Graph.edge) ->
        let a = Hashtbl.find gmap e.src and b = Hashtbl.find gmap e.dst in
        if a <> b && not (List.mem b succs.(a)) then begin
          succs.(a) <- b :: succs.(a);
          indeg.(b) <- indeg.(b) + 1
        end)
      graph.Graph.edges;
    let ready = ref [] in
    for i = gn - 1 downto 0 do
      if indeg.(i) = 0 then ready := i :: !ready
    done;
    let min_pos g = List.fold_left min max_int garr.(g) in
    let sort_ready l = List.sort (fun a b -> compare (min_pos a) (min_pos b)) l in
    ready := sort_ready !ready;
    let ordered = ref [] in
    let rec kahn () =
      match !ready with
      | [] -> ()
      | g :: rest ->
          ready := rest;
          ordered := garr.(g) :: !ordered;
          List.iter
            (fun j ->
              indeg.(j) <- indeg.(j) - 1;
              if indeg.(j) = 0 then ready := sort_ready (j :: !ready))
            succs.(g);
          kahn ()
    in
    kahn ();
    let ordered_groups = List.rev !ordered in
    let body_arr = Array.of_list body in
    (* --- emit each group --- *)
    let b = Builder.ctx prog func in
    let any_vector = ref false in
    let any_parallel = ref false in
    let affine_of e =
      match Subscript.affine_of ~index:d.index ~invariant e with
      | Some a when invariant a.Subscript.base -> Some a
      | Some _ | None -> None
    in
    let rec emit_group members : Stmt.t list =
      let members = List.sort compare members in
      let group_stmts = List.map (fun i -> body_arr.(i)) members in
      let carried_inside = Graph.has_carried_cycle graph members in
      let vector_candidate =
        opts.vectorize && (not carried_inside)
        &&
        match members, group_stmts with
        | [ _pos ], [ { Stmt.desc = Stmt.Assign (Stmt.Lmem addr, rhs); _ } ] -> (
            match affine_of addr with
            | Some a when a.Subscript.coeff <> 0 -> Some (addr, a, rhs) |> Option.is_some
            | _ -> false)
        | _ -> false
      in
      if vector_candidate then begin
        match members, group_stmts with
        | [ _pos ], [ ({ Stmt.desc = Stmt.Assign (Stmt.Lmem addr, rhs); _ } as st) ] -> (
            let a = Option.get (affine_of addr) in
            let elt = match addr.Expr.ty with Ty.Ptr t -> t | t -> t in
            try
              (* Build the vector statement over a strip starting at
                 [strip_var] (an expression) with [count] elements. *)
              let build_vector ~start ~count =
                let shift (base : Expr.t) (coeff : int) =
                  if Expr.is_zero start then base
                  else
                    simplify
                      (Expr.binop Expr.Add base
                         (Expr.binop Expr.Mul (Expr.int_const coeff) start Ty.Int)
                         base.Expr.ty)
                in
                let mk_section (af : Subscript.affine) =
                  {
                    Stmt.base = shift af.Subscript.base af.Subscript.coeff;
                    count;
                    stride = Expr.int_const af.Subscript.coeff;
                  }
                in
                let invariant_v e = invariant e in
                let affine_v e = affine_of e in
                let vsrc = to_vexpr ~invariant:invariant_v ~affine:affine_v ~mk_section rhs in
                let vdst = retype_section elt (mk_section a) in
                Builder.stmt b ~loc:st.Stmt.loc
                  (Stmt.Vector { vdst; vsrc; velt = elt })
              in
              let result =
                match trip_const, range_trip with
                | Some t, _ when t <= strip_vlen ->
                    (* short vector: no strip loop needed (§5.2's graphics
                       remark) *)
                    stats.short_vector_loops <- stats.short_vector_loops + 1;
                    [ build_vector ~start:(Expr.int_const 0) ~count:trip_expr ]
                | _, Trip_short ->
                    (* symbolic trip, but the range analysis bounds it by
                       one strip: bare short-vector code again *)
                    stats.short_vector_loops <- stats.short_vector_loops + 1;
                    [ build_vector ~start:(Expr.int_const 0) ~count:trip_expr ]
                | _, shape ->
                    (* strip-mined loop, parallel across processors *)
                    let vi = Builder.fresh_temp b ~name:"vi" Ty.Int in
                    let vi_e = Expr.var vi in
                    let parallel = opts.parallelize && strip_par_ok in
                    if opts.parallelize && not strip_par_ok then
                      stats.pgo_serial_strips <- stats.pgo_serial_strips + 1;
                    if strip_vlen <> opts.vlen then
                      stats.pgo_strip_adjusted <- stats.pgo_strip_adjusted + 1;
                    if parallel then any_parallel := true;
                    let strip_loop ~hi body_stmts =
                      Builder.do_loop b ~parallel ~independent:d.independent
                        ~index:vi.Var.id ~lo:(Expr.int_const 0) ~hi
                        ~step:(Expr.int_const strip_vlen) body_stmts
                    in
                    (match shape with
                    | Trip_full ->
                        (* every strip is full: the per-strip length
                           computation and clamp disappear *)
                        stats.strip_guards_dropped <-
                          stats.strip_guards_dropped + 1;
                        [
                          strip_loop ~hi:d.hi
                            [
                              build_vector ~start:vi_e
                                ~count:(Expr.int_const strip_vlen);
                            ];
                        ]
                    | Trip_unknown | Trip_short ->
                        let len = Builder.fresh_temp b ~name:"vlen" Ty.Int in
                        let len_stmts =
                          [
                            Builder.assign b len
                              (simplify
                                 (Expr.binop Expr.Sub trip_expr vi_e Ty.Int));
                            Builder.if_ b
                              (Expr.binop Expr.Gt (Expr.var len)
                                 (Expr.int_const strip_vlen) Ty.Int)
                              [ Builder.assign b len (Expr.int_const strip_vlen) ]
                              [];
                          ]
                        in
                        let vstmt =
                          build_vector ~start:vi_e ~count:(Expr.var len)
                        in
                        [ strip_loop ~hi:d.hi (len_stmts @ [ vstmt ]) ])
              in
              any_vector := true;
              stats.stmts_vectorized <- stats.stmts_vectorized + 1;
              result
            with Not_vectorizable -> sequential_group members group_stmts carried_inside)
        | _ -> sequential_group members group_stmts carried_inside
      end
      else sequential_group members group_stmts carried_inside
    and sequential_group members group_stmts carried_inside : Stmt.t list =
      ignore members;
      (* A dependence-free scalar group can still be spread over
         processors if its scalar definitions die with the loop. *)
      let parallel_ok =
        opts.parallelize && scalar_par_ok && (not carried_inside)
        && List.for_all
             (fun v ->
               not
                 (Vpc_analysis.Liveness.live_out_of live
                    ~stmt_id:loop_stmt.Stmt.id ~var:v))
             (scalar_defs group_stmts)
      in
      if parallel_ok then any_parallel := true;
      [
        Builder.do_loop b ~parallel:parallel_ok ~independent:d.independent
          ~index:d.index ~lo:d.lo ~hi:d.hi ~step:d.step group_stmts;
      ]
    in
    (* --- strip sharing (fusion option) ---
       Consecutive singleton vector groups linked by nothing stronger
       than loop-independent (distance-0) dependences can live in ONE
       strip loop: one vi/len pair, one do-parallel, one barrier.  A
       carried dependence between two groups would cross processor
       boundaries inside a shared parallel strip, so such groups keep
       separate loops. *)
    let vec_info members =
      match members with
      | [ pos ] -> (
          match body_arr.(pos) with
          | { Stmt.desc = Stmt.Assign (Stmt.Lmem addr, rhs); _ } as st
            when opts.vectorize
                 && not (Graph.has_carried_cycle graph members) -> (
              match affine_of addr with
              | Some a when a.Subscript.coeff <> 0 -> Some (pos, st, addr, a, rhs)
              | _ -> None)
          | _ -> None)
      | _ -> None
    in
    let carried_between p1 p2 =
      List.exists
        (fun (e : Graph.edge) ->
          e.carried
          && ((e.src = p1 && e.dst = p2) || (e.src = p2 && e.dst = p1)))
        graph.Graph.edges
    in
    let emit_run run : Stmt.t list =
      match run with
      | [] -> []
      | [ (_, members) ] -> emit_group members
      | _ -> (
          let infos = List.map fst run in
          let mk ~start ~count (st, addr, a, rhs) =
            let shift (base : Expr.t) (coeff : int) =
              if Expr.is_zero start then base
              else
                simplify
                  (Expr.binop Expr.Add base
                     (Expr.binop Expr.Mul (Expr.int_const coeff) start Ty.Int)
                     base.Expr.ty)
            in
            let mk_section (af : Subscript.affine) =
              {
                Stmt.base = shift af.Subscript.base af.Subscript.coeff;
                count;
                stride = Expr.int_const af.Subscript.coeff;
              }
            in
            let vsrc = to_vexpr ~invariant ~affine:affine_of ~mk_section rhs in
            let elt = match addr.Expr.ty with Ty.Ptr t -> t | t -> t in
            ( st.Stmt.loc,
              { Stmt.vdst = retype_section elt (mk_section a); vsrc; velt = elt }
            )
          in
          try
            (* validate every group before allocating temps or stmts, so
               a Not_vectorizable body falls the whole run back to the
               one-loop-per-group path with no side effects *)
            List.iter
              (fun (_pos, st, addr, a, rhs) ->
                ignore
                  (mk ~start:(Expr.int_const 0) ~count:trip_expr
                     (st, addr, a, rhs)))
              infos;
            match trip_const, range_trip with
            | Some t, _ when t <= strip_vlen ->
                (* short vectors need no strip loop; nothing to share *)
                List.concat_map (fun (_, members) -> emit_group members) run
            | _, Trip_short ->
                List.concat_map (fun (_, members) -> emit_group members) run
            | _, shape ->
                let vi = Builder.fresh_temp b ~name:"vi" Ty.Int in
                let vi_e = Expr.var vi in
                let mk_vstmts ~start ~count ~tally =
                  List.map
                    (fun (_pos, st, addr, a, rhs) ->
                      let loc, v = mk ~start ~count (st, addr, a, rhs) in
                      if tally then
                        stats.stmts_vectorized <- stats.stmts_vectorized + 1;
                      Builder.stmt b ~loc (Stmt.Vector v))
                    infos
                in
                let parallel = opts.parallelize && strip_par_ok in
                if opts.parallelize && not strip_par_ok then
                  stats.pgo_serial_strips <- stats.pgo_serial_strips + 1;
                if strip_vlen <> opts.vlen then
                  stats.pgo_strip_adjusted <- stats.pgo_strip_adjusted + 1;
                if parallel then any_parallel := true;
                any_vector := true;
                stats.strip_loops_shared <- stats.strip_loops_shared + 1;
                let strip_loop ~hi body_stmts =
                  Builder.do_loop b ~parallel ~independent:d.independent
                    ~index:vi.Var.id ~lo:(Expr.int_const 0) ~hi
                    ~step:(Expr.int_const strip_vlen) body_stmts
                in
                (match shape with
                | Trip_full ->
                    stats.strip_guards_dropped <-
                      stats.strip_guards_dropped + 1;
                    [
                      strip_loop ~hi:d.hi
                        (mk_vstmts ~start:vi_e
                           ~count:(Expr.int_const strip_vlen) ~tally:true);
                    ]
                | Trip_unknown | Trip_short ->
                    let len = Builder.fresh_temp b ~name:"vlen" Ty.Int in
                    let len_stmts =
                      [
                        Builder.assign b len
                          (simplify (Expr.binop Expr.Sub trip_expr vi_e Ty.Int));
                        Builder.if_ b
                          (Expr.binop Expr.Gt (Expr.var len)
                             (Expr.int_const strip_vlen) Ty.Int)
                          [ Builder.assign b len (Expr.int_const strip_vlen) ]
                          [];
                      ]
                    in
                    [
                      strip_loop ~hi:d.hi
                        (len_stmts
                        @ mk_vstmts ~start:vi_e ~count:(Expr.var len)
                            ~tally:true);
                    ])
          with Not_vectorizable ->
            List.concat_map (fun (_, members) -> emit_group members) run)
    in
    if ordered_groups = [] then None
    else begin
      let pieces =
        if not opts.fuse_strips then List.concat_map emit_group ordered_groups
        else begin
          let rec gather pieces run = function
            | [] -> pieces @ emit_run (List.rev run)
            | members :: rest -> (
                match vec_info members with
                | Some ((pos, _, _, _, _) as info) ->
                    let compatible =
                      List.for_all
                        (fun ((p2, _, _, _, _), _) ->
                          not (carried_between pos p2))
                        run
                    in
                    if compatible then
                      gather pieces ((info, members) :: run) rest
                    else
                      gather
                        (pieces @ emit_run (List.rev run))
                        [ (info, members) ]
                        rest
                | None ->
                    gather
                      (pieces @ emit_run (List.rev run) @ emit_group members)
                      [] rest)
          in
          gather [] [] ordered_groups
        end
      in
      if !any_vector then stats.loops_vectorized <- stats.loops_vectorized + 1;
      if !any_parallel then stats.loops_parallelized <- stats.loops_parallelized + 1;
      if (not !any_vector) && not !any_parallel then begin
        stats.loops_rejected_dependence <- stats.loops_rejected_dependence + 1;
        (if opts.why_scalar <> None then
           let missing_fact =
             match !range_notes with
             | note :: _ -> Printf.sprintf " (%s)" note
             | [] -> ""
           in
           match unresolved_alias_pair () with
           | Some (d1, d2) ->
               why "cannot prove %s independent of %s%s" d1 d2 missing_fact
           | None -> (
               match !range_notes with
               | note :: _ ->
                   why
                     "a dependence survives the symbolic range tests: %s"
                     note
               | [] ->
                   why
                     "a loop-carried dependence cycle keeps every statement \
                      sequential"));
        None  (* keep the original loop: nothing was gained *)
      end
      else Some pieces
    end
  end

let run ?(options = default_options) ?(stats = new_stats ()) (prog : Prog.t)
    (func : Func.t) =
  let live = Vpc_analysis.Liveness.build func in
  let changed = ref false in
  let rec walk stmts = List.concat_map walk_stmt stmts
  and walk_stmt (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.Do_loop d when is_normalized d && not (contains_inner_loop d.body) -> (
        match process_loop options stats prog func live s d with
        | Some replacement ->
            changed := true;
            replacement
        | None -> [ s ])
    | Stmt.Do_loop d ->
        [ { s with desc = Stmt.Do_loop { d with body = walk d.body } } ]
    | Stmt.If (c, t, e) -> [ { s with desc = Stmt.If (c, walk t, walk e) } ]
    | Stmt.While (li, c, bd) -> [ { s with desc = Stmt.While (li, c, walk bd) } ]
    | _ -> [ s ]
  in
  func.Func.body <- walk func.Func.body;
  !changed
