(** The vectorizer and parallelizer: Allen–Kennedy codegen over the
    statement dependence graph.  SCCs of a DO-loop body are distributed
    in topological order; dependence-free assignments become vector
    statements, strip-mined to the machine vector length and spread over
    processors as [do parallel] (the §9 form); statement groups carrying
    a dependence cycle stay sequential; loops with a known tiny trip
    count get bare short-vector code with no strip loop (§5.2's graphics
    remark).

    With a [profile], each loop's measured mean trip count is checked
    against the {!Vpc_titan.Cost} estimates: a loop below the vector
    break-even stays a serial DO loop, a loop whose strips cannot
    amortize the barrier is vectorized without [do parallel], and the
    strip length shrinks to balance short loops across processors.
    Loops absent from the profile follow the static policy unchanged, so
    an empty profile compiles byte-identically to no profile. *)

open Vpc_il

(** Facts the symbolic range analysis proves about expressions at a loop
    header, as closures (this library stays independent of the analysis'
    representation). *)
type range_facts = {
  rf_interval : Stmt.t -> Expr.t -> int option * int option;
      (** sound bounds on an integer expression's value on entry to the
          given loop statement; [(None, None)] = unknown *)
  rf_divisible : Stmt.t -> Expr.t -> int -> bool;
      (** is the expression provably a multiple of the divisor? *)
}

(** What to do with one loop, resolved ahead of the static policy — the
    shape both the profile (PGO) and the autotuner ([--tune]) speak. *)
type pgo_choice = {
  keep_scalar : bool;      (** below break-even: leave the DO loop alone *)
  strip_parallel : bool;   (** spread vector strips over processors *)
  scalar_parallel : bool;  (** spread sequential groups over processors *)
  chosen_vlen : int;
}

type options = {
  vectorize : bool;
  parallelize : bool;
  vlen : int;             (** strip length; the paper uses 32 *)
  assume_noalias : bool;  (** pointer params get Fortran semantics *)
  fuse_strips : bool;
      (** singleton vector groups linked only by loop-independent
          dependences share one strip loop (one barrier) *)
  profile : Vpc_profile.Data.t option;  (** measured trip counts *)
  report : (string -> unit) option;     (** decision explanations *)
  vreuse : bool;
      (** the vector-register reuse pass runs downstream: price
          accumulator loops with the residency-aware traffic model *)
  why_scalar : (string -> unit) option;
      (** one line per loop left scalar, naming the unresolved alias
          pair with source locations, the rejecting statement, or the
          carried dependence cycle — including the symbolic distance
          whose range was too weak, when range analysis ran *)
  range : range_facts option;
      (** symbolic ranges: dependence testing works on symbolic
          distances and trip counts, and strips whose trip count is a
          proven multiple of the strip length drop their per-strip
          length guards (a constant remainder peels into one short
          epilogue vector) *)
  tune : (Stmt.t -> pgo_choice option) option;
      (** autotuned per-nest override, consulted before the profile:
          [Some choice] pins this loop's treatment (mode and strip
          length); [None] falls through to PGO then the static policy *)
}

val default_options : options

type stats = {
  mutable loops_examined : int;
  mutable loops_vectorized : int;
  mutable loops_parallelized : int;
  mutable stmts_vectorized : int;
  mutable loops_rejected_shape : int;       (** calls / control flow *)
  mutable loops_rejected_dependence : int;  (** carried cycles everywhere *)
  mutable short_vector_loops : int;         (** no strip loop needed *)
  mutable strip_loops_shared : int; (** strip loops holding >1 vector stmt *)
  mutable pgo_scalar_loops : int;   (** profile said: stay scalar *)
  mutable pgo_serial_strips : int;  (** profile said: drop do-parallel *)
  mutable pgo_strip_adjusted : int; (** profile picked a shorter strip *)
  mutable strip_guards_dropped : int;
      (** range analysis proved every strip full: no length clamp *)
}

val new_stats : unit -> stats
val run : ?options:options -> ?stats:stats -> Prog.t -> Func.t -> bool
