(** Bounded coordinate descent over the joint per-nest configuration
    space.  The search is parameterized by an [eval] closure (compile +
    simulate, owned by the caller) and is deterministic: dimensions are
    swept in list order, a candidate replaces the incumbent only when
    strictly cheaper, and every configuration is evaluated at most once
    (memoized by its canonical field list). *)

type stats = {
  mutable evaluated : int;      (** eval calls that actually ran *)
  mutable pruned : int;         (** candidates skipped by [prune] *)
  mutable rejected : int;       (** evals returning [None] *)
  mutable sim_seconds : float;  (** wall time spent inside [eval] *)
}

val new_stats : unit -> stats

(** One search dimension: a name (for reports) and the candidate values
    as setters applied to the incumbent configuration. *)
type dim = { dim_name : string; values : (Config.t -> Config.t) list }

(** [search ~dims ~eval ~init ~init_cycles ()] returns the cycle-minimal
    configuration strictly cheaper than [init_cycles], or [None] when
    nothing beats the static default.  [eval] returns [None] for
    candidates that must be discarded (illegal, or output differed from
    the reference).  [prune cfg = true] skips evaluation entirely. *)
val search :
  ?stats:stats ->
  ?prune:(Config.t -> bool) ->
  dims:dim list ->
  eval:(Config.t -> int option) ->
  init:Config.t ->
  init_cycles:int ->
  unit ->
  (Config.t * int) option
