(** One loop nest's tuned optimization configuration: the point in the
    joint per-nest search space that [titancc --tune] found cycle-minimal
    on the Titan simulator.  Every field is an override; [None] (or [[]])
    means "whatever the static pipeline decides", so the all-default
    configuration compiles byte-identically to an untuned build.

    Configurations are stored location-free (see {!Fingerprint}) as
    sorted [key=value] fields, so the codec below must stay stable: it is
    what the tuned-profile store persists and what the compile daemon
    digests into its cache keys. *)

(** How the vectorizer should treat the nest's loops. *)
type mode =
  | Scalar    (** leave the serial DO loop alone *)
  | Vector    (** vectorize, serial strips (no [do parallel]) *)
  | Parallel  (** vectorize and spread strips over processors *)

type t = {
  mode : mode option;
  strip : int option;        (** strip length when vectorized *)
  interchange : bool option; (** consider reordering the nest's levels *)
  fuse : bool option;        (** consider fusing with an adjacent nest *)
  vreuse : bool option;      (** vector-register reuse inside the nest *)
  doacross : bool option;    (** post/wait pipelining of the nest *)
  inline_calls : (string * bool) list;
      (** callee name -> expand at the nest's call sites of that callee
          (sorted by name; absent callees follow the static policy) *)
}

(** All-default: every decision left to the static pipeline. *)
val default : t

val is_default : t -> bool
val equal : t -> t -> bool

(** Canonical [key=value] field list, sorted by key, defaults omitted —
    the persisted form.  [of_fields] inverts it and rejects unknown keys
    or malformed values. *)
val to_fields : t -> (string * string) list

val of_fields : (string * string) list -> t

(** One-line rendering for [\[tune\]] report lines, e.g.
    ["mode=vector strip=16 fuse=off"]; ["default"] for {!default}. *)
val to_string : t -> string
