(* Location-free loop-nest fingerprints.

   The canonical shape string enumerates what the optimizer's decisions
   can actually depend on — depth, trips, strides, dependences, op mix —
   and nothing tied to a position in the file: no source locations, no
   statement ids, and variable ids replaced by first-appearance ordinals
   (so renaming every variable, or inserting code before the nest, leaves
   the digest unchanged).  Two nests with equal digests are interchange-
   able as far as the tuner's search space is concerned, which is exactly
   the license [--tune-use] needs to replay a cached winner. *)

open Vpc_il
module Cost = Vpc_titan.Cost
module Subscript = Vpc_dependence.Subscript
module Graph = Vpc_dependence.Graph

type nest = {
  loc : Vpc_support.Loc.t;
  fp : string;
  depth : int;
  loop_locs : Vpc_support.Loc.t list;
  calls : (Vpc_support.Loc.t * string) list;
  trips : int option list;
  weight : int;
}

(* ------------------------------------------------------------------ *)
(* Canonical rendering with alpha-normalized variables                 *)
(* ------------------------------------------------------------------ *)

type ctx = { buf : Buffer.t; ids : (int, int) Hashtbl.t }

let norm_id ctx id =
  match Hashtbl.find_opt ctx.ids id with
  | Some k -> k
  | None ->
      let k = Hashtbl.length ctx.ids in
      Hashtbl.replace ctx.ids id k;
      k

let add ctx s = Buffer.add_string ctx.buf s

let binop_name : Expr.binop -> string = function
  | Expr.Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
  | Rem -> "rem" | Shl -> "shl" | Shr -> "shr" | Band -> "band"
  | Bor -> "bor" | Bxor -> "bxor" | Eq -> "eq" | Ne -> "ne" | Lt -> "lt"
  | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let unop_name : Expr.unop -> string = function
  | Expr.Neg -> "neg" | Lognot -> "lognot" | Bitnot -> "bitnot"

let rec render_expr ctx (e : Expr.t) =
  match e.Expr.desc with
  | Expr.Const_int n -> add ctx (string_of_int n)
  | Expr.Const_float f -> add ctx (Printf.sprintf "%h" f)
  | Expr.Var id -> add ctx (Printf.sprintf "v%d" (norm_id ctx id))
  | Expr.Addr_of id -> add ctx (Printf.sprintf "&v%d" (norm_id ctx id))
  | Expr.Load a ->
      add ctx "(load ";
      render_expr ctx a;
      add ctx ")"
  | Expr.Binop (op, a, b) ->
      add ctx ("(" ^ binop_name op ^ " ");
      render_expr ctx a;
      add ctx " ";
      render_expr ctx b;
      add ctx ")"
  | Expr.Unop (op, a) ->
      add ctx ("(" ^ unop_name op ^ " ");
      render_expr ctx a;
      add ctx ")"
  | Expr.Cast (ty, a) ->
      add ctx ("(cast " ^ Ty.to_string ty ^ " ");
      render_expr ctx a;
      add ctx ")"

(* ------------------------------------------------------------------ *)
(* Nest discovery                                                      *)
(* ------------------------------------------------------------------ *)

(* The nest spine: starting at an outermost DO loop, descend while the
   body holds exactly one DO loop (ignoring Nops) — the form interchange
   works on.  Returns the per-level loops, outermost first. *)
let spine (d0 : Stmt.do_loop) : Stmt.do_loop list * Stmt.t list =
  let live (d : Stmt.do_loop) =
    List.filter
      (fun (s : Stmt.t) -> match s.Stmt.desc with Stmt.Nop -> false | _ -> true)
      d.Stmt.body
  in
  let rec go acc (d : Stmt.do_loop) =
    match live d with
    | [ { Stmt.desc = Stmt.Do_loop inner; _ } ] -> go (d :: acc) inner
    | _ -> (List.rev (d :: acc), d.Stmt.body)
  in
  go [] d0

(* All direct call sites anywhere under the statements. *)
let calls_of (stmts : Stmt.t list) =
  let acc = ref [] in
  Stmt.iter_list
    (fun (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Call (_, Stmt.Direct callee, _) ->
          acc := (s.Stmt.loc, callee) :: !acc
      | _ -> ())
    stmts;
  List.rev !acc

(* Operation mix over every statement of the nest: binop/unop counts,
   loads, stores, calls by callee. *)
let op_mix ctx (stmts : Stmt.t list) =
  let tbl = Hashtbl.create 16 in
  let bump k =
    Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0)
  in
  let rec expr (e : Expr.t) =
    (match e.Expr.desc with
    | Expr.Binop (op, _, _) -> bump (binop_name op)
    | Expr.Unop (op, _) -> bump (unop_name op)
    | Expr.Load _ -> bump "load"
    | _ -> ());
    match e.Expr.desc with
    | Expr.Load a | Expr.Unop (_, a) | Expr.Cast (_, a) -> expr a
    | Expr.Binop (_, a, b) ->
        expr a;
        expr b
    | _ -> ()
  in
  Stmt.iter_list
    (fun (s : Stmt.t) ->
      (match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lmem _, _) -> bump "store"
      | Stmt.Call (_, Stmt.Direct callee, _) -> bump ("call " ^ callee)
      | Stmt.Call (_, Stmt.Indirect _, _) -> bump "call *"
      | _ -> ());
      List.iter expr (Stmt.shallow_exprs s))
    stmts;
  let entries = Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] in
  List.iter
    (fun (k, n) -> add ctx (Printf.sprintf "(%s %d)" k n))
    (List.sort compare entries)

(* ------------------------------------------------------------------ *)
(* Shape rendering                                                     *)
(* ------------------------------------------------------------------ *)

let render_nest ctx (levels : Stmt.do_loop list) (innermost_body : Stmt.t list)
    (trips : int option list) =
  add ctx (Printf.sprintf "(depth %d)" (List.length levels));
  add ctx "(trips";
  List.iter
    (fun t ->
      add ctx
        (match t with Some n -> Printf.sprintf " %d" n | None -> " ?"))
    trips;
  add ctx ")";
  let innermost = List.nth levels (List.length levels - 1) in
  (* loop-invariance for the subscript decomposition: no loads, and no
     variable assigned inside the innermost body or used as an index *)
  let defined = Hashtbl.create 8 in
  Stmt.iter_list
    (fun s ->
      match Stmt.defined_var s with
      | Some v -> Hashtbl.replace defined v ()
      | None -> ())
    innermost_body;
  let indices = List.map (fun (d : Stmt.do_loop) -> d.Stmt.index) levels in
  let invariant (e : Expr.t) =
    (not (Expr.contains_load e))
    && List.for_all
         (fun v -> (not (Hashtbl.mem defined v)) && not (List.mem v indices))
         (Expr.read_vars e)
  in
  (* subscript strides: every affine reference of the innermost body,
     with its per-level coefficients and alpha-normalized base *)
  (match
     Subscript.references ~index:innermost.Stmt.index ~invariant innermost_body
   with
  | None -> add ctx "(refs unanalyzable)"
  | Some refs ->
      add ctx "(refs";
      List.iter
        (fun (r : Subscript.reference) ->
          add ctx
            (Printf.sprintf "(%d %s %s "
               r.Subscript.ref_pos
               (match r.Subscript.kind with
               | Subscript.Read -> "r"
               | Subscript.Write -> "w")
               (Ty.to_string r.Subscript.elt));
          (match
             Subscript.affine_multi ~indices
               ~invariant:(fun e ->
                 invariant e
                 && List.for_all
                      (fun i -> not (List.mem i (Expr.read_vars e)))
                      indices)
               r.Subscript.addr
           with
          | Some m ->
              add ctx "(coeffs";
              Array.iter
                (fun c -> add ctx (Printf.sprintf " %d" c))
                m.Subscript.mcoeffs;
              add ctx ") ";
              render_expr ctx m.Subscript.mbase
          | None -> add ctx "nonaffine");
          add ctx ")")
        refs;
      add ctx ")";
      (* dependence summary of the innermost body: the carried /
         independent edge structure the vectorizer will see *)
      let trip = List.nth trips (List.length trips - 1) in
      let g =
        Graph.build ~trip innermost_body ~index:innermost.Stmt.index ~invariant
      in
      if g.Graph.analyzable then begin
        add ctx "(deps";
        let edges =
          List.sort compare
            (List.map
               (fun (e : Graph.edge) ->
                 ( e.Graph.src,
                   e.Graph.dst,
                   (match e.Graph.kind with
                   | Graph.Flow -> "f"
                   | Graph.Anti -> "a"
                   | Graph.Output -> "o"),
                   e.Graph.carried,
                   e.Graph.distance,
                   e.Graph.through_memory ))
               g.Graph.edges)
        in
        List.iter
          (fun (src, dst, kind, carried, dist, mem) ->
            add ctx
              (Printf.sprintf "(%d %d %s%s%s %s)" src dst kind
                 (if carried then "c" else "i")
                 (match dist with Some d -> string_of_int d | None -> "?")
                 (if mem then "m" else "s")))
          edges;
        add ctx ")"
      end
      else add ctx "(deps unanalyzable)")

let trip_of (d : Stmt.do_loop) : int option =
  match
    (Expr.const_int_val d.Stmt.lo, Expr.const_int_val d.Stmt.hi,
     Expr.const_int_val d.Stmt.step)
  with
  | Some lo, Some hi, Some step when step <> 0 ->
      let n = if step > 0 then (hi - lo) / step + 1 else (lo - hi) / -step + 1 in
      Some (max 0 n)
  | _ -> None

let nest_of_loop (s : Stmt.t) (d0 : Stmt.do_loop) : nest =
  let levels, innermost_body = spine d0 in
  let trips = List.map trip_of levels in
  (* loop_locs: the outermost loc is the statement's; inner levels carry
     their own statement locs, recovered by walking the spine again *)
  let rec level_locs acc (st : Stmt.t) =
    match st.Stmt.desc with
    | Stmt.Do_loop d -> (
        let live =
          List.filter
            (fun (x : Stmt.t) ->
              match x.Stmt.desc with Stmt.Nop -> false | _ -> true)
            d.Stmt.body
        in
        match live with
        | [ ({ Stmt.desc = Stmt.Do_loop _; _ } as inner) ] ->
            level_locs (st.Stmt.loc :: acc) inner
        | _ -> List.rev (st.Stmt.loc :: acc))
    | _ -> List.rev acc
  in
  let loop_locs = level_locs [] s in
  let ctx = { buf = Buffer.create 512; ids = Hashtbl.create 16 } in
  render_nest ctx levels innermost_body trips;
  (* whole-nest op mix (render_nest covered shape; mix spans all levels) *)
  add ctx "(mix";
  op_mix ctx d0.Stmt.body;
  add ctx ")";
  let fp = Digest.to_hex (Digest.string (Buffer.contents ctx.buf)) in
  let shape = Cost.shape_of_stmts innermost_body in
  let body_cost = max 1 (shape.Cost.mem_refs + shape.Cost.flops + shape.Cost.iops) in
  let weight =
    List.fold_left
      (fun acc t -> acc * Option.value t ~default:Cost.default_trip)
      body_cost trips
  in
  {
    loc = s.Stmt.loc;
    fp;
    depth = List.length levels;
    loop_locs;
    calls = calls_of [ s ];
    trips;
    weight = max 1 weight;
  }

let nests_of_func _prog (func : Func.t) : nest list =
  let acc = ref [] in
  let rec walk (stmts : Stmt.t list) =
    List.iter
      (fun (s : Stmt.t) ->
        match s.Stmt.desc with
        | Stmt.Do_loop d -> acc := nest_of_loop s d :: !acc
        | Stmt.If (_, a, b) ->
            walk a;
            walk b
        | Stmt.While (_, _, body) -> walk body
        | _ -> ())
      stmts
  in
  walk func.Func.body;
  List.rev !acc

let nests prog =
  List.concat_map (fun f -> nests_of_func prog f) prog.Prog.funcs
