(* The candidate search: bounded coordinate descent over the joint
   per-nest configuration space.

   The driver is deliberately ignorant of how candidates are compiled or
   scored — the [eval] closure owns that (the core library wires it to a
   full [Vpc.optimize] + Titan simulation; tests wire it to a toy
   function).  What lives here is the search discipline:

     - dimensions are swept in a fixed order, one value at a time, with
       all other coordinates held at the incumbent;
     - a candidate replaces the incumbent only when *strictly* cheaper,
       so ties break deterministically toward the static default and an
       all-tied space returns [None] (= keep the untuned compile);
     - every evaluated configuration is memoized by its canonical field
       list, so re-visiting a point during a later sweep is free;
     - an optional [prune] predicate (cost-model pricing) skips
       candidates that cannot plausibly win, and the stats record how
       many evaluations it saved. *)

type stats = {
  mutable evaluated : int;      (* eval calls that actually ran *)
  mutable pruned : int;         (* candidates skipped by [prune] *)
  mutable rejected : int;       (* evals that returned None (illegal /
                                   output mismatch) *)
  mutable sim_seconds : float;  (* wall time inside [eval] *)
}

let new_stats () = { evaluated = 0; pruned = 0; rejected = 0; sim_seconds = 0.0 }

type dim = {
  dim_name : string;
  values : (Config.t -> Config.t) list;
      (* each value is a setter applied to the incumbent *)
}

(* Two passes over the dimension list: the second catches interactions
   the first sweep's order hid (e.g. a strip length that only wins once
   the nest is fused).  More passes yield diminishing returns against a
   budget that is real simulator time. *)
let max_sweeps = 2

let search ?(stats = new_stats ()) ?prune ~(dims : dim list)
    ~(eval : Config.t -> int option) ~(init : Config.t) ~(init_cycles : int)
    () : (Config.t * int) option =
  let memo = Hashtbl.create 32 in
  let evaluate cfg =
    let key = Config.to_fields cfg in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
        let r =
          match prune with
          | Some p when p cfg ->
              stats.pruned <- stats.pruned + 1;
              None
          | _ ->
              let t0 = Unix.gettimeofday () in
              let r = eval cfg in
              stats.sim_seconds <-
                stats.sim_seconds +. (Unix.gettimeofday () -. t0);
              stats.evaluated <- stats.evaluated + 1;
              if r = None then stats.rejected <- stats.rejected + 1;
              r
        in
        Hashtbl.replace memo key r;
        r
  in
  Hashtbl.replace memo (Config.to_fields init) (Some init_cycles);
  let best = ref init and best_cycles = ref init_cycles in
  for _sweep = 1 to max_sweeps do
    List.iter
      (fun dim ->
        List.iter
          (fun set ->
            let cand = set !best in
            if not (Config.equal cand !best) then
              match evaluate cand with
              | Some c when c < !best_cycles ->
                  best := cand;
                  best_cycles := c
              | _ -> ())
          dim.values)
      dims
  done;
  if Config.equal !best init then None else Some (!best, !best_cycles)
