(** Location-free loop-nest fingerprints: the key under which tuned
    configurations are stored and replayed.  The fingerprint digests the
    nest's *shape* — nest depth, per-level trip counts, subscript
    strides, a dependence summary of the innermost body, and the body's
    operation mix — with variable ids alpha-normalized by first
    appearance, so it survives renames and edits elsewhere in the file
    (which shift source locations) while still separating nests whose
    best configuration could genuinely differ. *)

open Vpc_il

(** One outermost DO-loop nest, as the scout compile saw it. *)
type nest = {
  loc : Vpc_support.Loc.t;       (** the outermost loop header *)
  fp : string;                   (** hex digest of the canonical shape *)
  depth : int;                   (** nesting levels along the spine *)
  loop_locs : Vpc_support.Loc.t list;
      (** headers of every level, outermost first *)
  calls : (Vpc_support.Loc.t * string) list;
      (** direct call sites anywhere inside the nest (site, callee) *)
  trips : int option list;       (** constant trip per level, outermost
                                     first; [None] = symbolic *)
  weight : int;                  (** static cycle estimate: trip product
                                     times body cost — the ranking key
                                     when no profile is available *)
}

(** All outermost DO-loop nests of the function, in body order.  Pure
    reader: the function is not modified. *)
val nests_of_func : Prog.t -> Func.t -> nest list

(** Every function's nests, in program order. *)
val nests : Prog.t -> nest list
