(* A tuned per-nest configuration and its stable textual codec.  The
   field list is the persisted form: sorted, defaults omitted, values
   restricted to a tiny grammar (mode names, decimal strips, on/off) so
   the store stays diffable and the daemon can digest it. *)

type mode = Scalar | Vector | Parallel

type t = {
  mode : mode option;
  strip : int option;
  interchange : bool option;
  fuse : bool option;
  vreuse : bool option;
  doacross : bool option;
  inline_calls : (string * bool) list;
}

let default =
  {
    mode = None;
    strip = None;
    interchange = None;
    fuse = None;
    vreuse = None;
    doacross = None;
    inline_calls = [];
  }

let is_default t = t = default
let equal (a : t) (b : t) = a = b

let mode_name = function
  | Scalar -> "scalar"
  | Vector -> "vector"
  | Parallel -> "parallel"

let mode_of_name = function
  | "scalar" -> Scalar
  | "vector" -> Vector
  | "parallel" -> Parallel
  | s -> invalid_arg ("Tune.Config: bad mode " ^ s)

let onoff = function true -> "on" | false -> "off"

let bool_of_onoff = function
  | "on" -> true
  | "off" -> false
  | s -> invalid_arg ("Tune.Config: bad toggle " ^ s)

let to_fields t =
  let opt key render = function [] -> [] | [ v ] -> [ (key, render v) ] | _ -> [] in
  let fields =
    opt "mode" mode_name (Option.to_list t.mode)
    @ opt "strip" string_of_int (Option.to_list t.strip)
    @ opt "interchange" onoff (Option.to_list t.interchange)
    @ opt "fuse" onoff (Option.to_list t.fuse)
    @ opt "vreuse" onoff (Option.to_list t.vreuse)
    @ opt "doacross" onoff (Option.to_list t.doacross)
    @ List.map
        (fun (callee, b) -> ("inline:" ^ callee, onoff b))
        (List.sort compare t.inline_calls)
  in
  List.sort compare fields

let of_fields fields =
  List.fold_left
    (fun acc (key, v) ->
      match key with
      | "mode" -> { acc with mode = Some (mode_of_name v) }
      | "strip" -> (
          match int_of_string_opt v with
          | Some n when n >= 1 -> { acc with strip = Some n }
          | _ -> invalid_arg ("Tune.Config: bad strip " ^ v))
      | "interchange" -> { acc with interchange = Some (bool_of_onoff v) }
      | "fuse" -> { acc with fuse = Some (bool_of_onoff v) }
      | "vreuse" -> { acc with vreuse = Some (bool_of_onoff v) }
      | "doacross" -> { acc with doacross = Some (bool_of_onoff v) }
      | _ ->
          let pfx = "inline:" in
          let pl = String.length pfx in
          if String.length key > pl && String.sub key 0 pl = pfx then
            let callee = String.sub key pl (String.length key - pl) in
            {
              acc with
              inline_calls =
                List.sort compare
                  ((callee, bool_of_onoff v)
                  :: List.remove_assoc callee acc.inline_calls);
            }
          else invalid_arg ("Tune.Config: unknown field " ^ key))
    default fields

let to_string t =
  match to_fields t with
  | [] -> "default"
  | fields ->
      String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fields)
