(* A profile key names a source construct — a loop header or a call
   site — by its source position.  Source positions are the one identity
   that survives the whole pipeline: inlining clones statements with
   fresh ids but keeps their locations, and while→DO conversion rewrites
   a statement in place.  Compiler-generated statements (dummy location)
   are never profiled. *)

open Vpc_support

type t = {
  file : string;
  line : int;  (* 1-based *)
  col : int;   (* 1-based *)
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let equal a b = compare a b = 0

let of_loc (loc : Loc.t) : t option =
  if Loc.is_dummy loc then None
  else
    Some
      {
        file = loc.Loc.file;
        line = loc.Loc.start_pos.Loc.line;
        col = loc.Loc.start_pos.Loc.col;
      }

let to_string k = Printf.sprintf "%s:%d:%d" k.file k.line k.col
let pp ppf k = Fmt.string ppf (to_string k)

let to_sexp k =
  Sexp.list [ Sexp.atom k.file; Sexp.int k.line; Sexp.int k.col ]

let of_sexp (s : Sexp.t) : t =
  match s with
  | Sexp.List [ f; l; c ] ->
      { file = Sexp.as_atom f; line = Sexp.as_int l; col = Sexp.as_int c }
  | _ -> raise (Sexp.Parse_error "malformed profile key")

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
