(* Immutable profile data: what a run of the instrumented simulator
   measured, keyed by source position (see [Key]).

   The serialized form follows the §7 procedure catalogs: a pointer-free
   s-expression with a versioned header, printed canonically (maps are
   sorted by key) so that [of_string] ∘ [to_string] is the identity and
   equal profiles print byte-identically.  Profiles from separate runs
   combine with [merge], which is commutative and associative. *)

open Vpc_support

let version = 1

type loop = {
  entries : int;            (* times control reached the loop header *)
  iters : int;              (* total iterations across all entries *)
  cycles : int;             (* attributed cycles, inclusive of the body *)
  hist : (int * int) list;  (* trip count -> completed entries, sorted *)
}

type call = {
  callee : string;
  count : int;    (* times the call executed *)
  cycles : int;   (* attributed cycles, inclusive of the callee *)
}

type t = {
  procs : int;     (* processors of the measuring run *)
  sched : string;  (* scheduling model of the measuring run *)
  loops : loop Key.Map.t;
  calls : call Key.Map.t;
}

let empty =
  { procs = 1; sched = "full"; loops = Key.Map.empty; calls = Key.Map.empty }

let is_empty t = Key.Map.is_empty t.loops && Key.Map.is_empty t.calls

let find_loop t k = Key.Map.find_opt k t.loops
let find_call t k = Key.Map.find_opt k t.calls

(* Mean trip count of a loop, rounded to nearest; [None] when the loop
   was never entered (measured cold — distinct from absent data). *)
let mean_trips (l : loop) : int option =
  if l.entries <= 0 then None
  else Some (((2 * l.iters) + l.entries) / (2 * l.entries))

(* ----------------------------------------------------------------- *)
(* Merge                                                             *)
(* ----------------------------------------------------------------- *)

let merge_hist a b =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (t, n) ->
      Hashtbl.replace tbl t (n + Option.value (Hashtbl.find_opt tbl t) ~default:0))
    (a @ b);
  Hashtbl.fold (fun t n acc -> (t, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let merge_loop a b =
  {
    entries = a.entries + b.entries;
    iters = a.iters + b.iters;
    cycles = a.cycles + b.cycles;
    hist = merge_hist a.hist b.hist;
  }

let merge_call a b =
  {
    (* same key, same source call — but be total for arbitrary inputs *)
    callee = (if String.compare a.callee b.callee >= 0 then a.callee else b.callee);
    count = a.count + b.count;
    cycles = a.cycles + b.cycles;
  }

let merge a b =
  {
    procs = max a.procs b.procs;
    sched = (if String.compare a.sched b.sched >= 0 then a.sched else b.sched);
    loops = Key.Map.union (fun _ x y -> Some (merge_loop x y)) a.loops b.loops;
    calls = Key.Map.union (fun _ x y -> Some (merge_call x y)) a.calls b.calls;
  }

let equal a b =
  a.procs = b.procs && a.sched = b.sched
  && Key.Map.equal
       (fun (x : loop) (y : loop) ->
         x.entries = y.entries && x.iters = y.iters && x.cycles = y.cycles
         && x.hist = y.hist)
       a.loops b.loops
  && Key.Map.equal
       (fun (x : call) (y : call) ->
         x.callee = y.callee && x.count = y.count && x.cycles = y.cycles)
       a.calls b.calls

(* ----------------------------------------------------------------- *)
(* Serialization                                                     *)
(* ----------------------------------------------------------------- *)

let to_sexp t =
  let loop_sexp (k, (l : loop)) =
    Sexp.list
      [
        Key.to_sexp k;
        Sexp.int l.entries;
        Sexp.int l.iters;
        Sexp.int l.cycles;
        Sexp.list
          (List.map (fun (trip, n) -> Sexp.list [ Sexp.int trip; Sexp.int n ]) l.hist);
      ]
  in
  let call_sexp (k, (c : call)) =
    Sexp.list
      [ Key.to_sexp k; Sexp.atom c.callee; Sexp.int c.count; Sexp.int c.cycles ]
  in
  Sexp.list
    [
      Sexp.atom "vpc-profile";
      Sexp.list [ Sexp.atom "version"; Sexp.int version ];
      Sexp.list [ Sexp.atom "procs"; Sexp.int t.procs ];
      Sexp.list [ Sexp.atom "sched"; Sexp.atom t.sched ];
      Sexp.list
        (Sexp.atom "loops" :: List.map loop_sexp (Key.Map.bindings t.loops));
      Sexp.list
        (Sexp.atom "calls" :: List.map call_sexp (Key.Map.bindings t.calls));
    ]

let malformed what = raise (Sexp.Parse_error ("malformed profile: " ^ what))

let of_sexp (s : Sexp.t) : t =
  match s with
  | Sexp.List
      (Sexp.Atom "vpc-profile"
      :: Sexp.List [ Sexp.Atom "version"; v ]
      :: rest) ->
      let v = Sexp.as_int v in
      if v <> version then
        malformed (Printf.sprintf "unsupported version %d (expected %d)" v version);
      let procs = ref 1 and sched = ref "full" in
      let loops = ref Key.Map.empty and calls = ref Key.Map.empty in
      List.iter
        (fun field ->
          match field with
          | Sexp.List [ Sexp.Atom "procs"; n ] -> procs := Sexp.as_int n
          | Sexp.List [ Sexp.Atom "sched"; s ] -> sched := Sexp.as_atom s
          | Sexp.List (Sexp.Atom "loops" :: entries) ->
              List.iter
                (fun e ->
                  match e with
                  | Sexp.List [ k; entries; iters; cycles; Sexp.List hist ] ->
                      let hist =
                        List.map
                          (function
                            | Sexp.List [ t; n ] -> (Sexp.as_int t, Sexp.as_int n)
                            | _ -> malformed "histogram bin")
                          hist
                      in
                      loops :=
                        Key.Map.add (Key.of_sexp k)
                          {
                            entries = Sexp.as_int entries;
                            iters = Sexp.as_int iters;
                            cycles = Sexp.as_int cycles;
                            hist;
                          }
                          !loops
                  | _ -> malformed "loop record")
                entries
          | Sexp.List (Sexp.Atom "calls" :: entries) ->
              List.iter
                (fun e ->
                  match e with
                  | Sexp.List [ k; callee; count; cycles ] ->
                      calls :=
                        Key.Map.add (Key.of_sexp k)
                          {
                            callee = Sexp.as_atom callee;
                            count = Sexp.as_int count;
                            cycles = Sexp.as_int cycles;
                          }
                          !calls
                  | _ -> malformed "call record")
                entries
          | _ -> malformed "unknown field")
        rest;
      { procs = !procs; sched = !sched; loops = !loops; calls = !calls }
  | _ -> malformed "missing vpc-profile header"

let to_string t = Sexp.to_string (to_sexp t) ^ "\n"
let of_string s = of_sexp (Sexp.of_string s)

let save t path =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
