(* The tuned-configuration store: winners found by [titancc --tune],
   keyed by the location-free loop-nest fingerprint, replayed by
   [--tune-use] without searching.

   The configuration itself is carried as opaque sorted [key=value]
   fields (the codec lives in the tune library; this store neither
   parses nor interprets them), so the store's format survives new
   search dimensions unchanged.  Records are versioned with a caller-
   supplied [stamp] (a tuning-run sequence number or wall-clock second):
   when two stores disagree about a fingerprint, {!merge} keeps the
   newer record, breaking stamp ties toward the lower cycle count and
   then lexicographically — commutative, associative, deterministic.

   The serialized form follows the profile store: a pointer-free
   s-expression with a versioned header, records sorted by fingerprint,
   printed canonically so equal stores print byte-identically. *)

open Vpc_support

let version = 1

type record = {
  fp : string;            (* hex fingerprint of the loop nest *)
  stamp : int;            (* tuning-run version; newer wins on merge *)
  cycles : int;           (* measured cycles with this configuration *)
  static_cycles : int;    (* measured cycles of the static default *)
  fields : (string * string) list;  (* sorted config codec *)
}

type t = { records : record list }  (* sorted by fp, unique *)

let empty = { records = [] }
let is_empty t = t.records = []
let find t fp = List.find_opt (fun r -> r.fp = fp) t.records

(* The record that survives a conflict: newer stamp, then fewer cycles,
   then lexicographically smaller fields. *)
let better (a : record) (b : record) : record =
  if a.stamp <> b.stamp then if a.stamp > b.stamp then a else b
  else if a.cycles <> b.cycles then if a.cycles < b.cycles then a else b
  else if a.fields <= b.fields then a
  else b

let add t (r : record) =
  let r = { r with fields = List.sort compare r.fields } in
  let merged, rest =
    match find t r.fp with
    | Some old -> (better r old, List.filter (fun x -> x.fp <> r.fp) t.records)
    | None -> (r, t.records)
  in
  { records = List.sort (fun a b -> compare a.fp b.fp) (merged :: rest) }

let merge a b = List.fold_left add a b.records

let equal (a : t) (b : t) = a.records = b.records

let to_sexp t =
  let record_sexp (r : record) =
    Sexp.list
      [
        Sexp.atom r.fp;
        Sexp.int r.stamp;
        Sexp.int r.cycles;
        Sexp.int r.static_cycles;
        Sexp.list
          (List.map
             (fun (k, v) -> Sexp.list [ Sexp.atom k; Sexp.atom v ])
             r.fields);
      ]
  in
  Sexp.list
    [
      Sexp.atom "vpc-tuned";
      Sexp.list [ Sexp.atom "version"; Sexp.int version ];
      Sexp.list (Sexp.atom "records" :: List.map record_sexp t.records);
    ]

let malformed what = raise (Sexp.Parse_error ("malformed tuned store: " ^ what))

let of_sexp (s : Sexp.t) : t =
  match s with
  | Sexp.List
      (Sexp.Atom "vpc-tuned" :: Sexp.List [ Sexp.Atom "version"; v ] :: rest)
    ->
      let v = Sexp.as_int v in
      if v <> version then
        malformed
          (Printf.sprintf "unsupported version %d (expected %d)" v version);
      let acc = ref empty in
      List.iter
        (fun field ->
          match field with
          | Sexp.List (Sexp.Atom "records" :: entries) ->
              List.iter
                (fun e ->
                  match e with
                  | Sexp.List
                      [ fp; stamp; cycles; static_cycles; Sexp.List fields ] ->
                      let fields =
                        List.map
                          (function
                            | Sexp.List [ k; v ] ->
                                (Sexp.as_atom k, Sexp.as_atom v)
                            | _ -> malformed "config field")
                          fields
                      in
                      acc :=
                        add !acc
                          {
                            fp = Sexp.as_atom fp;
                            stamp = Sexp.as_int stamp;
                            cycles = Sexp.as_int cycles;
                            static_cycles = Sexp.as_int static_cycles;
                            fields;
                          }
                  | _ -> malformed "record")
                entries
          | _ -> malformed "unknown field")
        rest;
      !acc
  | _ -> malformed "missing vpc-tuned header"

let to_string t = Sexp.to_string (to_sexp t) ^ "\n"
let of_string s = of_sexp (Sexp.of_string s)

let save t path =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(* Missing file = never tuned: the empty store, under which compilation
   is byte-identical to an untuned build. *)
let load_or_empty path = if Sys.file_exists path then load path else empty
