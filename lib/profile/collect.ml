(* The mutable run-time collector the simulator drives.

   Every instrumented site is declared up front (before execution) so
   that a site the run never reaches still appears in the data with zero
   counts: "measured cold" is deliberately distinct from "no data", and
   the feedback passes treat them differently (a cold call site is not
   worth inlining; an unmeasured one falls back to the static policy).

   Loop and call events nest, so attribution uses stacks.  The stacks
   are tolerant of abnormal exits (a [return] out of a loop body): stale
   entries are discarded when an enclosing site closes over them. *)

type loop_rec = {
  mutable l_entries : int;
  mutable l_iters : int;
  mutable l_cycles : int;
  l_hist : (int, int) Hashtbl.t;  (* trip count -> completed entries *)
}

type call_rec = {
  c_callee : string;
  mutable c_count : int;
  mutable c_cycles : int;
}

type loop_frame = {
  lf_key : Key.t;
  lf_enter_clock : int;
  mutable lf_iters : int;
}

type call_frame = { cf_key : Key.t; cf_enter_clock : int }

type t = {
  procs : int;
  sched : string;
  loops : (Key.t, loop_rec) Hashtbl.t;
  calls : (Key.t, call_rec) Hashtbl.t;
  mutable loop_stack : loop_frame list;
  mutable call_stack : call_frame list;
}

let create ~procs ~sched =
  {
    procs;
    sched;
    loops = Hashtbl.create 32;
    calls = Hashtbl.create 32;
    loop_stack = [];
    call_stack = [];
  }

let loop_rec t k =
  match Hashtbl.find_opt t.loops k with
  | Some r -> r
  | None ->
      let r = { l_entries = 0; l_iters = 0; l_cycles = 0; l_hist = Hashtbl.create 8 } in
      Hashtbl.replace t.loops k r;
      r

let call_rec t k ~callee =
  match Hashtbl.find_opt t.calls k with
  | Some r -> r
  | None ->
      let r = { c_callee = callee; c_count = 0; c_cycles = 0 } in
      Hashtbl.replace t.calls k r;
      r

let declare_loop t k = ignore (loop_rec t k)
let declare_call t k ~callee = ignore (call_rec t k ~callee)

let loop_enter t k ~clock =
  let r = loop_rec t k in
  r.l_entries <- r.l_entries + 1;
  t.loop_stack <- { lf_key = k; lf_enter_clock = clock; lf_iters = 0 } :: t.loop_stack

let loop_iter t k =
  match t.loop_stack with
  | top :: _ when Key.equal top.lf_key k -> top.lf_iters <- top.lf_iters + 1
  | _ -> (
      (* abnormal control flow left inner frames behind: discard them *)
      match List.find_opt (fun f -> Key.equal f.lf_key k) t.loop_stack with
      | Some f ->
          let rec drop = function
            | top :: rest when not (Key.equal top.lf_key k) -> drop rest
            | stack -> stack
          in
          t.loop_stack <- drop t.loop_stack;
          f.lf_iters <- f.lf_iters + 1
      | None -> ())

let loop_exit t k ~clock =
  if List.exists (fun f -> Key.equal f.lf_key k) t.loop_stack then begin
    let rec drop = function
      | top :: rest when not (Key.equal top.lf_key k) -> drop rest
      | stack -> stack
    in
    match drop t.loop_stack with
    | top :: rest ->
        t.loop_stack <- rest;
        let r = loop_rec t k in
        r.l_iters <- r.l_iters + top.lf_iters;
        r.l_cycles <- r.l_cycles + (clock - top.lf_enter_clock);
        Hashtbl.replace r.l_hist top.lf_iters
          (1 + Option.value (Hashtbl.find_opt r.l_hist top.lf_iters) ~default:0)
    | [] -> ()
  end

let call_begin t k ~callee ~clock =
  ignore (call_rec t k ~callee);
  t.call_stack <- { cf_key = k; cf_enter_clock = clock } :: t.call_stack

let call_end t k ~clock =
  match t.call_stack with
  | top :: rest when Key.equal top.cf_key k -> (
      t.call_stack <- rest;
      match Hashtbl.find_opt t.calls k with
      | Some r ->
          r.c_count <- r.c_count + 1;
          r.c_cycles <- r.c_cycles + (clock - top.cf_enter_clock)
      | None -> ())
  | _ -> ()  (* mismatched end after abnormal flow: drop the event *)

(* Freeze into immutable, canonically sorted data. *)
let data t : Data.t =
  let loops =
    Hashtbl.fold
      (fun k (r : loop_rec) acc ->
        let hist =
          Hashtbl.fold (fun trip n l -> (trip, n) :: l) r.l_hist []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        Key.Map.add k
          {
            Data.entries = r.l_entries;
            iters = r.l_iters;
            cycles = r.l_cycles;
            hist;
          }
          acc)
      t.loops Key.Map.empty
  in
  let calls =
    Hashtbl.fold
      (fun k (r : call_rec) acc ->
        Key.Map.add k
          { Data.callee = r.c_callee; count = r.c_count; cycles = r.c_cycles }
          acc)
      t.calls Key.Map.empty
  in
  { Data.procs = t.procs; sched = t.sched; loops; calls }
