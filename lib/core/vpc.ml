(* The public face of the compiler: options, the full pass pipeline in the
   paper's order, and compile-and-run entry points against both the IL
   interpreter (reference semantics) and the Titan simulator (timing).

   Pipeline (§5.2 fixes the placement: while→DO conversion runs right
   after use-def chains are available, before the phases that simplify DO
   loops):

     parse → sema → lower
       → inline (optional, catalogs + same file)
       → constant propagation + unreachable code (§8) → DCE
       → while→DO conversion (§5.2)
       → induction-variable substitution (§5.3)
       → constant propagation → DCE → unreachable postpass
       → vectorize / parallelize (Allen-Kennedy distribution, §9)
       → scalar replacement (§6) → strength reduction (§6)
       → final DCE *)

module Support = Vpc_support
module Il = Vpc_il
module Cfront = Vpc_cfront
module Analysis = Vpc_analysis
module Dependence = Vpc_dependence
module Transform = Vpc_transform
module Vectorize = Vpc_vectorize
module Inline = Vpc_inline
module Titan = Vpc_titan
module Profile = Vpc_profile
module Check = Vpc_check
module Pointsto = Vpc_pointsto
module Range = Vpc_range

type options = {
  inline : [ `None | `All | `Only of string list ];
  doacross : bool;             (* §10: parallelize pragma-marked list loops *)
  doacross_sync : bool;
      (* pipeline carried-dependence DO loops across processors with
         post/wait synchronization *)
  scalar_opt : bool;           (* constant propagation + DCE + unreachable *)
  while_conversion : bool;     (* §5.2 *)
  indvar_substitution : bool;  (* §5.3 *)
  vectorize : bool;
  parallelize : bool;
  interchange : bool;          (* §7: reorder nest levels by cost model *)
  fuse : bool;                 (* §7: merge adjacent conformable loops *)
  vreuse : bool;               (* vector-register reuse across strips *)
  vlen : int;
  assume_noalias : bool;       (* pointer params get Fortran semantics *)
  scalar_replacement : bool;   (* §6 *)
  strength_reduction : bool;   (* §6 *)
  pointsto : bool;
      (* interprocedural points-to + mod/ref analysis: resolves pointer
         aliases the canonical decomposition cannot, bounds call effects
         in the race checker, and ranks inline sites *)
  range : bool;
      (* interprocedural symbolic range + scalar-evolution analysis:
         dependence tests work on symbolic distances, strip loops with
         provable trip counts drop their length guards, and constant
         propagation folds branches decided by disjoint ranges *)
  catalogs : string list;      (* procedure databases to import (§7) *)
  dump : (string -> string -> unit) option;  (* stage name, IL text *)
  verify : Check.Verify.level; (* IL verifier / translation validator *)
  profile : Profile.Data.t option;
      (* measured profile feeding the inliner and vectorizer (PGO) *)
  report : (string -> unit) option;
      (* one line per profile-guided decision, with the cost estimates *)
  why_scalar : (string -> unit) option;
      (* one line per loop left scalar: the unresolved alias pair with
         source locations, the rejecting statement, or the cycle *)
}

(* -O0: the naive translation. *)
let o0 =
  {
    inline = `None;
    doacross = false;
    doacross_sync = false;
    scalar_opt = false;
    while_conversion = false;
    indvar_substitution = false;
    vectorize = false;
    parallelize = false;
    interchange = false;
    fuse = false;
    vreuse = false;
    vlen = 32;
    assume_noalias = false;
    scalar_replacement = false;
    strength_reduction = false;
    pointsto = false;
    range = false;
    catalogs = [];
    dump = None;
    verify = `Off;
    profile = None;
    report = None;
    why_scalar = None;
  }

(* -O1: classical scalar optimization. *)
let o1 =
  {
    o0 with
    scalar_opt = true;
    while_conversion = true;
    indvar_substitution = true;
    strength_reduction = true;
  }

(* -O2: vectorization and parallelization, no inlining. *)
let o2 =
  {
    o1 with
    vectorize = true;
    parallelize = true;
    scalar_replacement = true;
    doacross = true;
    doacross_sync = true;
    pointsto = true;
    range = true;
  }

(* -O3: everything, including automatic inlining and nest
   restructuring (interchange + fusion). *)
let o3 = { o2 with inline = `All; interchange = true; fuse = true; vreuse = true }

let default_options = o3

type stats = {
  while_to_do : Transform.While_to_do.stats;
  indvar : Transform.Indvar.stats;
  forward_sub : Transform.Forward_sub.stats;
  doacross : Transform.Doacross.stats;
  interchange : Transform.Interchange.stats;
  fuse : Transform.Fuse.stats;
  const_prop : Analysis.Const_prop.stats;
  dce : Analysis.Dce.stats;
  unreachable : Analysis.Unreachable.stats;
  vectorize : Vectorize.Vectorize.stats;
  vreuse : Transform.Vreuse.stats;
  inline : Inline.Inline.stats;
  scalar_replace : Transform.Scalar_replace.stats;
  strength_reduction : Transform.Strength_reduction.stats;
}

let new_stats () =
  {
    while_to_do = Transform.While_to_do.new_stats ();
    indvar = Transform.Indvar.new_stats ();
    forward_sub = Transform.Forward_sub.new_stats ();
    doacross = Transform.Doacross.new_stats ();
    interchange = Transform.Interchange.new_stats ();
    fuse = Transform.Fuse.new_stats ();
    const_prop = Analysis.Const_prop.new_stats ();
    dce = Analysis.Dce.new_stats ();
    unreachable = Analysis.Unreachable.new_stats ();
    vectorize = Vectorize.Vectorize.new_stats ();
    vreuse = Transform.Vreuse.new_stats ();
    inline = Inline.Inline.new_stats ();
    scalar_replace = Transform.Scalar_replace.new_stats ();
    strength_reduction = Transform.Strength_reduction.new_stats ();
  }

let dump_stage options prog stage =
  match options.dump with
  | Some f -> f stage (Il.Pp.prog_to_string prog)
  | None -> ()

(* Checkpoint after a whole-program pass: dump the IL and, at
   [`Each_stage], run the verifier over every function so the pass that
   broke an invariant is named in the diagnostic. *)
let after_prog_pass ?pointsto ?range options prog pass =
  dump_stage options prog pass;
  match options.verify with
  | `Each_stage ->
      Check.Verify.run ~assume_noalias:options.assume_noalias ?pointsto ?range
        ~pass prog
  | `Off | `Final -> ()

(* Checkpoint after a per-function pass. *)
let after_pass ?pointsto ?range options prog (f : Il.Func.t) pass =
  let stage = Printf.sprintf "%s(%s)" pass f.Il.Func.name in
  dump_stage options prog stage;
  match options.verify with
  | `Each_stage ->
      Check.Verify.run_func ~assume_noalias:options.assume_noalias ?pointsto
        ?range ~pass:stage prog f
  | `Off | `Final -> ()

(* Run the optimization pipeline in place.  [timer] buckets the wall
   time of each phase group for [--timings]. *)
let optimize ?(options = default_options) ?(stats = new_stats ()) ?timer
    (prog : Il.Prog.t) =
  let timed phase f =
    match timer with Some t -> Support.Timing.time t phase f | None -> f ()
  in
  timed "catalog-import" (fun () ->
      List.iter
        (fun file -> Inline.Catalog.import ~into:prog (Inline.Catalog.load file))
        options.catalogs);
  (* Whole-program points-to runs after catalog import so argument-to-
     parameter bindings at known call sites are visible.  The verdicts
     back the {!Dependence.Alias} oracle consulted wherever canonical
     decomposition gives up; the oracle is process-global state, so it is
     cleared on every exit path — a later compilation of a different
     program must not see this one's graph.  Inlining rewrites bodies
     wholesale, so the analysis is recomputed after it. *)
  let analyze_pointsto () =
    if options.pointsto then
      Some (timed "pointsto" (fun () -> Pointsto.Pointsto.analyze prog))
    else None
  in
  let pt = ref (analyze_pointsto ()) in
  (* Symbolic ranges follow the same lifecycle: whole-program parameter
     seeding up front (and again after inlining), per-function dataflow
     on demand — optimization passes renumber statements, so each
     consumer forces a fresh fenv over the function's current body. *)
  let analyze_range () =
    if options.range then
      Some (timed "range" (fun () -> Range.Range.analyze prog))
    else None
  in
  let rt = ref (analyze_range ()) in
  let install_oracle () =
    match !pt with
    | None -> ()
    | Some t ->
        Dependence.Alias.set_oracle (fun e1 e2 ->
            match Pointsto.Pointsto.verdict t e1 e2 with
            | Some `No_alias -> Some Dependence.Alias.No_alias
            | Some (`Must_alias d) -> Some (Dependence.Alias.Must_alias d)
            | None -> None)
  in
  install_oracle ();
  Fun.protect ~finally:Dependence.Alias.clear_oracle @@ fun () ->
  let after_prog_pass pass =
    after_prog_pass ?pointsto:!pt ?range:!rt options prog pass
  in
  let after_pass f pass =
    after_pass ?pointsto:!pt ?range:!rt options prog f pass
  in
  let inline_options only =
    {
      Inline.Inline.default_options with
      only;
      profile = options.profile;
      pointsto = !pt;
      report = options.report;
    }
  in
  (match options.inline with
  | `None -> ()
  | `All ->
      timed "inline" (fun () ->
          Inline.Inline.expand ~options:(inline_options None)
            ~stats:stats.inline prog);
      pt := analyze_pointsto ();
      rt := analyze_range ();
      install_oracle ();
      after_prog_pass "inline"
  | `Only names ->
      timed "inline" (fun () ->
          Inline.Inline.expand
            ~options:(inline_options (Some names))
            ~stats:stats.inline prog);
      pt := analyze_pointsto ();
      rt := analyze_range ();
      install_oracle ();
      after_prog_pass "inline");
  (* A lazy per-function dataflow over [f]'s body right now; [None]
     facts for statements the fenv does not know (fresh ids, or a stale
     body) keep every consumer conservative. *)
  let range_env_at f =
    match !rt with
    | None -> fun _ -> None
    | Some t ->
        let fe = lazy (Range.Range.analyze_func t prog f) in
        fun (s : Il.Stmt.t) -> Range.Range.env_before (Lazy.force fe) s.Il.Stmt.id
  in
  let scalar_cleanup f =
    if options.scalar_opt then begin
      let range =
        match !rt with
        | None -> None
        | Some _ ->
            let env_at = range_env_at f in
            Some
              (fun s c ->
                match env_at s with
                | None -> None
                | Some env -> Range.Range.truth env c)
      in
      ignore (Analysis.Const_prop.run ~stats:stats.const_prop ?range prog f);
      ignore (Analysis.Dce.run ~stats:stats.dce f);
      ignore (Analysis.Unreachable.run ~stats:stats.unreachable f);
      ignore (Analysis.Dce.run ~stats:stats.dce f);
      after_pass f "scalar-cleanup"
    end
  in
  timed "transforms" (fun () ->
  List.iter
    (fun f ->
      scalar_cleanup f;
      if options.while_conversion then begin
        ignore (Transform.While_to_do.run ~stats:stats.while_to_do prog f);
        after_pass f "while-to-do"
      end;
      if options.indvar_substitution then begin
        ignore (Transform.Indvar.run ~stats:stats.indvar prog f);
        after_pass f "indvar-substitution"
      end;
      scalar_cleanup f;
      if options.indvar_substitution then begin
        ignore (Transform.Forward_sub.run ~stats:stats.forward_sub prog f);
        after_pass f "forward-substitution";
        scalar_cleanup f
      end;
      (* Nest restructuring (§7) runs on the cleaned-up DO-loop form,
         before codegen: fusion first (merging nests exposes more
         statements to one strip loop), then interchange (the merged
         nest is reordered as a whole). *)
      if options.fuse then begin
        let fopts =
          {
            Transform.Fuse.assume_noalias = options.assume_noalias;
            parallelize = options.parallelize;
            vlen = options.vlen;
            profile = options.profile;
            report = options.report;
          }
        in
        ignore (Transform.Fuse.run ~options:fopts ~stats:stats.fuse prog f);
        after_pass f "fuse"
      end;
      if options.interchange then begin
        let iopts =
          {
            Transform.Interchange.assume_noalias = options.assume_noalias;
            parallelize = options.parallelize;
            vlen = options.vlen;
            profile = options.profile;
            report = options.report;
          }
        in
        ignore
          (Transform.Interchange.run ~options:iopts ~stats:stats.interchange
             prog f);
        after_pass f "interchange"
      end;
      if options.vectorize || options.parallelize then begin
        let range_facts =
          match !rt with
          | None -> None
          | Some _ ->
              let env_at = range_env_at f in
              Some
                {
                  Vectorize.Vectorize.rf_interval =
                    (fun s e ->
                      match env_at s with
                      | None -> (None, None)
                      | Some env ->
                          let itv = Range.Range.interval_of_expr env e in
                          (itv.Range.Range.Interval.lo, itv.Range.Range.Interval.hi));
                  rf_divisible =
                    (fun s e n ->
                      n > 0
                      &&
                      match env_at s with
                      | None -> false
                      | Some env -> (
                          let v = Range.Range.eval env e in
                          match v.Range.Range.aff with
                          | Some a -> Range.Range.Affine.divisible_by a n
                          | None -> (
                              match
                                Range.Range.Interval.to_point v.Range.Range.itv
                              with
                              | Some k -> k mod n = 0
                              | None -> false)));
                }
        in
        let vopts =
          {
            Vectorize.Vectorize.vectorize = options.vectorize;
            parallelize = options.parallelize;
            vlen = options.vlen;
            assume_noalias = options.assume_noalias;
            fuse_strips = options.fuse;
            profile = options.profile;
            report = options.report;
            vreuse = options.vreuse;
            why_scalar = options.why_scalar;
            range = range_facts;
          }
        in
        ignore
          (Vectorize.Vectorize.run ~options:vopts ~stats:stats.vectorize prog f);
        after_pass f "vectorize"
      end;
      if options.vreuse then begin
        let ropts =
          {
            Transform.Vreuse.assume_noalias = options.assume_noalias;
            profile = options.profile;
            report = options.report;
          }
        in
        ignore (Transform.Vreuse.run ~options:ropts ~stats:stats.vreuse prog f);
        after_pass f "vreuse"
      end;
      if options.doacross || options.doacross_sync then begin
        let range_facts =
          match !rt with
          | None -> None
          | Some _ ->
              let env_at = range_env_at f in
              Some
                (fun (s : Il.Stmt.t) e ->
                  match env_at s with
                  | None -> (None, None)
                  | Some env ->
                      let itv = Range.Range.interval_of_expr env e in
                      (itv.Range.Range.Interval.lo, itv.Range.Range.Interval.hi))
        in
        let dopts =
          {
            Transform.Doacross.default_options with
            Transform.Doacross.pragma = options.doacross;
            sync = options.doacross_sync;
            assume_noalias = options.assume_noalias;
            profile = options.profile;
            report = options.report;
            why_scalar = options.why_scalar;
            range = range_facts;
          }
        in
        timed "doacross" (fun () ->
            ignore
              (Transform.Doacross.run ~stats:stats.doacross ~options:dopts prog
                 f));
        after_pass f "doacross"
      end;
      if options.scalar_replacement then begin
        ignore (Transform.Scalar_replace.run ~stats:stats.scalar_replace prog f);
        after_pass f "scalar-replacement"
      end;
      if options.strength_reduction then begin
        ignore
          (Transform.Strength_reduction.run ~stats:stats.strength_reduction prog
             f);
        after_pass f "strength-reduction"
      end;
      if options.scalar_opt then begin
        ignore (Analysis.Dce.run ~stats:stats.dce f);
        after_pass f "dce"
      end)
    prog.Il.Prog.funcs);
  dump_stage options prog "final";
  (match options.verify with
  | `Final | `Each_stage ->
      Check.Verify.run ~assume_noalias:options.assume_noalias ?pointsto:!pt
        ?range:!rt ~pass:"final" prog
  | `Off -> ());
  stats

(* Front end only. *)
let parse ?file src : Il.Prog.t = Cfront.Frontend.compile ?file src

(* Parse and optimize. *)
let compile ?(options = default_options) ?timer ?file src : Il.Prog.t * stats =
  let prog =
    match timer with
    | Some t -> Support.Timing.time t "parse" (fun () -> parse ?file src)
    | None -> parse ?file src
  in
  after_prog_pass options prog "front-end";
  let stats = optimize ~options ?timer prog in
  (prog, stats)

(* Reference execution on the IL interpreter. *)
let run_interp ?max_steps ?entry ?args prog =
  Il.Interp.run ?max_steps ?entry ?args prog

(* Timed execution on the Titan simulator.  [vreuse] additionally runs
   codegen's redundant-Vload cleanup over the emitted Titan code. *)
let run_titan ?config ?entry ?args ?vreuse prog =
  Titan.Machine.run ?config ?entry ?args ?vreuse prog

(* Convenience: compile under [options], simulate under [config]. *)
let compile_and_simulate ?(options = default_options)
    ?(config = Titan.Machine.default_config) src =
  let prog, stats = compile ~options src in
  let result = run_titan ~config ~vreuse:options.vreuse prog in
  (prog, stats, result)

(* PGO pass one: compile at -O0, run instrumented under [config], and
   return the measured profile alongside the run result.  The profile
   header records the processors and scheduling model it was measured
   under, so pass two's cost comparisons use the same machine. *)
let profile_gen ?(config = Titan.Machine.default_config) ?entry ?args ?file
    src : Profile.Data.t * Titan.Machine.run_result =
  let prog, _ = compile ~options:o0 ?file src in
  let collect =
    Profile.Collect.create ~procs:config.Titan.Machine.procs
      ~sched:(Titan.Machine.sched_name config.Titan.Machine.sched)
  in
  let result = Titan.Machine.run ~config ?entry ?args ~collect prog in
  (Profile.Collect.data collect, result)
