(* The public face of the compiler: options, the full pass pipeline in the
   paper's order, and compile-and-run entry points against both the IL
   interpreter (reference semantics) and the Titan simulator (timing).

   Pipeline (§5.2 fixes the placement: while→DO conversion runs right
   after use-def chains are available, before the phases that simplify DO
   loops):

     parse → sema → lower
       → inline (optional, catalogs + same file)
       → constant propagation + unreachable code (§8) → DCE
       → while→DO conversion (§5.2)
       → induction-variable substitution (§5.3)
       → constant propagation → DCE → unreachable postpass
       → vectorize / parallelize (Allen-Kennedy distribution, §9)
       → scalar replacement (§6) → strength reduction (§6)
       → final DCE *)

module Support = Vpc_support
module Il = Vpc_il
module Cfront = Vpc_cfront
module Analysis = Vpc_analysis
module Dependence = Vpc_dependence
module Transform = Vpc_transform
module Vectorize = Vpc_vectorize
module Inline = Vpc_inline
module Titan = Vpc_titan
module Profile = Vpc_profile
module Check = Vpc_check
module Pointsto = Vpc_pointsto
module Range = Vpc_range
module Tune = Vpc_tune

(* A resolved autotuning plan: per-nest configurations keyed by source
   location (every loop header of a tuned nest maps to its nest's
   configuration) plus per-call-site inline verdicts.  [`Use] resolves a
   fingerprint-keyed store into this form with a scout compile; the
   search driver ({!tune}) builds it directly. *)
type tune_plan = {
  tp_nests : (Support.Loc.t * Tune.Config.t) list;
  tp_calls : (Support.Loc.t * bool) list;
}

let empty_plan = { tp_nests = []; tp_calls = [] }

type options = {
  inline : [ `None | `All | `Only of string list ];
  doacross : bool;             (* §10: parallelize pragma-marked list loops *)
  doacross_sync : bool;
      (* pipeline carried-dependence DO loops across processors with
         post/wait synchronization *)
  scalar_opt : bool;           (* constant propagation + DCE + unreachable *)
  while_conversion : bool;     (* §5.2 *)
  indvar_substitution : bool;  (* §5.3 *)
  vectorize : bool;
  parallelize : bool;
  interchange : bool;          (* §7: reorder nest levels by cost model *)
  fuse : bool;                 (* §7: merge adjacent conformable loops *)
  vreuse : bool;               (* vector-register reuse across strips *)
  vlen : int;
  assume_noalias : bool;       (* pointer params get Fortran semantics *)
  scalar_replacement : bool;   (* §6 *)
  strength_reduction : bool;   (* §6 *)
  pointsto : bool;
      (* interprocedural points-to + mod/ref analysis: resolves pointer
         aliases the canonical decomposition cannot, bounds call effects
         in the race checker, and ranks inline sites *)
  range : bool;
      (* interprocedural symbolic range + scalar-evolution analysis:
         dependence tests work on symbolic distances, strip loops with
         provable trip counts drop their length guards, and constant
         propagation folds branches decided by disjoint ranges *)
  catalogs : string list;      (* procedure databases to import (§7) *)
  dump : (string -> string -> unit) option;  (* stage name, IL text *)
  verify : Check.Verify.level; (* IL verifier / translation validator *)
  profile : Profile.Data.t option;
      (* measured profile feeding the inliner and vectorizer (PGO) *)
  report : (string -> unit) option;
      (* one line per profile-guided decision, with the cost estimates *)
  why_scalar : (string -> unit) option;
      (* one line per loop left scalar: the unresolved alias pair with
         source locations, the rejecting statement, or the cycle *)
  tune : [ `Off | `Use of Profile.Tuned.t | `Plan of tune_plan ];
      (* autotuned per-nest overrides: [`Use store] replays winners from
         a fingerprint-keyed store (a scout compile maps fingerprints
         back to this program's loops); [`Plan] applies an already
         resolved plan (the search driver's internal path).  [`Off] and
         an empty store compile byte-identically to no tuning. *)
}

(* -O0: the naive translation. *)
let o0 =
  {
    inline = `None;
    doacross = false;
    doacross_sync = false;
    scalar_opt = false;
    while_conversion = false;
    indvar_substitution = false;
    vectorize = false;
    parallelize = false;
    interchange = false;
    fuse = false;
    vreuse = false;
    vlen = 32;
    assume_noalias = false;
    scalar_replacement = false;
    strength_reduction = false;
    pointsto = false;
    range = false;
    catalogs = [];
    dump = None;
    verify = `Off;
    profile = None;
    report = None;
    why_scalar = None;
    tune = `Off;
  }

(* -O1: classical scalar optimization. *)
let o1 =
  {
    o0 with
    scalar_opt = true;
    while_conversion = true;
    indvar_substitution = true;
    strength_reduction = true;
  }

(* -O2: vectorization and parallelization, no inlining. *)
let o2 =
  {
    o1 with
    vectorize = true;
    parallelize = true;
    scalar_replacement = true;
    doacross = true;
    doacross_sync = true;
    pointsto = true;
    range = true;
  }

(* -O3: everything, including automatic inlining and nest
   restructuring (interchange + fusion). *)
let o3 = { o2 with inline = `All; interchange = true; fuse = true; vreuse = true }

let default_options = o3

type stats = {
  while_to_do : Transform.While_to_do.stats;
  indvar : Transform.Indvar.stats;
  forward_sub : Transform.Forward_sub.stats;
  doacross : Transform.Doacross.stats;
  interchange : Transform.Interchange.stats;
  fuse : Transform.Fuse.stats;
  const_prop : Analysis.Const_prop.stats;
  dce : Analysis.Dce.stats;
  unreachable : Analysis.Unreachable.stats;
  vectorize : Vectorize.Vectorize.stats;
  vreuse : Transform.Vreuse.stats;
  inline : Inline.Inline.stats;
  scalar_replace : Transform.Scalar_replace.stats;
  strength_reduction : Transform.Strength_reduction.stats;
}

let new_stats () =
  {
    while_to_do = Transform.While_to_do.new_stats ();
    indvar = Transform.Indvar.new_stats ();
    forward_sub = Transform.Forward_sub.new_stats ();
    doacross = Transform.Doacross.new_stats ();
    interchange = Transform.Interchange.new_stats ();
    fuse = Transform.Fuse.new_stats ();
    const_prop = Analysis.Const_prop.new_stats ();
    dce = Analysis.Dce.new_stats ();
    unreachable = Analysis.Unreachable.new_stats ();
    vectorize = Vectorize.Vectorize.new_stats ();
    vreuse = Transform.Vreuse.new_stats ();
    inline = Inline.Inline.new_stats ();
    scalar_replace = Transform.Scalar_replace.new_stats ();
    strength_reduction = Transform.Strength_reduction.new_stats ();
  }

let dump_stage options prog stage =
  match options.dump with
  | Some f -> f stage (Il.Pp.prog_to_string prog)
  | None -> ()

(* Checkpoint after a whole-program pass: dump the IL and, at
   [`Each_stage], run the verifier over every function so the pass that
   broke an invariant is named in the diagnostic. *)
let after_prog_pass ?pointsto ?range options prog pass =
  dump_stage options prog pass;
  match options.verify with
  | `Each_stage ->
      Check.Verify.run ~assume_noalias:options.assume_noalias ?pointsto ?range
        ~pass prog
  | `Off | `Final -> ()

(* Checkpoint after a per-function pass. *)
let after_pass ?pointsto ?range options prog (f : Il.Func.t) pass =
  let stage = Printf.sprintf "%s(%s)" pass f.Il.Func.name in
  dump_stage options prog stage;
  match options.verify with
  | `Each_stage ->
      Check.Verify.run_func ~assume_noalias:options.assume_noalias ?pointsto
        ?range ~pass:stage prog f
  | `Off | `Final -> ()

(* The pass subset that shapes loop nests ahead of restructuring: what a
   scout compile runs so {!Tune.Fingerprint} sees the nests exactly as
   the search driver did.  Restructuring, codegen-facing passes,
   diagnostics, and tuning itself are off; inlining and the scalar
   pipeline keep their static policy. *)
let scout_options options =
  {
    options with
    vectorize = false;
    parallelize = false;
    interchange = false;
    fuse = false;
    vreuse = false;
    doacross = false;
    doacross_sync = false;
    scalar_replacement = false;
    strength_reduction = false;
    verify = `Off;
    dump = None;
    report = None;
    why_scalar = None;
    tune = `Off;
  }

(* Run the optimization pipeline in place.  [timer] buckets the wall
   time of each phase group for [--timings]. *)
let rec optimize ?(options = default_options) ?(stats = new_stats ()) ?timer
    (prog : Il.Prog.t) =
  let timed phase f =
    match timer with Some t -> Support.Timing.time t phase f | None -> f ()
  in
  (* Resolve the tuning request into a per-location plan before anything
     mutates [prog]: [`Use] fingerprints a scout clone (which runs the
     same prefix pipeline, including its own catalog import) and maps
     matching store records back to this program's loops.  An empty store
     resolves to no plan, so every hook below stays [None] and the
     compile is byte-identical to an untuned one. *)
  let plan =
    match options.tune with
    | `Off -> None
    | `Plan p -> Some p
    | `Use store ->
        if Profile.Tuned.is_empty store then None
        else
          Some
            (timed "tune" (fun () ->
                 let clone = Il.Prog.clone prog in
                 ignore (optimize ~options:(scout_options options) clone);
                 let nests = Tune.Fingerprint.nests clone in
                 List.fold_left
                   (fun acc (n : Tune.Fingerprint.nest) ->
                     match Profile.Tuned.find store n.Tune.Fingerprint.fp with
                     | None -> acc
                     | Some r -> (
                         match
                           Tune.Config.of_fields r.Profile.Tuned.fields
                         with
                         | exception _ -> acc (* unknown fields: skip *)
                         | cfg ->
                             {
                               tp_nests =
                                 List.map
                                   (fun l -> (l, cfg))
                                   n.Tune.Fingerprint.loop_locs
                                 @ acc.tp_nests;
                               tp_calls =
                                 List.filter_map
                                   (fun (site, callee) ->
                                     match
                                       List.assoc_opt callee
                                         cfg.Tune.Config.inline_calls
                                     with
                                     | Some v -> Some (site, v)
                                     | None -> None)
                                   n.Tune.Fingerprint.calls
                                 @ acc.tp_calls;
                             }))
                   empty_plan nests))
  in
  let nest_cfg loc =
    match plan with None -> None | Some p -> List.assoc_opt loc p.tp_nests
  in
  let bool_gate get =
    match plan with
    | None -> None
    | Some _ -> Some (fun loc -> Option.bind (nest_cfg loc) get)
  in
  let site_tune =
    match plan with
    | None -> None
    | Some p -> Some (fun loc -> List.assoc_opt loc p.tp_calls)
  in
  timed "catalog-import" (fun () ->
      List.iter
        (fun file -> Inline.Catalog.import ~into:prog (Inline.Catalog.load file))
        options.catalogs);
  (* Whole-program points-to runs after catalog import so argument-to-
     parameter bindings at known call sites are visible.  The verdicts
     back the {!Dependence.Alias} oracle consulted wherever canonical
     decomposition gives up; the oracle is process-global state, so it is
     cleared on every exit path — a later compilation of a different
     program must not see this one's graph.  Inlining rewrites bodies
     wholesale, so the analysis is recomputed after it. *)
  let analyze_pointsto () =
    if options.pointsto then
      Some (timed "pointsto" (fun () -> Pointsto.Pointsto.analyze prog))
    else None
  in
  let pt = ref (analyze_pointsto ()) in
  (* Symbolic ranges follow the same lifecycle: whole-program parameter
     seeding up front (and again after inlining), per-function dataflow
     on demand — optimization passes renumber statements, so each
     consumer forces a fresh fenv over the function's current body. *)
  let analyze_range () =
    if options.range then
      Some (timed "range" (fun () -> Range.Range.analyze prog))
    else None
  in
  let rt = ref (analyze_range ()) in
  let install_oracle () =
    match !pt with
    | None -> ()
    | Some t ->
        Dependence.Alias.set_oracle (fun e1 e2 ->
            match Pointsto.Pointsto.verdict t e1 e2 with
            | Some `No_alias -> Some Dependence.Alias.No_alias
            | Some (`Must_alias d) -> Some (Dependence.Alias.Must_alias d)
            | None -> None)
  in
  install_oracle ();
  Fun.protect ~finally:Dependence.Alias.clear_oracle @@ fun () ->
  let after_prog_pass pass =
    after_prog_pass ?pointsto:!pt ?range:!rt options prog pass
  in
  let after_pass f pass =
    after_pass ?pointsto:!pt ?range:!rt options prog f pass
  in
  let inline_options only =
    {
      Inline.Inline.default_options with
      only;
      profile = options.profile;
      pointsto = !pt;
      report = options.report;
      site_tune;
    }
  in
  (match options.inline with
  | `None -> ()
  | `All ->
      timed "inline" (fun () ->
          Inline.Inline.expand ~options:(inline_options None)
            ~stats:stats.inline prog);
      pt := analyze_pointsto ();
      rt := analyze_range ();
      install_oracle ();
      after_prog_pass "inline"
  | `Only names ->
      timed "inline" (fun () ->
          Inline.Inline.expand
            ~options:(inline_options (Some names))
            ~stats:stats.inline prog);
      pt := analyze_pointsto ();
      rt := analyze_range ();
      install_oracle ();
      after_prog_pass "inline");
  (* A lazy per-function dataflow over [f]'s body right now; [None]
     facts for statements the fenv does not know (fresh ids, or a stale
     body) keep every consumer conservative. *)
  let range_env_at f =
    match !rt with
    | None -> fun _ -> None
    | Some t ->
        let fe = lazy (Range.Range.analyze_func t prog f) in
        fun (s : Il.Stmt.t) -> Range.Range.env_before (Lazy.force fe) s.Il.Stmt.id
  in
  let scalar_cleanup f =
    if options.scalar_opt then begin
      let range =
        match !rt with
        | None -> None
        | Some _ ->
            let env_at = range_env_at f in
            Some
              (fun s c ->
                match env_at s with
                | None -> None
                | Some env -> Range.Range.truth env c)
      in
      ignore (Analysis.Const_prop.run ~stats:stats.const_prop ?range prog f);
      ignore (Analysis.Dce.run ~stats:stats.dce f);
      ignore (Analysis.Unreachable.run ~stats:stats.unreachable f);
      ignore (Analysis.Dce.run ~stats:stats.dce f);
      after_pass f "scalar-cleanup"
    end
  in
  timed "transforms" (fun () ->
  List.iter
    (fun f ->
      scalar_cleanup f;
      if options.while_conversion then begin
        ignore (Transform.While_to_do.run ~stats:stats.while_to_do prog f);
        after_pass f "while-to-do"
      end;
      if options.indvar_substitution then begin
        ignore (Transform.Indvar.run ~stats:stats.indvar prog f);
        after_pass f "indvar-substitution"
      end;
      scalar_cleanup f;
      if options.indvar_substitution then begin
        ignore (Transform.Forward_sub.run ~stats:stats.forward_sub prog f);
        after_pass f "forward-substitution";
        scalar_cleanup f
      end;
      (* Nest restructuring (§7) runs on the cleaned-up DO-loop form,
         before codegen: fusion first (merging nests exposes more
         statements to one strip loop), then interchange (the merged
         nest is reordered as a whole). *)
      if options.fuse then begin
        let fopts =
          {
            Transform.Fuse.assume_noalias = options.assume_noalias;
            parallelize = options.parallelize;
            vlen = options.vlen;
            profile = options.profile;
            report = options.report;
            tune = bool_gate (fun c -> c.Tune.Config.fuse);
          }
        in
        ignore (Transform.Fuse.run ~options:fopts ~stats:stats.fuse prog f);
        after_pass f "fuse"
      end;
      if options.interchange then begin
        let iopts =
          {
            Transform.Interchange.assume_noalias = options.assume_noalias;
            parallelize = options.parallelize;
            vlen = options.vlen;
            profile = options.profile;
            report = options.report;
            tune = bool_gate (fun c -> c.Tune.Config.interchange);
          }
        in
        ignore
          (Transform.Interchange.run ~options:iopts ~stats:stats.interchange
             prog f);
        after_pass f "interchange"
      end;
      if options.vectorize || options.parallelize then begin
        let range_facts =
          match !rt with
          | None -> None
          | Some _ ->
              let env_at = range_env_at f in
              Some
                {
                  Vectorize.Vectorize.rf_interval =
                    (fun s e ->
                      match env_at s with
                      | None -> (None, None)
                      | Some env ->
                          let itv = Range.Range.interval_of_expr env e in
                          (itv.Range.Range.Interval.lo, itv.Range.Range.Interval.hi));
                  rf_divisible =
                    (fun s e n ->
                      n > 0
                      &&
                      match env_at s with
                      | None -> false
                      | Some env -> (
                          let v = Range.Range.eval env e in
                          match v.Range.Range.aff with
                          | Some a -> Range.Range.Affine.divisible_by a n
                          | None -> (
                              match
                                Range.Range.Interval.to_point v.Range.Range.itv
                              with
                              | Some k -> k mod n = 0
                              | None -> false)));
                }
        in
        let vopts =
          {
            Vectorize.Vectorize.vectorize = options.vectorize;
            parallelize = options.parallelize;
            vlen = options.vlen;
            assume_noalias = options.assume_noalias;
            fuse_strips = options.fuse;
            profile = options.profile;
            report = options.report;
            vreuse = options.vreuse;
            why_scalar = options.why_scalar;
            range = range_facts;
            tune =
              (match plan with
              | None -> None
              | Some _ ->
                  Some
                    (fun (s : Il.Stmt.t) ->
                      match nest_cfg s.Il.Stmt.loc with
                      | None -> None
                      | Some (c : Tune.Config.t) -> (
                          let vlen =
                            match c.Tune.Config.strip with
                            | Some v -> v
                            | None -> options.vlen
                          in
                          match c.Tune.Config.mode with
                          | Some Tune.Config.Scalar ->
                              Some
                                {
                                  Vectorize.Vectorize.keep_scalar = true;
                                  strip_parallel = false;
                                  scalar_parallel = false;
                                  chosen_vlen = vlen;
                                }
                          | Some Tune.Config.Vector ->
                              Some
                                {
                                  Vectorize.Vectorize.keep_scalar = false;
                                  strip_parallel = false;
                                  scalar_parallel = false;
                                  chosen_vlen = vlen;
                                }
                          | Some Tune.Config.Parallel ->
                              Some
                                {
                                  Vectorize.Vectorize.keep_scalar = false;
                                  strip_parallel = true;
                                  scalar_parallel = true;
                                  chosen_vlen = vlen;
                                }
                          | None -> (
                              match c.Tune.Config.strip with
                              | None -> None
                              | Some v ->
                                  Some
                                    {
                                      Vectorize.Vectorize.keep_scalar = false;
                                      strip_parallel = options.parallelize;
                                      scalar_parallel = options.parallelize;
                                      chosen_vlen = v;
                                    }))));
          }
        in
        ignore
          (Vectorize.Vectorize.run ~options:vopts ~stats:stats.vectorize prog f);
        after_pass f "vectorize"
      end;
      if options.vreuse then begin
        let ropts =
          {
            Transform.Vreuse.assume_noalias = options.assume_noalias;
            profile = options.profile;
            report = options.report;
            tune = bool_gate (fun c -> c.Tune.Config.vreuse);
          }
        in
        ignore (Transform.Vreuse.run ~options:ropts ~stats:stats.vreuse prog f);
        after_pass f "vreuse"
      end;
      if options.doacross || options.doacross_sync then begin
        let range_facts =
          match !rt with
          | None -> None
          | Some _ ->
              let env_at = range_env_at f in
              Some
                (fun (s : Il.Stmt.t) e ->
                  match env_at s with
                  | None -> (None, None)
                  | Some env ->
                      let itv = Range.Range.interval_of_expr env e in
                      (itv.Range.Range.Interval.lo, itv.Range.Range.Interval.hi))
        in
        let dopts =
          {
            Transform.Doacross.default_options with
            Transform.Doacross.pragma = options.doacross;
            sync = options.doacross_sync;
            assume_noalias = options.assume_noalias;
            profile = options.profile;
            report = options.report;
            why_scalar = options.why_scalar;
            range = range_facts;
            tune = bool_gate (fun c -> c.Tune.Config.doacross);
          }
        in
        timed "doacross" (fun () ->
            ignore
              (Transform.Doacross.run ~stats:stats.doacross ~options:dopts prog
                 f));
        after_pass f "doacross"
      end;
      if options.scalar_replacement then begin
        ignore (Transform.Scalar_replace.run ~stats:stats.scalar_replace prog f);
        after_pass f "scalar-replacement"
      end;
      if options.strength_reduction then begin
        ignore
          (Transform.Strength_reduction.run ~stats:stats.strength_reduction prog
             f);
        after_pass f "strength-reduction"
      end;
      if options.scalar_opt then begin
        ignore (Analysis.Dce.run ~stats:stats.dce f);
        after_pass f "dce"
      end)
    prog.Il.Prog.funcs);
  dump_stage options prog "final";
  (match options.verify with
  | `Final | `Each_stage ->
      Check.Verify.run ~assume_noalias:options.assume_noalias ?pointsto:!pt
        ?range:!rt ~pass:"final" prog
  | `Off -> ());
  stats

(* Front end only. *)
let parse ?file src : Il.Prog.t = Cfront.Frontend.compile ?file src

(* Parse and optimize. *)
let compile ?(options = default_options) ?timer ?file src : Il.Prog.t * stats =
  let prog =
    match timer with
    | Some t -> Support.Timing.time t "parse" (fun () -> parse ?file src)
    | None -> parse ?file src
  in
  after_prog_pass options prog "front-end";
  let stats = optimize ~options ?timer prog in
  (prog, stats)

(* Reference execution on the IL interpreter. *)
let run_interp ?max_steps ?entry ?args prog =
  Il.Interp.run ?max_steps ?entry ?args prog

(* Timed execution on the Titan simulator.  [vreuse] additionally runs
   codegen's redundant-Vload cleanup over the emitted Titan code. *)
let run_titan ?config ?entry ?args ?vreuse prog =
  Titan.Machine.run ?config ?entry ?args ?vreuse prog

(* Convenience: compile under [options], simulate under [config]. *)
let compile_and_simulate ?(options = default_options)
    ?(config = Titan.Machine.default_config) src =
  let prog, stats = compile ~options src in
  let result = run_titan ~config ~vreuse:options.vreuse prog in
  (prog, stats, result)

(* PGO pass one: compile at -O0, run instrumented under [config], and
   return the measured profile alongside the run result.  The profile
   header records the processors and scheduling model it was measured
   under, so pass two's cost comparisons use the same machine. *)
let profile_gen ?(config = Titan.Machine.default_config) ?entry ?args ?file
    src : Profile.Data.t * Titan.Machine.run_result =
  let prog, _ = compile ~options:o0 ?file src in
  let collect =
    Profile.Collect.create ~procs:config.Titan.Machine.procs
      ~sched:(Titan.Machine.sched_name config.Titan.Machine.sched)
  in
  let result = Titan.Machine.run ~config ?entry ?args ~collect prog in
  (Profile.Collect.data collect, result)

(* ------------------------------------------------------------------ *)
(* Simulator-in-the-loop autotuning                                    *)
(* ------------------------------------------------------------------ *)

type tune_result = {
  tuned : Profile.Tuned.t;     (* winners only: nests that beat static *)
  tune_stats : Tune.Search.stats;
  nests_considered : int;      (* nests that entered the search *)
  nests_improved : int;
  static_cycles : int;         (* whole program, untuned *)
  tuned_cycles : int;          (* whole program with every winner *)
}

(* Search the joint per-nest configuration space with the Titan
   simulator as the oracle.  Nests are ranked hottest-first (measured
   trips when a profile covers the outer loop, else the static weight)
   and tuned greedily in that order, each nest's search seeing the
   winners already chosen for hotter nests; the score is whole-program
   cycles, so a "win" that slows everything else down is rejected by
   construction.  Every candidate is differential-checked against the
   unoptimized program on the IL interpreter — a configuration whose
   output differs is discarded, so legality never rests on the search.
   Deterministic: dimensions are swept in a fixed order and ties break
   toward the static default. *)
let tune ?(options = default_options) ?(config = Titan.Machine.default_config)
    ?(budget = 4) ?(stamp = 1) ?report ?timer ?file src : tune_result =
  let timed phase f =
    match timer with Some t -> Support.Timing.time t phase f | None -> f ()
  in
  timed "tune" @@ fun () ->
  let say fmt =
    Printf.ksprintf
      (fun m -> match report with Some r -> r ("[tune] " ^ m) | None -> ())
      fmt
  in
  let base = parse ?file src in
  (* catalogs import once into the pristine base; every clone below then
     compiles with [catalogs = []] against the already-imported set *)
  List.iter
    (fun f -> Inline.Catalog.import ~into:base (Inline.Catalog.load f))
    options.catalogs;
  let options = { options with catalogs = [] } in
  let reference = run_interp (Il.Prog.clone base) in
  let compile_with plan =
    let p = Il.Prog.clone base in
    let opts =
      {
        options with
        tune = (match plan with None -> `Off | Some pl -> `Plan pl);
        dump = None;
        report = None;
        why_scalar = None;
        verify = `Off;
      }
    in
    ignore (optimize ~options:opts p);
    p
  in
  let simulate p = run_titan ~config ~vreuse:options.vreuse p in
  let matches (r : Titan.Machine.run_result) =
    r.Titan.Machine.stdout_text = reference.Il.Interp.stdout_text
    &&
    match (r.Titan.Machine.return_value, reference.Il.Interp.return_value) with
    | Titan.Machine.Vi a, Il.Interp.V_int b -> a = b
    | Titan.Machine.Vf a, Il.Interp.V_float b -> a = b
    | _ -> false
  in
  (* scout: the nests as the prefix pipeline shapes them — the same
     point [`Use] replay fingerprints, so winners recorded here match *)
  let nests =
    let p = Il.Prog.clone base in
    ignore (optimize ~options:(scout_options options) p);
    Tune.Fingerprint.nests p
  in
  let score (n : Tune.Fingerprint.nest) =
    let measured =
      match options.profile with
      | None -> None
      | Some data -> (
          match Profile.Key.of_loc n.Tune.Fingerprint.loc with
          | None -> None
          | Some key -> (
              match Profile.Data.find_loop data key with
              | None -> None
              | Some lp -> Profile.Data.mean_trips lp))
    in
    match (measured, n.Tune.Fingerprint.trips) with
    | Some t, None :: _ when t > 0 -> n.Tune.Fingerprint.weight * t
    | _ -> n.Tune.Fingerprint.weight
  in
  let ranked =
    let scored = List.map (fun n -> (score n, n)) nests in
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> Int.compare b a) scored
    in
    List.filteri (fun i _ -> i < budget) (List.map snd sorted)
  in
  if List.length nests > budget then
    say "%d nests found, tuning the %d hottest" (List.length nests) budget;
  let static_prog = compile_with None in
  let static_run = simulate static_prog in
  let static_cycles = static_run.Titan.Machine.metrics.Titan.Machine.cycles in
  if not (matches static_run) then
    say "static compile disagrees with the interpreter; tuning anyway";
  let stats = Tune.Search.new_stats () in
  let store = ref Profile.Tuned.empty in
  let winners = ref [] in
  let plan_of extra =
    List.fold_left
      (fun acc ((n : Tune.Fingerprint.nest), (cfg : Tune.Config.t)) ->
        {
          tp_nests =
            List.map (fun l -> (l, cfg)) n.Tune.Fingerprint.loop_locs
            @ acc.tp_nests;
          tp_calls =
            List.filter_map
              (fun (site, callee) ->
                Option.map
                  (fun v -> (site, v))
                  (List.assoc_opt callee cfg.Tune.Config.inline_calls))
              n.Tune.Fingerprint.calls
            @ acc.tp_calls;
        })
      empty_plan extra
  in
  let current = ref static_cycles in
  let improved = ref 0 in
  List.iter
    (fun (n : Tune.Fingerprint.nest) ->
      let opt3 set = List.map set [ None; Some false; Some true ] in
      let dims =
        (if options.vectorize then
           [
             {
               Tune.Search.dim_name = "mode";
               values =
                 List.map
                   (fun m (c : Tune.Config.t) -> { c with Tune.Config.mode = m })
                   [
                     None;
                     Some Tune.Config.Scalar;
                     Some Tune.Config.Vector;
                     Some Tune.Config.Parallel;
                   ];
             };
             {
               Tune.Search.dim_name = "strip";
               values =
                 List.map
                   (fun v (c : Tune.Config.t) ->
                     { c with Tune.Config.strip = v })
                   [ None; Some 8; Some 16; Some 32; Some 64 ];
             };
           ]
         else [])
        @ (if options.interchange && n.Tune.Fingerprint.depth >= 2 then
             [
               {
                 Tune.Search.dim_name = "interchange";
                 values =
                   opt3 (fun v (c : Tune.Config.t) ->
                       { c with Tune.Config.interchange = v });
               };
             ]
           else [])
        @ (if options.fuse then
             [
               {
                 Tune.Search.dim_name = "fuse";
                 values =
                   opt3 (fun v (c : Tune.Config.t) ->
                       { c with Tune.Config.fuse = v });
               };
             ]
           else [])
        @ (if options.vreuse then
             [
               {
                 Tune.Search.dim_name = "vreuse";
                 values =
                   opt3 (fun v (c : Tune.Config.t) ->
                       { c with Tune.Config.vreuse = v });
               };
             ]
           else [])
        @ (if options.doacross_sync then
             [
               {
                 Tune.Search.dim_name = "doacross";
                 values =
                   opt3 (fun v (c : Tune.Config.t) ->
                       { c with Tune.Config.doacross = v });
               };
             ]
           else [])
        @ List.map
            (fun callee ->
              {
                Tune.Search.dim_name = "inline:" ^ callee;
                values =
                  List.map
                    (fun v (c : Tune.Config.t) ->
                      let rest =
                        List.remove_assoc callee c.Tune.Config.inline_calls
                      in
                      {
                        c with
                        Tune.Config.inline_calls =
                          (match v with
                          | None -> rest
                          | Some b -> List.sort compare ((callee, b) :: rest));
                      })
                    [ None; Some false; Some true ];
              })
            (List.sort_uniq compare
               (List.map snd n.Tune.Fingerprint.calls))
      in
      (* a loop pinned scalar gets nothing from a strip length or from
         vector-register reuse: skip those points without simulating *)
      let prune (cfg : Tune.Config.t) =
        cfg.Tune.Config.mode = Some Tune.Config.Scalar
        && (cfg.Tune.Config.strip <> None
           || cfg.Tune.Config.vreuse = Some true)
      in
      let eval (cfg : Tune.Config.t) =
        let plan = plan_of ((n, cfg) :: !winners) in
        let p = compile_with (Some plan) in
        let r = simulate p in
        if matches r then Some r.Titan.Machine.metrics.Titan.Machine.cycles
        else None
      in
      match
        Tune.Search.search ~stats ~prune ~dims ~eval ~init:Tune.Config.default
          ~init_cycles:!current ()
      with
      | None ->
          say "nest at %s (fp %s..): static stays best at %d cycles"
            (Support.Loc.to_string n.Tune.Fingerprint.loc)
            (String.sub n.Tune.Fingerprint.fp 0 8)
            !current
      | Some (cfg, cycles) ->
          incr improved;
          say "nest at %s (fp %s..): %s -> %d cycles (was %d)"
            (Support.Loc.to_string n.Tune.Fingerprint.loc)
            (String.sub n.Tune.Fingerprint.fp 0 8)
            (Tune.Config.to_string cfg) cycles !current;
          store :=
            Profile.Tuned.add !store
              {
                Profile.Tuned.fp = n.Tune.Fingerprint.fp;
                stamp;
                cycles;
                static_cycles = !current;
                fields = Tune.Config.to_fields cfg;
              };
          winners := (n, cfg) :: !winners;
          current := cycles)
    ranked;
  {
    tuned = !store;
    tune_stats = stats;
    nests_considered = List.length ranked;
    nests_improved = !improved;
    static_cycles;
    tuned_cycles = !current;
  }
