(** Interprocedural symbolic value-range and scalar-evolution analysis.

    The analysis assigns every integer-valued IL expression a {e value}:
    an interval with (possibly absent) concrete endpoints, paired with an
    optional {e affine form} — a linear combination of symbols (current
    values of scalar variables, base addresses of objects) plus a
    constant.  Affine forms make differences of symbolic expressions
    cancel ([&a + 4*i + 4*n] minus [&a + 4*i] is the point [4*n]), which
    is exactly what the dependence tester needs when loop bounds and
    subscript offsets are not literal constants.

    Per function, a forward dataflow pass interprets assignments,
    branches (conditions refine the interval of the tested variable on
    each arm), and loops (widening at the header, then re-narrowing
    through the loop guard).  DO-loop indices additionally get a
    {e scalar evolution} [base + k*step].  Interprocedurally, parameter
    intervals are seeded from the join of all call-site argument values,
    mirroring the points-to analysis' entry policy: a procedure whose
    callers are all visible gets the join; one reachable from an unknown
    caller (never called directly, or any indirect call in the program)
    gets top. *)

(** Intervals over [int] with optional (= infinite) endpoints. *)
module Interval : sig
  type t = { lo : int option; hi : int option }
  (** [None] endpoints are unbounded.  The empty interval is
      represented canonically by {!bot}. *)

  val top : t
  val bot : t
  val point : int -> t
  val of_bounds : int option -> int option -> t
  val is_bot : t -> bool
  val is_top : t -> bool
  val to_point : t -> int option
  val equal : t -> t -> bool
  val contains : t -> int -> bool
  val subset : t -> t -> bool

  val join : t -> t -> t
  val meet : t -> t -> t

  (** [widen old next]: keep only the bounds of [old] that [next] does
      not move past; guarantees termination of ascending chains. *)
  val widen : t -> t -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  (** Truth of [a op b] when every pair of points decides the same way;
      [None] when the intervals overlap ambiguously. *)
  val truth : Vpc_il.Expr.binop -> t -> t -> bool option

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** Canonical affine forms [c0 + Σ ci*si] over variable-value and
    object-address symbols. *)
module Affine : sig
  type sym = Svar of int | Saddr of int

  type t = { terms : (sym * int) list; const : int }
  (** [terms] is sorted by symbol and has no zero coefficients. *)

  val const : int -> t
  val sym : sym -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : int -> t -> t
  val to_const : t -> int option
  val equal : t -> t -> bool
  val mentions : t -> int -> bool
  (** [mentions a v]: does [a] read the value of variable [v]
      (address symbols do not count — an address is stable)? *)

  val divisible_by : t -> int -> bool
  (** Every coefficient and the constant are multiples of the divisor,
      hence so is the value, whatever the symbols are. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

type value = { itv : Interval.t; aff : Affine.t option }

val top_value : value
val value_of_interval : Interval.t -> value

(** Scalar evolution of a DO-loop index: [base + k*step] at iteration
    [k].  [advance] gives the affine value after [k] steps; [compose]
    nests an inner evolution whose base advances with the outer one. *)
module Evo : sig
  type t = { base : Affine.t; step : int }

  val advance : t -> int -> Affine.t
  val compose : outer:t -> int -> inner:t -> t
end

(** {1 Whole-program analysis} *)

type t

val analyze : Vpc_il.Prog.t -> t

val param_interval : t -> string -> int -> Interval.t
(** Seeded interval for parameter [id] of the named function. *)

(** {1 Per-function dataflow} *)

type env
type fenv

val analyze_func : t -> Vpc_il.Prog.t -> Vpc_il.Func.t -> fenv
(** Run the forward dataflow over the function's {e current} body.
    Optimization passes renumber statements, so facts are computed on
    demand rather than cached across passes. *)

val entry_env : fenv -> env
val env_before : fenv -> int -> env option
(** Environment on entry to the statement with the given id, from the
    final (post-fixpoint) pass. *)

val evolution : fenv -> int -> Evo.t option
(** Evolution of the index of the DO loop with the given statement id. *)

val eval : env -> Vpc_il.Expr.t -> value
val interval_of_expr : env -> Vpc_il.Expr.t -> Interval.t

(** Re-evaluate an affine form as an interval: each variable symbol
    contributes the interval of its current binding, address symbols are
    unbounded.  Bounds the non-address part of an address value (a
    subscript offset) after cancelling the base symbol. *)
val interval_of_affine : env -> Affine.t -> Interval.t

val truth : env -> Vpc_il.Expr.t -> bool option
(** Provable truth value of an integer condition, via interval
    comparison of the operands (affine differences first, so [n < n+1]
    folds even with [n] unknown). *)
