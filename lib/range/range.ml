(* Interprocedural symbolic value-range and scalar-evolution analysis.
   See range.mli for the overall design.

   Soundness policy for machine arithmetic: intervals are clamped to the
   32-bit signed range — any arithmetic whose exact result could leave
   that range collapses to top, so wrapping executions are covered.
   Affine forms, in contrast, model exact mathematics; they rely on the
   C license that signed overflow is undefined (and on the lowering
   keeping pointer arithmetic inside its object), which is also what the
   [--lint] overflow rule polices. *)

module Expr = Vpc_il.Expr
module Stmt = Vpc_il.Stmt
module Ty = Vpc_il.Ty
module Var = Vpc_il.Var
module Func = Vpc_il.Func
module Prog = Vpc_il.Prog

let int32_min = -0x8000_0000
let int32_max = 0x7fff_ffff

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)

module Interval = struct
  type t = { lo : int option; hi : int option }

  let top = { lo = None; hi = None }

  (* canonical empty interval *)
  let bot = { lo = Some 1; hi = Some 0 }

  let is_bot t =
    match t.lo, t.hi with Some l, Some h -> l > h | _ -> false

  let is_top t = t.lo = None && t.hi = None
  let norm t = if is_bot t then bot else t
  let point n = { lo = Some n; hi = Some n }
  let of_bounds lo hi = norm { lo; hi }

  let to_point t =
    match t.lo, t.hi with
    | Some l, Some h when l = h -> Some l
    | _ -> None

  let equal a b = norm a = norm b

  let contains t n =
    (match t.lo with None -> true | Some l -> n >= l)
    && match t.hi with None -> true | Some h -> n <= h

  let le_lo a b =
    (* lower bound a is at or below lower bound b *)
    match a, b with
    | None, _ -> true
    | _, None -> false
    | Some x, Some y -> x <= y

  let ge_hi a b =
    match a, b with
    | None, _ -> true
    | _, None -> false
    | Some x, Some y -> x >= y

  let subset a b =
    is_bot a || ((not (is_bot b)) && le_lo b.lo a.lo && ge_hi b.hi a.hi)

  let join a b =
    if is_bot a then b
    else if is_bot b then a
    else
      {
        lo = (if le_lo a.lo b.lo then a.lo else b.lo);
        hi = (if ge_hi a.hi b.hi then a.hi else b.hi);
      }

  let meet a b =
    if is_bot a || is_bot b then bot
    else
      norm
        {
          lo = (if le_lo a.lo b.lo then b.lo else a.lo);
          hi = (if ge_hi a.hi b.hi then b.hi else a.hi);
        }

  let widen old next =
    if is_bot old then next
    else if is_bot next then old
    else
      {
        lo = (if le_lo old.lo next.lo then old.lo else None);
        hi = (if ge_hi old.hi next.hi then old.hi else None);
      }

  (* Any exact result that could leave the 32-bit signed range may have
     wrapped at run time: give up on that interval entirely. *)
  let clamp t =
    if is_bot t then bot
    else
      let fits = function
        | None -> true
        | Some n -> n >= int32_min && n <= int32_max
      in
      if fits t.lo && fits t.hi then t else top

  (* extended integers for endpoint arithmetic *)
  type ext = Ninf | Fin of int | Pinf

  let elo t = match t.lo with None -> Ninf | Some n -> Fin n
  let ehi t = match t.hi with None -> Pinf | Some n -> Fin n
  let of_elo = function Ninf -> None | Fin n -> Some n | Pinf -> Some max_int
  let of_ehi = function Pinf -> None | Fin n -> Some n | Ninf -> Some min_int

  let eadd a b =
    match a, b with
    | Ninf, Pinf | Pinf, Ninf -> Fin 0 (* never happens on same-side sums *)
    | Ninf, _ | _, Ninf -> Ninf
    | Pinf, _ | _, Pinf -> Pinf
    | Fin x, Fin y -> Fin (x + y)

  let eneg = function Ninf -> Pinf | Pinf -> Ninf | Fin n -> Fin (-n)

  let emul a b =
    match a, b with
    | Fin 0, _ | _, Fin 0 -> Fin 0
    | Fin x, Fin y -> Fin (x * y)
    | (Pinf | Ninf), _ | _, (Pinf | Ninf) ->
        let sign = function
          | Pinf -> 1
          | Ninf -> -1
          | Fin n -> compare n 0
        in
        if sign a * sign b >= 0 then Pinf else Ninf

  let emin a b =
    match a, b with
    | Ninf, _ | _, Ninf -> Ninf
    | Pinf, x | x, Pinf -> x
    | Fin x, Fin y -> Fin (min x y)

  let emax a b =
    match a, b with
    | Pinf, _ | _, Pinf -> Pinf
    | Ninf, x | x, Ninf -> x
    | Fin x, Fin y -> Fin (max x y)

  let add a b =
    if is_bot a || is_bot b then bot
    else
      clamp { lo = of_elo (eadd (elo a) (elo b)); hi = of_ehi (eadd (ehi a) (ehi b)) }

  let neg a =
    if is_bot a then bot
    else clamp { lo = of_elo (eneg (ehi a)); hi = of_ehi (eneg (elo a)) }

  let sub a b = if is_bot a || is_bot b then bot else add a (neg b)

  let mul a b =
    if is_bot a || is_bot b then bot
    else
      let cands =
        [
          emul (elo a) (elo b);
          emul (elo a) (ehi b);
          emul (ehi a) (elo b);
          emul (ehi a) (ehi b);
        ]
      in
      let lo = List.fold_left emin Pinf cands in
      let hi = List.fold_left emax Ninf cands in
      clamp { lo = of_elo lo; hi = of_ehi hi }

  let truth (op : Expr.binop) a b : bool option =
    if is_bot a || is_bot b then None
    else
      let lt_always =
        match a.hi, b.lo with Some h, Some l -> h < l | _ -> false
      in
      let le_always =
        match a.hi, b.lo with Some h, Some l -> h <= l | _ -> false
      in
      let gt_always =
        match a.lo, b.hi with Some l, Some h -> l > h | _ -> false
      in
      let ge_always =
        match a.lo, b.hi with Some l, Some h -> l >= h | _ -> false
      in
      match op with
      | Expr.Lt ->
          if lt_always then Some true else if ge_always then Some false else None
      | Expr.Le ->
          if le_always then Some true else if gt_always then Some false else None
      | Expr.Gt ->
          if gt_always then Some true else if le_always then Some false else None
      | Expr.Ge ->
          if ge_always then Some true else if lt_always then Some false else None
      | Expr.Eq -> (
          if lt_always || gt_always then Some false
          else
            match to_point a, to_point b with
            | Some x, Some y -> Some (x = y)
            | _ -> None)
      | Expr.Ne -> (
          if lt_always || gt_always then Some true
          else
            match to_point a, to_point b with
            | Some x, Some y -> Some (x <> y)
            | _ -> None)
      | _ -> None

  let pp fmt t =
    if is_bot t then Format.fprintf fmt "empty"
    else
      let b fmt = function
        | None -> Format.fprintf fmt "*"
        | Some n -> Format.fprintf fmt "%d" n
      in
      Format.fprintf fmt "[%a,%a]" b t.lo b t.hi

  let to_string t = Format.asprintf "%a" pp t
end

(* ------------------------------------------------------------------ *)
(* Affine forms                                                        *)

module Affine = struct
  type sym = Svar of int | Saddr of int

  type t = { terms : (sym * int) list; const : int }

  let sym_compare (a : sym) (b : sym) = compare a b

  let norm terms =
    terms
    |> List.filter (fun (_, c) -> c <> 0)
    |> List.sort (fun (s1, _) (s2, _) -> sym_compare s1 s2)

  let const n = { terms = []; const = n }
  let sym s = { terms = [ (s, 1) ]; const = 0 }

  let add a b =
    let rec merge xs ys =
      match xs, ys with
      | [], r | r, [] -> r
      | (sx, cx) :: tx, (sy, cy) :: ty ->
          let c = sym_compare sx sy in
          if c < 0 then (sx, cx) :: merge tx ys
          else if c > 0 then (sy, cy) :: merge xs ty
          else
            let sum = cx + cy in
            if sum = 0 then merge tx ty else (sx, sum) :: merge tx ty
    in
    { terms = merge (norm a.terms) (norm b.terms); const = a.const + b.const }

  let scale k a =
    if k = 0 then const 0
    else { terms = List.map (fun (s, c) -> (s, c * k)) a.terms; const = a.const * k }

  let neg a = scale (-1) a
  let sub a b = add a (neg b)
  let to_const a = match norm a.terms with [] -> Some a.const | _ -> None
  let equal a b = to_const (sub a b) = Some 0

  let mentions a v =
    List.exists (fun (s, _) -> s = Svar v) (norm a.terms)

  let divisible_by a d =
    d <> 0
    && a.const mod d = 0
    && List.for_all (fun (_, c) -> c mod d = 0) (norm a.terms)

  let pp fmt a =
    let terms = norm a.terms in
    if terms = [] then Format.fprintf fmt "%d" a.const
    else begin
      List.iteri
        (fun i (s, c) ->
          let sep = if i = 0 then (if c < 0 then "-" else "") else if c < 0 then " - " else " + " in
          let c = abs c in
          let name = match s with Svar v -> Format.sprintf "v%d" v | Saddr v -> Format.sprintf "&v%d" v in
          if c = 1 then Format.fprintf fmt "%s%s" sep name
          else Format.fprintf fmt "%s%d*%s" sep c name)
        terms;
      if a.const > 0 then Format.fprintf fmt " + %d" a.const
      else if a.const < 0 then Format.fprintf fmt " - %d" (-a.const)
    end

  let to_string a = Format.asprintf "%a" pp a
end

type value = { itv : Interval.t; aff : Affine.t option }

let top_value = { itv = Interval.top; aff = None }
let value_of_interval itv = { itv; aff = None }
let value_of_const n = { itv = Interval.point n; aff = Some (Affine.const n) }

(* ------------------------------------------------------------------ *)
(* Scalar evolutions                                                   *)

module Evo = struct
  type t = { base : Affine.t; step : int }

  let advance e k = Affine.add e.base (Affine.const (e.step * k))

  (* The inner evolution as seen during outer iteration [k], for the
     common nest where the inner base shifts by the outer step each
     outer iteration (row walks: base + k*outer.step + j*inner.step). *)
  let compose ~(outer : t) k ~(inner : t) =
    { base = Affine.add inner.base (Affine.const (outer.step * k)); step = inner.step }
end

(* ------------------------------------------------------------------ *)
(* Interprocedural summaries                                           *)

module IMap = Map.Make (Int)

type t = { params : (string, Interval.t IMap.t) Hashtbl.t }

let param_interval t fname id =
  match Hashtbl.find_opt t.params fname with
  | None -> Interval.top
  | Some m -> ( match IMap.find_opt id m with None -> Interval.top | Some i -> i)

(* ------------------------------------------------------------------ *)
(* Per-function environments                                           *)

type env = {
  vals : value IMap.t;
  varinfo : int -> Var.t option;
}

(* Interval implied by a variable's type alone. *)
let ty_interval (ty : Ty.t) =
  match ty with
  | Ty.Char -> Interval.of_bounds (Some (-128)) (Some 127)
  | _ -> Interval.top

(* Is [v] usable as a stable symbol in affine forms?  Its value must
   only change via explicit scalar assignment (which the dataflow sees
   and kills): integer or pointer scalars that are not volatile. *)
let symbolizable (v : Var.t) =
  (not v.Var.volatile)
  && (not (Var.is_memory_object v))
  && (Ty.is_integer v.Var.ty || Ty.is_pointer v.Var.ty)

let default_value (env : env) id =
  match env.varinfo id with
  | Some v when symbolizable v ->
      { itv = ty_interval v.Var.ty; aff = Some (Affine.sym (Affine.Svar id)) }
  | Some v -> { itv = ty_interval v.Var.ty; aff = None }
  | None -> top_value

let lookup env id =
  match IMap.find_opt id env.vals with
  | Some v -> v
  | None -> default_value env id

(* Re-evaluate an affine form as an interval: each variable symbol
   contributes the interval of its current binding, address symbols are
   unbounded.  Lets a client bound the non-address part of an address
   value (a subscript offset) after cancelling the base. *)
let interval_of_affine env (a : Affine.t) =
  List.fold_left
    (fun acc (s, c) ->
      let si =
        match s with
        | Affine.Svar id -> (lookup env id).itv
        | Affine.Saddr _ -> Interval.top
      in
      Interval.add acc (Interval.mul (Interval.point c) si))
    (Interval.point a.Affine.const)
    a.Affine.terms

(* A binding carrying no information beyond the default. *)
let is_default env id (v : value) =
  let d = default_value env id in
  Interval.equal v.itv d.itv
  &&
  match v.aff, d.aff with
  | None, None -> true
  | Some a, Some b -> Affine.equal a b
  | None, Some _ ->
      (* the tautological self-symbol carries no information either *)
      Interval.equal v.itv d.itv && Interval.is_top d.itv
  | Some _, None -> false

let set env id v =
  if is_default env id v then { env with vals = IMap.remove id env.vals }
  else { env with vals = IMap.add id v env.vals }

(* Kill affine forms that mention the (old) value of [id]. *)
let kill_mentions env id =
  let vals =
    IMap.map
      (fun v ->
        match v.aff with
        | Some a when Affine.mentions a id -> { v with aff = None }
        | _ -> v)
      env.vals
  in
  { env with vals }

(* [id] is assigned [v]: dependent forms die, then the binding lands.
   A volatile variable's value may change between the assignment and
   any later read, so it never gets a binding at all. *)
let assign env id v =
  let volatile =
    match env.varinfo id with Some var -> var.Var.volatile | None -> true
  in
  let v =
    match v.aff with
    | Some a when Affine.mentions a id -> { v with aff = None }
    | _ -> v
  in
  let env = kill_mentions env id in
  if volatile then { env with vals = IMap.remove id env.vals } else set env id v

let havoc env id =
  let env = kill_mentions env id in
  { env with vals = IMap.remove id env.vals }

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

let rec eval env (e : Expr.t) : value =
  match e.Expr.desc with
  | Expr.Const_int n -> value_of_const n
  | Expr.Const_float _ -> top_value
  | Expr.Var id ->
      if Ty.is_integer e.Expr.ty || Ty.is_pointer e.Expr.ty then begin
        let v = lookup env id in
        match v.aff with
        | Some _ -> v
        | None -> (
            (* a join/widen may have dropped the binding's affine form,
               but [Svar id] — "the current value of id" — is always a
               correct one for a stable variable ({!assign} keeps every
               form that mentions [id] honest) *)
            match env.varinfo id with
            | Some vi when symbolizable vi ->
                { v with aff = Some (Affine.sym (Affine.Svar id)) }
            | _ -> v)
      end
      else top_value
  | Expr.Addr_of id -> { itv = Interval.top; aff = Some (Affine.sym (Affine.Saddr id)) }
  | Expr.Load _ -> top_value
  | Expr.Cast (ty, a) ->
      let va = eval env a in
      if Ty.is_integer ty && (Ty.is_integer a.Expr.ty || Ty.is_pointer a.Expr.ty)
      then
        if ty = Ty.Char then
          (* may wrap into the char range; keep only what survives *)
          if Interval.subset va.itv (ty_interval Ty.Char) then va
          else { itv = ty_interval Ty.Char; aff = None }
        else va
      else if Ty.is_pointer ty && (Ty.is_pointer a.Expr.ty || Ty.is_integer a.Expr.ty)
      then va
      else top_value
  | Expr.Unop (Expr.Neg, a) ->
      let va = eval env a in
      { itv = Interval.neg va.itv; aff = Option.map Affine.neg va.aff }
  | Expr.Unop (Expr.Lognot, a) -> (
      let va = eval env a in
      match Interval.to_point va.itv with
      | Some 0 -> value_of_const 1
      | Some _ -> value_of_const 0
      | None ->
          if Interval.contains va.itv 0 then
            value_of_interval (Interval.of_bounds (Some 0) (Some 1))
          else value_of_const 0)
  | Expr.Unop (Expr.Bitnot, a) ->
      (* ~x = -x - 1 *)
      let va = eval env a in
      {
        itv = Interval.sub (Interval.neg va.itv) (Interval.point 1);
        aff = Option.map (fun x -> Affine.sub (Affine.neg x) (Affine.const 1)) va.aff;
      }
  | Expr.Binop (op, a, b) -> eval_binop env op a b

and eval_binop env op a b =
  let va = eval env a and vb = eval env b in
  (* The affine form can be sharper than the structural interval: in
     [(p + 4*k) - p] the address symbols cancel and re-evaluating the
     residue [4*k] through [k]'s binding bounds a difference the
     interval arithmetic saw as top-minus-top.  Both are sound, so meet. *)
  let refine v =
    match v.aff with
    | None -> v
    | Some x -> { v with itv = Interval.meet v.itv (interval_of_affine env x) }
  in
  let both f g =
    refine
      {
        itv = f va.itv vb.itv;
        aff = (match va.aff, vb.aff with Some x, Some y -> g x y | _ -> None);
      }
  in
  match op with
  | Expr.Add -> both Interval.add (fun x y -> Some (Affine.add x y))
  | Expr.Sub -> both Interval.sub (fun x y -> Some (Affine.sub x y))
  | Expr.Mul -> (
      let aff =
        match (va.aff, Affine.to_const (Option.value vb.aff ~default:(Affine.sym (Affine.Svar (-1))))) with
        | Some x, Some k -> Some (Affine.scale k x)
        | _ -> (
            match (vb.aff, Option.bind va.aff Affine.to_const) with
            | Some y, Some k -> Some (Affine.scale k y)
            | _ -> None)
      in
      match aff with
      | Some _ -> { itv = Interval.mul va.itv vb.itv; aff }
      | None -> { itv = Interval.mul va.itv vb.itv; aff = None })
  | Expr.Div -> (
      match Interval.to_point vb.itv with
      | Some c when c > 0 ->
          (* truncating division is monotone in the numerator for a
             positive divisor *)
          let d = function None -> None | Some n -> Some (n / c) in
          value_of_interval
            (Interval.of_bounds (d va.itv.Interval.lo) (d va.itv.Interval.hi))
      | _ -> top_value)
  | Expr.Rem -> (
      match Interval.to_point vb.itv with
      | Some c when c <> 0 ->
          let m = abs c - 1 in
          let base =
            match va.itv.Interval.lo with
            | Some l when l >= 0 -> Interval.of_bounds (Some 0) (Some m)
            | _ -> Interval.of_bounds (Some (-m)) (Some m)
          in
          (* |a mod c| <= |a| as well *)
          let refine =
            match va.itv.Interval.lo, va.itv.Interval.hi with
            | Some l, Some h when l >= 0 -> Interval.of_bounds (Some 0) (Some h)
            | _ -> Interval.top
          in
          value_of_interval (Interval.meet base refine)
      | _ -> top_value)
  | Expr.Shl -> (
      match Interval.to_point vb.itv with
      | Some k when k >= 0 && k < 31 ->
          let f = 1 lsl k in
          {
            itv = Interval.mul va.itv (Interval.point f);
            aff = Option.map (Affine.scale f) va.aff;
          }
      | _ -> top_value)
  | Expr.Shr -> (
      match Interval.to_point vb.itv with
      | Some k when k >= 0 && k < 63 ->
          (* arithmetic shift is monotone *)
          let d = function None -> None | Some n -> Some (n asr k) in
          value_of_interval
            (Interval.of_bounds (d va.itv.Interval.lo) (d va.itv.Interval.hi))
      | _ -> top_value)
  | Expr.Band -> (
      (* x & m with 0 <= m is within [0, m] in two's complement *)
      let nonneg_mask v =
        match v.itv.Interval.lo, v.itv.Interval.hi with
        | Some l, Some h when l >= 0 -> Some h
        | _ -> None
      in
      match nonneg_mask vb, nonneg_mask va with
      | Some m, _ | _, Some m ->
          value_of_interval (Interval.of_bounds (Some 0) (Some m))
      | None, None -> top_value)
  | Expr.Bor | Expr.Bxor -> (
      (* nonnegative inputs below a power of two stay below it *)
      let bound v =
        match v.itv.Interval.lo, v.itv.Interval.hi with
        | Some l, Some h when l >= 0 -> Some h
        | _ -> None
      in
      match bound va, bound vb with
      | Some ha, Some hb ->
          let rec up n = if n - 1 >= ha && n - 1 >= hb then n - 1 else up (n * 2) in
          value_of_interval (Interval.of_bounds (Some 0) (Some (up 1)))
      | _ -> top_value)
  | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> (
      match truth_values op va vb with
      | Some true -> value_of_const 1
      | Some false -> value_of_const 0
      | None -> value_of_interval (Interval.of_bounds (Some 0) (Some 1)))

(* Truth of [a op b] from two values: affine difference first (it
   cancels common symbols), then plain interval comparison. *)
and truth_values op va vb : bool option =
  let via_aff =
    match va.aff, vb.aff with
    | Some x, Some y -> (
        match Affine.to_const (Affine.sub x y) with
        | Some d -> Interval.truth op (Interval.point d) (Interval.point 0)
        | None -> None)
    | _ -> None
  in
  match via_aff with
  | Some r -> Some r
  | None -> Interval.truth op va.itv vb.itv

let interval_of_expr env e = (eval env e).itv

let truth env (cond : Expr.t) : bool option =
  match cond.Expr.desc with
  | Expr.Binop (((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), a, b)
    when Ty.is_integer a.Expr.ty || Ty.is_pointer a.Expr.ty ->
      truth_values op (eval env a) (eval env b)
  | _ when Ty.is_integer cond.Expr.ty -> (
      let v = eval env cond in
      match Interval.to_point v.itv with
      | Some 0 -> Some false
      | Some _ -> Some true
      | None -> if Interval.contains v.itv 0 then None else Some true)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Condition-driven refinement                                         *)

let negate_op : Expr.binop -> Expr.binop = function
  | Expr.Eq -> Expr.Ne
  | Expr.Ne -> Expr.Eq
  | Expr.Lt -> Expr.Ge
  | Expr.Le -> Expr.Gt
  | Expr.Gt -> Expr.Le
  | Expr.Ge -> Expr.Lt
  | op -> op

let swap_op : Expr.binop -> Expr.binop = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | op -> op

(* Narrow [x]'s interval knowing [x op bound] holds. *)
let narrow_interval (x : Interval.t) (op : Expr.binop) (bound : Interval.t) =
  if Interval.is_bot x || Interval.is_bot bound then Interval.bot
  else
    let open Interval in
    let dec = Option.map (fun n -> n - 1) and inc = Option.map (fun n -> n + 1) in
    match op with
    | Expr.Lt -> meet x (of_bounds None (dec bound.hi))
    | Expr.Le -> meet x (of_bounds None bound.hi)
    | Expr.Gt -> meet x (of_bounds (inc bound.lo) None)
    | Expr.Ge -> meet x (of_bounds bound.lo None)
    | Expr.Eq -> meet x bound
    | Expr.Ne -> (
        match to_point bound with
        | Some p ->
            if x.lo = Some p then of_bounds (Some (p + 1)) x.hi
            else if x.hi = Some p then of_bounds x.lo (Some (p - 1))
            else x
        | None -> x)
    | _ -> x

(* Peel casts that do not change integer values. *)
let rec strip_cast (e : Expr.t) =
  match e.Expr.desc with
  | Expr.Cast (ty, a)
    when Ty.is_integer ty && ty <> Ty.Char && Ty.is_integer a.Expr.ty ->
      strip_cast a
  | _ -> e

let rec assume (b : bool) (cond : Expr.t) env =
  match cond.Expr.desc with
  | Expr.Unop (Expr.Lognot, e) -> assume (not b) e env
  | Expr.Binop (((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), e1, e2)
    when Ty.is_integer e1.Expr.ty ->
      let op = if b then op else negate_op op in
      let refine_side env (x : Expr.t) op (other : Expr.t) =
        match (strip_cast x).Expr.desc with
        | Expr.Var id -> (
            match env.varinfo id with
            | Some v when symbolizable v ->
                let cur = lookup env id in
                let bound = (eval env other).itv in
                let itv = narrow_interval cur.itv op bound in
                set env id { cur with itv }
            | _ -> env)
        | _ -> env
      in
      let env = refine_side env e1 op e2 in
      refine_side env e2 (swap_op op) e1
  | Expr.Var _ when Ty.is_integer cond.Expr.ty ->
      let op = if b then Expr.Ne else Expr.Eq in
      let cur_refine env =
        match (strip_cast cond).Expr.desc with
        | Expr.Var id -> (
            match env.varinfo id with
            | Some v when symbolizable v ->
                let cur = lookup env id in
                let itv = narrow_interval cur.itv op (Interval.point 0) in
                set env id { cur with itv }
            | _ -> env)
        | _ -> env
      in
      cur_refine env
  | _ -> env

(* ------------------------------------------------------------------ *)
(* Environment lattice                                                 *)

let join_value env id (a : value) (b : value) =
  ignore env;
  ignore id;
  {
    itv = Interval.join a.itv b.itv;
    aff =
      (match a.aff, b.aff with
      | Some x, Some y when Affine.equal x y -> Some x
      | _ -> None);
  }

let join_env (a : env) (b : env) : env =
  let keys = IMap.merge (fun _ x y -> if x = None && y = None then None else Some ()) a.vals b.vals in
  IMap.fold
    (fun id () acc ->
      let va = lookup a id and vb = lookup b id in
      set acc id (join_value a id va vb))
    keys
    { a with vals = IMap.empty }

let widen_env (old : env) (next : env) : env =
  let keys = IMap.merge (fun _ x y -> if x = None && y = None then None else Some ()) old.vals next.vals in
  IMap.fold
    (fun id () acc ->
      let vo = lookup old id and vn = lookup next id in
      let itv = Interval.widen vo.itv vn.itv in
      let aff =
        match vo.aff, vn.aff with
        | Some x, Some y when Affine.equal x y -> Some x
        | _ -> None
      in
      set acc id { itv; aff })
    keys
    { old with vals = IMap.empty }

let env_equal (a : env) (b : env) =
  IMap.equal
    (fun (x : value) (y : value) ->
      Interval.equal x.itv y.itv
      &&
      match x.aff, y.aff with
      | None, None -> true
      | Some p, Some q -> Affine.equal p q
      | _ -> false)
    a.vals b.vals

(* ------------------------------------------------------------------ *)
(* Per-function dataflow                                               *)

type fenv = {
  entry : env;
  before : (int, env) Hashtbl.t;
  evos : (int, Evo.t) Hashtbl.t;
}

let entry_env fe = fe.entry
let env_before fe id = Hashtbl.find_opt fe.before id
let evolution fe id = Hashtbl.find_opt fe.evos id

type fctx = {
  fe : fenv;
  (* variables memory writes / calls may modify *)
  unsafe : (int, unit) Hashtbl.t;
  (* variables any statement of the function assigns *)
  assigned : (int, unit) Hashtbl.t;
}

let havoc_unsafe ctx env =
  Hashtbl.fold (fun id () acc -> havoc acc id) ctx.unsafe env

let havoc_assigned ctx env =
  Hashtbl.fold (fun id () acc -> havoc acc id) ctx.assigned env

let max_widen_rounds = 30

let rec exec ctx ~record env (s : Stmt.t) : env =
  if record then Hashtbl.replace ctx.fe.before s.Stmt.id env;
  match s.Stmt.desc with
  | Stmt.Nop | Stmt.Goto _ | Stmt.Return _ -> env
  | Stmt.Label _ ->
      (* join point with unknown predecessors: anything the function
         assigns (reachable via goto) may hold any value here *)
      havoc_assigned ctx env
  | Stmt.Assign (Stmt.Lvar id, e) -> assign env id (eval env e)
  | Stmt.Assign (Stmt.Lmem _, _) -> havoc_unsafe ctx env
  | Stmt.Vector _ | Stmt.Vdef _ -> havoc_unsafe ctx env
  | Stmt.Call (dst, _, _) ->
      let env = havoc_unsafe ctx env in
      (match dst with
      | Some (Stmt.Lvar id) -> havoc env id
      | Some (Stmt.Lmem _) | None -> env)
  | Stmt.If (c, then_s, else_s) ->
      let t_out = exec_list ctx ~record (assume true c env) then_s in
      let e_out = exec_list ctx ~record (assume false c env) else_s in
      join_env t_out e_out
  | Stmt.While (_, c, body) ->
      let stable = fix_loop ctx env ~enter:(assume true c) ~body in
      if record then
        ignore (exec_list ctx ~record (assume true c stable) body);
      assume false c stable
  | Stmt.Do_loop d ->
      let lo_v = eval env d.Stmt.lo and hi_v = eval env d.Stmt.hi in
      let step = Expr.const_int_val d.Stmt.step in
      (match step, lo_v.aff with
      | Some st, Some base when st <> 0 ->
          Hashtbl.replace ctx.fe.evos s.Stmt.id { Evo.base; step = st }
      | _ -> ());
      let idx_itv =
        match step with
        | Some st when st > 0 ->
            Interval.of_bounds lo_v.itv.Interval.lo hi_v.itv.Interval.hi
        | Some st when st < 0 ->
            Interval.of_bounds hi_v.itv.Interval.lo lo_v.itv.Interval.hi
        | _ -> Interval.top
      in
      let enter env = assign env d.Stmt.index { itv = idx_itv; aff = None } in
      let stable = fix_loop ctx env ~enter ~body:d.Stmt.body in
      if record then ignore (exec_list ctx ~record (enter stable) d.Stmt.body);
      (* after the loop the index sits one step past the last iteration
         (or at lo when the loop never entered) *)
      let after_itv =
        match step with
        | Some st ->
            Interval.join lo_v.itv
              (Interval.add idx_itv (Interval.point st))
        | None -> Interval.top
      in
      assign stable d.Stmt.index { itv = after_itv; aff = None }

and exec_list ctx ~record env stmts =
  List.fold_left (fun env s -> exec ctx ~record env s) env stmts

(* Widening fixpoint for one loop: [enter] refines the environment on
   entry to the body (guard assumption / index bounds). *)
and fix_loop ctx env ~enter ~body =
  let rec go cur n =
    let out = exec_list ctx ~record:false (enter cur) body in
    let merged = join_env cur out in
    let next = if n >= 2 then widen_env cur merged else merged in
    if env_equal next cur || n > max_widen_rounds then next else go next (n + 1)
  in
  go env 0

let analyze_func (t : t) (prog : Prog.t) (f : Func.t) : fenv =
  let varinfo id = Prog.find_var prog (Some f) id in
  let entry =
    List.fold_left
      (fun env pid ->
        match varinfo pid with
        | Some v when symbolizable v ->
            let itv =
              Interval.meet (ty_interval v.Var.ty)
                (param_interval t f.Func.name pid)
            in
            set env pid
              { itv; aff = Some (Affine.sym (Affine.Svar pid)) }
        | _ -> env)
      { vals = IMap.empty; varinfo }
      f.Func.params
  in
  let unsafe = Hashtbl.create 16 in
  Hashtbl.iter (fun id () -> Hashtbl.replace unsafe id ()) (Func.addressed_vars f);
  Hashtbl.iter
    (fun id (v : Var.t) -> if Var.is_global v then Hashtbl.replace unsafe id ())
    f.Func.vars;
  Hashtbl.iter
    (fun id (g : Prog.global) ->
      ignore g;
      Hashtbl.replace unsafe id ())
    prog.Prog.globals;
  let assigned = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Stmt.defined_var s with
      | Some id -> Hashtbl.replace assigned id ()
      | None -> ())
    (Func.all_stmts f);
  let fe = { entry; before = Hashtbl.create 64; evos = Hashtbl.create 8 } in
  let ctx = { fe; unsafe; assigned } in
  ignore (exec_list ctx ~record:true entry f.Func.body);
  fe

(* ------------------------------------------------------------------ *)
(* Whole-program analysis: seed parameter intervals from call sites    *)

let analyze (prog : Prog.t) : t =
  let has_indirect =
    List.exists
      (fun (f : Func.t) ->
        List.exists
          (fun s ->
            match s.Stmt.desc with
            | Stmt.Call (_, Stmt.Indirect _, _) -> true
            | _ -> false)
          (Func.all_stmts f))
      prog.Prog.funcs
  in
  let called = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun s ->
          match s.Stmt.desc with
          | Stmt.Call (_, Stmt.Direct name, _) -> Hashtbl.replace called name ()
          | _ -> ())
        (Func.all_stmts f))
    prog.Prog.funcs;
  let t = { params = Hashtbl.create 16 } in
  (* Descending Kleene iteration from top: each round re-analyzes every
     function under the previous round's summaries, then re-joins the
     argument values seen at every visible call site.  Every prefix of
     the descent over-approximates the concrete argument sets, so
     stopping after a fixed number of rounds is sound. *)
  for _round = 1 to 2 do
    let next : (string, Interval.t IMap.t) Hashtbl.t = Hashtbl.create 16 in
    let add_site callee (params : int list) (args : Expr.t list) env =
      let cur =
        match Hashtbl.find_opt next callee with
        | Some m -> m
        | None -> IMap.empty
      in
      let m =
        List.fold_left2
          (fun m pid arg ->
            let itv = (eval env arg).itv in
            let itv =
              match IMap.find_opt pid m with
              | Some prev -> Interval.join prev itv
              | None -> itv
            in
            IMap.add pid itv m)
          cur params args
      in
      Hashtbl.replace next callee m
    in
    List.iter
      (fun (f : Func.t) ->
        let fe = analyze_func t prog f in
        List.iter
          (fun s ->
            match s.Stmt.desc with
            | Stmt.Call (_, Stmt.Direct name, args) -> (
                match Prog.find_func prog name, env_before fe s.Stmt.id with
                | Some callee, Some env
                  when List.length callee.Func.params = List.length args ->
                    add_site name callee.Func.params args env
                | _ -> ())
            | _ -> ())
          (Func.all_stmts f))
      prog.Prog.funcs;
    Hashtbl.reset t.params;
    if not has_indirect then
      Hashtbl.iter
        (fun name m ->
          (* only procedures whose callers are all visible *)
          if Hashtbl.mem called name then Hashtbl.replace t.params name m)
        next
  done;
  t
