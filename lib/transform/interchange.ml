(* Loop interchange (paper §7).

   For every analyzable nest ([Nest.analyze]: normalized rectangular
   loops, stores-only innermost body, exact dependence information) the
   pass enumerates all loop orders — at most 3! = 6 — and keeps the
   cheapest legal one under the Titan cost model:

     legality       every direction vector, permuted into the candidate
                    order, stays lexicographically non-negative — no
                    dependence sink may run before its source;
     profitability  [Cost.nest_order_cycles]: a vectorizable inner
                    level (no dependence carried by the innermost loop)
                    dominates; stride-1 innermost access breaks ties.

   Trip counts come from the bounds when constant, else from a measured
   profile ([lib/profile]), else [Cost.default_trip].  Loops are never
   marked parallel here — the vectorizer's validated strip machinery
   supplies the parallelism once the right level is innermost. *)

open Vpc_il
open Vpc_dependence
module Cost = Vpc_titan.Cost
module Profile = Vpc_profile

type options = {
  assume_noalias : bool;
  parallelize : bool;          (* cost model may assume parallel strips *)
  vlen : int;
  profile : Profile.Data.t option;
  report : (string -> unit) option;
  tune : (Vpc_support.Loc.t -> bool option) option;
      (* autotuned per-nest gate, keyed by the outer loop's location:
         [Some false] keeps the source order regardless of the cost
         model, [Some true] takes the cheapest legal reorder even on a
         cost tie; [None] follows the static policy *)
}

let default_options =
  {
    assume_noalias = false;
    parallelize = true;
    vlen = 32;
    profile = None;
    report = None;
    tune = None;
  }

type stats = {
  mutable nests_examined : int;        (* analyzable nests found *)
  mutable nests_interchanged : int;
  mutable orders_rejected_legality : int;
  mutable pgo_trip_nests : int;        (* a measured trip filled a gap *)
}

let new_stats () =
  {
    nests_examined = 0;
    nests_interchanged = 0;
    orders_rejected_legality = 0;
    pgo_trip_nests = 0;
  }

(* All permutations of 0..n-1, identity first. *)
let permutations n =
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) xs)))
          xs
  in
  List.map Array.of_list (perms (List.init n (fun i -> i)))

(* Trip count per level: constant bound, else measured profile, else the
   model's default. *)
let level_trips (opts : options) (levels : Nest.level list) :
    int array * bool =
  let used_pgo = ref false in
  let trip_of (l : Nest.level) =
    match l.Nest.trip with
    | Some t -> t
    | None -> (
        let measured =
          match opts.profile with
          | None -> None
          | Some data -> (
              match Profile.Key.of_loc l.Nest.loop_stmt.Stmt.loc with
              | None -> None
              | Some key ->
                  Option.bind
                    (Profile.Data.find_loop data key)
                    Profile.Data.mean_trips)
        in
        match measured with
        | Some t when t > 0 ->
            used_pgo := true;
            t
        | _ -> Cost.default_trip)
  in
  (Array.of_list (List.map trip_of levels), !used_pgo)

(* Estimated whole-nest cycles under one loop order. *)
let order_cost (opts : options) (nest : Nest.t) ~shape ~(trips : int array)
    (perm : int array) =
  let d = Array.length perm in
  let ptrips = Array.init d (fun k -> trips.(perm.(k))) in
  let inner = perm.(d - 1) in
  let vectorizable = not (Nest.inner_carries perm nest) in
  let inner_strides =
    List.map
      (fun (_, (m : Subscript.multi_affine)) -> m.Subscript.mcoeffs.(inner))
      nest.Nest.refs
  in
  let sched, procs =
    match opts.profile with
    | Some data ->
        (Cost.sched_of_name data.Profile.Data.sched, data.Profile.Data.procs)
    | None -> (Cost.Full, 1)
  in
  Cost.nest_order_cycles ~sched
    ~pgo_gates:(Option.is_some opts.profile)
    shape ~trips:ptrips ~vlen:opts.vlen ~procs ~parallelize:opts.parallelize
    ~vectorizable ~inner_strides

(* Rebuild the nest in the chosen order: hoistable prefixes (the limit
   temps of inner levels) move ahead of the whole nest, then each level
   keeps its original Do_loop statement (ids, locs, bounds, index) — only
   the nesting order changes. *)
let rebuild (nest : Nest.t) (perm : int array) : Stmt.t list =
  let levels = Array.of_list nest.Nest.levels in
  let prefixes =
    List.concat_map (fun (l : Nest.level) -> l.Nest.prefix) nest.Nest.levels
  in
  let rec chain k =
    let l = levels.(perm.(k)) in
    let body =
      if k = Array.length perm - 1 then nest.Nest.body else [ chain (k + 1) ]
    in
    { l.Nest.loop_stmt with Stmt.desc = Stmt.Do_loop { l.Nest.header with Stmt.body } }
  in
  prefixes @ [ chain 0 ]

let order_name prog (func : Func.t) (nest : Nest.t) (perm : int array) =
  let levels = Array.of_list nest.Nest.levels in
  String.concat ","
    (List.map
       (fun k ->
         let id = levels.(k).Nest.index in
         match Prog.find_var prog (Some func) id with
         | Some v -> v.Var.name
         | None -> string_of_int id)
       (Array.to_list perm))

let run ?(options = default_options) ?(stats = new_stats ())
    (prog : Prog.t) (func : Func.t) : bool =
  let changed = ref false in
  let try_nest (s : Stmt.t) : Stmt.t list option =
    match
      Nest.analyze ~assume_noalias:options.assume_noalias ~prog ~func s
    with
    | None -> None
    | Some nest ->
        stats.nests_examined <- stats.nests_examined + 1;
        let d = Nest.depth nest in
        let shape = Cost.shape_of_stmts nest.Nest.body in
        let trips, used_pgo = level_trips options nest.Nest.levels in
        if used_pgo then stats.pgo_trip_nests <- stats.pgo_trip_nests + 1;
        let legal, illegal =
          List.partition
            (fun p -> Nest.legal_permutation p nest)
            (permutations d)
        in
        stats.orders_rejected_legality <-
          stats.orders_rejected_legality + List.length illegal;
        (* normalized edges make the identity order always legal *)
        let scored =
          List.map (fun p -> (order_cost options nest ~shape ~trips p, p)) legal
        in
        let id_cost, id_perm =
          match scored with c :: _ -> c | [] -> assert false
        in
        let best_cost, best =
          List.fold_left
            (fun (bc, bp) (c, p) -> if c < bc then (c, p) else (bc, bp))
            (id_cost, id_perm) scored
        in
        let tuned =
          match options.tune with None -> None | Some f -> f s.Stmt.loc
        in
        let interchange =
          match tuned with
          | Some false -> false
          | Some true -> best <> id_perm && best_cost <= id_cost
          | None -> best <> id_perm && best_cost < id_cost
        in
        (match options.report with
        | Some report ->
            report
              (Printf.sprintf
                 "interchange %s: nest (%s) est=%d%s: %s (%d order%s illegal)"
                 func.Func.name
                 (order_name prog func nest id_perm)
                 id_cost
                 (if interchange then
                    Printf.sprintf " -> (%s) est=%d"
                      (order_name prog func nest best)
                      best_cost
                  else "")
                 (if interchange then "interchanged" else "kept")
                 (List.length illegal)
                 (if List.length illegal = 1 then "" else "s"))
        | None -> ());
        if interchange then begin
          stats.nests_interchanged <- stats.nests_interchanged + 1;
          changed := true;
          Some (rebuild nest best)
        end
        else None
  in
  let rec walk stmts = List.concat_map walk_stmt stmts
  and walk_stmt (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.Do_loop d -> (
        match try_nest s with
        | Some stmts -> stmts
        | None ->
            [ { s with Stmt.desc = Stmt.Do_loop { d with Stmt.body = walk d.body } } ])
    | Stmt.If (c, t, e) ->
        [ { s with Stmt.desc = Stmt.If (c, walk t, walk e) } ]
    | Stmt.While (li, c, b) ->
        [ { s with Stmt.desc = Stmt.While (li, c, walk b) } ]
    | _ -> [ s ]
  in
  func.Func.body <- walk func.Func.body;
  !changed
