(* Dependence-driven strength reduction (paper §6): for loops that do NOT
   vectorize, the multiplications that induction-variable substitution
   introduced into subscripts are reduced back to incremented pointers,
   loop-invariant expressions are hoisted, and references with a common
   base+stride share one pointer — "our algorithm is unique in that it
   utilizes the array dependence graph to simultaneously reduce expensive
   operations, remove loop invariant expressions, and eliminate common
   subexpressions".  The reduced operations are sequential by nature, so
   the pass runs only on loops the vectorizer left scalar. *)

open Vpc_il
open Vpc_dependence

type stats = {
  mutable loops_reduced : int;
  mutable multiplies_removed : int;
  mutable invariants_hoisted : int;
  mutable pointers_shared : int;  (* CSE: refs sharing a pointer temp *)
}

let new_stats () =
  {
    loops_reduced = 0;
    multiplies_removed = 0;
    invariants_hoisted = 0;
    pointers_shared = 0;
  }

let is_normalized (d : Stmt.do_loop) =
  Expr.is_zero d.lo
  && (match d.step.Expr.desc with Expr.Const_int 1 -> true | _ -> false)

(* Only plain assignment bodies are handled (same shape the dependence
   analyzer accepts). *)
let plain_body (body : Stmt.t list) =
  List.for_all
    (fun (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Assign _ | Stmt.Nop -> true
      | _ -> false)
    body

let process_loop prog (func : Func.t) stats (loop_stmt : Stmt.t)
    (d : Stmt.do_loop) : Stmt.t list option =
  if not (plain_body d.body) then None
  else begin
    let defined_in_body, mem_written =
      Vpc_analysis.Reaching.vars_defined_in d.body
    in
    let unsafe = Func.addressed_vars func in
    let invariant (e : Expr.t) =
      ((not (Expr.contains_load e)) || not mem_written)
      && List.for_all
           (fun v ->
             v <> d.index
             && (not (Hashtbl.mem defined_in_body v))
             && ((not mem_written) || not (Hashtbl.mem unsafe v))
             &&
             match Func.find_var func v with
             | Some vm -> not vm.Var.volatile
             | None -> false)
           (Expr.read_vars e)
    in
    let affine e =
      match Subscript.affine_of ~index:d.index ~invariant e with
      | Some a when invariant a.Subscript.base -> Some a
      | _ -> None
    in
    let b = Builder.ctx prog func in
    (* --- group the affine addresses by (base, stride) --- *)
    let groups : (Expr.t * int * Var.t) list ref = ref [] in
    let preheader = ref [] in
    let increments = ref [] in
    let pointer_for (addr : Expr.t) (a : Subscript.affine) : Expr.t option =
      if a.Subscript.coeff = 0 then None
      else begin
        let elt = match addr.Expr.ty with Ty.Ptr t -> Some t | _ -> None in
        match elt with
        | None -> None
        | Some elt ->
            let existing =
              List.find_opt
                (fun (base, coeff, _) ->
                  coeff = a.Subscript.coeff && Expr.equal base a.Subscript.base)
                !groups
            in
            let ptr =
              match existing with
              | Some (_, _, p) ->
                  stats.pointers_shared <- stats.pointers_shared + 1;
                  p
              | None ->
                  let p = Builder.fresh_temp b ~name:"sr_ptr" (Ty.Ptr elt) in
                  groups := (a.Subscript.base, a.Subscript.coeff, p) :: !groups;
                  preheader :=
                    Builder.assign b p (Expr.cast (Ty.Ptr elt) a.Subscript.base)
                    :: !preheader;
                  increments :=
                    Builder.assign b p
                      (Expr.binop Expr.Add (Expr.var p)
                         (Expr.int_const a.Subscript.coeff)
                         (Ty.Ptr elt))
                    :: !increments;
                  p
            in
            stats.multiplies_removed <- stats.multiplies_removed + 1;
            Some (Expr.cast addr.Expr.ty (Expr.var ptr))
      end
    in
    (* rewrite the addresses *)
    let rewrite_addr (e : Expr.t) =
      match affine e with
      | Some a -> (
          match pointer_for e a with Some p -> p | None -> e)
      | None -> e
    in
    let changed = ref false in
    let rewrite_stmt (s : Stmt.t) =
      match s.Stmt.desc with
      | Stmt.Assign (lv, rhs) ->
          let lv' =
            match lv with
            | Stmt.Lmem addr ->
                let a' = rewrite_addr addr in
                if a' != addr then changed := true;
                Stmt.Lmem a'
            | Stmt.Lvar _ -> lv
          in
          let rhs' =
            Expr.map
              (fun e ->
                match e.Expr.desc with
                | Expr.Load p ->
                    let p' = rewrite_addr p in
                    if p' != p then begin
                      changed := true;
                      Expr.load p'
                    end
                    else e
                | _ -> e)
              rhs
          in
          { s with Stmt.desc = Stmt.Assign (lv', rhs') }
      | _ -> s
    in
    let body = List.map rewrite_stmt d.body in
    (* --- hoist loop-invariant compound subexpressions --- *)
    let hoisted : (Expr.t * Var.t) list ref = ref [] in
    let is_compound (e : Expr.t) =
      match e.Expr.desc with
      | Expr.Binop _ | Expr.Unop _ -> true
      | _ -> false
    in
    (* the new pointer temps vary per iteration: never invariant *)
    let ptr_ids = List.map (fun (_, _, p) -> p.Var.id) !groups in
    let invariant e =
      invariant e
      && not (List.exists (fun id -> List.mem id (Expr.read_vars e)) ptr_ids)
    in
    let rec hoist (e : Expr.t) : Expr.t =
      if invariant e && is_compound e && not (Expr.is_const e) then begin
        match List.find_opt (fun (h, _) -> Expr.equal h e) !hoisted with
        | Some (_, v) -> Expr.var v
        | None ->
            let v = Builder.fresh_temp b ~name:"inv" e.Expr.ty in
            hoisted := (e, v) :: !hoisted;
            preheader := Builder.assign b v e :: !preheader;
            stats.invariants_hoisted <- stats.invariants_hoisted + 1;
            Expr.var v
      end
      else
        match e.Expr.desc with
        | Expr.Load p -> { e with desc = Expr.Load (hoist p) }
        | Expr.Binop (op, a, b2) ->
            { e with desc = Expr.Binop (op, hoist a, hoist b2) }
        | Expr.Unop (op, a) -> { e with desc = Expr.Unop (op, hoist a) }
        | Expr.Cast (ty, a) -> { e with desc = Expr.Cast (ty, hoist a) }
        | _ -> e
    in
    let body =
      List.map
        (fun (s : Stmt.t) ->
          match s.Stmt.desc with
          | Stmt.Assign (lv, rhs) ->
              let lv =
                match lv with
                | Stmt.Lmem a -> Stmt.Lmem (hoist a)
                | Stmt.Lvar _ -> lv
              in
              let rhs = hoist rhs in
              if !hoisted <> [] then changed := true;
              { s with Stmt.desc = Stmt.Assign (lv, rhs) }
          | _ -> s)
        body
    in
    if not !changed then None
    else begin
      stats.loops_reduced <- stats.loops_reduced + 1;
      Some
        (List.rev !preheader
        @ [
            {
              loop_stmt with
              Stmt.desc =
                Stmt.Do_loop { d with body = body @ List.rev !increments };
            };
          ])
    end
  end

let run ?(stats = new_stats ()) (prog : Prog.t) (func : Func.t) =
  let changed = ref false in
  let rec walk stmts = List.concat_map walk_stmt stmts
  and walk_stmt (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.Do_loop d when is_normalized d && (not d.parallel) && d.sync = [] -> (
        let d = { d with body = walk d.body } in
        let s = { s with Stmt.desc = Stmt.Do_loop d } in
        match process_loop prog func stats s d with
        | Some r ->
            changed := true;
            r
        | None -> [ s ])
    | Stmt.Do_loop d ->
        [ { s with desc = Stmt.Do_loop { d with body = walk d.body } } ]
    | Stmt.If (c, t, e) -> [ { s with desc = Stmt.If (c, walk t, walk e) } ]
    | Stmt.While (li, c, bd) -> [ { s with desc = Stmt.While (li, c, walk bd) } ]
    | _ -> [ s ]
  in
  func.Func.body <- walk func.Func.body;
  !changed
