(** Loop interchange (paper §7): reorder the levels of an analyzable
    nest into the cheapest legal order.  Legality: every direction
    vector stays lexicographically non-negative under the permutation.
    Profitability: {!Vpc_titan.Cost.nest_order_cycles} — a vectorizable
    innermost level dominates, stride-1 innermost access breaks ties,
    and measured trip counts fill in unknown bounds. *)

open Vpc_il

type options = {
  assume_noalias : bool;
  parallelize : bool;  (** cost model may assume parallel strips *)
  vlen : int;
  profile : Vpc_profile.Data.t option;
  report : (string -> unit) option;
  tune : (Vpc_support.Loc.t -> bool option) option;
      (** autotuned per-nest gate, keyed by the outer loop's location:
          [Some false] keeps the source order regardless of the cost
          model, [Some true] takes the cheapest legal reorder even on a
          cost tie; [None] follows the static policy *)
}

val default_options : options

type stats = {
  mutable nests_examined : int;
  mutable nests_interchanged : int;
  mutable orders_rejected_legality : int;
  mutable pgo_trip_nests : int;
}

val new_stats : unit -> stats
val run : ?options:options -> ?stats:stats -> Prog.t -> Func.t -> bool
