(* Loop fusion (paper §7).

   Adjacent conformable DO loops — flat loops or whole nests of equal
   depth and bounds — are merged into one loop so the vectorizer sees a
   single body: longer vector sections, one strip loop, one barrier.

   Each candidate is analyzed as a [Nest] unit (depth 1–3, stores-only
   body, exact dependence information).  Originally every iteration of
   the first loop runs before any iteration of the second; fusion makes
   iteration I run both bodies, so it is legal exactly when no conflict
   between the two bodies has a lexicographically negative direction
   vector (second-loop access strictly before the first-loop access that
   touches the same location).  Same-iteration conflicts are fine: the
   first body stays textually first.  Scalar state cannot leak between
   the parts — stores-only bodies define no scalars.

   The while→DO limit temps sitting between the loops (the second
   loop's preheader) are kept ahead of the fused loop when provably
   unaffected by the first loop; the second nest's inner-level limit
   temps hoist out the same way.  Profitability is a Titan cost
   comparison of the two separate nests against the fused one. *)

open Vpc_il
open Vpc_dependence
module Cost = Vpc_titan.Cost
module Profile = Vpc_profile

type options = {
  assume_noalias : bool;
  parallelize : bool;
  vlen : int;
  profile : Profile.Data.t option;
  report : (string -> unit) option;
  tune : (Vpc_support.Loc.t -> bool option) option;
      (* autotuned per-nest gate, keyed by either loop's head location:
         [Some false] keeps the pair separate, [Some true] fuses a legal
         pair even when the cost model prefers them apart *)
}

let default_options =
  {
    assume_noalias = false;
    parallelize = true;
    vlen = 32;
    profile = None;
    report = None;
    tune = None;
  }

type stats = {
  mutable pairs_examined : int;        (* adjacent analyzable pairs *)
  mutable loops_fused : int;
  mutable rejected_conformability : int;
  mutable rejected_dependence : int;
  mutable rejected_cost : int;
}

let new_stats () =
  {
    pairs_examined = 0;
    loops_fused = 0;
    rejected_conformability = 0;
    rejected_dependence = 0;
    rejected_cost = 0;
  }

(* ---- helpers ---- *)

let rec subst_expr map (e : Expr.t) : Expr.t =
  match e.Expr.desc with
  | Expr.Var v -> (
      match List.assoc_opt v map with
      | Some v' -> { e with Expr.desc = Expr.Var v' }
      | None -> e)
  | Expr.Load p -> { e with Expr.desc = Expr.Load (subst_expr map p) }
  | Expr.Binop (op, a, b) ->
      { e with Expr.desc = Expr.Binop (op, subst_expr map a, subst_expr map b) }
  | Expr.Unop (op, a) -> { e with Expr.desc = Expr.Unop (op, subst_expr map a) }
  | Expr.Cast (t, a) -> { e with Expr.desc = Expr.Cast (t, subst_expr map a) }
  | Expr.Const_int _ | Expr.Const_float _ | Expr.Addr_of _ -> e

(* Function-wide scalar definition counts and (single) defining rhs, for
   resolving symbolic bounds through their limit temps. *)
let scalar_def_info (func : Func.t) =
  let count = Hashtbl.create 16 and rhs = Hashtbl.create 16 in
  let bump v =
    Hashtbl.replace count v
      (1 + Option.value (Hashtbl.find_opt count v) ~default:0)
  in
  List.iter
    (fun s ->
      Stmt.iter
        (fun (st : Stmt.t) ->
          match st.Stmt.desc with
          | Stmt.Assign (Stmt.Lvar v, e) ->
              bump v;
              Hashtbl.replace rhs v e
          | Stmt.Call (Some (Stmt.Lvar v), _, _) ->
              bump v;
              Hashtbl.remove rhs v
          | Stmt.Do_loop d ->
              bump d.Stmt.index;
              Hashtbl.remove rhs d.Stmt.index
          | _ -> ())
        s)
    func.Func.body;
  (count, rhs)

(* The value a bound variable must hold: its unique defining rhs, when
   that rhs is a pure function of never-assigned locals (parameters).
   Lets [limit_9 = n-1] and [limit_13 = n-1] compare equal. *)
let resolve_bound (func : Func.t) (count, rhs) (e : Expr.t) : Expr.t =
  match e.Expr.desc with
  | Expr.Var v when Hashtbl.find_opt count v = Some 1 -> (
      let unsafe = Func.addressed_vars func in
      match Hashtbl.find_opt rhs v with
      | Some r
        when (not (Expr.contains_load r))
             && List.for_all
                  (fun u ->
                    (not (Hashtbl.mem count u))
                    && Func.find_var func u <> None
                    && not (Hashtbl.mem unsafe u))
                  (Expr.read_vars r) ->
          r
      | _ -> e)
  | _ -> e

let conformable func def_info (n1 : Nest.t) (n2 : Nest.t) =
  Nest.depth n1 = Nest.depth n2
  && List.for_all2
       (fun (a : Nest.level) (b : Nest.level) ->
         match a.Nest.trip, b.Nest.trip with
         | Some t1, Some t2 -> t1 = t2
         | _ ->
             Expr.equal
               (resolve_bound func def_info a.Nest.header.Stmt.hi)
               (resolve_bound func def_info b.Nest.header.Stmt.hi))
       n1.Nest.levels n2.Nest.levels

(* Vars defined (scalars and loop indices) and used anywhere in [s]. *)
let def_use_sets (s : Stmt.t) =
  let defs = Hashtbl.create 8 and uses = Hashtbl.create 16 in
  Stmt.iter
    (fun (st : Stmt.t) ->
      (match Stmt.defined_var st with
      | Some v -> Hashtbl.replace defs v ()
      | None -> ());
      (match st.Stmt.desc with
      | Stmt.Do_loop d -> Hashtbl.replace defs d.Stmt.index ()
      | _ -> ());
      List.iter (fun v -> Hashtbl.replace uses v ()) (Stmt.shallow_uses st))
    s;
  (defs, uses)

(* A statement sitting between the two loops may stay ahead of the fused
   loop when the first loop cannot observe or affect it: a pure scalar
   assignment whose inputs the first loop does not define and whose
   target the first loop neither reads nor writes. *)
let mid_safe (defs1, uses1) (m : Stmt.t) =
  match m.Stmt.desc with
  | Stmt.Assign (Stmt.Lvar v, rhs) ->
      (not (Expr.contains_load rhs))
      && (not (Hashtbl.mem defs1 v))
      && (not (Hashtbl.mem uses1 v))
      && List.for_all
           (fun u -> not (Hashtbl.mem defs1 u))
           (Expr.read_vars rhs)
  | _ -> false

(* Any conflict between the two bodies whose direction vector is
   lexicographically negative?  ([trips] from the first nest; the
   bounds are conformable.) *)
let fusion_preventing ~assume_noalias (n1 : Nest.t) (n2 : Nest.t)
    ~(trips : Test.bound array) =
  List.exists
    (fun ((r1 : Subscript.reference), (m1 : Subscript.multi_affine)) ->
      List.exists
        (fun ((r2 : Subscript.reference), (m2 : Subscript.multi_affine)) ->
          (r1.Subscript.kind = Subscript.Write
          || r2.Subscript.kind = Subscript.Write)
          &&
          match
            Alias.bases ~assume_noalias m1.Subscript.mbase m2.Subscript.mbase
          with
          | Alias.No_alias -> false
          | Alias.May_alias -> true
          | Alias.Must_alias delta ->
              List.exists
                (fun dirs -> Nest.lex_sign dirs < 0)
                (Test.direction_vectors ~c1:m1.Subscript.mcoeffs
                   ~c2:m2.Subscript.mcoeffs ~delta ~trips))
        n2.Nest.refs)
    n1.Nest.refs

(* Would the fused loop's innermost level carry a cross-body dependence
   (in either direction)?  Such statements would stay scalar, so the
   cost model treats the fused body as unvectorizable. *)
let cross_inner_carried ~assume_noalias (n1 : Nest.t) (n2 : Nest.t)
    ~(trips : Test.bound array) =
  let depth = Array.length trips in
  let ident = Array.init depth (fun i -> i) in
  let carried_between (refs1 : (Subscript.reference * Subscript.multi_affine) list) refs2 =
    List.exists
      (fun ((r1 : Subscript.reference), (m1 : Subscript.multi_affine)) ->
        List.exists
          (fun ((r2 : Subscript.reference), (m2 : Subscript.multi_affine)) ->
            (r1.Subscript.kind = Subscript.Write
            || r2.Subscript.kind = Subscript.Write)
            &&
            match
              Alias.bases ~assume_noalias m1.Subscript.mbase
                m2.Subscript.mbase
            with
            | Alias.No_alias -> false
            | Alias.May_alias -> true
            | Alias.Must_alias delta ->
                List.exists
                  (fun dirs ->
                    Nest.lex_sign dirs <> 0
                    && Nest.carrier_level ident
                         { Nest.src = 0; dst = 0; kind = Graph.Flow; dirs }
                       = Some (depth - 1))
                  (Test.direction_vectors ~c1:m1.Subscript.mcoeffs
                     ~c2:m2.Subscript.mcoeffs ~delta ~trips))
          refs2)
      refs1
  in
  carried_between n1.Nest.refs n2.Nest.refs

(* ---- rebuilding ---- *)

(* The first nest's loops, with the fused innermost body; inner-level
   prefixes of the first nest stay in place. *)
let rec chain (levels : Nest.level list) (body : Stmt.t list) : Stmt.t =
  match levels with
  | [] -> assert false
  | [ l ] ->
      { l.Nest.loop_stmt with Stmt.desc = Stmt.Do_loop { l.Nest.header with Stmt.body } }
  | l :: (next :: _ as rest) ->
      let inner = chain rest body in
      {
        l.Nest.loop_stmt with
        Stmt.desc =
          Stmt.Do_loop
            { l.Nest.header with Stmt.body = next.Nest.prefix @ [ inner ] };
      }

let fused_cost_report (opts : options) ~shape1 ~shape2 ~trips ~v1 ~v2 ~vf =
  let sched, procs =
    match opts.profile with
    | Some data ->
        (Cost.sched_of_name data.Profile.Data.sched, data.Profile.Data.procs)
    | None -> (Cost.Full, 1)
  in
  let cost shape ~vectorizable =
    Cost.nest_order_cycles ~sched shape ~trips ~vlen:opts.vlen ~procs
      ~parallelize:opts.parallelize ~vectorizable ~inner_strides:[]
  in
  let c1 = cost shape1 ~vectorizable:v1 in
  let c2 = cost shape2 ~vectorizable:v2 in
  let cf = cost (Cost.add_shape shape1 shape2) ~vectorizable:vf in
  (c1, c2, cf)

(* ---- the pass ---- *)

let run ?(options = default_options) ?(stats = new_stats ())
    (prog : Prog.t) (func : Func.t) : bool =
  let changed = ref false in
  let def_info = scalar_def_info func in
  let analyze s =
    Nest.analyze ~assume_noalias:options.assume_noalias ~min_depth:1 ~prog
      ~func s
  in
  (* measured trip for the cost model when a bound is unknown *)
  let trip_of (l : Nest.level) =
    match l.Nest.trip with
    | Some t -> t
    | None -> (
        let measured =
          match options.profile with
          | None -> None
          | Some data -> (
              match Profile.Key.of_loc l.Nest.loop_stmt.Stmt.loc with
              | None -> None
              | Some key ->
                  Option.bind
                    (Profile.Data.find_loop data key)
                    Profile.Data.mean_trips)
        in
        match measured with Some t when t > 0 -> t | _ -> Cost.default_trip)
  in
  (* try to fuse loop [s1] with the next loop further down [rest];
     returns the replacement for s1 :: rest on success *)
  let try_fuse (s1 : Stmt.t) (rest : Stmt.t list) : Stmt.t list option =
    match analyze s1 with
    | None -> None
    | Some n1 -> (
        let du1 = def_use_sets s1 in
        let rec find_partner mids = function
          | ({ Stmt.desc = Stmt.Do_loop _; _ } as s2) :: tail ->
              Some (List.rev mids, s2, tail)
          | m :: tail when mid_safe du1 m -> find_partner (m :: mids) tail
          | _ -> None
        in
        match find_partner [] rest with
        | None -> None
        | Some (mids, s2, tail) -> (
            match analyze s2 with
            | None -> None
            | Some n2 ->
                stats.pairs_examined <- stats.pairs_examined + 1;
                if not (conformable func def_info n1 n2) then begin
                  stats.rejected_conformability <-
                    stats.rejected_conformability + 1;
                  None
                end
                else
                  let trips =
                    Array.of_list
                      (List.map (fun (l : Nest.level) -> l.Nest.trip) n1.Nest.levels)
                  in
                  if
                    fusion_preventing
                      ~assume_noalias:options.assume_noalias n1 n2 ~trips
                  then begin
                    stats.rejected_dependence <- stats.rejected_dependence + 1;
                    (match options.report with
                    | Some report ->
                        report
                          (Printf.sprintf
                             "fuse %s: adjacent loops: fusion-preventing \
                              dependence, kept separate"
                             func.Func.name)
                    | None -> ());
                    None
                  end
                  else begin
                    let depth = Nest.depth n1 in
                    let ident = Array.init depth (fun i -> i) in
                    let shape1 = Cost.shape_of_stmts n1.Nest.body in
                    let shape2 = Cost.shape_of_stmts n2.Nest.body in
                    let v1 = not (Nest.inner_carries ident n1) in
                    let v2 = not (Nest.inner_carries ident n2) in
                    let vf =
                      v1 && v2
                      && not
                           (cross_inner_carried
                              ~assume_noalias:options.assume_noalias n1 n2
                              ~trips)
                    in
                    let cost_trips =
                      Array.of_list (List.map trip_of n1.Nest.levels)
                    in
                    let c1, c2, cf =
                      fused_cost_report options ~shape1 ~shape2
                        ~trips:cost_trips ~v1 ~v2 ~vf
                    in
                    let tuned =
                      match options.tune with
                      | None -> None
                      | Some f -> (
                          match (f s1.Stmt.loc, f s2.Stmt.loc) with
                          | Some false, _ | _, Some false -> Some false
                          | Some true, _ | _, Some true -> Some true
                          | None, None -> None)
                    in
                    let keep_separate =
                      match tuned with
                      | Some false -> true
                      | Some true -> false
                      | None -> cf >= c1 + c2
                    in
                    if keep_separate then begin
                      stats.rejected_cost <- stats.rejected_cost + 1;
                      (match options.report with
                      | Some report ->
                          report
                            (Printf.sprintf
                               "fuse %s: est separate=%d+%d fused=%d: kept \
                                separate"
                               func.Func.name c1 c2 cf)
                      | None -> ());
                      None
                    end
                    else begin
                      (match options.report with
                      | Some report ->
                          report
                            (Printf.sprintf
                               "fuse %s: est separate=%d+%d fused=%d: fused"
                               func.Func.name c1 c2 cf)
                      | None -> ());
                      stats.loops_fused <- stats.loops_fused + 1;
                      changed := true;
                      let map =
                        List.map2
                          (fun (a : Nest.level) (b : Nest.level) ->
                            (b.Nest.index, a.Nest.index))
                          n1.Nest.levels n2.Nest.levels
                      in
                      let body2 =
                        List.map
                          (Stmt.map_exprs_shallow (subst_expr map))
                          n2.Nest.body
                      in
                      let prefixes2 =
                        List.concat_map
                          (fun (l : Nest.level) -> l.Nest.prefix)
                          n2.Nest.levels
                      in
                      let fused =
                        chain n1.Nest.levels (n1.Nest.body @ body2)
                      in
                      Some (mids @ prefixes2 @ (fused :: tail))
                    end
                  end))
  in
  let rec walk stmts =
    let stmts = List.map walk_stmt stmts in
    scan stmts
  and scan = function
    | [] -> []
    | ({ Stmt.desc = Stmt.Do_loop _; _ } as s1) :: rest -> (
        match try_fuse s1 rest with
        | Some replacement -> scan replacement
        | None -> s1 :: scan rest)
    | s :: rest -> s :: scan rest
  and walk_stmt (s : Stmt.t) : Stmt.t =
    match s.Stmt.desc with
    | Stmt.Do_loop d ->
        { s with Stmt.desc = Stmt.Do_loop { d with Stmt.body = walk d.Stmt.body } }
    | Stmt.If (c, t, e) -> { s with Stmt.desc = Stmt.If (c, walk t, walk e) }
    | Stmt.While (li, c, b) ->
        { s with Stmt.desc = Stmt.While (li, c, walk b) }
    | _ -> s
  in
  func.Func.body <- walk func.Func.body;
  !changed
