(** Doacross parallelization.

    The §10 path parallelizes pointer-chasing while loops: the body
    splits into a serialized prefix — the statements computing the
    loop-carried scalar state (the pointer advance, counters, the
    condition's inputs) — and a parallel rest (the memory work), which
    the Titan spreads over processors.  Applied only to loops carrying
    the independence pragma, which supplies the paper's "assumption that
    each motion down a pointer goes to independent storage".

    The post/wait path pipelines counted DO loops whose carried
    dependences all have known constant distance: iterations spread
    round-robin over processors, each crossing dependence ordered by a
    post after its source statement and a wait before its sink, with
    redundant synchronization eliminated and a pipeline cost model
    gating the transformation. *)

open Vpc_il

type stats = {
  (* §10 while-loop doacross *)
  mutable loops_transformed : int;
  mutable rejected_shape : int;
  mutable rejected_dependence : int;
  mutable no_carried : int;
      (** no carried scalar state to serialize, or nothing to spread *)
  (* DO-loop post/wait pipelining *)
  mutable do_pipelined : int;
  mutable syncs_placed : int;
  mutable syncs_eliminated : int;
  mutable do_rejected_scalar : int;
      (** carried register recurrence, or a live-out scalar definition *)
  mutable do_rejected_distance : int;
      (** a carried dependence with no constant distance *)
  mutable do_rejected_cost : int;  (** pipeline model prefers serial *)
}

val new_stats : unit -> stats

type options = {
  pragma : bool;  (** enable the §10 while-loop path *)
  sync : bool;  (** enable the DO-loop post/wait path *)
  procs : int;  (** static processor assumption for the pipeline model *)
  sched : Vpc_titan.Cost.sched;
  assume_noalias : bool;
  profile : Vpc_profile.Data.t option;
      (** measured trips/procs/sched override the static assumptions *)
  report : (string -> unit) option;  (** one line per pipelined loop *)
  why_scalar : (string -> unit) option;
      (** one line per candidate left serial: the unsynchronizable edge
          or the cost-model loss *)
  range : (Stmt.t -> Expr.t -> int option * int option) option;
      (** symbolic range oracle for dependence tests *)
  tune : (Vpc_support.Loc.t -> bool option) option;
      (** autotuned per-loop gate: [Some false] keeps the loop serial,
          [Some true] pipelines a synchronizable loop even when the
          pipeline model prefers serial; [None] follows the model *)
}

(** While path on, post/wait path off; 4 processors, [Full]
    scheduling. *)
val default_options : options

(** Does a chain of sync edges transitively order the carried edge
    (src, dst, dist)?  For an exact edge ([cum = false]) distances along
    the chain must sum to [dist] exactly, except that a cumulative sync
    may terminate the chain early — it orders against every iteration at
    least its distance back.  For a symbolic edge known only to have
    distance >= [dist] ([cum = true]) only a single cumulative sync of
    distance <= [dist] qualifies.  The race checker re-derives the same
    rule independently when it validates doacross loops. *)
val covers :
  Stmt.dsync list -> src:int -> dst:int -> dist:int -> cum:bool -> bool

val run : ?stats:stats -> ?options:options -> Prog.t -> Func.t -> bool
