(* Scalar replacement of regular cross-iteration memory references
   (paper §6): in the backsolve loop

       p[i] = z[i] * (y[i] - q[i])      with p = &x[1], q = &x[0]

   the read q[i] at iteration i fetches the value p[i-1] stored one
   iteration earlier.  "This use is quite regular; the Titan vectorizer is
   able to recognize this regularity and pull the values up into
   registers", removing one load per iteration and — critically —
   removing the memory-access constraint that blocks instruction
   scheduling overlap.

   We handle the distance-1 flow dependence from a statement to itself:
   the stored value is kept in a register temp that next iteration's read
   uses directly. *)

open Vpc_il
open Vpc_dependence

type stats = {
  mutable loops_transformed : int;
  mutable loads_removed : int;
}

let new_stats () = { loops_transformed = 0; loads_removed = 0 }

let is_normalized (d : Stmt.do_loop) =
  Expr.is_zero d.lo
  && (match d.step.Expr.desc with Expr.Const_int 1 -> true | _ -> false)

(* Try to transform one loop; the body must be a single Lmem assignment
   whose only carried dependence is the distance-1 flow from its write to
   one of its reads. *)
let process_loop prog (func : Func.t) stats (loop_stmt : Stmt.t)
    (d : Stmt.do_loop) : Stmt.t list option =
  match d.body with
  | [ ({ Stmt.desc = Stmt.Assign (Stmt.Lmem w_addr, rhs); _ } as body_stmt) ]
    -> (
      let defined_in_body, mem_written =
        Vpc_analysis.Reaching.vars_defined_in d.body
      in
      let unsafe = Func.addressed_vars func in
      let invariant (e : Expr.t) =
        ((not (Expr.contains_load e)) || not mem_written)
        && List.for_all
             (fun v ->
               v <> d.index
               && (not (Hashtbl.mem defined_in_body v))
               && ((not mem_written) || not (Hashtbl.mem unsafe v))
               &&
               match Func.find_var func v with
               | Some vm -> not vm.Var.volatile
               | None -> false)
             (Expr.read_vars e)
      in
      let affine e = Subscript.affine_of ~index:d.index ~invariant e in
      match affine w_addr with
      | Some wa when wa.Subscript.coeff <> 0 && invariant wa.Subscript.base -> (
          (* find the reads; exactly one may carry the distance-1 flow *)
          let reads = Subscript.loads_of rhs [] in
          let classify (raddr, _ty) =
            match affine raddr with
            | Some ra
              when ra.Subscript.coeff = wa.Subscript.coeff
                   && invariant ra.Subscript.base -> (
                match Alias.bases ra.Subscript.base wa.Subscript.base with
                | Alias.Must_alias delta when delta = wa.Subscript.coeff ->
                    (* wait: delta = base_w - base_r computed as (b2 - b1)
                       with b1 = ra.base, b2 = wa.base; the read at
                       iteration k touches the address written at k-1 when
                       base_r = base_w - coeff, i.e. delta = +coeff *)
                    `Carried_flow_1
                | Alias.Must_alias 0 -> `Same_location
                | Alias.Must_alias _ -> `Other_distance
                | Alias.No_alias -> `Independent
                | Alias.May_alias -> `Unknown)
            | _ -> `Unknown
          in
          let classified = List.map (fun r -> (r, classify r)) reads in
          let carried =
            List.filter (fun (_, c) -> c = `Carried_flow_1) classified
          in
          let bad =
            List.exists
              (fun (_, c) -> c = `Unknown || c = `Other_distance)
              classified
          in
          match carried, bad with
          | [ ((r_addr, r_ty), _) ], false ->
              let b = Builder.ctx prog func in
              let reg = Builder.fresh_temp b ~name:"f_reg" r_ty in
              (* preheader: load the value the first iteration reads *)
              let ra = Option.get (affine r_addr) in
              let pre =
                Builder.assign b reg
                  (Expr.load
                     (Expr.cast (Ty.Ptr r_ty) ra.Subscript.base))
              in
              (* replace the carried read with the register, bind the
                 stored value, update the register after the store *)
              let rhs' =
                Expr.map
                  (fun e ->
                    match e.Expr.desc with
                    | Expr.Load p when Expr.equal p r_addr -> Expr.var reg
                    | _ -> e)
                  rhs
              in
              let bind_stmt, tv = Builder.bind b ~name:"f_val" rhs' in
              let new_body =
                [
                  bind_stmt;
                  { body_stmt with Stmt.desc = Stmt.Assign (Stmt.Lmem w_addr, tv) };
                  Builder.assign b reg tv;
                ]
              in
              stats.loops_transformed <- stats.loops_transformed + 1;
              stats.loads_removed <- stats.loads_removed + 1;
              Some
                [
                  pre;
                  { loop_stmt with Stmt.desc = Stmt.Do_loop { d with body = new_body } };
                ]
          | _ -> None)
      | _ -> None)
  | _ -> None

let run ?(stats = new_stats ()) (prog : Prog.t) (func : Func.t) =
  let changed = ref false in
  let rec walk stmts = List.concat_map walk_stmt stmts
  and walk_stmt (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.Do_loop d when is_normalized d && (not d.parallel) && d.sync = [] -> (
        let d = { d with body = walk d.body } in
        let s = { s with Stmt.desc = Stmt.Do_loop d } in
        match process_loop prog func stats s d with
        | Some r ->
            changed := true;
            r
        | None -> [ s ])
    | Stmt.Do_loop d ->
        [ { s with desc = Stmt.Do_loop { d with body = walk d.body } } ]
    | Stmt.If (c, t, e) -> [ { s with desc = Stmt.If (c, walk t, walk e) } ]
    | Stmt.While (li, c, bd) -> [ { s with desc = Stmt.While (li, c, walk bd) } ]
    | _ -> [ s ]
  in
  func.Func.body <- walk func.Func.body;
  !changed
