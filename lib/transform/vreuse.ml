(* Vector-register reuse.

   The vectorizer's output still treats the vector register file as a
   scratchpad: every strip re-loads its operands from memory and stores
   its result back, even when an enclosing serial loop revisits the same
   section on every iteration.  On a machine with a single memory port
   (§2) that traffic is the whole cost — matmul's c[i][j:j+vl] is loaded
   and stored once per k although k never moves it.

   Three reuse transformations, all on the vectorized IL:

   1. Strip residency (accumulator localization).  A serial DO loop K
      whose body is exactly one strip loop of vector statements is
      interchanged — the strip loop becomes the outer level — whenever
      every section written is K-invariant and every K-varying read is
      disjoint from every write.  Then each statement of the form

          sec = f(sec, ...)        with sec K-invariant

      is rewritten to keep sec in a vector temporary ([Stmt.Vdef],
      backed by one fixed vector register in codegen):

          vt = sec                 (* load once, before K *)
          do K { vt = f(vt, ...) } (* register-resident accumulation *)
          sec = vt                 (* store once, after K *)

   2. Invariant Vload hoisting.  A section read inside K that is
      K-invariant and disjoint from everything K writes is loaded into a
      temporary once, ahead of the loop.

   3. Vstore→Vload forwarding and operand sharing.  In a straight-line
      run of vector statements (notably a fused strip loop's body,
      where several statements share one vi/len), a store whose section
      is read again later forwards through a temporary, and a section
      read more than once is loaded once and shared.

   Legality is judged by [Alias.bases]: forwarding and residency demand
   [Must_alias 0] with equal constant strides and syntactically equal
   counts (the identical section); hoisting demands [No_alias] against
   every write.  Volatile storage and address expressions that read
   memory disqualify a section.  Profitability of the interchange is
   priced by the memory-port traffic model ([Cost.strip_port_cycles],
   [Cost.reuse_vector_loop_cycles]); a measured profile refines the
   repetition count when it knows the loop. *)

open Vpc_il
open Vpc_dependence
module Cost = Vpc_titan.Cost
module Profile = Vpc_profile

type options = {
  assume_noalias : bool;  (* pointer params get Fortran semantics *)
  profile : Profile.Data.t option;  (* refines repetition counts *)
  report : (string -> unit) option;  (* one line per decision *)
  tune : (Vpc_support.Loc.t -> bool option) option;
      (* autotuned per-loop gate: [Some false] leaves this DO loop's
         vector statements untouched (no residency interchange, no
         localization); [Some true]/[None] follow the static policy *)
}

let default_options =
  { assume_noalias = false; profile = None; report = None; tune = None }

type stats = {
  mutable strips_interchanged : int;  (* strip loop hoisted over a DO *)
  mutable accumulators_localized : int;  (* load+store pairs made resident *)
  mutable invariant_loads_hoisted : int;
  mutable stores_forwarded : int;  (* Vstore→Vload through a register *)
  mutable loads_shared : int;  (* one Vload feeding several statements *)
  mutable pgo_priced : int;  (* a measured trip count refined the pricing *)
}

let new_stats () =
  {
    strips_interchanged = 0;
    accumulators_localized = 0;
    invariant_loads_hoisted = 0;
    stores_forwarded = 0;
    loads_shared = 0;
    pgo_priced = 0;
  }

(* ----------------------------------------------------------------- *)
(* Sections: identity, disjointness, eligibility                     *)
(* ----------------------------------------------------------------- *)

let section_elt (sec : Stmt.section) =
  match sec.Stmt.base.Expr.ty with Ty.Ptr t -> t | t -> t

let sec_exprs (sec : Stmt.section) =
  [ sec.Stmt.base; sec.Stmt.count; sec.Stmt.stride ]

(* The identical section: provably zero base distance, equal constant
   strides, syntactically equal counts, same element type.  Anything
   weaker (unknown distance, differing strides) may interleave the two
   element sequences and must not share a register. *)
let same_section ~noalias (a : Stmt.section) (b : Stmt.section) =
  (match Alias.bases ~assume_noalias:noalias a.Stmt.base b.Stmt.base with
  | Alias.Must_alias 0 -> true
  | Alias.No_alias | Alias.Must_alias _ | Alias.May_alias -> false)
  && (match
        (Expr.const_int_val a.Stmt.stride, Expr.const_int_val b.Stmt.stride)
      with
     | Some x, Some y -> x = y
     | _ -> false)
  && Expr.equal a.Stmt.count b.Stmt.count
  && Ty.equal (section_elt a) (section_elt b)

let disjoint ~noalias (a : Stmt.section) (b : Stmt.section) =
  match Alias.bases ~assume_noalias:noalias a.Stmt.base b.Stmt.base with
  | Alias.No_alias -> true
  | Alias.Must_alias _ | Alias.May_alias -> false

(* A section whose value may live in a register: address expressions
   read no memory (so they stay valid while stores intervene), a
   constant stride, and no volatile storage anywhere near it — neither
   in the address computation nor as the addressed object itself. *)
let section_ok prog func (sec : Stmt.section) =
  let var_ok v =
    match Prog.find_var prog (Some func) v with
    | Some vm -> not vm.Var.volatile
    | None -> false
  in
  List.for_all (fun e -> not (Expr.contains_load e)) (sec_exprs sec)
  && Option.is_some (Expr.const_int_val sec.Stmt.stride)
  && List.for_all
       (fun e -> List.for_all var_ok (Expr.read_vars e))
       (sec_exprs sec)
  && (match Alias.canonicalize sec.Stmt.base with
     | Some { Alias.root = Some (Alias.Object v); _ }
     | Some { Alias.root = Some (Alias.Pointer v); _ } ->
         var_ok v
     | _ -> true)

(* Invariant with respect to loop index [k]. *)
let sec_invariant k (sec : Stmt.section) =
  List.for_all (fun e -> not (List.mem k (Expr.read_vars e))) (sec_exprs sec)

(* ----------------------------------------------------------------- *)
(* Vector-expression traversals                                      *)
(* ----------------------------------------------------------------- *)

let rec vexpr_sections (ve : Stmt.vexpr) : Stmt.section list =
  match ve with
  | Stmt.Vsec s -> [ s ]
  | Stmt.Vscalar _ | Stmt.Viota _ | Stmt.Vtmp _ -> []
  | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> vexpr_sections a
  | Stmt.Vbin (_, a, b) -> vexpr_sections a @ vexpr_sections b

let rec vexpr_scalars (ve : Stmt.vexpr) : Expr.t list =
  match ve with
  | Stmt.Vsec s -> sec_exprs s
  | Stmt.Vscalar e -> [ e ]
  | Stmt.Viota (o, s) -> [ o; s ]
  | Stmt.Vtmp _ -> []
  | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> vexpr_scalars a
  | Stmt.Vbin (_, a, b) -> vexpr_scalars a @ vexpr_scalars b

(* Pointers of every scalar memory read embedded in [ve]. *)
let vexpr_load_ptrs ve =
  let ptrs = ref [] in
  List.iter
    (Expr.iter (fun (e : Expr.t) ->
         match e.Expr.desc with
         | Expr.Load p -> ptrs := p :: !ptrs
         | _ -> ()))
    (vexpr_scalars ve);
  !ptrs

(* Replace every read of the identical section by a vector temporary. *)
let rec subst_section ~noalias (sec : Stmt.section) (vt : int) (ty : Ty.t)
    (ve : Stmt.vexpr) : Stmt.vexpr =
  match ve with
  | Stmt.Vsec s when same_section ~noalias s sec -> Stmt.Vtmp (vt, ty)
  | Stmt.Vsec _ | Stmt.Vscalar _ | Stmt.Viota _ | Stmt.Vtmp _ -> ve
  | Stmt.Vcast (t, a) -> Stmt.Vcast (t, subst_section ~noalias sec vt ty a)
  | Stmt.Vun (op, a) -> Stmt.Vun (op, subst_section ~noalias sec vt ty a)
  | Stmt.Vbin (op, a, b) ->
      Stmt.Vbin
        ( op,
          subst_section ~noalias sec vt ty a,
          subst_section ~noalias sec vt ty b )

let reads_section ~noalias sec ve =
  List.exists (fun s -> same_section ~noalias s sec) (vexpr_sections ve)

(* Operation mix of one vector element, for the traffic model. *)
let vbody_shape (vstmts : Stmt.vstmt list) : Cost.shape =
  let mem = ref 0 and flops = ref 0 and iops = ref 0 in
  List.iter
    (fun (v : Stmt.vstmt) ->
      incr mem;  (* the store *)
      let fp = Ty.is_float v.Stmt.velt in
      let rec go = function
        | Stmt.Vsec _ -> incr mem
        | Stmt.Vscalar _ | Stmt.Vtmp _ -> ()
        | Stmt.Viota _ -> incr iops
        | Stmt.Vcast (_, a) ->
            incr flops;
            go a
        | Stmt.Vun (_, a) ->
            if fp then incr flops else incr iops;
            go a
        | Stmt.Vbin (_, a, b) ->
            if fp then incr flops else incr iops;
            go a;
            go b
      in
      go v.Stmt.vsrc)
    vstmts;
  { Cost.mem_refs = !mem; flops = !flops; iops = !iops }

(* ----------------------------------------------------------------- *)
(* Residency analysis of an all-vector loop body                     *)
(* ----------------------------------------------------------------- *)

(* What may stay in registers across a serial loop over [k] whose body
   is the vector statements [vstmts]:

   - accumulators: statement i writes a k-invariant section that its own
     right-hand side reads back (the identical section), no other
     statement writes anything aliasing it, and every other read as well
     as every embedded scalar load is either that same section or
     provably disjoint from it;
   - hoists: a k-invariant section read somewhere, disjoint from every
     written section.

   Returns [None] when some pair of references prevents reasoning —
   a write aliasing another write, or a read overlapping a write without
   being the identical section. *)
type residency = {
  accumulators : int list;  (* statement indices *)
  hoists : Stmt.section list;  (* one representative per family *)
}

let analyze_body ~noalias prog func ~k (vstmts : Stmt.vstmt array) :
    residency option =
  let n = Array.length vstmts in
  let dsts = Array.map (fun (v : Stmt.vstmt) -> v.Stmt.vdst) vstmts in
  let ok = ref true in
  (* distinct writes must be provably disjoint *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (disjoint ~noalias dsts.(i) dsts.(j)) then ok := false
    done
  done;
  (* every read is the identical section of some write or disjoint from
     all writes; scalar loads must be disjoint from all writes *)
  if !ok then
    Array.iter
      (fun (v : Stmt.vstmt) ->
        List.iter
          (fun s ->
            if
              not
                (Array.for_all
                   (fun d ->
                     same_section ~noalias s d || disjoint ~noalias s d)
                   dsts)
            then ok := false)
          (vexpr_sections v.Stmt.vsrc);
        List.iter
          (fun p ->
            if
              not
                (Array.for_all
                   (fun (d : Stmt.section) ->
                     Alias.bases ~assume_noalias:noalias p d.Stmt.base
                     = Alias.No_alias)
                   dsts)
            then ok := false)
          (vexpr_load_ptrs v.Stmt.vsrc))
      vstmts;
  if not !ok then None
  else begin
    let accumulators = ref [] in
    Array.iteri
      (fun i (v : Stmt.vstmt) ->
        let d = dsts.(i) in
        if
          sec_invariant k d
          && section_ok prog func d
          && reads_section ~noalias d v.Stmt.vsrc
          && Ty.equal (section_elt d) v.Stmt.velt
        then accumulators := i :: !accumulators)
      vstmts;
    let accumulators = List.rev !accumulators in
    (* hoists: invariant reads disjoint from every write *)
    let hoists = ref [] in
    Array.iter
      (fun (v : Stmt.vstmt) ->
        List.iter
          (fun s ->
            if
              sec_invariant k s
              && section_ok prog func s
              && Array.for_all (fun d -> disjoint ~noalias s d) dsts
              && not
                   (List.exists (fun h -> same_section ~noalias h s) !hoists)
            then hoists := s :: !hoists)
          (vexpr_sections v.Stmt.vsrc))
      vstmts;
    Some { accumulators; hoists = List.rev !hoists }
  end

(* ----------------------------------------------------------------- *)
(* The pass                                                          *)
(* ----------------------------------------------------------------- *)

type env = {
  prog : Prog.t;
  func : Func.t;
  ctx : Builder.ctx;
  noalias : bool;
  opts : options;
  stats : stats;
  mutable next_vt : int;
  mutable changed : bool;
}

let fresh_vt env =
  let t = env.next_vt in
  env.next_vt <- t + 1;
  t

let report env fmt =
  Printf.ksprintf
    (fun msg ->
      match env.opts.report with
      | Some f -> f (Printf.sprintf "vreuse %s: %s" env.func.Func.name msg)
      | None -> ())
    fmt

let index_name env id =
  match Prog.find_var env.prog (Some env.func) id with
  | Some v -> v.Var.name
  | None -> string_of_int id

(* Constant trip count of a DO loop, requiring unit step. *)
let const_trip (d : Stmt.do_loop) =
  match
    ( Expr.const_int_val d.Stmt.lo,
      Expr.const_int_val d.Stmt.hi,
      Expr.const_int_val d.Stmt.step )
  with
  | Some lo, Some hi, Some 1 -> Some (hi - lo + 1)
  | _ -> None

(* Measured mean trip count of a loop, when the profile has one. *)
let measured_trips env (s : Stmt.t) =
  match env.opts.profile with
  | None -> None
  | Some data -> (
      match Profile.Key.of_loc s.Stmt.loc with
      | None -> None
      | Some key ->
          Option.bind (Profile.Data.find_loop data key) Profile.Data.mean_trips)

(* Rewrite an all-vector serial loop body for residency: accumulators
   become register-resident [Vdef]s with a load before and a store after
   the loop; invariant reads load once ahead of it.  [k_stmt] is the
   loop statement, [d] its header with [d.body] all [Vector].  Returns
   the replacement statement list, or [None] if nothing applies. *)
let localize env (k_stmt : Stmt.t) (d : Stmt.do_loop) : Stmt.t list option =
  let trip = const_trip d in
  match trip with
  | Some trip when (not d.Stmt.parallel) && trip >= 1 -> (
      let vstmts =
        List.map
          (fun (s : Stmt.t) ->
            match s.Stmt.desc with
            | Stmt.Vector v -> Some (s, v)
            | _ -> None)
          d.Stmt.body
      in
      if List.exists Option.is_none vstmts then None
      else
        let vstmts = List.filter_map (fun x -> x) vstmts in
        let varr = Array.of_list (List.map snd vstmts) in
        if Array.length varr = 0 then None
        else
          match analyze_body ~noalias:env.noalias env.prog env.func
                  ~k:d.Stmt.index varr
          with
          | None -> None
          | Some { accumulators; hoists } ->
              let want_hoists = trip >= 2 in
              if accumulators = [] && ((not want_hoists) || hoists = []) then
                None
              else begin
                let pre = ref [] and post = ref [] in
                let body = Array.of_list (List.map fst vstmts) in
                let vsub sec vt ty =
                  Array.iteri
                    (fun j (s : Stmt.t) ->
                      match s.Stmt.desc with
                      | Stmt.Vector v ->
                          body.(j) <-
                            {
                              s with
                              Stmt.desc =
                                Stmt.Vector
                                  {
                                    v with
                                    Stmt.vsrc =
                                      subst_section ~noalias:env.noalias sec
                                        vt ty v.Stmt.vsrc;
                                  };
                            }
                      | Stmt.Vdef vd ->
                          body.(j) <-
                            {
                              s with
                              Stmt.desc =
                                Stmt.Vdef
                                  {
                                    vd with
                                    Stmt.vval =
                                      subst_section ~noalias:env.noalias sec
                                        vt ty vd.Stmt.vval;
                                  };
                            }
                      | _ -> ())
                    body
                in
                List.iter
                  (fun i ->
                    let v =
                      match body.(i).Stmt.desc with
                      | Stmt.Vector v -> v
                      | _ -> assert false
                    in
                    let d_sec = v.Stmt.vdst in
                    let t = fresh_vt env in
                    let ty = v.Stmt.velt in
                    let loc = body.(i).Stmt.loc in
                    pre :=
                      Builder.stmt env.ctx ~loc
                        (Stmt.Vdef
                           {
                             Stmt.vt = t;
                             vval = Stmt.Vsec d_sec;
                             vcount = d_sec.Stmt.count;
                             vty = ty;
                           })
                      :: !pre;
                    post :=
                      Builder.stmt env.ctx ~loc
                        (Stmt.Vector
                           { Stmt.vdst = d_sec; vsrc = Stmt.Vtmp (t, ty); velt = ty })
                      :: !post;
                    (* substitute reads everywhere, then rebind i *)
                    vsub d_sec t ty;
                    let v =
                      match body.(i).Stmt.desc with
                      | Stmt.Vector v -> v
                      | _ -> assert false
                    in
                    body.(i) <-
                      {
                        (body.(i)) with
                        Stmt.desc =
                          Stmt.Vdef
                            {
                              Stmt.vt = t;
                              vval = v.Stmt.vsrc;
                              vcount = d_sec.Stmt.count;
                              vty = ty;
                            };
                      };
                    env.stats.accumulators_localized <-
                      env.stats.accumulators_localized + 1;
                    report env
                      "accumulator section kept in vt%d across do %s (%d \
                       iterations: 2 vector memory ops instead of %d)"
                      t (index_name env d.Stmt.index) trip (2 * trip))
                  accumulators;
                if want_hoists then
                  List.iter
                    (fun sec ->
                      let t = fresh_vt env in
                      let ty = section_elt sec in
                      pre :=
                        Builder.stmt env.ctx ~loc:k_stmt.Stmt.loc
                          (Stmt.Vdef
                             {
                               Stmt.vt = t;
                               vval = Stmt.Vsec sec;
                               vcount = sec.Stmt.count;
                               vty = ty;
                             })
                        :: !pre;
                      vsub sec t ty;
                      env.stats.invariant_loads_hoisted <-
                        env.stats.invariant_loads_hoisted + 1;
                      report env
                        "invariant Vload hoisted into vt%d out of do %s (1 \
                         load instead of %d)"
                        t (index_name env d.Stmt.index) trip)
                    hoists;
                env.changed <- true;
                let k' =
                  {
                    k_stmt with
                    Stmt.desc =
                      Stmt.Do_loop { d with Stmt.body = Array.to_list body };
                  }
                in
                Some (List.rev !pre @ [ k' ] @ List.rev !post)
              end)
  | _ -> None

(* Upper bounds known for scalar variables after a strip loop's prefix:
   a constant assignment, or the vectorizer's clamp

       if (len > s) len = s

   which leaves [len <= max s c] whichever way the test goes.  Any other
   assignment forgets the variable. *)
let prefix_bounds (prefix : Stmt.t list) : (int * int) list =
  let drop v bounds = List.remove_assoc v bounds in
  List.fold_left
    (fun bounds (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lvar v, e) -> (
          match Expr.const_int_val e with
          | Some c -> (v, c) :: drop v bounds
          | None -> drop v bounds)
      | Stmt.If
          ( {
              Expr.desc =
                Expr.Binop (Expr.Gt, { Expr.desc = Expr.Var v; _ }, hi);
              _;
            },
            [ { Stmt.desc = Stmt.Assign (Stmt.Lvar v', e); _ } ],
            [] )
        when v = v' -> (
          match (Expr.const_int_val hi, Expr.const_int_val e) with
          | Some h, Some c -> (v, max h c) :: drop v bounds
          | _ -> drop v bounds)
      | Stmt.If (_, t, e) ->
          let killed = ref bounds in
          Stmt.iter_list
            (fun (s : Stmt.t) ->
              match s.Stmt.desc with
              | Stmt.Assign (Stmt.Lvar v, _) -> killed := drop v !killed
              | _ -> ())
            (t @ e);
          !killed
      | _ -> bounds)
    [] prefix

(* Strip residency: a serial loop K whose body is exactly a serial strip
   loop of vector statements.  Interchanging the two levels is legal
   when (a) within one strip the K order of statements is preserved —
   automatic — and (b) distinct strips never touch common storage: every
   written section advances with the strip index at exactly its stride
   ([Subscript.affine_of] coefficient = stride) and covers at most the
   strip step's worth of elements, so consecutive strips tile without
   overlap; reads are covered by [analyze_body]'s discipline (identical
   to a write, or disjoint from all writes).  The interchange is priced
   by the port-traffic model; [localize] then makes the residency
   real. *)
let try_strip_residency env (k_stmt : Stmt.t) (k : Stmt.do_loop) :
    Stmt.t list option =
  match (k.Stmt.body, const_trip k) with
  | [ ({ Stmt.desc = Stmt.Do_loop strip; _ } as strip_stmt) ], Some ktrip
    when (not k.Stmt.parallel) && (not strip.Stmt.parallel) && ktrip >= 1 ->
      let k_free e = not (List.mem k.Stmt.index (Expr.read_vars e)) in
      (* strip bounds and the scalar prefix must not depend on K *)
      let rec prefix_ok (s : Stmt.t) =
        match s.Stmt.desc with
        | Stmt.Assign (Stmt.Lvar _, e) -> (not (Expr.contains_load e)) && k_free e
        | Stmt.If (c, t, e) ->
            (not (Expr.contains_load c))
            && k_free c
            && List.for_all prefix_ok t
            && List.for_all prefix_ok e
        | _ -> false
      in
      let rec split_prefix acc = function
        | s :: rest when prefix_ok s -> split_prefix (s :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let prefix, tail = split_prefix [] strip.Stmt.body in
      let vstmts =
        List.map
          (fun (s : Stmt.t) ->
            match s.Stmt.desc with Stmt.Vector v -> Some v | _ -> None)
          tail
      in
      if
        tail = []
        || List.exists Option.is_none vstmts
        || not
             (List.for_all k_free
                [ strip.Stmt.lo; strip.Stmt.hi; strip.Stmt.step ])
      then None
      else begin
        let varr = Array.of_list (List.filter_map (fun x -> x) vstmts) in
        let step =
          match Expr.const_int_val strip.Stmt.step with
          | Some s when s > 0 -> s
          | _ -> 0
        in
        let bounds = prefix_bounds prefix in
        let strip_free e =
          not (List.mem strip.Stmt.index (Expr.read_vars e))
        in
        (* consecutive strips of a written section must tile: the base
           advances by stride per strip-index increment and the count
           never exceeds the step *)
        let tiles (w : Stmt.section) =
          (match
             Subscript.affine_of ~index:strip.Stmt.index ~invariant:strip_free
               w.Stmt.base
           with
          | Some a -> (
              a.Subscript.coeff <> 0
              &&
              match Expr.const_int_val w.Stmt.stride with
              | Some st -> a.Subscript.coeff = st
              | None -> false)
          | None -> false)
          &&
          match Expr.const_int_val w.Stmt.count with
          | Some c -> c <= step
          | None -> (
              match w.Stmt.count.Expr.desc with
              | Expr.Var v -> (
                  match List.assoc_opt v bounds with
                  | Some b -> b <= step
                  | None -> false)
              | _ -> false)
        in
        (* the strip loop must run at least once: after the interchange
           it guards the K loop, whose index assignment must not be
           skipped *)
        let strip_entered =
          match
            (Expr.const_int_val strip.Stmt.lo, Expr.const_int_val strip.Stmt.hi)
          with
          | Some lo, Some hi -> hi >= lo
          | _ -> false
        in
        (* K-invariant, strip-tiling writes; the body must localize once
           inner *)
        let writes_ok =
          step > 0 && strip_entered
          && Array.for_all
               (fun (v : Stmt.vstmt) ->
                 sec_invariant k.Stmt.index v.Stmt.vdst && tiles v.Stmt.vdst)
               varr
        in
        match
          if writes_ok then
            analyze_body ~noalias:env.noalias env.prog env.func
              ~k:k.Stmt.index varr
          else None
        with
        | None | Some { accumulators = []; hoists = [] } -> None
        | Some { accumulators = []; hoists = _ } when ktrip < 2 -> None
        | Some { accumulators; hoists } ->
            (* price the interchange with the port-traffic model *)
            let shape = vbody_shape (Array.to_list varr) in
            let vlen = step in
            let elems =
              match const_trip strip with
              | Some t when t > 0 -> t
              | _ -> Cost.default_trip
            in
            let reps =
              match measured_trips env k_stmt with
              | Some t when t > 0 ->
                  env.stats.pgo_priced <- env.stats.pgo_priced + 1;
                  t
              | _ -> ktrip
            in
            let resident =
              (2 * List.length accumulators) + List.length hoists
            in
            let before =
              reps
              * Cost.vector_loop_cycles shape ~trips:elems ~vlen ~procs:1
                  ~parallel:false
            in
            let after =
              Cost.reuse_vector_loop_cycles shape ~trips:elems ~vlen ~resident
                ~reps
            in
            if after >= before then begin
              report env
                "strip residency over do %s not profitable (est %d -> %d)"
                (index_name env k.Stmt.index)
                before after;
              None
            end
            else begin
              env.stats.strips_interchanged <-
                env.stats.strips_interchanged + 1;
              env.changed <- true;
              report env
                "strip loop hoisted over do %s (est %d -> %d cycles: %d \
                 resident section%s, %d repetition%s)"
                (index_name env k.Stmt.index)
                before after resident
                (if resident = 1 then "" else "s")
                reps
                (if reps = 1 then "" else "s");
              let inner =
                { k_stmt with Stmt.desc = Stmt.Do_loop { k with Stmt.body = tail } }
              in
              let inner_stmts =
                match
                  (match inner.Stmt.desc with
                  | Stmt.Do_loop ki -> localize env inner ki
                  | _ -> None)
                with
                | Some stmts -> stmts
                | None -> [ inner ]
              in
              Some
                [
                  {
                    strip_stmt with
                    Stmt.desc =
                      Stmt.Do_loop
                        { strip with Stmt.body = prefix @ inner_stmts };
                  };
                ]
            end
      end
  | _ -> None

(* ----------------------------------------------------------------- *)
(* Straight-line forwarding                                          *)
(* ----------------------------------------------------------------- *)

(* Within a maximal run of consecutive [Vector] statements (a fused
   strip loop's body, or straight-line vector code), keep the identical
   section in one register: a store read again downstream forwards
   through a temporary, and a section read by several statements loads
   once.  A table of available (section, temporary) pairs is invalidated
   by any store not provably disjoint. *)
let forward_run env (run : Stmt.t list) : Stmt.t list =
  let arr = Array.of_list run in
  let n = Array.length arr in
  let vst i =
    match arr.(i).Stmt.desc with Stmt.Vector v -> v | _ -> assert false
  in
  let noalias = env.noalias in
  (* is [sec] read by some statement at or after [from], every store in
     between (inspected first from [from]) provably disjoint from it? *)
  let read_later ~from sec =
    let rec scan j =
      if j >= n then false
      else
        let v = vst j in
        if reads_section ~noalias sec v.Stmt.vsrc then true
        else disjoint ~noalias v.Stmt.vdst sec && scan (j + 1)
    in
    scan from
  in
  let avail = ref [] in
  let out = ref [] in
  for i = 0 to n - 1 do
    let v = vst i in
    (* serve reads from the table *)
    let vsrc =
      List.fold_left
        (fun ve (sec, t, ty) -> subst_section ~noalias sec t ty ve)
        v.Stmt.vsrc !avail
    in
    (* share a section read again later *)
    let vsrc = ref vsrc in
    List.iter
      (fun sec ->
        if
          section_ok env.prog env.func sec
          && disjoint ~noalias v.Stmt.vdst sec
          && read_later ~from:(i + 1) sec
          && not (List.exists (fun (s, _, _) -> same_section ~noalias s sec) !avail)
        then begin
          let t = fresh_vt env in
          let ty = section_elt sec in
          out :=
            Builder.stmt env.ctx ~loc:arr.(i).Stmt.loc
              (Stmt.Vdef
                 { Stmt.vt = t; vval = Stmt.Vsec sec; vcount = sec.Stmt.count; vty = ty })
            :: !out;
          vsrc := subst_section ~noalias sec t ty !vsrc;
          avail := (sec, t, ty) :: !avail;
          env.stats.loads_shared <- env.stats.loads_shared + 1;
          env.changed <- true;
          report env "shared Vload kept in vt%d across the strip body" t
        end)
      (vexpr_sections !vsrc);
    let vsrc = !vsrc in
    let dst = v.Stmt.vdst in
    (* the store invalidates everything it may touch *)
    avail := List.filter (fun (sec, _, _) -> disjoint ~noalias sec dst) !avail;
    if
      section_ok env.prog env.func dst
      && Ty.equal (section_elt dst) v.Stmt.velt
      && read_later ~from:(i + 1) dst
    then begin
      let t = fresh_vt env in
      let ty = v.Stmt.velt in
      out :=
        {
          arr.(i) with
          Stmt.desc =
            Stmt.Vdef { Stmt.vt = t; vval = vsrc; vcount = dst.Stmt.count; vty = ty };
        }
        :: !out;
      out :=
        Builder.stmt env.ctx ~loc:arr.(i).Stmt.loc
          (Stmt.Vector { Stmt.vdst = dst; vsrc = Stmt.Vtmp (t, ty); velt = ty })
        :: !out;
      avail := (dst, t, ty) :: !avail;
      env.stats.stores_forwarded <- env.stats.stores_forwarded + 1;
      env.changed <- true;
      report env "Vstore forwarded to later Vload through vt%d" t
    end
    else
      out := { (arr.(i)) with Stmt.desc = Stmt.Vector { v with Stmt.vsrc } } :: !out
  done;
  List.rev !out

(* Split a statement list into maximal vector runs and the rest. *)
let forward_lists env (stmts : Stmt.t list) : Stmt.t list =
  let rec go acc run = function
    | ({ Stmt.desc = Stmt.Vector _; _ } as s) :: rest -> go acc (s :: run) rest
    | rest ->
        let flushed =
          match run with
          | [] | [ _ ] -> List.rev run
          | _ -> forward_run env (List.rev run)
        in
        let acc = List.rev_append flushed acc in
        (match rest with
        | [] -> List.rev acc
        | s :: rest -> go (s :: acc) [] rest)
  in
  go [] [] stmts

(* ----------------------------------------------------------------- *)
(* Driver                                                            *)
(* ----------------------------------------------------------------- *)

let max_vt_used (func : Func.t) =
  let m = ref (-1) in
  let rec scan_ve = function
    | Stmt.Vtmp (t, _) -> m := max !m t
    | Stmt.Vsec _ | Stmt.Vscalar _ | Stmt.Viota _ -> ()
    | Stmt.Vcast (_, a) | Stmt.Vun (_, a) -> scan_ve a
    | Stmt.Vbin (_, a, b) ->
        scan_ve a;
        scan_ve b
  in
  Stmt.iter_list
    (fun (s : Stmt.t) ->
      match s.Stmt.desc with
      | Stmt.Vdef vd ->
          m := max !m vd.Stmt.vt;
          scan_ve vd.Stmt.vval
      | Stmt.Vector v -> scan_ve v.Stmt.vsrc
      | _ -> ())
    func.Func.body;
  !m

let run ?(options = default_options) ?(stats = new_stats ()) (prog : Prog.t)
    (func : Func.t) : bool =
  let env =
    {
      prog;
      func;
      ctx = Builder.ctx prog func;
      noalias = options.assume_noalias;
      opts = options;
      stats;
      next_vt = max_vt_used func + 1;
      changed = false;
    }
  in
  let rec walk stmts = forward_lists env (List.concat_map walk_stmt stmts)
  and walk_stmt (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.Do_loop d -> (
        let d = { d with Stmt.body = walk d.Stmt.body } in
        let s = { s with Stmt.desc = Stmt.Do_loop d } in
        let gated_off =
          match options.tune with
          | None -> false
          | Some f -> f s.Stmt.loc = Some false
        in
        if gated_off then [ s ]
        else
          match try_strip_residency env s d with
          | Some stmts -> stmts
          | None -> (
              match localize env s d with Some stmts -> stmts | None -> [ s ]))
    | Stmt.If (c, t, e) -> [ { s with Stmt.desc = Stmt.If (c, walk t, walk e) } ]
    | Stmt.While (li, c, b) ->
        [ { s with Stmt.desc = Stmt.While (li, c, walk b) } ]
    | _ -> [ s ]
  in
  func.Func.body <- walk func.Func.body;
  env.changed
