(* Parallelization of pointer-chasing while loops (paper §10):

     "a prime example of such a loop is code that operates on a linked
      list.  Such a loop cannot be vectorized with any benefit, but it can
      be spread across multiple processors by pulling the code for moving
      to the next element into the serialized portion of the parallel
      loop.  ...  it does require an assumption that each motion down a
      pointer goes to independent storage."

   For a while loop carrying the independence pragma, the body splits
   into a *serial prefix* — the statements computing the loop-carried
   scalar state (the pointer advance, counters, anything the condition
   needs) — and a *parallel rest* (the memory work).  The prefix is moved
   to the front behind per-iteration copies of the values the rest reads,
   and the loop is marked [doacross]; the Titan simulator then charges
   the prefix serially and spreads the rest over processors. *)

open Vpc_il

type stats = {
  mutable loops_transformed : int;
  mutable rejected_shape : int;     (* calls, gotos, non-assign serial *)
  mutable rejected_dependence : int;(* parallel part feeds serial part *)
}

let new_stats () =
  { loops_transformed = 0; rejected_shape = 0; rejected_dependence = 0 }

(* Top-level positions defining each scalar var, or None when some var has
   a nested definition (we do not untangle those). *)
let top_defs (body : Stmt.t array) : (int, int list) Hashtbl.t option =
  let defs = Hashtbl.create 8 in
  let nested = ref false in
  Array.iteri
    (fun pos (s : Stmt.t) ->
      (match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lvar v, _) ->
          Hashtbl.replace defs v
            (Option.value (Hashtbl.find_opt defs v) ~default:[] @ [ pos ])
      | _ -> ());
      Stmt.iter
        (fun inner ->
          if inner.Stmt.id <> s.Stmt.id then
            match inner.Stmt.desc with
            | Stmt.Assign (Stmt.Lvar _, _) | Stmt.Call (Some (Stmt.Lvar _), _, _)
              ->
                nested := true
            | _ -> ())
        s)
    body;
  if !nested then None else Some defs

(* Positions (including nested statements and the loop condition, encoded
   as position -1) where each var is read. *)
let uses_by_var cond (body : Stmt.t array) : (int, int list) Hashtbl.t =
  let uses = Hashtbl.create 8 in
  let add v pos =
    Hashtbl.replace uses v
      (Option.value (Hashtbl.find_opt uses v) ~default:[] @ [ pos ])
  in
  List.iter (fun v -> add v (-1)) (Expr.read_vars cond);
  Array.iteri
    (fun pos s ->
      Stmt.iter (fun inner -> List.iter (fun v -> add v pos) (Stmt.shallow_uses inner)) s)
    body;
  uses

let has_control (body : Stmt.t array) =
  let bad = ref false in
  Array.iter
    (fun s ->
      Stmt.iter
        (fun inner ->
          match inner.Stmt.desc with
          | Stmt.Goto _ | Stmt.Label _ | Stmt.Return _ | Stmt.Call _
          | Stmt.While _ | Stmt.Do_loop _ ->
              bad := true
          | _ -> ())
        s)
    body;
  !bad

let process_loop prog (func : Func.t) stats (s : Stmt.t)
    (li : Stmt.loop_info) cond (body_l : Stmt.t list) : Stmt.t option =
  let body = Array.of_list body_l in
  let n = Array.length body in
  if has_control body then begin
    stats.rejected_shape <- stats.rejected_shape + 1;
    None
  end
  else
    match top_defs body with
    | None ->
        stats.rejected_shape <- stats.rejected_shape + 1;
        None
    | Some defs ->
        let uses = uses_by_var cond body in
        (* loop-carried scalar vars: used by the condition, or used at a
           position not after their first definition *)
        let carried = Hashtbl.create 4 in
        Hashtbl.iter
          (fun v def_positions ->
            match def_positions with
            | [] -> ()
            | first_def :: _ ->
                let vuses = Option.value (Hashtbl.find_opt uses v) ~default:[] in
                if List.exists (fun p -> p <= first_def) vuses then
                  Hashtbl.replace carried v ())
          defs;
        (* close over what the carried updates themselves read *)
        let changed = ref true in
        while !changed do
          changed := false;
          Hashtbl.iter
            (fun v () ->
              List.iter
                (fun pos ->
                  match body.(pos).Stmt.desc with
                  | Stmt.Assign (Stmt.Lvar _, rhs) ->
                      List.iter
                        (fun w ->
                          if Hashtbl.mem defs w && not (Hashtbl.mem carried w)
                          then begin
                            Hashtbl.replace carried w ();
                            changed := true
                          end)
                        (Expr.read_vars rhs)
                  | _ -> ())
                (Option.value (Hashtbl.find_opt defs v) ~default:[]))
            carried
        done;
        let is_serial pos =
          match body.(pos).Stmt.desc with
          | Stmt.Assign (Stmt.Lvar v, _) -> Hashtbl.mem carried v
          | _ -> false
        in
        let serial_pos = List.filter is_serial (List.init n (fun i -> i)) in
        let parallel_pos =
          List.filter (fun i -> not (is_serial i)) (List.init n (fun i -> i))
        in
        if serial_pos = [] || parallel_pos = [] then None
        else begin
          (* safety: parallel statements must not define carried vars, and
             every parallel read of a carried var must precede its first
             serial definition (so the front-of-loop copy is its value) *)
          let ok = ref true in
          List.iter
            (fun pos ->
              match body.(pos).Stmt.desc with
              | Stmt.Assign (Stmt.Lvar v, _) when Hashtbl.mem carried v ->
                  ok := false
              | _ -> ())
            parallel_pos;
          Hashtbl.iter
            (fun v () ->
              let first_def =
                match Hashtbl.find_opt defs v with
                | Some (p :: _) -> p
                | _ -> max_int
              in
              List.iter
                (fun pos ->
                  if (not (is_serial pos))
                     && List.mem v
                          (let acc = ref [] in
                           Stmt.iter
                             (fun inner ->
                               acc := Stmt.shallow_uses inner @ !acc)
                             body.(pos);
                           !acc)
                     && pos > first_def
                  then ok := false)
                parallel_pos)
            carried;
          if not !ok then begin
            stats.rejected_dependence <- stats.rejected_dependence + 1;
            None
          end
          else begin
            let b = Builder.ctx prog func in
            (* copies of carried vars the parallel part reads *)
            let copies = ref [] in
            let substs = ref [] in
            (* ascending var-id order: the emitted copy statements must
               not depend on hash-bucket layout *)
            List.iter
              (fun v ->
                let read_by_parallel =
                  List.exists
                    (fun pos ->
                      let acc = ref [] in
                      Stmt.iter
                        (fun inner -> acc := Stmt.shallow_uses inner @ !acc)
                        body.(pos);
                      List.mem v !acc)
                    parallel_pos
                in
                if read_by_parallel then begin
                  let meta = Prog.var_exn prog (Some func) v in
                  let cur =
                    Builder.fresh_temp b ~name:(meta.Var.name ^ "_cur")
                      meta.Var.ty
                  in
                  copies := Builder.assign b cur (Expr.var meta) :: !copies;
                  substs := (v, Expr.var cur) :: !substs
                end)
              (Hashtbl.fold (fun v () acc -> v :: acc) carried []
              |> List.sort compare);
            let subst_deep (st : Stmt.t) =
              let rewrite e =
                List.fold_left
                  (fun e (v, by) -> Expr.subst_var v by e)
                  e !substs
              in
              let rec deep st =
                let st = Stmt.map_exprs_shallow rewrite st in
                match st.Stmt.desc with
                | Stmt.If (c, t, e) ->
                    { st with Stmt.desc = Stmt.If (c, List.map deep t, List.map deep e) }
                | _ -> st
              in
              deep st
            in
            let serial_stmts = List.map (fun i -> body.(i)) serial_pos in
            let parallel_stmts =
              List.map (fun i -> subst_deep body.(i)) parallel_pos
            in
            let new_body = !copies @ serial_stmts @ parallel_stmts in
            let info =
              {
                li with
                Stmt.doacross = true;
                serial_prefix = List.length !copies + List.length serial_stmts;
              }
            in
            stats.loops_transformed <- stats.loops_transformed + 1;
            Some { s with Stmt.desc = Stmt.While (info, cond, new_body) }
          end
        end

(* Apply to pragma-marked while loops the earlier phases could not turn
   into DO loops. *)
let run ?(stats = new_stats ()) (prog : Prog.t) (func : Func.t) =
  let changed = ref false in
  let rec walk stmts = List.map walk_stmt stmts
  and walk_stmt (s : Stmt.t) =
    match s.Stmt.desc with
    | Stmt.While (li, cond, body)
      when li.Stmt.pragma_independent && not li.Stmt.doacross -> (
        match process_loop prog func stats s li cond (walk body) with
        | Some s' ->
            changed := true;
            s'
        | None -> s)
    | Stmt.While (li, c, body) ->
        { s with desc = Stmt.While (li, c, walk body) }
    | Stmt.If (c, t, e) -> { s with desc = Stmt.If (c, walk t, walk e) }
    | Stmt.Do_loop d ->
        { s with desc = Stmt.Do_loop { d with body = walk d.body } }
    | _ -> s
  in
  func.Func.body <- walk func.Func.body;
  !changed
