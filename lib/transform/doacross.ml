(* Doacross parallelization.

   Two paths live here.  The original §10 path handles pointer-chasing
   while loops under the independence pragma:

     "a prime example of such a loop is code that operates on a linked
      list.  Such a loop cannot be vectorized with any benefit, but it can
      be spread across multiple processors by pulling the code for moving
      to the next element into the serialized portion of the parallel
      loop.  ...  it does require an assumption that each motion down a
      pointer goes to independent storage."

   For a while loop carrying the independence pragma, the body splits
   into a *serial prefix* — the statements computing the loop-carried
   scalar state (the pointer advance, counters, anything the condition
   needs) — and a *parallel rest* (the memory work).  The prefix is moved
   to the front behind per-iteration copies of the values the rest reads,
   and the loop is marked [doacross]; the Titan simulator then charges
   the prefix serially and spreads the rest over processors.

   The second path pipelines counted DO loops whose carried dependences
   all have known constant distance — recurrences, wavefronts,
   Gauss–Seidel sweeps the vectorizer must leave serial.  Iterations are
   spread round-robin over processors and each crossing dependence is
   ordered point-to-point: the source iteration posts a counter after the
   last statement of the edge's source, the sink iteration waits before
   its first read.  Redundant synchronization is then eliminated — an
   edge is covered when a chain of retained sync edges transitively
   orders it — and a pipeline cost model decides doacross vs serial. *)

open Vpc_il
open Vpc_dependence
module Cost = Vpc_titan.Cost
module Profile = Vpc_profile

type stats = {
  (* §10 while-loop doacross *)
  mutable loops_transformed : int;
  mutable rejected_shape : int;     (* calls, gotos, non-assign serial *)
  mutable rejected_dependence : int;(* parallel part feeds serial part *)
  mutable no_carried : int;         (* no carried scalar state to serialize,
                                       or nothing left to spread *)
  (* DO-loop post/wait pipelining *)
  mutable do_pipelined : int;
  mutable syncs_placed : int;       (* post/wait pairs kept *)
  mutable syncs_eliminated : int;   (* carried edges covered transitively *)
  mutable do_rejected_scalar : int; (* carried register recurrence *)
  mutable do_rejected_distance : int;(* carried distance unknown/unbounded *)
  mutable do_rejected_cost : int;   (* pipeline model prefers serial *)
}

let new_stats () =
  {
    loops_transformed = 0;
    rejected_shape = 0;
    rejected_dependence = 0;
    no_carried = 0;
    do_pipelined = 0;
    syncs_placed = 0;
    syncs_eliminated = 0;
    do_rejected_scalar = 0;
    do_rejected_distance = 0;
    do_rejected_cost = 0;
  }

type options = {
  pragma : bool;  (* enable the §10 while-loop path *)
  sync : bool;    (* enable the DO-loop post/wait path *)
  procs : int;  (* static processor assumption for the pipeline model *)
  sched : Cost.sched;
  assume_noalias : bool;
  profile : Profile.Data.t option;
      (* measured trips/procs/sched override the static assumptions *)
  report : (string -> unit) option;   (* one line per pipelined loop *)
  why_scalar : (string -> unit) option;
      (* one line per candidate left serial: the unsynchronizable edge
         or the cost-model loss *)
  range : (Stmt.t -> Expr.t -> int option * int option) option;
      (* symbolic range oracle: bounds symbolic byte distances and trip
         counts for the dependence tests *)
  tune : (Vpc_support.Loc.t -> bool option) option;
      (* autotuned per-loop gate: [Some false] keeps the loop serial,
         [Some true] pipelines a synchronizable loop even when the
         pipeline model prefers serial; [None] follows the model *)
}

let default_options =
  {
    pragma = true;
    sync = false;
    procs = 4;
    sched = Cost.Full;
    assume_noalias = false;
    profile = None;
    report = None;
    why_scalar = None;
    range = None;
    tune = None;
  }

(* ------------------------------------------------------------------ *)
(* §10 while-loop path                                                *)
(* ------------------------------------------------------------------ *)

(* Top-level positions defining each scalar var, or None when some var has
   a nested definition (we do not untangle those). *)
let top_defs (body : Stmt.t array) : (int, int list) Hashtbl.t option =
  let defs = Hashtbl.create 8 in
  let nested = ref false in
  Array.iteri
    (fun pos (s : Stmt.t) ->
      (match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lvar v, _) ->
          Hashtbl.replace defs v
            (Option.value (Hashtbl.find_opt defs v) ~default:[] @ [ pos ])
      | _ -> ());
      Stmt.iter
        (fun inner ->
          if inner.Stmt.id <> s.Stmt.id then
            match inner.Stmt.desc with
            | Stmt.Assign (Stmt.Lvar _, _) | Stmt.Call (Some (Stmt.Lvar _), _, _)
              ->
                nested := true
            | _ -> ())
        s)
    body;
  if !nested then None else Some defs

(* Positions (including nested statements and the loop condition, encoded
   as position -1) where each var is read. *)
let uses_by_var cond (body : Stmt.t array) : (int, int list) Hashtbl.t =
  let uses = Hashtbl.create 8 in
  let add v pos =
    Hashtbl.replace uses v
      (Option.value (Hashtbl.find_opt uses v) ~default:[] @ [ pos ])
  in
  List.iter (fun v -> add v (-1)) (Expr.read_vars cond);
  Array.iteri
    (fun pos s ->
      Stmt.iter (fun inner -> List.iter (fun v -> add v pos) (Stmt.shallow_uses inner)) s)
    body;
  uses

let has_control (body : Stmt.t array) =
  let bad = ref false in
  Array.iter
    (fun s ->
      Stmt.iter
        (fun inner ->
          match inner.Stmt.desc with
          | Stmt.Goto _ | Stmt.Label _ | Stmt.Return _ | Stmt.Call _
          | Stmt.While _ | Stmt.Do_loop _ ->
              bad := true
          | _ -> ())
        s)
    body;
  !bad

let process_loop prog (func : Func.t) stats (s : Stmt.t)
    (li : Stmt.loop_info) cond (body_l : Stmt.t list) : Stmt.t option =
  let body = Array.of_list body_l in
  let n = Array.length body in
  if has_control body then begin
    stats.rejected_shape <- stats.rejected_shape + 1;
    None
  end
  else
    match top_defs body with
    | None ->
        stats.rejected_shape <- stats.rejected_shape + 1;
        None
    | Some defs ->
        let uses = uses_by_var cond body in
        (* loop-carried scalar vars: used by the condition, or used at a
           position not after their first definition *)
        let carried = Hashtbl.create 4 in
        Hashtbl.iter
          (fun v def_positions ->
            match def_positions with
            | [] -> ()
            | first_def :: _ ->
                let vuses = Option.value (Hashtbl.find_opt uses v) ~default:[] in
                if List.exists (fun p -> p <= first_def) vuses then
                  Hashtbl.replace carried v ())
          defs;
        (* close over what the carried updates themselves read *)
        let changed = ref true in
        while !changed do
          changed := false;
          Hashtbl.iter
            (fun v () ->
              List.iter
                (fun pos ->
                  match body.(pos).Stmt.desc with
                  | Stmt.Assign (Stmt.Lvar _, rhs) ->
                      List.iter
                        (fun w ->
                          if Hashtbl.mem defs w && not (Hashtbl.mem carried w)
                          then begin
                            Hashtbl.replace carried w ();
                            changed := true
                          end)
                        (Expr.read_vars rhs)
                  | _ -> ())
                (Option.value (Hashtbl.find_opt defs v) ~default:[]))
            carried
        done;
        let is_serial pos =
          match body.(pos).Stmt.desc with
          | Stmt.Assign (Stmt.Lvar v, _) -> Hashtbl.mem carried v
          | _ -> false
        in
        let serial_pos = List.filter is_serial (List.init n (fun i -> i)) in
        let parallel_pos =
          List.filter (fun i -> not (is_serial i)) (List.init n (fun i -> i))
        in
        if serial_pos = [] || parallel_pos = [] then begin
          (* distinct outcomes, distinct counters: a loop with no carried
             scalar state (or nothing but that state) is not a dependence
             rejection — --why-scalar must not conflate the two *)
          stats.no_carried <- stats.no_carried + 1;
          None
        end
        else begin
          (* safety: parallel statements must not define carried vars, and
             every parallel read of a carried var must precede its first
             serial definition (so the front-of-loop copy is its value) *)
          let ok = ref true in
          List.iter
            (fun pos ->
              match body.(pos).Stmt.desc with
              | Stmt.Assign (Stmt.Lvar v, _) when Hashtbl.mem carried v ->
                  ok := false
              | _ -> ())
            parallel_pos;
          Hashtbl.iter
            (fun v () ->
              let first_def =
                match Hashtbl.find_opt defs v with
                | Some (p :: _) -> p
                | _ -> max_int
              in
              List.iter
                (fun pos ->
                  if (not (is_serial pos))
                     && List.mem v
                          (let acc = ref [] in
                           Stmt.iter
                             (fun inner ->
                               acc := Stmt.shallow_uses inner @ !acc)
                             body.(pos);
                           !acc)
                     && pos > first_def
                  then ok := false)
                parallel_pos)
            carried;
          if not !ok then begin
            stats.rejected_dependence <- stats.rejected_dependence + 1;
            None
          end
          else begin
            let b = Builder.ctx prog func in
            (* copies of carried vars the parallel part reads *)
            let copies = ref [] in
            let substs = ref [] in
            (* ascending var-id order: the emitted copy statements must
               not depend on hash-bucket layout *)
            List.iter
              (fun v ->
                let read_by_parallel =
                  List.exists
                    (fun pos ->
                      let acc = ref [] in
                      Stmt.iter
                        (fun inner -> acc := Stmt.shallow_uses inner @ !acc)
                        body.(pos);
                      List.mem v !acc)
                    parallel_pos
                in
                if read_by_parallel then begin
                  let meta = Prog.var_exn prog (Some func) v in
                  let cur =
                    Builder.fresh_temp b ~name:(meta.Var.name ^ "_cur")
                      meta.Var.ty
                  in
                  copies := Builder.assign b cur (Expr.var meta) :: !copies;
                  substs := (v, Expr.var cur) :: !substs
                end)
              (Hashtbl.fold (fun v () acc -> v :: acc) carried []
              |> List.sort compare);
            let subst_deep (st : Stmt.t) =
              let rewrite e =
                List.fold_left
                  (fun e (v, by) -> Expr.subst_var v by e)
                  e !substs
              in
              let rec deep st =
                let st = Stmt.map_exprs_shallow rewrite st in
                match st.Stmt.desc with
                | Stmt.If (c, t, e) ->
                    { st with Stmt.desc = Stmt.If (c, List.map deep t, List.map deep e) }
                | _ -> st
              in
              deep st
            in
            let serial_stmts = List.map (fun i -> body.(i)) serial_pos in
            let parallel_stmts =
              List.map (fun i -> subst_deep body.(i)) parallel_pos
            in
            let new_body = !copies @ serial_stmts @ parallel_stmts in
            let info =
              {
                li with
                Stmt.doacross = true;
                serial_prefix = List.length !copies + List.length serial_stmts;
              }
            in
            stats.loops_transformed <- stats.loops_transformed + 1;
            Some { s with Stmt.desc = Stmt.While (info, cond, new_body) }
          end
        end

(* ------------------------------------------------------------------ *)
(* DO-loop post/wait pipelining                                       *)
(* ------------------------------------------------------------------ *)

let is_normalized (d : Stmt.do_loop) =
  Expr.is_zero d.Stmt.lo
  && (match d.Stmt.step.Expr.desc with Expr.Const_int 1 -> true | _ -> false)

let contains_inner_loop (body : Stmt.t list) =
  List.exists
    (fun s ->
      let found = ref false in
      Stmt.iter
        (fun inner ->
          match inner.Stmt.desc with
          | Stmt.While _ | Stmt.Do_loop _ -> found := true
          | _ -> ())
        s;
      !found)
    body

(* Does a chain of sync edges from [syncs] transitively order the carried
   edge (src, dst, dist)?  A chain e1..em works when src <= post(e1),
   wait(e_j) <= post(e_{j+1}), wait(em) <= dst — each <= supplied by
   same-iteration program order — and the distances sum to *exactly*
   [dist].  A partial sum is unsound: nothing orders the same statement
   across two iterations running on different processors, so "covered at
   distance k < dist" proves nothing about distance dist.

   A *cumulative* sync of distance c orders its wait at iteration i after
   the posts of ALL iterations <= i-c, so it closes a chain whenever its
   remaining budget is at least c (any distance >= c is covered at once);
   it is always terminal — what follows its wait would need exact
   arithmetic it no longer has.

   With [cum] set the covered edge itself is only a lower bound: every
   distance >= [dist] must be ordered, which only a single cumulative
   sync of distance <= [dist] (post after [src], wait before [dst])
   provides — exact chains cover one distance at a time. *)
let covers (syncs : Stmt.dsync list) ~src ~dst ~dist ~cum =
  if cum then
    List.exists
      (fun (y : Stmt.dsync) ->
        y.Stmt.cum && y.Stmt.post_after >= src && y.Stmt.wait_before <= dst
        && y.Stmt.distance <= dist)
      syncs
  else begin
    let seen = Hashtbl.create 16 in
    let budget = ref 4096 in
    let rec from_pos pos remaining =
      (* invariant: the chain so far is ordered after the completion of
         body position [pos - 1] (i.e. may attach to any post >= pos) at
         iteration offset dist - remaining *)
      decr budget;
      !budget > 0
      && (not (Hashtbl.mem seen (pos, remaining)))
      && begin
           Hashtbl.replace seen (pos, remaining) ();
           List.exists
             (fun (y : Stmt.dsync) ->
               y.Stmt.post_after >= pos
               && y.Stmt.distance <= remaining
               &&
               if y.Stmt.cum then y.Stmt.wait_before <= dst
               else
                 (y.Stmt.distance = remaining && y.Stmt.wait_before <= dst)
                 || from_pos y.Stmt.wait_before (remaining - y.Stmt.distance))
             syncs
         end
    in
    from_pos src dist
  end

(* One post/wait pair per carried edge — post after the edge's source
   statement, wait before its destination — then redundant-sync
   elimination.  Long-distance edges are considered for removal first
   (chains of shorter retained edges are what cover them); the survivors
   get channels in ascending (post, wait, distance) order so the output
   is deterministic.  Returns the retained syncs and the number of
   eliminated candidates. *)
let place_syncs (carried : Graph.edge list) : Stmt.dsync list * int =
  let quads =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : Graph.edge) ->
           match e.Graph.distance, e.Graph.dist_lo with
           | Some d, _ when d >= 1 -> Some (e.Graph.src, e.Graph.dst, d, false)
           | None, Some l when l >= 1 ->
               (* symbolic distance, proven >= l: cumulative sync at l *)
               Some (e.Graph.src, e.Graph.dst, l, true)
           | _ -> None)
         carried)
  in
  let order =
    List.sort
      (fun (s1, t1, d1, c1) (s2, t2, d2, c2) ->
        compare (-d1, s1, t1, c1) (-d2, s2, t2, c2))
      quads
  in
  let to_sync (s, t, d, c) =
    { Stmt.chan = 0; distance = d; post_after = s; wait_before = t; cum = c }
  in
  let rec prune kept = function
    | [] -> kept
    | ((s, t, d, c) as e) :: rest ->
        let others = List.map to_sync (kept @ rest) in
        if covers others ~src:s ~dst:t ~dist:d ~cum:c then prune kept rest
        else prune (e :: kept) rest
  in
  let kept = List.sort compare (prune [] order) in
  ( List.mapi
      (fun i (s, t, d, c) ->
        { Stmt.chan = i; distance = d; post_after = s; wait_before = t;
          cum = c })
      kept,
    List.length quads - List.length kept )

let kind_name = function
  | Graph.Flow -> "flow"
  | Graph.Anti -> "anti"
  | Graph.Output -> "output"

let process_do (opts : options) stats prog (func : Func.t)
    (live : Vpc_analysis.Liveness.t Lazy.t) (s : Stmt.t) (d : Stmt.do_loop) :
    Stmt.t option =
  let body = d.Stmt.body in
  let n = List.length body in
  let tuned =
    match opts.tune with None -> None | Some f -> f s.Stmt.loc
  in
  let why fmt =
    Format.kasprintf
      (fun msg ->
        match opts.why_scalar with
        | Some say ->
            say
              (Printf.sprintf "%s: loop at %s stays serial: %s" func.Func.name
                 (Vpc_support.Loc.to_string s.Stmt.loc)
                 msg)
        | None -> ())
      fmt
  in
  let straight =
    List.for_all
      (fun (st : Stmt.t) ->
        match st.Stmt.desc with Stmt.Assign _ | Stmt.Nop -> true | _ -> false)
      body
  in
  if tuned = Some false then None  (* autotuner pinned this loop serial *)
  else if n = 0 || not straight then begin
    stats.rejected_shape <- stats.rejected_shape + 1;
    None
  end
  else begin
    let defined_in_body, mem_written =
      Vpc_analysis.Reaching.vars_defined_in body
    in
    let unsafe = Func.addressed_vars func in
    let invariant (e : Expr.t) =
      ((not (Expr.contains_load e)) || not mem_written)
      && List.for_all
           (fun v ->
             v <> d.Stmt.index
             && (not (Hashtbl.mem defined_in_body v))
             && ((not mem_written) || not (Hashtbl.mem unsafe v))
             &&
             match Prog.find_var prog (Some func) v with
             | Some vm -> not vm.Var.volatile
             | None -> false)
           (Expr.read_vars e)
    in
    let volatile_var v =
      match Prog.find_var prog (Some func) v with
      | Some vm -> vm.Var.volatile
      | None -> false
    in
    let touches_volatile =
      List.exists
        (fun (st : Stmt.t) ->
          List.exists volatile_var (Stmt.shallow_uses st)
          || match Stmt.defined_var st with
             | Some v -> volatile_var v
             | None -> false)
        body
    in
    if touches_volatile then begin
      stats.rejected_shape <- stats.rejected_shape + 1;
      None
    end
    else begin
      let trip_expr =
        Vpc_analysis.Simplify.expr
          (Expr.binop Expr.Add d.Stmt.hi (Expr.int_const 1) Ty.Int)
      in
      let trip_const = Expr.const_int_val trip_expr in
      let graph =
        match opts.range with
        | None ->
            Graph.build ~assume_noalias:opts.assume_noalias ~trip:trip_const
              body ~index:d.Stmt.index ~invariant
        | Some itv ->
            (* a symbolic trip's upper bound is a sound stand-in: a larger
               trip only widens what the tests must exclude *)
            let trip_bound =
              match trip_const with
              | Some _ as t -> t
              | None -> snd (itv s trip_expr)
            in
            let oracle =
              { Test.interval = (fun e -> itv s e); Test.note = (fun _ _ -> ()) }
            in
            Test.with_oracle oracle (fun () ->
                Graph.build ~assume_noalias:opts.assume_noalias
                  ~trip:trip_bound body ~index:d.Stmt.index ~invariant)
      in
      if not graph.Graph.analyzable then begin
        stats.rejected_shape <- stats.rejected_shape + 1;
        None
      end
      else begin
        let carried = Graph.carried_edges graph in
        let mem_carried =
          List.filter (fun (e : Graph.edge) -> e.Graph.through_memory) carried
        in
        if mem_carried = [] then None  (* nothing to synchronize *)
        else begin
          (* The graph's carried scalar edges are conservative: a
             statement updating a temp it read gets a self edge even when
             an earlier same-iteration def kills the carried value.  The
             body is straight-line, so the precise test is direct: a
             genuine register recurrence reads some variable before the
             iteration's first definition of it. *)
          let first_def = Hashtbl.create 8 in
          List.iteri
            (fun pos (st : Stmt.t) ->
              match Stmt.defined_var st with
              | Some v when not (Hashtbl.mem first_def v) ->
                  Hashtbl.replace first_def v pos
              | _ -> ())
            body;
          let scalar_rec = ref None in
          List.iteri
            (fun pos (st : Stmt.t) ->
              List.iter
                (fun v ->
                  if v <> d.Stmt.index && !scalar_rec = None then
                    match Hashtbl.find_opt first_def v with
                    | Some dp when dp >= pos -> scalar_rec := Some v
                    | _ -> ())
                (Stmt.shallow_uses st))
            body;
          let scalar_rec = !scalar_rec in
          let live_out =
            List.find_opt
              (fun v ->
                v <> d.Stmt.index
                && Vpc_analysis.Liveness.live_out_of (Lazy.force live)
                     ~stmt_id:s.Stmt.id ~var:v)
              (List.filter_map Stmt.defined_var body)
          in
          let synchronizable (e : Graph.edge) =
            match e.Graph.distance, e.Graph.dist_lo with
            | Some dd, _ -> dd >= 1
            | None, Some l -> l >= 1  (* cumulative sync on the bound *)
            | None, None -> false
          in
          let unknown_dist =
            List.find_opt (fun e -> not (synchronizable e)) mem_carried
          in
          match scalar_rec, live_out, unknown_dist with
          | Some v, _, _ ->
              stats.do_rejected_scalar <- stats.do_rejected_scalar + 1;
              why
                "%s carries a register recurrence post/wait cannot order"
                (match Prog.find_var prog (Some func) v with
                | Some vm -> vm.Var.name
                | None -> Printf.sprintf "var%d" v);
              None
          | None, Some v, _ ->
              stats.do_rejected_scalar <- stats.do_rejected_scalar + 1;
              why
                "body defines %s, which is live after the loop (another \
                 processor would hold the final value)"
                (match Prog.find_var prog (Some func) v with
                | Some vm -> vm.Var.name
                | None -> Printf.sprintf "var%d" v);
              None
          | None, None, Some e ->
              stats.do_rejected_distance <- stats.do_rejected_distance + 1;
              (* only worth a why-line when some other edge *was*
                 synchronizable: an all-unknown loop was already explained
                 by the vectorizer (the unresolved alias pair), and this
                 pass adds nothing *)
              let some_known = List.exists synchronizable mem_carried in
              if some_known then
                why
                  "carried %s dependence (stmt %d -> stmt %d) has no \
                   constant distance (nor a lower bound) to synchronize"
                  (kind_name e.Graph.kind) e.Graph.src e.Graph.dst;
              None
          | None, None, None ->
              let syncs, eliminated = place_syncs mem_carried in
              (* pipeline cost model: per-statement cycle offsets give
                 each edge its distance-normalized stage latency *)
              let shape = Cost.shape_of_stmts body in
              let stmt_cost st =
                let sh = Cost.shape_of_stmts [ st ] in
                max 1 (sh.Cost.mem_refs + sh.Cost.flops + sh.Cost.iops)
              in
              let prefix = Array.make (n + 1) 0 in
              List.iteri
                (fun i st -> prefix.(i + 1) <- prefix.(i) + stmt_cost st)
                body;
              let dedges =
                List.map
                  (fun (y : Stmt.dsync) ->
                    {
                      Cost.post_offset = prefix.(y.Stmt.post_after + 1);
                      Cost.wait_offset = prefix.(y.Stmt.wait_before);
                      Cost.ddist = y.Stmt.distance;
                    })
                  syncs
              in
              let static () =
                ( (match trip_const with
                  | Some t when t > 0 -> t
                  | _ -> Cost.default_trip),
                  opts.procs,
                  opts.sched )
              in
              let trips, procs, sched =
                match opts.profile with
                | None -> static ()
                | Some data -> (
                    match Profile.Key.of_loc s.Stmt.loc with
                    | None -> static ()
                    | Some key -> (
                        match Profile.Data.find_loop data key with
                        | None -> static ()
                        | Some lp -> (
                            match Profile.Data.mean_trips lp with
                            | Some t when t > 0 ->
                                ( t,
                                  data.Profile.Data.procs,
                                  Cost.sched_of_name data.Profile.Data.sched )
                            | _ -> static ())))
              in
              let serial = Cost.scalar_loop_cycles ~sched shape ~trips in
              let pipelined =
                Cost.doacross_loop_cycles ~sched shape ~trips ~procs dedges
              in
              if tuned <> Some true && pipelined >= serial then begin
                stats.do_rejected_cost <- stats.do_rejected_cost + 1;
                why
                  "pipeline model prefers serial (est doacross=%d serial=%d \
                   at %d procs, %d syncs)"
                  pipelined serial procs (List.length syncs);
                None
              end
              else begin
                stats.do_pipelined <- stats.do_pipelined + 1;
                stats.syncs_placed <- stats.syncs_placed + List.length syncs;
                stats.syncs_eliminated <-
                  stats.syncs_eliminated + eliminated;
                (match opts.report with
                | Some report ->
                    report
                      (Printf.sprintf
                         "%s: loop at %s: doacross est serial=%d pipelined=%d \
                          at %d procs (%d syncs, %d eliminated)"
                         func.Func.name
                         (Vpc_support.Loc.to_string s.Stmt.loc)
                         serial pipelined procs (List.length syncs) eliminated)
                | None -> ());
                Some { s with Stmt.desc = Stmt.Do_loop { d with sync = syncs } }
              end
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

(* Apply the while path to pragma-marked loops the earlier phases could
   not turn into DO loops, and the post/wait path to serial counted
   loops whose carried dependences have constant distance. *)
let run ?(stats = new_stats ()) ?(options = default_options) (prog : Prog.t)
    (func : Func.t) =
  let changed = ref false in
  let live = lazy (Vpc_analysis.Liveness.build func) in
  let rec walk stmts = List.map walk_stmt stmts
  and walk_stmt (s : Stmt.t) =
    match s.Stmt.desc with
    | Stmt.While (li, cond, body)
      when options.pragma && li.Stmt.pragma_independent && not li.Stmt.doacross
      -> (
        match process_loop prog func stats s li cond (walk body) with
        | Some s' ->
            changed := true;
            s'
        | None -> s)
    | Stmt.While (li, c, body) ->
        { s with desc = Stmt.While (li, c, walk body) }
    | Stmt.If (c, t, e) -> { s with desc = Stmt.If (c, walk t, walk e) }
    | Stmt.Do_loop d ->
        let d = { d with Stmt.body = walk d.Stmt.body } in
        let s = { s with desc = Stmt.Do_loop d } in
        if
          options.sync && (not d.Stmt.parallel) && d.Stmt.sync = []
          && is_normalized d
          && not (contains_inner_loop d.Stmt.body)
        then
          match process_do options stats prog func live s d with
          | Some s' ->
              changed := true;
              s'
          | None -> s
        else s
    | _ -> s
  in
  func.Func.body <- walk func.Func.body;
  !changed
