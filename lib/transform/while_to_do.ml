(* While→DO loop conversion (paper §5.2).

   "Since C for loops are converted to while loops by the front end, this
   transformation is essential to success."  A while loop converts when:

     - its condition tests a single integer variable [i] against a
       loop-invariant bound (or plain [while (i)] counting down to zero);
     - [i] receives exactly one net update of the form i = i ± c per
       iteration, possibly through a temp chain (temp = i; i = temp - s),
       at the top level of the body, with [c] a positive constant;
     - no branch enters the loop body from outside, and none leaves it
       (break / goto out / return), so the trip count is fixed;
     - nothing volatile is involved.

   The emitted loop is normalized: [do dummy = 0, trip-1, 1], which is the
   form §9's listings show (do fortran temp_i = 0, n-1, 1), and the form
   induction-variable substitution wants. *)

open Vpc_il

type stats = {
  mutable converted : int;
  mutable rejected_branch_in : int;
  mutable rejected_branch_out : int;
  mutable rejected_no_induction : int;
  mutable rejected_condition : int;
  mutable rejected_volatile : int;
}

let new_stats () =
  {
    converted = 0;
    rejected_branch_in = 0;
    rejected_branch_out = 0;
    rejected_no_induction = 0;
    rejected_condition = 0;
    rejected_volatile = 0;
  }

type candidate_cond =
  | Nonzero                      (* while (i) *)
  | Rel of Expr.binop * Expr.t   (* i relop bound, normalized to var-first *)

(* Recognize the condition shape and the variable it governs. *)
let cond_shape (cond : Expr.t) : (int * candidate_cond) option =
  let flip : Expr.binop -> Expr.binop = function
    | Expr.Lt -> Expr.Gt
    | Expr.Le -> Expr.Ge
    | Expr.Gt -> Expr.Lt
    | Expr.Ge -> Expr.Le
    | op -> op
  in
  match cond.Expr.desc with
  | Expr.Var v -> Some (v, Nonzero)
  | Expr.Binop ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Ne) as op, a, b)
    -> (
      match a.Expr.desc, b.Expr.desc with
      | Expr.Var v, _ -> Some (v, Rel (op, b))
      | _, Expr.Var v -> Some (v, Rel (flip op, a))
      | _ -> None)
  | _ -> None

(* The recognized per-iteration step of the candidate induction
   variable. *)
type step =
  | Step_const of int
  | Step_sym_down of Expr.t
      (* i = i - s with s a loop-invariant expression — the paper's own
         §5.2 example ("DO dummy = n, 1, -s").  Conversion assumes s > 0
         at run time, exactly as the paper's compiler did; a
         non-positive stride was already a (near-)non-terminating loop. *)

(* Net per-iteration step of variable [i], when the body updates it exactly
   once at top level as i = i ± c (or through a one-temp chain). *)
let induction_step (ud : Vpc_analysis.Reaching.t) body i : step option =
  (* all defs of i anywhere in the body *)
  let defs = ref [] in
  let nested = ref false in
  List.iter
    (fun (s : Stmt.t) ->
      (match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lvar v, rhs) when v = i -> defs := (s, rhs) :: !defs
      | _ -> ());
      (* any def of i not at top level? *)
      Stmt.iter
        (fun inner ->
          if inner.Stmt.id <> s.Stmt.id then
            match Vpc_analysis.Reaching.strong_def_of inner with
            | Some (v, _) when v = i -> nested := true
            | _ -> ())
        s)
    body;
  if !nested then None
  else
    match !defs with
    | [ (def_stmt, rhs) ] -> (
        (* an invariant subtrahend qualifies as a symbolic downward step *)
        let invariant_sym (e : Expr.t) =
          (not (Expr.is_const e)) && Vpc_analysis.Reaching.invariant_in ud body e
        in
        (* direct form: i = i ± c, or i = i - s with invariant s *)
        let direct (rhs : Expr.t) =
          match rhs.Expr.desc with
          | Expr.Binop (Expr.Add, { desc = Expr.Var v; _ }, { desc = Expr.Const_int c; _ })
            when v = i ->
              Some (Step_const c)
          | Expr.Binop (Expr.Add, { desc = Expr.Const_int c; _ }, { desc = Expr.Var v; _ })
            when v = i ->
              Some (Step_const c)
          | Expr.Binop (Expr.Sub, { desc = Expr.Var v; _ }, { desc = Expr.Const_int c; _ })
            when v = i ->
              Some (Step_const (-c))
          | Expr.Binop (Expr.Sub, { desc = Expr.Var v; _ }, s)
            when v = i && invariant_sym s ->
              Some (Step_sym_down s)
          | _ -> None
        in
        match direct rhs with
        | Some st -> Some st
        | None -> (
            (* temp chain: temp = i; ...; i = temp ± c, temp's unique
               reaching def at the update is that copy *)
            let via_temp t =
              match
                Vpc_analysis.Reaching.unique_def ud ~stmt_id:def_stmt.Stmt.id
                  ~var:t
              with
              | Some d -> (
                  match d.Vpc_analysis.Reaching.d_value with
                  | Some { Expr.desc = Expr.Var v; _ } when v = i -> true
                  | _ -> false)
              | None -> false
            in
            match rhs.Expr.desc with
            | Expr.Binop (Expr.Add, { desc = Expr.Var t; _ }, { desc = Expr.Const_int c; _ })
              when via_temp t ->
                Some (Step_const c)
            | Expr.Binop (Expr.Sub, { desc = Expr.Var t; _ }, { desc = Expr.Const_int c; _ })
              when via_temp t ->
                Some (Step_const (-c))
            | Expr.Binop (Expr.Sub, { desc = Expr.Var t; _ }, s)
              when via_temp t && invariant_sym s ->
                Some (Step_sym_down s)
            | Expr.Var t when via_temp t -> None  (* i = temp: no step *)
            | _ -> None))
    | _ -> None

(* Trip count expression for the loop; C truncating division is fine for
   the ceiling forms because a non-positive numerator yields a
   non-positive trip, which the DO loop treats as zero iterations. *)
let trip_count_expr i_e (shape : candidate_cond) (step : step) : Expr.t option =
  let open Expr in
  let int_ e = cast Ty.Int e in
  let sub a b = binop Sub a b Ty.Int in
  let add_c e c = if c = 0 then e else binop Add e (int_const c) Ty.Int in
  let div e c = if c = 1 then e else binop Div e (int_const c) Ty.Int in
  match shape, step with
  | Nonzero, Step_const s when s < 0 ->
      (* while (i) { i -= |s| }: ceil(i0 / |s|) *)
      let s = -s in
      Some (div (add_c (int_ i_e) (s - 1)) s)
  | Nonzero, Step_sym_down s ->
      (* §5.2's own example: while (i) { ... i = temp - s; }.
         trip = ceil(i0 / s) = (i0 + s - 1) / s, assuming s > 0 *)
      let s = int_ s in
      Some
        (binop Div
           (binop Add (int_ i_e) (sub s (int_const 1)) Ty.Int)
           s Ty.Int)
  | Nonzero, Step_const _ -> None
  | Rel (Lt, b), Step_const c when c > 0 ->
      Some (div (add_c (sub (int_ b) (int_ i_e)) (c - 1)) c)
  | Rel (Le, b), Step_const c when c > 0 ->
      Some (div (add_c (sub (int_ b) (int_ i_e)) c) c)
  | Rel (Gt, b), Step_const c when c < 0 ->
      let c = -c in
      Some (div (add_c (sub (int_ i_e) (int_ b)) (c - 1)) c)
  | Rel (Ge, b), Step_const c when c < 0 ->
      let c = -c in
      Some (div (add_c (sub (int_ i_e) (int_ b)) c) c)
  | Rel (Ne, b), Step_const 1 -> Some (sub (int_ b) (int_ i_e))
  | Rel (Ne, b), Step_const (-1) -> Some (sub (int_ i_e) (int_ b))
  | Rel _, _ -> None

let expr_reads_volatile (prog : Prog.t) (func : Func.t) e =
  List.exists
    (fun v ->
      match Prog.find_var prog (Some func) v with
      | Some vm -> vm.Var.volatile
      | None -> true)
    (Expr.read_vars e)

(* Attempt to convert one while loop; returns the replacement statements
   (a preheader limit binding plus the DO loop). *)
let convert_loop (prog : Prog.t) (func : Func.t)
    (ud : Vpc_analysis.Reaching.t) stats (s : Stmt.t) ~independent cond body :
    Stmt.t list option =
  let reject field =
    field ();
    None
  in
  if expr_reads_volatile prog func cond then
    reject (fun () -> stats.rejected_volatile <- stats.rejected_volatile + 1)
  else if Vpc_analysis.Cfg.has_branch_into func body then
    reject (fun () -> stats.rejected_branch_in <- stats.rejected_branch_in + 1)
  else if
    Vpc_analysis.Cfg.has_branch_out_of body
    || List.exists
         (fun s ->
           let found = ref false in
           Stmt.iter
             (fun s ->
               match s.Stmt.desc with
               | Stmt.Goto _ -> found := true
               | _ -> ())
             s;
           !found)
         body
  then reject (fun () -> stats.rejected_branch_out <- stats.rejected_branch_out + 1)
  else
    match cond_shape cond with
    | None -> reject (fun () -> stats.rejected_condition <- stats.rejected_condition + 1)
    | Some (i, shape) -> (
        let i_var =
          match Func.find_var func i with
          | Some v -> v
          | None -> Var.make ~id:i ~name:"?" ~ty:Ty.Int ()
        in
        if i_var.volatile || not (Ty.is_integer i_var.ty) then
          reject (fun () -> stats.rejected_volatile <- stats.rejected_volatile + 1)
        else if Vpc_analysis.Reaching.is_unsafe ud i then
          reject (fun () ->
              stats.rejected_no_induction <- stats.rejected_no_induction + 1)
        else
          (* bound must be invariant in the body *)
          let bound_invariant =
            match shape with
            | Nonzero -> true
            | Rel (_, b) -> Vpc_analysis.Reaching.invariant_in ud body b
          in
          if not bound_invariant then
            reject (fun () ->
                stats.rejected_condition <- stats.rejected_condition + 1)
          else
            match induction_step ud body i with
            | None ->
                reject (fun () ->
                    stats.rejected_no_induction <-
                      stats.rejected_no_induction + 1)
            | Some step -> (
                match trip_count_expr (Expr.var i_var) shape step with
                | None ->
                    reject (fun () ->
                        stats.rejected_condition <- stats.rejected_condition + 1)
                | Some trip ->
                    let b = Builder.ctx prog func in
                    let dummy = Builder.fresh_temp b ~name:"dummy" Ty.Int in
                    let hi =
                      Vpc_analysis.Simplify.expr
                        (Expr.binop Expr.Sub trip (Expr.int_const 1) Ty.Int)
                    in
                    (* DO bounds must be loop-entry values: the body may
                       update the variables the trip count reads, so bind
                       the limit to a preheader temporary. *)
                    let pre, hi =
                      if Expr.is_const hi then ([], hi)
                      else
                        let bind_stmt, tv = Builder.bind b ~name:"limit" hi in
                        ([ bind_stmt ], tv)
                    in
                    stats.converted <- stats.converted + 1;
                    Some
                      (pre
                      @ [
                          {
                            s with
                            Stmt.desc =
                              Stmt.Do_loop
                                {
                                  index = dummy.Var.id;
                                  lo = Expr.int_const 0;
                                  hi;
                                  step = Expr.int_const 1;
                                  body;
                                  parallel = false;
                                  independent;
                                  sync = [];
                                };
                          };
                        ])))

(* Convert every eligible while loop in the function, innermost last so
   [Reaching] info stays valid per conversion round (we rebuild use-def
   chains after each change — the paper updates them incrementally; we
   trade compile time for simplicity and note it in DESIGN.md). *)
let run ?(stats = new_stats ()) (prog : Prog.t) (func : Func.t) =
  let changed_any = ref false in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 50 do
    incr rounds;
    let ud = Vpc_analysis.Reaching.build ~prog func in
    let changed = ref false in
    let rec walk stmts = List.concat_map walk_stmt stmts
    and walk_stmt (s : Stmt.t) : Stmt.t list =
      match s.Stmt.desc with
      | Stmt.While (li, cond, body) when not !changed -> (
          match
            convert_loop prog func ud stats s
              ~independent:li.Stmt.pragma_independent cond body
          with
          | Some replacement ->
              changed := true;
              (* convert outer first; inner loops get their own round *)
              replacement
          | None -> (
              match s.Stmt.desc with
              | Stmt.While (li, c, body) ->
                  [ { s with desc = Stmt.While (li, c, walk body) } ]
              | _ -> [ s ]))
      | Stmt.While (li, c, body) ->
          [ { s with desc = Stmt.While (li, c, walk body) } ]
      | Stmt.If (c, t, e) -> [ { s with desc = Stmt.If (c, walk t, walk e) } ]
      | Stmt.Do_loop d ->
          [ { s with desc = Stmt.Do_loop { d with body = walk d.body } } ]
      | _ -> [ s ]
    in
    func.Func.body <- walk func.Func.body;
    if !changed then changed_any := true else continue_ := false
  done;
  !changed_any
