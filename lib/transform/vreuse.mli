(** Vector-register reuse over the vectorized IL.

    Three transformations keep vector values in registers instead of
    bouncing them through the single memory port:

    - {b strip residency}: a serial DO loop whose body is one serial
      strip loop of vector statements is interchanged (strip loop
      outermost) and each accumulator section — written and re-read,
      invariant in the serial loop — becomes a register-resident
      {!Vpc_il.Stmt.Vdef}, loaded once before the loop and stored once
      after it;
    - {b invariant Vload hoisting}: a section read inside such a loop,
      invariant and provably disjoint from everything the loop writes,
      is loaded once ahead of it;
    - {b Vstore→Vload forwarding}: in straight-line runs of vector
      statements (notably fused strip-loop bodies) a stored section read
      again downstream forwards through a register, and a section read
      by several statements is loaded once and shared.

    Legality comes from {!Vpc_dependence.Alias}: register sharing
    demands the identical section ([Must_alias 0], equal constant
    strides, syntactically equal counts); hoisting demands [No_alias]
    against every write; volatile storage never participates.
    Profitability of the interchange is priced by the memory-port
    traffic model ({!Vpc_titan.Cost.strip_port_cycles},
    {!Vpc_titan.Cost.reuse_vector_loop_cycles}), with a measured
    profile refining the repetition count when it covers the loop. *)

open Vpc_il

type options = {
  assume_noalias : bool;  (** pointer params get Fortran semantics *)
  profile : Vpc_profile.Data.t option;  (** refines repetition counts *)
  report : (string -> unit) option;  (** one line per decision *)
  tune : (Vpc_support.Loc.t -> bool option) option;
      (** autotuned per-loop gate: [Some false] leaves this DO loop's
          vector statements untouched; [Some true]/[None] follow the
          static policy *)
}

val default_options : options

type stats = {
  mutable strips_interchanged : int;  (** strip loop hoisted over a DO *)
  mutable accumulators_localized : int;
      (** load+store pairs made register-resident *)
  mutable invariant_loads_hoisted : int;
  mutable stores_forwarded : int;  (** Vstore→Vload through a register *)
  mutable loads_shared : int;  (** one Vload feeding several statements *)
  mutable pgo_priced : int;  (** measured trips refined the pricing *)
}

val new_stats : unit -> stats

(** Rewrite [func] in place; [true] if anything changed. *)
val run : ?options:options -> ?stats:stats -> Prog.t -> Func.t -> bool
